// Package repro's root benchmark harness regenerates every table and
// figure of the paper (see EXPERIMENTS.md's per-artifact index) at reduced
// scale, reporting the headline quantity of each artifact as a custom
// benchmark metric so the paper-vs-measured comparison in EXPERIMENTS.md
// can be refreshed with:
//
//	go test -bench=. -benchmem
//
// Absolute run times also serve as the performance regression gate for the
// simulator itself.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lossmodel"
	"repro/internal/planetlab"
	"repro/internal/sim"
)

// BenchmarkTable1Sites regenerates Table 1 (the 26-site catalogue) and the
// 650-path mesh derivation.
func BenchmarkTable1Sites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: 1})
		if len(mesh.Sites) != 26 {
			b.Fatal("bad mesh")
		}
		if got := len(mesh.AllRTTs()); got != 650 {
			b.Fatalf("paths = %d", got)
		}
	}
}

// BenchmarkFigure2 regenerates the NS-2 inter-loss PDF scenario. Metrics:
// frac001 (fraction of intervals < 0.01 RTT; paper: >0.95) and cov
// (interval coefficient of variation; Poisson = 1).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure2(core.Fig2Config{
			Seed:     int64(i + 1),
			Flows:    16,
			Duration: 30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.FracBelow001, "frac001")
		b.ReportMetric(res.Report.CoV, "cov")
	}
}

// BenchmarkFigure3 regenerates the Dummynet scenario (processing noise +
// 1 ms clock). Same metrics as Figure 2; the paper reports ≈80% under
// 0.01 RTT here.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure3(core.Fig3Config{
			Seed:     int64(i + 1),
			Duration: 30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.FracBelow001, "frac001")
		b.ReportMetric(res.Report.CoV, "cov")
	}
}

// BenchmarkFigure4 regenerates the PlanetLab campaign at reduced scale.
// Metrics: frac001 and frac1 (paper: ≈0.40 and ≈0.60).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure4(core.Fig4Config{
			Seed:     int64(i + 1),
			Paths:    16,
			Duration: 30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.FracBelow001, "frac001")
		b.ReportMetric(res.Report.FracBelow1, "frac1")
	}
}

// BenchmarkEq12Table regenerates the loss-visibility table validating
// Equations 1 and 2 (the model behind Figures 5/6). Metric: the
// rate/window visibility ratio at M=8 drops (paper: ≫1).
func BenchmarkEq12Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.VisibilityTable(16, 10, []int{1, 2, 4, 8, 16, 32, 64, 128},
			1000, int64(i+1))
		if len(rows) != 8 {
			b.Fatal("bad table")
		}
		m8 := rows[3]
		b.ReportMetric(m8.EmpiricalRate/m8.EmpiricalWin, "visibility_ratio_m8")
	}
}

// BenchmarkFigure7 regenerates the pacing-vs-NewReno competition.
// Metric: deficit (paper: ≈0.17; our simulator exaggerates the effect —
// see EXPERIMENTS.md).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunFigure7(core.Fig7Config{
			Seed:          int64(i + 1),
			FlowsPerClass: 16,
			Duration:      30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Deficit, "deficit")
	}
}

// BenchmarkFigure8 regenerates the parallel-transfer latency surface at
// reduced volume. Metrics: normalized latency at the paper's extremes.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := core.RunFigure8(core.Fig8Config{
			Seed:       int64(i + 1),
			TotalBytes: 16 << 20,
			FlowCounts: []int{2, 4, 8, 16, 32},
			RTTs: []sim.Duration{2 * sim.Millisecond, 10 * sim.Millisecond,
				50 * sim.Millisecond, 200 * sim.Millisecond},
			Runs: 3,
		})
		lo := res.Cell(2*sim.Millisecond, 32)
		hi := res.Cell(200*sim.Millisecond, 4)
		if lo == nil || hi == nil {
			b.Fatal("missing cells")
		}
		b.ReportMetric(lo.Mean, "norm_latency_2ms_32f")
		b.ReportMetric(hi.Mean, "norm_latency_200ms_4f")
	}
}

// BenchmarkTFRCCompetition regenerates the §4.1 TFRC-vs-TCP deficit.
func BenchmarkTFRCCompetition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.RunTFRCCompetition(core.TFRCCompConfig{
			Seed:     int64(i + 1),
			Duration: 30 * sim.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Deficit, "deficit")
	}
}

// BenchmarkECNCoverage regenerates the §5 extension comparison. Metric:
// coverage under the paper's persistent-ECN proposal minus DropTail.
func BenchmarkECNCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.ECNCoverageConfig{Seed: int64(i + 1), Duration: 15 * sim.Second}
		dt, err := core.RunECNCoverage(cfg, core.ModeDropTail)
		if err != nil {
			b.Fatal(err)
		}
		pe, err := core.RunECNCoverage(cfg, core.ModePersistentECN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dt.CoverageFraction, "coverage_droptail")
		b.ReportMetric(pe.CoverageFraction, "coverage_persistent")
	}
}

// --- Ablations (EXPERIMENTS.md lists each with its expectation) ---

// BenchmarkAblationREDvsDropTail: RED should collapse the burstiness
// (lower CoV) relative to DropTail, the paper's §5 remedy.
func BenchmarkAblationREDvsDropTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := core.Fig2Config{Seed: int64(i + 1), Flows: 16, Duration: 30 * sim.Second}
		dt, err := core.RunFigure2(base)
		if err != nil {
			b.Fatal(err)
		}
		base.RED = true
		red, err := core.RunFigure2(base)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dt.Report.CoV, "cov_droptail")
		b.ReportMetric(red.Report.CoV, "cov_red")
	}
}

// BenchmarkAblationBufferSweep: burst length scales with buffer size
// (paper sweeps 1/8–2 BDP).
func BenchmarkAblationBufferSweep(b *testing.B) {
	fracs := []float64{0.125, 0.5, 2.0}
	for i := 0; i < b.N; i++ {
		for _, f := range fracs {
			res, err := core.RunFigure2(core.Fig2Config{
				Seed:          int64(i + 1),
				Flows:         16,
				BufferBDPFrac: f,
				Duration:      30 * sim.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			switch f {
			case 0.125:
				b.ReportMetric(res.Bursts.MeanSize, "burst_bdp8th")
			case 0.5:
				b.ReportMetric(res.Bursts.MeanSize, "burst_bdphalf")
			case 2.0:
				b.ReportMetric(res.Bursts.MeanSize, "burst_bdp2x")
			}
		}
	}
}

// BenchmarkAblationPacingQuantum: pacing in bursts (quantum 4) moves the
// rate-based flows back toward window-like sub-RTT behaviour, so the
// competition deficit should not grow relative to per-packet pacing.
func BenchmarkAblationPacingQuantum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range []int{1, 4} {
			res, err := core.RunFigure7(core.Fig7Config{
				Seed:          int64(i + 1),
				FlowsPerClass: 8,
				Duration:      20 * sim.Second,
				PaceQuantum:   q,
			})
			if err != nil {
				b.Fatal(err)
			}
			if q == 1 {
				b.ReportMetric(res.Deficit, "deficit_q1")
			} else {
				b.ReportMetric(res.Deficit, "deficit_q4")
			}
		}
	}
}

// BenchmarkAblationGEDwell: the Gilbert–Elliott bad-state dwell relative
// to the probe interval drives the measured clustering in the PlanetLab
// model — longer dwell, more back-to-back losses.
func BenchmarkAblationGEDwell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pbg := range []float64{0.5, 0.05} {
			rng := sim.NewRand(int64(i + 1))
			ge := lossmodel.NewGilbertElliott(lossmodel.GEParams{
				PGB: 0.002, PBG: pbg, KGood: 0, KBad: 1,
			}, rng)
			seq := lossmodel.Generate(ge, 200000)
			bursts := lossmodel.BurstLengths(seq)
			var mean float64
			for _, x := range bursts {
				mean += float64(x)
			}
			if len(bursts) > 0 {
				mean /= float64(len(bursts))
			}
			if pbg == 0.5 {
				b.ReportMetric(mean, "burstlen_shortdwell")
			} else {
				b.ReportMetric(mean, "burstlen_longdwell")
			}
		}
	}
}

// --- Parallel sweep harness ---

// sweepFig2Cfg is the shared workload for the sweep benchmarks: four
// replications of a reduced Figure 2 scenario.
var sweepFig2Cfg = core.Fig2Config{
	Seed: 1, Flows: 16, Duration: 15 * sim.Second, Warmup: 3 * sim.Second,
}

// BenchmarkSweepFigure2Sequential replays four Figure 2 replications on a
// single worker — the seed repo's inline loop, expressed through
// internal/exp.
func BenchmarkSweepFigure2Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := core.SweepFigure2(sweepFig2Cfg,
			core.SweepOptions{Replications: 4, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sweep.Summary.FracBelow001.Mean, "frac001_mean")
	}
}

// BenchmarkSweepFigure2Parallel runs the identical sweep across GOMAXPROCS
// workers. The results are bit-identical to the sequential run (the
// replications are independently seeded worlds); only wall-clock changes —
// compare ns/op against BenchmarkSweepFigure2Sequential to see the
// speedup on multi-core hardware.
func BenchmarkSweepFigure2Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep, err := core.SweepFigure2(sweepFig2Cfg,
			core.SweepOptions{Replications: 4, Workers: 0})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sweep.Summary.FracBelow001.Mean, "frac001_mean")
	}
}

// BenchmarkSchedulerThroughput measures raw engine performance: events
// executed per benchmark op (cost accounting for all scenario benches).
func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 100000 {
				s.After(sim.Microsecond, tick)
			}
		}
		s.After(sim.Microsecond, tick)
		s.Run()
		if n != 100000 {
			b.Fatal("wrong event count")
		}
	}
}
