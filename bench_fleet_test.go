package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkFleetSecond runs a small fleet campaign end to end — four
// jittered dumbbell worlds merged through the turnstile aggregator — and
// reports the aggregate simulated-event throughput that headlines
// BENCH_5.json. It runs on one shard so the measurement is the engine,
// not the host's core count. Its allocs/op is near-exact, not bit-exact:
// the arena pool is drained to the same empty state before every
// iteration, but world construction builds routing tables and
// out-of-order maps whose overflow-bucket counts depend on per-map hash
// seeds (±~0.2% in practice), so the bench-gate stamps it with the same
// 0.5% allocs tolerance as the other world-scale benches. The merge path
// itself is gated strictly by BenchmarkFleetMerge below.
func BenchmarkFleetSecond(b *testing.B) {
	b.ReportAllocs()
	cfg := core.FleetConfig{
		Scenarios: []string{"dumbbell"},
		Worlds:    4,
		Seed:      7,
		Duration:  3 * sim.Second,
		Warmup:    1 * sim.Second,
		RateSpan:  0.2,
		RTTSpan:   0.3,
		Shards:    1,
	}
	// Warm the process-wide state (timing wheel sizing, registry, pool
	// internals) outside the measurement.
	if _, err := core.RunFleet(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Two GC cycles empty the sync.Pool arena cache (current + victim),
		// so every iteration rebuilds its arena from the same blank slate
		// and allocs/op is exact rather than hostage to GC timing.
		runtime.GC()
		runtime.GC()
		b.StartTimer()
		rep, err := core.RunFleet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Worlds != cfg.Worlds {
			b.Fatalf("merged %d of %d worlds", rep.Worlds, cfg.Worlds)
		}
		b.ReportMetric(float64(rep.Events), "events")
		b.ReportMetric(rep.EventsPerSec, "events_per_sec")
	}
}

// BenchmarkFleetMerge measures the cross-world merge path alone: one
// Aggregate.Absorb per op — histogram, Welford-moment, dispersion-window
// and reservoir merges over a finished per-world analyzer. This is the
// work the fleet turnstile serializes, so it bounds fleet scalability,
// and it must stay allocation-free in steady state (the aggregate's
// reservoir is pre-filled to its bound below, after which replacement
// draws happen in place). It carries the strict zero-tolerance allocs/op
// stamp: any allocation creeping into the merge layer fails CI outright.
func BenchmarkFleetMerge(b *testing.B) {
	b.ReportAllocs()
	cfg := analysis.Config{KSReservoir: 1024}
	world, err := analysis.NewStreaming(100*sim.Millisecond, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// One finished world: a bursty synthetic loss stream, 2k events.
	at := sim.Time(0)
	for burst := 0; burst < 500; burst++ {
		at = at.Add(sim.Duration(burst%7+1) * 40 * sim.Millisecond)
		for k := 0; k < 4; k++ {
			at = at.Add(300 * sim.Microsecond)
			world.Observe(trace.LossEvent{At: at, Flow: k, Seq: int64(burst*4 + k)})
		}
	}
	agg := analysis.NewAggregate(cfg)
	// Fill the merged reservoir past its bound so the timed loop is the
	// steady state: in-place replacement draws, no growth.
	for agg.KSExact() {
		if err := agg.Absorb(world); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := agg.Absorb(world); err != nil {
			b.Fatal(err)
		}
	}
	if agg.N() == 0 {
		b.Fatal("aggregate absorbed nothing")
	}
}
