package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/topo"
)

// digestScenario flattens everything a streaming scenario run reports into
// one comparable string: burstiness report, burst records, drop and event
// counts. Two runs whose digests match consumed identical random streams
// and saw identical packet dynamics. The report's histogram is a pointer
// and is rendered through its pointee so the digest carries values, not
// addresses.
func digestScenario(res *topo.ScenarioResult) string {
	rep := *res.Report
	hist := "nil"
	if rep.Hist != nil {
		hist = fmt.Sprintf("%+v", *rep.Hist)
		rep.Hist = nil
	}
	return fmt.Sprintf("drops=%d events=%d rtt=%v\nreport=%+v\nhist=%s\nbursts=%+v",
		res.Drops, res.Events, res.MeanRTT, rep, hist, res.Bursts)
}

// TestResetEquivalence is the world-lifecycle property test: running a
// scenario on a warm arena — where topo.NetworkIn finds the cached world
// and Resets it instead of instantiating — must be bit-identical to
// running it on a fresh arena, run for run. Seeds vary across the runs so
// the reset path also exercises parameter retuning (hetero-mesh perturbs
// delays, buffers and labels per seed while keeping the structure).
func TestResetEquivalence(t *testing.T) {
	const runs = 3
	for _, name := range topo.Names() {
		sc, ok := topo.Lookup(name)
		if !ok || sc.RunIn == nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfgAt := func(i int) topo.ScenarioConfig {
				cfg := goldenConfig
				cfg.Seed = goldenConfig.Seed + int64(i)
				return cfg
			}
			// A run's identity includes its failure mode: a seed that
			// produces no drops errors identically cold or warm.
			digest := func(res *topo.ScenarioResult, err error) string {
				if err != nil {
					return "err: " + err.Error()
				}
				return digestScenario(res)
			}
			// Reference: every run on its own cold arena (Instantiate path).
			want := make([]string, runs)
			sawResult := false
			for i := range want {
				want[i] = digest(sc.RunIn(cfgAt(i), exp.NewArena()))
				if want[i][:4] != "err:" {
					sawResult = true
				}
			}
			if !sawResult {
				t.Fatalf("no seed in %v produced a result; test exercises nothing", want)
			}
			// Same runs back to back on one arena: run 0 instantiates and
			// caches, runs 1+ take the Reset path.
			a := exp.NewArena()
			for i := range want {
				if got := digest(sc.RunIn(cfgAt(i), a)); got != want[i] {
					t.Fatalf("run %d on a reset world diverged from a fresh build:\n--- fresh ---\n%s\n--- reset ---\n%s",
						i, want[i], got)
				}
			}
		})
	}
}

// TestParallelArenaReuse pins the transport half of the lifecycle: a
// parallel transfer on a reused arena rewinds its cached dumbbell and its
// cached sender/receiver pairs (tcp.Flow.ResetPair) instead of rebuilding,
// and must reproduce a fresh run's result exactly — per-flow completion
// times included. The sequence deliberately revisits a flow count with a
// different RTT (the buffer limit, and so every DropTail capacity,
// changes across the reset) and interleaves flow counts (several cached
// worlds alive in one arena).
func TestParallelArenaReuse(t *testing.T) {
	cfgs := []apps.ParallelConfig{
		{TotalBytes: 2 << 20, Flows: 4, RTT: 10 * sim.Millisecond},
		{TotalBytes: 2 << 20, Flows: 8, RTT: 2 * sim.Millisecond},
		{TotalBytes: 2 << 20, Flows: 4, RTT: 50 * sim.Millisecond},
		{TotalBytes: 1 << 20, Flows: 8, RTT: 50 * sim.Millisecond, Paced: true},
		{TotalBytes: 2 << 20, Flows: 4, RTT: 10 * sim.Millisecond},
	}
	want := make([]apps.ParallelResult, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = apps.RunParallelIn(cfg, exp.NewArena())
	}
	a := exp.NewArena()
	for i, cfg := range cfgs {
		got := apps.RunParallelIn(cfg, a)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("run %d (%d flows, rtt %v) on a reused arena diverged:\nfresh: %+v\nreused: %+v",
				i, cfg.Flows, cfg.RTT, want[i], got)
		}
	}
}
