package repro_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/ratectl"
	"repro/internal/sim"
	"repro/internal/topo"
)

// digestScenario flattens everything a streaming scenario run reports into
// one comparable string: burstiness report, burst records, drop and event
// counts. Two runs whose digests match consumed identical random streams
// and saw identical packet dynamics. The report's histogram is a pointer
// and is rendered through its pointee so the digest carries values, not
// addresses.
func digestScenario(res *topo.ScenarioResult) string {
	rep := *res.Report
	hist := "nil"
	if rep.Hist != nil {
		hist = fmt.Sprintf("%+v", *rep.Hist)
		rep.Hist = nil
	}
	return fmt.Sprintf("drops=%d events=%d rtt=%v\nreport=%+v\nhist=%s\nbursts=%+v",
		res.Drops, res.Events, res.MeanRTT, rep, hist, res.Bursts)
}

// TestResetEquivalence is the world-lifecycle property test: running a
// scenario on a warm arena — where topo.NetworkIn finds the cached world
// and Resets it instead of instantiating — must be bit-identical to
// running it on a fresh arena, run for run. Seeds vary across the runs so
// the reset path also exercises parameter retuning (hetero-mesh perturbs
// delays, buffers and labels per seed while keeping the structure).
func TestResetEquivalence(t *testing.T) {
	const runs = 3
	for _, name := range topo.Names() {
		sc, ok := topo.Lookup(name)
		if !ok || sc.RunIn == nil {
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfgAt := func(i int) topo.ScenarioConfig {
				cfg := goldenConfig
				cfg.Seed = goldenConfig.Seed + int64(i)
				return cfg
			}
			// A run's identity includes its failure mode: a seed that
			// produces no drops errors identically cold or warm.
			digest := func(res *topo.ScenarioResult, err error) string {
				if err != nil {
					return "err: " + err.Error()
				}
				return digestScenario(res)
			}
			// Reference: every run on its own cold arena (Instantiate path).
			want := make([]string, runs)
			sawResult := false
			for i := range want {
				want[i] = digest(sc.RunIn(cfgAt(i), exp.NewArena()))
				if want[i][:4] != "err:" {
					sawResult = true
				}
			}
			if !sawResult {
				t.Fatalf("no seed in %v produced a result; test exercises nothing", want)
			}
			// Same runs back to back on one arena: run 0 instantiates and
			// caches, runs 1+ take the Reset path.
			a := exp.NewArena()
			for i := range want {
				if got := digest(sc.RunIn(cfgAt(i), a)); got != want[i] {
					t.Fatalf("run %d on a reset world diverged from a fresh build:\n--- fresh ---\n%s\n--- reset ---\n%s",
						i, want[i], got)
				}
			}
		})
	}
}

// TestParallelArenaReuse pins the transport half of the lifecycle: a
// parallel transfer on a reused arena rewinds its cached dumbbell and its
// cached sender/receiver pairs (tcp.Flow.ResetPair) instead of rebuilding,
// and must reproduce a fresh run's result exactly — per-flow completion
// times included. The sequence deliberately revisits a flow count with a
// different RTT (the buffer limit, and so every DropTail capacity,
// changes across the reset) and interleaves flow counts (several cached
// worlds alive in one arena).
func TestParallelArenaReuse(t *testing.T) {
	cfgs := []apps.ParallelConfig{
		{TotalBytes: 2 << 20, Flows: 4, RTT: 10 * sim.Millisecond},
		{TotalBytes: 2 << 20, Flows: 8, RTT: 2 * sim.Millisecond},
		{TotalBytes: 2 << 20, Flows: 4, RTT: 50 * sim.Millisecond},
		{TotalBytes: 1 << 20, Flows: 8, RTT: 50 * sim.Millisecond, Paced: true},
		{TotalBytes: 2 << 20, Flows: 4, RTT: 10 * sim.Millisecond},
	}
	want := make([]apps.ParallelResult, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = apps.RunParallelIn(cfg, exp.NewArena())
	}
	a := exp.NewArena()
	for i, cfg := range cfgs {
		got := apps.RunParallelIn(cfg, a)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("run %d (%d flows, rtt %v) on a reused arena diverged:\nfresh: %+v\nreused: %+v",
				i, cfg.Flows, cfg.RTT, want[i], got)
		}
	}
}

// TestGCCResetRateTrace pins the delay-based transport's reset contract:
// replaying the same seed through a cached world — topo.NetworkIn taking
// the Reset path and the flows rewound via GCCFlow.ResetPair — must
// reproduce the exact applied-rate trajectory of a cold build, timestamp
// for timestamp. Any ratectl state that survives a reset (filter
// covariance, detector threshold, AIMD capacity memory, loss-controller
// floor, feedback phase) shows up as a diverging trace here.
func TestGCCResetRateTrace(t *testing.T) {
	t.Parallel()
	const seed = 7
	spec := topo.Spec{Name: "gcc-reset-trace"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	spec.Links = append(spec.Links, topo.LinkSpec{
		A: "left", B: "right",
		AB: topo.Dir{
			Rate: 8_000_000, Delay: 10 * sim.Millisecond,
			Queue:    topo.QueueSpec{Limit: 30},
			Dynamics: &topo.DynamicsSpec{Walk: &topo.WalkSpec{Min: 4_000_000, Max: 12_000_000, Factor: 1.3, Interval: 200 * sim.Millisecond}},
			Loss:     &topo.LossSpec{PGB: 0.003, PBG: 0.25, KGood: 0, KBad: 0.9},
		},
		BA: topo.Dir{Rate: 8_000_000, Delay: 10 * sim.Millisecond, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
	})
	for i := 0; i < 2; i++ {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(2+2*i) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv, Kind: topo.FlowGCC})
	}

	gccCfg := func(net *topo.Network, a *exp.Arena, i int) ratectl.GCCConfig {
		return ratectl.GCCConfig{
			PktSize:    1000,
			InitialRTT: net.FlowRTT(i),
			Estimator:  ratectl.EstimatorKind(i % 2),
			Seed:       sim.SubSeed(seed, int64(1000+i)),
			Pool:       a.Pool(),
		}
	}
	// run executes one replay on the arena, creating flows on the first
	// call and rewinding them with ResetPair afterwards, and returns the
	// concatenated applied-rate traces of both flows.
	run := func(a *exp.Arena, flows []*ratectl.GCCFlow) ([]*ratectl.GCCFlow, string, error) {
		sched := a.Scheduler()
		net, err := topo.NetworkIn(a, sched, spec, sim.SubSeed(seed, 2))
		if err != nil {
			return flows, "", err
		}
		net.AttachPool(a.Pool())
		var trace strings.Builder
		for i := 0; i < net.NumFlows(); i++ {
			if flows == nil || flows[i] == nil {
				if flows == nil {
					flows = make([]*ratectl.GCCFlow, net.NumFlows())
				}
				flows[i] = ratectl.NewGCCFlow(sched, net.FlowSender(i), net.FlowReceiver(i), i+1, gccCfg(net, a, i))
			} else {
				flows[i].ResetPair(net.FlowSender(i), net.FlowReceiver(i), i+1, gccCfg(net, a, i))
			}
			i := i
			flows[i].Sender.OnRate = func(rate float64, at sim.Time) {
				fmt.Fprintf(&trace, "%d %d %.9f\n", i, int64(at), rate)
			}
			flows[i].StartAt(sched, sim.Time(sim.Duration(i)*250*sim.Millisecond))
		}
		sched.RunUntil(sim.Time(6 * sim.Second))
		return flows, trace.String(), nil
	}

	_, fresh, err := run(exp.NewArena(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(fresh, "\n") < 100 {
		t.Fatalf("trace too short to pin anything:\n%s", fresh)
	}
	a := exp.NewArena()
	flows, first, err := run(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != fresh {
		t.Fatalf("cold run on shared arena diverged from reference:\n%s", diffSummary(fresh, first))
	}
	_, second, err := run(a, flows)
	if err != nil {
		t.Fatal(err)
	}
	if second != fresh {
		t.Fatalf("reset replay diverged from cold build:\n%s", diffSummary(fresh, second))
	}
}

// TestRFTResetTransferTrace pins the reliable-file-transfer reset contract
// the same way TestGCCResetRateTrace pins the delay-based transport's:
// replaying the same seed through a cached world with the flows rewound
// via rft.Flow.ResetPair must reproduce a cold build's transfer trace —
// every applied rate change, every completion instant with its epoch, and
// the final sender/receiver counters — byte for byte. Any transfer state
// that survives a reset (ledger bits, resend schedule, suppression
// clocks, epoch, AIMD phase, ACK jitter phase) diverges here.
func TestRFTResetTransferTrace(t *testing.T) {
	t.Parallel()
	const seed = 11
	spec := topo.Spec{Name: "rft-reset-trace"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	spec.Links = append(spec.Links, topo.LinkSpec{
		A: "left", B: "right",
		AB: topo.Dir{
			Rate: 8_000_000, Delay: 10 * sim.Millisecond,
			Queue:    topo.QueueSpec{Limit: 30},
			Dynamics: &topo.DynamicsSpec{Walk: &topo.WalkSpec{Min: 4_000_000, Max: 12_000_000, Factor: 1.3, Interval: 200 * sim.Millisecond}},
			Loss:     &topo.LossSpec{PGB: 0.005, PBG: 0.25, KGood: 0, KBad: 0.9},
		},
		BA: topo.Dir{Rate: 8_000_000, Delay: 10 * sim.Millisecond, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
	})
	for i := 0; i < 2; i++ {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(2+2*i) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv, Kind: topo.FlowRFT})
	}

	rftCfg := func(net *topo.Network, a *exp.Arena, i int) rft.Config {
		return rft.Config{
			ChunkSize:  1000,
			Chunks:     256,
			InitialRTT: net.FlowRTT(i),
			Seed:       sim.SubSeed(seed, int64(1000+i)),
			Pool:       a.Pool(),
		}
	}
	// run executes one replay on the arena, creating flows on the first
	// call and rewinding them with ResetPair afterwards, and returns the
	// concatenated transfer traces of both flows: rate changes,
	// completions (back-to-back via Restart) and final counters.
	run := func(a *exp.Arena, flows []*rft.Flow) ([]*rft.Flow, string, error) {
		sched := a.Scheduler()
		net, err := topo.NetworkIn(a, sched, spec, sim.SubSeed(seed, 2))
		if err != nil {
			return flows, "", err
		}
		net.AttachPool(a.Pool())
		var trace strings.Builder
		for i := 0; i < net.NumFlows(); i++ {
			if flows == nil || flows[i] == nil {
				if flows == nil {
					flows = make([]*rft.Flow, net.NumFlows())
				}
				flows[i] = rft.NewFlow(sched, net.FlowSender(i), net.FlowReceiver(i), i+1, rftCfg(net, a, i))
			} else {
				flows[i].ResetPair(net.FlowSender(i), net.FlowReceiver(i), i+1, rftCfg(net, a, i))
			}
			i := i
			f := flows[i]
			f.Sender.OnRate = func(rate float64, at sim.Time) {
				fmt.Fprintf(&trace, "rate %d %d %.9f\n", i, int64(at), rate)
			}
			f.Sender.OnComplete = func(at sim.Time) {
				fmt.Fprintf(&trace, "done %d %d epoch=%d fct=%d\n", i, int64(at), f.Sender.Epoch(), int64(f.FCT()))
				f.Restart()
			}
			f.StartAt(sched, sim.Time(sim.Duration(i)*250*sim.Millisecond))
		}
		sched.RunUntil(sim.Time(10 * sim.Second))
		for i, f := range flows {
			fmt.Fprintf(&trace, "flow %d sent=%d retrans=%d probes=%d acks=%d stale=%d dec=%d in=%d dup=%d staled=%d out=%d xfers=%d\n",
				i, f.Sender.Sent, f.Sender.Retransmitted, f.Sender.TailProbes,
				f.Sender.AcksIn, f.Sender.StaleAcks, f.Sender.Decreases,
				f.Receiver.DataIn, f.Receiver.Duplicates, f.Receiver.StaleData,
				f.Receiver.AcksOut, f.Receiver.Transfers)
		}
		return flows, trace.String(), nil
	}

	_, fresh, err := run(exp.NewArena(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fresh, "done ") || strings.Count(fresh, "\n") < 100 {
		t.Fatalf("trace pins nothing (no completions or too short):\n%s", fresh)
	}
	a := exp.NewArena()
	flows, first, err := run(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first != fresh {
		t.Fatalf("cold run on shared arena diverged from reference:\n%s", diffSummary(fresh, first))
	}
	_, second, err := run(a, flows)
	if err != nil {
		t.Fatal(err)
	}
	if second != fresh {
		t.Fatalf("reset replay diverged from cold build:\n%s", diffSummary(fresh, second))
	}
}
