// Command benchjson converts `go test -bench` output into the repository's
// schema'd BENCH_<n>.json trajectory snapshots and diffs two snapshots with
// per-benchmark tolerances. It is the CLI face of internal/perf and the
// engine of the CI bench-gate job.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . | go run ./tools/benchjson -out BENCH_1.json -label 1
//	go run ./tools/benchjson -in bench.txt -out BENCH_ci.json -label ci
//	go run ./tools/benchjson -diff BENCH_baseline.json BENCH_ci.json
//
// In -diff mode the first path is the baseline (whose per-benchmark
// tolerance fields, if any, override the -ns-tol/-allocs-tol defaults) and
// the exit status is 1 when any gated benchmark regressed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"

	"repro/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "-", "bench output to parse (- = stdin)")
		out       = fs.String("out", "", "snapshot JSON to write (default stdout)")
		label     = fs.String("label", "", "snapshot label recorded in the file")
		diff      = fs.Bool("diff", false, "compare two snapshot files: -diff BASELINE CANDIDATE")
		nsTol     = fs.Float64("ns-tol", 20, "diff: default allowed ns/op growth in percent")
		allocsTol = fs.Float64("allocs-tol", 0, "diff: default allowed allocs/op growth in percent (0 = any increase fails)")
		stampNs   = fs.Float64("stamp-ns-tol", 0, "parse: record this per-benchmark ns/op tolerance in the snapshot (baselines compared across machines need headroom)")
		stampAl   = fs.Float64("stamp-allocs-tol", -1, "parse: record this per-benchmark allocs/op tolerance in the snapshot (-1 = none)")
		strict    = fs.String("stamp-strict-allocs", "", "parse: regexp of benchmark names stamped with a ZERO allocs/op tolerance (any increase fails), overriding -stamp-allocs-tol; used for the analysis benches, whose allocation counts are fully deterministic")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchjson: -diff needs exactly two snapshot paths (baseline, candidate)")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), perf.DiffOptions{
			NsTolerancePct:     *nsTol,
			AllocsTolerancePct: *allocsTol,
		}, stdout, stderr)
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "benchjson: unexpected arguments %v (did you mean -diff?)\n", fs.Args())
		return 2
	}

	src := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	snap, err := perf.Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	var strictRe *regexp.Regexp
	if *strict != "" {
		re, err := regexp.Compile(*strict)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: -stamp-strict-allocs: %v\n", err)
			return 2
		}
		strictRe = re
	}
	snap.Label = *label
	for i := range snap.Benchmarks {
		if *stampNs > 0 {
			v := *stampNs
			snap.Benchmarks[i].NsTolerancePct = &v
		}
		if *stampAl >= 0 {
			v := *stampAl
			snap.Benchmarks[i].AllocsTolerancePct = &v
		}
		if strictRe != nil && strictRe.MatchString(snap.Benchmarks[i].Name) {
			zero := 0.0
			snap.Benchmarks[i].AllocsTolerancePct = &zero
		}
	}
	if *out == "" {
		data, err := perf.Marshal(snap)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		stdout.Write(data)
		return 0
	}
	if err := perf.WriteFile(*out, snap); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
	return 0
}

func runDiff(basePath, curPath string, opts perf.DiffOptions, stdout, stderr io.Writer) int {
	base, err := perf.ReadFile(basePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
		return 1
	}
	cur, err := perf.ReadFile(curPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: candidate: %v\n", err)
		return 1
	}
	rep := perf.Diff(base, cur, opts)
	if err := rep.Format(stdout); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if rep.Regressed() {
		fmt.Fprintf(stderr, "benchjson: performance regression against %s\n", basePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: no regression against %s\n", basePath)
	return 0
}
