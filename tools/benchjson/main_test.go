package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

const benchText = `goos: linux
BenchmarkA 	       2	1000 ns/op	         0.50 frac001	200 B/op	10 allocs/op
BenchmarkB 	       1	2000 ns/op
PASS
`

func TestParseToFileAndStdout(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_t.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-in", in, "-out", out, "-label", "t"},
		strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	snap, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Label != "t" || len(snap.Benchmarks) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}

	stdout.Reset()
	if code := run([]string{}, strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("stdin mode exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), perf.SchemaVersion) {
		t.Fatalf("stdout JSON missing schema: %s", stdout.String())
	}
}

func TestStampTolerances(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_baseline.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out, "-stamp-ns-tol", "150", "-stamp-allocs-tol", "0.5"},
		strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	snap, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range snap.Benchmarks {
		if b.NsTolerancePct == nil || *b.NsTolerancePct != 150 {
			t.Fatalf("ns tolerance not stamped on %s: %+v", b.Name, b)
		}
		if b.AllocsTolerancePct == nil || *b.AllocsTolerancePct != 0.5 {
			t.Fatalf("allocs tolerance not stamped on %s: %+v", b.Name, b)
		}
	}
}

// TestStampStrictAllocs: benches matching -stamp-strict-allocs get a zero
// allocs/op tolerance regardless of the global stamp, so any increase on
// them fails the gate.
func TestStampStrictAllocs(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_baseline.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-out", out, "-stamp-allocs-tol", "0.5",
		"-stamp-strict-allocs", "^BenchmarkA$"},
		strings.NewReader(benchText), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	snap, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	a, b := snap.Lookup("BenchmarkA"), snap.Lookup("BenchmarkB")
	if a.AllocsTolerancePct == nil || *a.AllocsTolerancePct != 0 {
		t.Fatalf("strict bench not zeroed: %+v", a)
	}
	if b.AllocsTolerancePct == nil || *b.AllocsTolerancePct != 0.5 {
		t.Fatalf("non-matching bench lost its global stamp: %+v", b)
	}
	// A malformed regexp is a usage error.
	if code := run([]string{"-stamp-strict-allocs", "("},
		strings.NewReader(benchText), &stdout, &stderr); code != 2 {
		t.Fatalf("bad regexp: exit %d, want 2", code)
	}
}

func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		path := filepath.Join(dir, name)
		snap := &perf.Snapshot{Benchmarks: []perf.Benchmark{{Name: "BenchmarkA", NsPerOp: ns, Iterations: 1}}}
		if err := perf.WriteFile(path, snap); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 1000)
	good := write("good.json", 1100)
	bad := write("bad.json", 1900)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", base, good}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("clean diff exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no regression") {
		t.Fatalf("stdout = %s", stdout.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-diff", base, bad}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("regressed diff exit %d", code)
	}
	if !strings.Contains(stderr.String(), "regression") {
		t.Fatalf("stderr = %s", stderr.String())
	}
}

func TestBadUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-diff", "only-one.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("one-arg diff exit %d", code)
	}
	if code := run([]string{"stray"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Fatalf("stray arg exit %d", code)
	}
	if code := run([]string{"-in", "/does/not/exist"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("missing input exit %d", code)
	}
}
