// Command docscheck is the CI documentation gate. It walks the repository
// and fails (exit 1, one line per finding) when
//
//   - a Go package has no package doc comment on any of its files
//     (test-only packages are exempt),
//   - a markdown file at the repo root or in examples/ contains an
//     intra-repository link to a file that does not exist, or
//   - a BENCH_*.json benchmark-trajectory snapshot at the repo root does
//     not validate against the internal/perf schema, or the CI bench-gate
//     baseline (BENCH_baseline.json) is missing.
//
// Run it from the repository root:
//
//	go run ./tools/docscheck
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/perf"
)

func main() {
	var problems []string
	problems = append(problems, checkPackageDocs(".")...)
	problems = append(problems, checkMarkdownLinks(".")...)
	problems = append(problems, checkBenchSnapshots(".")...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: package docs, markdown links and BENCH snapshots OK")
}

// analysisBenches are the measurement-pipeline micro-benchmarks: their
// allocation counts are fully deterministic (no scheduler, no rng), so
// the bench-gate baseline must carry them with a ZERO allocs/op
// tolerance — any allocation regression in the analysis layer fails CI.
var analysisBenches = []string{"BenchmarkAnalyzeBatch", "BenchmarkAnalyzeStreaming"}

// checkBenchSnapshots validates the benchmark-trajectory files: every
// BENCH_*.json at the repository root must parse against the perf schema;
// the trajectory points (BENCH_0 … BENCH_2) and the CI bench-gate's
// baseline must exist (the gate job would otherwise fail much later, on
// every PR); and the baseline must gate the analysis benches strictly.
func checkBenchSnapshots(root string) []string {
	var out []string
	matches, _ := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	sort.Strings(matches)
	snaps := map[string]*perf.Snapshot{}
	for _, path := range matches {
		s, err := perf.ReadFile(path)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: invalid bench snapshot: %v", path, err))
			continue
		}
		snaps[filepath.Base(path)] = s
	}
	for _, required := range []string{"BENCH_0.json", "BENCH_1.json", "BENCH_2.json"} {
		if _, ok := snaps[required]; !ok {
			out = append(out, required+" missing: the benchmark trajectory must be checked in")
		}
	}
	base, ok := snaps["BENCH_baseline.json"]
	if !ok {
		out = append(out, "BENCH_baseline.json missing: the CI bench-gate has no baseline to diff against")
		return out
	}
	for _, name := range analysisBenches {
		b := base.Lookup(name)
		switch {
		case b == nil:
			out = append(out, fmt.Sprintf("BENCH_baseline.json: %s missing from the bench-gate smoke set", name))
		case b.AllocsPerOp == nil:
			out = append(out, fmt.Sprintf("BENCH_baseline.json: %s recorded without -benchmem allocs/op", name))
		case b.AllocsTolerancePct == nil || *b.AllocsTolerancePct != 0:
			out = append(out, fmt.Sprintf("BENCH_baseline.json: %s needs a stamped zero allocs/op tolerance (benchjson -stamp-strict-allocs)", name))
		}
	}
	return out
}

// checkPackageDocs requires every non-test package to carry a package doc
// comment on at least one file.
func checkPackageDocs(root string) []string {
	// dir -> has any non-test Go file / has a package doc comment.
	type pkgState struct{ hasGo, hasDoc bool }
	pkgs := map[string]*pkgState{}

	fset := token.NewFileSet()
	walkErr := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		st := pkgs[dir]
		if st == nil {
			st = &pkgState{}
			pkgs[dir] = st
		}
		st.hasGo = true
		// PackageClauseOnly keeps the parse cheap; ParseComments retains
		// the doc comment attached to the package clause.
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr == nil && f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
		return nil
	})

	var dirs []string
	for dir, st := range pkgs {
		if st.hasGo && !st.hasDoc {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	out := make([]string, len(dirs))
	for i, dir := range dirs {
		out[i] = fmt.Sprintf("package %s has no package doc comment", dir)
	}
	if walkErr != nil {
		// A partial scan must not pass as green.
		out = append(out, fmt.Sprintf("package scan aborted: %v", walkErr))
	}
	return out
}

// mdLink matches [text](target) links; target group 1 stops at '#' or ')'.
var mdLink = regexp.MustCompile(`\]\(([^)#\s]+)[^)]*\)`)

// checkMarkdownLinks verifies that relative links in the root and
// examples/ markdown files point at files that exist.
func checkMarkdownLinks(root string) []string {
	var files []string
	for _, glob := range []string{"*.md", "examples/*.md", ".github/*.md"} {
		m, _ := filepath.Glob(filepath.Join(root, glob))
		files = append(files, m...)
	}
	sort.Strings(files)

	var out []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			out = append(out, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s: broken link %q", file, target))
			}
		}
	}
	return out
}
