// Link dynamics: time-varying links in two parts. First a custom path is
// declared whose middle hop follows a piecewise-constant bandwidth
// schedule (a deep mid-run fade) and erases bursts on the wire with a
// seeded Gilbert–Elliott chain — the per-2s goodput trace shows TCP
// tracking the capacity down and back up, and the port counters split the
// losses into queue drops (the fade) and wire drops (the chain). Then the
// registered time-varying scenarios (wifi-gilbert, cellular-trace,
// flaky-backbone) run at small scale, showing the paper's burstiness
// metrics surviving — and sharpening — on dynamic links.
//
//	go run ./examples/link_dynamics
package main

import (
	"fmt"
	"os"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	_ "repro/internal/topo/scenarios"
)

func main() {
	if err := fadingPath(); err != nil {
		fmt.Fprintln(os.Stderr, "link_dynamics:", err)
		os.Exit(1)
	}
	if err := dynamicCatalog(); err != nil {
		fmt.Fprintln(os.Stderr, "link_dynamics:", err)
		os.Exit(1)
	}
}

// fadingPath declares source → A → B → sink where A→B fades from 12 Mbps
// to 2 Mbps for four seconds mid-run and carries a bursty wire-loss
// chain, then watches one TCP flow ride through it.
func fadingPath() error {
	sched := sim.NewScheduler()
	spec := topo.Spec{
		Name: "fading-path",
		Nodes: []topo.NodeSpec{
			{Name: "source"}, {Name: "A"}, {Name: "B"}, {Name: "sink"},
		},
		Links: []topo.LinkSpec{
			{A: "source", B: "A", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
			{A: "A", B: "B", AB: topo.Dir{
				Rate: 12_000_000, Delay: 10 * sim.Millisecond,
				Queue: topo.QueueSpec{Limit: 25},
				// The schedule: nominal 12 Mbps, a 2 Mbps fade over
				// t ∈ [6 s, 10 s), recovery afterwards. Steps with only a
				// Rate keep the current delay.
				Dynamics: &topo.DynamicsSpec{Steps: []netsim.RateStep{
					{At: 6 * sim.Second, Rate: 2_000_000},
					{At: 10 * sim.Second, Rate: 12_000_000},
				}},
				// A sticky Gilbert–Elliott chain: ~1% of packets lost on
				// the wire in bursts of ~3 back-to-back packets.
				Loss: &topo.LossSpec{PGB: 0.004, PBG: 0.35, KGood: 0, KBad: 1},
			}},
			{A: "B", B: "sink", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
		},
		Flows: []topo.FlowSpec{{Label: "bulk", From: "source", To: "sink"}},
	}
	net, err := topo.Build(sched, spec, 1)
	if err != nil {
		return err
	}

	f := tcp.NewPairFlow(sched, net.FlowSender(0), net.FlowReceiver(0), 1, tcp.Config{
		PktSize:    1000,
		InitialRTT: net.FlowRTT(0),
	})
	f.Sender.Start()

	fmt.Printf("fading path: base RTT %v, schedule 12→2→12 Mbps at 6 s / 10 s\n", net.FlowRTT(0))
	hop := net.Port("A", "B")
	var lastAck int64
	for slice := 1; slice <= 7; slice++ {
		sched.RunUntil(sim.Time(sim.Duration(slice) * 2 * sim.Second))
		ack := f.Receiver.CumAck()
		goodput := float64((ack-lastAck)*1000*8) / 2e6 // Mbit/s over the 2 s slice
		fmt.Printf("  t=%2ds..%2ds  goodput %5.1f Mbps  queue drops %3d  wire drops %3d\n",
			(slice-1)*2, slice*2, goodput, hop.Dropped, hop.LinkDropped)
		lastAck = ack
	}
	return nil
}

// dynamicCatalog runs the registered time-varying scenarios briefly and
// prints the same headline numbers examples/topologies prints for the
// static catalog.
func dynamicCatalog() error {
	fmt.Println("\ntime-varying scenario catalog (12 s runs):")
	for _, name := range []string{"wifi-gilbert", "cellular-trace", "flaky-backbone"} {
		sc, ok := topo.Lookup(name)
		if !ok {
			return fmt.Errorf("scenario %q not registered", name)
		}
		res, err := sc.Run(topo.ScenarioConfig{
			Seed:     1,
			Duration: 12 * sim.Second,
			Warmup:   2 * sim.Second,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		r := res.Report
		fmt.Printf("  %-15s drops=%5d  frac<0.01RTT=%.2f  CoV=%.1f  rejects_poisson=%v\n",
			sc.Name, res.Drops, r.FracBelow001, r.CoV, r.RejectsPoisson)
	}
	return nil
}
