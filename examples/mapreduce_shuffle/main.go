// MapReduce shuffle: the paper's future-work workload (§6) — the
// all-to-all transfer between M mappers and R reducers. Every reducer
// pulls one partition from every mapper; the reducer access links are the
// incast bottlenecks. Bursty sub-RTT loss decides which flows stall in
// recovery, so nominally identical reducers finish at different times and
// the job waits for the straggler.
//
//	go run ./examples/mapreduce_shuffle
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	fmt.Println("all-to-all shuffle, 2 MB per partition, 100 Mbps access links")
	fmt.Println()
	fmt.Println("  mappers  reducers  impl     makespan   norm   straggler")
	for _, size := range []struct{ m, r int }{{4, 4}, {8, 8}, {16, 8}} {
		for _, paced := range []bool{false, true} {
			res := apps.RunShuffle(apps.ShuffleConfig{
				Mappers:  size.m,
				Reducers: size.r,
				Paced:    paced,
				RTT:      10 * sim.Millisecond,
			})
			impl := "window"
			if paced {
				impl = "paced"
			}
			fmt.Printf("  %7d  %8d  %-6s  %7.2fs  %5.2f  %9.2f\n",
				size.m, size.r, impl,
				res.Completion.Seconds(), res.Normalized(), res.Straggler)
		}
	}
	fmt.Println()
	fmt.Println("norm = makespan / incast lower bound;")
	fmt.Println("straggler = slowest reducer / fastest reducer.")
}
