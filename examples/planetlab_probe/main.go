// PlanetLab probe: the paper's Internet measurement protocol on the
// synthetic 26-site mesh. A CBR prober measures a handful of paths twice —
// 48-byte and 400-byte packets — validates the pair, and aggregates the
// RTT-normalized inter-loss intervals into the Figure-4 style PDF.
//
//	go run ./examples/planetlab_probe
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/planetlab"
	"repro/internal/probe"
	"repro/internal/sim"
)

func main() {
	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: 7})
	pick := sim.NewRand(11)

	fmt.Println("probing 8 random directed paths of the 26-site mesh")
	fmt.Println("(two 60 s CBR runs each: 48 B and 400 B, cross-validated)")
	fmt.Println()

	var reports []*analysis.Report
	for len(reports) < 8 {
		i, j := mesh.RandomPair(pick)
		sched := sim.NewScheduler()
		path := mesh.NewPathProcess(i, j)
		m := probe.MeasurePath(sched, path, probe.RunConfig{
			Flow:     1,
			Duration: 60 * sim.Second,
		})
		status := "rejected"
		if m.Valid {
			status = "ok"
		}
		fmt.Printf("  %-28s -> %-28s rtt=%5.1fms loss=%.4f %s\n",
			short(mesh.Sites[i].Host), short(mesh.Sites[j].Host),
			path.Params.RTT.Seconds()*1e3, m.Small.LossRate(), status)
		if !m.Valid || len(m.Small.LossSendTimes) < 5 {
			continue
		}
		rep, err := analysis.Analyze(m.Small.LossSendTimes, m.Small.PathRTT, analysis.Config{})
		if err != nil {
			continue
		}
		reports = append(reports, rep)
	}

	merged, err := analysis.Merge(reports, analysis.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "planetlab_probe:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("aggregate: %d losses over %d paths\n", merged.N, len(reports))
	fmt.Printf("within 0.01 RTT: %.0f%%   within 1 RTT: %.0f%%   (paper: 40%% / 60%%)\n",
		100*merged.FracBelow001, 100*merged.FracBelow1)
	fmt.Println()
	if err := core.WriteASCIIPDF(os.Stdout, merged, 20); err != nil {
		fmt.Fprintln(os.Stderr, "planetlab_probe:", err)
		os.Exit(1)
	}
}

func short(host string) string {
	if len(host) > 28 {
		return host[:28]
	}
	return host
}
