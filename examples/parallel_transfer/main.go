// Parallel transfer: the paper's Figure 8 workload — a GridFTP/GFS-style
// application splits 64 MB across N parallel TCP flows. The completion
// latency, normalized by the theoretic lower bound (5.39 s at 100 Mbps),
// varies wildly at long RTTs because bursty loss knocks a few flows out of
// slow start early and the transfer waits for the stragglers.
//
//	go run ./examples/parallel_transfer
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	fmt.Println("64 MB over N parallel flows, 100 Mbps bottleneck")
	fmt.Println("normalized completion latency (1.0 = theoretic bound)")
	fmt.Println()
	fmt.Println("  rtt(ms)  flows  mean   min    max")
	for _, rtt := range []sim.Duration{10 * sim.Millisecond, 50 * sim.Millisecond, 200 * sim.Millisecond} {
		for _, n := range []int{2, 4, 8, 16, 32} {
			vals := apps.Sweep(apps.ParallelConfig{
				TotalBytes:     64 << 20,
				Flows:          n,
				RTT:            rtt,
				BottleneckRate: 100_000_000,
			}, 3)
			s := stats.Summarize(vals)
			fmt.Printf("  %7.0f  %5d  %5.2f  %5.2f  %5.2f\n",
				rtt.Seconds()*1e3, n, s.Mean, s.Min, s.Max)
		}
		fmt.Println()
	}
	fmt.Println("Lesson from the paper: at 200 ms RTT the latency is several")
	fmt.Println("times the bound and varies run to run, because which flows")
	fmt.Println("lose packets during slow start is decided by sub-RTT loss bursts.")
}
