// Topologies: the declarative topology subsystem in two parts. First a
// custom two-hop chain is described as a topo.Spec and built onto the
// netsim substrate — queues, routes and flow RTTs come out of the builder,
// not hand-wiring. Then the registered scenario catalog (dumbbell,
// parking-lot, access-tree, hetero-mesh) runs at small scale, showing the
// paper's burstiness metrics on every topology shape.
//
//	go run ./examples/topologies
package main

import (
	"fmt"
	"os"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	_ "repro/internal/topo/scenarios"
	"repro/internal/trace"
)

func main() {
	if err := customChain(); err != nil {
		fmt.Fprintln(os.Stderr, "topologies:", err)
		os.Exit(1)
	}
	if err := catalog(); err != nil {
		fmt.Fprintln(os.Stderr, "topologies:", err)
		os.Exit(1)
	}
}

// customChain declares source → A → B → sink with a slow congested middle
// link, runs one TCP flow across it, and reports the drop clustering.
func customChain() error {
	sched := sim.NewScheduler()
	spec := topo.Spec{
		Name: "two-hop-chain",
		Nodes: []topo.NodeSpec{
			{Name: "source"}, {Name: "A"}, {Name: "B"}, {Name: "sink"},
		},
		Links: []topo.LinkSpec{
			{A: "source", B: "A", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
			// The bottleneck: 8 Mbps with a 10-packet DropTail queue.
			{A: "A", B: "B", AB: topo.Dir{
				Rate: 8_000_000, Delay: 10 * sim.Millisecond,
				Queue: topo.QueueSpec{Limit: 10},
			}},
			{A: "B", B: "sink", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
		},
		Flows: []topo.FlowSpec{{Label: "bulk", From: "source", To: "sink"}},
	}
	net, err := topo.Build(sched, spec, 1)
	if err != nil {
		return err
	}

	rec := &trace.Recorder{}
	net.Port("A", "B").OnDrop = func(p *netsim.Packet, at sim.Time) {
		rec.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
	}
	f := tcp.NewPairFlow(sched, net.FlowSender(0), net.FlowReceiver(0), 1, tcp.Config{
		PktSize:    1000,
		InitialRTT: net.FlowRTT(0),
	})
	f.Sender.Start()
	sched.RunUntil(sim.Time(20 * sim.Second))

	fmt.Printf("custom chain: base RTT %v, %d drops at the A→B queue, %d pkts delivered\n",
		net.FlowRTT(0), rec.Len(), f.Receiver.CumAck())
	return nil
}

// catalog runs every registered scenario briefly and prints the headline
// burstiness numbers the paper reports for its dumbbell.
func catalog() error {
	fmt.Println("\nscenario catalog (12 s runs):")
	for _, sc := range topo.Scenarios() {
		res, err := sc.Run(topo.ScenarioConfig{
			Seed:     1,
			Duration: 12 * sim.Second,
			Warmup:   2 * sim.Second,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		r := res.Report
		fmt.Printf("  %-12s drops=%5d  frac<0.01RTT=%.2f  CoV=%.1f  rejects_poisson=%v\n",
			sc.Name, res.Drops, r.FracBelow001, r.CoV, r.RejectsPoisson)
	}
	return nil
}
