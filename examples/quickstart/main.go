// Quickstart: build a shared bottleneck, run TCP flows over it, record the
// drop trace at the router, and analyze the inter-loss intervals the way
// the paper does — PDF against a rate-matched Poisson process.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

func main() {
	sched := sim.NewScheduler()

	// A 50 Mbps bottleneck shared by four TCP NewReno flows with a 40 ms
	// round trip and a half-BDP buffer.
	const (
		rate    = 50_000_000
		rtt     = 40 * sim.Millisecond
		pktSize = 1000
		nFlows  = 4
	)
	delays := make([]sim.Duration, nFlows)
	for i := range delays {
		delays[i] = rtt / 2
	}
	d := netsim.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate: rate,
		AccessRate:     10 * rate,
		AccessDelays:   delays,
		Buffer:         netsim.BDP(rate, rtt, pktSize) / 2,
	})

	// Record every packet the bottleneck drops — the paper's loss trace.
	rec := &trace.Recorder{}
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		rec.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
	}

	for i := 0; i < nFlows; i++ {
		f := tcp.NewDumbbellFlow(d, i, i+1, tcp.Config{PktSize: pktSize, InitialRTT: rtt})
		// Stagger starts slightly to avoid artificial synchronization.
		f.StartAt(sched, sim.Time(sim.Duration(i)*250*sim.Millisecond))
	}

	// Run one simulated minute.
	sched.RunUntil(sim.Time(60 * sim.Second))

	rep, err := analysis.AnalyzeTrace(rec, rtt, analysis.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	fmt.Printf("drops recorded:      %d\n", rec.Len())
	fmt.Printf("loss rate:           %.2f events/RTT\n", rep.Lambda)
	fmt.Printf("within 0.01 RTT:     %.1f%%   (paper's NS-2 headline: >95%%)\n", 100*rep.FracBelow001)
	fmt.Printf("within 1 RTT:        %.1f%%\n", 100*rep.FracBelow1)
	fmt.Printf("interval CoV:        %.1f    (Poisson process = 1.0)\n", rep.CoV)
	fmt.Printf("index of dispersion: %.1f    (Poisson process = 1.0)\n\n", rep.IndexOfDispersion)

	fmt.Println("inter-loss interval PDF vs rate-matched Poisson (log scale):")
	if err := core.WriteASCIIPDF(os.Stdout, rep, 20); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
