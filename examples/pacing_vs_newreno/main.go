// Pacing vs NewReno: the paper's Figure 7 scenario as a library example.
// Sixteen TCP Pacing flows and sixteen TCP NewReno flows share a 100 Mbps,
// 50 ms bottleneck; because the loss process is bursty at sub-RTT scale,
// the evenly-spaced pacing flows detect more loss events and end up with
// less throughput.
//
//	go run ./examples/pacing_vs_newreno
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	res, err := core.RunFigure7(core.Fig7Config{
		Seed:          42,
		FlowsPerClass: 16,
		Duration:      40 * sim.Second,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacing_vs_newreno:", err)
		os.Exit(1)
	}

	fmt.Printf("aggregate delivered: newreno=%d pkts, paced=%d pkts\n",
		res.NewRenoTotalPkts, res.PacedTotalPkts)
	fmt.Printf("pacing deficit:      %.1f%%   (paper observed ≈17%%)\n", 100*res.Deficit)
	fmt.Printf("congestion events:   newreno=%d, paced=%d\n\n",
		res.NewRenoCongestionEvents, res.PacedCongestionEvents)

	fmt.Println("aggregate throughput over time (Mbps, 1 s bins):")
	fmt.Println("  t(s)  newreno  paced")
	n := len(res.NewRenoMbps)
	if len(res.PacedMbps) < n {
		n = len(res.PacedMbps)
	}
	for i := 0; i < n; i++ {
		bar := func(v float64) string {
			w := int(v / 2)
			if w < 0 {
				w = 0
			}
			if w > 50 {
				w = 50
			}
			return strings.Repeat("#", w)
		}
		fmt.Printf("  %3d  %6.1f  %6.1f  |%s\n", i, res.NewRenoMbps[i], res.PacedMbps[i],
			bar(res.PacedMbps[i]))
	}
}
