// Command paperexp regenerates every table and figure of the paper as text
// series. Each artifact has a sub-flag; -all runs the full evaluation with
// paper-scale parameters. The selected artifacts are independent simulated
// worlds, so they run concurrently through the internal/exp runner by
// default (each rendering into its own buffer, printed in artifact order —
// the output is identical to a sequential run); -seq streams them one by
// one instead.
//
// Usage:
//
//	paperexp -fig 2          # Figure 2: NS-2 inter-loss PDF
//	paperexp -fig 3          # Figure 3: Dummynet inter-loss PDF
//	paperexp -fig 4          # Figure 4: PlanetLab inter-loss PDF
//	paperexp -fig 5          # Eq. 1/2 visibility table (Figures 5/6 model)
//	paperexp -fig 7          # Figure 7: pacing vs NewReno throughput
//	paperexp -fig 8          # Figure 8: parallel transfer latency
//	paperexp -fig 1          # Table 1: PlanetLab sites
//	paperexp -fig 2,3,4      # several artifacts, concurrently
//	paperexp -xtfrc          # extension: TFRC vs NewReno competition
//	paperexp -xecn           # extension: ECN signal coverage
//	paperexp -xshowdown      # extension: loss-based vs delay-based showdown
//	paperexp -scenario parking-lot   # one registered topology scenario
//	paperexp -scenario all           # the whole scenario catalog
//	paperexp -all            # everything, scenario catalog included
//	paperexp -all -reps 4    # loss-PDF artifacts replicated, with mean ± 95% CI
//	paperexp -fig 4 -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//	                         # profile a run for hot-path work
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/planetlab"
	"repro/internal/sim"
	"repro/internal/tcptrace"
	"repro/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// artifact is one paper table/figure: a name and a renderer writing the
// text series to w. Renderers report how many simulated events their
// worlds executed (sim.Scheduler.Fired, summed over replications), so the
// runner can print per-artifact events/sec without the bench suite;
// artifacts with no simulated world (Table 1, the Eq. 1/2 model) report 0
// and get no throughput line.
type artifact struct {
	name string
	fn   func(w io.Writer) (uint64, error)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := cli.NewFlagSet("paperexp", stderr)
	var (
		fig      = fs.String("fig", "", "paper artifacts to regenerate, comma-separated (1=Table 1, 2,3,4,7,8=figures, 5/6=Eq.1/2 table)")
		all      = fs.Bool("all", false, "run everything, scenario catalog included")
		xtfrc    = fs.Bool("xtfrc", false, "run the TFRC competition extension")
		xecn     = fs.Bool("xecn", false, "run the ECN coverage extension")
		xtrace   = fs.Bool("xtrace", false, "run the TCP-trace methodology comparison")
		xshow    = fs.Bool("xshowdown", false, "run the loss-based vs delay-based controller showdown")
		xxfer    = fs.Bool("xtransfers", false, "run the reliable-file-transfer FCT experiment")
		scenario = fs.String("scenario", "", "registered topology scenarios to run, comma-separated; \"all\" runs the catalog, \"list\" prints it")
		seed     = fs.Int64("seed", 1, "experiment seed")
		quick    = fs.Bool("quick", false, "scaled-down parameters (seconds instead of minutes)")
		ascii    = fs.Bool("ascii", false, "ASCII plots for the PDF figures")
		reps     = fs.Int("reps", 1, "replications per loss-PDF artifact (adds a mean ± 95% CI aggregate)")
		seq      = fs.Bool("seq", false, "run artifacts sequentially, streaming output")
		workers  = fs.Int("workers", 0, "concurrent artifacts (0 = GOMAXPROCS)")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile (after GC) to this file on exit")
	)
	if code, ok := cli.Parse(fs, args); !ok {
		return code
	}
	if *reps < 1 {
		return cli.Usagef(stderr, "paperexp", "-reps must be at least 1, got %d", *reps)
	}
	// Profiling hooks, so hot-path work on the experiment drivers starts
	// from a measured profile instead of a guess:
	//
	//	paperexp -fig 4 -quick -cpuprofile cpu.pprof -memprofile mem.pprof
	//	go tool pprof cpu.pprof
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(stderr, "paperexp: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "paperexp: -cpuprofile: %v\n", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		// Validate the path up front so a typo fails before minutes of
		// simulation, not after.
		f, err := os.Create(*memprof)
		if err != nil {
			fmt.Fprintf(stderr, "paperexp: -memprofile: %v\n", err)
			return 2
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "paperexp: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}
	figs := map[int]bool{}
	if *fig != "" {
		for _, part := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(stderr, "paperexp: bad -fig value %q (want numbers like 2,3,4)\n", part)
				return 2
			}
			if n < 1 || n > 8 {
				fmt.Fprintf(stderr, "paperexp: unknown -fig value %d (valid artifacts: 1-8)\n", n)
				return 2
			}
			figs[n] = true
		}
	}
	var scenarioNames []string
	switch *scenario {
	case "":
	case "all":
		scenarioNames = topo.Names()
	case "list":
		for _, sc := range topo.Scenarios() {
			fmt.Fprintf(stdout, "%-14s %s (%s)\n", sc.Name, sc.Description, sc.Topology)
		}
		return 0
	default:
		for _, part := range strings.Split(*scenario, ",") {
			name := strings.TrimSpace(part)
			if _, ok := topo.Lookup(name); !ok {
				fmt.Fprintf(stderr, "paperexp: unknown scenario %q (registered: %s)\n",
					name, strings.Join(topo.Names(), ", "))
				return 2
			}
			scenarioNames = append(scenarioNames, name)
		}
	}
	// -all implies the whole catalog, but an explicit -scenario selection
	// narrows it rather than being silently overridden.
	if *all && *scenario == "" {
		scenarioNames = topo.Names()
	}

	e := &executor{seed: *seed, quick: *quick, ascii: *ascii, reps: *reps, workers: *workers}
	var arts []artifact
	add := func(cond bool, name string, fn func(io.Writer) (uint64, error)) {
		if cond {
			arts = append(arts, artifact{name, fn})
		}
	}
	add(*all || figs[1], "Table 1: PlanetLab sites", e.table1)
	add(*all || figs[2], "Figure 2: inter-loss PDF (NS-2)", e.figure2)
	add(*all || figs[3], "Figure 3: inter-loss PDF (Dummynet)", e.figure3)
	add(*all || figs[4], "Figure 4: inter-loss PDF (PlanetLab)", e.figure4)
	add(*all || figs[5] || figs[6], "Eq. 1/2: loss-event visibility", e.eq12)
	add(*all || figs[7], "Figure 7: pacing vs NewReno", e.figure7)
	add(*all || figs[8], "Figure 8: parallel-transfer latency", e.figure8)
	add(*all || *xtfrc, "Extension: TFRC vs NewReno", e.tfrc)
	add(*all || *xecn, "Extension: ECN signal coverage", e.ecn)
	add(*all || *xtrace, "Future work: TCP-trace methodology", e.tcptrace)
	add(*all || *xshow, "Extension: loss-based vs delay-based showdown", e.showdown)
	add(*all || *xxfer, "Extension: reliable-file-transfer FCT", e.transfers)
	for _, name := range scenarioNames {
		sc, _ := topo.Lookup(name)
		add(true, "Scenario: "+sc.Name, func(w io.Writer) (uint64, error) { return e.scenario(w, sc) })
	}

	if len(arts) == 0 {
		fs.Usage()
		return 2
	}

	if *seq || len(arts) == 1 {
		// Like the parallel path, a failing artifact is reported and the
		// rest still run; only the exit code remembers the failure.
		code := 0
		for _, a := range arts {
			fmt.Fprintf(stdout, "==== %s ====\n", a.name)
			start := time.Now()
			events, err := a.fn(stdout)
			if err != nil {
				fmt.Fprintf(stderr, "paperexp: %s: %v\n", a.name, err)
				code = 1
				continue
			}
			elapsed := time.Since(start)
			fmt.Fprintf(stdout, "---- %s done in %v%s ----\n\n", a.name,
				elapsed.Round(time.Millisecond), rateSuffix(events, elapsed))
		}
		return code
	}

	// Parallel: every artifact renders into its own buffer on the worker
	// pool; buffers are flushed in artifact order, so the byte stream
	// matches the sequential run (modulo the timing lines).
	type rendered struct {
		out     bytes.Buffer
		elapsed time.Duration
		events  uint64
	}
	results := exp.Sweep(exp.Options{Seed: *seed, Workers: *workers}, arts,
		func(r exp.Run[artifact]) (*rendered, error) {
			var rd rendered
			start := time.Now()
			events, err := r.Config.fn(&rd.out)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", r.Config.name, err)
			}
			rd.elapsed = time.Since(start)
			rd.events = events
			return &rd, nil
		})
	code := 0
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(stderr, "paperexp: %v\n", r.Err)
			code = 1
			continue
		}
		fmt.Fprintf(stdout, "==== %s ====\n", arts[i].name)
		stdout.Write(r.Value.out.Bytes())
		fmt.Fprintf(stdout, "---- %s done in %v%s ----\n\n", arts[i].name,
			r.Value.elapsed.Round(time.Millisecond), rateSuffix(r.Value.events, r.Value.elapsed))
	}
	return code
}

// rateSuffix renders an artifact's simulated-event throughput: the number
// of scheduler events its worlds executed and the wall-clock rate, the
// sweep-throughput visibility the bench suite otherwise provides.
func rateSuffix(events uint64, elapsed time.Duration) string {
	if events == 0 || elapsed <= 0 {
		return ""
	}
	return fmt.Sprintf(" (%d simulated events, %.2fM events/s)",
		events, float64(events)/elapsed.Seconds()/1e6)
}

type executor struct {
	seed    int64
	quick   bool
	ascii   bool
	reps    int
	workers int
}

// sweepOpts propagates the -workers bound into an artifact's inner sweep,
// so `paperexp -workers 1` really is sequential instead of nesting a
// GOMAXPROCS pool inside every artifact.
func (e *executor) sweepOpts() core.SweepOptions {
	return core.SweepOptions{Replications: e.replications(), Workers: e.workers}
}

func (e *executor) dur(full, quick sim.Duration) sim.Duration {
	if e.quick {
		return quick
	}
	return full
}

func (e *executor) table1(w io.Writer) (uint64, error) {
	return 0, core.WriteSites(w, planetlab.Sites())
}

// writeScenario renders one loss-PDF scenario result, or — when -reps asks
// for replications — the first replication plus the cross-replication
// aggregate.
func (e *executor) writeScenario(w io.Writer, sweep *core.ScenarioSweep) error {
	res := sweep.Results[0]
	if e.ascii {
		if err := core.WriteASCIIPDF(w, res.Report, 25); err != nil {
			return err
		}
	} else if err := core.WritePDF(w, res.Report); err != nil {
		return err
	}
	for _, skip := range sweep.Skipped {
		if _, err := fmt.Fprintf(w, "# skipped %v\n", skip); err != nil {
			return err
		}
	}
	// Batching efficiency: scheduler events per forwarded packet, the ratio
	// the port's delivery rings and serialization chains drive down (see
	// ARCHITECTURE.md, "Link service batching").
	if sweep.Forwarded > 0 {
		if _, err := fmt.Fprintf(w, "# batching events=%d forwarded=%d events_per_pkt=%.2f\n",
			sweep.Events, sweep.Forwarded,
			float64(sweep.Events)/float64(sweep.Forwarded)); err != nil {
			return err
		}
	}
	if len(sweep.Results) > 1 {
		s := sweep.Summary
		_, err := fmt.Fprintf(w,
			"# aggregate reps=%d frac<0.01RTT=%.3f±%.3f frac<1RTT=%.3f±%.3f cov=%.1f±%.1f reject_poisson=%.0f%%\n",
			s.Replications,
			s.FracBelow001.Mean, s.FracBelow001.CI95,
			s.FracBelow1.Mean, s.FracBelow1.CI95,
			s.CoV.Mean, s.CoV.CI95,
			100*s.RejectFrac)
		return err
	}
	return nil
}

// replications normalizes the -reps flag; replication 0 of a sweep runs
// the configured seed itself, so -reps 1 is exactly the classic single
// figure run.
func (e *executor) replications() int {
	if e.reps < 1 {
		return 1
	}
	return e.reps
}

// scenario renders one registered topology scenario: its catalog line,
// then the same loss-PDF report the dumbbell figures produce.
func (e *executor) scenario(w io.Writer, sc topo.Scenario) (uint64, error) {
	if _, err := fmt.Fprintf(w, "# %s: %s\n# topology: %s\n",
		sc.Name, sc.Description, sc.Topology); err != nil {
		return 0, err
	}
	sweep, err := core.SweepScenario(sc.Name, topo.ScenarioConfig{
		Seed:     e.seed,
		Duration: e.dur(60*sim.Second, 15*sim.Second),
		Warmup:   e.dur(10*sim.Second, 3*sim.Second),
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	return sweep.Events, e.writeScenario(w, sweep)
}

func (e *executor) figure2(w io.Writer) (uint64, error) {
	sweep, err := core.SweepFigure2(core.Fig2Config{
		Seed:     e.seed,
		Flows:    16,
		Duration: e.dur(120*sim.Second, 30*sim.Second),
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	return sweep.Events, e.writeScenario(w, sweep)
}

func (e *executor) figure3(w io.Writer) (uint64, error) {
	sweep, err := core.SweepFigure3(core.Fig3Config{
		Seed:     e.seed,
		Duration: e.dur(120*sim.Second, 30*sim.Second),
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	return sweep.Events, e.writeScenario(w, sweep)
}

func (e *executor) figure4(w io.Writer) (uint64, error) {
	res, err := core.RunFigure4(core.Fig4Config{
		Seed:     e.seed,
		Paths:    ifQuick(e.quick, 12, 60),
		Duration: e.dur(5*60*sim.Second, 30*sim.Second),
		Workers:  e.workers,
	})
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "# paths: measured=%d validated=%d analyzed=%d losses=%d\n",
		res.PathsMeasured, res.PathsValidated, res.PathsAnalyzed, res.TotalLosses)
	if e.ascii {
		return res.Events, core.WriteASCIIPDF(w, res.Report, 25)
	}
	return res.Events, core.WritePDF(w, res.Report)
}

func (e *executor) eq12(w io.Writer) (uint64, error) {
	rows := core.VisibilityTable(16, 10, []int{1, 2, 4, 8, 16, 32, 64, 128}, 2000, e.seed)
	return 0, core.WriteVisibilityTable(w, rows)
}

func (e *executor) figure7(w io.Writer) (uint64, error) {
	sweep, err := core.SweepFigure7(core.Fig7Config{
		Seed:     e.seed,
		Duration: e.dur(40*sim.Second, 20*sim.Second),
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	if err := core.WriteFig7(w, sweep.Results[0], sim.Second); err != nil {
		return 0, err
	}
	if len(sweep.Results) > 1 {
		d := sweep.Deficit
		_, err = fmt.Fprintf(w, "# aggregate reps=%d deficit=%.3f±%.3f\n", d.N, d.Mean, d.CI95)
	}
	return sweep.Events, err
}

func (e *executor) figure8(w io.Writer) (uint64, error) {
	cfg := core.Fig8Config{Seed: e.seed, Workers: e.workers}
	if e.quick {
		cfg.TotalBytes = 8 << 20
		cfg.Runs = 3
	}
	res := core.RunFigure8(cfg)
	return res.Events, core.WriteFig8(w, res)
}

func (e *executor) tfrc(w io.Writer) (uint64, error) {
	sweep, err := core.SweepTFRCCompetition(core.TFRCCompConfig{
		Seed:     e.seed,
		Duration: e.dur(60*sim.Second, 20*sim.Second),
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	res := sweep.Results[0]
	fmt.Fprintf(w, "newreno_bytes=%d tfrc_bytes=%d deficit=%.1f%% tfrc_loss_rate=%.4f\n",
		res.NewRenoBytes, res.TFRCBytes, 100*res.Deficit, res.TFRCLossRate)
	if len(sweep.Results) > 1 {
		d := sweep.Deficit
		fmt.Fprintf(w, "# aggregate reps=%d deficit=%.3f±%.3f\n", d.N, d.Mean, d.CI95)
	}
	return sweep.Events, nil
}

func (e *executor) ecn(w io.Writer) (uint64, error) {
	fmt.Fprintln(w, "# mode\tcoverage\tepochs\tpkts\tfairness")
	modes := []core.ECNMode{core.ModeDropTail, core.ModeRedECN, core.ModePersistentECN}
	results, err := core.RunECNComparison(core.ECNCoverageConfig{
		Seed:     e.seed,
		Duration: e.dur(30*sim.Second, 15*sim.Second),
	}, modes, e.workers)
	if err != nil {
		return 0, err
	}
	var events uint64
	for _, res := range results {
		fmt.Fprintf(w, "%v\t%.2f\t%d\t%d\t%.3f\n",
			res.Mode, res.CoverageFraction, res.Epochs, res.AggregatePkts, res.FairnessIndex)
		events += res.Events
	}
	return events, nil
}

// showdown runs the loss-vs-delay controller comparison across the
// time-varying showdown worlds (scenarios.ShowdownShapes) and renders the
// figure-style table. The full duration covers one complete dilated
// cellular trace loop plus warmup, so every fade depth in the schedule
// contributes.
func (e *executor) showdown(w io.Writer) (uint64, error) {
	res, err := core.SweepShowdown(topo.ScenarioConfig{
		Seed:     e.seed,
		Duration: e.dur(125*sim.Second, 25*sim.Second),
		Warmup:   5 * sim.Second,
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	return res.Events, core.WriteShowdown(w, res)
}

// transfers runs the reliable-file-transfer experiment: every RFT
// scenario replicated across derived seeds, reported as the merged
// flow-completion-time distribution (p50/p95/p99), per-transfer goodput
// and retransmission ratio.
func (e *executor) transfers(w io.Writer) (uint64, error) {
	res, err := core.SweepTransfers(topo.ScenarioConfig{
		Seed:     e.seed,
		Duration: e.dur(120*sim.Second, 30*sim.Second),
		Warmup:   5 * sim.Second,
	}, e.sweepOpts())
	if err != nil {
		return 0, err
	}
	return res.Events, core.WriteTransfers(w, res)
}

func (e *executor) tcptrace(w io.Writer) (uint64, error) {
	res, err := tcptrace.Run(tcptrace.Config{
		Seed:     e.seed,
		Flows:    16,
		Duration: e.dur(60*sim.Second, 20*sim.Second),
	})
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(w, "true_drops=%d tcp_trace_events=%d\n", res.Drops, res.Retransmissions)
	fmt.Fprintf(w, "truth:     frac<0.01RTT=%.3f CoV=%.1f\n",
		res.Truth.FracBelow001, res.Truth.CoV)
	fmt.Fprintf(w, "tcp-trace: frac<0.01RTT=%.3f CoV=%.1f\n",
		res.FromTCP.FracBelow001, res.FromTCP.CoV)
	return res.Events, nil
}

func ifQuick(quick bool, a, b int) int {
	if quick {
		return a
	}
	return b
}
