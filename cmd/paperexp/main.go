// Command paperexp regenerates every table and figure of the paper as text
// series. Each artifact has a sub-flag; -all runs the full evaluation with
// paper-scale parameters (several minutes of wall time).
//
// Usage:
//
//	paperexp -fig 2          # Figure 2: NS-2 inter-loss PDF
//	paperexp -fig 3          # Figure 3: Dummynet inter-loss PDF
//	paperexp -fig 4          # Figure 4: PlanetLab inter-loss PDF
//	paperexp -fig 5          # Eq. 1/2 visibility table (Figures 5/6 model)
//	paperexp -fig 7          # Figure 7: pacing vs NewReno throughput
//	paperexp -fig 8          # Figure 8: parallel transfer latency
//	paperexp -fig 1          # Table 1: PlanetLab sites
//	paperexp -xtfrc          # extension: TFRC vs NewReno competition
//	paperexp -xecn           # extension: ECN signal coverage
//	paperexp -all            # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/planetlab"
	"repro/internal/sim"
	"repro/internal/tcptrace"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "paper artifact to regenerate (1=Table 1, 2,3,4,7,8=figures, 5=Eq.1/2 table)")
		all    = flag.Bool("all", false, "run everything")
		xtfrc  = flag.Bool("xtfrc", false, "run the TFRC competition extension")
		xecn   = flag.Bool("xecn", false, "run the ECN coverage extension")
		xtrace = flag.Bool("xtrace", false, "run the TCP-trace methodology comparison")
		seed   = flag.Int64("seed", 1, "experiment seed")
		quick  = flag.Bool("quick", false, "scaled-down parameters (seconds instead of minutes)")
		ascii  = flag.Bool("ascii", false, "ASCII plots for the PDF figures")
	)
	flag.Parse()

	e := &executor{seed: *seed, quick: *quick, ascii: *ascii}
	ran := false
	run := func(cond bool, f func() error, name string) {
		if !cond {
			return
		}
		ran = true
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paperexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run(*all || *fig == 1, e.table1, "Table 1: PlanetLab sites")
	run(*all || *fig == 2, e.figure2, "Figure 2: inter-loss PDF (NS-2)")
	run(*all || *fig == 3, e.figure3, "Figure 3: inter-loss PDF (Dummynet)")
	run(*all || *fig == 4, e.figure4, "Figure 4: inter-loss PDF (PlanetLab)")
	run(*all || *fig == 5 || *fig == 6, e.eq12, "Eq. 1/2: loss-event visibility")
	run(*all || *fig == 7, e.figure7, "Figure 7: pacing vs NewReno")
	run(*all || *fig == 8, e.figure8, "Figure 8: parallel-transfer latency")
	run(*all || *xtfrc, e.tfrc, "Extension: TFRC vs NewReno")
	run(*all || *xecn, e.ecn, "Extension: ECN signal coverage")
	run(*all || *xtrace, e.tcptrace, "Future work: TCP-trace methodology")

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

type executor struct {
	seed  int64
	quick bool
	ascii bool
}

func (e *executor) dur(full, quick sim.Duration) sim.Duration {
	if e.quick {
		return quick
	}
	return full
}

func (e *executor) table1() error {
	return core.WriteSites(os.Stdout, planetlab.Sites())
}

func (e *executor) figure2() error {
	res, err := core.RunFigure2(core.Fig2Config{
		Seed:     e.seed,
		Flows:    16,
		Duration: e.dur(120*sim.Second, 30*sim.Second),
	})
	if err != nil {
		return err
	}
	if e.ascii {
		return core.WriteASCIIPDF(os.Stdout, res.Report, 25)
	}
	return core.WritePDF(os.Stdout, res.Report)
}

func (e *executor) figure3() error {
	res, err := core.RunFigure3(core.Fig3Config{
		Seed:     e.seed,
		Duration: e.dur(120*sim.Second, 30*sim.Second),
	})
	if err != nil {
		return err
	}
	if e.ascii {
		return core.WriteASCIIPDF(os.Stdout, res.Report, 25)
	}
	return core.WritePDF(os.Stdout, res.Report)
}

func (e *executor) figure4() error {
	res, err := core.RunFigure4(core.Fig4Config{
		Seed:     e.seed,
		Paths:    ifQuick(e.quick, 12, 60),
		Duration: e.dur(5*60*sim.Second, 30*sim.Second),
	})
	if err != nil {
		return err
	}
	fmt.Printf("# paths: measured=%d validated=%d analyzed=%d losses=%d\n",
		res.PathsMeasured, res.PathsValidated, res.PathsAnalyzed, res.TotalLosses)
	if e.ascii {
		return core.WriteASCIIPDF(os.Stdout, res.Report, 25)
	}
	return core.WritePDF(os.Stdout, res.Report)
}

func (e *executor) eq12() error {
	rows := core.VisibilityTable(16, 10, []int{1, 2, 4, 8, 16, 32, 64, 128}, 2000, e.seed)
	return core.WriteVisibilityTable(os.Stdout, rows)
}

func (e *executor) figure7() error {
	res, err := core.RunFigure7(core.Fig7Config{
		Seed:     e.seed,
		Duration: e.dur(40*sim.Second, 20*sim.Second),
	})
	if err != nil {
		return err
	}
	return core.WriteFig7(os.Stdout, res, sim.Second)
}

func (e *executor) figure8() error {
	cfg := core.Fig8Config{Seed: e.seed}
	if e.quick {
		cfg.TotalBytes = 8 << 20
		cfg.Runs = 3
	}
	res := core.RunFigure8(cfg)
	return core.WriteFig8(os.Stdout, res)
}

func (e *executor) tfrc() error {
	res, err := core.RunTFRCCompetition(core.TFRCCompConfig{
		Seed:     e.seed,
		Duration: e.dur(60*sim.Second, 20*sim.Second),
	})
	if err != nil {
		return err
	}
	fmt.Printf("newreno_bytes=%d tfrc_bytes=%d deficit=%.1f%% tfrc_loss_rate=%.4f\n",
		res.NewRenoBytes, res.TFRCBytes, 100*res.Deficit, res.TFRCLossRate)
	return nil
}

func (e *executor) ecn() error {
	fmt.Println("# mode\tcoverage\tepochs\tpkts\tfairness")
	for _, mode := range []core.ECNMode{core.ModeDropTail, core.ModeRedECN, core.ModePersistentECN} {
		res, err := core.RunECNCoverage(core.ECNCoverageConfig{
			Seed:     e.seed,
			Duration: e.dur(30*sim.Second, 15*sim.Second),
		}, mode)
		if err != nil {
			return err
		}
		fmt.Printf("%v\t%.2f\t%d\t%d\t%.3f\n",
			mode, res.CoverageFraction, res.Epochs, res.AggregatePkts, res.FairnessIndex)
	}
	return nil
}

func (e *executor) tcptrace() error {
	res, err := tcptrace.Run(tcptrace.Config{
		Seed:     e.seed,
		Flows:    16,
		Duration: e.dur(60*sim.Second, 20*sim.Second),
	})
	if err != nil {
		return err
	}
	fmt.Printf("true_drops=%d tcp_trace_events=%d\n", res.Drops, res.Retransmissions)
	fmt.Printf("truth:     frac<0.01RTT=%.3f CoV=%.1f\n",
		res.Truth.FracBelow001, res.Truth.CoV)
	fmt.Printf("tcp-trace: frac<0.01RTT=%.3f CoV=%.1f\n",
		res.FromTCP.FracBelow001, res.FromTCP.CoV)
	return nil
}

func ifQuick(quick bool, a, b int) int {
	if quick {
		return a
	}
	return b
}
