package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "==== Table 1: PlanetLab sites ====") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if got := strings.Count(out, "planetlab"); got < 20 {
		t.Fatalf("site rows = %d:\n%s", got, out)
	}
}

func TestRunEq12Table(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "eq1_rate") {
		t.Fatalf("missing table header:\n%s", stdout.String())
	}
}

// stripTimings removes the wall-clock lines so sequential and parallel
// outputs can be compared byte for byte.
var timingRe = regexp.MustCompile(`(?m)^---- .* done in .* ----$`)

func stripTimings(s string) string { return timingRe.ReplaceAllString(s, "") }

func TestRunParallelMatchesSequential(t *testing.T) {
	// Two fast artifacts: Table 1 and the Eq. 1/2 visibility table. The
	// parallel scheduler must not change a byte of the rendered series,
	// and must print them in artifact order.
	var par, seql, stderr bytes.Buffer
	if code := run([]string{"-fig", "1,5", "-seq"}, &seql, &stderr); code != 0 {
		t.Fatalf("seq exit %d: %s", code, stderr.String())
	}
	if code := run([]string{"-fig", "1,5", "-workers", "2"}, &par, &stderr); code != 0 {
		t.Fatalf("par exit %d: %s", code, stderr.String())
	}
	if stripTimings(seql.String()) != stripTimings(par.String()) {
		t.Fatalf("parallel output diverges from sequential:\n%q\nvs\n%q",
			seql.String(), par.String())
	}
	if !strings.Contains(par.String(), "Table 1") ||
		strings.Index(par.String(), "Table 1") > strings.Index(par.String(), "Eq. 1/2") {
		t.Fatalf("artifact order broken:\n%s", par.String())
	}
}

func TestRunUsageOnNoSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Fatalf("usage not printed:\n%s", stderr.String())
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}
