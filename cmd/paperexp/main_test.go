package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunSingleArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "==== Table 1: PlanetLab sites ====") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if got := strings.Count(out, "planetlab"); got < 20 {
		t.Fatalf("site rows = %d:\n%s", got, out)
	}
}

func TestRunEq12Table(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "5"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "eq1_rate") {
		t.Fatalf("missing table header:\n%s", stdout.String())
	}
}

// stripTimings removes the wall-clock lines so sequential and parallel
// outputs can be compared byte for byte.
var timingRe = regexp.MustCompile(`(?m)^---- .* done in .* ----$`)

func stripTimings(s string) string { return timingRe.ReplaceAllString(s, "") }

func TestRunParallelMatchesSequential(t *testing.T) {
	// Two fast artifacts: Table 1 and the Eq. 1/2 visibility table. The
	// parallel scheduler must not change a byte of the rendered series,
	// and must print them in artifact order.
	var par, seql, stderr bytes.Buffer
	if code := run([]string{"-fig", "1,5", "-seq"}, &seql, &stderr); code != 0 {
		t.Fatalf("seq exit %d: %s", code, stderr.String())
	}
	if code := run([]string{"-fig", "1,5", "-workers", "2"}, &par, &stderr); code != 0 {
		t.Fatalf("par exit %d: %s", code, stderr.String())
	}
	if stripTimings(seql.String()) != stripTimings(par.String()) {
		t.Fatalf("parallel output diverges from sequential:\n%q\nvs\n%q",
			seql.String(), par.String())
	}
	if !strings.Contains(par.String(), "Table 1") ||
		strings.Index(par.String(), "Table 1") > strings.Index(par.String(), "Eq. 1/2") {
		t.Fatalf("artifact order broken:\n%s", par.String())
	}
}

func TestRunUsageOnNoSelection(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stderr.String(), "-fig") {
		t.Fatalf("usage not printed:\n%s", stderr.String())
	}
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

// TestRunFlagValidation: malformed selections must fail loudly with a
// clear message instead of being silently ignored.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"fig out of range", []string{"-fig", "9"}, "unknown -fig value 9"},
		{"fig zero", []string{"-fig", "0"}, "unknown -fig value 0"},
		{"fig negative", []string{"-fig", "-1"}, "unknown -fig value -1"},
		{"fig not a number", []string{"-fig", "2,x"}, `bad -fig value "x"`},
		{"fig empty token", []string{"-fig", "2,,3"}, `bad -fig value ""`},
		{"fig unknown among valid", []string{"-fig", "2,3,42"}, "unknown -fig value 42"},
		{"reps zero", []string{"-fig", "1", "-reps", "0"}, "-reps must be at least 1"},
		{"reps negative", []string{"-fig", "1", "-reps", "-3"}, "-reps must be at least 1"},
		{"unknown scenario", []string{"-scenario", "moebius-strip"}, `unknown scenario "moebius-strip"`},
		{"unknown scenario among valid", []string{"-scenario", "dumbbell,nope"}, `unknown scenario "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr %q missing %q", stderr.String(), tc.wantErr)
			}
		})
	}
	// The unknown-scenario error must list what is available.
	var stdout, stderr bytes.Buffer
	run([]string{"-scenario", "nope"}, &stdout, &stderr)
	if !strings.Contains(stderr.String(), "parking-lot") {
		t.Fatalf("scenario error does not list the registry:\n%s", stderr.String())
	}
}

func TestRunScenarioList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	for _, name := range []string{
		"dumbbell", "parking-lot", "access-tree", "hetero-mesh",
		"wifi-gilbert", "cellular-trace", "flaky-backbone",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Fatalf("catalog missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunWithProfiles exercises the -cpuprofile/-memprofile plumbing: a
// run with both flags must succeed and leave two non-empty pprof files.
func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "5", "-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

// TestRunProfileBadPath: an unwritable profile path must fail up front
// with a clear message, before any simulation runs.
func TestRunProfileBadPath(t *testing.T) {
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-fig", "5", flag, filepath.Join(t.TempDir(), "no", "such", "dir", "p")},
			&stdout, &stderr)
		if code != 2 {
			t.Fatalf("%s bad path: exit %d, want 2", flag, code)
		}
		if !strings.Contains(stderr.String(), flag[1:]) {
			t.Fatalf("%s error not attributed:\n%s", flag, stderr.String())
		}
	}
}

func TestRunScenarioArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "access-tree", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "==== Scenario: access-tree ====") {
		t.Fatalf("missing banner:\n%s", out)
	}
	if !strings.Contains(out, "# topology:") || !strings.Contains(out, "frac<0.01RTT") {
		t.Fatalf("scenario render incomplete:\n%s", out)
	}
}
