package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMeasuresPaths(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-paths", "3", "-duration", "5s", "-seed", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 4 { // header + 3 paths
		t.Fatalf("rows:\n%s", stdout.String())
	}
	if !strings.HasPrefix(lines[0], "# src") {
		t.Fatalf("missing header: %s", lines[0])
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	args := []string{"-paths", "4", "-duration", "5s", "-seed", "7"}
	var seq, par, stderr bytes.Buffer
	if code := run(append([]string{"-workers", "1"}, args...), &seq, &stderr); code != 0 {
		t.Fatalf("sequential: exit %d, %s", code, stderr.String())
	}
	if code := run(append([]string{"-workers", "4"}, args...), &par, &stderr); code != 0 {
		t.Fatalf("parallel: exit %d, %s", code, stderr.String())
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("output depends on worker count:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

func TestRunSinglePathAndList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-src", "0", "-dst", "21", "-duration", "5s"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if got := len(strings.Split(strings.TrimSpace(stdout.String()), "\n")); got != 2 {
		t.Fatalf("rows = %d:\n%s", got, stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list: exit %d", code)
	}
	if got := len(strings.Split(strings.TrimSpace(stdout.String()), "\n")); got != 26 {
		t.Fatalf("site rows = %d", got)
	}

	if code := run([]string{"-src", "5", "-dst", "5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("self pair: exit %d", code)
	}
}

// TestRunRejectsBadFlags pins the shared internal/cli contract: unknown
// flags AND invalid values both diagnose to stderr and exit 2.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"zero paths", []string{"-paths", "0"}, "-paths"},
		{"zero duration", []string{"-duration", "0s"}, "-duration"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.want)
		}
	}
}
