// Command lossprobe runs the PlanetLab-style measurement: CBR probes over
// directed paths of the synthetic 26-site mesh, with the paper's dual
// packet-size validation, and prints per-path results.
//
// Usage:
//
//	lossprobe -paths 20 -duration 1m -seed 3
//	lossprobe -src 0 -dst 21 -duration 5m     # one specific path
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/planetlab"
	"repro/internal/probe"
	"repro/internal/sim"
)

func main() {
	var (
		paths    = flag.Int("paths", 10, "number of random directed paths to measure")
		src      = flag.Int("src", -1, "source site index (measure one path)")
		dst      = flag.Int("dst", -1, "destination site index (measure one path)")
		duration = flag.Duration("duration", time.Minute, "per-run probe duration")
		interval = flag.Duration("interval", time.Millisecond, "probe interval")
		seed     = flag.Int64("seed", 1, "mesh/measurement seed")
		list     = flag.Bool("list", false, "list the 26 sites and exit")
	)
	flag.Parse()

	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: *seed})
	if *list {
		for i, s := range mesh.Sites {
			fmt.Printf("%2d  %-45s %s\n", i, s.Host, s.Location)
		}
		return
	}

	fmt.Println("# src\tdst\trtt_ms\tvalid\tloss_small\tloss_large\tb2b_small\tlosses")
	measure := func(i, j int) {
		sched := sim.NewScheduler()
		path := mesh.NewPathProcess(i, j)
		m := probe.MeasurePath(sched, path, probe.RunConfig{
			Flow:     1,
			Interval: sim.Dur(*interval),
			Duration: sim.Dur(*duration),
		})
		fmt.Printf("%d\t%d\t%.1f\t%v\t%.5f\t%.5f\t%.2f\t%d\n",
			i, j, path.Params.RTT.Seconds()*1e3, m.Valid,
			m.Small.LossRate(), m.Large.LossRate(),
			m.Small.BackToBackFraction(), len(m.Small.LossSendTimes))
	}

	if *src >= 0 && *dst >= 0 {
		if *src == *dst || *src >= len(mesh.Sites) || *dst >= len(mesh.Sites) {
			fmt.Fprintln(os.Stderr, "lossprobe: invalid site pair")
			os.Exit(2)
		}
		measure(*src, *dst)
		return
	}

	pick := sim.NewRand(sim.SubSeed(*seed, 99))
	seen := map[[2]int]bool{}
	for len(seen) < *paths {
		i, j := mesh.RandomPair(pick)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		measure(i, j)
	}
}
