// Command lossprobe runs the PlanetLab-style measurement: CBR probes over
// directed paths of the synthetic 26-site mesh, with the paper's dual
// packet-size validation, and prints per-path results. Paths are measured
// concurrently through the internal/exp runner; the output order and
// every number are independent of the worker count.
//
// Usage:
//
//	lossprobe -paths 20 -duration 1m -seed 3
//	lossprobe -src 0 -dst 21 -duration 5m     # one specific path
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/planetlab"
	"repro/internal/probe"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := cli.NewFlagSet("lossprobe", stderr)
	var (
		paths    = fs.Int("paths", 10, "number of random directed paths to measure")
		src      = fs.Int("src", -1, "source site index (measure one path)")
		dst      = fs.Int("dst", -1, "destination site index (measure one path)")
		duration = fs.Duration("duration", time.Minute, "per-run probe duration")
		interval = fs.Duration("interval", time.Millisecond, "probe interval")
		seed     = fs.Int64("seed", 1, "mesh/measurement seed")
		workers  = fs.Int("workers", 0, "concurrent path measurements (0 = GOMAXPROCS)")
		list     = fs.Bool("list", false, "list the 26 sites and exit")
	)
	if code, ok := cli.Parse(fs, args); !ok {
		return code
	}
	if *paths < 1 {
		return cli.Usagef(stderr, "lossprobe", "-paths must be at least 1, got %d", *paths)
	}
	if *duration <= 0 || *interval <= 0 {
		return cli.Usagef(stderr, "lossprobe", "-duration and -interval must be positive")
	}

	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: *seed})
	if *list {
		for i, s := range mesh.Sites {
			fmt.Fprintf(stdout, "%2d  %-45s %s\n", i, s.Host, s.Location)
		}
		return 0
	}

	var pairs [][2]int
	if *src >= 0 && *dst >= 0 {
		if *src == *dst || *src >= len(mesh.Sites) || *dst >= len(mesh.Sites) {
			return cli.Usagef(stderr, "lossprobe", "invalid site pair %d -> %d", *src, *dst)
		}
		pairs = [][2]int{{*src, *dst}}
	} else {
		pick := sim.NewRand(sim.SubSeed(*seed, 99))
		pairs = mesh.RandomPairs(pick, *paths)
	}

	fmt.Fprintln(stdout, "# src\tdst\trtt_ms\tvalid\tloss_small\tloss_large\tb2b_small\tlosses")
	// Each path is an independent simulated world: measure them in
	// parallel, print them in selection order.
	results := exp.Sweep(exp.Options{Seed: *seed, Workers: *workers}, pairs,
		func(r exp.Run[[2]int]) (string, error) {
			i, j := r.Config[0], r.Config[1]
			sched := sim.NewScheduler()
			path := mesh.NewPathProcess(i, j)
			m := probe.MeasurePath(sched, path, probe.RunConfig{
				Flow:     1,
				Interval: sim.Dur(*interval),
				Duration: sim.Dur(*duration),
			})
			return fmt.Sprintf("%d\t%d\t%.1f\t%v\t%.5f\t%.5f\t%.2f\t%d\n",
				i, j, path.Params.RTT.Seconds()*1e3, m.Valid,
				m.Small.LossRate(), m.Large.LossRate(),
				m.Small.BackToBackFraction(), len(m.Small.LossSendTimes)), nil
		})
	rows, err := exp.Values(results)
	if err != nil {
		return cli.Failf(stderr, "lossprobe", "%v", err)
	}
	for _, row := range rows {
		io.WriteString(stdout, row)
	}
	return 0
}
