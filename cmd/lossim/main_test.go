package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesTraceAndSummary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-env", "ns2", "-flows", "4", "-duration", "8s", "-warmup", "1s",
		"-seed", "1", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("trace too short:\n%s", data)
	}
	if !strings.Contains(stderr.String(), "env=ns2 drops=") {
		t.Fatalf("missing summary: %s", stderr.String())
	}
}

func TestRunDummynetToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-env", "dummynet", "-flows-per-class", "2", "-duration", "10s",
		"-warmup", "2s", "-summary=false",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("summary printed despite -summary=false: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "\n") {
		t.Fatal("no CSV on stdout")
	}
}

// TestRunRejectsBadFlags pins the shared internal/cli contract: unknown
// flags AND invalid values both diagnose to stderr and exit 2.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the stderr diagnosis
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"unknown env", []string{"-env", "marsnet"}, "marsnet"},
		{"zero flows", []string{"-flows", "0"}, "-flows"},
		{"zero per-class", []string{"-flows-per-class", "-3"}, "-flows-per-class"},
		{"negative duration", []string{"-duration", "-5s"}, "-duration"},
		{"warmup past duration", []string{"-duration", "5s", "-warmup", "5s"}, "-warmup"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.want)
		}
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "Usage of lossim") {
		t.Fatalf("usage not printed: %s", stderr.String())
	}
}
