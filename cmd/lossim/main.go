// Command lossim runs a packet-level loss-trace scenario (the paper's NS-2
// or Dummynet setup) and writes the bottleneck drop trace as CSV to stdout
// or a file. Analyze the trace with cmd/lossstat.
//
// Usage:
//
//	lossim -env ns2 -flows 16 -duration 60s -seed 1 -o trace.csv
//	lossim -env dummynet -flows-per-class 4 -duration 60s
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := cli.NewFlagSet("lossim", stderr)
	var (
		env      = fs.String("env", "ns2", "environment: ns2 (Figure 2) or dummynet (Figure 3)")
		flows    = fs.Int("flows", 16, "TCP flows (ns2)")
		perClass = fs.Int("flows-per-class", 4, "flows per RTT class (dummynet)")
		duration = fs.Duration("duration", 60*time.Second, "simulated duration")
		warmup   = fs.Duration("warmup", 10*time.Second, "warmup excluded from the trace")
		buffer   = fs.Float64("buffer-bdp", 0.5, "bottleneck buffer as a fraction of BDP (paper sweeps 1/8..2)")
		noise    = fs.Float64("noise", 0.10, "on-off noise load as a fraction of capacity")
		seed     = fs.Int64("seed", 1, "experiment seed")
		out      = fs.String("o", "-", "output file for the CSV trace ('-' = stdout)")
		summary  = fs.Bool("summary", true, "print the burstiness summary to stderr")
	)
	if code, ok := cli.Parse(fs, args); !ok {
		return code
	}
	if *env != "ns2" && *env != "dummynet" {
		return cli.Usagef(stderr, "lossim", "unknown -env %q (want ns2 or dummynet)", *env)
	}
	if *flows < 1 {
		return cli.Usagef(stderr, "lossim", "-flows must be at least 1, got %d", *flows)
	}
	if *perClass < 1 {
		return cli.Usagef(stderr, "lossim", "-flows-per-class must be at least 1, got %d", *perClass)
	}
	if *duration <= 0 {
		return cli.Usagef(stderr, "lossim", "-duration must be positive, got %v", *duration)
	}
	if *warmup < 0 || *warmup >= *duration {
		return cli.Usagef(stderr, "lossim", "-warmup %v must lie in [0, duration)", *warmup)
	}

	var w io.Writer = stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return cli.Failf(stderr, "lossim", "%v", err)
		}
		defer f.Close()
		w = f
	}

	var res *core.ScenarioResult
	var err error
	if *env == "ns2" {
		res, err = core.RunFigure2(core.Fig2Config{
			Seed:          *seed,
			Flows:         *flows,
			BufferBDPFrac: *buffer,
			NoiseFraction: *noise,
			Duration:      sim.Dur(*duration),
			Warmup:        sim.Dur(*warmup),
		})
	} else {
		res, err = core.RunFigure3(core.Fig3Config{
			Seed:          *seed,
			FlowsPerClass: *perClass,
			BufferBDPFrac: *buffer,
			NoiseFraction: *noise,
			Duration:      sim.Dur(*duration),
			Warmup:        sim.Dur(*warmup),
		})
	}
	if err != nil {
		return cli.Failf(stderr, "lossim", "%v", err)
	}
	if err := res.Trace.WriteCSV(w); err != nil {
		return cli.Failf(stderr, "lossim", "%v", err)
	}
	if *summary {
		r := res.Report
		fmt.Fprintf(stderr,
			"env=%s drops=%d mean_rtt=%v lambda=%.2f/RTT frac<0.01RTT=%.3f frac<1RTT=%.3f CoV=%.1f IoD=%.1f\n",
			*env, res.Drops, res.MeanRTT, r.Lambda, r.FracBelow001, r.FracBelow1,
			r.CoV, r.IndexOfDispersion)
	}
	return 0
}
