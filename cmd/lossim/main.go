// Command lossim runs a packet-level loss-trace scenario (the paper's NS-2
// or Dummynet setup) and writes the bottleneck drop trace as CSV to stdout
// or a file. Analyze the trace with cmd/lossstat.
//
// Usage:
//
//	lossim -env ns2 -flows 16 -duration 60s -seed 1 -o trace.csv
//	lossim -env dummynet -flows-per-class 4 -duration 60s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	var (
		env      = flag.String("env", "ns2", "environment: ns2 (Figure 2) or dummynet (Figure 3)")
		flows    = flag.Int("flows", 16, "TCP flows (ns2)")
		perClass = flag.Int("flows-per-class", 4, "flows per RTT class (dummynet)")
		duration = flag.Duration("duration", 60*time.Second, "simulated duration")
		warmup   = flag.Duration("warmup", 10*time.Second, "warmup excluded from the trace")
		buffer   = flag.Float64("buffer-bdp", 0.5, "bottleneck buffer as a fraction of BDP (paper sweeps 1/8..2)")
		noise    = flag.Float64("noise", 0.10, "on-off noise load as a fraction of capacity")
		seed     = flag.Int64("seed", 1, "experiment seed")
		out      = flag.String("o", "-", "output file for the CSV trace ('-' = stdout)")
		summary  = flag.Bool("summary", true, "print the burstiness summary to stderr")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	var res *core.ScenarioResult
	var err error
	switch *env {
	case "ns2":
		res, err = core.RunFigure2(core.Fig2Config{
			Seed:          *seed,
			Flows:         *flows,
			BufferBDPFrac: *buffer,
			NoiseFraction: *noise,
			Duration:      sim.Dur(*duration),
			Warmup:        sim.Dur(*warmup),
		})
	case "dummynet":
		res, err = core.RunFigure3(core.Fig3Config{
			Seed:          *seed,
			FlowsPerClass: *perClass,
			BufferBDPFrac: *buffer,
			NoiseFraction: *noise,
			Duration:      sim.Dur(*duration),
			Warmup:        sim.Dur(*warmup),
		})
	default:
		fatal(fmt.Errorf("unknown -env %q (want ns2 or dummynet)", *env))
	}
	if err != nil {
		fatal(err)
	}
	if err := res.Trace.WriteCSV(w); err != nil {
		fatal(err)
	}
	if *summary {
		r := res.Report
		fmt.Fprintf(os.Stderr,
			"env=%s drops=%d mean_rtt=%v lambda=%.2f/RTT frac<0.01RTT=%.3f frac<1RTT=%.3f CoV=%.1f IoD=%.1f\n",
			*env, res.Drops, res.MeanRTT, r.Lambda, r.FracBelow001, r.FracBelow1,
			r.CoV, r.IndexOfDispersion)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lossim:", err)
	os.Exit(1)
}
