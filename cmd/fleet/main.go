// Command fleet runs a fleet-scale campaign: thousands of seed- and
// parameter-jittered instances of the registered scenario catalog, run
// across every core on recycled arenas and merged into one bounded
// burstiness aggregate (see EXPERIMENTS.md, "Fleet-scale methodology").
// Memory stays bounded no matter how many worlds run, and every number
// except the wall clock is independent of -shards.
//
// Usage:
//
//	fleet -worlds 256                        # the whole catalog, jittered
//	fleet -worlds 64 -scenario dumbbell      # one topology
//	fleet -worlds 16000 -scenario dumbbell -duration 3s -warmup 1s
//	                                         # a million flows (66/world), minutes on one box
//	fleet -worlds 64 -shards 1               # sequential (identical report)
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := cli.NewFlagSet("fleet", stderr)
	var (
		worlds   = fs.Int("worlds", 256, "fleet size (number of simulated worlds)")
		scenario = fs.String("scenario", "all", "scenarios to cycle through, comma-separated; \"all\" = the catalog, \"list\" prints it")
		duration = fs.Duration("duration", 60*time.Second, "per-world simulated duration")
		warmup   = fs.Duration("warmup", 10*time.Second, "per-world warmup excluded from analysis")
		seed     = fs.Int64("seed", 1, "fleet base seed (world i runs SubSeed(seed, i))")
		rateSpan = fs.Float64("rate-span", 0.2, "link-rate jitter: scales drawn from [1-f, 1+f) per world (0 disables)")
		rttSpan  = fs.Float64("rtt-span", 0.3, "propagation-delay jitter span (0 disables)")
		lossSpan = fs.Float64("loss-span", 0.0, "wire-loss burst-rate jitter span (0 disables)")
		shards   = fs.Int("shards", 0, "concurrent workers (0 = GOMAXPROCS, 1 = sequential); never changes the report")
		fp       = fs.Bool("fingerprint", false, "also print the deterministic report fingerprint (shard-invariance check)")
	)
	if code, ok := cli.Parse(fs, args); !ok {
		return code
	}
	if *scenario == "list" {
		for _, sc := range topo.Scenarios() {
			fmt.Fprintf(stdout, "%-16s %s\n", sc.Name, sc.Description)
		}
		return 0
	}
	if *worlds < 1 {
		return cli.Usagef(stderr, "fleet", "-worlds must be at least 1, got %d", *worlds)
	}
	if *duration <= 0 {
		return cli.Usagef(stderr, "fleet", "-duration must be positive, got %v", *duration)
	}
	if *warmup < 0 || *warmup >= *duration {
		return cli.Usagef(stderr, "fleet", "-warmup %v must lie in [0, duration)", *warmup)
	}
	for _, s := range []struct {
		name string
		v    float64
	}{{"-rate-span", *rateSpan}, {"-rtt-span", *rttSpan}, {"-loss-span", *lossSpan}} {
		if s.v < 0 || s.v >= 1 {
			return cli.Usagef(stderr, "fleet", "%s must lie in [0, 1), got %v", s.name, s.v)
		}
	}
	var names []string
	if *scenario != "all" {
		names = strings.Split(*scenario, ",")
	}

	rep, err := core.RunFleet(core.FleetConfig{
		Scenarios: names,
		Worlds:    *worlds,
		Seed:      *seed,
		Duration:  sim.Dur(*duration),
		Warmup:    sim.Dur(*warmup),
		RateSpan:  *rateSpan,
		RTTSpan:   *rttSpan,
		LossSpan:  *lossSpan,
		Shards:    *shards,
	})
	if err != nil {
		return cli.Failf(stderr, "fleet", "%v", err)
	}
	if err := core.WriteFleet(stdout, rep); err != nil {
		return cli.Failf(stderr, "fleet", "%v", err)
	}
	if *fp {
		if _, err := io.WriteString(stdout, rep.Fingerprint()); err != nil {
			return cli.Failf(stderr, "fleet", "%v", err)
		}
	}
	return 0
}
