package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallFleet(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-worlds", "4", "-scenario", "dumbbell", "-duration", "6s",
		"-warmup", "2s", "-seed", "7",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "# fleet worlds=4") || !strings.Contains(out, "events_per_sec=") {
		t.Fatalf("missing fleet header:\n%s", out)
	}
	if !strings.Contains(out, "lambda=") || !strings.Contains(out, "bursts=") {
		t.Fatalf("missing burstiness summary:\n%s", out)
	}
}

// TestRunShardFlagInvariance pins the user-facing determinism claim: the
// full report (with -fingerprint) is byte-identical for -shards 1 and 4.
func TestRunShardFlagInvariance(t *testing.T) {
	args := []string{"-worlds", "4", "-scenario", "access-tree", "-duration", "6s",
		"-warmup", "2s", "-fingerprint"}
	var seq, par, stderr bytes.Buffer
	if code := run(append([]string{"-shards", "1"}, args...), &seq, &stderr); code != 0 {
		t.Fatalf("sequential: exit %d, %s", code, stderr.String())
	}
	if code := run(append([]string{"-shards", "4"}, args...), &par, &stderr); code != 0 {
		t.Fatalf("parallel: exit %d, %s", code, stderr.String())
	}
	norm := func(b *bytes.Buffer) string {
		// Drop the wall-clock fields; everything else must match exactly.
		lines := strings.Split(b.String(), "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "# fleet ") {
				lines[i] = l[:strings.Index(l, " elapsed=")]
			}
		}
		return strings.Join(lines, "\n")
	}
	if norm(&seq) != norm(&par) {
		t.Fatalf("report depends on -shards:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

func TestRunListScenarios(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("list: exit %d", code)
	}
	if !strings.Contains(stdout.String(), "dumbbell") {
		t.Fatalf("catalog missing dumbbell:\n%s", stdout.String())
	}
}

// TestRunRejectsBadFlags pins the shared internal/cli contract: unknown
// flags AND invalid values both diagnose to stderr and exit 2.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"zero worlds", []string{"-worlds", "0"}, "-worlds"},
		{"span too wide", []string{"-rate-span", "1.0"}, "-rate-span"},
		{"negative span", []string{"-loss-span", "-0.5"}, "-loss-span"},
		{"warmup past duration", []string{"-duration", "5s", "-warmup", "6s"}, "-warmup"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.want)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "no-such", "-worlds", "1", "-duration", "2s", "-warmup", "1s"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown scenario: exit %d, want runtime failure 1 (stderr: %s)", code, stderr.String())
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "Usage of fleet") {
		t.Fatalf("usage not printed: %s", stderr.String())
	}
}
