package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	rec := &trace.Recorder{}
	// A bursty synthetic trace: clusters of closely spaced drops.
	at := sim.Time(0)
	for burst := 0; burst < 20; burst++ {
		at = at.Add(sim.Duration(burst+1) * 50 * sim.Millisecond)
		for k := 0; k < 4; k++ {
			at = at.Add(100 * sim.Microsecond)
			rec.Add(trace.LossEvent{At: at, Flow: k, Seq: int64(burst*4 + k), Size: 1000})
		}
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rec.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyzesTrace(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rtt", "100ms", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "frac<0.01RTT") || !strings.Contains(out, "poisson_pdf") {
		t.Fatalf("unexpected report:\n%s", out)
	}
}

func TestRunASCIIPlot(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-rtt", "100ms", "-ascii", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "*") {
		t.Fatalf("no plot marks:\n%s", stdout.String())
	}
}

func TestRunUsageAndMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"/no/such/trace.csv"}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}

// TestRunRejectsBadFlags pins the shared internal/cli contract: unknown
// flags AND invalid values both diagnose to stderr and exit 2.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-no-such-flag", "x.csv"}, "flag provided but not defined"},
		{"zero rtt", []string{"-rtt", "0s", "x.csv"}, "-rtt"},
		{"negative bin", []string{"-bin", "-0.1", "x.csv"}, "-bin"},
		{"range below bin", []string{"-bin", "0.5", "-range", "0.2", "x.csv"}, "-range"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr.String(), tc.want)
		}
	}
}
