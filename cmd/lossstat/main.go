// Command lossstat analyzes a loss trace (CSV from cmd/lossim) into the
// paper's inter-loss-interval PDF and burstiness summary.
//
// Usage:
//
//	lossstat -rtt 200ms trace.csv          # PDF rows to stdout
//	lossstat -rtt 200ms -ascii trace.csv   # terminal plot
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		rtt   = flag.Duration("rtt", 100*time.Millisecond, "RTT used to normalize intervals")
		bin   = flag.Float64("bin", 0.02, "PDF bin width in RTT units")
		rng   = flag.Float64("range", 2.0, "PDF range in RTT units")
		ascii = flag.Bool("ascii", false, "render an ASCII log-scale plot instead of rows")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lossstat [flags] trace.csv")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		fatal(err)
	}
	rep, err := analysis.AnalyzeTrace(rec, sim.Dur(*rtt), analysis.Config{
		BinWidth:    *bin,
		MaxInterval: *rng,
	})
	if err != nil {
		fatal(err)
	}
	if *ascii {
		err = core.WriteASCIIPDF(os.Stdout, rep, 25)
	} else {
		err = core.WritePDF(os.Stdout, rep)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lossstat:", err)
	os.Exit(1)
}
