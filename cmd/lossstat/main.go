// Command lossstat analyzes a loss trace (CSV from cmd/lossim) into the
// paper's inter-loss-interval PDF and burstiness summary.
//
// Usage:
//
//	lossstat -rtt 200ms trace.csv          # PDF rows to stdout
//	lossstat -rtt 200ms -ascii trace.csv   # terminal plot
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lossstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rtt   = fs.Duration("rtt", 100*time.Millisecond, "RTT used to normalize intervals")
		bin   = fs.Float64("bin", 0.02, "PDF bin width in RTT units")
		rng   = fs.Float64("range", 2.0, "PDF range in RTT units")
		ascii = fs.Bool("ascii", false, "render an ASCII log-scale plot instead of rows")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: lossstat [flags] trace.csv")
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "lossstat:", err)
		return 1
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		fmt.Fprintln(stderr, "lossstat:", err)
		return 1
	}
	rep, err := analysis.AnalyzeTrace(rec, sim.Dur(*rtt), analysis.Config{
		BinWidth:    *bin,
		MaxInterval: *rng,
	})
	if err != nil {
		fmt.Fprintln(stderr, "lossstat:", err)
		return 1
	}
	if *ascii {
		err = core.WriteASCIIPDF(stdout, rep, 25)
	} else {
		err = core.WritePDF(stdout, rep)
	}
	if err != nil {
		fmt.Fprintln(stderr, "lossstat:", err)
		return 1
	}
	return 0
}
