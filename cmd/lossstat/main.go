// Command lossstat analyzes a loss trace (CSV from cmd/lossim) into the
// paper's inter-loss-interval PDF and burstiness summary.
//
// Usage:
//
//	lossstat -rtt 200ms trace.csv          # PDF rows to stdout
//	lossstat -rtt 200ms -ascii trace.csv   # terminal plot
package main

import (
	"io"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := cli.NewFlagSet("lossstat", stderr)
	var (
		rtt   = fs.Duration("rtt", 100*time.Millisecond, "RTT used to normalize intervals")
		bin   = fs.Float64("bin", 0.02, "PDF bin width in RTT units")
		rng   = fs.Float64("range", 2.0, "PDF range in RTT units")
		ascii = fs.Bool("ascii", false, "render an ASCII log-scale plot instead of rows")
	)
	if code, ok := cli.Parse(fs, args); !ok {
		return code
	}
	if *rtt <= 0 {
		return cli.Usagef(stderr, "lossstat", "-rtt must be positive, got %v", *rtt)
	}
	if *bin <= 0 {
		return cli.Usagef(stderr, "lossstat", "-bin must be positive, got %v", *bin)
	}
	if *rng <= *bin {
		return cli.Usagef(stderr, "lossstat", "-range %v must exceed -bin %v", *rng, *bin)
	}
	if fs.NArg() != 1 {
		return cli.Usagef(stderr, "lossstat", "usage: lossstat [flags] trace.csv")
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return cli.Failf(stderr, "lossstat", "%v", err)
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		return cli.Failf(stderr, "lossstat", "%v", err)
	}
	rep, err := analysis.AnalyzeTrace(rec, sim.Dur(*rtt), analysis.Config{
		BinWidth:    *bin,
		MaxInterval: *rng,
	})
	if err != nil {
		return cli.Failf(stderr, "lossstat", "%v", err)
	}
	if *ascii {
		err = core.WriteASCIIPDF(stdout, rep, 25)
	} else {
		err = core.WritePDF(stdout, rep)
	}
	if err != nil {
		return cli.Failf(stderr, "lossstat", "%v", err)
	}
	return 0
}
