package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/ratectl"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The micro-benchmarks in this file isolate the simulator's per-packet hot
// paths — scheduler timer churn, port enqueue/dequeue, the RED decision
// path, and a full dumbbell world — so the CI bench-gate can localize a
// regression instead of only seeing it smeared across a whole figure run.
// All of them ReportAllocs: the engine's contract is an allocation-free
// steady state, and allocs/op is the machine-independent half of the gate.

// BenchmarkSchedulerChurn models the TCP retransmission-timer pattern that
// dominates scheduler load: every "ACK" cancels a pending timer and arms a
// new one (lazy deletion leaves a tombstone each time), with the timer
// itself almost never firing.
func BenchmarkSchedulerChurn(b *testing.B) {
	b.ReportAllocs()
	const acks = 100000
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		timeout := func() {}
		var rto sim.Timer
		n := 0
		var ack func()
		ack = func() {
			if rto.Pending() {
				s.Cancel(rto)
			}
			rto = s.After(200*sim.Millisecond, timeout)
			n++
			if n < acks {
				s.After(10*sim.Microsecond, ack)
			}
		}
		s.After(0, ack)
		s.Run()
		if n != acks {
			b.Fatalf("ran %d acks", n)
		}
	}
}

// BenchmarkSchedulerWheelChurn drives the timing wheel across both
// levels: every step arms a short timer that lands in the level-0 wheel
// and fires, re-arms a medium timer on the level-1 wheel (cancelling the
// previous one through the slot swap-remove path), and advances simulated
// time across level-1 slot boundaries so cascade runs too. Together with
// BenchmarkSchedulerChurn (heap-dominated near-horizon churn) it pins
// both halves of the scheduler front-end.
func BenchmarkSchedulerWheelChurn(b *testing.B) {
	b.ReportAllocs()
	const steps = 100000
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		noop := func() {}
		var far sim.Timer
		n := 0
		var step func()
		step = func() {
			if far.Pending() {
				s.Cancel(far)
			}
			far = s.After(50*sim.Millisecond, noop) // level-1 horizon
			s.After(300*sim.Microsecond, noop)      // level-0 horizon, fires
			n++
			if n < steps {
				s.After(20*sim.Microsecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		if n != steps {
			b.Fatalf("ran %d steps", n)
		}
	}
}

// BenchmarkWorldInstantiate measures the compiled-topology lifecycle on a
// 16-pair dumbbell: the Program is compiled once, and each op stamps out
// one world (Instantiate) then rewinds it seven times with fresh seeds
// (Reset) — the one-build-many-resets shape replication sweeps produce.
// The reset path is the one that must stay near allocation-free.
func BenchmarkWorldInstantiate(b *testing.B) {
	b.ReportAllocs()
	const pairs = 16
	delays := make([]sim.Duration, pairs)
	for i := range delays {
		delays[i] = 5 * sim.Millisecond
	}
	spec := topo.DumbbellSpec(netsim.DumbbellConfig{
		BottleneckRate:  100_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          64,
	})
	prog, err := topo.Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	sched := sim.NewScheduler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Reset()
		net, err := prog.Instantiate(sched, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 7; r++ {
			sched.Reset()
			if err := net.Reset(spec, int64(r+1)); err != nil {
				b.Fatal(err)
			}
		}
		if net.NumFlows() != pairs {
			b.Fatalf("world has %d flows, want %d", net.NumFlows(), pairs)
		}
	}
}

// BenchmarkLinkEnqueueDequeue drives one overloaded DropTail port: bursts
// arrive faster than the link drains, so the benchmark exercises enqueue,
// serialization scheduling, delivery and the drop-recycle path together.
func BenchmarkLinkEnqueueDequeue(b *testing.B) {
	b.ReportAllocs()
	const total = 100000
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		pool := netsim.NewPacketPool()
		delivered := 0
		sink := netsim.HandlerFunc(func(p *netsim.Packet) {
			delivered++
			pool.Put(p)
		})
		port := netsim.NewPort(sched, netsim.NewDropTail(64),
			netsim.NewLink(1_000_000_000, sim.Microsecond, sink))
		port.Pool = pool

		sent := 0
		var feed func()
		feed = func() {
			// 12 packets per 100 µs of 1000 B ≈ 960 Mbps offered on a
			// 1 Gbps link, plus bursts: most forward, some drop.
			for j := 0; j < 12 && sent < total; j++ {
				p := pool.Get()
				p.Size = 1000
				sent++
				port.Handle(p)
			}
			if sent < total {
				sched.After(100*sim.Microsecond, feed)
			}
		}
		sched.After(0, feed)
		sched.Run()
		if uint64(total) != port.Forwarded()+port.Dropped {
			b.Fatalf("sent %d, forwarded %d + dropped %d", total, port.Forwarded(), port.Dropped)
		}
		if delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkPortDrain measures the port's deep-queue drain in isolation:
// one op fills a 4096-packet DropTail backlog in a single burst, then runs
// the world until the last packet is delivered. On the batched path the
// whole drain is one serialization chain (the txDone timer re-armed in
// place) plus one delivery ring (a single timer walking the ring), so the
// per-packet cost is the pure dequeue-and-rearm hot path — and the steady
// state must be allocation-free: scheduler, pool, port and ring are reused
// across ops, so allocs/op is gated at exactly zero.
func BenchmarkPortDrain(b *testing.B) {
	b.ReportAllocs()
	const depth = 4096
	sched := sim.NewScheduler()
	pool := netsim.NewPacketPool()
	delivered := 0
	sink := netsim.HandlerFunc(func(p *netsim.Packet) {
		delivered++
		pool.Put(p)
	})
	port := netsim.NewPort(sched, netsim.NewDropTail(depth),
		netsim.NewLink(1_000_000_000, sim.Millisecond, sink))
	port.Pool = pool
	fill := func() {
		for j := 0; j < depth; j++ {
			p := pool.Get()
			p.Size = 1000
			port.Handle(p)
		}
	}
	run := func() {
		sched.Reset()
		port.Reset()
		delivered = 0
		sched.At(0, fill)
		sched.Run()
		if delivered != depth {
			b.Fatalf("delivered %d of %d", delivered, depth)
		}
	}
	run() // warm the pool, the delivery ring and the scheduler arena
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkREDDropPath isolates the RED decision arithmetic (EWMA update,
// uniformized drop probability, idle aging) at an operating point inside
// the [minTh, maxTh) probabilistic band, where the math is hottest.
func BenchmarkREDDropPath(b *testing.B) {
	b.ReportAllocs()
	const offered = 200000
	for i := 0; i < b.N; i++ {
		rng := sim.NewRand(int64(i + 1))
		q := netsim.NewRED(netsim.REDConfig{
			Limit: 64, MinTh: 8, MaxTh: 32, MaxP: 0.1,
			PacketsPerSecond: 12500,
		}, rng)
		pool := netsim.NewPacketPool()
		drops := 0
		now := 0.0
		for k := 0; k < offered; k++ {
			p := pool.Get()
			p.Size = 1000
			if !q.EnqueueAt(p, now) {
				drops++
				pool.Put(p)
			}
			// Drain slower than we offer so the average sits in the band.
			if k%3 != 0 {
				if d := q.Dequeue(); d != nil {
					pool.Put(d)
				}
			}
			now += 80e-6
		}
		if drops == 0 {
			b.Fatal("RED never dropped at overload")
		}
	}
}

// syntheticLossTrace builds one bursty loss trace for the analysis
// benchmarks: clusters of back-to-back drops separated by multi-RTT gaps,
// the shape every scenario produces. Deterministic, so batch and
// streaming analyze identical input.
func syntheticLossTrace(n int) ([]sim.Time, sim.Duration) {
	const rtt = 50 * sim.Millisecond
	out := make([]sim.Time, 0, n)
	var t sim.Time
	for len(out) < n {
		t = t.Add(3 * rtt) // inter-burst gap
		for i := 0; i < 7 && len(out) < n; i++ {
			t = t.Add(rtt / 100) // sub-RTT clustering
			out = append(out, t)
		}
	}
	return out, rtt
}

// BenchmarkAnalyzeBatch measures the seed measurement pipeline: a
// recorder retains the trace, then the batch Analyze pass materializes
// intervals, normalized times, sort copies and PMF slices. Its allocs/op
// is the cost the streaming engine removes.
func BenchmarkAnalyzeBatch(b *testing.B) {
	b.ReportAllocs()
	times, rtt := syntheticLossTrace(20000)
	for i := 0; i < b.N; i++ {
		rec := &trace.Recorder{}
		for k, at := range times {
			rec.Add(trace.LossEvent{At: at, Flow: k % 16, Seq: int64(k)})
		}
		rep, err := analysis.AnalyzeTrace(rec, rtt, analysis.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.CoV, "cov")
	}
}

// BenchmarkAnalyzeStreaming measures the online pipeline on the identical
// trace: a sink-mode recorder feeds the analyzer event by event and the
// scratch (histogram, reservoir, PMF and sort buffers) is reused across
// iterations exactly as a sweep worker reuses it across replications —
// the steady state is allocation-free except for the bounded one-time
// scratch growth.
func BenchmarkAnalyzeStreaming(b *testing.B) {
	b.ReportAllocs()
	times, rtt := syntheticLossTrace(20000)
	an, err := analysis.NewStreaming(rtt, analysis.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := &trace.Recorder{}
	rec.SetSink(an.Observe, false)
	run := func() *analysis.Report {
		if err := an.Reset(rtt, analysis.Config{}); err != nil {
			b.Fatal(err)
		}
		for k, at := range times {
			rec.Add(trace.LossEvent{At: at, Flow: k % 16, Seq: int64(k)})
		}
		rep, err := an.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	run() // warm the scratch: steady state is what the gate defends
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run().CoV, "cov")
	}
}

// BenchmarkWifiGilbertSecond runs one simulated second of a time-varying
// world — 8 TCP flows over a random-walk-modulated wireless hop with a
// Gilbert–Elliott wire dropper — so the link-dynamics path (modulator
// retunes, per-packet chain draws, wire-drop recycling) sits in the CI
// bench-gate smoke set next to the static DumbbellSecond.
func BenchmarkWifiGilbertSecond(b *testing.B) {
	b.ReportAllocs()
	spec := topo.Spec{Name: "wifi-bench"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "ap"}, topo.NodeSpec{Name: "gw"})
	spec.Links = append(spec.Links, topo.LinkSpec{
		A: "ap", B: "gw",
		AB: topo.Dir{
			Rate: 30_000_000, Delay: 3 * sim.Millisecond,
			Queue: topo.QueueSpec{Limit: 64},
			Dynamics: &topo.DynamicsSpec{Walk: &topo.WalkSpec{
				Min: 12_000_000, Max: 54_000_000, Factor: 1.3, Interval: 20 * sim.Millisecond,
			}},
			Loss: &topo.LossSpec{PGB: 0.003, PBG: 0.25, KGood: 0, KBad: 0.9},
		},
		BA: topo.Dir{Rate: 30_000_000, Delay: 3 * sim.Millisecond},
	})
	for j := 0; j < 8; j++ {
		snd, rcv := fmt.Sprintf("s%d", j), fmt.Sprintf("r%d", j)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(3+3*j) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "ap", AB: access},
			topo.LinkSpec{A: "gw", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv})
	}
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		pool := netsim.NewPacketPool()
		net, err := topo.Build(sched, spec, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		net.AttachPool(pool)
		for j := 0; j < net.NumFlows(); j++ {
			f := tcp.NewPairFlow(sched, net.FlowSender(j), net.FlowReceiver(j), j+1, tcp.Config{
				InitialRTT: net.FlowRTT(j),
				Pool:       pool,
			})
			f.Sender.Start()
		}
		sched.RunUntil(sim.Time(sim.Second))
		hop := net.Port("ap", "gw")
		if hop.Forwarded() == 0 {
			b.Fatal("wireless hop forwarded nothing")
		}
		if hop.LinkDropped == 0 {
			b.Fatal("GE chain never dropped on the wire")
		}
		b.ReportMetric(float64(sched.Fired()), "events")
		b.ReportMetric(float64(hop.Dropped+hop.LinkDropped), "drops")
		b.ReportMetric(float64(sched.Fired())/float64(net.Forwarded()), "events_per_pkt")
	}
}

// BenchmarkDumbbellSecond runs one simulated second of a loaded dumbbell —
// 8 TCP flows into a 50 Mbps bottleneck — end to end: transports, nodes,
// ports, queues and scheduler together, the world every figure scales up.
func BenchmarkDumbbellSecond(b *testing.B) {
	b.ReportAllocs()
	delays := make([]sim.Duration, 8)
	for i := range delays {
		delays[i] = sim.Duration(5+5*i) * sim.Millisecond
	}
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		pool := netsim.NewPacketPool()
		d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
			BottleneckRate: 50_000_000,
			AccessRate:     1_000_000_000,
			AccessDelays:   delays,
			Buffer:         64,
		})
		d.AttachPool(pool)
		for j := range delays {
			f := tcp.NewPairFlow(sched, d.SenderNode(j), d.ReceiverNode(j), j+1, tcp.Config{
				InitialRTT: 2 * delays[j],
				Pool:       pool,
			})
			f.Sender.Start()
		}
		sched.RunUntil(sim.Time(sim.Second))
		if d.Forward.Forwarded() == 0 {
			b.Fatal("bottleneck forwarded nothing")
		}
		b.ReportMetric(float64(sched.Fired()), "events")
		b.ReportMetric(float64(sched.Fired())/float64(d.Net.Forwarded()), "events_per_pkt")
	}
}

// BenchmarkOveruseDetector runs the receiver-side congestion pipeline —
// burst grouping, Kalman gradient filter, adaptive-threshold detector and
// AIMD controller — over a precomputed sawtooth of queue build-ups and
// drains, with no world around it. This is the per-packet cost a GCC
// receiver adds on top of plain forwarding, and it must stay
// allocation-free: every stage reuses its own state across resets.
func BenchmarkOveruseDetector(b *testing.B) {
	b.ReportAllocs()
	type pkt struct {
		send, arrive sim.Time
		size         int
	}
	// 20k packets, 1 ms apart in send time, riding a queue sawtooth: ramps
	// of +0.05 ms/packet alternate with drains back to the floor, plus
	// seeded sub-millisecond jitter so the filters do real smoothing work.
	rng := sim.NewRand(9)
	pkts := make([]pkt, 20000)
	queue := 0.0
	for i := range pkts {
		if (i/400)%2 == 0 {
			queue += 0.05
		} else if queue > 0 {
			queue -= 0.05
		}
		send := sim.Time(sim.Duration(i) * sim.Millisecond)
		lat := 20 + queue + rng.Float64()*0.3
		pkts[i] = pkt{
			send:   send,
			arrive: send.Add(sim.Duration(lat * float64(sim.Millisecond))),
			size:   1000,
		}
	}
	var ia ratectl.InterArrival
	kal := ratectl.NewKalmanEstimator()
	det := ratectl.NewOveruseDetector()
	aimd := ratectl.NewAIMDController(125_000, 12_500, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ia.Reset()
		kal.Reset()
		det.Reset()
		aimd.Reset(125_000, 12_500, 0)
		for _, p := range pkts {
			d, ok := ia.Add(p.send, p.arrive, p.size)
			if !ok {
				continue
			}
			st := det.Update(kal.Update(d), d.Arrival)
			aimd.Update(st, 250_000, d.Arrival)
		}
		if det.OveruseHits == 0 || aimd.Decreases == 0 {
			b.Fatal("sawtooth never tripped the detector")
		}
	}
}

// BenchmarkRatectlSecond runs one simulated second of two delay-based
// flows sharing a static 6 Mbps bottleneck, replayed through the cached
// world: per op the arena rewinds the scheduler, Network.Reset reseeds the
// compiled topology and GCCFlow.ResetPair rewinds the transports. The spec
// deliberately has no Dynamics and no Loss — those reseed paths allocate
// (modulator rebuild, loss-hook rebind) and belong to WorldInstantiate;
// here the gate is the ratectl contract: a steady-state second of pacing,
// grouping, estimation and feedback at 0 allocs/op.
func BenchmarkRatectlSecond(b *testing.B) {
	b.ReportAllocs()
	const seed = 3
	spec := topo.Spec{Name: "ratectl-second"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	hop := topo.Dir{Rate: 6_000_000, Delay: 20 * sim.Millisecond, Queue: topo.QueueSpec{Limit: 40}}
	spec.Links = append(spec.Links, topo.LinkSpec{A: "left", B: "right", AB: hop, BA: hop})
	for i := 0; i < 2; i++ {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(2+2*i) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv, Kind: topo.FlowGCC})
	}

	arena := exp.NewArena()
	sched := arena.Scheduler()
	net, err := topo.NetworkIn(arena, sched, spec, sim.SubSeed(seed, 1))
	if err != nil {
		b.Fatal(err)
	}
	net.AttachPool(arena.Pool())
	var flows []*ratectl.GCCFlow
	run := func() *sim.Scheduler {
		sched := arena.Scheduler()
		if err := net.Reset(spec, sim.SubSeed(seed, 1)); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < net.NumFlows(); i++ {
			cfg := ratectl.GCCConfig{
				InitialRTT: net.FlowRTT(i),
				Estimator:  ratectl.EstimatorKind(i % 2),
				Seed:       sim.SubSeed(seed, int64(1000+i)),
				Pool:       arena.Pool(),
			}
			if flows == nil {
				flows = make([]*ratectl.GCCFlow, 0, net.NumFlows())
			}
			if i == len(flows) {
				flows = append(flows, ratectl.NewGCCFlow(sched, net.FlowSender(i), net.FlowReceiver(i), i+1, cfg))
			} else {
				flows[i].ResetPair(net.FlowSender(i), net.FlowReceiver(i), i+1, cfg)
			}
			flows[i].StartAt(sched, sim.Time(sim.Duration(i)*10*sim.Millisecond))
		}
		sched.RunUntil(sim.Time(sim.Second))
		return sched
	}
	run() // warm the pool, scheduler arena and flow objects
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := run()
		if flows[0].Sender.Sent == 0 || flows[0].Sender.FeedbackIn == 0 {
			b.Fatal("flow exchanged no data or feedback")
		}
		b.ReportMetric(float64(sched.Fired()), "events")
	}
}

// BenchmarkRFTTransferSecond runs one simulated second of two reliable
// file transfers sharing a static 10 Mbps bottleneck, replayed through the
// cached world: per op the arena rewinds the scheduler, Network.Reset
// reseeds the compiled topology and rft.Flow.ResetPair rewinds the
// transfer pairs. Like RatectlSecond the spec carries no Dynamics and no
// Loss; the gate is the transfer contract — a steady-state second of
// pacing, ledger upkeep, client ACKs and AIMD updates at 0 allocs/op on
// warm sentAt/bitmap/resend capacity.
func BenchmarkRFTTransferSecond(b *testing.B) {
	b.ReportAllocs()
	const seed = 3
	spec := topo.Spec{Name: "rft-second"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	hop := topo.Dir{Rate: 10_000_000, Delay: 10 * sim.Millisecond, Queue: topo.QueueSpec{Limit: 100}}
	spec.Links = append(spec.Links, topo.LinkSpec{A: "left", B: "right", AB: hop, BA: hop})
	for i := 0; i < 2; i++ {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(2+2*i) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv, Kind: topo.FlowRFT})
	}

	arena := exp.NewArena()
	sched := arena.Scheduler()
	net, err := topo.NetworkIn(arena, sched, spec, sim.SubSeed(seed, 1))
	if err != nil {
		b.Fatal(err)
	}
	net.AttachPool(arena.Pool())
	var flows []*rft.Flow
	run := func() *sim.Scheduler {
		sched := arena.Scheduler()
		if err := net.Reset(spec, sim.SubSeed(seed, 1)); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < net.NumFlows(); i++ {
			cfg := rft.Config{
				ChunkSize:  1000,
				Chunks:     512,
				InitialRTT: net.FlowRTT(i),
				Seed:       sim.SubSeed(seed, int64(1000+i)),
				Pool:       arena.Pool(),
			}
			if flows == nil {
				flows = make([]*rft.Flow, 0, net.NumFlows())
			}
			if i == len(flows) {
				flows = append(flows, rft.NewFlow(sched, net.FlowSender(i), net.FlowReceiver(i), i+1, cfg))
			} else {
				flows[i].ResetPair(net.FlowSender(i), net.FlowReceiver(i), i+1, cfg)
			}
			flows[i].StartAt(sched, sim.Time(sim.Duration(i)*10*sim.Millisecond))
		}
		sched.RunUntil(sim.Time(sim.Second))
		return sched
	}
	// Warm twice: the first run takes the creation path (NewFlow, pool and
	// arena growth), the second the ResetPair replay path the timed loop
	// measures — both must have grown their storage before the timer starts.
	run()
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched := run()
		if flows[0].Sender.Sent == 0 || flows[0].Receiver.AcksOut == 0 {
			b.Fatal("transfer exchanged no data or reports")
		}
		b.ReportMetric(float64(sched.Fired()), "events")
	}
}
