package tcp

import "repro/internal/sim"

// rttEstimator implements the RFC 6298 smoothed RTT / RTO computation with
// Karn's algorithm applied by the caller (retransmitted segments are never
// timed).
type rttEstimator struct {
	srtt   sim.Duration
	rttvar sim.Duration
	last   sim.Duration // most recent raw sample (for delay-based control)
	valid  bool

	// MinRTO clamps the computed RTO from below (ns-2 era TCPs used
	// 200 ms–1 s; we default to 200 ms in Config).
	MinRTO sim.Duration
	// MaxRTO clamps from above.
	MaxRTO sim.Duration
	// InitialRTO is used before the first sample.
	InitialRTO sim.Duration
}

// Sample feeds one RTT measurement.
func (e *rttEstimator) Sample(rtt sim.Duration) {
	if rtt <= 0 {
		return
	}
	e.last = rtt
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
		return
	}
	// rttvar = 3/4 rttvar + 1/4 |srtt - rtt|; srtt = 7/8 srtt + 1/8 rtt
	diff := e.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// SRTT reports the smoothed RTT, or fallback before any sample.
func (e *rttEstimator) SRTT(fallback sim.Duration) sim.Duration {
	if !e.valid {
		return fallback
	}
	return e.srtt
}

// HasSample reports whether at least one measurement was taken.
func (e *rttEstimator) HasSample() bool { return e.valid }

// LastSample reports the most recent raw RTT measurement.
func (e *rttEstimator) LastSample() sim.Duration { return e.last }

// RTO reports the current retransmission timeout (before backoff).
func (e *rttEstimator) RTO() sim.Duration {
	if !e.valid {
		return e.InitialRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.MinRTO {
		rto = e.MinRTO
	}
	if e.MaxRTO > 0 && rto > e.MaxRTO {
		rto = e.MaxRTO
	}
	return rto
}
