package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// lossyPipe drops data packets according to an arbitrary predicate and
// delivers everything else after a fixed delay.
type lossyPipe struct {
	sched *sim.Scheduler
	snd   *Sender
	rcv   *Receiver
	drop  func(seq int64, nthSend int) bool
	sends map[int64]int
}

func newLossyPipe(cfg Config, drop func(seq int64, nth int) bool) *lossyPipe {
	p := &lossyPipe{
		sched: sim.NewScheduler(),
		drop:  drop,
		sends: map[int64]int{},
	}
	cfg.Flow = 1
	cfg.Src = 100
	cfg.Dst = 200
	delay := 5 * sim.Millisecond
	fwd := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		n := p.sends[pkt.Seq]
		p.sends[pkt.Seq] = n + 1
		if p.drop(pkt.Seq, n) {
			return
		}
		p.sched.After(delay, func() { p.rcv.Handle(pkt) })
	})
	rev := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		p.sched.After(delay, func() { p.snd.Handle(pkt) })
	})
	p.snd = NewSender(p.sched, fwd, cfg)
	p.rcv = NewReceiver(p.sched, rev, 1, 200, 100, 40)
	return p
}

// TestLivenessUnderArbitraryLoss: whatever packets are lost (as long as
// no sequence is lost infinitely often), a finite transfer completes and
// delivers exactly the expected range. This is the central liveness
// invariant of the transport: dup-ack recovery, NewReno partial-ack
// processing and RTO backoff must never deadlock.
func TestLivenessUnderArbitraryLoss(t *testing.T) {
	f := func(seed int64, dropPct uint8, total uint16) bool {
		pct := float64(dropPct%60) / 100 // up to 59% random loss
		n := int64(total%500) + 20
		rng := rand.New(rand.NewSource(seed))
		// Drop randomly, but never the 4th+ transmission of a sequence, so
		// progress is always eventually possible.
		p := newLossyPipe(Config{TotalPackets: n},
			func(seq int64, nth int) bool {
				return nth < 3 && rng.Float64() < pct
			})
		p.snd.Start()
		p.sched.RunUntil(sim.Time(30 * 60 * sim.Second))
		if !p.snd.Done() {
			t.Logf("deadlock: seed=%d pct=%v n=%d cumack=%d inflight=%d cwnd=%v timeouts=%d",
				seed, pct, n, p.snd.CumAck(), p.snd.InFlight(), p.snd.Cwnd(), p.snd.Timeouts)
			return false
		}
		return p.rcv.CumAck() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLivenessPacedUnderArbitraryLoss: the same invariant for the
// rate-based implementation.
func TestLivenessPacedUnderArbitraryLoss(t *testing.T) {
	f := func(seed int64, dropPct uint8, total uint16) bool {
		pct := float64(dropPct%50) / 100
		n := int64(total%300) + 20
		rng := rand.New(rand.NewSource(seed))
		p := newLossyPipe(Config{TotalPackets: n, Paced: true,
			InitialRTT: 10 * sim.Millisecond},
			func(seq int64, nth int) bool {
				return nth < 3 && rng.Float64() < pct
			})
		p.snd.Start()
		p.sched.RunUntil(sim.Time(30 * 60 * sim.Second))
		return p.snd.Done() && p.rcv.CumAck() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNoRetransmitWithoutLoss: on a perfect path the sender must never
// retransmit, for any transfer size and either implementation style.
func TestNoRetransmitWithoutLoss(t *testing.T) {
	f := func(total uint16, paced bool) bool {
		n := int64(total%2000) + 1
		p := newLossyPipe(Config{TotalPackets: n, Paced: paced,
			InitialRTT: 10 * sim.Millisecond},
			func(int64, int) bool { return false })
		p.snd.Start()
		p.sched.RunUntil(sim.Time(30 * 60 * sim.Second))
		return p.snd.Done() && p.snd.Retransmits == 0 &&
			p.snd.Sent == uint64(n) && p.rcv.Duplicates == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInFlightNeverExceedsWindowPlusRecovery: the sender must respect its
// window: in-flight packets never exceed the instantaneous window (which
// inflates during recovery) — checked at every transmission.
func TestInFlightNeverExceedsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := newLossyPipe(Config{TotalPackets: 2000},
		func(seq int64, nth int) bool { return nth == 0 && rng.Float64() < 0.05 })
	orig := p.snd.Out()
	violated := false
	p.snd.SetOut(netsim.HandlerFunc(func(pkt *netsim.Packet) {
		if !pkt.Retrans && p.snd.InFlight() > p.snd.window() {
			violated = true
		}
		orig.Handle(pkt)
	}))
	p.snd.Start()
	p.sched.RunUntil(sim.Time(30 * 60 * sim.Second))
	if violated {
		t.Fatal("sender exceeded its congestion window")
	}
	if !p.snd.Done() {
		t.Fatal("transfer incomplete")
	}
}

// TestCumAckMonotone: the receiver's cumulative ack never regresses under
// heavy duplication and reordering pressure.
func TestCumAckMonotone(t *testing.T) {
	sched := sim.NewScheduler()
	var acks []int64
	out := netsim.HandlerFunc(func(p *netsim.Packet) { acks = append(acks, p.Ack) })
	r := NewReceiver(sched, out, 1, 200, 100, 40)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		r.Handle(&netsim.Packet{Flow: 1, Kind: netsim.Data,
			Seq: int64(rng.Intn(200)), Size: 100})
	}
	prev := int64(0)
	for _, a := range acks {
		if a < prev {
			t.Fatal("cumulative ack regressed")
		}
		prev = a
	}
}
