package tcp

import (
	"testing"

	"repro/internal/sim"
)

func TestVegasVariantString(t *testing.T) {
	if Vegas.String() != "vegas" {
		t.Fatal("vegas string")
	}
}

func TestVegasKeepsQueueShortAndAvoidsLoss(t *testing.T) {
	// After its start-up transient, a Vegas flow converges to a small
	// steady backlog (alpha..beta packets) and stops losing packets
	// entirely, unlike NewReno whose sawtooth overflows the buffer
	// forever. Compare steady-state drops (t > 5 s).
	runOne := func(v Variant) (steadyDrops uint64, delivered int64) {
		s, d := buildDumbbell(1, 20*sim.Millisecond, 10_000_000, 60)
		f := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000, Variant: v,
			InitialRTT: 42 * sim.Millisecond})
		f.Sender.Start()
		s.RunUntil(sim.Time(5 * sim.Second))
		transient := d.Forward.Dropped
		s.RunUntil(sim.Time(30 * sim.Second))
		return d.Forward.Dropped - transient, f.Receiver.CumAck()
	}
	vDrops, vGot := runOne(Vegas)
	nDrops, nGot := runOne(NewReno)
	if nDrops == 0 {
		t.Fatal("NewReno baseline never dropped in steady state; scenario too easy")
	}
	if vDrops > nDrops/10 {
		t.Fatalf("Vegas steady-state drops %d vs NewReno %d; delay-based control not avoiding loss",
			vDrops, nDrops)
	}
	// Vegas must still achieve solid utilization (paper's [23]: better
	// stability without throughput collapse). 10 Mbps · 30 s = 37,500 pkts.
	if vGot < 25000 {
		t.Fatalf("Vegas underutilized: %d packets (NewReno: %d)", vGot, nGot)
	}
}

func TestVegasFairnessBetterThanNewReno(t *testing.T) {
	// Four same-RTT flows: delay-based control should share at least as
	// evenly as loss-based (Jain's index).
	jain := func(v Variant) float64 {
		s, d := buildDumbbell(4, 20*sim.Millisecond, 20_000_000, 80)
		flows := make([]*Flow, 4)
		for i := range flows {
			flows[i] = NewDumbbellFlow(d, i, i+1, Config{PktSize: 1000, Variant: v,
				InitialRTT: 42 * sim.Millisecond})
			off := sim.Duration(i) * 500 * sim.Millisecond
			flows[i].StartAt(s, sim.Time(off))
		}
		s.RunUntil(sim.Time(60 * sim.Second))
		var sum, sumSq float64
		for _, f := range flows {
			g := float64(f.Receiver.CumAck())
			sum += g
			sumSq += g * g
		}
		return sum * sum / (4 * sumSq)
	}
	jv := jain(Vegas)
	jn := jain(NewReno)
	if jv < jn-0.05 {
		t.Fatalf("Vegas fairness %.3f clearly below NewReno %.3f", jv, jn)
	}
	if jv < 0.8 {
		t.Fatalf("Vegas fairness too low: %.3f", jv)
	}
}

func TestVegasStillRecoversFromInducedLoss(t *testing.T) {
	// Vegas competing with a blast of cross traffic must survive losses
	// via the shared recovery machinery.
	p := newPipe(t, Config{TotalPackets: 300, Variant: Vegas, InitialCwnd: 10})
	p.drop[5] = true
	p.drop[6] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("Vegas transfer did not complete after losses")
	}
}
