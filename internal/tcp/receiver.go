package tcp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Receiver is the TCP sink: it acknowledges every data packet cumulatively
// (no delayed ACKs, matching the ns-2 configuration the paper's
// experiments use), tracks out-of-order arrivals so the cumulative ACK
// jumps forward when holes fill, and echoes ECN congestion-experienced
// marks back to the sender.
type Receiver struct {
	sched *sim.Scheduler
	out   netsim.Handler
	flow  int
	src   int // this receiver's node address
	dst   int // the sender's node address
	ack   int // ack packet size in bytes

	cumAck int64          // next expected sequence
	ooo    map[int64]bool // received beyond the cumulative point

	ceSeen bool // latched CE until echoed (simplified ECE)

	pktID uint64
	pool  *netsim.PacketPool

	// Statistics.
	Received   uint64 // data packets that arrived (including duplicates)
	Duplicates uint64
	AcksOut    uint64
	BytesIn    uint64

	// OnData observes every arriving data packet (throughput accounting).
	OnData func(p *netsim.Packet, at sim.Time)
}

// NewReceiver builds a receiver for one flow. out is where ACKs are
// injected (normally the receiver-side node); src is this node's address,
// dst the sender's.
func NewReceiver(sched *sim.Scheduler, out netsim.Handler, flow, src, dst, ackSize int) *Receiver {
	if sched == nil || out == nil {
		panic("tcp: NewReceiver requires scheduler and output")
	}
	if ackSize <= 0 {
		ackSize = 40
	}
	return &Receiver{
		sched: sched, out: out,
		flow: flow, src: src, dst: dst, ack: ackSize,
		ooo: make(map[int64]bool),
	}
}

// Reset rewinds the receiver to the state NewReceiver(sched, out, flow,
// src, dst, ackSize) would produce, keeping the scheduler and the
// out-of-order map's buckets (cleared, not reallocated — reusing a warm
// receiver makes the per-packet hole tracking allocation-free after the
// first run).
func (r *Receiver) Reset(out netsim.Handler, flow, src, dst, ackSize int) {
	if out == nil {
		panic("tcp: Receiver.Reset requires an output")
	}
	if ackSize <= 0 {
		ackSize = 40
	}
	r.out = out
	r.flow = flow
	r.src = src
	r.dst = dst
	r.ack = ackSize
	r.cumAck = 0
	clear(r.ooo)
	r.ceSeen = false
	r.pktID = 0
	r.pool = nil
	r.Received = 0
	r.Duplicates = 0
	r.AcksOut = 0
	r.BytesIn = 0
	r.OnData = nil
}

// CumAck reports the next expected sequence number.
func (r *Receiver) CumAck() int64 { return r.cumAck }

// SetPool attaches the world's packet freelist: consumed data packets are
// recycled and outgoing ACKs drawn from it. NewPairFlow wires this
// automatically from Config.Pool.
func (r *Receiver) SetPool(pool *netsim.PacketPool) { r.pool = pool }

// Handle implements netsim.Handler for arriving data packets. The receiver
// is the data packet's final consumer: once the ACK is generated the
// packet is recycled, so OnData observers must copy rather than retain.
func (r *Receiver) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Data || p.Flow != r.flow {
		return
	}
	r.Received++
	r.BytesIn += uint64(p.Size)
	if r.OnData != nil {
		r.OnData(p, r.sched.Now())
	}
	if p.CE {
		r.ceSeen = true
	}
	switch {
	case p.Seq == r.cumAck:
		r.cumAck++
		for r.ooo[r.cumAck] {
			delete(r.ooo, r.cumAck)
			r.cumAck++
		}
	case p.Seq > r.cumAck:
		if r.ooo[p.Seq] {
			r.Duplicates++
		}
		r.ooo[p.Seq] = true
	default:
		r.Duplicates++
	}
	r.sendAck(p)
	r.pool.Put(p)
}

func (r *Receiver) sendAck(data *netsim.Packet) {
	r.pktID++
	ack := r.pool.Get()
	ack.ID = r.pktID
	ack.Flow = r.flow
	ack.Kind = netsim.Ack
	ack.Size = r.ack
	ack.Seq = data.Seq
	ack.Ack = r.cumAck
	ack.Src = r.src
	ack.Dst = r.dst
	ack.SendTime = r.sched.Now()
	ack.CE = r.ceSeen // echo congestion experienced
	if r.ceSeen && r.cumAck > data.Seq {
		// Mark echoed on an advancing ACK; clear the latch. (Real TCP
		// clears on CWR; one echo per mark is enough for our sender, which
		// rate-limits reductions to once per RTT.)
		r.ceSeen = false
	}
	r.AcksOut++
	r.out.Handle(ack)
}
