// Package tcp implements the transport protocols the paper studies on top
// of the netsim substrate: window-based TCP (NewReno by default, Reno as a
// variant) with slow start, congestion avoidance, fast retransmit and fast
// recovery, plus the two implementation styles the paper contrasts —
// ordinary (bursty) window transmission and TCP Pacing, which spreads the
// congestion window evenly over the RTT and is the paper's canonical
// "rate-based implementation". An optional ECN mode implements the
// congestion reaction used by the paper's proposed extension.
package tcp

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Variant selects the recovery algorithm.
type Variant int

// Supported congestion-control variants.
const (
	// NewReno stays in fast recovery across partial ACKs (RFC 2582), the
	// paper's window-based baseline.
	NewReno Variant = iota
	// Reno exits recovery on the first new ACK (RFC 2581).
	Reno
	// Vegas replaces the loss-driven window growth with delay-based
	// adjustment (Brakmo's TCP Vegas, the family the paper's reference
	// [23] — FAST TCP — belongs to): the sender estimates its queue
	// backlog from srtt − baseRTT and holds it between alpha and beta
	// packets, which keeps the bottleneck queue short and avoids the
	// bursty overflow losses entirely. Loss recovery still works (NewReno
	// machinery) for losses caused by competing traffic.
	Vegas
)

func (v Variant) String() string {
	switch v {
	case NewReno:
		return "newreno"
	case Reno:
		return "reno"
	case Vegas:
		return "vegas"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Config parameterizes a Sender.
type Config struct {
	Flow int // flow id, unique per experiment
	Src  int // sender node address
	Dst  int // receiver node address

	PktSize int // data packet size in bytes (default 1000, like ns-2)
	AckSize int // ack size in bytes (default 40)

	Variant Variant

	// Paced turns the sender into the paper's rate-based implementation:
	// instead of transmitting the whole usable window back to back, data
	// packets leave one pacing interval (srtt/cwnd) apart.
	Paced bool
	// PaceQuantum is how many packets each pacing tick releases (default
	// 1). Larger quanta re-introduce micro-bursts; the ablation bench
	// sweeps this.
	PaceQuantum int

	// ECN makes data packets ECN-capable and halves cwnd on echoed marks
	// (at most once per RTT), instead of waiting for drops.
	ECN bool

	// TotalPackets ends the flow after this many packets are delivered
	// (the parallel-transfer workload); 0 or negative means unlimited.
	TotalPackets int64

	// Pool, when set, supplies data packets and receives consumed ACKs —
	// the world's shared packet freelist. The sender and its receiver
	// normally share one pool (NewPairFlow wires both ends). Nil means
	// plain allocation.
	Pool *netsim.PacketPool

	InitialCwnd     float64      // default 2 packets (paper: "two packets every round trip")
	InitialSSThresh float64      // default 1e9 (effectively unbounded)
	MaxCwnd         float64      // default 1e9
	InitialRTT      sim.Duration // pacing estimate before the first RTT sample (default 100 ms)
	MinRTO          sim.Duration // default 200 ms
	MaxRTO          sim.Duration // default 60 s
	InitialRTO      sim.Duration // default 1 s
}

func (c *Config) fillDefaults() {
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.AckSize == 0 {
		c.AckSize = 40
	}
	if c.PaceQuantum <= 0 {
		c.PaceQuantum = 1
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 2
	}
	if c.InitialSSThresh == 0 {
		c.InitialSSThresh = 1e9
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 1e9
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 100 * sim.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 60 * sim.Second
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = sim.Second
	}
}

// Sender is a packet-level TCP source in the ns-2 tradition: sequence
// numbers count packets, the receiver acks cumulatively, and a drop is
// recovered by fast retransmit or timeout. It implements netsim.Handler to
// receive ACKs.
type Sender struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   Config

	cwnd     float64
	ssthresh float64

	nextSeq     int64 // next new sequence number to transmit
	maxSent     int64 // highest sequence ever transmitted + 1 (for go-back-N)
	cumAck      int64 // highest cumulative ack received (next expected seq)
	dupAcks     int
	inRec       bool  // in fast recovery
	recover     int64 // NewReno: highest seq sent when recovery started
	recoverFrom int64 // cumAck when recovery started (Impatient timer rule)

	est     rttEstimator
	backoff int // RTO exponential backoff shift

	rtoTimer  sim.Timer
	paceTimer sim.Timer

	// Timer callbacks are created once so rearming a timer costs no
	// closure allocation: the scheduler's event freelist plus these two
	// function values make the per-ACK RTO restart allocation-free.
	rtoFn  func()
	paceFn func()

	timedSeq int64 // sequence currently being timed for RTT, -1 if none
	timedAt  sim.Time

	baseRTT     sim.Duration // minimum observed RTT (Vegas propagation estimate)
	lastVegas   sim.Time     // time of the last Vegas window adjustment
	vegasSlow   bool         // Vegas: still in its slow-start phase
	vegasParity bool         // Vegas slow start doubles every other RTT

	lastECNCut sim.Time // time of the last ECN-triggered reduction
	pktID      uint64

	done bool

	// Statistics.
	Sent             uint64 // data packets transmitted (including retransmissions)
	Retransmits      uint64
	AcksIn           uint64
	CongestionEvents uint64 // window reductions: fast retransmit, timeout, or ECN
	Timeouts         uint64
	CompletedAt      sim.Time

	// OnComplete fires once when TotalPackets are delivered.
	OnComplete func(at sim.Time)
}

// NewSender creates a TCP sender that injects packets into out (normally a
// netsim.Node bound to the sender's address).
func NewSender(sched *sim.Scheduler, out netsim.Handler, cfg Config) *Sender {
	if sched == nil || out == nil {
		panic("tcp: NewSender requires scheduler and output")
	}
	cfg.fillDefaults()
	s := &Sender{
		sched:    sched,
		out:      out,
		cfg:      cfg,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.InitialSSThresh,
		timedSeq: -1,
	}
	s.est.MinRTO = cfg.MinRTO
	s.est.MaxRTO = cfg.MaxRTO
	s.est.InitialRTO = cfg.InitialRTO
	s.vegasSlow = cfg.Variant == Vegas
	s.rtoFn = s.onTimeout
	s.paceFn = s.onPaceTick
	return s
}

// Reset rewinds the sender to the state NewSender(sched, out, cfg) would
// produce, keeping the scheduler, output handler and preallocated timer
// callbacks. Callers must have reset the owning scheduler first (the old
// timer events were cancelled wholesale there; the handles are zeroed here
// regardless). World-reuse paths use this to run back-to-back transfers
// without reconstructing their flows.
func (s *Sender) Reset(cfg Config) {
	cfg.fillDefaults()
	s.cfg = cfg
	s.cwnd = cfg.InitialCwnd
	s.ssthresh = cfg.InitialSSThresh
	s.nextSeq = 0
	s.maxSent = 0
	s.cumAck = 0
	s.dupAcks = 0
	s.inRec = false
	s.recover = 0
	s.recoverFrom = 0
	s.est = rttEstimator{MinRTO: cfg.MinRTO, MaxRTO: cfg.MaxRTO, InitialRTO: cfg.InitialRTO}
	s.backoff = 0
	s.rtoTimer = sim.Timer{}
	s.paceTimer = sim.Timer{}
	s.timedSeq = -1
	s.timedAt = 0
	s.baseRTT = 0
	s.lastVegas = 0
	s.vegasSlow = cfg.Variant == Vegas
	s.vegasParity = false
	s.lastECNCut = 0
	s.pktID = 0
	s.done = false
	s.Sent = 0
	s.Retransmits = 0
	s.AcksIn = 0
	s.CongestionEvents = 0
	s.Timeouts = 0
	s.CompletedAt = 0
	s.OnComplete = nil
}

// vegas alpha/beta thresholds in packets of estimated backlog.
const (
	vegasAlpha = 2.0
	vegasBeta  = 4.0
)

// vegasAdjust applies the delay-based window update, at most once per RTT.
func (s *Sender) vegasAdjust() {
	if !s.est.HasSample() {
		return
	}
	sample := s.est.LastSample()
	if s.baseRTT == 0 || sample < s.baseRTT {
		s.baseRTT = sample
	}
	now := s.sched.Now()
	if s.lastVegas != 0 && now.Sub(s.lastVegas) < s.est.SRTT(s.cfg.InitialRTT) {
		return
	}
	s.lastVegas = now
	// Estimated backlog: cwnd · (1 − baseRTT/sample) packets queued.
	diff := s.cwnd * (1 - float64(s.baseRTT)/float64(sample))
	switch {
	case s.vegasSlow:
		// Exit slow start as soon as one packet of queue forms (Vegas'
		// gamma threshold); otherwise double every other RTT.
		if diff > 1 {
			s.vegasSlow = false
			s.ssthresh = s.cwnd
			break
		}
		s.vegasParity = !s.vegasParity
		if s.vegasParity {
			s.cwnd *= 2
		}
	case diff < vegasAlpha:
		s.cwnd++
	case diff > vegasBeta:
		s.cwnd = maxF(s.cwnd-1, 2)
	}
	if s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
}

// Start begins transmission at the current simulated time.
func (s *Sender) Start() { s.trySend() }

// Cwnd reports the congestion window in packets.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SSThresh reports the slow-start threshold in packets.
func (s *Sender) SSThresh() float64 { return s.ssthresh }

// InFlight reports the number of unacknowledged packets.
func (s *Sender) InFlight() int64 { return s.nextSeq - s.cumAck }

// Done reports whether a finite flow has delivered all its data.
func (s *Sender) Done() bool { return s.done }

// NextSeq reports the next fresh sequence number (delivered+inflight).
func (s *Sender) NextSeq() int64 { return s.nextSeq }

// CumAck reports the highest cumulative acknowledgement.
func (s *Sender) CumAck() int64 { return s.cumAck }

// SRTT exposes the smoothed RTT estimate (initial estimate before samples).
func (s *Sender) SRTT() sim.Duration { return s.est.SRTT(s.cfg.InitialRTT) }

// Out returns the sender's current packet sink.
func (s *Sender) Out() netsim.Handler { return s.out }

// SetOut replaces the packet sink; instrumentation (e.g. the TCP-trace
// methodology study) wraps the original handler to observe transmissions.
func (s *Sender) SetOut(h netsim.Handler) {
	if h == nil {
		panic("tcp: SetOut(nil)")
	}
	s.out = h
}

// window is the usable congestion window in whole packets. Outside
// recovery the first two duplicate ACKs each admit one extra segment
// (Limited Transmit, RFC 3042), so flows with small windows can still
// reach the three duplicate ACKs that trigger fast retransmit instead of
// stalling into a timeout.
func (s *Sender) window() int64 {
	w := s.cwnd
	if !s.inRec && s.dupAcks > 0 && s.dupAcks < 3 {
		w += float64(s.dupAcks)
	}
	if w > s.cfg.MaxCwnd {
		w = s.cfg.MaxCwnd
	}
	if w < 1 {
		w = 1
	}
	return int64(w)
}

// trySend transmits as permitted: the whole usable window at once for the
// window-based implementation, or via the pacing timer for the rate-based
// one.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	if s.cfg.Paced {
		s.schedulePace()
		return
	}
	for s.canSendNew() {
		s.sendData(s.nextSeq, false)
		s.nextSeq++
	}
}

func (s *Sender) canSendNew() bool {
	if s.done {
		return false
	}
	if s.cfg.TotalPackets > 0 && s.nextSeq >= s.cfg.TotalPackets {
		return false
	}
	return s.InFlight() < s.window()
}

// schedulePace arms the pacing timer if it is idle and there is something
// to send.
func (s *Sender) schedulePace() {
	if s.paceTimer.Pending() || !s.canSendNew() {
		return
	}
	s.paceTimer = s.sched.After(s.paceInterval(), s.paceFn)
}

// onPaceTick releases one pacing quantum and rearms.
func (s *Sender) onPaceTick() {
	s.paceTimer = sim.Timer{}
	for i := 0; i < s.cfg.PaceQuantum && s.canSendNew(); i++ {
		s.sendData(s.nextSeq, false)
		s.nextSeq++
	}
	s.schedulePace()
}

// paceInterval spaces PaceQuantum packets cwnd times per SRTT. During
// slow start the window doubles within the RTT, so the sender paces at
// twice the window rate (as TCP-pacing implementations do — pacing cwnd
// itself would throttle the doubling and is not what the paper's
// rate-based competitor runs).
func (s *Sender) paceInterval() sim.Duration {
	rtt := s.est.SRTT(s.cfg.InitialRTT)
	w := float64(s.window())
	if s.cwnd < s.ssthresh && !s.inRec {
		w *= 2
	}
	iv := sim.Duration(float64(rtt) / w * float64(s.cfg.PaceQuantum))
	if iv < sim.Microsecond {
		iv = sim.Microsecond
	}
	return iv
}

func (s *Sender) sendData(seq int64, retrans bool) {
	// A go-back-N resend after a timeout arrives here through the normal
	// send path; it is still a retransmission, and Karn's rule must not
	// time it (a short sample from the original copy's ACK would corrupt
	// the RTT estimate and, for Vegas, the baseRTT).
	if seq < s.maxSent {
		retrans = true
	} else {
		s.maxSent = seq + 1
	}
	s.pktID++
	p := s.cfg.Pool.Get()
	p.ID = s.pktID
	p.Flow = s.cfg.Flow
	p.Kind = netsim.Data
	p.Size = s.cfg.PktSize
	p.Seq = seq
	p.Src = s.cfg.Src
	p.Dst = s.cfg.Dst
	p.SendTime = s.sched.Now()
	p.Retrans = retrans
	p.ECT = s.cfg.ECN
	s.Sent++
	if retrans {
		s.Retransmits++
	}
	// Karn: only time segments that are not retransmissions, one at a time.
	if !retrans && s.timedSeq < 0 {
		s.timedSeq = seq
		s.timedAt = s.sched.Now()
	}
	s.armRTO(false)
	s.out.Handle(p)
}

// armRTO (re)starts the retransmission timer. With restart=true the timer
// is rescheduled even if already pending (used on new cumulative ACKs).
// The cancel-and-rearm pair reuses the same scheduler event: Cancel
// returns it to the world's freelist and After takes it right back, so the
// per-ACK restart allocates nothing.
func (s *Sender) armRTO(restart bool) {
	if s.rtoTimer.Pending() {
		if !restart {
			return
		}
		s.sched.Cancel(s.rtoTimer)
		s.rtoTimer = sim.Timer{}
	}
	d := s.est.RTO() << s.backoff
	if s.cfg.MaxRTO > 0 && d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.rtoTimer = s.sched.After(d, s.rtoFn)
}

func (s *Sender) stopRTO() {
	if s.rtoTimer.Pending() {
		s.sched.Cancel(s.rtoTimer)
		s.rtoTimer = sim.Timer{}
	}
}

func (s *Sender) onTimeout() {
	s.rtoTimer = sim.Timer{}
	if s.done || s.InFlight() <= 0 {
		return
	}
	s.Timeouts++
	s.CongestionEvents++
	s.backoff++
	if s.backoff > 6 {
		s.backoff = 6
	}
	// Go-back-N like ns-2: collapse to one segment and resend from cumAck.
	pipe := float64(s.InFlight())
	s.ssthresh = maxF(pipe/2, 2)
	s.cwnd = 1
	s.inRec = false
	s.dupAcks = 0
	s.nextSeq = s.cumAck // retransmit from the hole
	s.timedSeq = -1      // Karn: do not time retransmissions
	s.sendData(s.nextSeq, true)
	s.nextSeq++
	s.armRTO(true)
	if s.cfg.Paced {
		s.schedulePace()
	}
}

// Handle implements netsim.Handler: process an incoming ACK. The sender is
// the ACK's final consumer, so the packet is recycled on return.
func (s *Sender) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Ack || p.Flow != s.cfg.Flow {
		return
	}
	if s.done {
		s.cfg.Pool.Put(p)
		return
	}
	s.AcksIn++
	switch {
	case p.Ack > s.cumAck:
		s.onNewAck(p)
	case p.Ack == s.cumAck && s.InFlight() > 0:
		s.onDupAck()
	}
	s.cfg.Pool.Put(p)
}

func (s *Sender) onNewAck(p *netsim.Packet) {
	acked := p.Ack - s.cumAck

	// Any advancing ACK means the network is delivering again: clear the
	// exponential backoff even when Karn's rule suppresses the RTT sample
	// (otherwise a timeout that triggers go-back-N leaves the flow stuck
	// at a backed-off RTO until a fresh sequence is finally timed).
	s.backoff = 0
	// RTT sampling (Karn's rule handled at send time).
	if s.timedSeq >= 0 && p.Ack > s.timedSeq {
		s.est.Sample(s.sched.Now().Sub(s.timedAt))
		s.timedSeq = -1
	}

	if s.inRec {
		if p.Ack > s.recover || s.cfg.Variant == Reno {
			// Full ACK (or Reno, which exits on any new ACK): deflate to
			// ssthresh, but never beyond what is actually in flight plus
			// one (RFC 2582 §3 step 5's burst-avoidance option).
			pipe := float64(s.nextSeq - p.Ack)
			s.cwnd = minF(s.ssthresh, pipe+1)
			s.inRec = false
			s.dupAcks = 0
		} else {
			// NewReno partial ACK: the next hole is lost too. Retransmit
			// it, deflate by the amount acked, keep recovering. Following
			// the RFC 6582 "Impatient" variant, only the first partial ACK
			// restarts the retransmission timer — a recovery with many
			// holes is cut short by the RTO instead of dribbling one
			// retransmission per RTT for hundreds of RTTs.
			first := s.cumAck == s.recoverFrom
			s.cumAck = p.Ack
			s.cwnd = maxF(s.cwnd-float64(acked)+1, 1)
			s.sendData(p.Ack, true)
			if first {
				s.armRTO(true)
			}
			s.maybeECN(p)
			s.trySend()
			return
		}
	} else if s.cfg.Variant == Vegas {
		s.dupAcks = 0
		s.vegasAdjust()
	} else {
		s.dupAcks = 0
		// Congestion window growth.
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(acked) // slow start
			if s.cwnd > s.ssthresh {
				s.cwnd = s.ssthresh
			}
		} else {
			s.cwnd += float64(acked) / s.cwnd // congestion avoidance
		}
		if s.cwnd > s.cfg.MaxCwnd {
			s.cwnd = s.cfg.MaxCwnd
		}
	}

	s.cumAck = p.Ack
	s.maybeECN(p)

	if s.cfg.TotalPackets > 0 && s.cumAck >= s.cfg.TotalPackets {
		s.finish()
		return
	}
	if s.InFlight() > 0 {
		s.armRTO(true)
	} else {
		s.stopRTO()
	}
	s.trySend()
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.inRec {
		// Window inflation: each dup ACK signals a departure.
		s.cwnd++
		s.trySend()
		return
	}
	if s.dupAcks < 3 {
		// Limited Transmit: the dup ACK signals a departure; send one new
		// segment if the (temporarily extended) window allows.
		s.trySend()
		return
	}
	if s.dupAcks == 3 {
		// Fast retransmit.
		s.CongestionEvents++
		pipe := float64(s.InFlight())
		s.ssthresh = maxF(pipe/2, 2)
		s.cwnd = s.ssthresh + 3
		s.inRec = true
		s.recover = s.nextSeq - 1
		s.recoverFrom = s.cumAck
		s.timedSeq = -1
		s.sendData(s.cumAck, true)
		s.armRTO(true)
		s.trySend()
	}
}

// maybeECN halves the window on an echoed congestion mark, at most once
// per RTT — the reaction the paper's ECN extension assumes.
func (s *Sender) maybeECN(p *netsim.Packet) {
	if !s.cfg.ECN || !p.CE || s.inRec {
		return
	}
	now := s.sched.Now()
	if s.lastECNCut != 0 && now.Sub(s.lastECNCut) < s.SRTT() {
		return
	}
	s.lastECNCut = now
	s.CongestionEvents++
	s.ssthresh = maxF(s.cwnd/2, 2)
	s.cwnd = s.ssthresh
}

func (s *Sender) finish() {
	s.done = true
	s.CompletedAt = s.sched.Now()
	s.stopRTO()
	if s.paceTimer.Pending() {
		s.sched.Cancel(s.paceTimer)
		s.paceTimer = sim.Timer{}
	}
	if s.OnComplete != nil {
		s.OnComplete(s.CompletedAt)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
