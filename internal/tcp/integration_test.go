package tcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildDumbbell makes a small bottleneck shared by n flows with the given
// one-way access delays.
func buildDumbbell(n int, delay sim.Duration, rate int64, buffer int) (*sim.Scheduler, *netsim.Dumbbell) {
	s := sim.NewScheduler()
	delays := make([]sim.Duration, n)
	for i := range delays {
		delays[i] = delay
	}
	d := netsim.NewDumbbell(s, netsim.DumbbellConfig{
		BottleneckRate:  rate,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      10 * rate,
		AccessDelays:    delays,
		Buffer:          buffer,
	})
	return s, d
}

func TestSingleFlowSaturatesBottleneck(t *testing.T) {
	s, d := buildDumbbell(1, 10*sim.Millisecond, 10_000_000, 50)
	f := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000})
	f.Sender.Start()
	s.RunUntil(sim.Time(20 * sim.Second))
	// 10 Mbps for 20 s = 25,000 packets max. Expect >70% utilization
	// (sawtooth average is 75% of capacity for a lone NewReno flow).
	got := f.Receiver.CumAck()
	if got < 17000 {
		t.Fatalf("delivered %d packets in 20s over 10 Mbps; underutilized", got)
	}
	if got > 25100 {
		t.Fatalf("delivered %d packets; exceeds link capacity", got)
	}
	if f.Sender.CongestionEvents == 0 {
		t.Fatal("a saturating flow must hit the buffer and see losses")
	}
}

func TestFiniteTransferOverDumbbell(t *testing.T) {
	s, d := buildDumbbell(1, 5*sim.Millisecond, 10_000_000, 30)
	f := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000, TotalPackets: 2000})
	var doneAt sim.Time
	f.Sender.OnComplete = func(at sim.Time) { doneAt = at }
	f.Sender.Start()
	s.RunUntil(sim.Time(60 * sim.Second))
	if !f.Sender.Done() {
		t.Fatal("finite transfer did not finish")
	}
	// 2000 packets · 8000 bits = 16 Mbit ⇒ ≥1.6 s at 10 Mbps.
	if doneAt < sim.Time(1600*sim.Millisecond) {
		t.Fatalf("completed impossibly fast: %v", doneAt)
	}
	if doneAt > sim.Time(30*sim.Second) {
		t.Fatalf("completed too slowly: %v", doneAt)
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	s, d := buildDumbbell(2, 10*sim.Millisecond, 10_000_000, 60)
	f0 := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000})
	f1 := NewDumbbellFlow(d, 1, 2, Config{PktSize: 1000})
	f0.Sender.Start()
	f1.Sender.Start()
	s.RunUntil(sim.Time(60 * sim.Second))
	g0 := float64(f0.Receiver.CumAck())
	g1 := float64(f1.Receiver.CumAck())
	ratio := g0 / g1
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("same-RTT flows wildly unfair: %v vs %v packets", g0, g1)
	}
	total := g0 + g1
	// Two flows should keep the link busier than one: >75% utilization.
	if total < 0.70*75000 {
		t.Fatalf("aggregate %v packets in 60s; link underutilized", total)
	}
}

func TestDropTraceRecordsBottleneckLosses(t *testing.T) {
	s, d := buildDumbbell(2, 10*sim.Millisecond, 5_000_000, 20)
	rec := &trace.Recorder{}
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		rec.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
	}
	f0 := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000})
	f1 := NewDumbbellFlow(d, 1, 2, Config{PktSize: 1000})
	f0.Sender.Start()
	f1.Sender.Start()
	s.RunUntil(sim.Time(30 * sim.Second))
	if rec.Len() == 0 {
		t.Fatal("no drops recorded at a congested bottleneck")
	}
	if !rec.Sorted() {
		t.Fatal("drop trace out of order")
	}
	if int(d.Forward.Dropped) != rec.Len() {
		t.Fatalf("port counted %d drops, trace has %d", d.Forward.Dropped, rec.Len())
	}
}

func TestShorterRTTGetsMoreThroughput(t *testing.T) {
	// Classic TCP RTT bias: the 10 ms flow should outrun the 80 ms flow.
	s := sim.NewScheduler()
	d := netsim.NewDumbbell(s, netsim.DumbbellConfig{
		BottleneckRate:  10_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      100_000_000,
		AccessDelays:    []sim.Duration{10 * sim.Millisecond, 80 * sim.Millisecond},
		Buffer:          60,
	})
	fast := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000})
	slow := NewDumbbellFlow(d, 1, 2, Config{PktSize: 1000})
	fast.Sender.Start()
	slow.Sender.Start()
	s.RunUntil(sim.Time(60 * sim.Second))
	if fast.Receiver.CumAck() <= slow.Receiver.CumAck() {
		t.Fatalf("RTT bias inverted: fast=%d slow=%d",
			fast.Receiver.CumAck(), slow.Receiver.CumAck())
	}
}

func TestPacedVsWindowCompetition(t *testing.T) {
	// The paper's Figure 7 effect at small scale: equal numbers of paced
	// and unpaced flows share a DropTail bottleneck; the paced aggregate
	// should come out behind.
	const n = 4
	s, d := buildDumbbell(2*n, 25*sim.Millisecond, 50_000_000, 150)
	var paced, window []*Flow
	for i := 0; i < n; i++ {
		window = append(window, NewDumbbellFlow(d, i, i+1, Config{PktSize: 1000}))
	}
	for i := n; i < 2*n; i++ {
		paced = append(paced, NewDumbbellFlow(d, i, i+1, Config{PktSize: 1000,
			Paced: true, InitialRTT: 52 * sim.Millisecond}))
	}
	for _, f := range window {
		f.Sender.Start()
	}
	for _, f := range paced {
		f.Sender.Start()
	}
	s.RunUntil(sim.Time(40 * sim.Second))
	var gw, gp int64
	for _, f := range window {
		gw += f.Receiver.CumAck()
	}
	for _, f := range paced {
		gp += f.Receiver.CumAck()
	}
	if gp >= gw {
		t.Fatalf("paced flows won the competition: paced=%d window=%d", gp, gw)
	}
	t.Logf("window=%d paced=%d deficit=%.1f%%", gw, gp, 100*float64(gw-gp)/float64(gw))
}

func TestECNFlowsOverREDBottleneck(t *testing.T) {
	// ECN-enabled flows over an ECN-marking RED bottleneck should make
	// progress with almost no retransmissions.
	s := sim.NewScheduler()
	rng := sim.NewRand(1)
	red := netsim.NewRED(netsim.REDConfig{
		Limit: 100, MinTh: 10, MaxTh: 30, MaxP: 0.1, ECN: true,
		PacketsPerSecond: 10_000_000 / 8000,
	}, rng)
	d := netsim.NewDumbbell(s, netsim.DumbbellConfig{
		BottleneckRate:  10_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      100_000_000,
		AccessDelays:    []sim.Duration{10 * sim.Millisecond, 10 * sim.Millisecond},
		Buffer:          100,
		Queue:           red,
	})
	f0 := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000, ECN: true})
	f1 := NewDumbbellFlow(d, 1, 2, Config{PktSize: 1000, ECN: true})
	f0.Sender.Start()
	f1.Sender.Start()
	s.RunUntil(sim.Time(30 * sim.Second))
	if red.Marked == 0 {
		t.Fatal("RED never marked")
	}
	total := f0.Receiver.CumAck() + f1.Receiver.CumAck()
	if total < 20000 {
		t.Fatalf("ECN flows underutilized: %d packets", total)
	}
	retr := f0.Sender.Retransmits + f1.Sender.Retransmits
	sent := f0.Sender.Sent + f1.Sender.Sent
	if float64(retr)/float64(sent) > 0.01 {
		t.Fatalf("ECN flows retransmitted too much: %d/%d", retr, sent)
	}
}

func TestGoodputBits(t *testing.T) {
	s, d := buildDumbbell(1, 5*sim.Millisecond, 10_000_000, 30)
	f := NewDumbbellFlow(d, 0, 1, Config{PktSize: 1000, TotalPackets: 100})
	f.StartAt(s, sim.Time(100*sim.Millisecond))
	s.RunUntil(sim.Time(10 * sim.Second))
	if !f.Sender.Done() {
		t.Fatal("not done")
	}
	if f.GoodputBits(1000) != 100*1000*8 {
		t.Fatalf("goodput = %d", f.GoodputBits(1000))
	}
	// StartAt in the past starts immediately and must not panic.
	f2 := NewDumbbellFlow(d, 0, 2, Config{PktSize: 1000, TotalPackets: 1})
	f2.StartAt(s, 0)
	s.RunUntil(sim.Time(20 * sim.Second))
	if !f2.Sender.Done() {
		t.Fatal("past-start flow not done")
	}
}
