package tcp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Flow bundles a sender/receiver pair wired onto a dumbbell endpoint pair.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewPairFlow wires a TCP flow between two endpoint nodes of any built
// topology. The supplied cfg's Flow/Src/Dst fields are filled in from the
// flow id and the nodes' addresses; other fields are respected.
func NewPairFlow(sched *sim.Scheduler, snd, rcv *netsim.Node, flowID int, cfg Config) *Flow {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr

	s := NewSender(sched, snd, cfg)
	r := NewReceiver(sched, rcv, flowID, cfg.Dst, cfg.Src, cfg.AckSize)
	r.SetPool(cfg.Pool)
	rcv.Bind(flowID, r)
	snd.Bind(flowID, s)
	return &Flow{Sender: s, Receiver: r}
}

// ResetPair rewinds a flow built by NewPairFlow for another run on a reset
// world: the sender and receiver rewind to their just-built state (see
// Sender.Reset, Receiver.Reset) and re-bind onto the given nodes, which a
// world reset stripped of their transport bindings. The nodes are normally
// the same ones the flow was built on (a cached world keeps its nodes),
// but any pair from the same scheduler works. The scheduler must have been
// reset alongside the world.
func (f *Flow) ResetPair(snd, rcv *netsim.Node, flowID int, cfg Config) {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr

	f.Sender.Reset(cfg)
	f.Sender.SetOut(snd)
	f.Receiver.Reset(rcv, flowID, cfg.Dst, cfg.Src, cfg.AckSize)
	f.Receiver.SetPool(cfg.Pool)
	rcv.Bind(flowID, f.Receiver)
	snd.Bind(flowID, f.Sender)
}

// NewDumbbellFlow wires a TCP flow onto pair i of a dumbbell. The supplied
// cfg's Flow/Src/Dst fields are filled in; other fields are respected.
func NewDumbbellFlow(d *netsim.Dumbbell, i int, flowID int, cfg Config) *Flow {
	return NewPairFlow(d.Sched, d.SenderNode(i), d.ReceiverNode(i), flowID, cfg)
}

// GoodputBits reports the bits delivered in-order to the receiver so far
// (cumulative-ack packets times packet size).
func (f *Flow) GoodputBits(pktSize int) int64 {
	return f.Receiver.CumAck() * int64(pktSize) * 8
}

// StartAt schedules the flow to begin at the given simulated time.
func (f *Flow) StartAt(sched *sim.Scheduler, at sim.Time) {
	if at <= sched.Now() {
		f.Sender.Start()
		return
	}
	sched.At(at, f.Sender.Start)
}
