package tcp

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Flow bundles a sender/receiver pair wired onto a dumbbell endpoint pair.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewDumbbellFlow wires a TCP flow onto pair i of a dumbbell. The supplied
// cfg's Flow/Src/Dst fields are filled in; other fields are respected.
func NewDumbbellFlow(d *netsim.Dumbbell, i int, flowID int, cfg Config) *Flow {
	cfg.Flow = flowID
	cfg.Src = netsim.SenderAddr(i)
	cfg.Dst = netsim.ReceiverAddr(i)

	snd := NewSender(d.Sched, d.SenderNode(i), cfg)
	rcv := NewReceiver(d.Sched, d.ReceiverNode(i), flowID, cfg.Dst, cfg.Src, cfg.AckSize)
	d.ReceiverNode(i).Bind(flowID, rcv)
	d.SenderNode(i).Bind(flowID, snd)
	return &Flow{Sender: snd, Receiver: rcv}
}

// GoodputBits reports the bits delivered in-order to the receiver so far
// (cumulative-ack packets times packet size).
func (f *Flow) GoodputBits(pktSize int) int64 {
	return f.Receiver.CumAck() * int64(pktSize) * 8
}

// StartAt schedules the flow to begin at the given simulated time.
func (f *Flow) StartAt(sched *sim.Scheduler, at sim.Time) {
	if at <= sched.Now() {
		f.Sender.Start()
		return
	}
	sched.At(at, f.Sender.Start)
}
