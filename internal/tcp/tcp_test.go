package tcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// pipe is a controllable fake network: it delivers data packets to a
// receiver after a fixed one-way delay, except those whose seq is in the
// drop set; ACKs come back after the same delay.
type pipe struct {
	sched  *sim.Scheduler
	delay  sim.Duration
	drop   map[int64]bool // data seqs to drop exactly once
	snd    *Sender
	rcv    *Receiver
	losses int
}

func newPipe(t *testing.T, cfg Config) *pipe {
	t.Helper()
	p := &pipe{
		sched: sim.NewScheduler(),
		delay: 10 * sim.Millisecond,
		drop:  map[int64]bool{},
	}
	cfg.Flow = 1
	cfg.Src = 100
	cfg.Dst = 200
	// Sender injects into the forward path; receiver into the reverse.
	fwd := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		if p.drop[pkt.Seq] && !pkt.Retrans {
			delete(p.drop, pkt.Seq)
			p.losses++
			return
		}
		p.sched.After(p.delay, func() { p.rcv.Handle(pkt) })
	})
	rev := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		p.sched.After(p.delay, func() { p.snd.Handle(pkt) })
	})
	p.snd = NewSender(p.sched, fwd, cfg)
	p.rcv = NewReceiver(p.sched, rev, 1, 200, 100, cfg.AckSize)
	return p
}

func TestVariantString(t *testing.T) {
	if NewReno.String() != "newreno" || Reno.String() != "reno" {
		t.Fatal("variant strings")
	}
	if Variant(9).String() != "variant(9)" {
		t.Fatal("unknown variant string")
	}
}

func TestLosslessTransferCompletes(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 100})
	done := false
	p.snd.OnComplete = func(at sim.Time) { done = true }
	p.snd.Start()
	p.sched.Run()
	if !done || !p.snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if p.snd.CumAck() != 100 {
		t.Fatalf("cumack = %d", p.snd.CumAck())
	}
	if p.snd.Retransmits != 0 {
		t.Fatalf("spurious retransmits: %d", p.snd.Retransmits)
	}
	if p.rcv.CumAck() != 100 {
		t.Fatalf("receiver cumack = %d", p.rcv.CumAck())
	}
}

func TestSlowStartDoubling(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 1000})
	p.snd.Start()
	// After the first RTT (20 ms + tx), the two initial packets are acked:
	// cwnd should be 4. After two RTTs, 8.
	p.sched.RunUntil(sim.Time(25 * sim.Millisecond))
	if got := p.snd.Cwnd(); got != 4 {
		t.Fatalf("cwnd after 1 RTT = %v, want 4", got)
	}
	p.sched.RunUntil(sim.Time(45 * sim.Millisecond))
	if got := p.snd.Cwnd(); got != 8 {
		t.Fatalf("cwnd after 2 RTT = %v, want 8", got)
	}
}

func TestWindowBasedSendsBursts(t *testing.T) {
	// The window-based sender must emit its usable window back to back:
	// all initial packets at the same instant.
	p := newPipe(t, Config{TotalPackets: 1000, InitialCwnd: 8})
	var sendTimes []sim.Time
	orig := p.snd.out
	p.snd.out = netsim.HandlerFunc(func(pkt *netsim.Packet) {
		sendTimes = append(sendTimes, p.sched.Now())
		orig.Handle(pkt)
	})
	p.snd.Start()
	p.sched.RunUntil(sim.Time(sim.Millisecond))
	if len(sendTimes) != 8 {
		t.Fatalf("sent %d packets initially, want 8", len(sendTimes))
	}
	for _, ts := range sendTimes {
		if ts != 0 {
			t.Fatalf("burst not back-to-back: %v", sendTimes)
		}
	}
}

func TestPacedSenderSpreadsPackets(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 1000, InitialCwnd: 8, Paced: true,
		InitialRTT: 80 * sim.Millisecond})
	var sendTimes []sim.Time
	orig := p.snd.out
	p.snd.out = netsim.HandlerFunc(func(pkt *netsim.Packet) {
		sendTimes = append(sendTimes, p.sched.Now())
		orig.Handle(pkt)
	})
	p.snd.Start()
	// Before the first ACK returns (~25 ms) the pace interval is
	// InitialRTT/(2·cwnd) = 5 ms (slow start paces the doubled window);
	// ticks land at 5, 10, 15 and 20 ms.
	p.sched.RunUntil(sim.Time(24 * sim.Millisecond))
	if len(sendTimes) != 4 {
		t.Fatalf("sent %d packets in 24ms, want 4", len(sendTimes))
	}
	for i := 1; i < 4; i++ {
		if gap := sendTimes[i].Sub(sendTimes[i-1]); gap != 5*sim.Millisecond {
			t.Fatalf("pace gap = %v, want 5ms", gap)
		}
	}
	// After ACKs arrive the real RTT (20 ms) takes over; packets must stay
	// strictly spread (never back to back) for the life of the connection.
	p.sched.RunUntil(sim.Time(200 * sim.Millisecond))
	for i := 1; i < len(sendTimes); i++ {
		if sendTimes[i] == sendTimes[i-1] {
			t.Fatalf("paced packets %d,%d share instant %v", i-1, i, sendTimes[i])
		}
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 200, InitialCwnd: 10})
	p.drop[5] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if p.snd.Timeouts != 0 {
		t.Fatalf("needed %d timeouts; fast retransmit should have recovered", p.snd.Timeouts)
	}
	if p.snd.CongestionEvents != 1 {
		t.Fatalf("congestion events = %d, want 1", p.snd.CongestionEvents)
	}
	if p.snd.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", p.snd.Retransmits)
	}
}

func TestNewRenoRecoversMultipleLossesWithoutTimeout(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 300, InitialCwnd: 20})
	// Multiple drops in one window: NewReno retransmits one hole per
	// partial ACK and should avoid RTO.
	p.drop[5] = true
	p.drop[7] = true
	p.drop[9] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("did not complete")
	}
	if p.snd.Timeouts != 0 {
		t.Fatalf("NewReno took %d timeouts on a 3-loss window", p.snd.Timeouts)
	}
	// One congestion event per loss *event*, not per lost packet.
	if p.snd.CongestionEvents != 1 {
		t.Fatalf("congestion events = %d, want 1", p.snd.CongestionEvents)
	}
	if p.snd.Retransmits != 3 {
		t.Fatalf("retransmits = %d, want 3", p.snd.Retransmits)
	}
}

func TestRenoExitsRecoveryOnPartialAck(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 300, InitialCwnd: 20, Variant: Reno})
	p.drop[5] = true
	p.drop[7] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("did not complete")
	}
	// Reno exits on the partial ACK and must either fast-retransmit again
	// or time out for the second hole; both cost at least 2 congestion
	// events or a timeout.
	if p.snd.CongestionEvents < 2 && p.snd.Timeouts == 0 {
		t.Fatalf("Reno recovered 2 holes with %d events and no timeout",
			p.snd.CongestionEvents)
	}
}

func TestLimitedTransmitRescuesSmallWindow(t *testing.T) {
	// A 2-packet window would produce only one duplicate ACK — without
	// Limited Transmit (RFC 3042) the flow must RTO. With it, each of the
	// first two dup ACKs releases a new segment, the third dup ACK
	// arrives, and fast retransmit recovers without a timeout.
	p := newPipe(t, Config{TotalPackets: 50, InitialCwnd: 2})
	p.drop[1] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("did not complete")
	}
	if p.snd.Timeouts != 0 {
		t.Fatalf("limited transmit failed: %d timeouts", p.snd.Timeouts)
	}
	if p.snd.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", p.snd.Retransmits)
	}
}

func TestTimeoutWhenOnlyPacketLost(t *testing.T) {
	// With a 1-packet window there are no dup ACKs at all: the RTO is the
	// only recovery path.
	p := newPipe(t, Config{TotalPackets: 5, InitialCwnd: 1, MaxCwnd: 1})
	p.drop[0] = true
	p.snd.Start()
	p.sched.Run()
	if !p.snd.Done() {
		t.Fatal("did not complete")
	}
	if p.snd.Timeouts == 0 {
		t.Fatal("expected an RTO with a 1-packet window")
	}
}

func TestCongestionAvoidanceLinearGrowth(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 100000, InitialCwnd: 10, InitialSSThresh: 10})
	p.snd.Start()
	// In CA, cwnd grows ~1 packet per RTT (20 ms). Run 10 RTTs.
	p.sched.RunUntil(sim.Time(200 * sim.Millisecond))
	got := p.snd.Cwnd()
	if got < 17 || got > 22 {
		t.Fatalf("cwnd after ~10 CA RTTs = %v, want ≈20", got)
	}
}

func TestRTTEstimator(t *testing.T) {
	var e rttEstimator
	e.MinRTO = 200 * sim.Millisecond
	e.MaxRTO = 60 * sim.Second
	e.InitialRTO = sim.Second
	if e.RTO() != sim.Second {
		t.Fatalf("initial RTO = %v", e.RTO())
	}
	if e.HasSample() {
		t.Fatal("no sample yet")
	}
	e.Sample(100 * sim.Millisecond)
	if e.SRTT(0) != 100*sim.Millisecond {
		t.Fatalf("first srtt = %v", e.SRTT(0))
	}
	// RTO = srtt + 4·rttvar = 100 + 4·50 = 300 ms.
	if e.RTO() != 300*sim.Millisecond {
		t.Fatalf("rto = %v", e.RTO())
	}
	e.Sample(100 * sim.Millisecond)
	if e.SRTT(0) != 100*sim.Millisecond {
		t.Fatalf("stable srtt = %v", e.SRTT(0))
	}
	// Variance decays toward zero; RTO floors at MinRTO eventually.
	for i := 0; i < 50; i++ {
		e.Sample(100 * sim.Millisecond)
	}
	if e.RTO() != e.MinRTO {
		t.Fatalf("rto floor = %v", e.RTO())
	}
	e.Sample(0) // ignored
	if e.SRTT(0) != 100*sim.Millisecond {
		t.Fatal("zero sample not ignored")
	}
}

func TestRTTEstimatorFallback(t *testing.T) {
	var e rttEstimator
	if e.SRTT(42*sim.Millisecond) != 42*sim.Millisecond {
		t.Fatal("fallback not used")
	}
}

func TestReceiverOutOfOrderCumAck(t *testing.T) {
	sched := sim.NewScheduler()
	var acks []int64
	out := netsim.HandlerFunc(func(p *netsim.Packet) { acks = append(acks, p.Ack) })
	r := NewReceiver(sched, out, 1, 200, 100, 40)
	mk := func(seq int64) *netsim.Packet {
		return &netsim.Packet{Flow: 1, Kind: netsim.Data, Seq: seq, Size: 1000}
	}
	r.Handle(mk(0)) // ack 1
	r.Handle(mk(2)) // hole: ack 1 (dup)
	r.Handle(mk(3)) // ack 1 (dup)
	r.Handle(mk(1)) // fills: ack 4
	want := []int64{1, 1, 1, 4}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	if r.Duplicates != 0 {
		t.Fatalf("duplicates = %d", r.Duplicates)
	}
	r.Handle(mk(0)) // old duplicate
	if r.Duplicates != 1 {
		t.Fatalf("old packet not counted duplicate")
	}
	r.Handle(mk(10))
	r.Handle(mk(10)) // repeated out-of-order duplicate
	if r.Duplicates != 2 {
		t.Fatalf("ooo duplicate not counted: %d", r.Duplicates)
	}
}

func TestReceiverIgnoresWrongFlowAndKind(t *testing.T) {
	sched := sim.NewScheduler()
	n := 0
	out := netsim.HandlerFunc(func(p *netsim.Packet) { n++ })
	r := NewReceiver(sched, out, 1, 200, 100, 40)
	r.Handle(&netsim.Packet{Flow: 2, Kind: netsim.Data})
	r.Handle(&netsim.Packet{Flow: 1, Kind: netsim.Ack})
	if n != 0 || r.Received != 0 {
		t.Fatal("receiver handled foreign packets")
	}
}

func TestSenderIgnoresForeignPackets(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 10})
	p.snd.Start()
	before := p.snd.AcksIn
	p.snd.Handle(&netsim.Packet{Flow: 99, Kind: netsim.Ack, Ack: 5})
	p.snd.Handle(&netsim.Packet{Flow: 1, Kind: netsim.Data, Seq: 5})
	if p.snd.AcksIn != before || p.snd.CumAck() != 0 {
		t.Fatal("sender handled foreign packets")
	}
}

func TestECNReactionHalvesWindow(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 10000, InitialCwnd: 16, ECN: true})
	// Mark every data packet CE at the "router".
	orig := p.snd.out
	p.snd.out = netsim.HandlerFunc(func(pkt *netsim.Packet) {
		pkt.CE = true
		orig.Handle(pkt)
	})
	p.snd.Start()
	p.sched.RunUntil(sim.Time(25 * sim.Millisecond)) // one RTT
	if p.snd.CongestionEvents == 0 {
		t.Fatal("no ECN reaction")
	}
	if p.snd.Cwnd() > 16 {
		t.Fatalf("cwnd = %v, should have been halved from 16", p.snd.Cwnd())
	}
	if p.snd.Retransmits != 0 {
		t.Fatal("ECN must not cause retransmits")
	}
	// Rate limiting: within 3 RTTs at most ~3 reductions.
	p.sched.RunUntil(sim.Time(70 * sim.Millisecond))
	if p.snd.CongestionEvents > 4 {
		t.Fatalf("ECN reductions not rate-limited: %d", p.snd.CongestionEvents)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.PktSize != 1000 || c.AckSize != 40 || c.InitialCwnd != 2 ||
		c.PaceQuantum != 1 || c.MinRTO != 200*sim.Millisecond {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestNewSenderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSender(nil, nil, Config{})
}

func TestPaceQuantumBursts(t *testing.T) {
	p := newPipe(t, Config{TotalPackets: 1000, InitialCwnd: 8, Paced: true,
		PaceQuantum: 4, InitialRTT: 80 * sim.Millisecond})
	var sendTimes []sim.Time
	orig := p.snd.out
	p.snd.out = netsim.HandlerFunc(func(pkt *netsim.Packet) {
		sendTimes = append(sendTimes, p.sched.Now())
		orig.Handle(pkt)
	})
	p.snd.Start()
	p.sched.RunUntil(sim.Time(79 * sim.Millisecond))
	// With quantum 4 the first tick at 40 ms releases 4 back to back.
	if len(sendTimes) < 4 {
		t.Fatalf("sent %d", len(sendTimes))
	}
	if sendTimes[0] != sendTimes[3] {
		t.Fatalf("quantum burst not back-to-back: %v", sendTimes[:4])
	}
}
