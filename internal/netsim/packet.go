// Package netsim provides the packet-level network elements that the
// experiments run on: packets, queues (DropTail and RED, with optional ECN
// marking), links with serialization and propagation delay, output ports,
// nodes with static routing, and the dumbbell topology used throughout the
// paper. It plays the role NS-2 plays in the original study.
package netsim

import "repro/internal/sim"

// PacketKind discriminates the traffic carried by a Packet.
type PacketKind uint8

const (
	// Data is a payload-carrying segment (TCP data, TFRC data, CBR probe,
	// cross-traffic burst).
	Data PacketKind = iota
	// Ack is a transport acknowledgement travelling in the reverse path.
	Ack
	// Feedback is a TFRC receiver report.
	Feedback
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Feedback:
		return "feedback"
	default:
		return "unknown"
	}
}

// Packet is the unit of transmission. Packets are allocated by senders and
// flow through queues and links by pointer; nothing mutates a packet after
// it has been handed to the network except the ECN congestion-experienced
// bit, which routers may set.
type Packet struct {
	ID   uint64     // globally unique, assigned by the allocating source
	Flow int        // flow identifier; unique per experiment
	Kind PacketKind // data / ack / feedback
	Size int        // bytes on the wire, headers included

	Seq int64 // data: sequence number in packets; acks: echoed sequence
	Ack int64 // acks: cumulative acknowledgement (next expected seq)

	Src, Dst int // node addresses

	SendTime sim.Time // stamped by the source when first transmitted
	Retrans  bool     // data: this is a retransmission

	ECT bool // ECN-capable transport
	CE  bool // congestion experienced, set by RED/ECN routers

	// SenderRTT is the sender's current RTT estimate, carried on TFRC data
	// packets (RFC 3448 §3.2.1) so the receiver can group losses into loss
	// events and pace its feedback.
	SenderRTT sim.Duration

	// FeedbackPayload carries TFRC receiver-report fields when Kind is
	// Feedback. It is nil on other packets.
	FeedbackPayload *TFRCFeedback
}

// TFRCFeedback is the receiver report defined by RFC 3448 §3.2.2: the
// information a TFRC receiver returns to its sender once per RTT.
type TFRCFeedback struct {
	Timestamp sim.Time // send time of the packet that triggered the report (for RTT)
	Delay     sim.Duration
	RecvRate  float64 // receive rate in bytes/second since the last report
	LossRate  float64 // loss event rate p
}

// Handler consumes packets. Links deliver to Handlers; transports and nodes
// implement it.
type Handler interface {
	Handle(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// Handle calls f(pkt).
func (f HandlerFunc) Handle(pkt *Packet) { f(pkt) }
