// Package netsim provides the packet-level network elements that the
// experiments run on: packets, queues (DropTail and RED, with optional ECN
// marking), links with serialization and propagation delay, output ports,
// nodes with static routing, and the dumbbell topology used throughout the
// paper. It plays the role NS-2 plays in the original study.
package netsim

import "repro/internal/sim"

// PacketKind discriminates the traffic carried by a Packet.
type PacketKind uint8

const (
	// Data is a payload-carrying segment (TCP data, TFRC data, CBR probe,
	// cross-traffic burst).
	Data PacketKind = iota
	// Ack is a transport acknowledgement travelling in the reverse path.
	Ack
	// Feedback is a TFRC receiver report.
	Feedback
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Feedback:
		return "feedback"
	default:
		return "unknown"
	}
}

// Packet is the unit of transmission. Packets are allocated by senders and
// flow through queues and links by pointer; nothing mutates a packet after
// it has been handed to the network except the ECN congestion-experienced
// bit, which routers may set.
type Packet struct {
	ID   uint64     // globally unique, assigned by the allocating source
	Flow int        // flow identifier; unique per experiment
	Kind PacketKind // data / ack / feedback
	Size int        // bytes on the wire, headers included

	Seq int64 // data: sequence number in packets; acks: echoed sequence
	Ack int64 // acks: cumulative acknowledgement (next expected seq)

	Src, Dst int // node addresses

	SendTime sim.Time // stamped by the source when first transmitted
	Retrans  bool     // data: this is a retransmission

	ECT bool // ECN-capable transport
	CE  bool // congestion experienced, set by RED/ECN routers

	// SenderRTT is the sender's current RTT estimate, carried on TFRC data
	// packets (RFC 3448 §3.2.1) so the receiver can group losses into loss
	// events and pace its feedback.
	SenderRTT sim.Duration

	// FeedbackPayload carries TFRC receiver-report fields when Kind is
	// Feedback. It is nil on other packets.
	FeedbackPayload *TFRCFeedback

	// HasRateFB marks a Feedback packet as carrying a delay-based (GCC
	// style) receiver report in RateFB. The report is embedded by value —
	// not behind a pointer like the TFRC payload — so pooled feedback
	// packets stay allocation-free on the steady-state rate-control path.
	HasRateFB bool
	// RateFB is the delay-based receiver report (valid iff HasRateFB).
	RateFB RateFeedback

	// HasRFTAck marks a Feedback packet as carrying a reliable-file-transfer
	// client report in RFTAck (internal/apps/rft). Embedded by value like
	// RateFB, with a fixed-size resend-entry array, so the periodic client
	// ACK stream stays allocation-free on pooled packets.
	HasRFTAck bool
	// RFTAck is the file-transfer client report (valid iff HasRFTAck).
	RFTAck RFTFeedback
}

// RFTResendEntries is the resend-entry capacity of one client ACK. A real
// NACK report is size-bounded the same way (it must fit one datagram);
// gaps beyond the bound are simply re-reported on later ACKs, since the
// receiver re-derives its missing set from the chunk ledger every tick.
const RFTResendEntries = 8

// RFTRange is one missing-chunk run [Start, End) in a client ACK.
type RFTRange struct {
	Start, End int64
}

// RFTFeedback is the periodic client report of the reliable file transfer
// application (internal/apps/rft), modeled on the rftp protocol: a
// monotone report number for stale-report rejection, a cumulative ACK
// (lowest chunk not yet received), a bounded list of missing-chunk ranges
// (the resend entries), and the echo timestamps the sender's RTT estimate
// needs.
type RFTFeedback struct {
	// Epoch is the transfer generation the report belongs to. Restarting
	// a flow for its next transfer bumps the epoch on both endpoints, so
	// an ACK still in flight from the previous transfer is recognizably
	// stale (chunk packets carry the epoch in Packet.Ack for the same
	// reason).
	Epoch int64
	// AckSeq is the monotone report number; the sender ignores reports
	// arriving out of order and decrements its AIMD cool-off by the
	// AckSeq delta, per the rftp AIMD.
	AckSeq int64
	// NextNeeded is the cumulative ACK: every chunk below it has been
	// received.
	NextNeeded int64
	// Received is the count of distinct chunks received so far.
	Received int64
	// Complete reports that every chunk of the transfer has arrived.
	Complete bool
	// NumResend is the number of valid entries in Resend.
	NumResend int
	// Resend lists up to RFTResendEntries missing-chunk ranges between
	// NextNeeded and the highest chunk seen.
	Resend [RFTResendEntries]RFTRange
	// Timestamp is the send time of the newest data chunk seen and Delay
	// the report's lag behind that arrival, for the sender's RTT estimate
	// (same convention as RateFeedback).
	Timestamp sim.Time
	Delay     sim.Duration
}

// RateFeedback is the receiver report of the delay-based congestion
// controller (internal/ratectl): the receiver-side pipeline computes a
// target rate from one-way delay gradients and returns it to the sender
// REMB-style, together with the timestamps the sender needs for its RTT
// estimate and the measured arrival rate.
type RateFeedback struct {
	TargetRate float64  // receiver-computed target sending rate, bytes/second
	RecvRate   float64  // measured receive rate since the last report, bytes/second
	Timestamp  sim.Time // send time of the newest data packet seen (for RTT)
	Delay      sim.Duration
}

// TFRCFeedback is the receiver report defined by RFC 3448 §3.2.2: the
// information a TFRC receiver returns to its sender once per RTT.
type TFRCFeedback struct {
	Timestamp sim.Time // send time of the packet that triggered the report (for RTT)
	Delay     sim.Duration
	RecvRate  float64 // receive rate in bytes/second since the last report
	LossRate  float64 // loss event rate p
}

// PacketPool is a per-world packet freelist. Senders Get packets instead
// of allocating, and the component that terminates a packet's life — the
// receiving transport, a sink, or the port that drops it — Puts it back.
//
// Ownership rules (documented for every implementor):
//
//   - A packet belongs to exactly one component at a time; handing it to a
//     Handler transfers ownership.
//   - Only the final consumer recycles: a Handler that forwards the packet
//     must not Put it, and observers (OnDrop, OnData, trace wrappers) must
//     copy fields rather than retain the pointer, because the packet may
//     be reused as soon as the observing callback returns.
//   - Pools are per world, not global and not sync.Pool: a simulated world
//     is single-goroutine by contract, so an unsynchronized freelist is
//     race-free, allocation order stays deterministic, and no packet can
//     migrate between concurrently running replications.
//
// A nil *PacketPool is valid everywhere one is accepted: Get falls back to
// plain allocation and Put discards, so worlds that do not care about
// allocation pressure need no wiring.
type PacketPool struct {
	free []*Packet
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// poolSlab is how many packets an empty pool allocates at once. Populating
// a pool packet-by-packet costs one allocation per packet; slab allocation
// cuts that to one per 64, which is most of a fresh world's allocation
// count (the population is the largest object group a run creates). The
// slab stays reachable while any of its packets is, which is fine: pools
// are per world and packets never outlive their world.
const poolSlab = 64

// Get returns a zeroed packet, reusing a recycled one when available.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if len(pl.free) == 0 {
		slab := make([]Packet, poolSlab)
		for i := range slab[1:] {
			pl.free = append(pl.free, &slab[1+i])
		}
		return &slab[0]
	}
	n := len(pl.free) - 1
	p := pl.free[n]
	pl.free[n] = nil
	pl.free = pl.free[:n]
	*p = Packet{}
	return p
}

// Put recycles a dead packet. Putting nil (or into a nil pool) is a no-op.
func (pl *PacketPool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.free = append(pl.free, p)
}

// Sink returns a Handler that absorbs and recycles every packet delivered
// to it — the pool-aware replacement for a discard-everything closure,
// used for cross-traffic sinks.
func (pl *PacketPool) Sink() Handler {
	return HandlerFunc(func(p *Packet) { pl.Put(p) })
}

// Handler consumes packets. Links deliver to Handlers; transports and nodes
// implement it. Delivery transfers ownership of the packet: the final
// consumer may recycle it into a PacketPool (see PacketPool's rules).
type Handler interface {
	Handle(pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *Packet)

// Handle calls f(pkt).
func (f HandlerFunc) Handle(pkt *Packet) { f(pkt) }
