package netsim

import (
	"math"
	"math/rand"
)

// RED implements Random Early Detection (Floyd & Jacobson 1993), the
// proposal the paper discusses as the way to de-burst the loss process. The
// average queue length is an EWMA updated on every arrival; between minTh
// and maxTh arriving packets are dropped (or ECN-marked) with a probability
// that grows linearly to MaxP and is spread out by the count-based
// uniformization from the original paper.
type RED struct {
	fifo
	Limit int     // hard capacity in packets
	MinTh float64 // lower average-queue threshold, packets
	MaxTh float64 // upper average-queue threshold, packets
	MaxP  float64 // drop probability at MaxTh
	Wq    float64 // EWMA weight for the average queue size
	ECN   bool    // mark ECN-capable packets instead of dropping

	// Gentle enables the "gentle RED" variant: between maxTh and 2·maxTh
	// the drop probability rises linearly from MaxP to 1 instead of jumping
	// to 1, which reduces parameter sensitivity.
	Gentle bool

	// PersistMark implements the persistent-ECN extension the paper
	// proposes (its reference [22]): once a mark or drop decision fires,
	// every ECN-capable packet is marked for this long (typically one
	// RTT), so that *every* flow sharing the bottleneck sees the
	// congestion signal, not just the flows whose packets happened to be
	// in the drop burst. Requires ECN and EnqueueAt (the Port uses
	// EnqueueAt automatically).
	PersistMark float64 // seconds; 0 disables

	markUntil float64 // simulated seconds until which all ECT packets are marked

	rng *rand.Rand

	avg       float64 // EWMA of queue length in packets
	count     int     // packets since the last drop/mark while avg in [minTh,maxTh)
	idleStart float64 // simulated seconds when the queue went idle; <0 while busy
	ptc       float64 // packets-per-second used to age avg across idle periods

	// Marked counts ECN marks applied in lieu of drops.
	Marked uint64
}

// REDConfig carries the tunables for NewRED. Zero fields get the defaults
// recommended by Floyd: wq=0.002, maxP=0.1, minTh=5, maxTh=3·minTh.
type REDConfig struct {
	Limit  int
	MinTh  float64
	MaxTh  float64
	MaxP   float64
	Wq     float64
	ECN    bool
	Gentle bool
	// PacketsPerSecond is the drain rate of the attached link in packets,
	// used to decay the average queue size across idle periods. Optional.
	PacketsPerSecond float64
	// PersistMark, in seconds, enables the paper's persistent-ECN
	// extension: after any mark/drop decision, all ECN-capable arrivals
	// are marked for this long.
	PersistMark float64
}

// NewRED builds a RED queue. rng must be non-nil; RED is a randomized
// discipline and the experiments need seeded reproducibility.
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	if cfg.Limit <= 0 {
		panic("netsim: RED limit must be positive")
	}
	if rng == nil {
		panic("netsim: RED requires a seeded *rand.Rand")
	}
	q := &RED{
		Limit:       cfg.Limit,
		MinTh:       cfg.MinTh,
		MaxTh:       cfg.MaxTh,
		MaxP:        cfg.MaxP,
		Wq:          cfg.Wq,
		ECN:         cfg.ECN,
		Gentle:      cfg.Gentle,
		PersistMark: cfg.PersistMark,
		rng:         rng,
		ptc:         cfg.PacketsPerSecond,
	}
	q.seed(cfg.Limit)
	if q.Wq == 0 {
		q.Wq = 0.002
	}
	if q.MaxP == 0 {
		q.MaxP = 0.1
	}
	if q.MinTh == 0 {
		q.MinTh = 5
	}
	if q.MaxTh == 0 {
		q.MaxTh = 3 * q.MinTh
	}
	q.idleStart = -1
	return q
}

// Reset rewinds the queue to the state NewRED(cfg, sim.NewRand(seed))
// would produce, reusing the existing store and random generator: the
// EWMA, uniformization count, idle clock and persistent-ECN window zero
// out, the tunables retake cfg (with the same Floyd defaults), and the
// random stream reseeds — so a reset RED queue is bit-identical to a
// freshly built one. The caller drains queued packets first (Port.Reset).
func (q *RED) Reset(cfg REDConfig, seed int64) {
	if cfg.Limit <= 0 {
		panic("netsim: RED limit must be positive")
	}
	q.fifo.reset()
	q.Limit = cfg.Limit
	q.MinTh = cfg.MinTh
	q.MaxTh = cfg.MaxTh
	q.MaxP = cfg.MaxP
	q.Wq = cfg.Wq
	q.ECN = cfg.ECN
	q.Gentle = cfg.Gentle
	q.PersistMark = cfg.PersistMark
	q.ptc = cfg.PacketsPerSecond
	if q.Wq == 0 {
		q.Wq = 0.002
	}
	if q.MaxP == 0 {
		q.MaxP = 0.1
	}
	if q.MinTh == 0 {
		q.MinTh = 5
	}
	if q.MaxTh == 0 {
		q.MaxTh = 3 * q.MinTh
	}
	q.markUntil = 0
	q.avg = 0
	q.count = 0
	q.idleStart = -1
	q.Marked = 0
	q.rng.Seed(seed)
}

func (q *RED) noteTime(nowSec float64) {
	if q.idleStart >= 0 && q.ptc > 0 {
		// Queue has been idle: decay avg as if (idle · ptc) empty slots went by.
		m := (nowSec - q.idleStart) * q.ptc
		if m > 0 {
			q.avg *= math.Pow(1-q.Wq, m)
		}
		q.idleStart = -1
	}
}

// EnqueueAt offers a packet at the given simulated time (seconds). The
// time ages the average across idle periods and drives persistent ECN
// marking.
func (q *RED) EnqueueAt(p *Packet, nowSec float64) bool {
	q.noteTime(nowSec)
	if q.PersistMark > 0 && p.ECT && nowSec < q.markUntil {
		p.CE = true
		q.Marked++
		q.avg = (1-q.Wq)*q.avg + q.Wq*float64(q.len())
		if q.len() >= q.Limit {
			return false
		}
		q.push(p)
		return true
	}
	accepted := q.Enqueue(p)
	if q.PersistMark > 0 && (!accepted || p.CE) {
		// A drop or mark decision just fired: open the persistent window.
		q.markUntil = nowSec + q.PersistMark
	}
	return accepted
}

// Enqueue implements Queue.
func (q *RED) Enqueue(p *Packet) bool {
	q.avg = (1-q.Wq)*q.avg + q.Wq*float64(q.len())

	if q.len() >= q.Limit {
		q.count = 0
		return false // forced tail drop
	}

	drop := false
	switch {
	case q.avg < q.MinTh:
		q.count = -1
	case q.avg < q.MaxTh:
		q.count++
		pb := q.MaxP * (q.avg - q.MinTh) / (q.MaxTh - q.MinTh)
		drop = q.uniformized(pb)
	case q.Gentle && q.avg < 2*q.MaxTh:
		q.count++
		pb := q.MaxP + (1-q.MaxP)*(q.avg-q.MaxTh)/q.MaxTh
		drop = q.uniformized(pb)
	default:
		q.count = 0
		drop = true
	}

	if drop {
		if q.ECN && p.ECT {
			p.CE = true
			q.Marked++
		} else {
			return false
		}
	}
	q.push(p)
	return true
}

// uniformized converts the instantaneous probability pb into the original
// RED paper's uniformized per-packet probability pa = pb / (1 - count·pb),
// which spaces drops roughly evenly.
func (q *RED) uniformized(pb float64) bool {
	if pb <= 0 {
		return false
	}
	den := 1 - float64(q.count)*pb
	pa := 1.0
	if den > 0 {
		pa = pb / den
	}
	if q.rng.Float64() < pa {
		q.count = 0
		return true
	}
	return false
}

// Dequeue implements Queue.
func (q *RED) Dequeue() *Packet { return q.pop() }

// NoteEmptyAt records the simulated time (seconds) at which the queue went
// idle, so the next arrival can age the average queue size across the idle
// period. The Port calls this when a dequeue empties the queue.
func (q *RED) NoteEmptyAt(nowSec float64) { q.idleStart = nowSec }

// Len implements Queue.
func (q *RED) Len() int { return q.fifo.len() }

// Bytes implements Queue.
func (q *RED) Bytes() int { return q.fifo.bytes }

// AvgQueue exposes the EWMA average queue length, for tests and ablations.
func (q *RED) AvgQueue() float64 { return q.avg }
