package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkPkt(id uint64, size int) *Packet {
	return &Packet{ID: id, Size: size, Kind: Data}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(3)
	for i := uint64(0); i < 3; i++ {
		if !q.Enqueue(mkPkt(i, 100)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Enqueue(mkPkt(99, 100)) {
		t.Fatal("overfull enqueue accepted")
	}
	if q.Len() != 3 || q.Bytes() != 300 {
		t.Fatalf("len=%d bytes=%d", q.Len(), q.Bytes())
	}
	for i := uint64(0); i < 3; i++ {
		p := q.Dequeue()
		if p == nil || p.ID != i {
			t.Fatalf("dequeue %d got %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue from empty returned packet")
	}
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("empty queue len=%d bytes=%d", q.Len(), q.Bytes())
	}
}

func TestDropTailRefillsAfterDrain(t *testing.T) {
	q := NewDropTail(2)
	q.Enqueue(mkPkt(1, 10))
	q.Enqueue(mkPkt(2, 10))
	q.Dequeue()
	if !q.Enqueue(mkPkt(3, 10)) {
		t.Fatal("space freed by dequeue not reusable")
	}
	if q.Enqueue(mkPkt(4, 10)) {
		t.Fatal("accepted beyond limit")
	}
}

func TestDropTailZeroLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero limit")
		}
	}()
	NewDropTail(0)
}

func TestDropTailCompaction(t *testing.T) {
	// Push/pop far beyond the compaction threshold and ensure FIFO order
	// and byte accounting survive.
	q := NewDropTail(16)
	next := uint64(0)
	exp := uint64(0)
	for round := 0; round < 100; round++ {
		for q.Len() < 16 {
			q.Enqueue(mkPkt(next, 7))
			next++
		}
		for q.Len() > 4 {
			p := q.Dequeue()
			if p.ID != exp {
				t.Fatalf("order broken: got %d want %d", p.ID, exp)
			}
			exp++
		}
		if q.Bytes() != q.Len()*7 {
			t.Fatalf("bytes accounting: %d vs %d pkts", q.Bytes(), q.Len())
		}
	}
}

// Property: for any interleaving of enqueues and dequeues, DropTail never
// exceeds its limit, never loses FIFO order, and Bytes() is the sum of
// queued sizes.
func TestDropTailProperty(t *testing.T) {
	f := func(ops []bool, limit uint8) bool {
		lim := int(limit%32) + 1
		q := NewDropTail(lim)
		var model []*Packet
		id := uint64(0)
		for _, enq := range ops {
			if enq {
				p := mkPkt(id, int(id%500)+1)
				id++
				ok := q.Enqueue(p)
				if ok != (len(model) < lim) {
					return false
				}
				if ok {
					model = append(model, p)
				}
			} else {
				p := q.Dequeue()
				if len(model) == 0 {
					if p != nil {
						return false
					}
				} else {
					if p != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
			wantBytes := 0
			for _, m := range model {
				wantBytes += m.Size
			}
			if q.Bytes() != wantBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestREDBelowMinThNeverDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{Limit: 100, MinTh: 50, MaxTh: 150}, rng)
	for i := 0; i < 40; i++ {
		if !q.Enqueue(mkPkt(uint64(i), 100)) {
			t.Fatalf("drop below minth at %d (avg=%v)", i, q.AvgQueue())
		}
	}
}

func TestREDForcedDropAtLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{Limit: 10, MinTh: 100, MaxTh: 300}, rng)
	for i := 0; i < 10; i++ {
		if !q.Enqueue(mkPkt(uint64(i), 100)) {
			t.Fatalf("unexpected early drop at %d", i)
		}
	}
	if q.Enqueue(mkPkt(99, 100)) {
		t.Fatal("enqueue beyond hard limit accepted")
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewRED(REDConfig{Limit: 1000, MinTh: 5, MaxTh: 15, MaxP: 0.1}, rng)
	drops := 0
	// Hold the queue long: enqueue 2 for every dequeue so avg climbs.
	for i := 0; i < 3000; i++ {
		if !q.Enqueue(mkPkt(uint64(i), 100)) {
			drops++
		}
		if i%2 == 0 {
			q.Dequeue()
		}
	}
	if drops == 0 {
		t.Fatal("RED never dropped despite sustained congestion")
	}
	if drops > 2900 {
		t.Fatalf("RED dropped nearly everything: %d", drops)
	}
}

func TestREDAboveMaxThDropsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := NewRED(REDConfig{Limit: 10000, MinTh: 2, MaxTh: 4, MaxP: 0.1}, rng)
	// Fill without draining; once avg > maxTh every arrival is dropped
	// (non-gentle RED).
	total, drops := 0, 0
	for i := 0; i < 5000; i++ {
		total++
		if !q.Enqueue(mkPkt(uint64(i), 100)) {
			drops++
		}
	}
	if drops < total/2 {
		t.Fatalf("expected heavy dropping above maxth: %d/%d", drops, total)
	}
}

func TestREDGentleRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gentle := NewRED(REDConfig{Limit: 10000, MinTh: 5, MaxTh: 10, MaxP: 0.1, Gentle: true}, rng)
	accepted := 0
	for i := 0; i < 2000; i++ {
		if gentle.Enqueue(mkPkt(uint64(i), 100)) {
			accepted++
		}
	}
	// Gentle RED should accept noticeably more than zero once avg passes
	// maxTh (plain RED would drop every arrival there).
	if accepted < 20 {
		t.Fatalf("gentle RED accepted only %d", accepted)
	}
}

func TestREDECNMarksInsteadOfDropping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := NewRED(REDConfig{Limit: 10000, MinTh: 2, MaxTh: 6, MaxP: 0.5, ECN: true}, rng)
	marked, dropped := 0, 0
	for i := 0; i < 2000; i++ {
		p := mkPkt(uint64(i), 100)
		p.ECT = true
		if !q.Enqueue(p) {
			dropped++
		} else if p.CE {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("ECN-capable packets never marked")
	}
	if dropped != 0 {
		t.Fatalf("ECN-capable packets dropped %d times below hard limit", dropped)
	}
	if q.Marked != uint64(marked) {
		t.Fatalf("Marked counter %d != observed %d", q.Marked, marked)
	}
}

func TestREDNonECTStillDropped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := NewRED(REDConfig{Limit: 10000, MinTh: 2, MaxTh: 6, MaxP: 0.5, ECN: true}, rng)
	dropped := 0
	for i := 0; i < 2000; i++ {
		p := mkPkt(uint64(i), 100) // ECT = false
		if !q.Enqueue(p) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("non-ECT packets never dropped by ECN-enabled RED")
	}
}

func TestREDDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := NewRED(REDConfig{Limit: 100}, rng)
	if q.Wq != 0.002 || q.MaxP != 0.1 || q.MinTh != 5 || q.MaxTh != 15 {
		t.Fatalf("defaults wrong: wq=%v maxp=%v minth=%v maxth=%v", q.Wq, q.MaxP, q.MinTh, q.MaxTh)
	}
}

func TestREDIdleAging(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := NewRED(REDConfig{Limit: 100, MinTh: 5, MaxTh: 15, PacketsPerSecond: 1000}, rng)
	for i := 0; i < 30; i++ {
		q.EnqueueAt(mkPkt(uint64(i), 100), 0)
	}
	before := q.AvgQueue()
	for q.Len() > 0 {
		q.Dequeue()
	}
	q.NoteEmptyAt(1.0)
	// Next arrival 10 seconds later: avg should have decayed sharply.
	q.EnqueueAt(mkPkt(1000, 100), 11.0)
	if q.AvgQueue() >= before/2 {
		t.Fatalf("idle aging ineffective: before=%v after=%v", before, q.AvgQueue())
	}
}

func TestREDRequiresRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rng accepted")
		}
	}()
	NewRED(REDConfig{Limit: 10}, nil)
}

func TestPacketKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" || Feedback.String() != "feedback" {
		t.Fatal("kind strings wrong")
	}
	if PacketKind(99).String() != "unknown" {
		t.Fatal("unknown kind string wrong")
	}
}
