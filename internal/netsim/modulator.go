package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sim"
)

// RateStep is one entry of a piecewise-constant link schedule: at offset At
// from LinkModulator.Start, the link's rate and/or propagation delay change
// to the given values. A zero Rate keeps the current rate and a zero Delay
// keeps the current delay, so a step can retune either parameter alone (a
// genuine retune *to* zero delay is not expressible; no trace in the
// repository needs one).
type RateStep struct {
	At    sim.Duration // offset from Start
	Rate  int64        // bits per second; 0 keeps the current rate
	Delay sim.Duration // propagation delay; 0 keeps the current delay
}

// modProgram discriminates the modulator's schedule type.
type modProgram uint8

const (
	modSteps modProgram = iota
	modOscillate
	modWalk
)

// LinkModulator retunes a Link's rate (and, for step schedules, delay) over
// simulated time, driven by the world's scheduler. It is how time-varying
// paths — wireless rate adaptation, cellular bandwidth traces, backbone
// outages — enter the otherwise-static netsim substrate.
//
// A retune only affects packets that start serializing after it: the
// packet currently on the wire keeps the transmission time it was
// scheduled with, and deliveries already in flight keep their old
// propagation delay (so a delay *decrease* can reorder deliveries, exactly
// as a real route change does). Packet conservation is untouched — a
// modulated port still forwards or drops every packet offered to it.
//
// Like every component of a world, a modulator belongs to the goroutine
// that owns its scheduler, and its random-walk stream must come from a
// seeded rng derived for it alone (topo.Build derives one per direction),
// so modulated worlds stay a pure function of (spec, seed).
type LinkModulator struct {
	sched   *sim.Scheduler
	link    *Link
	program modProgram

	// Step schedule.
	steps     []RateStep
	idx       int
	loopEvery sim.Duration // 0 = run the schedule once

	// Oscillation and random walk share the bounds and tick interval.
	min, max int64
	interval sim.Duration
	period   sim.Duration // oscillation only

	// Random walk.
	rng     *rand.Rand
	logStep float64
	cur     float64

	base    sim.Time // Start time (advanced by loopEvery on each wrap)
	tick    func()   // created once; every retune re-arms it
	timer   sim.Timer
	started bool

	// Retunes counts applied schedule entries / ticks, for tests and
	// instrumentation.
	Retunes uint64
}

// NewStepModulator builds a piecewise-constant schedule over link. Steps
// must be non-empty with strictly increasing non-negative offsets and
// non-negative rates/delays. A positive loopEvery restarts the schedule
// that long after Start (and again after every wrap); it must be at least
// the last step's offset so time never runs backwards. The modulator is
// inert until Start.
func NewStepModulator(sched *sim.Scheduler, link *Link, steps []RateStep, loopEvery sim.Duration) *LinkModulator {
	m := newModulator(sched, link, modSteps)
	if len(steps) == 0 {
		panic("netsim: step modulator needs at least one step")
	}
	for i, s := range steps {
		if s.At < 0 || s.Rate < 0 || s.Delay < 0 {
			panic(fmt.Sprintf("netsim: step %d has negative At/Rate/Delay", i))
		}
		if i > 0 && s.At <= steps[i-1].At {
			panic(fmt.Sprintf("netsim: step %d offset %v not after step %d (%v)",
				i, s.At, i-1, steps[i-1].At))
		}
	}
	if loopEvery < 0 || (loopEvery > 0 && loopEvery < steps[len(steps)-1].At) {
		panic(fmt.Sprintf("netsim: loop period %v shorter than the schedule (last step at %v)",
			loopEvery, steps[len(steps)-1].At))
	}
	m.steps = steps
	m.loopEvery = loopEvery
	return m
}

// NewOscillator builds a sampled-sinusoid rate schedule: every interval the
// link rate is set to the sinusoid through [min, max] with the given
// period. Bounds must satisfy 0 < min ≤ max; period and interval must be
// positive. The modulator is inert until Start.
func NewOscillator(sched *sim.Scheduler, link *Link, min, max int64, period, interval sim.Duration) *LinkModulator {
	m := newModulator(sched, link, modOscillate)
	if min <= 0 || max < min {
		panic(fmt.Sprintf("netsim: oscillator bounds [%d, %d] invalid", min, max))
	}
	if period <= 0 || interval <= 0 {
		panic("netsim: oscillator period and interval must be positive")
	}
	m.min, m.max = min, max
	m.period, m.interval = period, interval
	return m
}

// NewRandomWalk builds a seeded multiplicative random walk: every interval
// the rate is multiplied by a factor drawn log-uniformly from
// [1/step, step] and clamped to [min, max] — the shape of 802.11-style
// rate adaptation. Bounds must satisfy 0 < min ≤ max, step must exceed 1,
// interval must be positive and rng must be non-nil (derive it with
// sim.SubSeed so the walk has its own stream). The walk starts from the
// link's rate at Start, clamped into the bounds. Inert until Start.
func NewRandomWalk(sched *sim.Scheduler, link *Link, min, max int64, step float64, interval sim.Duration, rng *rand.Rand) *LinkModulator {
	m := newModulator(sched, link, modWalk)
	if min <= 0 || max < min {
		panic(fmt.Sprintf("netsim: random-walk bounds [%d, %d] invalid", min, max))
	}
	if step <= 1 {
		panic(fmt.Sprintf("netsim: random-walk step factor %v must exceed 1", step))
	}
	if interval <= 0 {
		panic("netsim: random-walk interval must be positive")
	}
	if rng == nil {
		panic("netsim: random-walk needs a seeded rng")
	}
	m.min, m.max = min, max
	m.interval = interval
	m.logStep = math.Log(step)
	m.rng = rng
	return m
}

func newModulator(sched *sim.Scheduler, link *Link, p modProgram) *LinkModulator {
	if sched == nil || link == nil {
		panic("netsim: modulator requires a scheduler and a link")
	}
	m := &LinkModulator{sched: sched, link: link, program: p}
	m.tick = m.onTick
	return m
}

// Link returns the link this modulator drives.
func (m *LinkModulator) Link() *Link { return m.link }

// Start arms the schedule at the current simulated time: step schedules
// fire their first entry at its offset from now, oscillators and walks
// tick an interval from now (the link keeps its configured rate until
// then). Starting twice panics.
func (m *LinkModulator) Start() {
	if m.started {
		panic("netsim: modulator started twice")
	}
	m.started = true
	m.base = m.sched.Now()
	switch m.program {
	case modSteps:
		m.idx = 0
		m.timer = m.sched.At(m.base.Add(m.steps[0].At), m.tick)
	default:
		m.cur = clampF(float64(m.link.Rate), float64(m.min), float64(m.max))
		m.timer = m.sched.After(m.interval, m.tick)
	}
}

// Stop cancels the pending retune; the link keeps its current parameters.
// A stopped modulator can be Started again.
func (m *LinkModulator) Stop() {
	m.sched.Cancel(m.timer)
	m.started = false
}

func (m *LinkModulator) onTick() {
	switch m.program {
	case modSteps:
		s := m.steps[m.idx]
		m.link.Retune(s.Rate, s.Delay)
		m.Retunes++
		m.idx++
		if m.idx == len(m.steps) {
			if m.loopEvery == 0 {
				m.started = false
				return
			}
			m.idx = 0
			m.base = m.base.Add(m.loopEvery)
		}
		m.timer = m.sched.Rearm(m.base.Add(m.steps[m.idx].At))
	case modOscillate:
		elapsed := m.sched.Now() - m.base
		phase := 2 * math.Pi * float64(elapsed) / float64(m.period)
		mid := float64(m.min+m.max) / 2
		amp := float64(m.max-m.min) / 2
		m.setRate(mid + amp*math.Sin(phase))
		m.timer = m.sched.Rearm(m.sched.Now().Add(m.interval))
	case modWalk:
		u := 2*m.rng.Float64() - 1
		m.cur = clampF(m.cur*math.Exp(u*m.logStep), float64(m.min), float64(m.max))
		m.setRate(m.cur)
		m.timer = m.sched.Rearm(m.sched.Now().Add(m.interval))
	}
}

func (m *LinkModulator) setRate(r float64) {
	rate := int64(math.Round(clampF(r, float64(m.min), float64(m.max))))
	if rate < 1 {
		rate = 1 // Link.TxTime divides by Rate; the clamp keeps it legal
	}
	m.link.Retune(rate, 0)
	m.Retunes++
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
