package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestPortConservation: for any arrival pattern, every offered packet is
// exactly one of {forwarded, dropped, still queued or in transit} — the
// port never duplicates or leaks packets.
func TestPortConservation(t *testing.T) {
	f := func(seed int64, nPkts uint8, limit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		delivered := 0
		dst := HandlerFunc(func(p *Packet) { delivered++ })
		lim := int(limit%20) + 1
		port := NewPort(s, NewDropTail(lim), NewLink(1_000_000, sim.Millisecond, dst))
		dropped := 0
		port.OnDrop = func(p *Packet, at sim.Time) { dropped++ }

		offered := int(nPkts) + 1
		for i := 0; i < offered; i++ {
			i := i
			s.At(sim.Time(sim.Duration(rng.Intn(50))*sim.Millisecond), func() {
				port.Handle(&Packet{ID: uint64(i), Size: rng.Intn(1400) + 100, Kind: Data})
			})
		}
		s.Run()
		if delivered+dropped != offered {
			return false
		}
		if int(port.Forwarded()) != delivered || int(port.Dropped) != dropped {
			return false
		}
		return port.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPortResetConservation: resetting a world mid-flight strands no
// packets — every packet not yet delivered must come back through the pool,
// exactly once, whether it was waiting in the queue, riding the batched
// port's delivery ring, serializing as txPkt, or evicted by a retune onto
// an individual delivery event (recovered via the scheduler's reset drain).
// The property is checked on both port implementations at a random
// mid-flight instant, with a looping modulator forcing ring rewinds and
// evictions before the cut.
func TestPortResetConservation(t *testing.T) {
	f := func(seed int64, nPkts, stopMs uint8, naive bool) bool {
		defer func(old bool) { NaivePortPath = old }(NaivePortPath)
		NaivePortPath = naive

		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		delivered := 0
		dst := HandlerFunc(func(p *Packet) { delivered++ })
		link := NewLink(1_000_000, 2*sim.Millisecond, dst)
		port := NewPort(s, NewDropTail(6), link)
		port.Pool = NewPacketPool()
		s.SetResetDrain(func(a any) {
			if p, ok := a.(*Packet); ok {
				port.Pool.Put(p)
			}
		})
		m := NewStepModulator(s, link, []RateStep{
			{At: 3 * sim.Millisecond, Delay: 5 * sim.Millisecond},
			{At: 7 * sim.Millisecond, Rate: 2_000_000, Delay: sim.Millisecond},
		}, 11*sim.Millisecond)
		m.Start()

		// offered counts packets the port actually saw before the cut;
		// arrival events that never fired still own their packets.
		offered := 0
		for i := 0; i < int(nPkts)+20; i++ {
			i := i
			s.At(sim.Time(sim.Duration(rng.Intn(50))*sim.Millisecond), func() {
				offered++
				port.Handle(&Packet{ID: uint64(i), Size: rng.Intn(1400) + 100, Kind: Data})
			})
		}
		s.RunUntil(sim.Time(sim.Duration(stopMs%60) * sim.Millisecond))
		s.Reset()
		port.Reset()
		if delivered+len(port.Pool.free) != offered {
			return false
		}
		seen := make(map[*Packet]bool, len(port.Pool.free))
		for _, p := range port.Pool.free {
			if p == nil || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestREDConservation: the same invariant for a RED queue, including ECN
// marking (marked packets are forwarded, not dropped).
func TestREDConservation(t *testing.T) {
	f := func(seed int64, nPkts uint8, ecn bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		delivered, marked := 0, 0
		dst := HandlerFunc(func(p *Packet) {
			delivered++
			if p.CE {
				marked++
			}
		})
		red := NewRED(REDConfig{Limit: 20, MinTh: 3, MaxTh: 9, MaxP: 0.2, ECN: ecn},
			rand.New(rand.NewSource(seed+1)))
		port := NewPort(s, red, NewLink(1_000_000, 0, dst))
		dropped := 0
		port.OnDrop = func(p *Packet, at sim.Time) { dropped++ }

		offered := int(nPkts) + 50
		for i := 0; i < offered; i++ {
			i := i
			s.At(sim.Time(sim.Duration(rng.Intn(20))*sim.Millisecond), func() {
				port.Handle(&Packet{ID: uint64(i), Size: 500, Kind: Data, ECT: ecn})
			})
		}
		s.Run()
		if delivered+dropped != offered {
			return false
		}
		if int(red.Marked) != marked {
			return false
		}
		// ECN-capable traffic below the hard limit should rarely drop; with
		// ECN off it must drop under this load... both cases just require
		// conservation, asserted above.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDumbbellEndToEndConservation: across a full dumbbell, data packets
// offered by senders equal receiver deliveries plus bottleneck and access
// drops.
func TestDumbbellEndToEndConservation(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(s, DumbbellConfig{
		BottleneckRate:  2_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      100_000_000,
		AccessDelays:    []sim.Duration{5 * sim.Millisecond, 5 * sim.Millisecond},
		Buffer:          10,
	})
	got := 0
	for i := 0; i < 2; i++ {
		d.ReceiverNode(i).Bind(i+1, HandlerFunc(func(p *Packet) { got++ }))
	}
	drops := 0
	d.Forward.OnDrop = func(p *Packet, at sim.Time) { drops++ }

	rng := rand.New(rand.NewSource(5))
	const offered = 2000
	for i := 0; i < offered; i++ {
		i := i
		s.At(sim.Time(sim.Duration(rng.Intn(1000))*sim.Millisecond), func() {
			pair := i % 2
			d.SenderNode(pair).Handle(&Packet{
				ID: uint64(i), Flow: pair + 1, Kind: Data, Size: 1000,
				Src: SenderAddr(pair), Dst: ReceiverAddr(pair),
			})
		})
	}
	s.Run()
	if got+drops != offered {
		t.Fatalf("conservation violated: delivered=%d dropped=%d offered=%d",
			got, drops, offered)
	}
	if drops == 0 {
		t.Fatal("expected some drops at the 2 Mbps bottleneck")
	}
}
