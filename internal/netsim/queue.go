package netsim

// Queue is the buffering discipline of an output port. Enqueue either
// accepts the packet or reports a drop; it may also mark ECN-capable
// packets instead of dropping (RED). Queues are packet-counting by default,
// matching the ns-2 DropTail configuration the paper uses.
type Queue interface {
	// Enqueue offers a packet. It returns false when the packet was dropped.
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the head packet, or nil when empty.
	Dequeue() *Packet
	// Len reports queued packets.
	Len() int
	// Bytes reports queued bytes.
	Bytes() int
}

// fifo is the common packet store shared by the queue disciplines.
type fifo struct {
	pkts  []*Packet
	head  int
	bytes int
}

// fifoSeedCap is the initial packet-slice capacity a bounded queue
// preallocates: one allocation up front instead of the first several
// append doublings, sized so the hundreds of mostly-shallow access-link
// queues a sweep rebuilds per replication stay cheap while deep
// bottleneck queues still grow on demand.
const fifoSeedCap = 64

// seed preallocates the store for a queue bounded by limit.
func (q *fifo) seed(limit int) {
	c := limit
	if c > fifoSeedCap {
		c = fifoSeedCap
	}
	if c > 0 {
		q.pkts = make([]*Packet, 0, c)
	}
}

func (q *fifo) push(p *Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
}

func (q *fifo) pop() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

func (q *fifo) len() int { return len(q.pkts) - q.head }

// reset empties the store in place, keeping the slice's capacity. The
// caller must already have drained (and recycled) the queued packets —
// typically via Port.Reset — so only dead slots remain to truncate.
func (q *fifo) reset() {
	for i := q.head; i < len(q.pkts); i++ {
		q.pkts[i] = nil
	}
	q.pkts = q.pkts[:0]
	q.head = 0
	q.bytes = 0
}

// DropTail is a FIFO queue with a hard packet limit: the discipline the
// paper identifies as the major source of sub-RTT loss burstiness. When the
// buffer is full every arriving packet is dropped until a departure makes
// room, which is exactly what produces the cluster of drops the paper
// measures.
type DropTail struct {
	fifo
	Limit int // capacity in packets
}

// NewDropTail returns a DropTail queue holding at most limit packets.
// A non-positive limit panics: a bufferless port cannot forward.
func NewDropTail(limit int) *DropTail {
	if limit <= 0 {
		panic("netsim: DropTail limit must be positive")
	}
	q := &DropTail{Limit: limit}
	q.seed(limit)
	return q
}

// Reset rewinds the queue to its just-built (empty) state and retunes the
// capacity, so a reused world can change buffer sizes between runs without
// rebuilding. The caller drains queued packets first (Port.Reset).
func (q *DropTail) Reset(limit int) {
	if limit <= 0 {
		panic("netsim: DropTail limit must be positive")
	}
	q.fifo.reset()
	q.Limit = limit
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.len() >= q.Limit {
		return false
	}
	q.push(p)
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet { return q.pop() }

// Len implements Queue.
func (q *DropTail) Len() int { return q.fifo.len() }

// Bytes implements Queue.
func (q *DropTail) Bytes() int { return q.fifo.bytes }
