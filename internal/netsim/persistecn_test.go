package netsim

import (
	"math/rand"
	"testing"
)

func TestPersistentECNMarksEverythingInWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewRED(REDConfig{
		Limit: 1000, MinTh: 2, MaxTh: 6, MaxP: 1.0, ECN: true,
		PersistMark:      0.050, // 50 ms window
		PacketsPerSecond: 1000,  // enables idle aging of the average
	}, rng)

	// Phase 1: drive the average past maxTh so a mark decision fires.
	fired := false
	for i := 0; i < 200 && !fired; i++ {
		p := mkPkt(uint64(i), 100)
		p.ECT = true
		q.EnqueueAt(p, 0.001*float64(i))
		fired = p.CE
	}
	if !fired {
		t.Fatal("no initial mark decision")
	}
	markedAt := q.markUntil
	if markedAt <= 0 {
		t.Fatal("persistent window not opened")
	}

	// Phase 2: drain fully, then send sparse traffic inside the window —
	// even with an empty queue (avg below minTh) every ECT packet must be
	// marked.
	for q.Len() > 0 {
		q.Dequeue()
	}
	q.NoteEmptyAt(markedAt - 0.049)
	inWindow := markedAt - 0.001
	p := mkPkt(9999, 100)
	p.ECT = true
	if !q.EnqueueAt(p, inWindow) {
		t.Fatal("packet dropped inside window")
	}
	if !p.CE {
		t.Fatal("packet inside persistent window not marked")
	}

	// Phase 3: after the window and a long idle period (average decayed
	// below minTh), sparse ECT traffic is not marked.
	q.Dequeue()
	q.NoteEmptyAt(markedAt)
	p2 := mkPkt(10000, 100)
	p2.ECT = true
	if !q.EnqueueAt(p2, markedAt+10.0) {
		t.Fatal("packet dropped after window")
	}
	if p2.CE {
		t.Fatalf("packet after persistent window still marked (avg=%v)", q.AvgQueue())
	}
}

func TestPersistentECNIgnoresNonECT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := NewRED(REDConfig{
		Limit: 1000, MinTh: 2, MaxTh: 6, MaxP: 1.0, ECN: true, PersistMark: 1.0,
	}, rng)
	for i := 0; i < 200; i++ {
		p := mkPkt(uint64(i), 100)
		p.ECT = true
		q.EnqueueAt(p, 0.001*float64(i))
	}
	// Non-ECT packet inside the window must go through normal RED logic
	// (and with avg > maxTh, be dropped), never be marked.
	p := mkPkt(9999, 100)
	accepted := q.EnqueueAt(p, 0.21)
	if p.CE {
		t.Fatal("non-ECT packet marked")
	}
	_ = accepted // drop-vs-accept depends on avg; marking is the invariant
}

func TestPersistentECNDropDecisionOpensWindow(t *testing.T) {
	// With ECN off for the packet (non-ECT) but PersistMark configured, a
	// forced drop must still open the window for subsequent ECT packets.
	rng := rand.New(rand.NewSource(3))
	q := NewRED(REDConfig{
		Limit: 4, MinTh: 1, MaxTh: 2, MaxP: 1.0, ECN: true, PersistMark: 1.0,
	}, rng)
	dropped := false
	for i := 0; i < 50 && !dropped; i++ {
		dropped = !q.EnqueueAt(mkPkt(uint64(i), 100), 0.001*float64(i))
	}
	if !dropped {
		t.Fatal("no drop produced")
	}
	p := mkPkt(999, 100)
	p.ECT = true
	for q.Len() > 0 {
		q.Dequeue()
	}
	q.EnqueueAt(p, 0.06)
	if !p.CE {
		t.Fatal("drop decision did not open the persistent mark window")
	}
}
