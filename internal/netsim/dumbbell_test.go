package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func testDumbbell(t *testing.T, n int) (*sim.Scheduler, *Dumbbell) {
	t.Helper()
	s := sim.NewScheduler()
	delays := make([]sim.Duration, n)
	for i := range delays {
		delays[i] = 10 * sim.Millisecond
	}
	d := NewDumbbell(s, DumbbellConfig{
		BottleneckRate:  100_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          50,
	})
	return s, d
}

func TestDumbbellRoundTrip(t *testing.T) {
	s, d := testDumbbell(t, 2)

	var atRecv, atSend []*Packet
	d.ReceiverNode(0).Bind(1, HandlerFunc(func(p *Packet) {
		atRecv = append(atRecv, p)
		// Echo an ACK back.
		ack := &Packet{ID: 1000 + p.ID, Flow: p.Flow, Kind: Ack, Size: 40,
			Src: p.Dst, Dst: p.Src, Ack: p.Seq + 1}
		d.ReceiverNode(0).Handle(ack)
	}))
	d.SenderNode(0).Bind(1, HandlerFunc(func(p *Packet) { atSend = append(atSend, p) }))

	pkt := &Packet{ID: 1, Flow: 1, Kind: Data, Size: 1000, Seq: 0,
		Src: SenderAddr(0), Dst: ReceiverAddr(0)}
	d.SenderNode(0).Handle(pkt)
	s.Run()

	if len(atRecv) != 1 || len(atSend) != 1 {
		t.Fatalf("recv=%d send=%d", len(atRecv), len(atSend))
	}
	if atSend[0].Ack != 1 {
		t.Fatalf("ack = %d", atSend[0].Ack)
	}
	// RTT should be ≈ 2·access + 2·bottleneck delay + tx times:
	// 2·10ms + 2·1ms = 22ms plus small serialization.
	rtt := s.Now()
	if rtt < sim.Time(22*sim.Millisecond) || rtt > sim.Time(23*sim.Millisecond) {
		t.Fatalf("round trip took %v", rtt)
	}
}

func TestDumbbellPairRTT(t *testing.T) {
	_, d := testDumbbell(t, 1)
	want := 2*10*sim.Millisecond + 2*sim.Millisecond
	if got := d.PairRTT(0); got != want {
		t.Fatalf("PairRTT = %v, want %v", got, want)
	}
}

func TestDumbbellIsolatesPairs(t *testing.T) {
	s, d := testDumbbell(t, 2)
	got0, got1 := 0, 0
	d.ReceiverNode(0).Bind(1, HandlerFunc(func(p *Packet) { got0++ }))
	d.ReceiverNode(1).Bind(2, HandlerFunc(func(p *Packet) { got1++ }))
	d.SenderNode(0).Handle(&Packet{ID: 1, Flow: 1, Kind: Data, Size: 100,
		Src: SenderAddr(0), Dst: ReceiverAddr(0)})
	d.SenderNode(1).Handle(&Packet{ID: 2, Flow: 2, Kind: Data, Size: 100,
		Src: SenderAddr(1), Dst: ReceiverAddr(1)})
	s.Run()
	if got0 != 1 || got1 != 1 {
		t.Fatalf("delivery: %d,%d", got0, got1)
	}
}

func TestDumbbellBottleneckDrops(t *testing.T) {
	s := sim.NewScheduler()
	d := NewDumbbell(s, DumbbellConfig{
		BottleneckRate:  1_000_000, // slow bottleneck
		BottleneckDelay: sim.Millisecond,
		AccessRate:      1_000_000_000,
		AccessDelays:    []sim.Duration{2 * sim.Millisecond},
		Buffer:          5,
	})
	drops := 0
	d.Forward.OnDrop = func(p *Packet, at sim.Time) { drops++ }
	d.ReceiverNode(0).Bind(1, HandlerFunc(func(p *Packet) {}))
	// Blast 100 packets at time 0: access link is 1000x faster, so the
	// bottleneck queue (5) must overflow.
	for i := 0; i < 100; i++ {
		d.SenderNode(0).Handle(&Packet{ID: uint64(i), Flow: 1, Kind: Data,
			Size: 1000, Src: SenderAddr(0), Dst: ReceiverAddr(0)})
	}
	s.Run()
	if drops == 0 {
		t.Fatal("no drops at overloaded bottleneck")
	}
	if int(d.Forward.Dropped) != drops {
		t.Fatalf("counter mismatch: %d vs %d", d.Forward.Dropped, drops)
	}
}

func TestDumbbellUnboundFlowPanics(t *testing.T) {
	s, d := testDumbbell(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unbound flow")
		}
	}()
	d.SenderNode(0).Handle(&Packet{ID: 1, Flow: 42, Kind: Data, Size: 100,
		Src: SenderAddr(0), Dst: ReceiverAddr(0)})
	s.Run()
}

func TestNodeDefaultHandlerAndDropObserver(t *testing.T) {
	s := sim.NewScheduler()
	n := NewNode(s, 5)
	caught := 0
	n.BindDefault(HandlerFunc(func(p *Packet) { caught++ }))
	n.Handle(&Packet{Flow: 9, Dst: 5})
	if caught != 1 {
		t.Fatal("default handler not used")
	}

	n2 := NewNode(s, 6)
	dropped := 0
	n2.OnLocalDrop(func(p *Packet, at sim.Time) { dropped++ })
	n2.Handle(&Packet{Flow: 9, Dst: 6})
	if dropped != 1 {
		t.Fatal("local drop observer not used")
	}
}

func TestBDP(t *testing.T) {
	// 100 Mbps · 100 ms = 10 Mbit = 1.25 MB; at 1250 B/packet → 1000 packets.
	if got := BDP(100_000_000, 100*sim.Millisecond, 1250); got != 1000 {
		t.Fatalf("BDP = %d", got)
	}
	if got := BDP(1000, sim.Millisecond, 1500); got != 1 {
		t.Fatalf("tiny BDP should clamp to 1, got %d", got)
	}
}

func TestRandomAccessDelaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lo, hi := 2*sim.Millisecond, 200*sim.Millisecond
	ds := RandomAccessDelays(rng, 500, lo, hi)
	if len(ds) != 500 {
		t.Fatalf("len = %d", len(ds))
	}
	for _, d := range ds {
		if d < lo || d > hi {
			t.Fatalf("delay %v out of [%v,%v]", d, lo, hi)
		}
	}
}

func TestDumbbellConfigValidation(t *testing.T) {
	s := sim.NewScheduler()
	for name, cfg := range map[string]DumbbellConfig{
		"no rate":   {AccessRate: 1, AccessDelays: []sim.Duration{1}, Buffer: 1},
		"no access": {BottleneckRate: 1, AccessDelays: []sim.Duration{1}, Buffer: 1},
		"no pairs":  {BottleneckRate: 1, AccessRate: 1, Buffer: 1},
		"no buffer": {BottleneckRate: 1, AccessRate: 1, AccessDelays: []sim.Duration{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			NewDumbbell(s, cfg)
		}()
	}
}
