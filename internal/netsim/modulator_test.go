package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testLink(dst Handler) *Link { return NewLink(10_000_000, sim.Millisecond, dst) }

func discard() Handler { return HandlerFunc(func(p *Packet) {}) }

// TestStepModulatorAppliesSchedule checks every step fires at its offset,
// zero fields keep the current value, and a non-looping schedule stops.
func TestStepModulatorApplies(t *testing.T) {
	s := sim.NewScheduler()
	l := testLink(discard())
	m := NewStepModulator(s, l, []RateStep{
		{At: sim.Second, Rate: 5_000_000},
		{At: 2 * sim.Second, Delay: 20 * sim.Millisecond}, // rate kept
		{At: 3 * sim.Second, Rate: 1_000_000, Delay: 5 * sim.Millisecond},
	}, 0)
	m.Start()

	s.RunUntil(sim.Time(1500 * sim.Millisecond))
	if l.Rate != 5_000_000 || l.Delay != sim.Millisecond {
		t.Fatalf("after step 0: rate=%d delay=%v", l.Rate, l.Delay)
	}
	s.RunUntil(sim.Time(2500 * sim.Millisecond))
	if l.Rate != 5_000_000 || l.Delay != 20*sim.Millisecond {
		t.Fatalf("after step 1: rate=%d delay=%v", l.Rate, l.Delay)
	}
	s.RunUntil(sim.Time(10 * sim.Second))
	if l.Rate != 1_000_000 || l.Delay != 5*sim.Millisecond {
		t.Fatalf("after step 2: rate=%d delay=%v", l.Rate, l.Delay)
	}
	if m.Retunes != 3 {
		t.Fatalf("retunes = %d, want 3", m.Retunes)
	}
	if s.Pending() != 0 {
		t.Fatalf("non-looping schedule left %d events pending", s.Pending())
	}
}

// TestStepModulatorLoops replays the schedule every loop period.
func TestStepModulatorLoops(t *testing.T) {
	s := sim.NewScheduler()
	l := testLink(discard())
	m := NewStepModulator(s, l, []RateStep{
		{At: 0, Rate: 8_000_000},
		{At: 600 * sim.Millisecond, Rate: 2_000_000},
	}, sim.Second)
	m.Start()

	for cycle := 0; cycle < 3; cycle++ {
		base := sim.Duration(cycle) * sim.Second
		s.RunUntil(sim.Time(base + 300*sim.Millisecond))
		if l.Rate != 8_000_000 {
			t.Fatalf("cycle %d up phase: rate=%d", cycle, l.Rate)
		}
		s.RunUntil(sim.Time(base + 900*sim.Millisecond))
		if l.Rate != 2_000_000 {
			t.Fatalf("cycle %d down phase: rate=%d", cycle, l.Rate)
		}
	}
	if m.Retunes != 6 {
		t.Fatalf("retunes = %d, want 6", m.Retunes)
	}
}

// TestOscillatorStaysInBounds samples a full period and checks the rate
// tracks the sinusoid: bounded, above the midpoint in the first
// half-period, below it in the second.
func TestOscillatorBounds(t *testing.T) {
	s := sim.NewScheduler()
	l := testLink(discard())
	const min, max = 4_000_000, 20_000_000
	m := NewOscillator(s, l, min, max, 4*sim.Second, 100*sim.Millisecond)
	m.Start()

	mid := int64((min + max) / 2)
	for i := 1; i <= 40; i++ {
		s.RunUntil(sim.Time(sim.Duration(i) * 100 * sim.Millisecond))
		if l.Rate < min || l.Rate > max {
			t.Fatalf("tick %d: rate %d outside [%d, %d]", i, l.Rate, min, max)
		}
		if i > 2 && i < 18 && l.Rate <= mid {
			t.Fatalf("tick %d: rate %d not in the sinusoid's upper half", i, l.Rate)
		}
		if i > 22 && i < 38 && l.Rate >= mid {
			t.Fatalf("tick %d: rate %d not in the sinusoid's lower half", i, l.Rate)
		}
	}
}

// TestRandomWalk: bounded, seeded-deterministic, and actually moving.
func TestRandomWalk(t *testing.T) {
	walk := func(seed int64) []int64 {
		s := sim.NewScheduler()
		l := testLink(discard())
		m := NewRandomWalk(s, l, 2_000_000, 50_000_000, 1.5,
			100*sim.Millisecond, rand.New(rand.NewSource(seed)))
		m.Start()
		var rates []int64
		for i := 1; i <= 100; i++ {
			s.RunUntil(sim.Time(sim.Duration(i) * 100 * sim.Millisecond))
			if l.Rate < 2_000_000 || l.Rate > 50_000_000 {
				t.Fatalf("tick %d: rate %d escaped the bounds", i, l.Rate)
			}
			rates = append(rates, l.Rate)
		}
		return rates
	}
	a, b := walk(7), walk(7)
	moved := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at tick %d: %d vs %d", i, a[i], b[i])
		}
		if i > 0 && a[i] != a[i-1] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("walk never changed the rate")
	}
	c := walk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical walk")
	}
}

// TestModulatedPortConservation is the rate-change safety property: for
// any arrival pattern over a port whose link is being aggressively
// retuned (including to near-zero rates), every offered packet is
// delivered exactly once or dropped exactly once — the modulator neither
// loses nor duplicates packets, and the queue drains completely.
func TestModulatedPortConservation(t *testing.T) {
	f := func(seed int64, nPkts uint8, limit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.NewScheduler()
		seen := map[uint64]int{}
		delivered := 0
		dst := HandlerFunc(func(p *Packet) {
			delivered++
			seen[p.ID]++
		})
		lim := int(limit%20) + 1
		link := NewLink(1_000_000, sim.Millisecond, dst)
		port := NewPort(s, NewDropTail(lim), link)
		dropped := 0
		port.OnDrop = func(p *Packet, at sim.Time) {
			dropped++
			seen[p.ID]++
		}

		// Retune every 3 ms across three orders of magnitude, with delay
		// changes mixed in (delay decreases may reorder deliveries; they
		// must never lose or duplicate them).
		m := NewStepModulator(s, link, []RateStep{
			{At: 0, Rate: 1_000_000},
			{At: 3 * sim.Millisecond, Rate: 20_000, Delay: 10 * sim.Millisecond},
			{At: 6 * sim.Millisecond, Rate: 5_000_000, Delay: 100 * sim.Microsecond},
			{At: 9 * sim.Millisecond, Rate: 100_000},
		}, 12*sim.Millisecond)
		m.Start()

		offered := int(nPkts) + 1
		for i := 0; i < offered; i++ {
			i := i
			s.At(sim.Time(sim.Duration(rng.Intn(50))*sim.Millisecond), func() {
				port.Handle(&Packet{ID: uint64(i), Size: rng.Intn(1400) + 100, Kind: Data})
			})
		}
		// The looping modulator keeps one event pending forever; run until
		// well past the last possible delivery instead of draining (the
		// cycle-average rate is ~1.5 Mbps, so 5 s clears any backlog).
		s.RunUntil(sim.Time(5 * sim.Second))
		if delivered+dropped != offered {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false // duplicated or double-counted
			}
		}
		if int(port.Forwarded()) != delivered || int(port.Dropped) != dropped {
			return false
		}
		return port.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkLossConservation: with a wire-loss process installed, offered =
// delivered + queue drops + wire drops, both drop kinds fire OnDrop, and
// dropped packets recycle into the pool without double-frees.
func TestLinkLossConservation(t *testing.T) {
	f := func(seed int64, nPkts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lossRng := rand.New(rand.NewSource(seed + 1))
		s := sim.NewScheduler()
		pool := NewPacketPool()
		delivered := 0
		dst := HandlerFunc(func(p *Packet) {
			delivered++
			pool.Put(p)
		})
		port := NewPort(s, NewDropTail(8), NewLink(1_000_000, sim.Millisecond, dst))
		port.Pool = pool
		port.LinkLoss = func() bool { return lossRng.Float64() < 0.3 }
		observed := 0
		var lastAt sim.Time
		port.OnDrop = func(p *Packet, at sim.Time) {
			observed++
			if at < lastAt {
				t.Fatal("drop observer saw time run backwards")
			}
			lastAt = at
		}

		offered := int(nPkts) + 20
		for i := 0; i < offered; i++ {
			s.At(sim.Time(sim.Duration(rng.Intn(40))*sim.Millisecond), func() {
				p := pool.Get()
				p.Size = rng.Intn(1400) + 100
				p.Kind = Data
				port.Handle(p)
			})
		}
		s.Run()
		if delivered+int(port.Dropped)+int(port.LinkDropped) != offered {
			return false
		}
		if observed != int(port.Dropped)+int(port.LinkDropped) {
			return false
		}
		// Forwarded counts serialization completions, wire drops included.
		if int(port.Forwarded()) != delivered+int(port.LinkDropped) {
			return false
		}
		return port.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkLossAlways: a wire that loses everything delivers nothing but
// still conserves and recycles.
func TestLinkLossAlways(t *testing.T) {
	s := sim.NewScheduler()
	pool := NewPacketPool()
	port := NewPort(s, NewDropTail(100), NewLink(1_000_000, 0, discard()))
	port.Pool = pool
	port.LinkLoss = func() bool { return true }
	const offered = 50
	for i := 0; i < offered; i++ {
		p := pool.Get()
		p.Size = 1000
		port.Handle(p)
	}
	// Get slab-allocates, so the pool may hold spare packets already; every
	// offered packet must come back on top of that baseline.
	base := len(pool.free)
	s.Run()
	if port.LinkDropped != offered || port.Forwarded() != offered {
		t.Fatalf("LinkDropped=%d Forwarded=%d, want %d/%d",
			port.LinkDropped, port.Forwarded(), offered, offered)
	}
	if got := len(pool.free); got != base+offered {
		t.Fatalf("pool holds %d packets, want %d recycled", got, base+offered)
	}
}

// TestModulatorValidation: the constructors reject malformed programs.
func TestModulatorValidation(t *testing.T) {
	s := sim.NewScheduler()
	l := testLink(discard())
	rng := rand.New(rand.NewSource(1))
	cases := map[string]func(){
		"no steps":       func() { NewStepModulator(s, l, nil, 0) },
		"unsorted steps": func() { NewStepModulator(s, l, []RateStep{{At: sim.Second}, {At: sim.Second}}, 0) },
		"negative step":  func() { NewStepModulator(s, l, []RateStep{{At: -1}}, 0) },
		"short loop": func() {
			NewStepModulator(s, l, []RateStep{{At: 2 * sim.Second, Rate: 1}}, sim.Second)
		},
		"osc bounds":    func() { NewOscillator(s, l, 10, 5, sim.Second, sim.Second) },
		"osc period":    func() { NewOscillator(s, l, 1, 2, 0, sim.Second) },
		"walk factor":   func() { NewRandomWalk(s, l, 1, 2, 1.0, sim.Second, rng) },
		"walk nil rng":  func() { NewRandomWalk(s, l, 1, 2, 1.5, sim.Second, nil) },
		"walk interval": func() { NewRandomWalk(s, l, 1, 2, 1.5, 0, rng) },
		"nil link":      func() { NewOscillator(s, nil, 1, 2, sim.Second, sim.Second) },
		"double start": func() {
			m := NewOscillator(sim.NewScheduler(), testLink(discard()), 1, 2, sim.Second, sim.Second)
			m.Start()
			m.Start()
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestModulatorStopRestart: Stop cancels the pending retune and a stopped
// modulator can be started again.
func TestModulatorStopRestart(t *testing.T) {
	s := sim.NewScheduler()
	l := testLink(discard())
	m := NewOscillator(s, l, 1_000_000, 9_000_000, sim.Second, 100*sim.Millisecond)
	m.Start()
	s.RunUntil(sim.Time(250 * sim.Millisecond))
	m.Stop()
	n := m.Retunes
	s.RunUntil(sim.Time(2 * sim.Second))
	if m.Retunes != n {
		t.Fatalf("stopped modulator kept retuning (%d → %d)", n, m.Retunes)
	}
	m.Start()
	s.RunUntil(sim.Time(3 * sim.Second))
	if m.Retunes == n {
		t.Fatal("restarted modulator never ticked")
	}
}
