package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// collector records delivered packets with their arrival times.
type collector struct {
	sched *sim.Scheduler
	pkts  []*Packet
	times []sim.Time
}

func (c *collector) Handle(p *Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.sched.Now())
}

func TestLinkTxTime(t *testing.T) {
	l := NewLink(100_000_000, 0, nil) // 100 Mbps
	// 1250 bytes = 10,000 bits -> 100 µs at 100 Mbps.
	if got := l.TxTime(1250); got != 100*sim.Microsecond {
		t.Fatalf("TxTime = %v", got)
	}
}

func TestLinkZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero rate")
		}
	}()
	NewLink(0, 0, nil)
}

func TestPortSerializationAndDelay(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	// 1 Mbps, 10 ms propagation: 1000-byte packet = 8 ms serialization.
	port := NewPort(s, NewDropTail(10), NewLink(1_000_000, 10*sim.Millisecond, c))
	port.Handle(mkPkt(1, 1000))
	s.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	want := sim.Time(18 * sim.Millisecond) // 8 ms tx + 10 ms prop
	if c.times[0] != want {
		t.Fatalf("arrival at %v, want %v", c.times[0], want)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	port := NewPort(s, NewDropTail(10), NewLink(1_000_000, 0, c))
	// Three packets injected at t=0 must leave 8 ms apart.
	for i := uint64(0); i < 3; i++ {
		port.Handle(mkPkt(i, 1000))
	}
	s.Run()
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	for i, want := range []sim.Time{
		sim.Time(8 * sim.Millisecond),
		sim.Time(16 * sim.Millisecond),
		sim.Time(24 * sim.Millisecond),
	} {
		if c.times[i] != want {
			t.Fatalf("packet %d at %v, want %v", i, c.times[i], want)
		}
	}
}

func TestPortDropsWhenFull(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	port := NewPort(s, NewDropTail(2), NewLink(1_000_000, 0, c))
	var drops []*Packet
	port.OnDrop = func(p *Packet, at sim.Time) { drops = append(drops, p) }
	// One packet goes straight to the transmitter; two fill the queue; the
	// fourth must drop.
	for i := uint64(0); i < 4; i++ {
		port.Handle(mkPkt(i, 1000))
	}
	if len(drops) != 1 || drops[0].ID != 3 {
		t.Fatalf("drops = %v", drops)
	}
	s.Run()
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	if port.Dropped != 1 || port.Forwarded() != 3 {
		t.Fatalf("counters: dropped=%d forwarded=%d", port.Dropped, port.Forwarded())
	}
}

func TestPortPipelinesPropagation(t *testing.T) {
	// Propagation must not serialize: with 8 ms tx and 100 ms delay, two
	// packets arrive 8 ms apart, not 108 ms apart.
	s := sim.NewScheduler()
	c := &collector{sched: s}
	port := NewPort(s, NewDropTail(10), NewLink(1_000_000, 100*sim.Millisecond, c))
	port.Handle(mkPkt(0, 1000))
	port.Handle(mkPkt(1, 1000))
	s.Run()
	gap := c.times[1].Sub(c.times[0])
	if gap != 8*sim.Millisecond {
		t.Fatalf("inter-arrival %v, want 8ms", gap)
	}
}

func TestPortProcNoiseDelaysPackets(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	port := NewPort(s, NewDropTail(10), NewLink(1_000_000, 0, c))
	port.ProcNoise = func() sim.Duration { return 5 * sim.Millisecond }
	port.Handle(mkPkt(0, 1000))
	s.Run()
	if c.times[0] != sim.Time(13*sim.Millisecond) {
		t.Fatalf("arrival %v, want 13ms (8 tx + 5 noise)", c.times[0])
	}
}

func TestUniformNoiseRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := UniformNoise(rng, sim.Millisecond)
	for i := 0; i < 1000; i++ {
		d := f()
		if d < 0 || d >= sim.Millisecond {
			t.Fatalf("noise %v out of range", d)
		}
	}
}

func TestPortTxBytesCounter(t *testing.T) {
	s := sim.NewScheduler()
	c := &collector{sched: s}
	port := NewPort(s, NewDropTail(10), NewLink(1_000_000, 0, c))
	port.Handle(mkPkt(0, 400))
	port.Handle(mkPkt(1, 600))
	s.Run()
	if port.TxBytes() != 1000 {
		t.Fatalf("TxBytes = %d", port.TxBytes())
	}
}

func TestHandlerFunc(t *testing.T) {
	var got *Packet
	h := HandlerFunc(func(p *Packet) { got = p })
	p := mkPkt(7, 1)
	h.Handle(p)
	if got != p {
		t.Fatal("HandlerFunc did not forward")
	}
}
