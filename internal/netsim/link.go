package netsim

import (
	"math/rand"

	"repro/internal/sim"
)

// DropFunc observes a packet drop at a port. The experiments install one at
// the bottleneck to record the loss trace the paper analyzes.
type DropFunc func(p *Packet, at sim.Time)

// NaivePortPath, when set before a world is built, pins every Port created
// from then on to the reference scheduler path: one serialization-complete
// event and one delivery event per packet, nothing coalesced. It exists for
// the differential tests that hold the batched hot path (serialization
// chains, delivery rings) to bit-identical behavior against the naive
// model, and for A/B benchmarks of the batching win. The flag is read once
// in NewPort; flipping it never affects existing ports.
var NaivePortPath bool

// Link is a unidirectional wire: it serializes packets at Rate and delivers
// them to Dst after Delay. Serialization occupies the link, so a Link is
// driven by a Port which starts the next transmission when the previous one
// finishes.
//
// Rate and Delay may be read freely, but a running world must change them
// through Retune so the owning port can rewind its coalesced serialization
// chain; writing the fields directly is only safe while the port is idle
// (between runs — topo's Network.Reset does exactly that).
type Link struct {
	Rate  int64        // bits per second
	Delay sim.Duration // propagation delay
	Dst   Handler

	// notify is the owning port's retune hook, set by NewPort. It runs
	// after Retune applies new parameters, with the old ones as arguments.
	notify func(oldRate int64, oldDelay sim.Duration)
}

// NewLink builds a link. Rate must be positive.
func NewLink(rate int64, delay sim.Duration, dst Handler) *Link {
	if rate <= 0 {
		panic("netsim: link rate must be positive")
	}
	return &Link{Rate: rate, Delay: delay, Dst: dst}
}

// TxTime reports how long a packet of size bytes occupies the link.
func (l *Link) TxTime(size int) sim.Duration {
	return sim.Duration(int64(size) * 8 * int64(sim.Second) / l.Rate)
}

// Retune changes the link's rate and/or propagation delay mid-run, with
// RateStep semantics: a zero rate keeps the current rate and a zero delay
// keeps the current delay. Retune is the only safe way to change a live
// link's parameters — it tells the owning port to rewind any batched
// serialization chain, so packets that start serializing after the retune
// use the new rate and delay while the packet on the wire and deliveries
// already in flight keep the timings they were committed with (the
// contract LinkModulator documents).
func (l *Link) Retune(rate int64, delay sim.Duration) {
	oldR, oldD := l.Rate, l.Delay
	if rate > 0 {
		l.Rate = rate
	}
	if delay > 0 {
		l.Delay = delay
	}
	if l.notify != nil && (l.Rate != oldR || l.Delay != oldD) {
		l.notify(oldR, oldD)
	}
}

// ringEntry is one committed transmission in a port's delivery ring: the
// packet, when it starts and finishes serializing, and when it lands at the
// destination. The whole schedule is computed eagerly at commit time. eager
// records that serialization began synchronously at commit (the link was
// idle), which the reference path would have done inline in Handle with no
// event — entries that instead start when their predecessor finishes are
// dequeued, in the reference, by a serialization-complete event armed at
// the predecessor's start, and settle uses that distinction to place
// same-nanosecond observations on the correct side of the dequeue.
type ringEntry struct {
	pkt    *Packet
	start  sim.Time // serialization start
	done   sim.Time // serialization complete
	due    sim.Time // delivery at Dst
	pstart sim.Time // arming instant of this entry's (virtual) dequeue: the
	// previous packet's serialization start for a chained entry, or the
	// arming instant of the arrival that started serialization inline for
	// an eager one — the grandparent key of the entry's delivery genealogy
	eager bool // started inline at commit, not via a (virtual) event
}

// Port is an output port: a queue feeding a link. Arriving packets enter
// the queue (or are dropped, invoking OnDrop); the port transmits the head
// packet whenever the link is idle. This is the standard ns-2 queue+link
// model, and — together with the optional LinkLoss wire-drop hook — where
// every loss in the system happens.
//
// The port exploits two per-link monotonicity invariants to collapse
// scheduler traffic (see ARCHITECTURE.md, "Link service batching"):
//
//   - Delivery ring: all undelivered packets committed with the same
//     propagation delay have FIFO delivery order, so the port keeps them in
//     one ring buffer with a single outstanding delivery timer that re-arms
//     to the next head on fire, instead of one scheduler event each.
//   - Serialization chains: on a port whose per-packet fate needs no
//     observation at serialization-complete time (DropTail queue, no
//     LinkLoss, no ProcNoise) the entire service schedule of a busy period
//     is computed eagerly at enqueue time — the "fast" mode, one scheduler
//     event per delivered packet. Ports that do need the exact
//     serialization-complete instant (RED's idle-time bookkeeping, the
//     LinkLoss consult, ProcNoise draws) keep a per-packet
//     serialization-complete event but re-arm it in place (Scheduler.Rearm)
//     so a busy period costs zero event alloc/release round trips.
//
// The per-packet path is allocation-free either way: callbacks are created
// once in NewPort, ring capacity is retained across runs, and dropped
// packets recycle into the world's PacketPool when one is attached.
type Port struct {
	Sched *sim.Scheduler
	Queue Queue
	Link  *Link

	// OnDrop, if set, observes every packet the queue rejects. The packet
	// is recycled after the callback returns (when Pool is set), so
	// observers must copy what they need rather than retain the pointer.
	OnDrop DropFunc

	// ProcNoise, if set, returns a per-packet processing delay added before
	// serialization. The Dummynet emulation layer uses it to model the
	// non-ideal packet processing time of a software router.
	ProcNoise func() sim.Duration

	// LinkLoss, if set, is the link-layer loss process: it is consulted
	// exactly once per packet, when the packet finishes serializing, and a
	// true return drops the packet on the wire instead of delivering it.
	// Wire drops fire OnDrop (so loss observers see one merged,
	// time-ordered stream of queue and link losses), count in LinkDropped
	// (not Dropped), and recycle into Pool like queue drops. The process
	// must be stateful-deterministic — typically a seeded
	// lossmodel.GilbertElliott's Lost method, wired by topo.Build from a
	// Spec's LossSpec.
	LinkLoss func() bool

	// Pool, if set, receives dropped packets for reuse. The port only
	// frees packets it terminates (drops); delivered packets are owned by
	// whoever consumes them downstream.
	Pool *PacketPool

	busy  bool
	txPkt *Packet // packet currently serializing (exact and naive modes)

	red   *RED      // cached type assertion of Queue
	dt    *DropTail // cached type assertion of Queue
	naive bool      // reference path, snapshot of NaivePortPath at NewPort
	fast  bool      // eager-chain mode; re-evaluated whenever the port idles

	txDone  func()    // serialization-complete callback, created once
	deliver func(any) // per-event delivery callback (naive path, ring evictions)
	delFire func()    // ring delivery-timer callback, created once

	// Delivery ring: committed transmissions in commit order, which the
	// single-delay invariant keeps identical to delivery order (retunes
	// that change the delay evict every already-serialized entry to an
	// individual event, see onRetune). counted is the length of the ring
	// prefix whose serialization start has been folded into the fwd /
	// txBytes counters; lastDone is when the link falls idle.
	ring       []ringEntry
	rhead      int
	rlen       int
	counted    int
	lastDone   sim.Time
	prevStart  sim.Time // start of the last entry removed from the ring front
	prevPstart sim.Time // pstart of that same entry
	delTimer   sim.Timer

	// Counters for experiment bookkeeping. Dropped counts queue rejections
	// and LinkDropped wire losses; fwd and txBytes back the Forwarded and
	// TxBytes accessors, which settle the fast path's eagerly committed
	// schedule before reporting so offered = delivered + Dropped +
	// LinkDropped holds at any observation instant.
	Dropped     uint64
	LinkDropped uint64
	fwd         uint64
	txBytes     uint64
}

// NewPort wires a queue to a link on the given scheduler.
func NewPort(sched *sim.Scheduler, q Queue, l *Link) *Port {
	if sched == nil || q == nil || l == nil {
		panic("netsim: NewPort requires scheduler, queue and link")
	}
	p := &Port{Sched: sched, Queue: q, Link: l, naive: NaivePortPath}
	p.red, _ = q.(*RED)
	p.dt, _ = q.(*DropTail)
	p.txDone = p.onTxDone
	p.deliver = func(a any) { p.Link.Dst.Handle(a.(*Packet)) }
	p.delFire = p.onDeliverRing
	l.notify = p.onRetune
	return p
}

// Forwarded reports how many packets have started serializing, including
// those LinkLoss then drops on the wire.
func (p *Port) Forwarded() uint64 {
	if p.fast {
		p.settle(p.Sched.Now())
	}
	return p.fwd
}

// TxBytes reports the bytes of every packet counted in Forwarded.
func (p *Port) TxBytes() uint64 {
	if p.fast {
		p.settle(p.Sched.Now())
	}
	return p.txBytes
}

// QueueLen reports the instantaneous queue length in packets.
func (p *Port) QueueLen() int {
	if p.fast {
		p.settle(p.Sched.Now())
		return p.rlen - p.counted
	}
	return p.Queue.Len()
}

// Handle implements Handler: offer the packet to the queue and kick the
// transmitter.
func (p *Port) Handle(pkt *Packet) {
	if !p.busy && p.rlen == 0 && !p.naive {
		// The port is fully idle — no serialization, no pending deliveries
		// — which is the only safe moment to flip between the eager-chain
		// and exact modes. Hooks are installed at world-build time in
		// practice, so this latches once per run.
		p.fast = p.Link.Delay > 0 && p.dt != nil && p.LinkLoss == nil && p.ProcNoise == nil
	}
	if p.fast {
		p.fastHandle(pkt)
		return
	}
	ok := false
	if p.red != nil {
		ok = p.red.EnqueueAt(pkt, p.Sched.Now().Seconds())
	} else {
		ok = p.Queue.Enqueue(pkt)
	}
	if !ok {
		p.Dropped++
		if p.OnDrop != nil {
			p.OnDrop(pkt, p.Sched.Now())
		}
		p.Pool.Put(pkt)
		return
	}
	if !p.busy {
		p.transmitNext(false)
	}
}

// fastHandle commits a packet's entire service schedule at arrival time.
// Correctness rests on the fast mode preconditions: with a DropTail queue
// the accept/drop decision depends only on the instantaneous queue length,
// which equals the number of committed-but-unstarted ring entries (every
// packet the true model would hold in the queue is exactly one whose
// serialization has not begun); with no LinkLoss and no ProcNoise nothing
// observes the serialization-complete instant, so no event needs to fire
// there and the whole busy period collapses to delivery fires.
func (p *Port) fastHandle(pkt *Packet) {
	now := p.Sched.Now()
	p.settle(now)
	if p.rlen-p.counted >= p.dt.Limit {
		p.Dropped++
		if p.OnDrop != nil {
			p.OnDrop(pkt, now)
		}
		p.Pool.Put(pkt)
		return
	}
	// Is the link idle from this arrival's point of view? Strictly idle
	// (lastDone < now, or nothing ever transmitted) is unambiguous. When the
	// last committed serialization ends exactly now, the reference path
	// settles the race by event order: its serialization-complete event —
	// armed when that packet started — fires before this arrival only if it
	// was armed before this arrival's event was, or at the same instant by a
	// callback that was itself armed earlier (see Scheduler.FiringLineage).
	eager := p.lastDone < now || p.lastDone == 0
	if !eager && p.lastDone == now {
		ls, lp := p.prevStart, p.prevPstart
		if p.rlen > 0 {
			e := p.entryAt(p.rlen - 1)
			ls, lp = e.start, e.pstart
		}
		f, f2 := p.Sched.FiringLineage()
		eager = ls < f || (ls == f && lp < f2)
	}
	start, pstart := p.lastDone, p.prevStart
	if p.rlen > 0 {
		pstart = p.entryAt(p.rlen - 1).start
	}
	if eager {
		start = now
		pstart = p.Sched.FiringAsOf()
	}
	done := start.Add(p.Link.TxTime(pkt.Size))
	due := done.Add(p.Link.Delay)
	p.lastDone = done
	p.pushBack(ringEntry{pkt: pkt, start: start, done: done, due: due, pstart: pstart, eager: eager})
	if eager {
		// Serialization starts inline, so the counters settle in place (the
		// entry is the ring tail and everything before it already started,
		// keeping the counted prefix contiguous).
		p.fwd++
		p.txBytes += uint64(pkt.Size)
		p.counted++
	}
	if p.rlen == 1 {
		p.delTimer = p.Sched.AtAsOf(due, done, start, pstart, p.delFire)
	}
}

// settle folds every ring entry whose serialization has started by now into
// the forwarded counters. Entries are committed in start order, so the
// counted prefix advances monotonically and each entry is counted exactly
// once — amortized O(1) per packet.
//
// An entry starting exactly now needs the reference path's event order to
// resolve: its dequeue happens inside the previous packet's
// serialization-complete event, armed at that packet's start, and that
// event has fired by the current observation point only if its (arming
// instant, parent arming instant) lineage precedes the currently firing
// event's. Entries that started inline at commit (eager) were counted then
// and never reach this test.
func (p *Port) settle(now sim.Time) {
	for p.counted < p.rlen {
		e := p.entryAt(p.counted)
		if e.start > now {
			break
		}
		if e.start == now && !e.eager {
			ps, ps2 := p.prevStart, p.prevPstart
			if p.counted > 0 {
				q := p.entryAt(p.counted - 1)
				ps, ps2 = q.start, q.pstart
			}
			f, f2 := p.Sched.FiringLineage()
			if ps > f || (ps == f && ps2 >= f2) {
				break
			}
		}
		p.fwd++
		p.txBytes += uint64(e.pkt.Size)
		p.counted++
	}
}

// onDeliverRing is the delivery timer: deliver the ring head, then re-arm
// the one timer to the next head. The firing event is reused in place
// (Scheduler.Rearm), so a port's whole delivery stream rides one event —
// armed, each time, with the genealogy of the per-packet delivery event the
// reference path would have created for the entry it aims at: armed at the
// entry's serialization-complete instant, by a serialization-complete
// callback armed at the entry's start, itself armed at the entry's pstart.
// Simultaneous events fire in arming-genealogy order, so the spoofed keys
// slot each ring delivery into same-nanosecond ties precisely where the
// reference would have — including ties against another port's delivery
// committed for the very same instant, which the reference breaks by the
// two serialization chains' histories.
func (p *Port) onDeliverRing() {
	p.settle(p.Sched.Now())
	e := p.popFront()
	p.delTimer = sim.Timer{}
	p.Link.Dst.Handle(e.pkt)
	if p.rlen > 0 && !p.delTimer.Pending() {
		next := p.entryAt(0)
		p.delTimer = p.Sched.RearmAsOf(next.due, next.done, next.start, next.pstart)
	}
}

// transmitNext dequeues and starts serializing the next packet. chained is
// true when called from inside the serialization-complete callback, where
// the firing event can be re-armed in place instead of released and
// reallocated.
func (p *Port) transmitNext(chained bool) {
	pkt := p.Queue.Dequeue()
	if pkt == nil {
		p.busy = false
		return
	}
	if p.Queue.Len() == 0 && p.red != nil {
		p.red.NoteEmptyAt(p.Sched.Now().Seconds())
	}
	p.busy = true
	tx := p.Link.TxTime(pkt.Size)
	if p.ProcNoise != nil {
		tx += p.ProcNoise()
	}
	p.fwd++
	p.txBytes += uint64(pkt.Size)
	// The packet leaves the port after serialization; it arrives at the
	// destination a propagation delay later. The port is free to start the
	// next packet as soon as serialization completes.
	p.txPkt = pkt
	if chained && !p.naive {
		p.Sched.Rearm(p.Sched.Now().Add(tx))
	} else {
		p.Sched.After(tx, p.txDone)
	}
}

func (p *Port) onTxDone() {
	pkt := p.txPkt
	p.txPkt = nil
	if p.LinkLoss != nil && p.LinkLoss() {
		// Lost on the wire: the packet occupied the link for its full
		// serialization time but never arrives.
		p.LinkDropped++
		if p.OnDrop != nil {
			p.OnDrop(pkt, p.Sched.Now())
		}
		p.Pool.Put(pkt)
	} else {
		// Exact mode arms one delivery event per packet, exactly like the
		// naive reference: the event's position in the same-nanosecond tie
		// order is its arming order, and behavioral fidelity to the goldens
		// requires arming each delivery here, at this packet's
		// serialization-complete instant. The delivery ring is a fast-mode
		// structure only (see fastHandle), where no per-packet event exists.
		p.Sched.AfterArg(p.Link.Delay, p.deliver, pkt)
	}
	p.transmitNext(true)
}

// onRetune is the Link.Retune hook: rewind the batched state so packets
// that start serializing after the retune use the new rate and delay, while
// the packet on the wire and already-serialized deliveries keep the timings
// they were committed with.
func (p *Port) onRetune(oldRate int64, oldDelay sim.Duration) {
	if !p.fast || p.rlen == 0 {
		// Exact mode needs no hook: the serializing packet's completion
		// event was scheduled with the old rate (in-flight transmissions
		// keep their tx time), the next dequeue reads the new rate
		// naturally, and each delivery is already its own event carrying
		// the delay it was committed with.
		return
	}
	now := p.Sched.Now()
	rateChanged := p.Link.Rate != oldRate
	delayChanged := p.Link.Delay != oldDelay

	p.settle(now)
	// Entries still serializing or waiting form the chain suffix —
	// everything before it has left the link and keeps its committed
	// delivery time. An entry whose serialization completes exactly at the
	// retune instant has left the link only if its (virtual)
	// serialization-complete event — armed at its start by a callback armed
	// at its pstart — precedes the event driving this retune, the same
	// fired-by-now lineage test settle applies.
	asOf, asOf2 := p.Sched.FiringLineage()
	cs := p.rlen
	for cs > 0 {
		e := p.entryAt(cs - 1)
		if e.done > now || (e.done == now && (e.start > asOf || (e.start == asOf && e.pstart >= asOf2))) {
			cs--
			continue
		}
		break
	}
	evicted := false
	if delayChanged && cs > 0 {
		// Already-serialized deliveries keep the old propagation delay, so
		// they no longer share the ring's delay; evict them to individual
		// events, each armed with the genealogy of the per-packet delivery
		// event the reference would have created.
		for i := 0; i < cs; i++ {
			e := p.popFront()
			p.Sched.AtArgAsOf(e.due, e.done, e.start, e.pstart, p.deliver, e.pkt)
		}
		cs = 0
		evicted = true
	}
	if (rateChanged || delayChanged) && p.rlen > cs {
		// Rewind the chain: the packet on the wire keeps its transmission
		// time (its due moves only if the delay changed); the waiting ones
		// cascade behind it at the new rate, each entry's dequeue re-armed,
		// genealogy included, off its predecessor's new start.
		prev, prevStart := sim.Time(0), sim.Time(0)
		for i := cs; i < p.rlen; i++ {
			e := p.entryAt(i)
			if i > cs {
				e.pstart = prevStart
				e.start = prev
				e.done = e.start.Add(p.Link.TxTime(e.pkt.Size))
			}
			e.due = e.done.Add(p.Link.Delay)
			prevStart = e.start
			prev = e.done
		}
		p.lastDone = prev
	}
	// Re-aim the single delivery timer at the (possibly new) head, armed
	// with the head's delivery genealogy. After an eviction the timer must
	// be re-armed even when the new head's due time matches the old one,
	// because the genealogy it carries still belongs to the evicted head.
	if p.rlen == 0 {
		p.Sched.Cancel(p.delTimer)
		p.delTimer = sim.Timer{}
	} else if e0 := p.entryAt(0); evicted || p.delTimer.Time() != e0.due {
		if tm, ok := p.Sched.RescheduleAsOf(p.delTimer, e0.due, e0.done, e0.start, e0.pstart); ok {
			p.delTimer = tm
		} else {
			p.delTimer = p.Sched.AtAsOf(e0.due, e0.done, e0.start, e0.pstart, p.delFire)
		}
	}
}

// entryAt returns the i-th ring entry counting from the head.
func (p *Port) entryAt(i int) *ringEntry {
	return &p.ring[(p.rhead+i)&(len(p.ring)-1)]
}

func (p *Port) pushBack(e ringEntry) {
	if p.rlen == len(p.ring) {
		p.growRing()
	}
	p.ring[(p.rhead+p.rlen)&(len(p.ring)-1)] = e
	p.rlen++
}

func (p *Port) popFront() ringEntry {
	e := p.ring[p.rhead]
	p.ring[p.rhead] = ringEntry{}
	p.rhead = (p.rhead + 1) & (len(p.ring) - 1)
	p.rlen--
	if p.counted > 0 {
		p.counted--
	}
	p.prevStart = e.start
	p.prevPstart = e.pstart
	return e
}

// growRing doubles the ring's capacity (power of two, for mask indexing),
// compacting the live entries to the front. Capacity is retained across
// runs, so steady-state traffic never grows it again.
func (p *Port) growRing() {
	n := len(p.ring) * 2
	if n == 0 {
		n = 16
	}
	nr := make([]ringEntry, n)
	for i := 0; i < p.rlen; i++ {
		nr[i] = p.ring[(p.rhead+i)&(len(p.ring)-1)]
	}
	p.ring = nr
	p.rhead = 0
}

// Reset returns the port to its just-built state for world reuse: leftover
// queued, in-flight and ring-committed packets recycle into the pool, the
// counters zero, and the per-run hooks (OnDrop, ProcNoise, LinkLoss)
// detach. The queue instance, link, ring capacity and internal callbacks
// persist — rewinding the discipline's own state (DropTail.Reset,
// RED.Reset) and the link's rate/delay is the topology layer's job.
// Callers must reset the owning scheduler first (or alongside), since
// pending serialization and delivery events are cancelled wholesale there;
// deliveries that were evicted to individual events (see onRetune) carry
// their packets as event arguments and come back through the scheduler's
// Reset drain instead.
func (p *Port) Reset() {
	for {
		pkt := p.Queue.Dequeue()
		if pkt == nil {
			break
		}
		p.Pool.Put(pkt)
	}
	p.Pool.Put(p.txPkt)
	p.txPkt = nil
	for p.rlen > 0 {
		p.Pool.Put(p.popFront().pkt)
	}
	p.rhead = 0
	p.counted = 0
	p.lastDone = 0
	p.prevStart = 0
	p.prevPstart = 0
	p.Sched.Cancel(p.delTimer) // no-op when the scheduler was reset first
	p.delTimer = sim.Timer{}
	p.busy = false
	p.fast = false
	p.OnDrop = nil
	p.ProcNoise = nil
	p.LinkLoss = nil
	p.fwd = 0
	p.Dropped = 0
	p.LinkDropped = 0
	p.txBytes = 0
}

// UniformNoise returns a ProcNoise function drawing uniformly from [0,max).
// A non-positive max yields a zero-noise function that never touches the
// rng, so a disabled noise source does not perturb anyone else's stream.
func UniformNoise(rng *rand.Rand, max sim.Duration) func() sim.Duration {
	if max <= 0 {
		return func() sim.Duration { return 0 }
	}
	return func() sim.Duration { return sim.Duration(rng.Int63n(int64(max))) }
}
