package netsim

import (
	"math/rand"

	"repro/internal/sim"
)

// DropFunc observes a packet drop at a port. The experiments install one at
// the bottleneck to record the loss trace the paper analyzes.
type DropFunc func(p *Packet, at sim.Time)

// Link is a unidirectional wire: it serializes packets at Rate and delivers
// them to Dst after Delay. Serialization occupies the link, so a Link is
// driven by a Port which starts the next transmission when the previous one
// finishes.
type Link struct {
	Rate  int64        // bits per second
	Delay sim.Duration // propagation delay
	Dst   Handler
}

// NewLink builds a link. Rate must be positive.
func NewLink(rate int64, delay sim.Duration, dst Handler) *Link {
	if rate <= 0 {
		panic("netsim: link rate must be positive")
	}
	return &Link{Rate: rate, Delay: delay, Dst: dst}
}

// TxTime reports how long a packet of size bytes occupies the link.
func (l *Link) TxTime(size int) sim.Duration {
	return sim.Duration(int64(size) * 8 * int64(sim.Second) / l.Rate)
}

// Port is an output port: a queue feeding a link. Arriving packets enter
// the queue (or are dropped, invoking OnDrop); the port transmits the head
// packet whenever the link is idle. This is the standard ns-2 queue+link
// model, and — together with the optional LinkLoss wire-drop hook — where
// every loss in the system happens.
//
// The per-packet path is allocation-free: the serialization-complete and
// delivery callbacks are created once in NewPort (the in-flight packet
// rides through the scheduler as an event argument), and dropped packets
// are recycled into the world's PacketPool when one is attached.
type Port struct {
	Sched *sim.Scheduler
	Queue Queue
	Link  *Link

	// OnDrop, if set, observes every packet the queue rejects. The packet
	// is recycled after the callback returns (when Pool is set), so
	// observers must copy what they need rather than retain the pointer.
	OnDrop DropFunc

	// ProcNoise, if set, returns a per-packet processing delay added before
	// serialization. The Dummynet emulation layer uses it to model the
	// non-ideal packet processing time of a software router.
	ProcNoise func() sim.Duration

	// LinkLoss, if set, is the link-layer loss process: it is consulted
	// exactly once per packet, when the packet finishes serializing, and a
	// true return drops the packet on the wire instead of delivering it.
	// Wire drops fire OnDrop (so loss observers see one merged,
	// time-ordered stream of queue and link losses), count in LinkDropped
	// (not Dropped), and recycle into Pool like queue drops. The process
	// must be stateful-deterministic — typically a seeded
	// lossmodel.GilbertElliott's Lost method, wired by topo.Build from a
	// Spec's LossSpec.
	LinkLoss func() bool

	// Pool, if set, receives dropped packets for reuse. The port only
	// frees packets it terminates (drops); delivered packets are owned by
	// whoever consumes them downstream.
	Pool *PacketPool

	busy  bool
	txPkt *Packet // packet currently serializing

	red     *RED      // cached type assertion of Queue
	txDone  func()    // serialization-complete callback, created once
	deliver func(any) // propagation-complete callback, created once

	// Counters for experiment bookkeeping. Forwarded and TxBytes count
	// packets that completed serialization, including those LinkLoss then
	// drops on the wire; Dropped counts queue rejections and LinkDropped
	// counts wire losses, so offered = delivered + Dropped + LinkDropped.
	Forwarded   uint64
	Dropped     uint64
	LinkDropped uint64
	TxBytes     uint64
}

// NewPort wires a queue to a link on the given scheduler.
func NewPort(sched *sim.Scheduler, q Queue, l *Link) *Port {
	if sched == nil || q == nil || l == nil {
		panic("netsim: NewPort requires scheduler, queue and link")
	}
	p := &Port{Sched: sched, Queue: q, Link: l}
	p.red, _ = q.(*RED)
	p.txDone = p.onTxDone
	p.deliver = func(a any) { p.Link.Dst.Handle(a.(*Packet)) }
	return p
}

// Handle implements Handler: offer the packet to the queue and kick the
// transmitter.
func (p *Port) Handle(pkt *Packet) {
	ok := false
	if p.red != nil {
		ok = p.red.EnqueueAt(pkt, p.Sched.Now().Seconds())
	} else {
		ok = p.Queue.Enqueue(pkt)
	}
	if !ok {
		p.Dropped++
		if p.OnDrop != nil {
			p.OnDrop(pkt, p.Sched.Now())
		}
		p.Pool.Put(pkt)
		return
	}
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Port) transmitNext() {
	pkt := p.Queue.Dequeue()
	if pkt == nil {
		p.busy = false
		return
	}
	if p.Queue.Len() == 0 && p.red != nil {
		p.red.NoteEmptyAt(p.Sched.Now().Seconds())
	}
	p.busy = true
	tx := p.Link.TxTime(pkt.Size)
	if p.ProcNoise != nil {
		tx += p.ProcNoise()
	}
	p.Forwarded++
	p.TxBytes += uint64(pkt.Size)
	// The packet leaves the port after serialization; it arrives at the
	// destination a propagation delay later. The port is free to start the
	// next packet as soon as serialization completes.
	p.txPkt = pkt
	p.Sched.After(tx, p.txDone)
}

func (p *Port) onTxDone() {
	pkt := p.txPkt
	p.txPkt = nil
	if p.LinkLoss != nil && p.LinkLoss() {
		// Lost on the wire: the packet occupied the link for its full
		// serialization time but never arrives.
		p.LinkDropped++
		if p.OnDrop != nil {
			p.OnDrop(pkt, p.Sched.Now())
		}
		p.Pool.Put(pkt)
	} else {
		p.Sched.AfterArg(p.Link.Delay, p.deliver, pkt)
	}
	p.transmitNext()
}

// Reset returns the port to its just-built state for world reuse:
// leftover queued and in-flight packets recycle into the pool, the
// counters zero, and the per-run hooks (OnDrop, ProcNoise, LinkLoss)
// detach. The queue instance, link and internal callbacks persist —
// rewinding the discipline's own state (DropTail.Reset, RED.Reset) and
// the link's rate/delay is the topology layer's job. Callers must reset
// the owning scheduler first (or alongside), since pending serialization
// and delivery events are cancelled wholesale there.
func (p *Port) Reset() {
	for {
		pkt := p.Queue.Dequeue()
		if pkt == nil {
			break
		}
		p.Pool.Put(pkt)
	}
	p.Pool.Put(p.txPkt)
	p.txPkt = nil
	p.busy = false
	p.OnDrop = nil
	p.ProcNoise = nil
	p.LinkLoss = nil
	p.Forwarded = 0
	p.Dropped = 0
	p.LinkDropped = 0
	p.TxBytes = 0
}

// QueueLen reports the instantaneous queue length in packets.
func (p *Port) QueueLen() int { return p.Queue.Len() }

// UniformNoise returns a ProcNoise function drawing uniformly from [0,max).
func UniformNoise(rng *rand.Rand, max sim.Duration) func() sim.Duration {
	return func() sim.Duration { return sim.Duration(rng.Int63n(int64(max))) }
}
