package netsim

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// portEvent is one observable action of a port under test: a delivery at
// the far end of the link, a queue drop, or a wire drop — with its exact
// virtual timestamp. The differential tests pin the batched port (delivery
// ring + serialization chains) to the naive two-events-per-packet reference
// by comparing these streams element for element.
type portEvent struct {
	kind string // "deliver", "drop", "wiredrop"
	at   sim.Time
	id   uint64
}

// diffWorld drives one port with a deterministic arrival script and
// records every observable event.
type diffScript struct {
	rate    int64
	delay   sim.Duration
	limit   int
	red     bool
	loss    float64 // per-packet wire loss probability (0 = no LinkLoss)
	noise   sim.Duration
	retunes []RateStep // applied via a step modulator when non-empty
	loop    sim.Duration

	// lattice replaces the random arrival script with fixed-size packets
	// arriving exactly at serialization-boundary multiples, so every
	// arrival ties with a serialization-complete instant to the
	// nanosecond — the regime where queue-state observations depend on
	// reference event order, not just timestamps. chained arms each
	// arrival from the previous one instead of pre-arming all of them at
	// setup, putting the arrival events on the other side of the
	// would-have-fired comparison.
	lattice bool
	chained bool
}

func runDiffPort(t *testing.T, naive bool, s diffScript, seed int64) []portEvent {
	t.Helper()
	defer func(old bool) { NaivePortPath = old }(NaivePortPath)
	NaivePortPath = naive

	sched := sim.NewScheduler()
	var events []portEvent
	sink := HandlerFunc(func(p *Packet) {
		events = append(events, portEvent{"deliver", sched.Now(), p.ID})
	})
	var q Queue
	if s.red {
		q = NewRED(REDConfig{
			Limit: s.limit, MinTh: 2, MaxTh: float64(s.limit) / 2, MaxP: 0.2,
			PacketsPerSecond: float64(s.rate) / (1000 * 8),
		}, sim.NewRand(sim.SubSeed(seed, 1)))
	} else {
		q = NewDropTail(s.limit)
	}
	link := NewLink(s.rate, s.delay, sink)
	port := NewPort(sched, q, link)
	port.Pool = NewPacketPool()
	port.OnDrop = func(p *Packet, at sim.Time) {
		events = append(events, portEvent{"drop", at, p.ID})
	}
	if s.loss > 0 {
		rng := sim.NewRand(sim.SubSeed(seed, 2))
		port.LinkLoss = func() bool { return rng.Float64() < s.loss }
	}
	if s.noise > 0 {
		port.ProcNoise = UniformNoise(sim.NewRand(sim.SubSeed(seed, 3)), s.noise)
	}
	if len(s.retunes) > 0 {
		m := NewStepModulator(sched, link, s.retunes, s.loop)
		m.Start()
	}

	txNs := 1000 * 8 * int64(sim.Second) / s.rate
	var id uint64
	at := sim.Time(0)
	switch {
	case s.lattice && s.chained:
		// Arrivals exactly at serialization boundaries, each armed shortly
		// before its boundary (the way an upstream delivery event arms the
		// next hop's arrival) — so the reference arms them after the
		// serialization-complete event they tie with, the opposite
		// resolution from the pre-armed variant. Every 3rd tick injects a
		// second packet, overloading the link so drop decisions also land
		// on the boundary.
		const ticks = 2400
		const lead = 300 // ns between arming and the boundary
		at = sim.Time(int64(ticks) * txNs)
		k := 0
		var tick func()
		tick = func() {
			k++
			due := sim.Time(int64(k) * txNs)
			n := 1
			if k%3 == 0 {
				n = 2
			}
			for j := 0; j < n; j++ {
				id++
				pkt := &Packet{ID: id, Flow: 1, Size: 1000}
				sched.At(due, func() { port.Handle(pkt) })
			}
			if k < ticks {
				sched.At(sim.Time(int64(k+1)*txNs-lead), tick)
			}
		}
		sched.At(sim.Time(txNs-lead), tick)
	case s.lattice:
		// Same boundary-aligned arrivals, pre-armed at time zero: the
		// reference arrival events all predate every serialization event,
		// which is the opposite tie resolution from the chained variant.
		const ticks = 2400
		for k := 1; k <= ticks; k++ {
			at = sim.Time(int64(k) * txNs)
			n := 1
			if k%3 == 0 {
				n = 2
			}
			for j := 0; j < n; j++ {
				id++
				pkt := &Packet{ID: id, Flow: 1, Size: 1000}
				sched.At(at, func() { port.Handle(pkt) })
			}
		}
	default:
		// Bursty Poisson-ish arrivals with mixed sizes, fully determined
		// by the seed. Mean gap ~60% of the 1000B serialization time, so
		// the queue oscillates between empty, full and draining.
		rng := sim.NewRand(seed)
		for i := 0; i < 3000; i++ {
			at = at.Add(sim.Duration(rng.Int63n(txNs*6/5) + 1))
			id++
			pid := id
			sz := 1000
			if rng.Intn(4) == 0 {
				sz = 40 + rng.Intn(960)
			}
			pkt := &Packet{ID: pid, Flow: 1, Size: sz}
			sched.At(at, func() { port.Handle(pkt) })
		}
	}
	// A looping modulator re-arms forever, so run to a fixed horizon that
	// comfortably drains the queue even at the slowest retuned rate.
	sched.RunUntil(at.Add(sim.Duration(txNs*int64(s.limit+8)*12) + 200*sim.Millisecond))
	// Counters must settle identically too; fold them into the stream so a
	// mismatch is visible in the same diff.
	events = append(events,
		portEvent{"fwd", sim.Time(port.Forwarded()), 0},
		portEvent{"txbytes", sim.Time(port.TxBytes()), 0},
		portEvent{"qdrop", sim.Time(port.Dropped), 0},
		portEvent{"wdrop", sim.Time(port.LinkDropped), 0},
	)
	return events
}

func diffPortScripts() map[string]diffScript {
	ms := sim.Millisecond
	return map[string]diffScript{
		"droptail-fast":    {rate: 10_000_000, delay: 2 * ms, limit: 16},
		"droptail-zerodly": {rate: 10_000_000, delay: 0, limit: 16},
		"droptail-longdly": {rate: 10_000_000, delay: 30 * ms, limit: 8},
		"red-exact":        {rate: 10_000_000, delay: 2 * ms, limit: 32, red: true},
		"wire-loss":        {rate: 10_000_000, delay: 2 * ms, limit: 16, loss: 0.05},
		"proc-noise":       {rate: 10_000_000, delay: 2 * ms, limit: 16, noise: 200 * sim.Microsecond},
		"retune-rate":      {rate: 10_000_000, delay: 2 * ms, limit: 16, retunes: []RateStep{{At: 5 * ms, Rate: 3_000_000}, {At: 11 * ms, Rate: 25_000_000}}, loop: 20 * ms},
		"retune-delay":     {rate: 10_000_000, delay: 2 * ms, limit: 16, retunes: []RateStep{{At: 5 * ms, Delay: 8 * ms}, {At: 11 * ms, Delay: 1 * ms}}, loop: 20 * ms},
		"retune-both":      {rate: 10_000_000, delay: 2 * ms, limit: 16, retunes: []RateStep{{At: 3 * ms, Rate: 2_000_000, Delay: 9 * ms}, {At: 9 * ms, Rate: 40_000_000, Delay: 1 * ms}}, loop: 17 * ms},
		"retune-loss":      {rate: 10_000_000, delay: 2 * ms, limit: 16, loss: 0.03, retunes: []RateStep{{At: 4 * ms, Rate: 4_000_000, Delay: 6 * ms}, {At: 13 * ms, Rate: 18_000_000, Delay: 2 * ms}}, loop: 19 * ms},
		"retune-red":       {rate: 10_000_000, delay: 2 * ms, limit: 32, red: true, retunes: []RateStep{{At: 4 * ms, Rate: 4_000_000, Delay: 6 * ms}, {At: 13 * ms, Rate: 18_000_000, Delay: 2 * ms}}, loop: 19 * ms},
		"lattice-prearmed": {rate: 10_000_000, delay: 2 * ms, limit: 8, lattice: true},
		"lattice-chained":  {rate: 10_000_000, delay: 2 * ms, limit: 8, lattice: true, chained: true},
		"lattice-retune":   {rate: 10_000_000, delay: 2 * ms, limit: 8, lattice: true, retunes: []RateStep{{At: 4 * ms, Rate: 5_000_000}, {At: 12 * ms, Rate: 20_000_000, Delay: 5 * ms}}, loop: 16 * ms},
	}
}

// TestPortDifferential pins the batched port against the naive reference:
// identical delivery streams, identical drop streams, identical counters —
// same packets, same nanoseconds — across queue disciplines, wire loss,
// processing noise and mid-chain retunes of rate, delay and both.
func TestPortDifferential(t *testing.T) {
	for name, s := range diffPortScripts() {
		s := s
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				want := runDiffPort(t, true, s, seed)
				got := runDiffPort(t, false, s, seed)
				if err := diffEvents(want, got); err != nil {
					t.Fatalf("seed %d: batched path diverged from naive: %v", seed, err)
				}
			}
		})
	}
}

func diffEvents(want, got []portEvent) error {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			hi := i + 4
			if hi > n {
				hi = n
			}
			ctx := ""
			for j := lo; j < hi; j++ {
				ctx += fmt.Sprintf("\n  [%d] naive %+v | batched %+v", j, want[j], got[j])
			}
			return fmt.Errorf("event %d: naive %+v vs batched %+v%s", i, want[i], got[i], ctx)
		}
	}
	if len(want) != len(got) {
		return fmt.Errorf("length: naive %d vs batched %d events", len(want), len(got))
	}
	return nil
}
