package netsim

import (
	"fmt"

	"repro/internal/sim"
)

// Node is a network element with an address, a static routing table and an
// optional local transport delivery map. Packets arriving for the node's
// own address are handed to the registered local Handler for the packet's
// flow; everything else is forwarded out the port selected by destination
// address.
type Node struct {
	Addr   int
	routes map[int]*Port   // destination address -> output port
	local  map[int]Handler // flow id -> local transport endpoint
	catch  Handler         // fallback local handler
	drops  func(p *Packet, at sim.Time)
	sched  *sim.Scheduler
}

// NewNode creates a node with the given address.
func NewNode(sched *sim.Scheduler, addr int) *Node {
	return &Node{
		Addr:   addr,
		routes: make(map[int]*Port),
		local:  make(map[int]Handler),
		sched:  sched,
	}
}

// AddRoute directs traffic for dst out the given port.
func (n *Node) AddRoute(dst int, port *Port) { n.routes[dst] = port }

// ReserveRoutes pre-sizes the routing table for the expected number of
// destinations, so installing a full static routing table (topo.Build
// adds one entry per reachable node) performs no incremental map growth.
// It only applies while the table is still empty.
func (n *Node) ReserveRoutes(count int) {
	if len(n.routes) == 0 && count > 0 {
		n.routes = make(map[int]*Port, count)
	}
}

// Bind registers a local transport endpoint for a flow id. Packets
// addressed to this node with that flow id are delivered to h.
func (n *Node) Bind(flow int, h Handler) { n.local[flow] = h }

// BindDefault registers a catch-all local handler used when no per-flow
// binding exists (e.g. sinks that absorb cross traffic).
func (n *Node) BindDefault(h Handler) { n.catch = h }

// OnLocalDrop installs an observer for packets that arrive for this node
// but have no handler; useful to catch mis-wired experiments early.
func (n *Node) OnLocalDrop(f func(p *Packet, at sim.Time)) { n.drops = f }

// Reset detaches the per-run wiring — local transport bindings, the
// catch-all handler and the local-drop observer — while keeping the
// static routing table, which depends only on topology structure. A reset
// node is ready for the next run's Bind/BindDefault calls.
func (n *Node) Reset() {
	clear(n.local)
	n.catch = nil
	n.drops = nil
}

// Handle implements Handler: deliver locally or forward.
func (n *Node) Handle(pkt *Packet) {
	if pkt.Dst == n.Addr {
		if h, ok := n.local[pkt.Flow]; ok {
			h.Handle(pkt)
			return
		}
		if n.catch != nil {
			n.catch.Handle(pkt)
			return
		}
		if n.drops != nil {
			n.drops(pkt, n.sched.Now())
			return
		}
		panic(fmt.Sprintf("netsim: node %d: no handler for flow %d", n.Addr, pkt.Flow))
	}
	port, ok := n.routes[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: node %d: no route to %d", n.Addr, pkt.Dst))
	}
	port.Handle(pkt)
}
