package netsim

import (
	"math/rand"

	"repro/internal/sim"
)

// DumbbellConfig describes the paper's Figure-1 topology: a set of senders
// and receivers joined by a single bottleneck, with per-sender access links
// whose one-way latencies determine the flows' RTTs.
type DumbbellConfig struct {
	// BottleneckRate is the capacity c of the shared link in bits/second
	// (100 Mbps in the paper).
	BottleneckRate int64
	// BottleneckDelay is the propagation delay of the bottleneck link
	// itself. The paper folds path latency into the access links, so this
	// is typically small.
	BottleneckDelay sim.Duration
	// AccessRate is the capacity of each access link (1 Gbps in the paper).
	AccessRate int64
	// AccessDelays gives the one-way access-link latency for each endpoint
	// pair; flow i's RTT is 2·(AccessDelays[i]·2 + BottleneckDelay·2)
	// ... more precisely: data crosses sender access + bottleneck +
	// receiver access, and the ACK returns the same way, so
	// RTT_i = 4·AccessDelays[i] + 2·BottleneckDelay when sender and
	// receiver access links share the latency. To keep each flow's RTT an
	// explicit input, the builder assigns AccessDelays[i]/2 to each of the
	// sender-side and receiver-side access links, making
	// RTT_i = 2·AccessDelays[i] + 2·BottleneckDelay (+ queueing + tx).
	AccessDelays []sim.Duration
	// Buffer is the bottleneck buffer size in packets.
	Buffer int
	// Queue, if non-nil, overrides the forward bottleneck queue (e.g. a RED
	// queue for the ECN ablation). When nil, a DropTail of size Buffer is
	// used.
	Queue Queue
	// ReverseQueue optionally overrides the reverse-path bottleneck queue.
	ReverseQueue Queue
}

// Dumbbell is the built topology. Each flow i has a dedicated sender-side
// node SenderNode(i) and receiver-side node ReceiverNode(i); all share the
// forward and reverse bottleneck ports.
type Dumbbell struct {
	Sched *sim.Scheduler

	LeftRouter  *Node // aggregates senders, owns the forward bottleneck port
	RightRouter *Node // aggregates receivers, owns the reverse bottleneck port

	Forward *Port // left -> right bottleneck (where data-direction drops happen)
	Reverse *Port // right -> left bottleneck

	senders   []*Node
	receivers []*Node

	cfg DumbbellConfig
}

// Endpoint addressing scheme: senders are 1000+i, receivers are 2000+i,
// routers are 1 (left) and 2 (right).
const (
	leftRouterAddr  = 1
	rightRouterAddr = 2
	senderAddrBase  = 1000
	recvAddrBase    = 2000
)

// SenderAddr returns the node address of sender i.
func SenderAddr(i int) int { return senderAddrBase + i }

// ReceiverAddr returns the node address of receiver i.
func ReceiverAddr(i int) int { return recvAddrBase + i }

// NewDumbbell wires the topology of DumbbellConfig onto sched.
func NewDumbbell(sched *sim.Scheduler, cfg DumbbellConfig) *Dumbbell {
	if cfg.BottleneckRate <= 0 || cfg.AccessRate <= 0 {
		panic("netsim: dumbbell rates must be positive")
	}
	if len(cfg.AccessDelays) == 0 {
		panic("netsim: dumbbell needs at least one endpoint pair")
	}
	if cfg.Buffer <= 0 && cfg.Queue == nil {
		panic("netsim: dumbbell needs a buffer size or an explicit queue")
	}

	d := &Dumbbell{Sched: sched, cfg: cfg}
	d.LeftRouter = NewNode(sched, leftRouterAddr)
	d.RightRouter = NewNode(sched, rightRouterAddr)

	fq := cfg.Queue
	if fq == nil {
		fq = NewDropTail(cfg.Buffer)
	}
	rq := cfg.ReverseQueue
	if rq == nil {
		rq = NewDropTail(maxInt(cfg.Buffer, 1024)) // generous reverse buffer: ACKs should not drop unless asked
	}
	d.Forward = NewPort(sched, fq, NewLink(cfg.BottleneckRate, cfg.BottleneckDelay, d.RightRouter))
	d.Reverse = NewPort(sched, rq, NewLink(cfg.BottleneckRate, cfg.BottleneckDelay, d.LeftRouter))

	for i, delay := range cfg.AccessDelays {
		half := delay / 2
		sn := NewNode(sched, SenderAddr(i))
		rn := NewNode(sched, ReceiverAddr(i))

		// sender -> left router and back
		sUp := NewPort(sched, NewDropTail(4096), NewLink(cfg.AccessRate, half, d.LeftRouter))
		sDown := NewPort(sched, NewDropTail(4096), NewLink(cfg.AccessRate, half, sn))
		// right router -> receiver and back
		rDown := NewPort(sched, NewDropTail(4096), NewLink(cfg.AccessRate, half, rn))
		rUp := NewPort(sched, NewDropTail(4096), NewLink(cfg.AccessRate, half, d.RightRouter))

		// Routing: everything a sender emits goes up its access link; the
		// left router sends receiver-bound traffic over the bottleneck and
		// sender-bound traffic down the right access link, and vice versa.
		sn.AddRoute(ReceiverAddr(i), sUp)
		rn.AddRoute(SenderAddr(i), rUp)
		d.LeftRouter.AddRoute(ReceiverAddr(i), d.Forward)
		d.LeftRouter.AddRoute(SenderAddr(i), sDown)
		d.RightRouter.AddRoute(SenderAddr(i), d.Reverse)
		d.RightRouter.AddRoute(ReceiverAddr(i), rDown)

		d.senders = append(d.senders, sn)
		d.receivers = append(d.receivers, rn)
	}
	return d
}

// NumPairs reports how many endpoint pairs the dumbbell has.
func (d *Dumbbell) NumPairs() int { return len(d.senders) }

// SenderNode returns the sender-side endpoint node for pair i.
func (d *Dumbbell) SenderNode(i int) *Node { return d.senders[i] }

// ReceiverNode returns the receiver-side endpoint node for pair i.
func (d *Dumbbell) ReceiverNode(i int) *Node { return d.receivers[i] }

// PairRTT reports the base (unloaded, zero-size-packet) round-trip time of
// pair i: twice the access delay plus twice the bottleneck delay.
func (d *Dumbbell) PairRTT(i int) sim.Duration {
	return 2*d.cfg.AccessDelays[i] + 2*d.cfg.BottleneckDelay
}

// BDP reports the bandwidth-delay product for a given RTT, in packets of
// the given size — the paper sizes buffers in fractions of this.
func BDP(rate int64, rtt sim.Duration, pktSize int) int {
	bits := float64(rate) * rtt.Seconds()
	pkts := bits / float64(pktSize*8)
	if pkts < 1 {
		return 1
	}
	return int(pkts)
}

// RandomAccessDelays draws n access latencies uniformly from [lo, hi], the
// paper's U[2ms, 200ms] setup for NS-2.
func RandomAccessDelays(rng *rand.Rand, n int, lo, hi sim.Duration) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = lo + sim.Duration(rng.Int63n(int64(hi-lo)+1))
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
