package planetlab

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestSitesMatchPaper(t *testing.T) {
	sites := Sites()
	if len(sites) != 26 {
		t.Fatalf("sites = %d, want 26 (paper Table 1)", len(sites))
	}
	if NumPaths() != 650 {
		t.Fatalf("paths = %d, want 650", NumPaths())
	}
	// Regional composition from the paper: 6 in California, 3 in Canada.
	count := map[string]int{}
	hosts := map[string]bool{}
	for _, s := range sites {
		count[s.Region]++
		if hosts[s.Host] {
			t.Fatalf("duplicate host %s", s.Host)
		}
		hosts[s.Host] = true
		if s.Lat < -90 || s.Lat > 90 || s.Lon < -180 || s.Lon > 180 {
			t.Fatalf("%s has bad coordinates", s.Host)
		}
	}
	if count["CA"] != 6 {
		t.Fatalf("CA sites = %d, want 6", count["CA"])
	}
	if count["US"] != 11 {
		t.Fatalf("other-US sites = %d, want 11", count["US"])
	}
	if count["Canada"] != 3 {
		t.Fatalf("Canada sites = %d, want 3", count["Canada"])
	}
}

func TestGreatCircle(t *testing.T) {
	// LA to NYC ≈ 3940 km.
	d := GreatCircleKm(34.05, -118.24, 40.71, -74.01)
	if d < 3800 || d > 4100 {
		t.Fatalf("LA-NYC distance = %v km", d)
	}
	if GreatCircleKm(10, 20, 10, 20) != 0 {
		t.Fatal("self distance nonzero")
	}
	// Symmetry.
	if math.Abs(GreatCircleKm(1, 2, 3, 4)-GreatCircleKm(3, 4, 1, 2)) > 1e-9 {
		t.Fatal("distance not symmetric")
	}
}

func TestMeshRTTRange(t *testing.T) {
	m := NewMesh(MeshConfig{Seed: 42})
	rtts := m.AllRTTs()
	if len(rtts) != 650 {
		t.Fatalf("rtt count = %d", len(rtts))
	}
	var minR, maxR = rtts[0], rtts[0]
	for _, r := range rtts {
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	// Paper: 2 ms to >300 ms.
	if minR < 2*sim.Millisecond || minR > 20*sim.Millisecond {
		t.Fatalf("min RTT = %v", minR)
	}
	if maxR < 200*sim.Millisecond || maxR > 350*sim.Millisecond {
		t.Fatalf("max RTT = %v", maxR)
	}
}

func TestMeshDeterministic(t *testing.T) {
	a := NewMesh(MeshConfig{Seed: 7})
	b := NewMesh(MeshConfig{Seed: 7})
	c := NewMesh(MeshConfig{Seed: 8})
	if a.PathParams(0, 1) != b.PathParams(0, 1) {
		t.Fatal("same seed, different params")
	}
	diff := false
	for i := 0; i < 5 && !diff; i++ {
		for j := 0; j < 5; j++ {
			if i != j && a.PathParams(i, j) != c.PathParams(i, j) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical meshes")
	}
}

func TestMeshSelfPathPanics(t *testing.T) {
	m := NewMesh(MeshConfig{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.PathParams(3, 3)
}

func TestMeshRandomPair(t *testing.T) {
	m := NewMesh(MeshConfig{Seed: 1})
	rng := sim.NewRand(5)
	for k := 0; k < 1000; k++ {
		i, j := m.RandomPair(rng)
		if i == j || i < 0 || j < 0 || i >= 26 || j >= 26 {
			t.Fatalf("bad pair %d,%d", i, j)
		}
	}
}

func TestPathEpisodeLossClustering(t *testing.T) {
	// A path with frequent episodes and total in-episode loss: losses must
	// cluster (consecutive probe packets lost together).
	params := PathParams{
		RTT:           100 * sim.Millisecond,
		EpisodeRate:   2,
		MeanEpisode:   20 * sim.Millisecond,
		LossInEpisode: 1.0,
		Background:    0,
	}
	p := NewPath(params, sim.NewRand(3))
	interval := sim.Millisecond
	var lossTimes []sim.Time
	for k := 0; k < 300000; k++ {
		at := sim.Time(int64(k) * int64(interval))
		if !p.Transmit(at) {
			lossTimes = append(lossTimes, at)
		}
	}
	if len(lossTimes) < 100 {
		t.Fatalf("only %d losses", len(lossTimes))
	}
	// Most inter-loss gaps should equal the probe interval (in-episode).
	small := 0
	for i := 1; i < len(lossTimes); i++ {
		if lossTimes[i].Sub(lossTimes[i-1]) == interval {
			small++
		}
	}
	frac := float64(small) / float64(len(lossTimes)-1)
	if frac < 0.7 {
		t.Fatalf("only %.2f of gaps are back-to-back; expected clustering", frac)
	}
	if p.Episodes == 0 || p.Losses == 0 || p.Queries != 300000 {
		t.Fatalf("stats: %+v", p)
	}
}

func TestPathBackgroundLossOnly(t *testing.T) {
	params := PathParams{
		RTT:        50 * sim.Millisecond,
		Background: 0.01,
	}
	p := NewPath(params, sim.NewRand(4))
	losses := 0
	for k := 0; k < 100000; k++ {
		if !p.Transmit(sim.Time(int64(k) * int64(sim.Millisecond))) {
			losses++
		}
	}
	rate := float64(losses) / 100000
	if rate < 0.007 || rate > 0.013 {
		t.Fatalf("background loss rate = %v, want ≈0.01", rate)
	}
	if p.Episodes != 0 {
		t.Fatalf("episodes = %d with zero episode rate", p.Episodes)
	}
}

func TestPathDecreasingTimePanics(t *testing.T) {
	p := NewPath(PathParams{RTT: sim.Millisecond}, sim.NewRand(1))
	p.Transmit(sim.Time(100))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	p.Transmit(sim.Time(50))
}

func TestPathValidation(t *testing.T) {
	bad := []PathParams{
		{RTT: 0},
		{RTT: 1, EpisodeRate: -1},
		{RTT: 1, LossInEpisode: 2},
		{RTT: 1, Background: -0.5},
	}
	for _, params := range bad {
		if params.Validate() == nil {
			t.Fatalf("accepted %+v", params)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewPath accepted bad params")
			}
		}()
		NewPath(PathParams{}, sim.NewRand(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewPath accepted nil rng")
			}
		}()
		NewPath(PathParams{RTT: 1}, nil)
	}()
}

func TestChannelDeliversWithDelay(t *testing.T) {
	s := sim.NewScheduler()
	params := PathParams{RTT: 100 * sim.Millisecond} // lossless
	path := NewPath(params, sim.NewRand(6))
	var arrivals []sim.Time
	dst := netsim.HandlerFunc(func(p *netsim.Packet) { arrivals = append(arrivals, s.Now()) })
	ch := NewChannel(s, path, dst)
	ch.Handle(&netsim.Packet{ID: 1, Size: 100})
	s.Run()
	if len(arrivals) != 1 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	if arrivals[0] != sim.Time(50*sim.Millisecond) {
		t.Fatalf("delay = %v, want RTT/2", arrivals[0])
	}
}

func TestChannelReportsDrops(t *testing.T) {
	s := sim.NewScheduler()
	path := NewPath(PathParams{RTT: 10 * sim.Millisecond, Background: 1}, sim.NewRand(7))
	delivered, dropped := 0, 0
	ch := NewChannel(s, path, netsim.HandlerFunc(func(p *netsim.Packet) { delivered++ }))
	ch.OnDrop = func(p *netsim.Packet, at sim.Time) { dropped++ }
	for i := 0; i < 10; i++ {
		ch.Handle(&netsim.Packet{ID: uint64(i), Size: 100})
	}
	s.Run()
	if delivered != 0 || dropped != 10 {
		t.Fatalf("delivered=%d dropped=%d", delivered, dropped)
	}
}

func TestMeshEpisodeDurationsSubRTT(t *testing.T) {
	m := NewMesh(MeshConfig{Seed: 9})
	for i := 0; i < 26; i++ {
		for j := 0; j < 26; j++ {
			if i == j {
				continue
			}
			p := m.PathParams(i, j)
			if p.MeanEpisode > p.RTT {
				t.Fatalf("path %d->%d: episode %v exceeds RTT %v",
					i, j, p.MeanEpisode, p.RTT)
			}
		}
	}
}

func TestRandomPairsDistinctAndCapped(t *testing.T) {
	m := NewMesh(MeshConfig{Seed: 1})
	rng := rand.New(rand.NewSource(7))
	pairs := m.RandomPairs(rng, 10)
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatalf("self pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
	if len(pairs) != 10 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	// Asking for more pairs than exist must terminate with all 650, not
	// spin forever on an exhausted pair space.
	all := m.RandomPairs(rand.New(rand.NewSource(8)), 100000)
	if len(all) != len(m.Sites)*(len(m.Sites)-1) {
		t.Fatalf("capped pairs = %d", len(all))
	}
}
