package planetlab

import (
	"math/rand"

	"repro/internal/sim"
)

// MeshConfig controls the synthetic mesh derivation.
type MeshConfig struct {
	// Seed determines every per-path parameter.
	Seed int64
	// RouteInflation multiplies great-circle propagation time to account
	// for indirect fiber routes (default 1.7).
	RouteInflation float64
	// MinRTT clamps path RTTs from below (default 2 ms, the paper's
	// minimum).
	MinRTT sim.Duration
	// MaxRTT clamps from above (default 350 ms; the paper saw >300 ms).
	MaxRTT sim.Duration
}

func (c *MeshConfig) fillDefaults() {
	if c.RouteInflation == 0 {
		c.RouteInflation = 1.7
	}
	if c.MinRTT == 0 {
		c.MinRTT = 2 * sim.Millisecond
	}
	if c.MaxRTT == 0 {
		c.MaxRTT = 350 * sim.Millisecond
	}
}

// Mesh is the full 650-path synthetic testbed.
type Mesh struct {
	Sites []Site
	cfg   MeshConfig
	// paths[src][dst], nil on the diagonal.
	params [][]PathParams
}

// NewMesh derives the complete directed mesh over the paper's 26 sites.
func NewMesh(cfg MeshConfig) *Mesh {
	cfg.fillDefaults()
	sites := Sites()
	m := &Mesh{Sites: sites, cfg: cfg}
	m.params = make([][]PathParams, len(sites))
	for i := range sites {
		m.params[i] = make([]PathParams, len(sites))
		for j := range sites {
			if i == j {
				continue
			}
			m.params[i][j] = m.derivePath(i, j)
		}
	}
	return m
}

// derivePath computes deterministic per-path parameters from the seed and
// the site pair.
func (m *Mesh) derivePath(i, j int) PathParams {
	rng := rand.New(rand.NewSource(sim.SubSeed(m.cfg.Seed, int64(i*1000+j))))

	a, b := m.Sites[i], m.Sites[j]
	km := GreatCircleKm(a.Lat, a.Lon, b.Lat, b.Lon)
	// Light in fiber ≈ 200,000 km/s; inflate for route indirection, then
	// add a path-specific extra of up to +60% for queueing/peering.
	propSec := km / 200000.0 * m.cfg.RouteInflation
	rtt := sim.Duration(2 * propSec * float64(sim.Second))
	rtt += sim.Duration(rng.Float64() * 0.6 * float64(rtt))
	// Same-metro pairs still have a couple of ms.
	rtt += sim.Duration(2+rng.Intn(4)) * sim.Millisecond
	if rtt < m.cfg.MinRTT {
		rtt = m.cfg.MinRTT
	}
	if rtt > m.cfg.MaxRTT {
		rtt = m.cfg.MaxRTT
	}

	// Congestion-episode parameters. Episode durations are tied to the
	// path RTT (drop bursts last a fraction of the bottleneck's RTT —
	// DropTail overflow persists until senders back off, about half an
	// RTT), with heterogeneity across paths: some paths congested often,
	// some almost never.
	episodeRate := 0.02 + rng.Float64()*0.4 // 1 per 50 s … 1 per 2.4 s
	meanEpisode := sim.Duration((0.1 + 0.5*rng.Float64()) * float64(rtt))
	if meanEpisode < sim.Millisecond {
		meanEpisode = sim.Millisecond
	}
	return PathParams{
		SrcSite:       i,
		DstSite:       j,
		RTT:           rtt,
		EpisodeRate:   episodeRate,
		MeanEpisode:   meanEpisode,
		LossInEpisode: 0.55 + 0.4*rng.Float64(),
		Background:    rng.Float64() * 5e-4,
		JitterMax:     sim.Duration(float64(rtt) * 0.02),
	}
}

// PathParams returns the derived parameters for the directed path i→j.
// Panics on the diagonal.
func (m *Mesh) PathParams(i, j int) PathParams {
	if i == j {
		panic("planetlab: no self path")
	}
	return m.params[i][j]
}

// NewPathProcess instantiates the live loss process for path i→j with an
// independent, deterministic random stream.
func (m *Mesh) NewPathProcess(i, j int) *Path {
	params := m.PathParams(i, j)
	rng := rand.New(rand.NewSource(sim.SubSeed(m.cfg.Seed+1, int64(i*1000+j))))
	return NewPath(params, rng)
}

// RandomPair picks a random ordered site pair, the paper's "two randomly
// picked sites".
func (m *Mesh) RandomPair(rng *rand.Rand) (int, int) {
	n := len(m.Sites)
	i := rng.Intn(n)
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return i, j
}

// RandomPairs picks n distinct random ordered site pairs, in pick order.
// n is capped at the mesh's total number of directed paths (650 for the
// paper's 26 sites), so asking for "all of them or more" terminates
// instead of spinning on an exhausted pair space.
func (m *Mesh) RandomPairs(rng *rand.Rand, n int) [][2]int {
	total := len(m.Sites) * (len(m.Sites) - 1)
	if n > total {
		n = total
	}
	pairs := make([][2]int, 0, n)
	seen := make(map[[2]int]bool, n)
	for len(pairs) < n {
		i, j := m.RandomPair(rng)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		pairs = append(pairs, [2]int{i, j})
	}
	return pairs
}

// AllRTTs lists every directed path's RTT, for distribution checks.
func (m *Mesh) AllRTTs() []sim.Duration {
	var out []sim.Duration
	for i := range m.Sites {
		for j := range m.Sites {
			if i != j {
				out = append(out, m.params[i][j].RTT)
			}
		}
	}
	return out
}
