package planetlab

import (
	"fmt"
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// PathParams describes one directed Internet path of the mesh.
type PathParams struct {
	SrcSite, DstSite int
	RTT              sim.Duration

	// EpisodeRate is the Poisson arrival rate of congestion episodes
	// (episodes per second).
	EpisodeRate float64
	// MeanEpisode is the mean (exponential) episode duration. Sub-RTT
	// episode durations are what produce the paper's clustering.
	MeanEpisode sim.Duration
	// LossInEpisode is the per-packet loss probability while an episode is
	// active.
	LossInEpisode float64
	// Background is the independent per-packet loss probability outside
	// episodes.
	Background float64
	// JitterMax bounds the uniform per-packet one-way delay jitter.
	JitterMax sim.Duration
}

// Validate sanity-checks the parameters.
func (p PathParams) Validate() error {
	if p.RTT <= 0 {
		return fmt.Errorf("planetlab: path RTT must be positive")
	}
	if p.EpisodeRate < 0 || p.MeanEpisode < 0 {
		return fmt.Errorf("planetlab: negative episode parameters")
	}
	if p.LossInEpisode < 0 || p.LossInEpisode > 1 || p.Background < 0 || p.Background > 1 {
		return fmt.Errorf("planetlab: loss probabilities outside [0,1]")
	}
	return nil
}

// Path is the live loss/delay process of one directed path. It advances a
// continuous-time congestion-episode schedule lazily as packets query it;
// queries must come with nondecreasing times (which a single scheduler
// guarantees).
type Path struct {
	Params PathParams

	rng *rand.Rand

	nextEpisode sim.Time // start of the next scheduled episode
	episodeEnd  sim.Time // end of the currently scheduled episode (may be past)
	lastQuery   sim.Time

	// Statistics.
	Queries  uint64
	Losses   uint64
	Episodes uint64
}

// NewPath builds a path process.
func NewPath(params PathParams, rng *rand.Rand) *Path {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("planetlab: NewPath requires rng")
	}
	p := &Path{Params: params, rng: rng}
	p.scheduleNextEpisode(0)
	return p
}

func (p *Path) scheduleNextEpisode(after sim.Time) {
	if p.Params.EpisodeRate <= 0 {
		p.nextEpisode = sim.Time(int64(^uint64(0) >> 2)) // effectively never
		return
	}
	gap := sim.Duration(p.rng.ExpFloat64() / p.Params.EpisodeRate * float64(sim.Second))
	p.nextEpisode = after.Add(gap)
}

// advance rolls the episode schedule forward to time t.
func (p *Path) advance(t sim.Time) {
	for t >= p.nextEpisode {
		start := p.nextEpisode
		dur := sim.Exponential(p.rng, p.Params.MeanEpisode)
		p.episodeEnd = start.Add(dur)
		p.Episodes++
		p.scheduleNextEpisode(start)
		// Overlapping episodes merge: if the next starts before this one
		// ends, the loop keeps extending episodeEnd monotonically. (A new
		// shorter episode must not truncate the current one.)
		if p.episodeEnd < start {
			p.episodeEnd = start
		}
	}
}

// Congested reports whether a congestion episode is active at time t.
func (p *Path) Congested(t sim.Time) bool {
	p.advance(t)
	return t < p.episodeEnd
}

// Transmit decides the fate of a packet entering the path at time t.
// It reports true when the packet survives.
func (p *Path) Transmit(t sim.Time) bool {
	if t < p.lastQuery {
		panic("planetlab: path queried with decreasing time")
	}
	p.lastQuery = t
	p.Queries++
	loss := p.Params.Background
	if p.Congested(t) {
		loss = p.Params.LossInEpisode
	}
	if p.rng.Float64() < loss {
		p.Losses++
		return false
	}
	return true
}

// OneWayDelay draws the one-way delay for a surviving packet: half the
// RTT plus uniform jitter.
func (p *Path) OneWayDelay() sim.Duration {
	d := p.Params.RTT / 2
	if p.Params.JitterMax > 0 {
		d += sim.Duration(p.rng.Int63n(int64(p.Params.JitterMax)))
	}
	return d
}

// Channel adapts a Path into a netsim.Handler: packets offered to it are
// either dropped (per the loss process, with the drop observable via
// OnDrop) or delivered to dst after the one-way delay.
type Channel struct {
	Sched  *sim.Scheduler
	Path   *Path
	Dst    netsim.Handler
	OnDrop func(pkt *netsim.Packet, at sim.Time)

	// Pool, if set, receives dropped packets for reuse — the channel is
	// the component that terminates a lost packet's life, mirroring
	// netsim.Port's drop recycling. Delivered packets are owned by Dst.
	Pool *netsim.PacketPool

	deliver func(any) // created once; probing sends millions of packets
}

// NewChannel wires a path process between a source and dst.
func NewChannel(sched *sim.Scheduler, path *Path, dst netsim.Handler) *Channel {
	if sched == nil || path == nil || dst == nil {
		panic("planetlab: NewChannel requires scheduler, path and destination")
	}
	c := &Channel{Sched: sched, Path: path, Dst: dst}
	c.deliver = func(a any) { c.Dst.Handle(a.(*netsim.Packet)) }
	return c
}

// Handle implements netsim.Handler.
func (c *Channel) Handle(pkt *netsim.Packet) {
	now := c.Sched.Now()
	if !c.Path.Transmit(now) {
		if c.OnDrop != nil {
			c.OnDrop(pkt, now)
		}
		c.Pool.Put(pkt)
		return
	}
	c.Sched.AfterArg(c.Path.OneWayDelay(), c.deliver, pkt)
}
