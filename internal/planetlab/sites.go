// Package planetlab models the paper's third measurement environment: the
// Internet, observed from 26 PlanetLab sites between October and December
// 2006. The real testbed is gone, so the package substitutes a synthetic
// wide-area mesh that preserves what the measurement exercises:
//
//   - the 26-site catalogue of the paper's Table 1, with geographic
//     coordinates, giving 650 directed paths;
//   - a deterministic per-path RTT derived from great-circle distance
//     (the paper reports 2 ms to >300 ms);
//   - per-path loss produced by a continuous-time congestion-episode
//     process (a time-driven Gilbert–Elliott chain): congestion episodes
//     arrive as a Poisson process and, while an episode lasts, packets are
//     lost with high probability. Episode durations are a fraction of the
//     path RTT, which is precisely the sub-RTT clustering the paper
//     measures, plus a small independent background loss.
//
// Everything is seeded and reproducible.
package planetlab

import "math"

// Site is one PlanetLab node from the paper's Table 1.
type Site struct {
	Host     string
	Location string
	Region   string // "CA", "US", "Canada", "Asia", "Europe", "SouthAmerica", "MiddleEast"
	Lat, Lon float64
}

// Sites returns the 26 measurement sites of the paper's Table 1, with
// approximate coordinates used to derive path RTTs.
func Sites() []Site {
	return []Site{
		{"planetlab2.cs.ucla.edu", "Los Angeles, CA", "CA", 34.07, -118.44},
		{"planetlab2.postel.org", "Marina Del Rey, CA", "CA", 33.98, -118.45},
		{"planet2.cs.ucsb.edu", "Santa Barbara, CA", "CA", 34.41, -119.85},
		{"planetlab11.millennium.berkeley.edu", "Berkeley, CA", "CA", 37.87, -122.26},
		{"planetlab1.nycm.internet2.planet-lab.org", "Marina del Rey, CA", "CA", 33.98, -118.45},
		{"planetlab2.kscy.internet2.planet-lab.org", "Marina del Rey, CA", "CA", 33.98, -118.45},
		{"planetlab3.cs.uoregon.edu", "Eugene, OR", "US", 44.05, -123.07},
		{"planetlab1.cs.ubc.ca", "Vancouver, Canada", "Canada", 49.26, -123.25},
		{"kupl1.ittc.ku.edu", "Lawrence, KS", "US", 38.96, -95.25},
		{"planetlab2.cs.uiuc.edu", "Urbana, IL", "US", 40.11, -88.23},
		{"planetlab2.tamu.edu", "College Station, TX", "US", 30.62, -96.34},
		{"planet.cc.gt.atl.ga.us", "Atlanta, GA", "US", 33.78, -84.40},
		{"planetlab2.uc.edu", "Cincinnati, Ohio", "US", 39.13, -84.52},
		{"planetlab-2.eecs.cwru.edu", "Cleveland, OH", "US", 41.50, -81.61},
		{"planetlab1.cs.duke.edu", "Durham, NC", "US", 36.00, -78.94},
		{"planetlab-10.cs.princeton.edu", "Princeton, NJ", "US", 40.35, -74.65},
		{"planetlab1.cs.cornell.edu", "Ithaca, NY", "US", 42.44, -76.48},
		{"planetlab2.isi.jhu.edu", "Baltimore, MD", "US", 39.33, -76.62},
		{"crt3.planetlab.umontreal.ca", "Montreal, Canada", "Canada", 45.50, -73.62},
		{"planet2.toronto.canet4.nodes.planet-lab.org", "Toronto, Canada", "Canada", 43.66, -79.40},
		{"planet1.cs.huji.ac.il", "Jerusalem, Israel", "MiddleEast", 31.78, 35.20},
		{"thu1.6planetlab.edu.cn", "Beijing, China", "Asia", 39.99, 116.32},
		{"lzu1.6planetlab.edu.cn", "Lanzhou, China", "Asia", 36.05, 103.86},
		{"planetlab2.iis.sinica.edu.tw", "Taipei, China", "Asia", 25.04, 121.61},
		{"planetlab1.cesnet.cz", "Czech", "Europe", 50.08, 14.42},
		{"planetlab1.larc.usp.br", "Brazil", "SouthAmerica", -23.56, -46.73},
	}
}

// NumPaths is the size of the complete directed graph over the sites
// (the paper's 650 directional edges).
func NumPaths() int {
	n := len(Sites())
	return n * (n - 1)
}

// earthRadiusKm is the mean Earth radius.
const earthRadiusKm = 6371.0

// GreatCircleKm returns the haversine distance between two coordinates.
func GreatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	dLat := (lat2 - lat1) * deg
	dLon := (lon2 - lon1) * deg
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*deg)*math.Cos(lat2*deg)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}
