package dummynet

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestQuantize(t *testing.T) {
	ms := sim.Millisecond
	cases := []struct {
		in   sim.Time
		want sim.Time
	}{
		{sim.Time(0), sim.Time(0)},
		{sim.Time(999 * sim.Microsecond), sim.Time(0)},
		{sim.Time(ms), sim.Time(ms)},
		{sim.Time(1700 * sim.Microsecond), sim.Time(ms)},
		{sim.Time(25*ms + 1), sim.Time(25 * ms)},
	}
	for _, c := range cases {
		if got := Quantize(c.in, ms); got != c.want {
			t.Fatalf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if Quantize(sim.Time(12345), 0) != sim.Time(12345) {
		t.Fatal("zero resolution must be identity")
	}
}

func TestPipeForwardsWithNoise(t *testing.T) {
	s := sim.NewScheduler()
	var arrivals []sim.Time
	dst := netsim.HandlerFunc(func(p *netsim.Packet) { arrivals = append(arrivals, s.Now()) })
	pipe := NewPipe(s, PipeConfig{
		Rate: 1_000_000, Delay: 10 * sim.Millisecond, QueueLimit: 10,
		ProcNoiseMax: 2 * sim.Millisecond,
	}, dst, sim.NewRand(1))
	for i := 0; i < 5; i++ {
		pipe.Handle(&netsim.Packet{ID: uint64(i), Size: 1000, Kind: netsim.Data})
	}
	s.Run()
	if len(arrivals) != 5 {
		t.Fatalf("forwarded %d", len(arrivals))
	}
	// Base time for packet 0: 8 ms tx + 10 ms prop = 18 ms; noise ∈ [0,2ms).
	if arrivals[0] < sim.Time(18*sim.Millisecond) ||
		arrivals[0] >= sim.Time(20*sim.Millisecond) {
		t.Fatalf("first arrival %v outside noisy window", arrivals[0])
	}
	// Noise must actually vary spacing: not all gaps identical.
	allEqual := true
	for i := 2; i < len(arrivals); i++ {
		if arrivals[i].Sub(arrivals[i-1]) != arrivals[1].Sub(arrivals[0]) {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("processing noise had no effect")
	}
}

func TestPipeDropTraceQuantized(t *testing.T) {
	s := sim.NewScheduler()
	dst := netsim.HandlerFunc(func(p *netsim.Packet) {})
	pipe := NewPipe(s, PipeConfig{
		Rate: 1_000_000, QueueLimit: 2,
	}, dst, sim.NewRand(2))
	// Overflow the queue at a non-tick time.
	s.At(sim.Time(1700*sim.Microsecond), func() {
		for i := 0; i < 10; i++ {
			pipe.Handle(&netsim.Packet{ID: uint64(i), Size: 1000, Kind: netsim.Data, Seq: int64(i)})
		}
	})
	s.Run()
	if pipe.Trace.Len() == 0 {
		t.Fatal("no drops recorded")
	}
	if pipe.Trace.Len() != pipe.ExactTrace.Len() {
		t.Fatal("trace length mismatch")
	}
	for i, e := range pipe.Trace.Events() {
		if int64(e.At)%int64(sim.Millisecond) != 0 {
			t.Fatalf("drop %d at unquantized time %v", i, e.At)
		}
		exact := pipe.ExactTrace.Events()[i]
		if e.At > exact.At || exact.At.Sub(e.At) >= sim.Millisecond {
			t.Fatalf("quantization out of range: %v vs exact %v", e.At, exact.At)
		}
		if e.Flow != exact.Flow || e.Seq != exact.Seq {
			t.Fatal("trace metadata mismatch")
		}
	}
}

func TestPipeDefaults(t *testing.T) {
	s := sim.NewScheduler()
	dst := netsim.HandlerFunc(func(p *netsim.Packet) {})
	pipe := NewPipe(s, PipeConfig{Rate: 1_000_000, QueueLimit: 5}, dst, sim.NewRand(3))
	cfg := pipe.Config()
	if cfg.ProcNoiseMax != 100*sim.Microsecond || cfg.ClockResolution != sim.Millisecond {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestPipeValidation(t *testing.T) {
	s := sim.NewScheduler()
	dst := netsim.HandlerFunc(func(p *netsim.Packet) {})
	for _, f := range []func(){
		func() { NewPipe(s, PipeConfig{Rate: 0, QueueLimit: 5}, dst, sim.NewRand(1)) },
		func() { NewPipe(s, PipeConfig{Rate: 1, QueueLimit: 0}, dst, sim.NewRand(1)) },
		func() { NewPipe(s, PipeConfig{Rate: 1, QueueLimit: 1}, dst, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
