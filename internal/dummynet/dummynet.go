// Package dummynet emulates the paper's second measurement environment: a
// Dummynet router (Rizzo 1997) running on FreeBSD. Relative to the ideal
// simulator it adds the two non-idealities the paper attributes to the
// emulation testbed:
//
//  1. per-packet processing-time noise — a software router does not forward
//     in exactly the serialization time;
//  2. a coarse measurement clock — the FreeBSD kernel timestamps drops at
//     1 ms resolution, so the recorded loss trace is quantized.
//
// The pipe itself (bandwidth + delay + FIFO queue) reuses the netsim port
// machinery; this package wraps it with the noise and the quantizing drop
// recorder.
package dummynet

import (
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PipeConfig describes a Dummynet pipe.
type PipeConfig struct {
	// Rate is the pipe bandwidth in bits/second.
	Rate int64
	// Delay is the pipe's one-way propagation delay.
	Delay sim.Duration
	// QueueLimit is the FIFO buffer in packets.
	QueueLimit int
	// ProcNoiseMax bounds the uniform per-packet processing noise
	// (default 100 µs, a typical mid-2000s software-forwarding jitter).
	ProcNoiseMax sim.Duration
	// ClockResolution quantizes recorded drop timestamps (default 1 ms,
	// the FreeBSD HZ=1000 tick of the paper's testbed).
	ClockResolution sim.Duration
}

func (c *PipeConfig) fillDefaults() {
	if c.ProcNoiseMax == 0 {
		c.ProcNoiseMax = 100 * sim.Microsecond
	}
	if c.ClockResolution == 0 {
		c.ClockResolution = sim.Millisecond
	}
}

// Pipe is an emulated Dummynet pipe: a noisy port whose drop trace is
// recorded at kernel-clock granularity.
type Pipe struct {
	Port *netsim.Port
	// Trace holds the quantized drop records, exactly what the paper's
	// instrumented Dummynet router logs.
	Trace *trace.Recorder
	// ExactTrace holds the unquantized drop times, for comparing the
	// measurement artifact against ground truth.
	ExactTrace *trace.Recorder

	cfg PipeConfig
}

// NewPipe builds the pipe on sched, forwarding to dst.
func NewPipe(sched *sim.Scheduler, cfg PipeConfig, dst netsim.Handler, rng *rand.Rand) *Pipe {
	if rng == nil {
		panic("dummynet: NewPipe requires a seeded rng")
	}
	if cfg.Rate <= 0 || cfg.QueueLimit <= 0 {
		panic("dummynet: pipe needs positive rate and queue limit")
	}
	cfg.fillDefaults()
	p := &Pipe{
		Trace:      &trace.Recorder{},
		ExactTrace: &trace.Recorder{},
		cfg:        cfg,
	}
	port := netsim.NewPort(sched, netsim.NewDropTail(cfg.QueueLimit),
		netsim.NewLink(cfg.Rate, cfg.Delay, dst))
	port.ProcNoise = netsim.UniformNoise(rng, cfg.ProcNoiseMax)
	port.OnDrop = func(pkt *netsim.Packet, at sim.Time) {
		p.ExactTrace.Add(trace.LossEvent{At: at, Flow: pkt.Flow, Seq: pkt.Seq, Size: pkt.Size})
		p.Trace.Add(trace.LossEvent{At: Quantize(at, cfg.ClockResolution),
			Flow: pkt.Flow, Seq: pkt.Seq, Size: pkt.Size})
	}
	p.Port = port
	return p
}

// Handle implements netsim.Handler by forwarding into the pipe.
func (p *Pipe) Handle(pkt *netsim.Packet) { p.Port.Handle(pkt) }

// Config returns the pipe's configuration after defaulting.
func (p *Pipe) Config() PipeConfig { return p.cfg }

// Quantize rounds t down to the previous clock tick, the way a kernel
// timestamp taken from a HZ counter does.
func Quantize(t sim.Time, resolution sim.Duration) sim.Time {
	if resolution <= 0 {
		return t
	}
	return t - sim.Time(int64(t)%int64(resolution))
}
