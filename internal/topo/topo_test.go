package topo_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crosstraffic"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// chainSpec builds a three-hop parking-lot-shaped chain with two endpoint
// pairs, optionally putting a RED queue on the middle hop. With a RED spec
// the middle hop also gets half the rate of the outer hops, making the
// inner queue the chain's bottleneck.
func chainSpec(buffer int, innerRED *topo.REDSpec) topo.Spec {
	s := topo.Spec{Name: "chain"}
	for _, n := range []string{"R0", "R1", "R2", "R3", "s0", "s1", "r0", "r1"} {
		s.Nodes = append(s.Nodes, topo.NodeSpec{Name: n})
	}
	hop := func(a, b string, rate int64, q topo.QueueSpec) topo.LinkSpec {
		return topo.LinkSpec{A: a, B: b,
			AB: topo.Dir{Rate: rate, Delay: sim.Millisecond, Queue: q}}
	}
	innerRate := int64(4_000_000)
	if innerRED != nil {
		innerRate = 2_000_000
	}
	s.Links = append(s.Links,
		hop("R0", "R1", 4_000_000, topo.QueueSpec{Limit: buffer}),
		hop("R1", "R2", innerRate, topo.QueueSpec{Limit: buffer, RED: innerRED}),
		hop("R2", "R3", 4_000_000, topo.QueueSpec{Limit: buffer}),
		topo.LinkSpec{A: "s0", B: "R0", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
		topo.LinkSpec{A: "s1", B: "R0", AB: topo.Dir{Rate: 100_000_000, Delay: 5 * sim.Millisecond}},
		topo.LinkSpec{A: "R3", B: "r0", AB: topo.Dir{Rate: 100_000_000, Delay: 2 * sim.Millisecond}},
		topo.LinkSpec{A: "R3", B: "r1", AB: topo.Dir{Rate: 100_000_000, Delay: 5 * sim.Millisecond}},
	)
	s.Flows = append(s.Flows,
		topo.FlowSpec{From: "s0", To: "r0"},
		topo.FlowSpec{From: "s1", To: "r1"},
	)
	return s
}

func TestBuildValidationErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		spec topo.Spec
		want string
	}{
		{"no nodes", topo.Spec{Name: "x"}, "has no nodes"},
		{"dup node", topo.Spec{Name: "x", Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "a"}}},
			"declares node \"a\" twice"},
		{"dup addr", topo.Spec{Name: "x", Nodes: []topo.NodeSpec{{Name: "a", Addr: 7}, {Name: "b", Addr: 7}}},
			"share address 7"},
		{"unknown link end", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}},
			Links: []topo.LinkSpec{{A: "a", B: "ghost", AB: topo.Dir{Rate: 1}}}},
			"unknown node"},
		{"self loop", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}},
			Links: []topo.LinkSpec{{A: "a", B: "a", AB: topo.Dir{Rate: 1}}}},
			"self-loop"},
		{"zero rate", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
			Links: []topo.LinkSpec{{A: "a", B: "b"}}},
			"positive rate"},
		{"parallel links", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
			Links: []topo.LinkSpec{
				{A: "a", B: "b", AB: topo.Dir{Rate: 1}},
				{A: "b", B: "a", AB: topo.Dir{Rate: 1}}}},
			"parallel links"},
		{"unknown flow node", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
			Links: []topo.LinkSpec{{A: "a", B: "b", AB: topo.Dir{Rate: 1}}},
			Flows: []topo.FlowSpec{{From: "a", To: "ghost"}}},
			"unknown node"},
		{"partial reverse dir", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
			Links: []topo.LinkSpec{{A: "a", B: "b",
				AB: topo.Dir{Rate: 1},
				BA: topo.Dir{Delay: 50 * sim.Millisecond}}}},
			"reverse direction sets delay/queue/dynamics but no rate"},
		{"bad RED", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
			Links: []topo.LinkSpec{{A: "a", B: "b",
				AB: topo.Dir{Rate: 1, Queue: topo.QueueSpec{RED: &topo.REDSpec{MinTh: 5, MaxTh: 1, MaxP: 0.1}}}}}},
			"RED thresholds"},
		{"disconnected flow", topo.Spec{Name: "x",
			Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
			Links: []topo.LinkSpec{{A: "a", B: "b", AB: topo.Dir{Rate: 1}}},
			Flows: []topo.FlowSpec{{From: "a", To: "c"}}},
			"no route"},
	}
	for _, tc := range cases {
		_, err := topo.Build(sim.NewScheduler(), tc.spec, 1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildRoutesAndRTTs(t *testing.T) {
	t.Parallel()
	net, err := topo.Build(sim.NewScheduler(), chainSpec(10, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0: s0 → R0 → R1 → R2 → R3 → r0. One way: 2+1+1+1+2 = 7 ms.
	if got, want := net.FlowRTT(0), 14*sim.Millisecond; got != want {
		t.Fatalf("flow 0 RTT = %v, want %v", got, want)
	}
	// Flow 1: 5+3+5 one way → 26 ms round trip.
	if got, want := net.FlowRTT(1), 26*sim.Millisecond; got != want {
		t.Fatalf("flow 1 RTT = %v, want %v", got, want)
	}
	if got, want := net.MeanFlowRTT(), 20*sim.Millisecond; got != want {
		t.Fatalf("mean RTT = %v, want %v", got, want)
	}
	if net.NumFlows() != 2 {
		t.Fatalf("flows = %d", net.NumFlows())
	}
	// 7 links → 14 directed ports, in declaration order.
	ports := net.Ports()
	if len(ports) != 14 {
		t.Fatalf("ports = %d", len(ports))
	}
	if ports[0].From != "R0" || ports[0].To != "R1" || ports[1].From != "R1" || ports[1].To != "R0" {
		t.Fatalf("port order broken: %+v %+v", ports[0], ports[1])
	}
	// A packet handed to s0 for r1's address must arrive at r1.
	delivered := false
	net.Node("r1").BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) { delivered = true }))
	net.Node("s0").Handle(&netsim.Packet{Flow: 99, Kind: netsim.Data, Size: 100,
		Src: net.Addr("s0"), Dst: net.Addr("r1")})
	net.Sched.Run()
	if !delivered {
		t.Fatal("cross-pair packet not routed end to end")
	}
}

// TestChainConservation: every packet offered to a multi-hop topology is
// exactly one of {delivered, dropped at some queue} — no loss happens
// anywhere but at a full queue, and nothing is duplicated or leaked.
func TestChainConservation(t *testing.T) {
	t.Parallel()
	sched := sim.NewScheduler()
	net, err := topo.Build(sched, chainSpec(5, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	delivered, dropped := 0, 0
	for _, name := range []string{"r0", "r1"} {
		net.Node(name).BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) { delivered++ }))
	}
	for _, pi := range net.Ports() {
		pi.Port.OnDrop = func(p *netsim.Packet, at sim.Time) { dropped++ }
	}

	rng := rand.New(rand.NewSource(3))
	const offered = 3000
	for i := 0; i < offered; i++ {
		i := i
		sched.At(sim.Time(sim.Duration(rng.Intn(400))*sim.Millisecond), func() {
			pair := i % 2
			src, dst := "s0", "r0"
			if pair == 1 {
				src, dst = "s1", "r1"
			}
			net.Node(src).Handle(&netsim.Packet{
				ID: uint64(i), Flow: pair + 1, Kind: netsim.Data, Size: 1000,
				Src: net.Addr(src), Dst: net.Addr(dst),
			})
		})
	}
	sched.Run()
	if delivered+dropped != offered {
		t.Fatalf("conservation violated: delivered=%d dropped=%d offered=%d",
			delivered, dropped, offered)
	}
	if dropped == 0 {
		t.Fatal("expected drops at the 4 Mbps chain under this load")
	}
	// No loss without a full queue: forwarded+dropped must equal arrivals
	// at every port, and ports with spare queue room never dropped.
	for _, pi := range net.Ports() {
		if pi.Port.Dropped > 0 && pi.Port.QueueLen() != 0 {
			t.Fatalf("port %s→%s ended with %d queued", pi.From, pi.To, pi.Port.QueueLen())
		}
	}
}

// TestREDOnInnerHop: a RED queue declared on a middle hop of a chain
// drops early (or marks) with the builder-derived seeded stream, and the
// world stays a pure function of (spec, seed).
func TestREDOnInnerHop(t *testing.T) {
	t.Parallel()
	red := &topo.REDSpec{MinTh: 2, MaxTh: 16, MaxP: 0.1}
	// Moderate overload (~1.3× the 2 Mbps inner hop) keeps the average
	// queue inside RED's randomized band instead of pinning it at the
	// hard limit, so the seeded stream actually decides which packets go.
	run := func(seed int64) (delivered int, innerDrops []uint64) {
		sched := sim.NewScheduler()
		net, err := topo.Build(sched, chainSpec(20, red), seed)
		if err != nil {
			t.Fatal(err)
		}
		dropped := 0
		for _, name := range []string{"r0", "r1"} {
			net.Node(name).BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) { delivered++ }))
		}
		for _, pi := range net.Ports() {
			pi.Port.OnDrop = func(p *netsim.Packet, at sim.Time) { dropped++ }
		}
		net.Port("R1", "R2").OnDrop = func(p *netsim.Packet, at sim.Time) {
			dropped++
			innerDrops = append(innerDrops, p.ID)
		}
		rng := rand.New(rand.NewSource(7))
		const offered = 2000
		for i := 0; i < offered; i++ {
			i := i
			sched.At(sim.Time(sim.Duration(rng.Intn(6000))*sim.Millisecond), func() {
				net.Node("s0").Handle(&netsim.Packet{
					ID: uint64(i), Flow: 1, Kind: netsim.Data, Size: 1000,
					Src: net.Addr("s0"), Dst: net.Addr("r0"),
				})
			})
		}
		sched.Run()
		if delivered+dropped != offered {
			t.Fatalf("conservation violated with RED inner hop: %d+%d != %d",
				delivered, dropped, offered)
		}
		return delivered, innerDrops
	}

	d1, i1 := run(1)
	if len(i1) == 0 {
		t.Fatal("RED inner hop never dropped under sustained overload")
	}
	// Same seed → identical world; different seed → RED's random
	// early-drop decisions pick different packets.
	d2, i2 := run(1)
	if d1 != d2 || !reflect.DeepEqual(i1, i2) {
		t.Fatalf("same seed diverged: %d/%d drops vs %d/%d", d1, len(i1), d2, len(i2))
	}
	_, i3 := run(99)
	if reflect.DeepEqual(i1, i3) {
		t.Fatal("different RED seeds produced identical drop sequences; seeding inert")
	}
}

// dumbbellPorts abstracts the two builders so the equivalence test can run
// the identical workload on each.
type dumbbellWorld struct {
	sched            *sim.Scheduler
	forward, reverse *netsim.Port
	left, right      *netsim.Node
	snd, rcv         func(i int) *netsim.Node
}

// runDumbbellWorkload drives TCP flows plus two-way noise and returns the
// bottleneck drop trace.
func runDumbbellWorkload(w dumbbellWorld, nPairs int) []trace.LossEvent {
	rec := &trace.Recorder{}
	w.forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		rec.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
	}
	for i := 0; i < nPairs; i++ {
		f := tcp.NewPairFlow(w.sched, w.snd(i), w.rcv(i), i+1, tcp.Config{
			PktSize:    1000,
			InitialRTT: 20 * sim.Millisecond,
		})
		f.StartAt(w.sched, sim.Time(sim.Duration(i)*10*sim.Millisecond))
	}
	w.left.BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) {}))
	w.right.BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) {}))
	for _, nz := range crosstraffic.NoiseSet(w.sched, w.forward, 4, 5_000_000, 0.2,
		100000, netsim.SenderAddr(0), 2, 11, nil) {
		nz.Start()
	}
	w.sched.RunUntil(sim.Time(8 * sim.Second))
	return rec.Events()
}

// TestDumbbellBuilderEquivalence: the declarative builder produces a world
// with bit-identical packet dynamics to the hand-wired netsim dumbbell —
// the guarantee that lets the dumbbell figures run through topo unchanged.
func TestDumbbellBuilderEquivalence(t *testing.T) {
	t.Parallel()
	cfg := netsim.DumbbellConfig{
		BottleneckRate: 5_000_000,
		AccessRate:     100_000_000,
		AccessDelays: []sim.Duration{
			4 * sim.Millisecond, 10 * sim.Millisecond, 25 * sim.Millisecond,
		},
		Buffer: 12,
	}

	s1 := sim.NewScheduler()
	nd := netsim.NewDumbbell(s1, cfg)
	legacy := runDumbbellWorkload(dumbbellWorld{
		sched: s1, forward: nd.Forward, reverse: nd.Reverse,
		left: nd.LeftRouter, right: nd.RightRouter,
		snd: nd.SenderNode, rcv: nd.ReceiverNode,
	}, len(cfg.AccessDelays))

	s2 := sim.NewScheduler()
	td := topo.NewDumbbell(s2, cfg)
	declarative := runDumbbellWorkload(dumbbellWorld{
		sched: s2, forward: td.Forward, reverse: td.Reverse,
		left: td.LeftRouter, right: td.RightRouter,
		snd: td.SenderNode, rcv: td.ReceiverNode,
	}, len(cfg.AccessDelays))

	if len(legacy) == 0 {
		t.Fatal("workload produced no drops; equivalence vacuous")
	}
	if !reflect.DeepEqual(legacy, declarative) {
		t.Fatalf("builders diverge: netsim %d drops vs topo %d drops",
			len(legacy), len(declarative))
	}
	for i := range cfg.AccessDelays {
		if nd.PairRTT(i) != td.PairRTT(i) {
			t.Fatalf("pair %d RTT: %v vs %v", i, nd.PairRTT(i), td.PairRTT(i))
		}
	}
	if td.NumPairs() != nd.NumPairs() {
		t.Fatalf("pair count: %d vs %d", td.NumPairs(), nd.NumPairs())
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	// Not parallel: mutates the global registry.
	name := "test-registry-scenario"
	topo.Register(topo.Scenario{
		Name:        name,
		Description: "registry round-trip",
		Run: func(cfg topo.ScenarioConfig) (*topo.ScenarioResult, error) {
			return nil, nil
		},
	})
	if _, ok := topo.Lookup(name); !ok {
		t.Fatal("registered scenario not found")
	}
	found := false
	for _, n := range topo.Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing %q: %v", name, topo.Names())
	}
	// Sorted order.
	names := topo.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	topo.Register(topo.Scenario{Name: name, Run: func(topo.ScenarioConfig) (*topo.ScenarioResult, error) { return nil, nil }})
}
