package topo

// Fleet parameter jitter: ScaleSpec applies a ScenarioConfig's
// Rate/RTT/LossScale multipliers to a built Spec, producing the jittered
// neighbor of a nominal world. Everything it changes is parametric in
// the Compile/Instantiate/Reset sense — rates, delays, dynamics bounds,
// loss-chain entry rates — so a jittered spec Resets onto the arena's
// cached world exactly like the nominal one; the structural key never
// moves.

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// EffScales returns the config's effective jitter multipliers, mapping
// the zero value to the nominal 1.0.
func (c ScenarioConfig) EffScales() (rate, rtt, loss float64) {
	rate, rtt, loss = c.RateScale, c.RTTScale, c.LossScale
	if rate == 0 {
		rate = 1
	}
	if rtt == 0 {
		rtt = 1
	}
	if loss == 0 {
		loss = 1
	}
	return rate, rtt, loss
}

// Jittered reports whether any scale is active (≠ nominal).
func (c ScenarioConfig) Jittered() bool {
	rate, rtt, loss := c.EffScales()
	return rate != 1 || rtt != 1 || loss != 1
}

// ScaleRate scales a link rate, clamping to at least 1 bit/s. The
// nominal scale 1 is an exact no-op.
func ScaleRate(r int64, s float64) int64 {
	if s == 1 {
		return r
	}
	r = int64(float64(r) * s)
	if r < 1 {
		r = 1
	}
	return r
}

// ScaleDuration scales a delay; the nominal scale 1 is an exact no-op.
func ScaleDuration(d sim.Duration, s float64) sim.Duration {
	if s == 1 {
		return d
	}
	return sim.Duration(float64(d) * s)
}

// scaleProb scales a probability, clamping to [0, 1].
func scaleProb(p, s float64) float64 {
	if s == 1 {
		return p
	}
	p *= s
	if p > 1 {
		p = 1
	}
	return p
}

// ScaleSpec returns spec with the given multipliers applied: link rates
// (including dynamics schedules, oscillation and walk bounds) by rate,
// propagation delays by rtt, and the Gilbert–Elliott Good→Bad entry
// probability by loss (the bad-state dwell is untouched, so loss jitter
// changes how often bursts start, not their shape). Queue limits are
// deliberately untouched — see ScenarioConfig. With all scales nominal
// the input is returned unchanged, byte for byte; otherwise the links
// (and any nested dynamics/loss programs) are deep-copied, never
// mutating the caller's spec.
func ScaleSpec(spec Spec, rate, rtt, loss float64) Spec {
	if rate == 1 && rtt == 1 && loss == 1 {
		return spec
	}
	links := make([]LinkSpec, len(spec.Links))
	for i, l := range spec.Links {
		l.AB = scaleDir(l.AB, rate, rtt, loss)
		l.BA = scaleDir(l.BA, rate, rtt, loss)
		links[i] = l
	}
	spec.Links = links
	return spec
}

// scaleDir scales one direction, deep-copying nested programs. A zero
// (mirroring) reverse Dir stays zero: it inherits the scaled forward
// direction through LinkSpec.mirrored as before.
func scaleDir(d Dir, rate, rtt, loss float64) Dir {
	if d.Rate == 0 {
		return d
	}
	d.Rate = ScaleRate(d.Rate, rate)
	d.Delay = ScaleDuration(d.Delay, rtt)
	if dyn := d.Dynamics; dyn != nil {
		c := *dyn
		if dyn.Steps != nil {
			c.Steps = make([]netsim.RateStep, len(dyn.Steps))
			for i, s := range dyn.Steps {
				if s.Rate != 0 {
					s.Rate = ScaleRate(s.Rate, rate)
				}
				if s.Delay != 0 {
					s.Delay = ScaleDuration(s.Delay, rtt)
				}
				c.Steps[i] = s
			}
		}
		if dyn.Oscillate != nil {
			o := *dyn.Oscillate
			o.Min = ScaleRate(o.Min, rate)
			o.Max = ScaleRate(o.Max, rate)
			c.Oscillate = &o
		}
		if dyn.Walk != nil {
			w := *dyn.Walk
			w.Min = ScaleRate(w.Min, rate)
			w.Max = ScaleRate(w.Max, rate)
			c.Walk = &w
		}
		d.Dynamics = &c
	}
	if ls := d.Loss; ls != nil {
		c := *ls
		c.PGB = scaleProb(ls.PGB, loss)
		d.Loss = &c
	}
	return d
}
