package topo

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/lossmodel"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// DynamicsSpec declares a time-varying program for one link direction.
// Exactly one of Steps, Oscillate or Walk must be set. The builder turns
// it into a netsim.LinkModulator started at build time, with the
// random-walk stream seeded from the build seed and the link's position —
// a dynamic Spec stays a pure function of (Spec, seed).
//
// A direction whose reverse Dir is zero mirrors the forward DynamicsSpec
// too (like its queue spec): the builder creates an independent modulator
// per direction, each with its own derived seed.
type DynamicsSpec struct {
	// Steps is a piecewise-constant rate/delay schedule, offsets relative
	// to the world's start (see netsim.RateStep; zero fields keep the
	// current value). Bandwidth-trace scenarios load these with
	// ParseBandwidthTrace.
	Steps []netsim.RateStep
	// Loop, when positive, restarts the step schedule every Loop of
	// simulated time; it must be at least the last step's offset. Zero
	// runs the schedule once and then holds the final parameters.
	Loop sim.Duration
	// Oscillate, when non-nil, samples a sinusoid between its bounds.
	Oscillate *OscillateSpec
	// Walk, when non-nil, runs a seeded multiplicative random walk.
	Walk *WalkSpec
}

// OscillateSpec is a sampled-sinusoid rate program: every Interval the
// rate is set to the sinusoid through [Min, Max] with the given Period.
type OscillateSpec struct {
	// Min and Max bound the rate in bits per second (0 < Min ≤ Max).
	Min, Max int64
	// Period is the sinusoid's full cycle; Interval the sampling step.
	Period, Interval sim.Duration
}

// WalkSpec is a seeded multiplicative random walk — the shape of wireless
// rate adaptation: every Interval the rate is multiplied by a factor drawn
// log-uniformly from [1/Factor, Factor] and clamped to [Min, Max].
type WalkSpec struct {
	// Min and Max bound the rate in bits per second (0 < Min ≤ Max).
	Min, Max int64
	// Factor is the per-tick multiplicative spread (> 1).
	Factor float64
	// Interval is the tick spacing.
	Interval sim.Duration
}

// validate reports the first inconsistency in the dynamics program.
func (d *DynamicsSpec) validate() error {
	set := 0
	if d.Steps != nil {
		set++
	}
	if d.Oscillate != nil {
		set++
	}
	if d.Walk != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("dynamics must set exactly one of Steps, Oscillate, Walk (got %d)", set)
	}
	switch {
	case d.Steps != nil:
		for i, s := range d.Steps {
			if s.At < 0 || s.Rate < 0 || s.Delay < 0 {
				return fmt.Errorf("dynamics step %d has negative At/Rate/Delay", i)
			}
			if i > 0 && s.At <= d.Steps[i-1].At {
				return fmt.Errorf("dynamics step %d offset %v not after step %d", i, s.At, i-1)
			}
		}
		if d.Loop < 0 || (d.Loop > 0 && d.Loop < d.Steps[len(d.Steps)-1].At) {
			return fmt.Errorf("dynamics loop %v shorter than the schedule", d.Loop)
		}
	case d.Oscillate != nil:
		o := d.Oscillate
		if d.Loop != 0 {
			return fmt.Errorf("dynamics Loop only applies to Steps")
		}
		if o.Min <= 0 || o.Max < o.Min {
			return fmt.Errorf("oscillation bounds [%d, %d] invalid", o.Min, o.Max)
		}
		if o.Period <= 0 || o.Interval <= 0 {
			return fmt.Errorf("oscillation period and interval must be positive")
		}
	case d.Walk != nil:
		w := d.Walk
		if d.Loop != 0 {
			return fmt.Errorf("dynamics Loop only applies to Steps")
		}
		if w.Min <= 0 || w.Max < w.Min {
			return fmt.Errorf("random-walk bounds [%d, %d] invalid", w.Min, w.Max)
		}
		if w.Factor <= 1 {
			return fmt.Errorf("random-walk factor %v must exceed 1", w.Factor)
		}
		if w.Interval <= 0 {
			return fmt.Errorf("random-walk interval must be positive")
		}
	}
	return nil
}

// LossSpec attaches a stateful Gilbert–Elliott link-layer loss process to
// one link direction (see internal/lossmodel): PGB/PBG are the per-packet
// Good→Bad / Bad→Good transition probabilities, KGood/KBad the per-state
// loss probabilities. The builder seeds each direction's chain from the
// build seed and the link's position and installs its Lost method as the
// port's LinkLoss hook, so wire losses surface through the same OnDrop
// observer as queue drops.
type LossSpec struct {
	PGB, PBG, KGood, KBad float64
}

// BernoulliLoss is the independent-loss special case: a chain whose two
// states lose with the same probability p.
func BernoulliLoss(p float64) *LossSpec { return &LossSpec{KGood: p, KBad: p} }

// params converts to the lossmodel parameter bundle.
func (l *LossSpec) params() lossmodel.GEParams {
	return lossmodel.GEParams{PGB: l.PGB, PBG: l.PBG, KGood: l.KGood, KBad: l.KBad}
}

// buildDynamics realizes a validated DynamicsSpec as a started modulator.
// seed feeds the random walk's stream (unused by the deterministic
// programs).
func buildDynamics(sched *sim.Scheduler, link *netsim.Link, d *DynamicsSpec, seed int64) *netsim.LinkModulator {
	var m *netsim.LinkModulator
	switch {
	case d.Steps != nil:
		m = netsim.NewStepModulator(sched, link, d.Steps, d.Loop)
	case d.Oscillate != nil:
		o := d.Oscillate
		m = netsim.NewOscillator(sched, link, o.Min, o.Max, o.Period, o.Interval)
	default:
		w := d.Walk
		m = netsim.NewRandomWalk(sched, link, w.Min, w.Max, w.Factor, w.Interval, sim.NewRand(seed))
	}
	m.Start()
	return m
}

// ParseBandwidthTrace parses the repository's bandwidth-trace format into
// a step schedule: one "<seconds> <mbps>" pair per line, '#' starting a
// comment, blank lines ignored. Offsets must be non-negative and strictly
// increasing; rates must be positive. The checked-in cellular trace under
// internal/topo/scenarios/testdata is the reference instance.
func ParseBandwidthTrace(data []byte) ([]netsim.RateStep, error) {
	var steps []netsim.RateStep
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace line %d: want \"<seconds> <mbps>\", got %q", lineno, line)
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("trace line %d: bad time %q", lineno, fields[0])
		}
		mbps, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || mbps <= 0 {
			return nil, fmt.Errorf("trace line %d: bad rate %q", lineno, fields[1])
		}
		at := sim.Duration(secs * float64(sim.Second))
		if n := len(steps); n > 0 && at <= steps[n-1].At {
			return nil, fmt.Errorf("trace line %d: time %v not after %v", lineno, at, steps[n-1].At)
		}
		steps = append(steps, netsim.RateStep{At: at, Rate: int64(mbps * 1e6)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("trace: no bandwidth samples")
	}
	return steps, nil
}
