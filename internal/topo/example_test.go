package topo_test

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ExampleNewDumbbell builds the paper's Figure-1 dumbbell through the
// declarative topology builder: the config names the rates, per-pair
// access delays and the shared bottleneck buffer, and the builder wires
// nodes, queues, routes and per-pair base RTTs.
func ExampleNewDumbbell() {
	sched := sim.NewScheduler()
	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  50_000_000,
		BottleneckDelay: sim.Millisecond,
		AccessRate:      1_000_000_000,
		AccessDelays:    []sim.Duration{10 * sim.Millisecond, 20 * sim.Millisecond},
		Buffer:          64,
	})
	fmt.Println("pairs:", d.NumPairs())
	fmt.Println("pair 0 base RTT:", d.PairRTT(0))
	fmt.Println("pair 1 base RTT:", d.PairRTT(1))
	// Output:
	// pairs: 2
	// pair 0 base RTT: 0.022000000s
	// pair 1 base RTT: 0.042000000s
}

// ExampleBuild_linkDynamics declares a time-varying link: the middle hop
// follows a piecewise-constant bandwidth schedule (DynamicsSpec.Steps)
// and erases burst losses on the wire with a seeded Gilbert–Elliott
// chain (LossSpec). Both are pure data on the Spec; Build seeds and
// starts them, and wire drops surface through the port's ordinary OnDrop
// observer — here just counted via the port counters.
func ExampleBuild_linkDynamics() {
	sched := sim.NewScheduler()
	spec := topo.Spec{
		Name:  "fading-path",
		Nodes: []topo.NodeSpec{{Name: "src"}, {Name: "a"}, {Name: "b"}, {Name: "dst"}},
		Links: []topo.LinkSpec{
			{A: "src", B: "a", AB: topo.Dir{Rate: 100_000_000, Delay: sim.Millisecond}},
			{A: "a", B: "b", AB: topo.Dir{
				Rate: 8_000_000, Delay: 5 * sim.Millisecond,
				Queue: topo.QueueSpec{Limit: 16},
				Dynamics: &topo.DynamicsSpec{
					Steps: []netsim.RateStep{
						{At: 0, Rate: 8_000_000},
						{At: sim.Second, Rate: 1_000_000}, // deep fade
						{At: 2 * sim.Second, Rate: 8_000_000},
					},
				},
				Loss: &topo.LossSpec{PGB: 0.002, PBG: 0.25, KGood: 0, KBad: 1},
			}},
			{A: "b", B: "dst", AB: topo.Dir{Rate: 100_000_000, Delay: sim.Millisecond}},
		},
		Flows: []topo.FlowSpec{{From: "src", To: "dst"}},
	}
	net, err := topo.Build(sched, spec, 42)
	if err != nil {
		fmt.Println(err)
		return
	}

	delivered := 0
	net.Node("dst").BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) { delivered++ }))
	// Offer a steady 4 Mbps for 2.5 s — under the nominal rate, over the
	// faded one — then let the world drain.
	src, dstAddr := net.Node("src"), net.Addr("dst")
	offered := 0
	var feed func()
	feed = func() {
		src.Handle(&netsim.Packet{Size: 1000, Kind: netsim.Data, Src: net.Addr("src"), Dst: dstAddr})
		offered++
		if offered < 1250 {
			sched.After(2*sim.Millisecond, feed)
		}
	}
	sched.After(0, feed)
	sched.RunUntil(sim.Time(4 * sim.Second))

	hop := net.Port("a", "b")
	fmt.Println("retunes:", net.Modulator("a", "b").Retunes)
	fmt.Println("conserved:", delivered+int(hop.Dropped)+int(hop.LinkDropped) == offered)
	fmt.Println("queue drops during the fade:", hop.Dropped > 0)
	fmt.Println("wire drops from the GE chain:", hop.LinkDropped > 0)
	// Output:
	// retunes: 3
	// conserved: true
	// queue drops during the fade: true
	// wire drops from the GE chain: true
}
