package topo

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ScenarioConfig carries the knobs every registered scenario understands.
// Topology-specific parameters (hop counts, rates, RTT sources) are fixed
// by the scenario itself so that a scenario name plus this config fully
// determines a run.
type ScenarioConfig struct {
	// Seed determines every random stream of the run. Scenarios derive
	// their internal streams with sim.SubSeed, so equal seeds mean
	// bit-identical worlds.
	Seed int64
	// Duration is the simulated run length (default 60 s).
	Duration sim.Duration
	// Warmup discards losses before this time (default 10 s).
	Warmup sim.Duration
	// PktSize is the transport segment size in bytes (default 1000).
	PktSize int

	// RateScale, RTTScale and LossScale are the fleet-jitter multipliers:
	// every link rate (and cross-traffic capacity), every propagation
	// delay, and the Gilbert–Elliott bad-state entry rate of the scenario
	// are scaled by these factors, so one registered scenario spans a
	// parameter neighborhood instead of a point. Zero (and exactly 1)
	// means nominal — the golden-pinned world — as an exact no-op: the
	// scale path is skipped entirely, not multiplied by 1.0. Queue limits
	// stay at their nominal sizing, so jitter perturbs the load relative
	// to buffering rather than resizing the buffers. See ScaleSpec.
	RateScale float64
	RTTScale  float64
	LossScale float64
}

// FillDefaults applies the paper-style defaults to zero fields.
func (c *ScenarioConfig) FillDefaults() {
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
}

// ScenarioResult is a scenario run's outcome: the same burstiness analysis
// the dumbbell figures produce, so every registered topology is directly
// comparable to the paper's Figures 2–4.
type ScenarioResult struct {
	// Report is the inter-loss-interval PDF analysis.
	Report *analysis.Report
	// Trace is the raw post-warmup drop trace; nil when the scenario ran
	// in streaming mode (RunIn), where events are analyzed online and
	// never retained.
	Trace *trace.Recorder
	// MeanRTT is the normalization RTT handed to the analysis.
	MeanRTT sim.Duration
	// Bursts summarizes RTT-grouped loss bursts.
	Bursts analysis.BurstStats
	// Drops is the number of recorded losses.
	Drops int
	// Events is the number of simulated events the world executed
	// (sim.Scheduler.Fired), for throughput accounting.
	Events uint64
	// Forwarded is the number of packet transmissions the world's ports
	// performed (Network.Forwarded, summed over every built network).
	// Events/Forwarded is the events-per-forwarded-packet ratio that the
	// link-service batching drives down; see ARCHITECTURE.md.
	Forwarded uint64
	// Flows is the number of traffic sources the world ran — transport
	// flows plus cross-traffic noise sources — for fleet-scale
	// accounting.
	Flows int
	// Analyzer is the streaming analyzer that observed the run's losses;
	// set only in streaming mode (RunIn). It points into the arena the
	// run executed on and is valid ONLY until that arena's next use — the
	// fleet layer absorbs it into a cross-world aggregate on the worker
	// goroutine before the arena is recycled. Everything else in the
	// result is detached and safe to retain.
	Analyzer *analysis.Streaming
	// Transfers aggregates the run's reliable-file-transfer outcomes
	// (flow completion times, goodput, retransmission totals); nil for
	// scenarios without FlowRFT flows. Unlike Analyzer it is freshly
	// allocated per run — detached and safe to retain or merge.
	Transfers *rft.TransferAgg
}

// Scenario is one registered topology/workload combination.
type Scenario struct {
	// Name is the registry key, used by `paperexp -scenario <name>`.
	Name string
	// Description is a one-line summary for catalogs.
	Description string
	// Topology summarizes the path structure (nodes/links/bottlenecks).
	Topology string
	// Headline is the measured headline burstiness (convention: a 12 s
	// seed-1 run, `go run ./examples/topologies`) rendered into the
	// generated EXPERIMENTS.md scenario catalog by
	// `docscheck -write-catalog`. Optional; the generator prints "—" when
	// empty.
	Headline string
	// Run executes one world with the given config, retaining the drop
	// trace and analyzing it with the batch pipeline — the mode the
	// golden-trace and CSV paths use. Implementations must honor the
	// determinism contract: build everything inside Run, derive all
	// randomness from cfg.Seed, and never share state across calls.
	Run func(cfg ScenarioConfig) (*ScenarioResult, error)
	// RunIn, when set, executes the same world in streaming mode on a
	// sweep worker's arena: the scheduler, packet pool and measurement
	// scratch come from the arena, losses are analyzed online, and the
	// result's Trace is nil. The report must match Run's within float
	// tolerance (TestStreamingMatchesBatch). Sweeps prefer RunIn and fall
	// back to Run.
	RunIn func(cfg ScenarioConfig, a *exp.Arena) (*ScenarioResult, error)
}

var (
	registryMu sync.Mutex
	registry   = map[string]Scenario{}
)

// Register adds a scenario to the global registry. It panics on a missing
// name or Run function and on duplicate registration — all three are
// programming errors at package init time.
func Register(s Scenario) {
	if s.Name == "" || s.Run == nil {
		panic("topo: Register requires a name and a Run function")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("topo: scenario %q registered twice", s.Name))
	}
	registry[s.Name] = s
}

// Scenarios lists the registered scenarios sorted by name.
func Scenarios() []Scenario {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	all := Scenarios()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	s, ok := registry[name]
	return s, ok
}
