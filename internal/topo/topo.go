// Package topo is the declarative topology and scenario subsystem. A Spec
// describes a network as data — named nodes, links with per-direction rate,
// propagation delay and queueing discipline, and flow endpoint pairs — and
// Build wires it onto the netsim substrate (Node/Port/Queue/Link) driven by
// one sim.Scheduler, preserving the one-world-one-goroutine determinism
// contract: a built Network belongs to the goroutine that created its
// scheduler, and identical (Spec, seed) inputs produce identical packet
// dynamics.
//
// The paper's Figure-1 dumbbell is one instance of a Spec (see DumbbellSpec
// and the Dumbbell adapter); parking-lot chains, shared-access trees and
// heterogeneous-RTT meshes are others (see internal/topo/scenarios). The
// scenario registry (Register/Scenarios/Lookup) lets experiment drivers —
// internal/core sweeps and `paperexp -scenario` — iterate every registered
// topology and produce the same analysis.Report burstiness metrics the
// paper computes on the dumbbell.
package topo

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// DefaultQueueLimit is the DropTail capacity used when a direction's
// QueueSpec leaves Limit zero: a generous access-link buffer (the same
// 4096-packet default the dumbbell builder gives access links), so that a
// Spec only needs explicit limits where losses are supposed to happen.
const DefaultQueueLimit = 4096

// Spec is a declarative topology description. It is pure data: building it
// has no side effects until Build wires it onto a scheduler.
type Spec struct {
	// Name identifies the topology in errors and catalogs.
	Name string
	// Nodes lists every network element. Order matters only for
	// deterministic tie-breaking (address auto-assignment and route
	// computation walk nodes in declaration order).
	Nodes []NodeSpec
	// Links lists the bidirectional connections between named nodes.
	Links []LinkSpec
	// Flows lists transport endpoint pairs. The builder does not create
	// transports — it validates reachability and precomputes each pair's
	// base round-trip time; callers wire TCP/TFRC/probe endpoints onto the
	// flow's nodes (e.g. with tcp.NewPairFlow).
	Flows []FlowSpec
}

// NodeSpec declares one network element (host or router).
type NodeSpec struct {
	// Name must be unique within the Spec.
	Name string
	// Addr optionally pins the node's netsim address (the dumbbell uses
	// the paper's 1/2/1000+i/2000+i scheme). Zero means auto-assign the
	// lowest unused positive address in declaration order.
	Addr int
}

// Dir describes one direction of a link: the serialization rate, the
// propagation delay, and the queue feeding the wire.
type Dir struct {
	// Rate is the link capacity in bits per second. Must be positive on
	// the A→B direction; a zero-valued reverse Dir mirrors the forward
	// one (same rate/delay/queue spec, independent queue instance).
	Rate int64
	// Delay is the one-way propagation delay.
	Delay sim.Duration
	// Queue selects the buffering discipline (DropTail by default).
	Queue QueueSpec
	// Dynamics, when non-nil, makes the direction time-varying: the
	// builder starts a netsim.LinkModulator that retunes the link's
	// rate/delay on the declared schedule (Rate and Delay above are the
	// parameters before the first retune). See DynamicsSpec.
	Dynamics *DynamicsSpec
	// Loss, when non-nil, attaches a seeded Gilbert–Elliott link-layer
	// loss process to the direction's wire. See LossSpec.
	Loss *LossSpec
}

// QueueSpec selects and sizes a queueing discipline. Precedence: Custom,
// then RED, then DropTail(Limit).
type QueueSpec struct {
	// Limit is the DropTail capacity in packets (also RED's hard limit
	// when RED is set). Zero means DefaultQueueLimit.
	Limit int
	// RED, when non-nil, makes this an early-detection queue.
	RED *REDSpec
	// Custom, when non-nil, uses a pre-built queue instance as-is. The
	// instance must not be shared between directions or links. Used to
	// carry experiment-owned queues (e.g. a seeded RED the caller also
	// inspects) into the topology.
	Custom netsim.Queue
}

// REDSpec carries the RED tunables of netsim.REDConfig in declarative
// form. The builder seeds each RED queue's random stream from the Build
// seed and the link's position, so a Spec with RED queues stays a pure
// function of (Spec, seed).
type REDSpec struct {
	// MinTh and MaxTh are the average-queue thresholds in packets.
	MinTh, MaxTh float64
	// MaxP is the drop/mark probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight (zero takes Floyd's 0.002 default).
	Wq float64
	// ECN marks ECN-capable packets instead of dropping.
	ECN bool
	// Gentle enables the gentle-RED ramp above MaxTh.
	Gentle bool
	// PersistMark, in seconds, enables the paper's persistent-ECN marking.
	PersistMark float64
	// PacketsPerSecond is the drain rate used to age the average across
	// idle periods (optional, like netsim.REDConfig.PacketsPerSecond).
	PacketsPerSecond float64
}

// FlowKind selects the transport family a flow runs. It is a parametric
// field like link rates: structural matching (Program.structuralMatch,
// structuralKey) compares flows by endpoints only, so a cached world can
// be Reset from loss-based to delay-based flows without recompiling.
type FlowKind uint8

// Transport families.
const (
	// FlowTCP is the loss-based Reno-style transport (the default).
	FlowTCP FlowKind = iota
	// FlowGCC is the delay-based GCC-style transport from internal/ratectl.
	FlowGCC
	// FlowRFT is the reliable-file-transfer application from
	// internal/apps/rft: back-to-back chunked transfers with NACK/
	// resend-entry client ACKs and cool-off-gated AIMD.
	FlowRFT

	flowKindCount // bound for validation
)

func (k FlowKind) String() string {
	switch k {
	case FlowTCP:
		return "tcp"
	case FlowGCC:
		return "gcc"
	case FlowRFT:
		return "rft"
	default:
		return "unknown"
	}
}

// FlowSpec declares a transport endpoint pair between two named nodes.
type FlowSpec struct {
	// Label is an optional human-readable tag for catalogs and errors.
	Label string
	// From and To name the sending and receiving nodes.
	From, To string
	// Kind selects the transport family (default FlowTCP).
	Kind FlowKind
}

// LinkSpec declares a bidirectional link between nodes A and B. AB
// describes the A→B direction; BA describes B→A and, when left zero
// (Rate == 0), mirrors AB with an independent queue instance.
type LinkSpec struct {
	A, B string
	AB   Dir
	BA   Dir
}

// mirrored returns the effective reverse direction: BA when set, else AB
// without the Custom queue instance (a queue must never be shared between
// two ports).
func (l LinkSpec) mirrored() Dir {
	if l.BA.Rate != 0 {
		return l.BA
	}
	d := l.AB
	d.Queue.Custom = nil
	return d
}

// validate checks the spec's internal consistency and returns a clear
// error naming the topology and the offending element.
func (s Spec) validate() error {
	name := s.Name
	if name == "" {
		name = "topology"
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("topo: %s has no nodes", name)
	}
	nodes := make(map[string]bool, len(s.Nodes))
	addrs := make(map[int]string, len(s.Nodes))
	for _, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topo: %s has an unnamed node", name)
		}
		if nodes[n.Name] {
			return fmt.Errorf("topo: %s declares node %q twice", name, n.Name)
		}
		nodes[n.Name] = true
		if n.Addr < 0 {
			return fmt.Errorf("topo: %s node %q has negative address %d", name, n.Name, n.Addr)
		}
		if n.Addr != 0 {
			if prev, dup := addrs[n.Addr]; dup {
				return fmt.Errorf("topo: %s nodes %q and %q share address %d", name, prev, n.Name, n.Addr)
			}
			addrs[n.Addr] = n.Name
		}
	}
	seen := make(map[[2]string]bool, 2*len(s.Links))
	for i, l := range s.Links {
		if !nodes[l.A] || !nodes[l.B] {
			return fmt.Errorf("topo: %s link %d connects unknown node %q–%q", name, i, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: %s link %d is a self-loop on %q", name, i, l.A)
		}
		if seen[[2]string{l.A, l.B}] || seen[[2]string{l.B, l.A}] {
			return fmt.Errorf("topo: %s has parallel links between %q and %q", name, l.A, l.B)
		}
		seen[[2]string{l.A, l.B}] = true
		if err := validateLinkParams(name, l); err != nil {
			return err
		}
	}
	for i, f := range s.Flows {
		if !nodes[f.From] || !nodes[f.To] {
			return fmt.Errorf("topo: %s flow %d references unknown node %q→%q", name, i, f.From, f.To)
		}
		if f.From == f.To {
			return fmt.Errorf("topo: %s flow %d loops on node %q", name, i, f.From)
		}
		if f.Kind >= flowKindCount {
			return fmt.Errorf("topo: %s flow %d has unknown kind %d", name, i, f.Kind)
		}
	}
	return nil
}

// validateLinkParams checks one link's parametric fields — rates, delays,
// queue limits, RED thresholds, dynamics and loss parameters. It is the
// half of validation a Reset must repeat (parameters may change between
// resets); the structural half is covered by Program.structuralMatch, so
// the reset path skips validate's map-building entirely.
func validateLinkParams(name string, l LinkSpec) error {
	if l.AB.Rate <= 0 {
		return fmt.Errorf("topo: %s link %q→%q needs a positive rate", name, l.A, l.B)
	}
	// A reverse direction is either fully absent (mirrors AB) or has
	// its own rate; a BA with delay/queue but no rate would be
	// silently discarded, hiding an intended asymmetric link.
	if l.BA.Rate == 0 &&
		(l.BA.Delay != 0 || l.BA.Queue.Limit != 0 || l.BA.Queue.RED != nil || l.BA.Queue.Custom != nil ||
			l.BA.Dynamics != nil || l.BA.Loss != nil) {
		return fmt.Errorf("topo: %s link %q→%q reverse direction sets delay/queue/dynamics but no rate", name, l.B, l.A)
	}
	for _, d := range [2]struct {
		dir  Dir
		a, b string
	}{{l.AB, l.A, l.B}, {l.mirrored(), l.B, l.A}} {
		if d.dir.Rate <= 0 {
			return fmt.Errorf("topo: %s link %q→%q needs a positive rate", name, d.a, d.b)
		}
		if d.dir.Delay < 0 {
			return fmt.Errorf("topo: %s link %q→%q has negative delay", name, d.a, d.b)
		}
		if d.dir.Queue.Limit < 0 {
			return fmt.Errorf("topo: %s link %q→%q has negative queue limit", name, d.a, d.b)
		}
		if r := d.dir.Queue.RED; r != nil && d.dir.Queue.Custom == nil {
			if r.MinTh < 0 || r.MaxTh < r.MinTh || r.MaxP <= 0 || r.MaxP > 1 {
				return fmt.Errorf("topo: %s link %q→%q has inconsistent RED thresholds", name, d.a, d.b)
			}
		}
		if dyn := d.dir.Dynamics; dyn != nil {
			if err := dyn.validate(); err != nil {
				return fmt.Errorf("topo: %s link %q→%q: %w", name, d.a, d.b, err)
			}
		}
		if ls := d.dir.Loss; ls != nil {
			if err := ls.params().Validate(); err != nil {
				return fmt.Errorf("topo: %s link %q→%q: %w", name, d.a, d.b, err)
			}
		}
	}
	return nil
}

// validateParams re-checks the parametric half of a spec against a
// structurally verified shape: everything Reset allows to change. Unlike
// validate it allocates nothing, which matters on the per-replication
// reset path.
func (s Spec) validateParams() error {
	name := s.Name
	if name == "" {
		name = "topology"
	}
	for _, l := range s.Links {
		if err := validateLinkParams(name, l); err != nil {
			return err
		}
	}
	return nil
}
