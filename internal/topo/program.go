package topo

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/lossmodel"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// progDir is one directed link of a compiled program: its endpoints, the
// compile-time Dir (instances may retune the parameters via Reset) and the
// per-direction seed tag that keys every random stream the direction owns.
type progDir struct {
	e   edge
	dir Dir
	tag int64 // dirSeed = sim.SubSeed(buildSeed, tag)
}

// progRoute is one precomputed routing-table entry: install on node src a
// route for destination address dst leaving on the directed link out.
type progRoute struct {
	src string
	dst int
	out edge
}

// Program is a compiled topology: everything about a Spec that does not
// depend on the build seed or on runtime parameters — validated structure,
// assigned addresses, directed-port creation order with per-direction seed
// tags, and the full shortest-path routing solution as a replayable install
// list. A Program is immutable after Compile and may be shared by any
// number of instantiated Networks (the addr and next maps are handed to
// instances read-only).
//
// The split exists for replication sweeps: Compile once per structural
// shape, Instantiate to stamp out a world, and Network.Reset to rewind the
// same world for the next replication without re-running validation, BFS
// or the parent-chain walks — the dominant build cost for the paper's
// multi-node scenarios.
type Program struct {
	spec   Spec
	addr   map[string]int  // immutable; shared with every instance
	dirs   []progDir       // directed-port creation order (A→B then B→A per link)
	next   map[edge]string // immutable next-hop solution; shared with instances
	routes []progRoute     // AddRoute replay list, BFS discovery order
}

// Compile validates spec and precomputes its seed-independent layout:
// addresses (explicit pins first, then lowest-unused in declaration order),
// the directed-port order with per-direction seed tags, and shortest-path
// routes with ties broken by link declaration order — the same
// deterministic solution Build has always installed. Flow reachability is
// checked at Instantiate time (with the exact error Build reports), since
// it falls out of the RTT computation.
func Compile(spec Spec) (*Program, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p := &Program{
		spec: spec,
		addr: make(map[string]int, len(spec.Nodes)),
		dirs: make([]progDir, 0, 2*len(spec.Links)),
	}

	used := make(map[int]bool, len(spec.Nodes))
	for _, ns := range spec.Nodes {
		if ns.Addr != 0 {
			p.addr[ns.Name] = ns.Addr
			used[ns.Addr] = true
		}
	}
	nextAddr := 1
	for _, ns := range spec.Nodes {
		if ns.Addr == 0 {
			for used[nextAddr] {
				nextAddr++
			}
			p.addr[ns.Name] = nextAddr
			used[nextAddr] = true
		}
	}

	for i, l := range spec.Links {
		p.dirs = append(p.dirs,
			progDir{e: edge{l.A, l.B}, dir: l.AB, tag: int64(2 * i)},
			progDir{e: edge{l.B, l.A}, dir: l.mirrored(), tag: int64(2*i + 1)},
		)
	}

	p.computeRoutes()
	return p, nil
}

// computeRoutes solves static shortest-path routing for the program:
// breadth-first per source on dense node indices, ties broken by link
// declaration order. Instead of installing into live nodes it records the
// next-hop map plus an ordered AddRoute replay list, so every Instantiate
// re-installs the identical table with map lookups only.
func (p *Program) computeRoutes() {
	nn := len(p.spec.Nodes)
	names := make([]string, nn)
	index := make(map[string]int, nn)
	for i, ns := range p.spec.Nodes {
		names[i] = ns.Name
		index[ns.Name] = i
	}

	adj := make([][]int, nn)
	for _, l := range p.spec.Links {
		a, b := index[l.A], index[l.B]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	p.next = make(map[edge]string, nn*(nn-1))
	p.routes = make([]progRoute, 0, nn*(nn-1))
	parent := make([]int, nn)
	queue := make([]int, 0, nn)
	for src := 0; src < nn; src++ {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue = append(queue[:0], src)
		for head := 0; head < len(queue); head++ {
			for _, nb := range adj[queue[head]] {
				if parent[nb] < 0 {
					parent[nb] = queue[head]
					queue = append(queue, nb)
				}
			}
		}
		srcName := names[src]
		for _, dst := range queue[1:] {
			hop := dst
			for parent[hop] != src {
				hop = parent[hop]
			}
			p.next[edge{srcName, names[dst]}] = names[hop]
			p.routes = append(p.routes, progRoute{
				src: srcName,
				dst: p.addr[names[dst]],
				out: edge{srcName, names[hop]},
			})
		}
	}
}

// Spec returns the compiled spec.
func (p *Program) Spec() Spec { return p.spec }

// Resettable reports whether instances of this program support Reset: no
// direction may use a Custom queue, since an opaque Queue cannot be
// rewound to its just-built state.
func (p *Program) Resettable() bool {
	for _, pd := range p.dirs {
		if pd.dir.Queue.Custom != nil {
			return false
		}
	}
	return true
}

// Instantiate stamps the program out onto a scheduler: fresh nodes, ports,
// queues, loss chains and modulators, seeded exactly as Build(sched,
// p.Spec(), seed) would seed them, with the precomputed routing solution
// replayed instead of recomputed. The error cases are Build's (nil
// scheduler, unroutable flow).
func (p *Program) Instantiate(sched *sim.Scheduler, seed int64) (*Network, error) {
	if sched == nil {
		return nil, fmt.Errorf("topo: Instantiate requires a scheduler")
	}
	n := &Network{
		Sched: sched,
		spec:  p.spec,
		prog:  p,
		nodes: make(map[string]*netsim.Node, len(p.spec.Nodes)),
		addr:  p.addr,
		ports: make(map[edge]*netsim.Port, len(p.dirs)),
		dirs:  make(map[edge]Dir, len(p.dirs)),
		edges: make([]edge, 0, len(p.dirs)),
		next:  p.next,
	}
	reserve := len(p.spec.Nodes) - 1
	for _, ns := range p.spec.Nodes {
		nd := netsim.NewNode(sched, p.addr[ns.Name])
		nd.ReserveRoutes(reserve)
		n.nodes[ns.Name] = nd
	}

	// Ports in compiled order (A→B then B→A per link), with the identical
	// seed derivation Build uses: the queue consumes the direction seed
	// directly and the loss chain and modulator draw SubSeed children of it.
	for _, pd := range p.dirs {
		dirSeed := sim.SubSeed(seed, pd.tag)
		q := buildQueue(pd.dir.Queue, dirSeed)
		link := netsim.NewLink(pd.dir.Rate, pd.dir.Delay, n.nodes[pd.e.to])
		port := netsim.NewPort(sched, q, link)
		if ls := pd.dir.Loss; ls != nil {
			ge := lossmodel.NewGilbertElliott(ls.params(), sim.NewRand(sim.SubSeed(dirSeed, 1)))
			port.LinkLoss = ge.Lost
			if n.ges == nil {
				n.ges = make(map[edge]*lossmodel.GilbertElliott)
			}
			n.ges[pd.e] = ge
		}
		if dyn := pd.dir.Dynamics; dyn != nil {
			if n.mods == nil {
				n.mods = make(map[edge]*netsim.LinkModulator)
			}
			n.mods[pd.e] = buildDynamics(sched, link, dyn, sim.SubSeed(dirSeed, 2))
		}
		n.ports[pd.e] = port
		n.dirs[pd.e] = pd.dir
		n.edges = append(n.edges, pd.e)
	}

	for _, r := range p.routes {
		n.nodes[r.src].AddRoute(r.dst, n.ports[r.out])
	}

	if err := n.computeRTTs(); err != nil {
		return nil, err
	}
	return n, nil
}

// computeRTTs fills the per-flow base RTTs from the current direction
// delays, doubling as the flow reachability check. Shared by Instantiate
// and Reset; the slice is reused across resets.
func (n *Network) computeRTTs() error {
	flows := n.spec.Flows
	if cap(n.rtts) >= len(flows) {
		n.rtts = n.rtts[:len(flows)]
	} else {
		n.rtts = make([]sim.Duration, len(flows))
	}
	for i, f := range flows {
		fwd, err := n.pathDelay(f.From, f.To)
		if err != nil {
			return fmt.Errorf("topo: %s flow %d (%s): %w", n.spec.Name, i, flowName(f), err)
		}
		rev, err := n.pathDelay(f.To, f.From)
		if err != nil {
			return fmt.Errorf("topo: %s flow %d (%s): %w", n.spec.Name, i, flowName(f), err)
		}
		n.rtts[i] = fwd + rev
	}
	return nil
}

// Reset rewinds the network to the state Build(sched, spec, seed) would
// produce on a freshly reset scheduler, without reallocating nodes, ports
// or queues and without recomputing routes. The caller must reset the
// owning scheduler first (pending events are cancelled wholesale there;
// packets riding scheduler events as delivery arguments are abandoned to
// the garbage collector, while queued packets recycle into the ports'
// pool).
//
// spec must match the compiled program structurally — same nodes (names
// and address pins), same links (endpoints, order and queue discipline
// kind per direction, Custom queues excluded entirely) and same flow
// endpoint pairs. Everything parametric may differ between resets: rates,
// delays, queue limits, RED tunables, loss parameters and presence,
// dynamics, flow labels. That asymmetry is what replication sweeps need —
// each replication perturbs delays or buffers but never the shape.
func (n *Network) Reset(spec Spec, seed int64) error {
	p := n.prog
	if p == nil {
		return fmt.Errorf("topo: network has no compiled program")
	}
	// Structure first (allocation-free against the compiled shape), then
	// only the parametric half of validation — the structural half is
	// implied by matching the already-validated compiled spec.
	if err := p.structuralMatch(spec); err != nil {
		return err
	}
	if err := spec.validateParams(); err != nil {
		return err
	}
	n.spec = spec

	// Rewind each direction in creation order, reproducing Instantiate's
	// seed derivation and event ordering: the queue reseeds on the
	// direction seed, the loss chain on SubSeed(dirSeed, 1), and the
	// modulator — whose Start is the only event scheduled during a build —
	// is recreated on SubSeed(dirSeed, 2) after the link's rate and delay
	// are restored, so a reset world's event sequence numbers match a
	// fresh build's exactly.
	di := 0
	for _, l := range spec.Links {
		for _, d := range [2]Dir{l.AB, l.mirrored()} {
			pd := p.dirs[di]
			di++
			e := pd.e
			dirSeed := sim.SubSeed(seed, pd.tag)
			port := n.ports[e]
			port.Reset()
			limit := d.Queue.Limit
			if limit <= 0 {
				limit = DefaultQueueLimit
			}
			if r := d.Queue.RED; r != nil {
				port.Queue.(*netsim.RED).Reset(redConfig(r, limit), dirSeed)
			} else {
				port.Queue.(*netsim.DropTail).Reset(limit)
			}
			port.Link.Rate = d.Rate
			port.Link.Delay = d.Delay
			if ls := d.Loss; ls != nil {
				geSeed := sim.SubSeed(dirSeed, 1)
				ge := n.ges[e]
				if ge != nil {
					ge.Reset(ls.params(), geSeed)
				} else {
					ge = lossmodel.NewGilbertElliott(ls.params(), sim.NewRand(geSeed))
					if n.ges == nil {
						n.ges = make(map[edge]*lossmodel.GilbertElliott)
					}
					n.ges[e] = ge
				}
				port.LinkLoss = ge.Lost
			} else {
				delete(n.ges, e)
			}
			if dyn := d.Dynamics; dyn != nil {
				if n.mods == nil {
					n.mods = make(map[edge]*netsim.LinkModulator)
				}
				n.mods[e] = buildDynamics(n.Sched, port.Link, dyn, sim.SubSeed(dirSeed, 2))
			} else {
				delete(n.mods, e)
			}
			n.dirs[e] = d
		}
	}

	for _, ns := range spec.Nodes {
		n.nodes[ns.Name].Reset()
	}
	return n.computeRTTs()
}

// structuralMatch reports whether spec shares the program's structure: the
// parts Reset cannot change because they are baked into allocated objects
// (node identities and addresses, link endpoints and order, queue
// discipline types) or into the precomputed routing solution (node set,
// adjacency, flow endpoints).
func (p *Program) structuralMatch(spec Spec) error {
	old := p.spec
	if len(spec.Nodes) != len(old.Nodes) {
		return fmt.Errorf("topo: reset: %d nodes, program has %d", len(spec.Nodes), len(old.Nodes))
	}
	for i, ns := range spec.Nodes {
		if ns != old.Nodes[i] {
			return fmt.Errorf("topo: reset: node %d is %+v, program has %+v", i, ns, old.Nodes[i])
		}
	}
	if len(spec.Links) != len(old.Links) {
		return fmt.Errorf("topo: reset: %d links, program has %d", len(spec.Links), len(old.Links))
	}
	for i, l := range spec.Links {
		ol := old.Links[i]
		if l.A != ol.A || l.B != ol.B {
			return fmt.Errorf("topo: reset: link %d is %s—%s, program has %s—%s", i, l.A, l.B, ol.A, ol.B)
		}
		nd := [2]Dir{l.AB, l.mirrored()}
		od := [2]Dir{ol.AB, ol.mirrored()}
		for j := range nd {
			if nd[j].Queue.Custom != nil || od[j].Queue.Custom != nil {
				return fmt.Errorf("topo: reset: link %d has a Custom queue; custom disciplines cannot be rewound", i)
			}
			if (nd[j].Queue.RED != nil) != (od[j].Queue.RED != nil) {
				return fmt.Errorf("topo: reset: link %d changes queue discipline kind", i)
			}
		}
	}
	if len(spec.Flows) != len(old.Flows) {
		return fmt.Errorf("topo: reset: %d flows, program has %d", len(spec.Flows), len(old.Flows))
	}
	for i, f := range spec.Flows {
		of := old.Flows[i]
		if f.From != of.From || f.To != of.To {
			return fmt.Errorf("topo: reset: flow %d is %s→%s, program has %s→%s", i, f.From, f.To, of.From, of.To)
		}
	}
	return nil
}

// structuralKey fingerprints the parts of a spec that Reset requires to
// match — exactly the fields structuralMatch compares. Two specs with the
// same key describe interchangeable world shapes (possibly with different
// parameters), so the key indexes the per-arena world cache.
func structuralKey(spec Spec) string {
	var b strings.Builder
	b.Grow(32 * (len(spec.Nodes) + len(spec.Links) + len(spec.Flows)))
	b.WriteString(spec.Name)
	for _, ns := range spec.Nodes {
		b.WriteByte(';')
		b.WriteString(ns.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(ns.Addr))
	}
	b.WriteString("|L")
	for _, l := range spec.Links {
		b.WriteByte(';')
		b.WriteString(l.A)
		b.WriteByte('~')
		b.WriteString(l.B)
		for _, d := range [2]Dir{l.AB, l.mirrored()} {
			switch {
			case d.Queue.Custom != nil:
				b.WriteByte('c')
			case d.Queue.RED != nil:
				b.WriteByte('r')
			default:
				b.WriteByte('d')
			}
		}
	}
	b.WriteString("|F")
	for _, f := range spec.Flows {
		b.WriteByte(';')
		b.WriteString(f.From)
		b.WriteByte('>')
		b.WriteString(f.To)
	}
	return b.String()
}

// NetworkIn returns a world for spec on the arena's terms: with a nil
// arena it is exactly Build; with an arena it keeps one compiled-and-
// instantiated Network per structural shape in the arena's scratch and
// Resets it for each subsequent run, so a replication sweep pays
// validation, BFS and allocation once per worker instead of once per
// replication. sched must be the arena's (reset) scheduler. Worlds whose
// spec uses Custom queues are never cached — they fall back to Build
// every time, since an opaque queue cannot be rewound.
func NetworkIn(a *exp.Arena, sched *sim.Scheduler, spec Spec, seed int64) (*Network, error) {
	if a == nil {
		return Build(sched, spec, seed)
	}
	key := "topo/" + structuralKey(spec)
	if v := a.Scratch(key); v != nil {
		if net, ok := v.(*Network); ok && net.Sched == sched {
			if err := net.Reset(spec, seed); err == nil {
				return net, nil
			}
		}
	}
	net, err := Build(sched, spec, seed)
	if err != nil {
		return nil, err
	}
	if net.prog.Resettable() {
		a.SetScratch(key, net)
	}
	return net, nil
}
