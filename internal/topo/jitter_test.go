package topo

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func jitterSpec() Spec {
	return Spec{
		Name:  "jitter",
		Nodes: []NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Links: []LinkSpec{
			{
				A: "a", B: "b",
				AB: Dir{
					Rate:  10_000_000,
					Delay: 20 * sim.Millisecond,
					Queue: QueueSpec{Limit: 50},
					Dynamics: &DynamicsSpec{
						Steps: []netsim.RateStep{
							{At: 0, Rate: 10_000_000},
							{At: 5 * sim.Second, Rate: 4_000_000, Delay: 30 * sim.Millisecond},
							{At: 8 * sim.Second}, // zero fields keep current values
						},
						Loop: 10 * sim.Second,
					},
					Loss: &LossSpec{PGB: 0.01, PBG: 0.3, KGood: 0.001, KBad: 0.5},
				},
				// BA zero: mirrors AB.
			},
			{
				A: "b", B: "c",
				AB: Dir{
					Rate:  30_000_000,
					Delay: 5 * sim.Millisecond,
					Dynamics: &DynamicsSpec{
						Oscillate: &OscillateSpec{
							Min: 8_000_000, Max: 30_000_000,
							Period: 4 * sim.Second, Interval: 100 * sim.Millisecond,
						},
					},
				},
				BA: Dir{
					Rate:  16_000_000,
					Delay: 40 * sim.Millisecond,
					Dynamics: &DynamicsSpec{
						Walk: &WalkSpec{
							Min: 2_000_000, Max: 16_000_000,
							Factor: 1.3, Interval: 200 * sim.Millisecond,
						},
					},
				},
			},
		},
		Flows: []FlowSpec{{From: "a", To: "c"}},
	}
}

// TestScaleSpecNominalIsIdentity pins the exact no-op contract: all-nominal
// scales return the input Spec unchanged, sharing the same Links backing
// array (no copy, no float round trip).
func TestScaleSpecNominalIsIdentity(t *testing.T) {
	spec := jitterSpec()
	out := ScaleSpec(spec, 1, 1, 1)
	if !reflect.DeepEqual(out, spec) {
		t.Fatal("nominal ScaleSpec changed the spec")
	}
	if &out.Links[0] != &spec.Links[0] {
		t.Fatal("nominal ScaleSpec copied the links slice")
	}
	if out.Links[0].AB.Dynamics != spec.Links[0].AB.Dynamics {
		t.Fatal("nominal ScaleSpec copied a dynamics program")
	}

	cfg := ScenarioConfig{}
	if cfg.Jittered() {
		t.Fatal("zero config reports jittered")
	}
	r, rt, l := cfg.EffScales()
	if r != 1 || rt != 1 || l != 1 {
		t.Fatalf("zero config scales = %v/%v/%v, want 1/1/1", r, rt, l)
	}
	if (ScenarioConfig{RateScale: 1.25}).Jittered() != true {
		t.Fatal("RateScale 1.25 not reported jittered")
	}
}

// TestScaleSpecScalesParametrics pins what jitter touches: rates (incl.
// dynamics schedules and bounds) by rate, delays by rtt, the GE Good→Bad
// entry by loss — and what it must not: queue limits, step offsets, loop
// period, the loss chain's dwell parameters, zero mirror directions.
func TestScaleSpecScalesParametrics(t *testing.T) {
	spec := jitterSpec()
	out := ScaleSpec(spec, 0.5, 2, 3)

	ab := out.Links[0].AB
	if ab.Rate != 5_000_000 {
		t.Fatalf("rate = %d, want 5000000", ab.Rate)
	}
	if ab.Delay != 40*sim.Millisecond {
		t.Fatalf("delay = %v, want 40ms", ab.Delay)
	}
	if ab.Queue.Limit != 50 {
		t.Fatalf("queue limit = %d, want untouched 50", ab.Queue.Limit)
	}
	steps := ab.Dynamics.Steps
	if steps[1].Rate != 2_000_000 || steps[1].Delay != 60*sim.Millisecond {
		t.Fatalf("step 1 = %+v, want rate 2000000 delay 60ms", steps[1])
	}
	if steps[1].At != 5*sim.Second || ab.Dynamics.Loop != 10*sim.Second {
		t.Fatal("step offsets / loop period must stay on the nominal clock")
	}
	if steps[2].Rate != 0 || steps[2].Delay != 0 {
		t.Fatalf("zero step fields must stay zero (keep-current), got %+v", steps[2])
	}
	ls := ab.Loss
	if ls.PGB != 0.03 {
		t.Fatalf("PGB = %v, want 0.03", ls.PGB)
	}
	if ls.PBG != 0.3 || ls.KGood != 0.001 || ls.KBad != 0.5 {
		t.Fatalf("loss dwell/per-state params changed: %+v", *ls)
	}
	if out.Links[0].BA != (Dir{}) {
		t.Fatal("zero mirror direction must stay zero")
	}

	osc := out.Links[1].AB.Dynamics.Oscillate
	if osc.Min != 4_000_000 || osc.Max != 15_000_000 {
		t.Fatalf("oscillate bounds = %d..%d, want 4000000..15000000", osc.Min, osc.Max)
	}
	if osc.Period != 4*sim.Second || osc.Interval != 100*sim.Millisecond {
		t.Fatal("oscillate timing must stay nominal")
	}
	walk := out.Links[1].BA.Dynamics.Walk
	if walk.Min != 1_000_000 || walk.Max != 8_000_000 {
		t.Fatalf("walk bounds = %d..%d, want 1000000..8000000", walk.Min, walk.Max)
	}

	// Saturation: probabilities clamp at 1, rates at 1 bit/s.
	if p := scaleProb(0.6, 3); p != 1 {
		t.Fatalf("scaleProb(0.6, 3) = %v, want clamp to 1", p)
	}
	if r := ScaleRate(10, 0.001); r != 1 {
		t.Fatalf("ScaleRate(10, 0.001) = %d, want clamp to 1", r)
	}
}

// TestScaleSpecDoesNotMutateInput pins the deep copy: the caller's spec —
// including nested dynamics and loss programs — is untouched, so cached
// package-level specs survive jittered runs.
func TestScaleSpecDoesNotMutateInput(t *testing.T) {
	spec := jitterSpec()
	want := jitterSpec()
	out := ScaleSpec(spec, 1.5, 0.5, 2)
	if !reflect.DeepEqual(spec, want) {
		t.Fatal("ScaleSpec mutated its input spec")
	}
	if out.Links[0].AB.Dynamics == spec.Links[0].AB.Dynamics {
		t.Fatal("scaled spec aliases the input's dynamics program")
	}
	if out.Links[0].AB.Loss == spec.Links[0].AB.Loss {
		t.Fatal("scaled spec aliases the input's loss program")
	}
}
