package topo

import (
	"fmt"
	"strconv"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Dumbbell node-naming scheme used by DumbbellSpec.
const (
	leftRouterName  = "L"
	rightRouterName = "R"
)

func senderName(i int) string   { return fmt.Sprintf("s%d", i) }
func receiverName(i int) string { return fmt.Sprintf("r%d", i) }

// DumbbellSpec expresses netsim.DumbbellConfig — the paper's Figure-1
// topology — as a declarative Spec: the generic builder then produces a
// world with exactly the wiring netsim.NewDumbbell hand-assembles (same
// addresses, queue sizes, delays and routes), which is what lets the
// dumbbell figures run through the topology subsystem unchanged.
func DumbbellSpec(cfg netsim.DumbbellConfig) Spec {
	s := Spec{Name: "dumbbell"}
	s.Nodes = append(s.Nodes,
		NodeSpec{Name: leftRouterName, Addr: 1},
		NodeSpec{Name: rightRouterName, Addr: 2},
	)

	fwd := QueueSpec{Custom: cfg.Queue, Limit: cfg.Buffer}
	rev := QueueSpec{Custom: cfg.ReverseQueue, Limit: cfg.Buffer}
	if rev.Custom == nil && rev.Limit < 1024 {
		// Generous reverse buffer: ACKs should not drop unless asked,
		// mirroring netsim.NewDumbbell.
		rev.Limit = 1024
	}
	s.Links = append(s.Links, LinkSpec{
		A: leftRouterName, B: rightRouterName,
		AB: Dir{Rate: cfg.BottleneckRate, Delay: cfg.BottleneckDelay, Queue: fwd},
		BA: Dir{Rate: cfg.BottleneckRate, Delay: cfg.BottleneckDelay, Queue: rev},
	})

	for i, delay := range cfg.AccessDelays {
		half := delay / 2
		s.Nodes = append(s.Nodes,
			NodeSpec{Name: senderName(i), Addr: netsim.SenderAddr(i)},
			NodeSpec{Name: receiverName(i), Addr: netsim.ReceiverAddr(i)},
		)
		access := Dir{Rate: cfg.AccessRate, Delay: half, Queue: QueueSpec{Limit: DefaultQueueLimit}}
		s.Links = append(s.Links,
			LinkSpec{A: senderName(i), B: leftRouterName, AB: access},
			LinkSpec{A: rightRouterName, B: receiverName(i), AB: access},
		)
		s.Flows = append(s.Flows, FlowSpec{
			Label: fmt.Sprintf("pair%d", i),
			From:  senderName(i),
			To:    receiverName(i),
		})
	}
	return s
}

// Dumbbell is the topo-built dumbbell with the accessor surface the
// experiment runners use: the shared bottleneck ports for drop observation
// and noise injection, the routers for sink binding, and per-pair endpoint
// nodes for transport wiring.
type Dumbbell struct {
	// Net is the underlying generic network.
	Net *Network
	// Sched is the world's scheduler.
	Sched *sim.Scheduler

	// LeftRouter aggregates senders and owns the forward bottleneck port;
	// RightRouter aggregates receivers and owns the reverse one.
	LeftRouter  *netsim.Node
	RightRouter *netsim.Node

	// Forward is the left→right bottleneck port (where data-direction
	// drops happen); Reverse is right→left.
	Forward *netsim.Port
	Reverse *netsim.Port
}

// NewDumbbell builds DumbbellSpec(cfg) onto sched through the generic
// builder. It panics on an invalid config, matching netsim.NewDumbbell's
// contract (a malformed dumbbell is a programming error in the caller).
func NewDumbbell(sched *sim.Scheduler, cfg netsim.DumbbellConfig) *Dumbbell {
	return NewDumbbellIn(nil, sched, cfg)
}

// NewDumbbellIn is NewDumbbell through the arena's world cache (see
// NetworkIn): with a non-nil arena the dumbbell's compiled program and
// instantiated world are reused across runs, reset instead of rebuilt.
// The Spec itself is cached per pair count too, retuned in place instead
// of re-derived — a dumbbell's structure is a pure function of how many
// pairs it has, and rebuilding the node-name strings and link slices was
// most of what a warm run still paid. Dumbbells with Custom queues are
// never cached (neither spec nor world).
func NewDumbbellIn(a *exp.Arena, sched *sim.Scheduler, cfg netsim.DumbbellConfig) *Dumbbell {
	if cfg.Buffer <= 0 && cfg.Queue == nil {
		panic("topo: dumbbell needs a buffer size or an explicit queue")
	}
	if len(cfg.AccessDelays) == 0 {
		panic("topo: dumbbell needs at least one endpoint pair")
	}
	var spec Spec
	if a != nil && cfg.Queue == nil && cfg.ReverseQueue == nil {
		key := "topo/dumbspec/" + strconv.Itoa(len(cfg.AccessDelays))
		if v, ok := a.Scratch(key).(*Spec); ok {
			retuneDumbbellSpec(v, cfg)
			spec = *v
		} else {
			spec = DumbbellSpec(cfg)
			s := spec
			a.SetScratch(key, &s)
		}
	} else {
		spec = DumbbellSpec(cfg)
	}
	net, err := NetworkIn(a, sched, spec, 0)
	if err != nil {
		panic(fmt.Sprintf("topo: dumbbell spec did not build: %v", err))
	}
	return WrapDumbbell(net)
}

// retuneDumbbellSpec rewrites the parametric fields of a cached dumbbell
// spec in place to match cfg, exactly as DumbbellSpec would set them:
// bottleneck rate/delay/buffer, the generous reverse buffer, and the
// per-pair access rate and delays. The structure — nodes, link endpoints
// and order, flow pairs, queue discipline kinds — is untouched, which is
// precisely the invariant Network.Reset requires. The caller guarantees
// cfg has no Custom queues and the same pair count the spec was built
// with. The spec's slices may be aliased by the cached world
// (Network.Reset re-adopts the spec each run), so this never reslices,
// only overwrites Dir values.
func retuneDumbbellSpec(s *Spec, cfg netsim.DumbbellConfig) {
	rev := QueueSpec{Limit: cfg.Buffer}
	if rev.Limit < 1024 {
		rev.Limit = 1024
	}
	s.Links[0].AB = Dir{Rate: cfg.BottleneckRate, Delay: cfg.BottleneckDelay, Queue: QueueSpec{Limit: cfg.Buffer}}
	s.Links[0].BA = Dir{Rate: cfg.BottleneckRate, Delay: cfg.BottleneckDelay, Queue: rev}
	for i, delay := range cfg.AccessDelays {
		access := Dir{Rate: cfg.AccessRate, Delay: delay / 2, Queue: QueueSpec{Limit: DefaultQueueLimit}}
		s.Links[1+2*i].AB = access
		s.Links[2+2*i].AB = access
	}
}

// WrapDumbbell wraps a network built from a DumbbellSpec in the dumbbell
// accessor surface. It panics if the network lacks the dumbbell's router
// nodes.
func WrapDumbbell(net *Network) *Dumbbell {
	return &Dumbbell{
		Net:         net,
		Sched:       net.Sched,
		LeftRouter:  net.Node(leftRouterName),
		RightRouter: net.Node(rightRouterName),
		Forward:     net.Port(leftRouterName, rightRouterName),
		Reverse:     net.Port(rightRouterName, leftRouterName),
	}
}

// AttachPool installs the world's packet freelist on every port of the
// dumbbell (see Network.AttachPool).
func (d *Dumbbell) AttachPool(pool *netsim.PacketPool) { d.Net.AttachPool(pool) }

// NumPairs reports how many endpoint pairs the dumbbell has.
func (d *Dumbbell) NumPairs() int { return d.Net.NumFlows() }

// SenderNode returns the sender-side endpoint node for pair i.
func (d *Dumbbell) SenderNode(i int) *netsim.Node { return d.Net.FlowSender(i) }

// ReceiverNode returns the receiver-side endpoint node for pair i.
func (d *Dumbbell) ReceiverNode(i int) *netsim.Node { return d.Net.FlowReceiver(i) }

// PairRTT reports the base round-trip time of pair i.
func (d *Dumbbell) PairRTT(i int) sim.Duration { return d.Net.FlowRTT(i) }
