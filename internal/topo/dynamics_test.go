package topo_test

import (
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// dynSpec is a minimal source → bottleneck → sink chain whose middle hop
// carries the given dynamics and loss declarations.
func dynSpec(dyn *topo.DynamicsSpec, loss *topo.LossSpec) topo.Spec {
	return topo.Spec{
		Name:  "dyn",
		Nodes: []topo.NodeSpec{{Name: "src"}, {Name: "a"}, {Name: "b"}, {Name: "dst"}},
		Links: []topo.LinkSpec{
			{A: "src", B: "a", AB: topo.Dir{Rate: 100_000_000, Delay: sim.Millisecond}},
			{A: "a", B: "b", AB: topo.Dir{
				Rate: 10_000_000, Delay: 2 * sim.Millisecond,
				Queue:    topo.QueueSpec{Limit: 16},
				Dynamics: dyn,
				Loss:     loss,
			}},
			{A: "b", B: "dst", AB: topo.Dir{Rate: 100_000_000, Delay: sim.Millisecond}},
		},
		Flows: []topo.FlowSpec{{From: "src", To: "dst"}},
	}
}

func TestDynamicsValidation(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		dyn  *topo.DynamicsSpec
		loss *topo.LossSpec
		want string
	}{
		{"empty dynamics", &topo.DynamicsSpec{}, nil, "exactly one"},
		{"two programs", &topo.DynamicsSpec{
			Steps:     []netsim.RateStep{{At: 0, Rate: 1}},
			Oscillate: &topo.OscillateSpec{Min: 1, Max: 2, Period: sim.Second, Interval: sim.Second},
		}, nil, "exactly one"},
		{"unsorted steps", &topo.DynamicsSpec{
			Steps: []netsim.RateStep{{At: sim.Second}, {At: sim.Second}},
		}, nil, "not after"},
		{"short loop", &topo.DynamicsSpec{
			Steps: []netsim.RateStep{{At: 2 * sim.Second, Rate: 1}},
			Loop:  sim.Second,
		}, nil, "loop"},
		{"loop without steps", &topo.DynamicsSpec{
			Oscillate: &topo.OscillateSpec{Min: 1, Max: 2, Period: sim.Second, Interval: sim.Second},
			Loop:      sim.Second,
		}, nil, "Loop only applies"},
		{"oscillate bounds", &topo.DynamicsSpec{
			Oscillate: &topo.OscillateSpec{Min: 5, Max: 2, Period: sim.Second, Interval: sim.Second},
		}, nil, "bounds"},
		{"oscillate period", &topo.DynamicsSpec{
			Oscillate: &topo.OscillateSpec{Min: 1, Max: 2, Interval: sim.Second},
		}, nil, "period"},
		{"walk factor", &topo.DynamicsSpec{
			Walk: &topo.WalkSpec{Min: 1, Max: 2, Factor: 1, Interval: sim.Second},
		}, nil, "factor"},
		{"walk interval", &topo.DynamicsSpec{
			Walk: &topo.WalkSpec{Min: 1, Max: 2, Factor: 1.5},
		}, nil, "interval"},
		{"loss params", nil, &topo.LossSpec{PGB: 1.5}, "outside [0,1]"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := topo.Build(sim.NewScheduler(), dynSpec(tc.dyn, tc.loss), 1)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v; want substring %q", err, tc.want)
			}
		})
	}
}

// TestMirroredReverseInheritsDynamics: a zero BA mirrors the forward
// dynamics/loss declarations with independent instances.
func TestMirroredReverseInheritsDynamics(t *testing.T) {
	t.Parallel()
	spec := topo.Spec{
		Name:  "mirror",
		Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
		Links: []topo.LinkSpec{{A: "a", B: "b", AB: topo.Dir{
			Rate: 1_000_000, Delay: sim.Millisecond,
			Dynamics: &topo.DynamicsSpec{Oscillate: &topo.OscillateSpec{
				Min: 500_000, Max: 2_000_000, Period: sim.Second, Interval: 100 * sim.Millisecond,
			}},
			Loss: topo.BernoulliLoss(0.1),
		}}},
	}
	sched := sim.NewScheduler()
	net, err := topo.Build(sched, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := net.Modulator("a", "b"), net.Modulator("b", "a")
	if fwd == nil || rev == nil {
		t.Fatal("mirrored direction lost its modulator")
	}
	if fwd == rev || fwd.Link() == rev.Link() {
		t.Fatal("directions share a modulator or link instance")
	}
	if net.Port("a", "b").LinkLoss == nil || net.Port("b", "a").LinkLoss == nil {
		t.Fatal("mirrored direction lost its loss process")
	}
}

// TestReverseDynamicsWithoutRateRejected: declaring BA dynamics/loss with
// no BA rate is the silently-discarded-intent error the validator names.
func TestReverseDynamicsWithoutRateRejected(t *testing.T) {
	t.Parallel()
	spec := topo.Spec{
		Name:  "bad-reverse",
		Nodes: []topo.NodeSpec{{Name: "a"}, {Name: "b"}},
		Links: []topo.LinkSpec{{A: "a", B: "b",
			AB: topo.Dir{Rate: 1_000_000},
			BA: topo.Dir{Loss: topo.BernoulliLoss(0.1)},
		}},
	}
	_, err := topo.Build(sim.NewScheduler(), spec, 1)
	if err == nil || !strings.Contains(err.Error(), "no rate") {
		t.Fatalf("err = %v; want the reverse-direction error", err)
	}
}

// runDynWorld builds the dynamic chain, floods the bottleneck with a
// deterministic arrival process, and returns the bottleneck port after
// dur of simulated time.
func runDynWorld(t *testing.T, seed int64, dyn *topo.DynamicsSpec, loss *topo.LossSpec, dur sim.Duration) *netsim.Port {
	t.Helper()
	sched := sim.NewScheduler()
	net, err := topo.Build(sched, dynSpec(dyn, loss), seed)
	if err != nil {
		t.Fatal(err)
	}
	net.Node("dst").BindDefault(netsim.HandlerFunc(func(p *netsim.Packet) {}))
	src, dstAddr := net.Node("src"), net.Addr("dst")
	var feed func()
	feed = func() {
		p := &netsim.Packet{Size: 1000, Kind: netsim.Data, Src: net.Addr("src"), Dst: dstAddr}
		src.Handle(p)
		sched.After(500*sim.Microsecond, feed) // 16 Mbps offered at a 10 Mbps hop
	}
	sched.After(0, feed)
	sched.RunUntil(sim.Time(dur))
	return net.Port("a", "b")
}

// TestBuildSeedsDynamicsDeterministically: identical (spec, seed) builds
// produce identical modulated worlds; a different seed moves the
// random-walk and loss-chain streams.
func TestBuildSeedsDynamicsDeterministically(t *testing.T) {
	t.Parallel()
	dyn := &topo.DynamicsSpec{Walk: &topo.WalkSpec{
		Min: 1_000_000, Max: 20_000_000, Factor: 1.5, Interval: 50 * sim.Millisecond,
	}}
	loss := &topo.LossSpec{PGB: 0.01, PBG: 0.2, KGood: 0, KBad: 1}

	type counters struct{ fwd, drop, wire uint64 }
	run := func(seed int64) counters {
		p := runDynWorld(t, seed, dyn, loss, 5*sim.Second)
		return counters{p.Forwarded(), p.Dropped, p.LinkDropped}
	}
	a, b := run(3), run(3)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.wire == 0 || a.drop == 0 {
		t.Fatalf("world not exercising both loss kinds: %+v", a)
	}
	if c := run(4); c == a {
		t.Fatalf("different seeds produced identical dynamics: %+v", c)
	}
}

// TestModulatorAccessor: present on dynamic directions, nil on static
// ones, panics on unknown links.
func TestModulatorAccessor(t *testing.T) {
	t.Parallel()
	dyn := &topo.DynamicsSpec{Steps: []netsim.RateStep{{At: sim.Second, Rate: 1_000_000}}}
	net, err := topo.Build(sim.NewScheduler(), dynSpec(dyn, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.Modulator("a", "b") == nil {
		t.Fatal("dynamic direction has no modulator")
	}
	if net.Modulator("src", "a") != nil {
		t.Fatal("static direction reports a modulator")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown link did not panic")
		}
	}()
	net.Modulator("nope", "a")
}

func TestParseBandwidthTrace(t *testing.T) {
	t.Parallel()
	steps, err := topo.ParseBandwidthTrace([]byte(`
# comment line
0 16.0
1.5 2.4   # inline comment
3 24
`))
	if err != nil {
		t.Fatal(err)
	}
	want := []netsim.RateStep{
		{At: 0, Rate: 16_000_000},
		{At: 1500 * sim.Millisecond, Rate: 2_400_000},
		{At: 3 * sim.Second, Rate: 24_000_000},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %+v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}

	for name, in := range map[string]string{
		"empty":          "# nothing\n",
		"bad fields":     "0 16 extra\n",
		"bad time":       "x 16\n",
		"bad rate":       "0 -3\n",
		"zero rate":      "0 0\n",
		"non-increasing": "1 16\n1 12\n",
	} {
		if _, err := topo.ParseBandwidthTrace([]byte(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestBernoulliLossHelper: the independent-loss convenience produces a
// state-blind chain.
func TestBernoulliLossHelper(t *testing.T) {
	t.Parallel()
	l := topo.BernoulliLoss(0.25)
	if l.KGood != 0.25 || l.KBad != 0.25 || l.PGB != 0 || l.PBG != 0 {
		t.Fatalf("BernoulliLoss = %+v", *l)
	}
}
