package topo

import (
	"fmt"

	"repro/internal/lossmodel"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// edge identifies one directed link by node names.
type edge struct{ from, to string }

// PortInfo pairs a directed port with the node names it connects, for
// iteration over a Network's links (e.g. to observe drops everywhere).
type PortInfo struct {
	From, To string
	Port     *netsim.Port
}

// Network is a built topology: the netsim nodes and ports of a Spec wired
// onto one scheduler, with static shortest-path routes installed and each
// flow's base RTT precomputed. A Network is confined to the goroutine that
// owns its scheduler, like every other simulated component.
type Network struct {
	// Sched is the scheduler every element of this world runs on.
	Sched *sim.Scheduler

	spec  Spec
	nodes map[string]*netsim.Node
	addr  map[string]int
	ports map[edge]*netsim.Port
	dirs  map[edge]Dir
	mods  map[edge]*netsim.LinkModulator // directions with Dynamics, started
	edges []edge                         // directed-port creation order
	next  map[edge]string                // (src,dst) -> next-hop node name
	rtts  []sim.Duration                 // per-flow base RTT
}

// Build wires spec onto sched. RED queues declared in the spec draw their
// random streams from seed (via sim.SubSeed keyed by link position), so a
// built world is a pure function of (spec, seed). It returns an error —
// not a panic — on an inconsistent spec, a disconnected flow pair, or an
// unroutable topology, naming the offending element.
func Build(sched *sim.Scheduler, spec Spec, seed int64) (*Network, error) {
	if sched == nil {
		return nil, fmt.Errorf("topo: Build requires a scheduler")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}

	n := &Network{
		Sched: sched,
		spec:  spec,
		nodes: make(map[string]*netsim.Node, len(spec.Nodes)),
		addr:  make(map[string]int, len(spec.Nodes)),
		ports: make(map[edge]*netsim.Port, 2*len(spec.Links)),
		dirs:  make(map[edge]Dir, 2*len(spec.Links)),
		// Every reachable (src, dst) pair gets a next-hop entry; sizing
		// the map up front keeps route installation growth-free.
		next: make(map[edge]string, len(spec.Nodes)*(len(spec.Nodes)-1)),
	}

	// Addresses: explicit pins first, then the lowest unused positive
	// address per remaining node, in declaration order.
	used := make(map[int]bool, len(spec.Nodes))
	for _, ns := range spec.Nodes {
		if ns.Addr != 0 {
			n.addr[ns.Name] = ns.Addr
			used[ns.Addr] = true
		}
	}
	nextAddr := 1
	for _, ns := range spec.Nodes {
		if ns.Addr == 0 {
			for used[nextAddr] {
				nextAddr++
			}
			n.addr[ns.Name] = nextAddr
			used[nextAddr] = true
		}
		n.nodes[ns.Name] = netsim.NewNode(sched, n.addr[ns.Name])
	}

	// Ports: one per direction, in link order (A→B then B→A), each with
	// its own queue, loss-process and modulator instance. Every direction
	// derives one position seed; the queue consumes it directly (the
	// pre-dynamics seeding, kept bit-identical) and the loss chain and
	// modulator draw SubSeed children of it, so adding dynamics to one
	// link never perturbs another link's streams.
	for i, l := range spec.Links {
		ab, ba := l.AB, l.mirrored()
		for _, d := range []struct {
			e   edge
			dir Dir
			tag int64
		}{
			{edge{l.A, l.B}, ab, int64(2 * i)},
			{edge{l.B, l.A}, ba, int64(2*i + 1)},
		} {
			dirSeed := sim.SubSeed(seed, d.tag)
			q := buildQueue(d.dir.Queue, dirSeed)
			link := netsim.NewLink(d.dir.Rate, d.dir.Delay, n.nodes[d.e.to])
			port := netsim.NewPort(sched, q, link)
			if ls := d.dir.Loss; ls != nil {
				ge := lossmodel.NewGilbertElliott(ls.params(), sim.NewRand(sim.SubSeed(dirSeed, 1)))
				port.LinkLoss = ge.Lost
			}
			if dyn := d.dir.Dynamics; dyn != nil {
				if n.mods == nil {
					n.mods = make(map[edge]*netsim.LinkModulator)
				}
				n.mods[d.e] = buildDynamics(sched, link, dyn, sim.SubSeed(dirSeed, 2))
			}
			n.ports[d.e] = port
			n.dirs[d.e] = d.dir
			n.edges = append(n.edges, d.e)
		}
	}

	n.computeRoutes()

	// Flow RTTs double as the reachability check.
	n.rtts = make([]sim.Duration, len(spec.Flows))
	for i, f := range spec.Flows {
		fwd, err := n.pathDelay(f.From, f.To)
		if err != nil {
			return nil, fmt.Errorf("topo: %s flow %d (%s): %w", spec.Name, i, flowName(f), err)
		}
		rev, err := n.pathDelay(f.To, f.From)
		if err != nil {
			return nil, fmt.Errorf("topo: %s flow %d (%s): %w", spec.Name, i, flowName(f), err)
		}
		n.rtts[i] = fwd + rev
	}
	return n, nil
}

func flowName(f FlowSpec) string {
	if f.Label != "" {
		return f.Label
	}
	return f.From + "→" + f.To
}

// buildQueue realizes a QueueSpec. seed feeds RED's random stream.
func buildQueue(q QueueSpec, seed int64) netsim.Queue {
	if q.Custom != nil {
		return q.Custom
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	if r := q.RED; r != nil {
		return netsim.NewRED(netsim.REDConfig{
			Limit:            limit,
			MinTh:            r.MinTh,
			MaxTh:            r.MaxTh,
			MaxP:             r.MaxP,
			Wq:               r.Wq,
			ECN:              r.ECN,
			Gentle:           r.Gentle,
			PersistMark:      r.PersistMark,
			PacketsPerSecond: r.PacketsPerSecond,
		}, sim.NewRand(seed))
	}
	return netsim.NewDropTail(limit)
}

// computeRoutes installs static next-hop routes on every node for every
// reachable destination, using breadth-first shortest paths. Ties are
// broken deterministically by link declaration order, so two builds of the
// same Spec always route identically.
//
// The BFS works on dense node indices with parent/queue buffers reused
// across sources — replication sweeps rebuild their worlds constantly, so
// route computation must not allocate a map per source the way the naive
// string-keyed version did.
func (n *Network) computeRoutes() {
	nn := len(n.spec.Nodes)
	names := make([]string, nn)
	index := make(map[string]int, nn)
	for i, ns := range n.spec.Nodes {
		names[i] = ns.Name
		index[ns.Name] = i
	}

	// Adjacency in link-declaration order, as index lists.
	adj := make([][]int, nn)
	for _, l := range n.spec.Links {
		a, b := index[l.A], index[l.B]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}

	parent := make([]int, nn)
	queue := make([]int, 0, nn)
	for src := 0; src < nn; src++ {
		n.nodes[names[src]].ReserveRoutes(nn - 1)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue = append(queue[:0], src)
		// The BFS discovery order past the head IS the visit order the
		// string version tracked separately.
		for head := 0; head < len(queue); head++ {
			for _, nb := range adj[queue[head]] {
				if parent[nb] < 0 {
					parent[nb] = queue[head]
					queue = append(queue, nb)
				}
			}
		}
		srcName := names[src]
		for _, dst := range queue[1:] {
			// First hop: walk the parent chain from dst back to src.
			hop := dst
			for parent[hop] != src {
				hop = parent[hop]
			}
			n.next[edge{srcName, names[dst]}] = names[hop]
			n.nodes[srcName].AddRoute(n.addr[names[dst]], n.ports[edge{srcName, names[hop]}])
		}
	}
}

// pathDelay sums the one-way propagation delays along the installed route
// from one node to another.
func (n *Network) pathDelay(from, to string) (sim.Duration, error) {
	var total sim.Duration
	cur := from
	for cur != to {
		hop, ok := n.next[edge{cur, to}]
		if !ok {
			return 0, fmt.Errorf("no route from %q to %q", from, to)
		}
		total += n.dirs[edge{cur, hop}].Delay
		cur = hop
	}
	return total, nil
}

// Node returns the built node by name, or panics on an unknown name (a
// wiring bug in the caller, like netsim's no-route panic).
func (n *Network) Node(name string) *netsim.Node {
	nd, ok := n.nodes[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return nd
}

// Addr returns the address assigned to the named node.
func (n *Network) Addr(name string) int {
	a, ok := n.addr[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return a
}

// Port returns the directed port from one named node to an adjacent one.
func (n *Network) Port(from, to string) *netsim.Port {
	p, ok := n.ports[edge{from, to}]
	if !ok {
		panic(fmt.Sprintf("topo: no link %q→%q", from, to))
	}
	return p
}

// Modulator returns the started link modulator of a directed link whose
// Dir declared Dynamics, or nil when the direction is static. Panics on an
// unknown link, like Port.
func (n *Network) Modulator(from, to string) *netsim.LinkModulator {
	if _, ok := n.ports[edge{from, to}]; !ok {
		panic(fmt.Sprintf("topo: no link %q→%q", from, to))
	}
	return n.mods[edge{from, to}]
}

// AttachPool installs the world's packet freelist on every port, so each
// hop recycles the packets it drops. The pool must belong to the same
// world as the network (per-world pools are what keep recycling
// deterministic and race-free; see netsim.PacketPool).
func (n *Network) AttachPool(pool *netsim.PacketPool) {
	for _, e := range n.edges {
		n.ports[e].Pool = pool
	}
}

// Ports lists every directed port with its endpoints, in link declaration
// order (A→B before B→A) — the deterministic iteration scenarios use to
// attach drop observers to every hop.
func (n *Network) Ports() []PortInfo {
	out := make([]PortInfo, len(n.edges))
	for i, e := range n.edges {
		out[i] = PortInfo{From: e.from, To: e.to, Port: n.ports[e]}
	}
	return out
}

// NumFlows reports how many endpoint pairs the spec declared.
func (n *Network) NumFlows() int { return len(n.spec.Flows) }

// Flow returns the i'th flow declaration.
func (n *Network) Flow(i int) FlowSpec { return n.spec.Flows[i] }

// FlowSender returns the sending-side node of flow i.
func (n *Network) FlowSender(i int) *netsim.Node { return n.nodes[n.spec.Flows[i].From] }

// FlowReceiver returns the receiving-side node of flow i.
func (n *Network) FlowReceiver(i int) *netsim.Node { return n.nodes[n.spec.Flows[i].To] }

// FlowRTT reports the base (unloaded, zero-size-packet) round-trip time of
// flow i: the sum of propagation delays along the routed path there and
// back, excluding queueing and serialization — the same convention as the
// dumbbell's PairRTT.
func (n *Network) FlowRTT(i int) sim.Duration { return n.rtts[i] }

// MeanFlowRTT is the average base RTT over all declared flows, the
// normalization constant scenario analyses hand to analysis.Analyze.
func (n *Network) MeanFlowRTT() sim.Duration {
	if len(n.rtts) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, r := range n.rtts {
		sum += r
	}
	return sum / sim.Duration(len(n.rtts))
}
