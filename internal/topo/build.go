package topo

import (
	"fmt"

	"repro/internal/lossmodel"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// edge identifies one directed link by node names.
type edge struct{ from, to string }

// PortInfo pairs a directed port with the node names it connects, for
// iteration over a Network's links (e.g. to observe drops everywhere).
type PortInfo struct {
	From, To string
	Port     *netsim.Port
}

// Network is a built topology: the netsim nodes and ports of a Spec wired
// onto one scheduler, with static shortest-path routes installed and each
// flow's base RTT precomputed. A Network is confined to the goroutine that
// owns its scheduler, like every other simulated component.
//
// Every Network is an instance of a compiled Program (Build is
// Compile+Instantiate); the addr and next maps are the program's, shared
// read-only across instances. Reset rewinds the instance for reuse.
type Network struct {
	// Sched is the scheduler every element of this world runs on.
	Sched *sim.Scheduler

	spec  Spec
	prog  *Program
	nodes map[string]*netsim.Node
	addr  map[string]int // owned by prog; read-only here
	ports map[edge]*netsim.Port
	dirs  map[edge]Dir
	mods  map[edge]*netsim.LinkModulator     // directions with Dynamics, started
	ges   map[edge]*lossmodel.GilbertElliott // directions with Loss
	edges []edge                             // directed-port creation order
	next  map[edge]string                    // owned by prog; read-only here
	rtts  []sim.Duration                     // per-flow base RTT
}

// Build wires spec onto sched. RED queues declared in the spec draw their
// random streams from seed (via sim.SubSeed keyed by link position), so a
// built world is a pure function of (spec, seed). It returns an error —
// not a panic — on an inconsistent spec, a disconnected flow pair, or an
// unroutable topology, naming the offending element.
//
// Build is Compile followed by Instantiate. Callers that stamp out or
// rewind many worlds of the same shape should hold the *Program (or go
// through NetworkIn, which caches one per arena) to skip the compile.
func Build(sched *sim.Scheduler, spec Spec, seed int64) (*Network, error) {
	if sched == nil {
		return nil, fmt.Errorf("topo: Build requires a scheduler")
	}
	p, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return p.Instantiate(sched, seed)
}

func flowName(f FlowSpec) string {
	if f.Label != "" {
		return f.Label
	}
	return f.From + "→" + f.To
}

// buildQueue realizes a QueueSpec. seed feeds RED's random stream.
func buildQueue(q QueueSpec, seed int64) netsim.Queue {
	if q.Custom != nil {
		return q.Custom
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	if r := q.RED; r != nil {
		return netsim.NewRED(redConfig(r, limit), sim.NewRand(seed))
	}
	return netsim.NewDropTail(limit)
}

// redConfig translates a REDSpec plus resolved limit into netsim's config,
// shared by fresh builds (buildQueue) and in-place rewinds (Network.Reset)
// so both paths configure RED identically.
func redConfig(r *REDSpec, limit int) netsim.REDConfig {
	return netsim.REDConfig{
		Limit:            limit,
		MinTh:            r.MinTh,
		MaxTh:            r.MaxTh,
		MaxP:             r.MaxP,
		Wq:               r.Wq,
		ECN:              r.ECN,
		Gentle:           r.Gentle,
		PersistMark:      r.PersistMark,
		PacketsPerSecond: r.PacketsPerSecond,
	}
}

// pathDelay sums the one-way propagation delays along the installed route
// from one node to another.
func (n *Network) pathDelay(from, to string) (sim.Duration, error) {
	var total sim.Duration
	cur := from
	for cur != to {
		hop, ok := n.next[edge{cur, to}]
		if !ok {
			return 0, fmt.Errorf("no route from %q to %q", from, to)
		}
		total += n.dirs[edge{cur, hop}].Delay
		cur = hop
	}
	return total, nil
}

// Node returns the built node by name, or panics on an unknown name (a
// wiring bug in the caller, like netsim's no-route panic).
func (n *Network) Node(name string) *netsim.Node {
	nd, ok := n.nodes[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return nd
}

// Addr returns the address assigned to the named node.
func (n *Network) Addr(name string) int {
	a, ok := n.addr[name]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %q", name))
	}
	return a
}

// Port returns the directed port from one named node to an adjacent one.
func (n *Network) Port(from, to string) *netsim.Port {
	p, ok := n.ports[edge{from, to}]
	if !ok {
		panic(fmt.Sprintf("topo: no link %q→%q", from, to))
	}
	return p
}

// Modulator returns the started link modulator of a directed link whose
// Dir declared Dynamics, or nil when the direction is static. Panics on an
// unknown link, like Port.
func (n *Network) Modulator(from, to string) *netsim.LinkModulator {
	if _, ok := n.ports[edge{from, to}]; !ok {
		panic(fmt.Sprintf("topo: no link %q→%q", from, to))
	}
	return n.mods[edge{from, to}]
}

// AttachPool installs the world's packet freelist on every port, so each
// hop recycles the packets it drops. The pool must belong to the same
// world as the network (per-world pools are what keep recycling
// deterministic and race-free; see netsim.PacketPool).
func (n *Network) AttachPool(pool *netsim.PacketPool) {
	for _, e := range n.edges {
		n.ports[e].Pool = pool
	}
}

// Ports lists every directed port with its endpoints, in link declaration
// order (A→B before B→A) — the deterministic iteration scenarios use to
// attach drop observers to every hop.
func (n *Network) Ports() []PortInfo {
	out := make([]PortInfo, len(n.edges))
	for i, e := range n.edges {
		out[i] = PortInfo{From: e.from, To: e.to, Port: n.ports[e]}
	}
	return out
}

// Forwarded sums Port.Forwarded over every directed port: how many packet
// transmissions the network performed. Together with the scheduler's Fired
// counter it yields the events-per-forwarded-packet ratio that measures
// how much scheduler traffic the link-service batching saves (see
// ARCHITECTURE.md, "Link service batching").
func (n *Network) Forwarded() uint64 {
	var sum uint64
	for _, e := range n.edges {
		sum += n.ports[e].Forwarded()
	}
	return sum
}

// NumFlows reports how many endpoint pairs the spec declared.
func (n *Network) NumFlows() int { return len(n.spec.Flows) }

// Flow returns the i'th flow declaration.
func (n *Network) Flow(i int) FlowSpec { return n.spec.Flows[i] }

// FlowSender returns the sending-side node of flow i.
func (n *Network) FlowSender(i int) *netsim.Node { return n.nodes[n.spec.Flows[i].From] }

// FlowReceiver returns the receiving-side node of flow i.
func (n *Network) FlowReceiver(i int) *netsim.Node { return n.nodes[n.spec.Flows[i].To] }

// FlowRTT reports the base (unloaded, zero-size-packet) round-trip time of
// flow i: the sum of propagation delays along the routed path there and
// back, excluding queueing and serialization — the same convention as the
// dumbbell's PairRTT.
func (n *Network) FlowRTT(i int) sim.Duration { return n.rtts[i] }

// MeanFlowRTT is the average base RTT over all declared flows, the
// normalization constant scenario analyses hand to analysis.Analyze.
func (n *Network) MeanFlowRTT() sim.Duration {
	if len(n.rtts) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, r := range n.rtts {
		sum += r
	}
	return sum / sim.Duration(len(n.rtts))
}
