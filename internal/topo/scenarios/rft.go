package scenarios

// The reliable-file-transfer scenarios: the wifi-gilbert shape and a
// lossy static dumbbell re-registered with every flow running the
// internal/apps/rft transfer application in back-to-back mode. These are
// the worlds behind core.SweepTransfers and the fleet's FCT aggregate:
// each completed transfer contributes one flow-completion-time sample to
// the run's mergeable rft.TransferAgg, so burst losses show up as the FCT
// tail the paper's Poisson-loss null model cannot produce.

import (
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

func init() {
	register("rft-wifi",
		"wifi-gilbert world with every flow running back-to-back reliable file transfers",
		"wifi-gilbert shape, 8 RFT flows sharing the walking wireless hop (GE bursts)",
		"frac < 0.01 RTT ≈ 0.88, CoV ≈ 10",
		runRFTWifi)
	register("rft-fleet-dumbbell",
		"lossy static dumbbell with every flow running back-to-back reliable file transfers",
		"8 RFT pairs → 40 Mbps hop with Gilbert–Elliott wire loss (~0.8% mean)",
		"frac < 0.01 RTT ≈ 0.86, CoV ≈ 4",
		runRFTFleetDumbbell)
}

// TransferScenarios lists the registered scenario names whose worlds run
// FlowRFT flows — the set core.SweepTransfers iterates.
func TransferScenarios() []string {
	return []string{"rft-fleet-dumbbell", "rft-wifi"}
}

// markRFT flags every flow as a reliable-file-transfer application.
func markRFT(spec *topo.Spec) {
	for i := range spec.Flows {
		spec.Flows[i].Kind = topo.FlowRFT
	}
}

// runRFTWifi is the wifi-gilbert world with every pair moving files: the
// walking wireless rate and the Gilbert–Elliott burst eraser turn into
// resend entries, repair rounds and a heavy FCT tail.
func runRFTWifi(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer := wifiSpec(cfg, "rft-wifi")
	markRFT(&spec)
	return runDynamicPath(w, cfg, spec, buffer, wifiNomRate, wifiNoiseFraction)
}

// rftDumbbellRate is the fleet dumbbell's middle-hop capacity.
const rftDumbbellRate = 40_000_000

// runRFTFleetDumbbell is the fleet workhorse: a static dumbbell whose
// middle hop carries a sticky Gilbert–Elliott wire-loss chain with a
// ~0.8% stationary loss rate (mean 5-packet bad dwell, 80% erasure when
// bad). The wire loss guarantees a loss process at any run length the
// fleet smoke uses, independent of whether the AIMD transfers congest
// the queue.
func runRFTFleetDumbbell(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		pairs    = 8
		hopDelay = 5 * sim.Millisecond
	)
	w := newWorld(cfg, a)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, pairs, 2*sim.Millisecond, 80*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * (d + hopDelay)
	}
	meanRTT /= pairs
	buffer := bufferFor(rftDumbbellRate, meanRTT, cfg.PktSize)

	spec := dynamicPath("rft-fleet-dumbbell", delays, rftDumbbellRate, hopDelay, buffer,
		nil, &topo.LossSpec{PGB: 0.002, PBG: 0.2, KGood: 0, KBad: 0.8})
	markRFT(&spec)
	return runDynamicPath(w, cfg, spec, buffer, rftDumbbellRate, 0.15)
}
