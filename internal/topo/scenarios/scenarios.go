// Package scenarios registers the repository's scenario catalog with the
// topo registry: the paper's dumbbell baseline plus the topologies the
// paper's conclusions are claimed to generalize to — a parking-lot chain
// of bottlenecks with per-hop cross traffic, a shared-access tree with one
// congested uplink, a heterogeneous-RTT multi-bottleneck mesh whose path
// latencies come from the synthetic PlanetLab testbed, and the
// time-varying set (see dynamics.go): a Gilbert–Elliott wireless hop, a
// trace-driven cellular downlink and a periodically failing backbone.
// Importing this package (usually blank, for the side effect) populates
// topo.Scenarios(); each scenario produces the same analysis.Report
// burstiness metrics as the dumbbell figures, so the paper's
// sub-RTT-clustering result can be checked on every topology with one
// command:
//
//	paperexp -scenario all
//
// The EXPERIMENTS.md scenario-catalog table is generated from these
// registrations by `docscheck -write-catalog`; keep each Scenario's
// Topology and Headline strings current when editing a scenario.
package scenarios

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/apps/rft"
	"repro/internal/crosstraffic"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/planetlab"
	"repro/internal/ratectl"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// register wires one run function into the registry under both execution
// modes (batch and streaming). headline is the measured catalog number
// (see topo.Scenario.Headline).
func register(name, description, topology, headline string,
	run func(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error)) {
	topo.Register(topo.Scenario{
		Name:        name,
		Description: description,
		Topology:    topology,
		Headline:    headline,
		Run: func(cfg topo.ScenarioConfig) (*topo.ScenarioResult, error) {
			return run(cfg, nil)
		},
		RunIn: run,
	})
}

func init() {
	register("dumbbell",
		"the paper's Figure-1 baseline through the declarative builder",
		"2 routers, 1 shared DropTail bottleneck, 16 pairs, U[2,200]ms access",
		"frac < 0.01 RTT ≈ 1.00, CoV ≈ 33",
		runDumbbell)
	register("parking-lot",
		"bottlenecks in series with independent cross traffic per hop",
		"4 routers, 3 congested 30 Mbps hops, 8 end-to-end pairs",
		"frac < 0.01 RTT ≈ 0.90, CoV ≈ 16",
		runParkingLot)
	register("access-tree",
		"shared-access tree: one congested uplink feeding per-leaf access links",
		"8 leaves → edge → 20 Mbps uplink → core → server",
		"frac < 0.01 RTT ≈ 0.89, CoV ≈ 10",
		runAccessTree)
	register("hetero-mesh",
		"heterogeneous-RTT multi-bottleneck mesh driven by PlanetLab path latencies",
		"3-router backbone, 2 unequal bottlenecks, 8 PlanetLab-RTT pairs",
		"frac < 0.01 RTT ≈ 0.90, CoV ≈ 15",
		runHeteroMesh)
}

// world bundles the per-run state every scenario shares: one scheduler,
// the drop recorder, and the warmup cutoff. With an arena (streaming
// mode) the pieces come from the sweep worker's scratch and finish
// analyzes the loss stream online; without one (retain mode, the golden
// and CSV paths) everything is fresh and finish batch-analyzes the
// retained trace.
type world struct {
	sched *sim.Scheduler
	rec   *trace.Recorder
	warm  sim.Time
	pool  *netsim.PacketPool
	arena *exp.Arena
	flows int             // traffic sources started (transports + noise), for fleet accounting
	nets  []*topo.Network // every network built into this world, for forwarded-packet accounting

	// Reliable-file-transfer accounting: the per-world FCT aggregate and
	// the flows whose run totals fold into it when the world finishes.
	transfers *rft.TransferAgg
	rftFlows  []*rft.Flow

	// Effective fleet-jitter multipliers (1 = nominal); network applies
	// them to every spec and noiseInto to cross-traffic capacity, so one
	// cfg jitters the whole world consistently.
	rateScale, rttScale, lossScale float64
}

func newWorld(cfg topo.ScenarioConfig, a *exp.Arena) *world {
	w := &world{warm: sim.Time(cfg.Warmup), arena: a}
	w.rateScale, w.rttScale, w.lossScale = cfg.EffScales()
	if a != nil {
		w.sched = a.Scheduler()
		w.rec = a.Recorder()
		w.pool = a.Pool()
		return w
	}
	w.sched = sim.NewScheduler()
	w.rec = &trace.Recorder{}
	w.pool = netsim.NewPacketPool()
	return w
}

// network builds (or resets) the world's network from spec with the
// config's jitter scales applied — the one place every spec-based
// scenario goes through, so fleet jitter covers the whole catalog. The
// build seed is the uniform SubSeed(cfg.Seed, 2) world tag.
func (w *world) network(cfg topo.ScenarioConfig, spec topo.Spec) (*topo.Network, error) {
	spec = topo.ScaleSpec(spec, w.rateScale, w.rttScale, w.lossScale)
	net, err := topo.NetworkIn(w.arena, w.sched, spec, sim.SubSeed(cfg.Seed, 2))
	if net != nil {
		w.nets = append(w.nets, net)
	}
	return net, err
}

// forwarded sums packet transmissions over every network built into this
// world — the denominator of the events-per-forwarded-packet ratio.
func (w *world) forwarded() uint64 {
	var sum uint64
	for _, n := range w.nets {
		sum += n.Forwarded()
	}
	return sum
}

// observeDrops records post-warmup losses at the given ports. Ports fire
// OnDrop in simulated-time order, so the merged trace stays sorted even
// across multiple bottlenecks.
func (w *world) observeDrops(ports ...*netsim.Port) {
	for _, p := range ports {
		p.OnDrop = func(pkt *netsim.Packet, at sim.Time) {
			if at >= w.warm {
				w.rec.Add(trace.LossEvent{At: at, Flow: pkt.Flow, Seq: pkt.Seq, Size: pkt.Size})
			}
		}
	}
}

// finish runs the world to cfg.Duration and analyzes the loss process:
// online through the arena's streaming analyzer and burst tracker in
// streaming mode (the sink is installed before any event fires, so no
// event is ever retained), batch over the retained trace otherwise.
func (w *world) finish(name string, cfg topo.ScenarioConfig, meanRTT sim.Duration) (*topo.ScenarioResult, error) {
	var an *analysis.Streaming
	var bt *analysis.BurstTracker
	if w.arena != nil {
		var err error
		an, err = w.arena.Analyzer(meanRTT, analysis.Config{})
		if err != nil {
			return nil, err
		}
		bt = w.arena.Bursts(meanRTT / 4)
		w.rec.SetSink(func(e trace.LossEvent) {
			an.Observe(e)
			bt.Observe(e)
		}, false)
	}
	w.sched.RunUntil(sim.Time(cfg.Duration))
	// Fold the run totals of every transfer flow into the world's FCT
	// aggregate (completions were observed online by trackTransfers).
	for _, f := range w.rftFlows {
		w.transfers.AddFlowTotals(f)
	}
	if w.rec.Len() < 2 {
		return nil, fmt.Errorf("scenarios: %s produced %d drops; increase duration or load", name, w.rec.Len())
	}
	if an != nil {
		rep, err := an.Finalize()
		if err != nil {
			return nil, err
		}
		return &topo.ScenarioResult{
			Report:    rep.Clone(), // detach from the arena's scratch
			MeanRTT:   meanRTT,
			Bursts:    bt.Stats(),
			Drops:     w.rec.Len(),
			Events:    w.sched.Fired(),
			Forwarded: w.forwarded(),
			Flows:     w.flows,
			Analyzer:  an, // arena-owned; valid until the arena's next use
			Transfers: w.transfers,
		}, nil
	}
	report, err := analysis.AnalyzeTrace(w.rec, meanRTT, analysis.Config{})
	if err != nil {
		return nil, err
	}
	return &topo.ScenarioResult{
		Report:    report,
		Trace:     w.rec,
		MeanRTT:   meanRTT,
		Bursts:    analysis.SummarizeBursts(w.rec.Events(), meanRTT/4),
		Drops:     w.rec.Len(),
		Events:    w.sched.Fired(),
		Forwarded: w.forwarded(),
		Flows:     w.flows,
		Transfers: w.transfers,
	}, nil
}

// startFlows wires one transport flow per declared endpoint pair — the
// family chosen by the spec's FlowSpec.Kind, sharing the world's packet
// pool — and staggers the starts over spread to avoid artificial global
// synchronization.
func (w *world) startFlows(net *topo.Network, cfg topo.ScenarioConfig, ssthresh float64, spread sim.Duration) {
	n := net.NumFlows()
	w.flows += n
	for i := 0; i < n; i++ {
		at := sim.Time(sim.Duration(i) * spread / sim.Duration(n))
		switch net.Flow(i).Kind {
		case topo.FlowRFT:
			f := rft.NewFlow(net.Sched, net.FlowSender(i), net.FlowReceiver(i), i+1, rft.Config{
				ChunkSize:  cfg.PktSize,
				Chunks:     rftFileChunks,
				InitialRTT: net.FlowRTT(i),
				// Per-flow branch of the scenario's seed chain, offset past
				// the world/noise tags (same scheme as the GCC flows).
				Seed: sim.SubSeed(cfg.Seed, int64(1000+i)),
				Pool: w.pool,
			})
			w.trackTransfers(f)
			f.StartAt(net.Sched, at)
		case topo.FlowGCC:
			f := ratectl.NewGCCFlow(net.Sched, net.FlowSender(i), net.FlowReceiver(i), i+1, ratectl.GCCConfig{
				PktSize:    cfg.PktSize,
				InitialRTT: net.FlowRTT(i),
				// Alternate the delay-gradient filter so scenario goldens pin
				// both implementations.
				Estimator: ratectl.EstimatorKind(i % 2),
				// Per-flow branch of the scenario's seed chain, offset past
				// the world/noise tags.
				Seed: sim.SubSeed(cfg.Seed, int64(1000+i)),
				Pool: w.pool,
			})
			f.StartAt(net.Sched, at)
		default:
			f := tcp.NewPairFlow(net.Sched, net.FlowSender(i), net.FlowReceiver(i), i+1, tcp.Config{
				PktSize:         cfg.PktSize,
				InitialRTT:      net.FlowRTT(i),
				InitialSSThresh: ssthresh,
				Pool:            w.pool,
			})
			f.StartAt(net.Sched, at)
		}
	}
}

// rftFileChunks is the per-transfer file length in chunks for registered
// RFT scenarios: at the default 1000-byte chunks each transfer moves
// ~512 KB, several seconds at megabit rates, so a golden-length run
// completes a handful of back-to-back transfers per flow.
const rftFileChunks = 512

// trackTransfers folds a transfer flow into the world's FCT aggregate:
// every post-warmup completion is observed and the flow restarts for the
// next back-to-back transfer; run totals fold in when the world finishes.
func (w *world) trackTransfers(f *rft.Flow) {
	if w.transfers == nil {
		w.transfers = rft.NewTransferAgg()
	}
	w.rftFlows = append(w.rftFlows, f)
	bytes := f.Sender.TransferBytes()
	f.Sender.OnComplete = func(at sim.Time) {
		if at >= w.warm {
			w.transfers.ObserveFCT(f.FCT(), bytes)
		}
		f.Restart()
	}
}

// absorb installs recycling packet sinks on the named nodes so injected
// cross traffic addressed to them disappears there and its packets return
// to the world's pool.
func (w *world) absorb(net *topo.Network, names ...string) {
	for _, name := range names {
		net.Node(name).BindDefault(w.pool.Sink())
	}
}

// noiseInto starts an on–off noise ensemble injecting into port, addressed
// from srcAddr to the absorbing node dst. capacity is the NOMINAL rate of
// the congested resource; the world's rate jitter is applied here so the
// relative noise load survives fleet scaling.
func (w *world) noiseInto(net *topo.Network, port *netsim.Port, n int, capacity int64,
	fraction float64, flowBase int, srcAddr int, dst string, seed int64) {
	w.flows += n
	for _, nz := range crosstraffic.NoiseSet(net.Sched, port, n, topo.ScaleRate(capacity, w.rateScale),
		fraction, flowBase, srcAddr, net.Addr(dst), seed, w.pool) {
		nz.Start()
	}
}

// bufferFor sizes a bottleneck buffer as half the BDP at the mean RTT,
// with the same floor the figure runners use.
func bufferFor(rate int64, meanRTT sim.Duration, pktSize int) int {
	b := netsim.BDP(rate, meanRTT, pktSize) / 2
	if b < 8 {
		b = 8
	}
	return b
}

// runDumbbell is the paper's NS-2 setup expressed as a registered
// scenario: the Figure-2 world built through the declarative spec path.
func runDumbbell(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		flows = 16
		rate  = 100_000_000
	)
	w := newWorld(cfg, a)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, flows, 2*sim.Millisecond, 200*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * d
	}
	meanRTT /= flows
	buffer := bufferFor(rate, meanRTT, cfg.PktSize)

	// The dumbbell bypasses the Spec path, so its fleet jitter is applied
	// directly: scaled bottleneck rate and access delays (and therefore
	// the normalization RTT), nominal buffer like every other scenario.
	srate := topo.ScaleRate(rate, w.rateScale)
	sdelays := delays
	if w.rttScale != 1 {
		sdelays = make([]sim.Duration, len(delays))
		for i, dl := range delays {
			sdelays[i] = topo.ScaleDuration(dl, w.rttScale)
		}
	}
	meanRTT = topo.ScaleDuration(meanRTT, w.rttScale)

	d := topo.NewDumbbellIn(w.arena, w.sched, netsim.DumbbellConfig{
		BottleneckRate: srate,
		AccessRate:     1_000_000_000,
		AccessDelays:   sdelays,
		Buffer:         buffer,
	})
	d.AttachPool(w.pool)
	w.nets = append(w.nets, d.Net)
	w.observeDrops(d.Forward)
	w.startFlows(d.Net, cfg, float64(buffer), 2*sim.Second)

	w.absorb(d.Net, "L", "R")
	w.noiseInto(d.Net, d.Forward, 25, rate, 0.05, 100000, netsim.SenderAddr(0), "R", sim.SubSeed(cfg.Seed, 2))
	w.noiseInto(d.Net, d.Reverse, 25, rate, 0.05, 200000, netsim.ReceiverAddr(0), "L", sim.SubSeed(cfg.Seed, 3))

	return w.finish("dumbbell", cfg, meanRTT)
}

// runParkingLot chains several congested hops in series — the classic
// parking-lot topology. Every hop carries its own on–off cross traffic, so
// losses cluster independently at multiple queues along the path.
func runParkingLot(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		hops    = 3
		flows   = 8
		hopRate = 30_000_000
	)
	w := newWorld(cfg, a)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, flows, 2*sim.Millisecond, 100*sim.Millisecond)

	// Mean base RTT: 2·access + 2·(per-hop delay · hops); used to size the
	// per-hop buffers before the network exists.
	hopDelay := 2 * sim.Millisecond
	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2*d + 2*sim.Duration(hops)*hopDelay
	}
	meanRTT /= flows
	buffer := bufferFor(hopRate, meanRTT, cfg.PktSize)

	spec := topo.Spec{Name: "parking-lot"}
	for h := 0; h <= hops; h++ {
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: router(h)})
	}
	for h := 0; h < hops; h++ {
		spec.Links = append(spec.Links, topo.LinkSpec{
			A: router(h), B: router(h + 1),
			AB: topo.Dir{Rate: hopRate, Delay: hopDelay, Queue: topo.QueueSpec{Limit: buffer}},
			BA: topo.Dir{Rate: hopRate, Delay: hopDelay, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
		})
	}
	for i, d := range delays {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: d / 2}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: router(0), AB: access},
			topo.LinkSpec{A: router(hops), B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv})
	}

	net, err := w.network(cfg, spec)
	if err != nil {
		return nil, err
	}

	net.AttachPool(w.pool)

	var hopPorts []*netsim.Port
	for h := 0; h < hops; h++ {
		hopPorts = append(hopPorts, net.Port(router(h), router(h+1)))
	}
	w.observeDrops(hopPorts...)
	w.startFlows(net, cfg, float64(buffer), 2*sim.Second)

	// Per-hop cross traffic: each hop's ensemble enters at the hop's head
	// router and is absorbed one hop downstream, so hop j's noise loads
	// only queue j — the defining feature of the parking lot.
	routers := make([]string, hops+1)
	for h := range routers {
		routers[h] = router(h)
	}
	w.absorb(net, routers...)
	for h := 0; h < hops; h++ {
		w.noiseInto(net, hopPorts[h], 8, hopRate, 0.25, 100000+1000*h,
			net.Addr(router(h)), router(h+1), sim.SubSeed(cfg.Seed, int64(10+h)))
	}

	return w.finish("parking-lot", cfg, net.MeanFlowRTT())
}

func router(h int) string { return fmt.Sprintf("R%d", h) }

// runAccessTree models the shared-access tree: leaves with individual
// access links all feed one congested uplink toward a server — the
// broadband/campus aggregation shape, where every leaf's losses happen at
// the same shared queue.
func runAccessTree(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		leaves     = 8
		uplinkRate = 20_000_000
		leafRate   = 100_000_000
	)
	w := newWorld(cfg, a)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, leaves, sim.Millisecond, 60*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * (d + 2*sim.Millisecond + sim.Millisecond)
	}
	meanRTT /= leaves
	buffer := bufferFor(uplinkRate, meanRTT, cfg.PktSize)

	spec := topo.Spec{Name: "access-tree"}
	spec.Nodes = append(spec.Nodes,
		topo.NodeSpec{Name: "edge"},
		topo.NodeSpec{Name: "core"},
		topo.NodeSpec{Name: "server"},
	)
	spec.Links = append(spec.Links,
		// The congested uplink: edge → core carries every leaf's data.
		topo.LinkSpec{
			A: "edge", B: "core",
			AB: topo.Dir{Rate: uplinkRate, Delay: 2 * sim.Millisecond, Queue: topo.QueueSpec{Limit: buffer}},
			BA: topo.Dir{Rate: uplinkRate, Delay: 2 * sim.Millisecond, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
		},
		topo.LinkSpec{
			A: "core", B: "server",
			AB: topo.Dir{Rate: 1_000_000_000, Delay: sim.Millisecond},
		},
	)
	for i, d := range delays {
		leaf := fmt.Sprintf("leaf%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: leaf})
		spec.Links = append(spec.Links, topo.LinkSpec{
			A: leaf, B: "edge",
			AB: topo.Dir{Rate: leafRate, Delay: d},
		})
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: leaf, To: "server"})
	}

	net, err := w.network(cfg, spec)
	if err != nil {
		return nil, err
	}

	net.AttachPool(w.pool)
	uplink := net.Port("edge", "core")
	w.observeDrops(uplink)
	w.startFlows(net, cfg, float64(buffer), 2*sim.Second)

	w.absorb(net, "edge", "core")
	w.noiseInto(net, uplink, 10, uplinkRate, 0.15, 100000,
		net.Addr("edge"), "core", sim.SubSeed(cfg.Seed, 3))

	return w.finish("access-tree", cfg, net.MeanFlowRTT())
}

// runHeteroMesh routes flow pairs with PlanetLab-derived RTTs over a
// backbone with two unequal bottlenecks in series — wide-area RTT
// heterogeneity (2 ms to 350 ms) meeting multiple congestion points, the
// closest registered shape to the paper's Internet measurements.
func runHeteroMesh(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		pairs     = 8
		westRate  = 60_000_000
		eastRate  = 40_000_000
		coreDelay = 5 * sim.Millisecond
	)
	w := newWorld(cfg, a)

	// Path RTTs come from the synthetic PlanetLab mesh: pick site pairs
	// deterministically and fold each pair's wide-area latency into its
	// two access links, with the 2·coreDelay backbone in the middle.
	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: cfg.Seed})
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	sitePairs := mesh.RandomPairs(rng, pairs)

	var meanRTT sim.Duration
	access := make([]sim.Duration, pairs)
	for i, p := range sitePairs {
		rtt := mesh.PathParams(p[0], p[1]).RTT
		// Per-side access delay so the base RTT ≈ the PlanetLab path RTT.
		a := (rtt - 4*coreDelay) / 4
		if a < sim.Millisecond {
			a = sim.Millisecond
		}
		access[i] = a
		meanRTT += 4*a + 4*coreDelay
	}
	meanRTT /= pairs
	westBuf := bufferFor(westRate, meanRTT, cfg.PktSize)
	eastBuf := bufferFor(eastRate, meanRTT, cfg.PktSize)

	spec := topo.Spec{Name: "hetero-mesh"}
	spec.Nodes = append(spec.Nodes,
		topo.NodeSpec{Name: "B0"}, topo.NodeSpec{Name: "B1"}, topo.NodeSpec{Name: "B2"},
	)
	spec.Links = append(spec.Links,
		topo.LinkSpec{
			A: "B0", B: "B1",
			AB: topo.Dir{Rate: westRate, Delay: coreDelay, Queue: topo.QueueSpec{Limit: westBuf}},
			BA: topo.Dir{Rate: westRate, Delay: coreDelay, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
		},
		topo.LinkSpec{
			A: "B1", B: "B2",
			AB: topo.Dir{Rate: eastRate, Delay: coreDelay, Queue: topo.QueueSpec{Limit: eastBuf}},
			BA: topo.Dir{Rate: eastRate, Delay: coreDelay, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
		},
	)
	for i, p := range sitePairs {
		src := mesh.Sites[p[0]]
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		dir := topo.Dir{Rate: 1_000_000_000, Delay: access[i]}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "B0", AB: dir},
			topo.LinkSpec{A: "B2", B: rcv, AB: dir},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{
			Label: fmt.Sprintf("%s→%s", src.Host, mesh.Sites[p[1]].Host),
			From:  snd,
			To:    rcv,
		})
	}

	net, err := w.network(cfg, spec)
	if err != nil {
		return nil, err
	}

	net.AttachPool(w.pool)
	west, east := net.Port("B0", "B1"), net.Port("B1", "B2")
	w.observeDrops(west, east)
	w.startFlows(net, cfg, float64(westBuf), 2*sim.Second)

	w.absorb(net, "B0", "B1", "B2")
	w.noiseInto(net, west, 8, westRate, 0.2, 100000, net.Addr("B0"), "B1", sim.SubSeed(cfg.Seed, 3))
	w.noiseInto(net, east, 8, eastRate, 0.2, 200000, net.Addr("B1"), "B2", sim.SubSeed(cfg.Seed, 4))

	return w.finish("hetero-mesh", cfg, net.MeanFlowRTT())
}
