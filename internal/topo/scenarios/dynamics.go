package scenarios

// The time-varying scenarios: wireless and cellular paths where capacity
// and loss vary over simulated time, the workload the paper's static
// dumbbell cannot express. Each one exercises a different
// link-dynamics program (topo.DynamicsSpec / topo.LossSpec):
//
//   - wifi-gilbert: random-walk rate adaptation plus a Gilbert–Elliott
//     wire-loss chain on the wireless hop,
//   - cellular-trace: a checked-in LTE-shaped bandwidth trace
//     (testdata/cellular-bw.txt) replayed onto the radio link,
//   - flaky-backbone: a looping outage schedule that periodically
//     collapses the backbone to a trickle.
//
// Wire losses and queue drops surface through the same OnDrop observer,
// so the analysis sees one merged, time-ordered loss process per run.

import (
	_ "embed"
	"fmt"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

//go:embed testdata/cellular-bw.txt
var cellularBWTrace []byte

func init() {
	register("wifi-gilbert",
		"wireless last hop: random-walk rate adaptation + Gilbert–Elliott wire loss",
		"8 stations → AP → 12–54 Mbps walking wireless hop (GE bursts) → gateway",
		"frac < 0.01 RTT ≈ 0.72, CoV ≈ 5",
		runWifiGilbert)
	register("cellular-trace",
		"trace-driven cellular downlink: checked-in LTE bandwidth trace with deep fades",
		"6 handsets → basestation → 2.2–24 Mbps traced radio link → core",
		"frac < 0.01 RTT ≈ 0.74, CoV ≈ 11",
		runCellularTrace)
	register("flaky-backbone",
		"periodic backbone outages: the link collapses to 200 kbps for 300 ms every 2.5 s",
		"10 pairs over an 80 Mbps backbone with a looping outage schedule",
		"frac < 0.01 RTT ≈ 0.99, CoV ≈ 29",
		runFlakyBackbone)
}

// dynamicPath builds the standard time-varying-path shape the three
// scenarios share: per-pair senders and receivers around one middle hop
// ("left" → "right") whose A→B direction carries the given queue limit,
// dynamics and loss process. Access links are fast and loss-free so every
// drop in the world happens on the middle hop (queue or wire).
func dynamicPath(name string, delays []sim.Duration, rate int64, hopDelay sim.Duration,
	buffer int, dyn *topo.DynamicsSpec, loss *topo.LossSpec) topo.Spec {
	spec := topo.Spec{Name: name}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	spec.Links = append(spec.Links, topo.LinkSpec{
		A: "left", B: "right",
		AB: topo.Dir{
			Rate: rate, Delay: hopDelay,
			Queue:    topo.QueueSpec{Limit: buffer},
			Dynamics: dyn,
			Loss:     loss,
		},
		// The reverse (ACK) direction keeps the nominal rate with a
		// generous buffer: the scenarios study the data-direction loss
		// process, not ACK starvation.
		BA: topo.Dir{Rate: rate, Delay: hopDelay, Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit}},
	})
	for i, d := range delays {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: d / 2}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv})
	}
	return spec
}

// runDynamicPath finishes the shared wiring: build, observe the middle
// hop, start flows and noise, run.
func runDynamicPath(w *world, cfg topo.ScenarioConfig, spec topo.Spec,
	buffer int, noiseRate int64, noiseFraction float64) (*topo.ScenarioResult, error) {
	net, err := w.network(cfg, spec)
	if err != nil {
		return nil, err
	}
	net.AttachPool(w.pool)
	hop := net.Port("left", "right")
	w.observeDrops(hop)
	w.startFlows(net, cfg, float64(buffer), 2*sim.Second)
	w.absorb(net, "left", "right")
	w.noiseInto(net, hop, 8, noiseRate, noiseFraction, 100000,
		net.Addr("left"), "right", sim.SubSeed(cfg.Seed, 3))
	return w.finish(spec.Name, cfg, net.MeanFlowRTT())
}

// Nominal middle-hop rates and noise fractions of the two shapes the
// loss-vs-delay showdown reuses (see gcc.go), shared so the gcc-prefixed
// variants stay parameter-identical to the originals.
const (
	wifiNomRate       = 30_000_000
	wifiNoiseFraction = 0.10
	cellNomRate       = 16_000_000
	cellNoiseFraction = 0.08
)

// wifiSpec builds the wifi-gilbert shape under the given topology name:
// the wireless rate walks between 12 and 54 Mbps while a sticky
// Gilbert–Elliott chain erases multi-packet bursts on the wire. The seed
// chain (delays from SubSeed(seed,1)) is fixed — a different name reuses
// the same world geometry, so wifi-gilbert's goldens never move.
func wifiSpec(cfg topo.ScenarioConfig, name string) (topo.Spec, int) {
	const (
		pairs    = 8
		hopDelay = 3 * sim.Millisecond
	)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, pairs, 2*sim.Millisecond, 60*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * (d + hopDelay)
	}
	meanRTT /= pairs
	buffer := bufferFor(wifiNomRate, meanRTT, cfg.PktSize)

	return dynamicPath(name, delays, wifiNomRate, hopDelay, buffer,
		&topo.DynamicsSpec{Walk: &topo.WalkSpec{
			Min: 12_000_000, Max: 54_000_000,
			Factor:   1.3,
			Interval: 200 * sim.Millisecond,
		}},
		&topo.LossSpec{PGB: 0.003, PBG: 0.25, KGood: 0, KBad: 0.9}), buffer
}

// runWifiGilbert models a shared 802.11-style hop: the wireless rate walks
// between 12 and 54 Mbps (rate adaptation reacting to channel quality)
// while a sticky Gilbert–Elliott chain erases multi-packet bursts on the
// wire — at 30 Mbps a mean 4-packet bad dwell spans ~1 ms, far below the
// ~60 ms RTT, so the link itself now produces the paper's sub-RTT
// clustering on top of whatever the queue adds.
func runWifiGilbert(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer := wifiSpec(cfg, "wifi-gilbert")
	return runDynamicPath(w, cfg, spec, buffer, wifiNomRate, wifiNoiseFraction)
}

// runCellularTrace replays the checked-in LTE-shaped bandwidth trace onto
// the radio link: capacity swings between 2.2 and 24 Mbps with deep
// multi-second fades, and every fade turns the aggregate TCP demand into
// a clustered queue-overflow episode. The 40 s schedule loops, so longer
// runs see the same fading pattern repeatedly.
func runCellularTrace(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer, err := cellularSpec(cfg, "cellular-trace")
	if err != nil {
		return nil, err
	}
	return runDynamicPath(w, cfg, spec, buffer, cellNomRate, cellNoiseFraction)
}

// cellularSpec builds the cellular-trace shape under the given topology
// name: the checked-in LTE bandwidth trace replayed onto the radio link.
// Like wifiSpec, the seed chain is name-independent.
func cellularSpec(cfg topo.ScenarioConfig, name string) (topo.Spec, int, error) {
	const (
		pairs    = 6
		hopDelay = 25 * sim.Millisecond
	)
	steps, err := topo.ParseBandwidthTrace(cellularBWTrace)
	if err != nil {
		return topo.Spec{}, 0, fmt.Errorf("%s: %w", name, err)
	}
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, pairs, 2*sim.Millisecond, 20*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * (d + hopDelay)
	}
	meanRTT /= pairs
	buffer := bufferFor(cellNomRate, meanRTT, cfg.PktSize)

	return dynamicPath(name, delays, cellNomRate, hopDelay, buffer,
		&topo.DynamicsSpec{Steps: steps, Loop: 40 * sim.Second}, nil), buffer, nil
}

// runFlakyBackbone drives a looping outage schedule: every 2.5 s the
// 80 Mbps backbone collapses to 200 kbps for 300 ms — a flapping carrier
// or a rerouting convergence gap. Each outage fills the buffer within
// tens of milliseconds and then drops near-everything offered until the
// link recovers, producing extreme loss bursts separated by clean
// multi-second epochs.
func runFlakyBackbone(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	const (
		pairs    = 10
		rate     = 80_000_000
		hopDelay = 5 * sim.Millisecond
	)
	w := newWorld(cfg, a)
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))
	delays := netsim.RandomAccessDelays(rng, pairs, 2*sim.Millisecond, 80*sim.Millisecond)

	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * (d + hopDelay)
	}
	meanRTT /= pairs
	buffer := bufferFor(rate, meanRTT, cfg.PktSize)

	spec := dynamicPath("flaky-backbone", delays, rate, hopDelay, buffer,
		&topo.DynamicsSpec{
			// Recovery at each loop boundary (step 0), outage 2.2 s in:
			// up 2.2 s, down 0.3 s, repeat.
			Steps: []netsim.RateStep{
				{At: 0, Rate: rate},
				{At: 2200 * sim.Millisecond, Rate: 200_000},
			},
			Loop: 2500 * sim.Millisecond,
		}, nil)
	return runDynamicPath(w, cfg, spec, buffer, rate, 0.15)
}
