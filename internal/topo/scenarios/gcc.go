package scenarios

// The delay-based congestion-control scenarios: the wifi-gilbert and
// cellular-trace shapes re-registered with a mix of GCC-style delay-based
// flows (internal/ratectl) and loss-based TCP flows, plus the showdown
// world runner core.SweepShowdown uses to compare the two transport
// families one-kind-at-a-time on identical worlds.

import (
	"fmt"
	"math"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/ratectl"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

func init() {
	register("gcc-vs-tcp-wifi",
		"wifi-gilbert world with half the flows delay-based (GCC) and half loss-based (TCP)",
		"wifi-gilbert shape, 4 GCC + 4 TCP flows sharing the walking wireless hop",
		"frac < 0.01 RTT ≈ 0.55, CoV ≈ 3",
		runGCCVsTCPWifi)
	register("gcc-cellular",
		"cellular-trace world with half the flows delay-based (GCC) and half loss-based (TCP)",
		"cellular-trace shape, 3 GCC + 3 TCP flows sharing the traced radio link",
		"frac < 0.01 RTT ≈ 0.69, CoV ≈ 11",
		runGCCCellular)
}

// markGCC flags every even-indexed flow as delay-based, interleaving the
// two transport families across the access-delay distribution so neither
// kind monopolizes the short-RTT pairs.
func markGCC(spec *topo.Spec) {
	for i := range spec.Flows {
		if i%2 == 0 {
			spec.Flows[i].Kind = topo.FlowGCC
		}
	}
}

// runGCCVsTCPWifi is the wifi-gilbert world with mixed transports: the
// delay-based flows back off on queue growth while the loss-based ones
// push until drops, so the loss process the analysis sees is TCP's — but
// shaped by the bandwidth the GCC flows concede.
func runGCCVsTCPWifi(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer := wifiSpec(cfg, "gcc-vs-tcp-wifi")
	markGCC(&spec)
	return runDynamicPath(w, cfg, spec, buffer, wifiNomRate, wifiNoiseFraction)
}

// runGCCCellular is the cellular-trace world with mixed transports.
func runGCCCellular(cfg topo.ScenarioConfig, a *exp.Arena) (*topo.ScenarioResult, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer, err := cellularSpec(cfg, "gcc-cellular")
	if err != nil {
		return nil, err
	}
	markGCC(&spec)
	return runDynamicPath(w, cfg, spec, buffer, cellNomRate, cellNoiseFraction)
}

// ShowdownShape is one time-varying world the loss-vs-delay showdown runs
// both transport families through.
type ShowdownShape struct {
	Name          string
	NoiseRate     int64
	NoiseFraction float64
	// Build constructs the spec under the given topology name and returns
	// it with the middle-hop buffer.
	Build func(cfg topo.ScenarioConfig, name string) (topo.Spec, int, error)
}

// ShowdownShapes lists the worlds the showdown compares transports on.
func ShowdownShapes() []ShowdownShape {
	return []ShowdownShape{
		{
			Name: "wifi-gilbert", NoiseRate: wifiNomRate, NoiseFraction: wifiNoiseFraction,
			Build: func(cfg topo.ScenarioConfig, name string) (topo.Spec, int, error) {
				s, b := wifiSpec(cfg, name)
				return s, b, nil
			},
		},
		{Name: "cellular-trace", NoiseRate: cellNomRate, NoiseFraction: cellNoiseFraction, Build: showdownCellularSpec},
	}
}

// showdownTraceDilation stretches the cellular trace's playback for the
// showdown: each 1 s capacity sample is held for this factor. The raw
// cadence re-randomizes capacity faster than ANY end-to-end controller's
// convergence time — at that timescale loss-based TCP "wins" goodput only
// by keeping the buffer permanently full, which is exactly the behavior
// the showdown exists to price. Pedestrian-pace fading (multi-second
// stable windows, same fade structure and depth) lets both families
// actually track the link, making the goodput comparison meaningful.
const showdownTraceDilation = 3

// showdownCellularSpec is cellularSpec adapted for the showdown: the trace
// steps and loop are stretched by showdownTraceDilation, and the radio
// link carries a light bursty Gilbert–Elliott wire-loss process — the
// residual non-congestive loss a real cellular link shows (HARQ leakage,
// handovers, cell-edge fades). The stationary loss rate is ~1%: far below
// the loss controller's 2% low-water mark, so the delay-based flows shrug
// it off, while the loss-based flows read every erased burst as
// congestion — the paper's sub-RTT loss-clustering finding turned into a
// controller-level experiment.
func showdownCellularSpec(cfg topo.ScenarioConfig, name string) (topo.Spec, int, error) {
	spec, buffer, err := cellularSpec(cfg, name)
	if err != nil {
		return spec, buffer, err
	}
	for li := range spec.Links {
		dyn := spec.Links[li].AB.Dynamics
		if dyn == nil || len(dyn.Steps) == 0 {
			continue
		}
		steps := make([]netsim.RateStep, len(dyn.Steps))
		for si, st := range dyn.Steps {
			steps[si] = netsim.RateStep{At: st.At * showdownTraceDilation, Rate: st.Rate}
		}
		spec.Links[li].AB.Dynamics = &topo.DynamicsSpec{Steps: steps, Loop: dyn.Loop * showdownTraceDilation}
		spec.Links[li].AB.Loss = &topo.LossSpec{PGB: 0.003, PBG: 0.25, KGood: 0, KBad: 0.9}
	}
	return spec, buffer, nil
}

// ShowdownMetrics is one transport family's scorecard on one world.
type ShowdownMetrics struct {
	// GoodputBps is the aggregate post-warmup delivery rate across all
	// flows, bits/second.
	GoodputBps float64
	// InducedDelayMs is the mean one-way delay above each flow's own
	// observed minimum — the queueing delay the transport inflicts on
	// itself — averaged over flows, milliseconds.
	InducedDelayMs float64
	// Drops counts post-warmup transport-flow packets lost on the middle
	// hop (wire loss and queue overflow; background noise excluded).
	Drops int
	// RecoveryMs is the mean time from the end of a loss episode until the
	// windowed delivery rate regains 80% of its pre-episode level,
	// milliseconds. Zero when the run had no post-warmup loss episodes.
	RecoveryMs float64
	// Events is the run's simulated event count (scheduler throughput
	// accounting, like every other experiment driver).
	Events uint64
}

// showdownBin is the goodput/loss time-series resolution.
const showdownBin = 100 * sim.Millisecond

// RunShowdownWorld runs one (shape, transport family) cell: the shape's
// world is built with every flow of the given kind and identical
// background noise, so two calls with the same cfg.Seed and different
// kinds face bit-identical link dynamics, wire loss and noise processes —
// the controlled comparison the showdown figure reports.
func RunShowdownWorld(shape ShowdownShape, kind topo.FlowKind, cfg topo.ScenarioConfig, a *exp.Arena) (*ShowdownMetrics, error) {
	cfg.FillDefaults()
	w := newWorld(cfg, a)
	spec, buffer, err := shape.Build(cfg, shape.Name+"-showdown")
	if err != nil {
		return nil, err
	}
	for i := range spec.Flows {
		spec.Flows[i].Kind = kind
	}
	net, err := w.network(cfg, spec)
	if err != nil {
		return nil, err
	}
	net.AttachPool(w.pool)

	n := net.NumFlows()
	warm := sim.Time(cfg.Warmup)
	bins := int(cfg.Duration/showdownBin) + 1
	rxBytes := make([]int64, bins)
	dropBin := make([]int, bins)
	minDelay := make([]sim.Duration, n+1)
	sumDelay := make([]float64, n+1) // ms
	numDelay := make([]int64, n+1)
	for i := range minDelay {
		minDelay[i] = -1
	}
	binOf := func(at sim.Time) int {
		b := int(sim.Duration(at) / showdownBin)
		if b >= bins {
			b = bins - 1
		}
		return b
	}
	onData := func(p *netsim.Packet, at sim.Time) {
		if at < warm {
			return
		}
		rxBytes[binOf(at)] += int64(p.Size)
		d := at.Sub(p.SendTime)
		f := p.Flow
		if f < 0 || f > n {
			return
		}
		if minDelay[f] < 0 || d < minDelay[f] {
			minDelay[f] = d
		}
		sumDelay[f] += float64(d) / float64(sim.Millisecond)
		numDelay[f]++
	}

	drops := 0
	hop := net.Port("left", "right")
	hop.OnDrop = func(pkt *netsim.Packet, at sim.Time) {
		if at < warm || pkt.Flow > n {
			return
		}
		drops++
		dropBin[binOf(at)]++
	}

	// One flow per pair, all of the requested family, staggered like
	// startFlows. GCC flows alternate estimators so both filters face the
	// showdown's dynamics.
	spread := 2 * sim.Second
	for i := 0; i < n; i++ {
		at := sim.Time(sim.Duration(i) * spread / sim.Duration(n))
		if kind == topo.FlowGCC {
			f := ratectl.NewGCCFlow(net.Sched, net.FlowSender(i), net.FlowReceiver(i), i+1, ratectl.GCCConfig{
				PktSize:    cfg.PktSize,
				InitialRTT: net.FlowRTT(i),
				Estimator:  ratectl.EstimatorKind(i % 2),
				Seed:       sim.SubSeed(cfg.Seed, int64(1000+i)),
				Pool:       w.pool,
			})
			f.Receiver.OnData = onData
			f.StartAt(net.Sched, at)
		} else {
			f := tcp.NewPairFlow(net.Sched, net.FlowSender(i), net.FlowReceiver(i), i+1, tcp.Config{
				PktSize:         cfg.PktSize,
				InitialRTT:      net.FlowRTT(i),
				InitialSSThresh: float64(buffer),
				Pool:            w.pool,
			})
			f.Receiver.OnData = onData
			f.StartAt(net.Sched, at)
		}
	}

	w.absorb(net, "left", "right")
	w.noiseInto(net, hop, 8, shape.NoiseRate, shape.NoiseFraction, 100000,
		net.Addr("left"), "right", sim.SubSeed(cfg.Seed, 3))

	w.sched.RunUntil(sim.Time(cfg.Duration))

	m := &ShowdownMetrics{Drops: drops, Events: w.sched.Fired()}
	span := (cfg.Duration - cfg.Warmup).Seconds()
	if span > 0 {
		var total int64
		for _, b := range rxBytes {
			total += b
		}
		m.GoodputBps = float64(total) * 8 / span
	}
	var induced float64
	flowsSeen := 0
	for f := 1; f <= n; f++ {
		if numDelay[f] == 0 || minDelay[f] < 0 {
			continue
		}
		induced += sumDelay[f]/float64(numDelay[f]) - float64(minDelay[f])/float64(sim.Millisecond)
		flowsSeen++
	}
	if flowsSeen > 0 {
		m.InducedDelayMs = induced / float64(flowsSeen)
	}
	m.RecoveryMs = recoveryTime(rxBytes, dropBin, int(sim.Duration(warm)/showdownBin))
	if m.Drops == 0 && flowsSeen == 0 {
		return nil, fmt.Errorf("scenarios: showdown %s/%v delivered no packets", shape.Name, kind)
	}
	return m, nil
}

// recoveryTime scans the binned goodput series for loss episodes (maximal
// runs of bins containing transport drops) and measures, for each, how
// long after the episode the windowed delivery rate takes to regain 80% of
// its pre-episode mean. Returns the mean over episodes in milliseconds.
func recoveryTime(rxBytes []int64, dropBin []int, warmBin int) float64 {
	const preWindow = 5
	var totalMs float64
	episodes := 0
	i := warmBin
	for i < len(dropBin) {
		if dropBin[i] == 0 {
			i++
			continue
		}
		start := i
		for i < len(dropBin) && dropBin[i] > 0 {
			i++
		}
		end := i - 1 // last bin with drops

		lo := start - preWindow
		if lo < warmBin {
			lo = warmBin
		}
		if lo >= start {
			continue // no pre-episode baseline
		}
		var pre float64
		for j := lo; j < start; j++ {
			pre += float64(rxBytes[j])
		}
		pre /= float64(start - lo)
		if pre <= 0 {
			continue
		}
		target := 0.8 * pre
		rec := len(rxBytes) - 1 - end // cap: never recovered before the run ended
		for j := end + 1; j < len(rxBytes); j++ {
			if float64(rxBytes[j]) >= target {
				rec = j - end
				break
			}
		}
		totalMs += float64(rec) * float64(showdownBin) / float64(sim.Millisecond)
		episodes++
	}
	if episodes == 0 {
		return 0
	}
	return math.Round(totalMs/float64(episodes)*100) / 100
}
