package exp

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// FleetOptions configures a fleet run.
type FleetOptions struct {
	// Seed is the fleet's base seed. World i receives
	// sim.SubSeed(Seed, i), the same index-stable derivation Sweep uses.
	Seed int64
	// Shards bounds the number of concurrent workers. 0 means
	// runtime.GOMAXPROCS(0); 1 recovers fully sequential execution. The
	// merged outcome does not depend on it (see Fleet).
	Shards int
}

// Fleet runs n worlds across a shard pool and merges their results in
// strict world order — the engine under core.RunFleet and cmd/fleet.
//
// It differs from SweepArena in one decisive way: Sweep materializes one
// Result per run, so a million-world campaign would hold a million
// reports; Fleet holds none. Each worker runs world i on its pooled
// Arena, then waits at a turnstile until every lower-indexed world has
// merged, calls merge(i, …) — still on the worker goroutine, while the
// world's arena-owned state is alive — and releases the arena scratch to
// the next world. Consequences:
//
//   - Memory is bounded by the shard count, not the fleet size: at most
//     one unmerged result exists per worker.
//   - The merge sequence is world 0, 1, 2, … regardless of Shards, so a
//     merge fold that is order-sensitive (reservoir sampling, float
//     accumulation) still produces byte-identical aggregates for any
//     shard count — the fleet-level analogue of Sweep's worker-count
//     invariance.
//   - The result value handed to merge may point into the worker's
//     arena (e.g. an arena-owned streaming analyzer): the arena is not
//     reused until merge returns.
//
// A run error or panic does not abort the fleet; it arrives at merge as
// that world's err for the caller to count or skip. An error (or panic)
// from merge itself aborts: no later world is merged and Fleet returns
// the error. There is no deadlock: the lowest unmerged index is always
// held by some worker, so the turnstile always advances.
func Fleet[R any](opts FleetOptions, n int,
	run func(index int, seed int64, a *Arena) (R, error),
	merge func(index int, seed int64, v R, err error) error) error {
	if n <= 0 {
		return nil
	}
	nw := Options{Workers: opts.Shards}.workers(n)
	if nw == 1 {
		// Sequential fast path: same order, same callbacks, no goroutines.
		a := getArena()
		defer putArena(a)
		for i := 0; i < n; i++ {
			seed := sim.SubSeed(opts.Seed, int64(i))
			v, err := protectRun(run, i, seed, a)
			if merr := protectMerge(merge, i, seed, v, err); merr != nil {
				return merr
			}
		}
		return nil
	}

	t := newTurnstile()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := getArena()
			defer putArena(a)
			for i := range jobs {
				if t.aborted() {
					continue // drain the queue so the feeder never blocks
				}
				seed := sim.SubSeed(opts.Seed, int64(i))
				v, err := protectRun(run, i, seed, a)
				if !t.enter(i) {
					continue // aborted while waiting our turn
				}
				t.leave(protectMerge(merge, i, seed, v, err))
			}
		}()
	}
	for i := 0; i < n; i++ {
		if t.aborted() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return t.err()
}

// turnstile serializes fleet merges into world-index order. Workers
// arrive with arbitrary indices; enter(i) blocks until index i is next
// (or the fleet aborted), leave publishes the merge outcome and admits
// the next index.
type turnstile struct {
	mu   sync.Mutex
	cond *sync.Cond
	next int
	fail error
}

func newTurnstile() *turnstile {
	t := &turnstile{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// enter blocks until it is index i's turn to merge; it reports false
// when the fleet aborted instead.
func (t *turnstile) enter(i int) bool {
	t.mu.Lock()
	for t.fail == nil && t.next != i {
		t.cond.Wait()
	}
	ok := t.fail == nil
	t.mu.Unlock()
	return ok
}

// leave records the merge outcome for index next and admits next+1. A
// non-nil error aborts the fleet: every waiter wakes and declines.
func (t *turnstile) leave(err error) {
	t.mu.Lock()
	if err != nil && t.fail == nil {
		t.fail = err
	}
	t.next++
	t.cond.Broadcast()
	t.mu.Unlock()
}

func (t *turnstile) aborted() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fail != nil
}

func (t *turnstile) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fail
}

// protectRun shields the fleet from a panicking world, like Sweep's
// protect: the panic becomes that world's error and reaches merge.
func protectRun[R any](run func(int, int64, *Arena) (R, error), i int, seed int64, a *Arena) (v R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: fleet world %d (seed %d) panicked: %v", i, seed, p)
		}
	}()
	return run(i, seed, a)
}

// protectMerge converts a merge panic into the fleet's abort error —
// unlike a world panic, a broken aggregator cannot be skipped.
func protectMerge[R any](merge func(int, int64, R, error) error, i int, seed int64, v R, err error) (merr error) {
	defer func() {
		if p := recover(); p != nil {
			merr = fmt.Errorf("exp: fleet merge of world %d (seed %d) panicked: %v", i, seed, p)
		}
	}()
	return merge(i, seed, v, err)
}
