package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

// fleetFold runs a fleet whose merge is deliberately order-sensitive (a
// non-commutative fold) and returns the merge order plus the fold value.
func fleetFold(t *testing.T, shards, n int) ([]int, uint64) {
	t.Helper()
	var order []int
	var fold uint64 = 1469598103934665603
	err := Fleet(FleetOptions{Seed: 42, Shards: shards}, n,
		func(i int, seed int64, a *Arena) (uint64, error) {
			if a == nil {
				t.Error("nil arena")
			}
			if seed != sim.SubSeed(42, int64(i)) {
				t.Errorf("world %d got seed %d", i, seed)
			}
			// Uneven work so completion order scrambles under parallelism.
			if i%7 == 0 {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
			}
			return uint64(seed) ^ uint64(i), nil
		},
		func(i int, seed int64, v uint64, err error) error {
			if err != nil {
				return err
			}
			order = append(order, i)
			fold = (fold ^ v) * 1099511628211
			return nil
		})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	return order, fold
}

// TestFleetMergesInWorldOrder pins the turnstile: merges arrive 0..n-1
// for every shard count, and the order-sensitive fold is shard-invariant.
func TestFleetMergesInWorldOrder(t *testing.T) {
	const n = 64
	var want uint64
	for _, shards := range []int{1, 2, 4, 16, 0} {
		order, fold := fleetFold(t, shards, n)
		if len(order) != n {
			t.Fatalf("shards=%d: %d merges, want %d", shards, len(order), n)
		}
		for i, idx := range order {
			if idx != i {
				t.Fatalf("shards=%d: merge %d got world %d", shards, i, idx)
			}
		}
		if shards == 1 {
			want = fold
		} else if fold != want {
			t.Fatalf("shards=%d: fold %x, want the sequential %x", shards, fold, want)
		}
	}
}

// TestFleetRunErrorReachesMerge pins non-fatal world failures: the error
// lands in merge with the right index and the fleet completes.
func TestFleetRunErrorReachesMerge(t *testing.T) {
	boom := errors.New("boom")
	var failed, merged int
	err := Fleet(FleetOptions{Shards: 4}, 20,
		func(i int, seed int64, a *Arena) (int, error) {
			if i%5 == 0 {
				return 0, boom
			}
			return i, nil
		},
		func(i int, seed int64, v int, err error) error {
			merged++
			if i%5 == 0 {
				if !errors.Is(err, boom) {
					return fmt.Errorf("world %d: err=%v, want boom", i, err)
				}
				failed++
			} else if err != nil || v != i {
				return fmt.Errorf("world %d: v=%d err=%v", i, v, err)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if merged != 20 || failed != 4 {
		t.Fatalf("merged=%d failed=%d, want 20/4", merged, failed)
	}
}

// TestFleetRunPanicBecomesError pins panic capture on the run side.
func TestFleetRunPanicBecomesError(t *testing.T) {
	var got error
	err := Fleet(FleetOptions{Shards: 2}, 4,
		func(i int, seed int64, a *Arena) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		},
		func(i int, seed int64, v int, err error) error {
			if i == 2 {
				got = err
			}
			return nil
		})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if got == nil || !strings.Contains(got.Error(), "kaboom") {
		t.Fatalf("world 2 error = %v, want captured panic", got)
	}
}

// TestFleetMergeErrorAborts pins the abort path: after merge fails at
// world k, no later world merges, and Fleet returns the error.
func TestFleetMergeErrorAborts(t *testing.T) {
	stop := errors.New("stop")
	for _, shards := range []int{1, 4} {
		var last atomic.Int64
		last.Store(-1)
		err := Fleet(FleetOptions{Shards: shards}, 200,
			func(i int, seed int64, a *Arena) (int, error) { return i, nil },
			func(i int, seed int64, v int, err error) error {
				last.Store(int64(i))
				if i == 7 {
					return stop
				}
				return nil
			})
		if !errors.Is(err, stop) {
			t.Fatalf("shards=%d: err=%v, want stop", shards, err)
		}
		if last.Load() != 7 {
			t.Fatalf("shards=%d: last merged world %d, want 7", shards, last.Load())
		}
	}
}

// TestFleetMergePanicAborts pins panic capture on the merge side.
func TestFleetMergePanicAborts(t *testing.T) {
	err := Fleet(FleetOptions{Shards: 3}, 50,
		func(i int, seed int64, a *Arena) (int, error) { return i, nil },
		func(i int, seed int64, v int, err error) error {
			if i == 5 {
				panic("merge kaboom")
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "merge kaboom") {
		t.Fatalf("err=%v, want captured merge panic", err)
	}
}

// TestFleetEmpty pins the trivial cases.
func TestFleetEmpty(t *testing.T) {
	err := Fleet(FleetOptions{}, 0,
		func(i int, seed int64, a *Arena) (int, error) { t.Error("run called"); return 0, nil },
		func(i int, seed int64, v int, err error) error { t.Error("merge called"); return nil })
	if err != nil {
		t.Fatalf("empty fleet: %v", err)
	}
}
