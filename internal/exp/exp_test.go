package exp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sim"
)

// stochasticRun emulates a seeded experiment: the value depends only on
// the run's seed and config, via its own private rng.
func stochasticRun(r Run[int]) (float64, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	sum := float64(r.Config)
	for i := 0; i < 1000; i++ {
		sum += rng.Float64()
	}
	return sum, nil
}

func TestSweepWorkerInvariance(t *testing.T) {
	t.Parallel()
	configs := make([]int, 37)
	for i := range configs {
		configs[i] = i * 10
	}
	base := Sweep(Options{Seed: 42, Workers: 1}, configs, stochasticRun)
	for _, w := range []int{2, 3, 8, 0} {
		got := Sweep(Options{Seed: 42, Workers: w}, configs, stochasticRun)
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from sequential run", w)
		}
	}
}

// TestSweepGOMAXPROCSInvariance pins the default worker count's behaviour
// across processor configurations: Workers=0 means GOMAXPROCS, and CI runs
// this package under `go test -cpu 1,2,4`, so the same assertion executes
// with three different default pool sizes. The expected values are
// computed from the SubSeed contract directly — not from another sweep —
// so a scheduling-dependent result cannot accidentally agree with itself.
func TestSweepGOMAXPROCSInvariance(t *testing.T) {
	t.Parallel()
	const n = 53
	res := Replicate(Options{Seed: 1234, Workers: 0}, n, func(i int, seed int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		return float64(i) + rng.Float64(), nil
	})
	if len(res) != n {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		seed := sim.SubSeed(1234, int64(i))
		want := float64(i) + rand.New(rand.NewSource(seed)).Float64()
		if r.Err != nil || r.Value != want || r.Seed != seed {
			t.Fatalf("run %d (GOMAXPROCS=%d): got (%v, %v, seed %d), want (%v, seed %d)",
				i, runtime.GOMAXPROCS(0), r.Value, r.Err, r.Seed, want, seed)
		}
	}
}

func TestSweepOrderAndSeeds(t *testing.T) {
	t.Parallel()
	configs := []int{5, 6, 7}
	res := Sweep(Options{Seed: 9, Workers: 2}, configs, func(r Run[int]) (int, error) {
		return r.Config * 2, nil
	})
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d has index %d", i, r.Index)
		}
		if r.Seed != sim.SubSeed(9, int64(i)) {
			t.Fatalf("result %d seed %d, want SubSeed(9,%d)=%d", i, r.Seed, i, sim.SubSeed(9, int64(i)))
		}
		if r.Value != configs[i]*2 {
			t.Fatalf("result %d value %d", i, r.Value)
		}
	}
}

func TestSweepRunsConcurrently(t *testing.T) {
	t.Parallel()
	// Both runs must be in flight at once for either to finish.
	var wg sync.WaitGroup
	wg.Add(2)
	res := Sweep(Options{Workers: 2}, []int{0, 1}, func(r Run[int]) (int, error) {
		wg.Done()
		wg.Wait()
		return r.Index, nil
	})
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrorCapture(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	res := Sweep(Options{Workers: 4}, []int{0, 1, 2, 3}, func(r Run[int]) (int, error) {
		if r.Index == 2 {
			return 0, boom
		}
		return r.Index, nil
	})
	if res[2].Err == nil || !errors.Is(res[2].Err, boom) {
		t.Fatalf("error not captured: %+v", res[2])
	}
	for _, i := range []int{0, 1, 3} {
		if res[i].Err != nil || res[i].Value != i {
			t.Fatalf("healthy run %d corrupted: %+v", i, res[i])
		}
	}
	if err := FirstErr(res); !errors.Is(err, boom) || !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("FirstErr = %v", err)
	}
	if _, err := Values(res); err == nil {
		t.Fatal("Values ignored the error")
	}
}

func TestSweepPanicCapture(t *testing.T) {
	t.Parallel()
	res := Sweep(Options{Seed: 3, Workers: 2}, []int{0, 1}, func(r Run[int]) (int, error) {
		if r.Index == 1 {
			panic("kaboom")
		}
		return 7, nil
	})
	if res[0].Err != nil || res[0].Value != 7 {
		t.Fatalf("healthy run: %+v", res[0])
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %+v", res[1])
	}
}

// A panic's error must name the offending run — its index and its seed —
// so a failed replication in a thousand-run campaign is reproducible
// without bisecting.
func TestSweepPanicNamesRunIndexAndSeed(t *testing.T) {
	t.Parallel()
	const bad = 3
	res := Sweep(Options{Seed: 99, Workers: 4}, make([]struct{}, 6), func(r Run[struct{}]) (int, error) {
		if r.Index == bad {
			panic("replication exploded")
		}
		return r.Index, nil
	})
	err := res[bad].Err
	if err == nil {
		t.Fatal("panic not captured")
	}
	wantSeed := fmt.Sprintf("seed %d", sim.SubSeed(99, bad))
	for _, want := range []string{fmt.Sprintf("run %d", bad), wantSeed, "replication exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("panic error %q does not name %q", err, want)
		}
	}
	// FirstErr keeps the attribution when the sweep is unwrapped at the
	// call site.
	if ferr := FirstErr(res); ferr == nil || !strings.Contains(ferr.Error(), wantSeed) {
		t.Fatalf("FirstErr lost the seed attribution: %v", ferr)
	}
	for i, r := range res {
		if i != bad && (r.Err != nil || r.Value != i) {
			t.Fatalf("healthy run %d corrupted: %+v", i, r)
		}
	}
}

func TestSweepEmptyAndValues(t *testing.T) {
	t.Parallel()
	res := Sweep(Options{}, nil, stochasticRun)
	if len(res) != 0 {
		t.Fatal("empty sweep produced results")
	}
	vals, err := Values(Sweep(Options{Workers: 1}, []int{1, 2}, func(r Run[int]) (int, error) {
		return r.Config + 1, nil
	}))
	if err != nil || !reflect.DeepEqual(vals, []int{2, 3}) {
		t.Fatalf("Values = %v, %v", vals, err)
	}
}

func TestReplicate(t *testing.T) {
	t.Parallel()
	seq := Replicate(Options{Seed: 11, Workers: 1}, 9, func(i int, seed int64) (int64, error) {
		return seed ^ int64(i), nil
	})
	par := Replicate(Options{Seed: 11, Workers: 4}, 9, func(i int, seed int64) (int64, error) {
		return seed ^ int64(i), nil
	})
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("replicate not worker-invariant")
	}
	if seq[4].Value != sim.SubSeed(11, 4)^4 {
		t.Fatalf("replication 4 = %d", seq[4].Value)
	}
}

func TestEstimateOf(t *testing.T) {
	t.Parallel()
	if e := EstimateOf(nil); e.N != 0 || e.Mean != 0 || e.CI95 != 0 {
		t.Fatalf("empty estimate: %+v", e)
	}
	if e := EstimateOf([]float64{4}); e.Mean != 4 || e.CI95 != 0 || e.N != 1 {
		t.Fatalf("singleton estimate: %+v", e)
	}
	// {1,2,3}: mean 2, sd 1, CI95 = t(2)·1/√3 = 4.303/1.732... ≈ 2.484.
	e := EstimateOf([]float64{1, 2, 3})
	if e.Mean != 2 || math.Abs(e.CI95-2.4843) > 1e-3 {
		t.Fatalf("estimate of {1,2,3}: %+v", e)
	}
	if math.Abs(e.Lo()-(2-2.4843)) > 1e-3 || math.Abs(e.Hi()-(2+2.4843)) > 1e-3 {
		t.Fatalf("interval bounds: [%v, %v]", e.Lo(), e.Hi())
	}
	// Large samples fall back to the normal critical value.
	big := make([]float64, 64)
	for i := range big {
		big[i] = float64(i % 2)
	}
	eb := EstimateOf(big)
	sd := math.Sqrt(float64(len(big)) / float64(len(big)-1) * 0.25)
	want := 1.96 * sd / math.Sqrt(float64(len(big)))
	if math.Abs(eb.CI95-want) > 1e-9 {
		t.Fatalf("large-sample CI %v, want %v", eb.CI95, want)
	}
}

func TestSummarizeReports(t *testing.T) {
	t.Parallel()
	mk := func(n int, f001, cov float64, rejects bool) *analysis.Report {
		return &analysis.Report{
			N: n, Lambda: 1, FracBelow001: f001, FracBelow025: f001 + 0.1,
			FracBelow1: f001 + 0.2, CoV: cov, KSDistance: 0.3, RejectsPoisson: rejects,
		}
	}
	s := SummarizeReports([]*analysis.Report{
		mk(100, 0.9, 5, true), nil, mk(200, 0.8, 7, false),
	})
	if s.Replications != 2 {
		t.Fatalf("replications = %d", s.Replications)
	}
	if s.Losses.Mean != 150 || math.Abs(s.FracBelow001.Mean-0.85) > 1e-9 || s.CoV.Mean != 6 {
		t.Fatalf("summary means: %+v", s)
	}
	if s.RejectFrac != 0.5 {
		t.Fatalf("reject frac = %v", s.RejectFrac)
	}
	if s.FracBelow001.CI95 <= 0 {
		t.Fatal("CI collapsed")
	}
	if z := SummarizeReports(nil); z.Replications != 0 || z.RejectFrac != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestSweepLoadBalancing(t *testing.T) {
	t.Parallel()
	// More configs than workers: every config must still run exactly once.
	n := 101
	counts := make([]int32, n)
	var mu sync.Mutex
	res := Sweep(Options{Workers: 7}, make([]struct{}, n), func(r Run[struct{}]) (int, error) {
		mu.Lock()
		counts[r.Index]++
		mu.Unlock()
		return r.Index, nil
	})
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("config %d ran %d times", i, c)
		}
	}
}

func ExampleSweep() {
	// Three replications of a seeded "experiment", two workers. The output
	// is identical for any worker count.
	res := Replicate(Options{Seed: 1, Workers: 2}, 3, func(i int, seed int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed))
		return rng.Float64(), nil
	})
	for _, r := range res {
		fmt.Printf("run %d: %.3f\n", r.Index, r.Value)
	}
	// Output:
	// run 0: 0.721
	// run 1: 0.212
	// run 2: 0.978
}
