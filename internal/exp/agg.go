package exp

import (
	"math"

	"repro/internal/analysis"
)

// Estimate is a sample mean with a 95% confidence half-width from the
// Student t distribution — the standard way to report "mean ± CI over R
// replications" for a simulation study.
type Estimate struct {
	Mean float64
	// CI95 is the half-width of the 95% confidence interval for the mean;
	// 0 when fewer than two samples exist.
	CI95 float64
	N    int
}

// Lo and Hi bound the confidence interval.
func (e Estimate) Lo() float64 { return e.Mean - e.CI95 }
func (e Estimate) Hi() float64 { return e.Mean + e.CI95 }

// EstimateOf summarizes one metric across replications.
func EstimateOf(xs []float64) Estimate {
	e := Estimate{N: len(xs)}
	if len(xs) == 0 {
		return e
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	e.Mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return e
	}
	var ss float64
	for _, x := range xs {
		d := x - e.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	e.CI95 = tCrit95(len(xs)-1) * sd / math.Sqrt(float64(len(xs)))
	return e
}

// tCrit95 is the two-sided 95% Student t critical value for df degrees of
// freedom. Sweeps replicate a handful of times, so small df dominates.
func tCrit95(df int) float64 {
	table := [...]float64{ // df 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df < 1 {
		return 0
	}
	if df <= len(table) {
		return table[df-1]
	}
	return 1.96
}

// ReportSummary aggregates the headline metrics of replicated
// analysis.Reports: each field is the mean ± 95% CI of that metric across
// replications.
type ReportSummary struct {
	Replications int

	Losses       Estimate // events analyzed per replication
	Lambda       Estimate // loss arrival rate, events/RTT
	FracBelow001 Estimate
	FracBelow025 Estimate
	FracBelow1   Estimate
	CoV          Estimate
	KSDistance   Estimate

	// RejectFrac is the fraction of replications whose KS test rejects the
	// Poisson hypothesis at α = 0.05.
	RejectFrac float64
}

// SummarizeReports aggregates replicated reports. Nil reports are skipped,
// so callers can pass partially failed sweeps.
func SummarizeReports(reports []*analysis.Report) ReportSummary {
	var (
		losses, lambda, f001, f025, f1, cov, ks []float64
		rejects                                 int
	)
	for _, r := range reports {
		if r == nil {
			continue
		}
		losses = append(losses, float64(r.N))
		lambda = append(lambda, r.Lambda)
		f001 = append(f001, r.FracBelow001)
		f025 = append(f025, r.FracBelow025)
		f1 = append(f1, r.FracBelow1)
		cov = append(cov, r.CoV)
		ks = append(ks, r.KSDistance)
		if r.RejectsPoisson {
			rejects++
		}
	}
	s := ReportSummary{
		Replications: len(losses),
		Losses:       EstimateOf(losses),
		Lambda:       EstimateOf(lambda),
		FracBelow001: EstimateOf(f001),
		FracBelow025: EstimateOf(f025),
		FracBelow1:   EstimateOf(f1),
		CoV:          EstimateOf(cov),
		KSDistance:   EstimateOf(ks),
	}
	if s.Replications > 0 {
		s.RejectFrac = float64(rejects) / float64(s.Replications)
	}
	return s
}
