package exp_test

import (
	"fmt"

	"repro/internal/exp"
)

// ExampleFleet shows the fleet engine's contract: run callbacks execute
// concurrently on pooled arenas, but merge always sees world 0, 1, 2, …
// — so an order-sensitive fold is identical for any shard count.
func ExampleFleet() {
	var order []int
	err := exp.Fleet(exp.FleetOptions{Seed: 42, Shards: 4}, 8,
		func(i int, seed int64, a *exp.Arena) (int, error) {
			return i * i, nil // runs in parallel, any completion order
		},
		func(i int, seed int64, v int, err error) error {
			order = append(order, v) // merges strictly in world order
			return nil
		})
	fmt.Println(err, order)
	// Output: <nil> [0 1 4 9 16 25 36 49]
}
