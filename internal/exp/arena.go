package exp

import (
	"repro/internal/analysis"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Arena is the per-worker scratch a sweep threads through its run
// functions: the reusable pieces of a simulated world and its measurement
// pipeline that are expensive to reallocate per replication — the
// scheduler's event freelist, the packet pool's population, the streaming
// analyzer's histogram/reservoir/PMF buffers, the burst tracker's flow
// set, and a sink-mode drop recorder.
//
// Ownership rules:
//
//   - An arena belongs to exactly one sweep worker; SweepArena creates one
//     per worker goroutine, so nothing in it is (or needs to be) safe for
//     concurrent use.
//   - Every accessor resets the piece it returns, so state can never leak
//     from one replication into the next — which is what keeps arena-run
//     sweeps bit-identical to fresh-world sweeps for any worker count.
//   - Anything a run RETAINS past its return (a Report kept in a result
//     slice, a trace handed to the caller) must be detached first —
//     analysis.Report.Clone, or a Recorder the run allocated itself —
//     because the arena recycles its scratch on the next run.
//
// All fields are lazy: a worker that never asks for a piece never pays
// for it, and Sweep's non-arena call path costs one empty struct per
// worker.
type Arena struct {
	sched   *sim.Scheduler
	pool    *netsim.PacketPool
	an      *analysis.Streaming
	bursts  *analysis.BurstTracker
	rec     *trace.Recorder
	scratch map[string]any
}

// NewArena returns an empty arena. Sweeps create arenas themselves; the
// constructor exists for single-run callers that want the same reuse
// across hand-rolled loops.
func NewArena() *Arena { return &Arena{} }

// Scheduler returns the arena's scheduler, reset to the empty time-zero
// state (the event freelist and queue capacity survive the reset). The
// reset recovers in-flight packets: any *netsim.Packet riding an abandoned
// event as its argument is recycled into the arena's pool instead of
// leaking, so the pool's population survives world resets intact.
func (a *Arena) Scheduler() *sim.Scheduler {
	if a.sched == nil {
		a.sched = sim.NewScheduler()
		a.sched.SetResetDrain(a.drainArg)
	} else {
		a.sched.Reset()
	}
	return a.sched
}

// drainArg is the scheduler's reset-drain hook: recover abandoned packets
// into the pool, ignore every other argument type. Put is nil-safe, so a
// worker that never touched the pool pays nothing.
func (a *Arena) drainArg(v any) {
	if p, ok := v.(*netsim.Packet); ok {
		a.pool.Put(p)
	}
}

// Pool returns the arena's packet pool. Pools need no reset: Get zeroes
// every packet it hands out, so a recycled population from a previous
// replication is indistinguishable from fresh allocations.
func (a *Arena) Pool() *netsim.PacketPool {
	if a.pool == nil {
		a.pool = netsim.NewPacketPool()
	}
	return a.pool
}

// Recorder returns the arena's drop recorder, reset and with no sink
// installed. It is meant for sink-mode use inside one run; a run that
// retains its trace in a result must allocate its own recorder instead.
func (a *Arena) Recorder() *trace.Recorder {
	if a.rec == nil {
		a.rec = &trace.Recorder{}
	} else {
		a.rec.Reset()
	}
	a.rec.SetSink(nil, true)
	return a.rec
}

// Analyzer returns the arena's streaming analyzer, reset for a run with
// the given RTT and config. The error mirrors analysis.Analyze's RTT
// validation.
func (a *Arena) Analyzer(rtt sim.Duration, cfg analysis.Config) (*analysis.Streaming, error) {
	if a.an == nil {
		an, err := analysis.NewStreaming(rtt, cfg)
		if err != nil {
			return nil, err
		}
		a.an = an
		return an, nil
	}
	if err := a.an.Reset(rtt, cfg); err != nil {
		return nil, err
	}
	return a.an, nil
}

// Scratch returns the value cached under key, or nil when nothing is
// stored. It is the read side of the arena's open scratch space (see
// SetScratch).
func (a *Arena) Scratch(key string) any { return a.scratch[key] }

// SetScratch caches an arbitrary reusable value under key for later runs
// on the same arena. Unlike the typed accessors above, scratch values are
// NOT reset on access — the caller owns their rewind discipline. The
// canonical user is topo.NetworkIn, which caches one compiled-and-
// instantiated world per structural shape and Resets it per run; layers
// above exp use this to thread world reuse through a sweep without exp
// importing them (exp cannot import topo — topo's scenario registry
// already imports exp).
func (a *Arena) SetScratch(key string, v any) {
	if a.scratch == nil {
		a.scratch = make(map[string]any)
	}
	a.scratch[key] = v
}

// Bursts returns the arena's burst tracker, reset with the given
// clustering gap.
func (a *Arena) Bursts(maxGap sim.Duration) *analysis.BurstTracker {
	if a.bursts == nil {
		a.bursts = &analysis.BurstTracker{}
	}
	a.bursts.Reset(maxGap)
	return a.bursts
}
