// Package exp is the deterministic parallel experiment runner. Every
// multi-replication sweep in the repository — figure replications across
// seeds, the PlanetLab path campaign, the Figure 8 latency grid, the
// back-to-back artifacts of cmd/paperexp — fans out through Sweep.
//
// The contract that makes parallelism safe and reproducible:
//
//   - One simulated world is confined to one goroutine. A sim.Scheduler,
//     every *rand.Rand feeding it, and every component attached to it must
//     be created inside the run function and never shared across runs
//     (see the sim package docs).
//   - Run i's seed is sim.SubSeed(Options.Seed, i), a pure function of
//     the base seed and the run index. Results therefore do not depend on
//     the worker count or on completion order: a sweep with 1 worker and
//     a sweep with N workers produce identical Result slices.
//   - Results come back ordered by run index, with per-run errors (and
//     panics, converted to errors) captured rather than aborting the
//     whole sweep.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Options configures a sweep.
type Options struct {
	// Seed is the base seed. Run i receives sim.SubSeed(Seed, i) so each
	// replication draws from an independent, index-stable stream.
	Seed int64
	// Workers bounds the number of concurrent runs. 0 means
	// runtime.GOMAXPROCS(0); 1 recovers fully sequential execution.
	Workers int
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run is the per-run input handed to a sweep function.
type Run[C any] struct {
	// Index is the run's position in the config slice.
	Index int
	// Seed is sim.SubSeed(Options.Seed, Index). Run functions that need
	// more than one stream should derive children with further SubSeed
	// calls rather than sharing one *rand.Rand.
	Seed int64
	// Config is the run's experiment configuration.
	Config C
}

// Result is one run's outcome, reported in input order.
type Result[R any] struct {
	Index int
	Seed  int64
	Value R
	Err   error
}

// Sweep executes fn once per config, fanning the runs out across a worker
// pool. It returns one Result per config, in config order, regardless of
// which worker ran what or in which order runs finished. A run that
// returns an error or panics records the failure in its Result slot; the
// other runs proceed.
func Sweep[C, R any](opts Options, configs []C, fn func(Run[C]) (R, error)) []Result[R] {
	return SweepArena(opts, configs, func(r Run[C], _ *Arena) (R, error) {
		return fn(r)
	})
}

// SweepArena is Sweep with per-worker scratch: each worker goroutine owns
// one Arena, created when the worker starts and handed to every run that
// worker executes. Replications that route their scheduler, packet pool
// and analysis scratch through the arena reuse those allocations across
// the whole sweep instead of rebuilding them per run.
//
// The determinism contract is unchanged — every arena accessor resets the
// state it hands out, so a run on a warm arena is bit-identical to a run
// on a cold one and results stay invariant under the worker count. The
// one new rule: values retained in a Result must not point into the
// arena (see Arena).
func SweepArena[C, R any](opts Options, configs []C, fn func(Run[C], *Arena) (R, error)) []Result[R] {
	results := make([]Result[R], len(configs))
	if len(configs) == 0 {
		return results
	}
	nw := opts.workers(len(configs))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := getArena()
			defer putArena(arena)
			for i := range jobs {
				r := Run[C]{Index: i, Seed: sim.SubSeed(opts.Seed, int64(i)), Config: configs[i]}
				v, err := protect(fn, r, arena)
				results[i] = Result[R]{Index: i, Seed: r.Seed, Value: v, Err: err}
			}
		}()
	}
	for i := range configs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// arenaPool recycles worker arenas across sweeps. A sweep's arenas carry
// warm capacity that is expensive to regrow — event freelists, wheel-slot
// and queue-store slices, packet populations, cached compiled worlds — and
// every one of those is rewound by its accessor (Scheduler resets, worlds
// Reset via topo.NetworkIn), so a pooled arena is observationally
// identical to a fresh one while skipping the regrowth. Back-to-back
// sweeps (replication campaigns, benchmark iterations, paperexp artifact
// batches) therefore pay world construction once per process, not once
// per sweep. Under memory pressure the pool sheds arenas like any
// sync.Pool.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

func getArena() *Arena  { return arenaPool.Get().(*Arena) }
func putArena(a *Arena) { arenaPool.Put(a) }

// protect runs fn, converting a panic into an error so one bad replication
// cannot take down a whole sweep.
func protect[C, R any](fn func(Run[C], *Arena) (R, error), r Run[C], a *Arena) (v R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: run %d (seed %d) panicked: %v", r.Index, r.Seed, p)
		}
	}()
	return fn(r, a)
}

// Replicate runs fn n times — the "same experiment, n independent seeds"
// special case of Sweep.
func Replicate[R any](opts Options, n int, fn func(index int, seed int64) (R, error)) []Result[R] {
	return Sweep(opts, make([]struct{}, n), func(r Run[struct{}]) (R, error) {
		return fn(r.Index, r.Seed)
	})
}

// ReplicateArena is Replicate with the per-worker Arena of SweepArena.
func ReplicateArena[R any](opts Options, n int, fn func(index int, seed int64, a *Arena) (R, error)) []Result[R] {
	return SweepArena(opts, make([]struct{}, n), func(r Run[struct{}], a *Arena) (R, error) {
		return fn(r.Index, r.Seed, a)
	})
}

// Values extracts the result values, failing on the first captured error.
func Values[R any](results []Result[R]) ([]R, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, nil
}

// FirstErr returns the lowest-index captured error, or nil.
func FirstErr[R any](results []Result[R]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("exp: run %d: %w", r.Index, r.Err)
		}
	}
	return nil
}
