// Package stats provides the statistical machinery the paper's analysis
// uses: fixed-bin histograms/PDFs (bin size 0.02 RTT in the paper),
// Poisson/exponential references with matched rate, summary moments,
// quantiles, and the index of dispersion used to quantify burstiness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the standard moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(len(xs)-1)
		s.Std = math.Sqrt(s.Var)
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies xs, so the input is not
// reordered. Panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean is a convenience for Summarize(xs).Mean on hot paths.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// IndexOfDispersion returns Var/Mean of event counts in fixed windows — 1
// for a Poisson process, ≫1 for a bursty process. It is the paper's
// "more rigorous analysis" direction and our quantitative burstiness
// check. times must be nondecreasing; window > 0.
func IndexOfDispersion(times []float64, window float64) float64 {
	if len(times) == 0 || window <= 0 {
		return 0
	}
	end := times[len(times)-1]
	nwin := int(end/window) + 1
	counts := make([]float64, nwin)
	for _, t := range times {
		idx := int(t / window)
		if idx >= nwin {
			idx = nwin - 1
		}
		counts[idx]++
	}
	s := Summarize(counts)
	if s.Mean == 0 {
		return 0
	}
	// Population variance is conventional for IoD.
	var ss float64
	for _, c := range counts {
		d := c - s.Mean
		ss += d * d
	}
	return (ss / float64(len(counts))) / s.Mean
}

// DispersionCounter is the streaming form of IndexOfDispersion: it counts
// events into fixed windows as they arrive (times must be nondecreasing,
// which a single scheduler guarantees) and folds each closed window's
// count into running Σc and Σc² instead of materializing a counts slice.
// Value matches the batch IndexOfDispersion of the same event times up to
// floating-point associativity. The zero value is unusable; call Reset.
type DispersionCounter struct {
	window   float64
	n        int64 // events observed
	curIdx   int64 // window index of the open window
	curCount int64 // events in the open window
	sumSq    float64
	lastT    float64
	started  bool
}

// Reset prepares the counter for a new run with the given window width.
func (c *DispersionCounter) Reset(window float64) {
	*c = DispersionCounter{window: window}
}

// Observe counts one event at time t (same units as the window).
func (c *DispersionCounter) Observe(t float64) {
	if c.window <= 0 {
		return
	}
	idx := int64(t / c.window)
	switch {
	case !c.started:
		c.started = true
		c.curIdx = idx
		c.curCount = 1
	case idx == c.curIdx:
		c.curCount++
	default:
		// Windows skipped between curIdx and idx are empty: they
		// contribute 0 to Σc² and only enter through the window count.
		c.sumSq += float64(c.curCount) * float64(c.curCount)
		c.curIdx = idx
		c.curCount = 1
	}
	c.n++
	c.lastT = t
}

// Value returns the index of dispersion of the counts seen so far,
// including every empty window up to the last observed event — the same
// population-variance convention as IndexOfDispersion.
func (c *DispersionCounter) Value() float64 {
	if c.n == 0 || c.window <= 0 {
		return 0
	}
	nwin := int64(c.lastT/c.window) + 1
	sumSq := c.sumSq + float64(c.curCount)*float64(c.curCount)
	mean := float64(c.n) / float64(nwin)
	if mean == 0 {
		return 0
	}
	popVar := sumSq/float64(nwin) - mean*mean
	if popVar < 0 {
		popVar = 0 // floating-point guard; variance is nonnegative
	}
	return popVar / mean
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs)-k; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
