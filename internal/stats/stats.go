// Package stats provides the statistical machinery the paper's analysis
// uses: fixed-bin histograms/PDFs (bin size 0.02 RTT in the paper),
// Poisson/exponential references with matched rate, summary moments,
// quantiles, and the index of dispersion used to quantify burstiness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the standard moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(len(xs)-1)
		s.Std = math.Sqrt(s.Var)
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies xs, so the input is not
// reordered. Panics on empty input or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean is a convenience for Summarize(xs).Mean on hot paths.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// IndexOfDispersion returns Var/Mean of event counts in fixed windows — 1
// for a Poisson process, ≫1 for a bursty process. It is the paper's
// "more rigorous analysis" direction and our quantitative burstiness
// check. times must be nondecreasing; window > 0.
func IndexOfDispersion(times []float64, window float64) float64 {
	if len(times) == 0 || window <= 0 {
		return 0
	}
	end := times[len(times)-1]
	nwin := int(end/window) + 1
	counts := make([]float64, nwin)
	for _, t := range times {
		idx := int(t / window)
		if idx >= nwin {
			idx = nwin - 1
		}
		counts[idx]++
	}
	s := Summarize(counts)
	if s.Mean == 0 {
		return 0
	}
	// Population variance is conventional for IoD.
	var ss float64
	for _, c := range counts {
		d := c - s.Mean
		ss += d * d
	}
	return (ss / float64(len(counts))) / s.Mean
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
func Autocorrelation(xs []float64, k int) float64 {
	if k < 0 || k >= len(xs) {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs)-k; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
