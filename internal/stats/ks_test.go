package stats

import (
	"math/rand"
	"testing"
)

func TestKSExponentialAcceptsExponentialSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 3
	}
	d := KSExponential(xs)
	if d > KSCriticalValue(len(xs), 0.05) {
		t.Fatalf("true exponential rejected: D=%v crit=%v",
			d, KSCriticalValue(len(xs), 0.05))
	}
	if RejectsExponential(xs) {
		t.Fatal("RejectsExponential true for exponential data")
	}
}

func TestKSExponentialRejectsClusteredSample(t *testing.T) {
	// Bimodal: 90% tiny intervals, 10% huge — a bursty loss process.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	for i := range xs {
		if rng.Float64() < 0.9 {
			xs[i] = 0.001
		} else {
			xs[i] = 10
		}
	}
	if !RejectsExponential(xs) {
		t.Fatalf("clustered sample accepted as exponential: D=%v", KSExponential(xs))
	}
	if KSExponential(xs) < 0.3 {
		t.Fatalf("D=%v too small for 90%% clustering", KSExponential(xs))
	}
}

func TestKSExponentialRejectsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = rng.Float64() // uniform[0,1) is not exponential
	}
	if !RejectsExponential(xs) {
		t.Fatal("uniform accepted as exponential")
	}
}

func TestKSEdgeCases(t *testing.T) {
	if KSExponential(nil) != 0 {
		t.Fatal("empty sample D != 0")
	}
	if KSExponential([]float64{0, 0, 0}) != 1 {
		t.Fatal("zero-mean sample should give D=1")
	}
	if KSCriticalValue(0, 0.05) != 1 {
		t.Fatal("n=0 critical value")
	}
	if KSCriticalValue(100, 0.01) <= KSCriticalValue(100, 0.05) {
		t.Fatal("stricter alpha must have larger critical value")
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	KSExponential(xs)
	if xs[0] != 3 {
		t.Fatal("KS mutated input")
	}
}
