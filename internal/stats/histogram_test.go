package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0.5, 4) // bins [0,.5) [.5,1) [1,1.5) [1.5,2)
	h.AddAll([]float64{0.1, 0.2, 0.6, 1.9, 5.0})
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 2 || h.Count(1) != 1 || h.Count(2) != 0 || h.Count(3) != 1 {
		t.Fatalf("counts = %d %d %d %d", h.Count(0), h.Count(1), h.Count(2), h.Count(3))
	}
	if h.Overflow != 1 {
		t.Fatalf("overflow = %d", h.Overflow)
	}
	pmf := h.PMF()
	if !approx(pmf[0], 0.4, 1e-12) {
		t.Fatalf("pmf[0] = %v", pmf[0])
	}
	den := h.Density()
	if !approx(den[0], 0.8, 1e-12) {
		t.Fatalf("density[0] = %v", den[0])
	}
	if h.NumBins() != 4 {
		t.Fatalf("numbins = %d", h.NumBins())
	}
	if !approx(h.BinCenter(1), 0.75, 1e-12) {
		t.Fatalf("center = %v", h.BinCenter(1))
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(1, 3)
	h.AddAll([]float64{0.5, 1.5, 1.6, 2.5})
	cdf := h.CDF()
	want := []float64{0.25, 0.75, 1.0}
	for i := range want {
		if !approx(cdf[i], want[i], 1e-12) {
			t.Fatalf("cdf[%d] = %v want %v", i, cdf[i], want[i])
		}
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram(0.02, 100)
	// 90 tiny observations, 10 at 1.0.
	for i := 0; i < 90; i++ {
		h.Add(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Add(1.0)
	}
	if f := h.FractionBelow(0.02); !approx(f, 0.9, 1e-9) {
		t.Fatalf("below 0.02 = %v", f)
	}
	if f := h.FractionBelow(2.0); !approx(f, 1.0, 1e-9) {
		t.Fatalf("below 2 = %v", f)
	}
	// Partial-bin interpolation: half of the first bin holds all 90.
	f := h.FractionBelow(0.01)
	if f < 0.4 || f > 0.9 {
		t.Fatalf("below 0.01 = %v", f)
	}
}

func TestHistogramFractionBelowCountsOverflowInDenominator(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Add(0.5)
	h.Add(10) // overflow
	if f := h.FractionBelow(1); !approx(f, 0.5, 1e-12) {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 4)
	for _, v := range h.PMF() {
		if v != 0 {
			t.Fatal("nonzero pmf on empty histogram")
		}
	}
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("nonzero cdf on empty histogram")
		}
	}
	if h.FractionBelow(1) != 0 {
		t.Fatal("nonzero fraction on empty histogram")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(1, 0) },
		func() { NewHistogram(1, 5).Add(-0.1) },
		func() { NewHistogram(1, 5).Add(math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestExponentialPMFSumsToNearOne(t *testing.T) {
	h := NewHistogram(0.02, 100) // covers [0,2]
	pmf := h.ExponentialPMF(5)   // mean 0.2 ⇒ P(X<2) = 1-e^{-10} ≈ 0.99995
	var sum float64
	for _, p := range pmf {
		if p < 0 {
			t.Fatal("negative exponential mass")
		}
		sum += p
	}
	if sum < 0.9999 || sum > 1.0 {
		t.Fatalf("exponential pmf sum = %v", sum)
	}
	// Must be decreasing.
	for i := 1; i < len(pmf); i++ {
		if pmf[i] > pmf[i-1] {
			t.Fatal("exponential pmf not decreasing")
		}
	}
}

func TestExponentialPMFZeroRate(t *testing.T) {
	h := NewHistogram(0.1, 10)
	for _, p := range h.ExponentialPMF(0) {
		if p != 0 {
			t.Fatal("nonzero mass for zero rate")
		}
	}
}

func TestExponentialSampleMatchesPMF(t *testing.T) {
	// Draw exponential samples, bin them, compare to the analytic PMF.
	rng := rand.New(rand.NewSource(2))
	h := NewHistogram(0.05, 40)
	lambda := 2.0
	const n = 200000
	for i := 0; i < n; i++ {
		h.Add(rng.ExpFloat64() / lambda)
	}
	got := h.PMF()
	want := h.ExponentialPMF(lambda)
	for i := 0; i < 20; i++ { // compare the well-populated bins
		if want[i] < 1e-4 {
			continue
		}
		rel := math.Abs(got[i]-want[i]) / want[i]
		if rel > 0.08 {
			t.Fatalf("bin %d: got %v want %v (rel %v)", i, got[i], want[i], rel)
		}
	}
}

// Property: PMF sums to the in-range fraction; CDF is monotone ending at 1
// (when nothing overflows).
func TestHistogramProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram(0.1, 64)
		inRange := 0
		for _, r := range raw {
			x := float64(r) / 8192.0 // [0, 8)
			h.Add(x)
			if x < 6.4 {
				inRange++
			}
		}
		if h.Total() != int64(len(raw)) {
			return false
		}
		var sum float64
		for _, p := range h.PMF() {
			sum += p
		}
		if len(raw) == 0 {
			return sum == 0
		}
		wantSum := float64(inRange) / float64(len(raw))
		if math.Abs(sum-wantSum) > 1e-9 {
			return false
		}
		cdf := h.CDF()
		prev := 0.0
		for _, c := range cdf {
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
