package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !approx(s.Var, 2.5, 1e-12) {
		t.Fatalf("var = %v", s.Var)
	}
	if !approx(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Var != 0 || s.Median != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); !approx(q, 2.5, 1e-12) {
		t.Fatalf("median = %v", q)
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean wrong")
	}
}

func TestIndexOfDispersionPoissonNearOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var times []float64
	tt := 0.0
	for i := 0; i < 50000; i++ {
		tt += rng.ExpFloat64()
		times = append(times, tt)
	}
	iod := IndexOfDispersion(times, 10)
	if iod < 0.8 || iod > 1.2 {
		t.Fatalf("Poisson IoD = %v, want ≈1", iod)
	}
}

func TestIndexOfDispersionBurstyLarge(t *testing.T) {
	// Bursts of 100 events at integer times: highly over-dispersed.
	var times []float64
	for b := 0; b < 100; b++ {
		for i := 0; i < 100; i++ {
			times = append(times, float64(b*100)+float64(i)*1e-6)
		}
	}
	iod := IndexOfDispersion(times, 10)
	if iod < 5 {
		t.Fatalf("bursty IoD = %v, want ≫1", iod)
	}
}

func TestIndexOfDispersionDegenerate(t *testing.T) {
	if IndexOfDispersion(nil, 1) != 0 {
		t.Fatal("empty IoD != 0")
	}
	if IndexOfDispersion([]float64{1, 2}, 0) != 0 {
		t.Fatal("zero window IoD != 0")
	}
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating series: lag-1 autocorrelation ≈ -1.
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if ac := Autocorrelation(xs, 1); ac > -0.9 {
		t.Fatalf("alternating lag-1 ac = %v", ac)
	}
	if ac := Autocorrelation(xs, 0); !approx(ac, 1, 1e-9) {
		t.Fatalf("lag-0 ac = %v", ac)
	}
	if Autocorrelation(xs, -1) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Fatal("out-of-range lag should be 0")
	}
	if Autocorrelation([]float64{1, 1, 1}, 1) != 0 {
		t.Fatal("constant series ac should be 0")
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := Quantile(xs, qa), Quantile(xs, qb)
		s := Summarize(xs)
		return va <= vb+1e-9 && va >= s.Min-1e-9 && vb <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
