package stats

// Merge counterparts to the streaming accumulators: every statistic the
// fleet layer aggregates across worlds has a merge operation whose result
// is a pure function of the inputs — independent of how the event stream
// was sharded — so a fleet's report is invariant under the shard count.
//
// Exactness contract:
//
//   - Histogram.Merge, DispersionStats.Merge: exact — merging per-shard
//     accumulators yields bit-identical counts to one accumulator fed the
//     concatenated stream.
//   - Moments.Merge: exact up to floating-point associativity (Chan et
//     al.'s parallel Welford combination); the merged moments equal the
//     single-pass moments to ~1e-12 relative error, and the merge itself
//     is deterministic, so equal shards always produce equal bits.
//   - Reservoir.Merge: exact concatenation while the union fits the
//     bound; beyond it, a deterministic weighted subsample (see Merge).

import (
	"fmt"
	"math"
)

// Merge folds another histogram with the same bin layout into h — the
// cross-shard counterpart of Add. Counts, totals and overflow add, so the
// merged histogram is exactly the histogram of the concatenated streams.
// Merging mismatched layouts is a programming error and panics like Add.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.BinWidth != o.BinWidth || len(h.counts) != len(o.counts) {
		panic(fmt.Sprintf("stats: histogram merge layout mismatch (%v×%d vs %v×%d)",
			h.BinWidth, len(h.counts), o.BinWidth, len(o.counts)))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.Overflow += o.Overflow
}

// Moments is a mergeable Welford accumulator: the running count, mean and
// sum of squared deviations (M2) of a sample. Observe applies the exact
// update analysis.Streaming historically inlined; Merge combines two
// accumulators with the parallel form (Chan, Golub, LeVeque), so
// per-shard moments collapse into the whole-stream moments without
// revisiting the data. The zero value is an empty sample.
type Moments struct {
	N    int64
	Mean float64
	M2   float64
}

// Reset forgets the sample.
func (m *Moments) Reset() { *m = Moments{} }

// Observe folds in one observation (Welford's numerically stable update).
func (m *Moments) Observe(x float64) {
	m.N++
	d := x - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (x - m.Mean)
}

// Merge folds another accumulator into m. The combination is exact in
// count and deterministic in the floating-point fields: merging the same
// shards always yields the same bits, and the result matches a single
// pass over the concatenated sample up to associativity.
func (m *Moments) Merge(o Moments) {
	if o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.N), float64(o.N)
	n := n1 + n2
	d := o.Mean - m.Mean
	m.Mean += d * n2 / n
	m.M2 += o.M2 + d*d*n1*n2/n
	m.N += o.N
}

// Var returns the unbiased sample variance (0 for N < 2).
func (m Moments) Var() float64 {
	if m.N < 2 {
		return 0
	}
	return m.M2 / float64(m.N-1)
}

// Std returns the unbiased sample standard deviation.
func (m Moments) Std() float64 { return math.Sqrt(m.Var()) }

// CoV returns the coefficient of variation Std/Mean (0 when the mean is
// zero).
func (m Moments) CoV() float64 {
	if m.Mean == 0 {
		return 0
	}
	return m.Std() / m.Mean
}

// DispersionStats is the mergeable snapshot of a DispersionCounter: the
// event count, the number of windows spanned (including trailing empties
// up to the last event) and the Σc² over those windows, with the open
// window folded in. Shards that count disjoint spans of a stream merge by
// pooling windows — exact, because window counts and Σc² are plain sums.
//
// The one approximation is at shard boundaries: a window straddling two
// worlds' streams is counted once per world. Fleet shards are whole
// worlds (each world's clock restarts at zero), so in the fleet layer the
// pooled value is exactly "the IoD of the pooled per-world windows".
type DispersionStats struct {
	Events  int64
	Windows int64
	SumSq   float64
}

// Stats snapshots the counter's mergeable state, including the open
// window. The counter itself is unaffected and may keep observing.
func (c *DispersionCounter) Stats() DispersionStats {
	if c.n == 0 || c.window <= 0 {
		return DispersionStats{}
	}
	return DispersionStats{
		Events:  c.n,
		Windows: int64(c.lastT/c.window) + 1,
		SumSq:   c.sumSq + float64(c.curCount)*float64(c.curCount),
	}
}

// Merge pools another snapshot's windows into d.
func (d *DispersionStats) Merge(o DispersionStats) {
	d.Events += o.Events
	d.Windows += o.Windows
	d.SumSq += o.SumSq
}

// Value returns the index of dispersion of the pooled windows — the same
// population-variance convention as DispersionCounter.Value, which is the
// single-shard special case of this computation.
func (d DispersionStats) Value() float64 {
	if d.Events == 0 || d.Windows == 0 {
		return 0
	}
	mean := float64(d.Events) / float64(d.Windows)
	popVar := d.SumSq/float64(d.Windows) - mean*mean
	if popVar < 0 {
		popVar = 0 // floating-point guard; variance is nonnegative
	}
	return popVar / mean
}

// reservoirSeed is the fixed SplitMix64 seed every reservoir starts from:
// sampling must be a pure function of the observation stream so sweeps
// and fleets stay worker-count invariant.
const reservoirSeed = 0x9e3779b97f4a7c15

// Reservoir is a bounded, deterministic uniform sample of a float64
// stream: every observation is retained until the bound, then classic
// reservoir replacement driven by a fixed-seed SplitMix64 stream. It is
// the retention policy behind the streaming KS test, extracted so fleet
// aggregation can merge per-world samples. The zero value is unusable;
// call Reset.
type Reservoir struct {
	bound int
	items []float64
	seen  int64
	rng   uint64
}

// Reset prepares the reservoir for a new stream with the given bound,
// keeping the retained slice's capacity.
func (r *Reservoir) Reset(bound int) {
	if bound <= 0 {
		panic("stats: reservoir needs a positive bound")
	}
	r.bound = bound
	r.items = r.items[:0]
	r.seen = 0
	r.rng = reservoirSeed
}

// Observe offers one value to the sample.
func (r *Reservoir) Observe(x float64) {
	r.seen++
	if len(r.items) < r.bound {
		r.items = append(r.items, x)
		return
	}
	if j := r.next() % uint64(r.seen); j < uint64(r.bound) {
		r.items[j] = x
	}
}

// next advances the SplitMix64 state.
func (r *Reservoir) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Items exposes the retained sample. The slice is owned by the reservoir
// and valid until the next Observe/Merge/Reset.
func (r *Reservoir) Items() []float64 { return r.items }

// Seen reports how many observations were offered.
func (r *Reservoir) Seen() int64 { return r.seen }

// Bound reports the retention bound.
func (r *Reservoir) Bound() int { return r.bound }

// Exact reports whether the sample still holds every offered observation.
func (r *Reservoir) Exact() bool { return r.seen <= int64(r.bound) }

// Merge folds another reservoir's sample into r. While both sides are
// exact and the union fits r's bound, the merge is exact concatenation —
// the merged reservoir holds every observation either side saw. Beyond
// that, each retained item of o stands in for o.Seen()/len items of o's
// stream and is offered with that weight through r's deterministic
// replacement stream. The result is a deterministic function of the two
// reservoirs (and therefore of the sharded stream), not an unbiased
// uniform sample — the documented approximation of fleet KS statistics
// past the retention bound.
func (r *Reservoir) Merge(o *Reservoir) {
	if o.seen == 0 {
		return
	}
	if r.Exact() && o.Exact() && r.seen+o.seen <= int64(r.bound) {
		r.items = append(r.items, o.items...)
		r.seen += o.seen
		return
	}
	n := int64(len(o.items))
	base, extra := o.seen/n, o.seen%n
	for i, x := range o.items {
		w := base
		if int64(i) < extra {
			w++
		}
		r.seen += w
		if len(r.items) < r.bound {
			r.items = append(r.items, x)
			continue
		}
		if j := r.next() % uint64(r.seen); j < uint64(r.bound) {
			r.items[j] = x
		}
	}
}
