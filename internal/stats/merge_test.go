package stats

import (
	"math"
	"testing"
)

// splitStream generates a deterministic pseudo-random stream of n
// nonnegative values and returns it alongside the SplitMix64 state used,
// so tests can shard it any way they like.
func testStream(seed uint64, n int) []float64 {
	xs := make([]float64, n)
	s := seed
	for i := range xs {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// Exponential-ish positive values in [0, ~8) with occasional spikes.
		xs[i] = 4 * float64(z%100_000) / 100_000 * (1 + float64(z%7))
	}
	return xs
}

// shardBounds cuts [0,n) into k contiguous shards.
func shardBounds(n, k int) [][2]int {
	out := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// TestHistogramMergeExact pins Histogram.Merge(a,b) ≡ one histogram over
// the concatenated stream, for several shard counts.
func TestHistogramMergeExact(t *testing.T) {
	xs := testStream(1, 10_000)
	whole := NewHistogram(0.02, 100)
	whole.AddAll(xs)

	for _, shards := range []int{1, 2, 4, 16} {
		merged := NewHistogram(0.02, 100)
		for _, b := range shardBounds(len(xs), shards) {
			part := NewHistogram(0.02, 100)
			part.AddAll(xs[b[0]:b[1]])
			merged.Merge(part)
		}
		if merged.Total() != whole.Total() || merged.Overflow != whole.Overflow {
			t.Fatalf("shards=%d: total/overflow %d/%d, want %d/%d",
				shards, merged.Total(), merged.Overflow, whole.Total(), whole.Overflow)
		}
		for i := 0; i < whole.NumBins(); i++ {
			if merged.Count(i) != whole.Count(i) {
				t.Fatalf("shards=%d: bin %d count %d, want %d", shards, i, merged.Count(i), whole.Count(i))
			}
		}
	}
}

func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched layouts did not panic")
		}
	}()
	NewHistogram(0.02, 100).Merge(NewHistogram(0.05, 100))
}

// TestMomentsMergeMatchesSinglePass pins the Chan-style merge against a
// single Welford pass over the concatenated stream, and its bit-level
// determinism across repeated merges of the same shards.
func TestMomentsMergeMatchesSinglePass(t *testing.T) {
	xs := testStream(2, 50_000)
	var whole Moments
	for _, x := range xs {
		whole.Observe(x)
	}

	for _, shards := range []int{1, 3, 4, 16} {
		var merged, again Moments
		for _, b := range shardBounds(len(xs), shards) {
			var part Moments
			for _, x := range xs[b[0]:b[1]] {
				part.Observe(x)
			}
			merged.Merge(part)
			again.Merge(part)
		}
		if merged != again {
			t.Fatalf("shards=%d: merge of identical shards not bit-deterministic", shards)
		}
		if merged.N != whole.N {
			t.Fatalf("shards=%d: N=%d, want %d", shards, merged.N, whole.N)
		}
		if relErr(merged.Mean, whole.Mean) > 1e-12 || relErr(merged.M2, whole.M2) > 1e-9 {
			t.Fatalf("shards=%d: merged (%v, %v) vs single-pass (%v, %v)",
				shards, merged.Mean, merged.M2, whole.Mean, whole.M2)
		}
		if relErr(merged.CoV(), whole.CoV()) > 1e-9 {
			t.Fatalf("shards=%d: CoV %v vs %v", shards, merged.CoV(), whole.CoV())
		}
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestDispersionStatsMergeExact pins the pooled-window merge: worlds with
// independent clocks merge into exactly the IoD of the pooled windows,
// matching a hand-pooled batch computation.
func TestDispersionStatsMergeExact(t *testing.T) {
	// Three "worlds": each a sorted time stream starting at its own zero.
	worlds := [][]float64{
		{0.1, 0.15, 0.2, 1.7, 3.0, 3.05, 3.1},
		{0.5, 2.5},
		{0.01, 0.02, 0.03, 0.04, 5.9},
	}
	const window = 1.0

	var pooledCounts []float64
	var merged DispersionStats
	for _, times := range worlds {
		var c DispersionCounter
		c.Reset(window)
		counts := map[int64]float64{}
		var nwin int64
		for _, tt := range times {
			c.Observe(tt)
			idx := int64(tt / window)
			counts[idx]++
			if idx+1 > nwin {
				nwin = idx + 1
			}
		}
		for i := int64(0); i < nwin; i++ {
			pooledCounts = append(pooledCounts, counts[i])
		}
		merged.Merge(c.Stats())
	}

	// Batch IoD of the pooled window counts (population variance / mean).
	s := Summarize(pooledCounts)
	var ss float64
	for _, c := range pooledCounts {
		d := c - s.Mean
		ss += d * d
	}
	want := (ss / float64(len(pooledCounts))) / s.Mean

	if math.Abs(merged.Value()-want) > 1e-12 {
		t.Fatalf("merged IoD %v, want pooled-batch %v", merged.Value(), want)
	}
	if merged.Windows != int64(len(pooledCounts)) {
		t.Fatalf("merged windows %d, want %d", merged.Windows, len(pooledCounts))
	}
}

// TestDispersionStatsSingleShardMatchesCounter pins the snapshot as the
// identity shard: Stats().Value() must equal the counter's own Value().
func TestDispersionStatsSingleShardMatchesCounter(t *testing.T) {
	var c DispersionCounter
	c.Reset(0.5)
	for _, tt := range testStream(3, 1000) {
		c.Observe(tt) // testStream is not sorted; sort by construction
	}
	// Re-feed sorted: counters require nondecreasing times.
	c.Reset(0.5)
	t0 := 0.0
	for _, dt := range testStream(3, 1000) {
		t0 += dt / 10
		c.Observe(t0)
	}
	if got, want := c.Stats().Value(), c.Value(); got != want {
		t.Fatalf("Stats().Value()=%v, want Value()=%v", got, want)
	}
}

// TestReservoirExactUnderBound pins the merge's exact regime: while the
// union of two exact reservoirs fits the bound, merging concatenates
// every observation.
func TestReservoirExactUnderBound(t *testing.T) {
	var a, b stRes = newRes(100), newRes(100)
	for i := 0; i < 30; i++ {
		a.Observe(float64(i))
	}
	for i := 0; i < 40; i++ {
		b.Observe(float64(100 + i))
	}
	a.Merge(b)
	if !a.Exact() || a.Seen() != 70 || len(a.Items()) != 70 {
		t.Fatalf("exact merge: seen=%d items=%d exact=%v", a.Seen(), len(a.Items()), a.Exact())
	}
	for i, want := range []float64{0, 1, 2} {
		if a.Items()[i] != want {
			t.Fatalf("item %d = %v, want %v", i, a.Items()[i], want)
		}
	}
	if a.Items()[30] != 100 {
		t.Fatalf("item 30 = %v, want 100", a.Items()[30])
	}
}

type stRes = *Reservoir

func newRes(bound int) *Reservoir {
	var r Reservoir
	r.Reset(bound)
	return &r
}

// TestReservoirSingleStreamMatchesStreamingPolicy pins the extracted
// reservoir against the historical inline policy: same seed, same
// replacement decisions, so a single-world fleet keeps byte-identical KS
// inputs.
func TestReservoirSingleStreamMatchesStreamingPolicy(t *testing.T) {
	const bound = 64
	xs := testStream(4, 1000)

	r := newRes(bound)
	// The historical policy, inlined.
	var items []float64
	var seen int64
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for _, x := range xs {
		r.Observe(x)
		seen++
		if len(items) < bound {
			items = append(items, x)
			continue
		}
		if j := next() % uint64(seen); j < uint64(bound) {
			items[j] = x
		}
	}
	if len(r.Items()) != len(items) {
		t.Fatalf("retained %d, want %d", len(r.Items()), len(items))
	}
	for i := range items {
		if r.Items()[i] != items[i] {
			t.Fatalf("item %d = %v, want %v", i, r.Items()[i], items[i])
		}
	}
}

// TestReservoirMergeDeterministic pins the overflowing merge as a pure
// function of its inputs: merging equal shard sequences yields equal
// retained samples, and the merged seen-count is exact.
func TestReservoirMergeDeterministic(t *testing.T) {
	build := func() *Reservoir {
		m := newRes(50)
		for s := 0; s < 4; s++ {
			part := newRes(50)
			for _, x := range testStream(uint64(10+s), 300) {
				part.Observe(x)
			}
			m.Merge(part)
		}
		return m
	}
	a, b := build(), build()
	if a.Seen() != 4*300 {
		t.Fatalf("merged seen %d, want %d", a.Seen(), 4*300)
	}
	if a.Exact() {
		t.Fatal("overflowed merge should not report exact")
	}
	if len(a.Items()) != 50 {
		t.Fatalf("retained %d, want bound 50", len(a.Items()))
	}
	for i := range a.Items() {
		if a.Items()[i] != b.Items()[i] {
			t.Fatalf("item %d differs between identical merges: %v vs %v", i, a.Items()[i], b.Items()[i])
		}
	}
}
