package stats

import (
	"math"
	"sort"
)

// KSExponential computes the one-sample Kolmogorov–Smirnov statistic of
// xs against the exponential distribution with the sample's own mean:
// D = sup |F_n(x) − (1 − e^{−x/mean})|. It is the paper's future-work
// "more rigorous analysis" of whether a loss process is Poisson: a
// Poisson process's intervals give small D (≈ 1/√n scale), a clustered
// process gives D near its cluster mass.
func KSExponential(xs []float64) float64 {
	d, _ := KSExponentialInto(xs, nil)
	return d
}

// KSExponentialInto is KSExponential with a caller-provided scratch buffer
// for the sorted copy. It returns the statistic and the (possibly grown)
// buffer, so the streaming analysis path can reuse one buffer across
// replications instead of allocating a sorted copy per test.
func KSExponentialInto(xs, scratch []float64) (float64, []float64) {
	if len(xs) == 0 {
		return 0, scratch
	}
	mean := Mean(xs)
	if mean <= 0 {
		return 1, scratch
	}
	s := append(scratch[:0], xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := 1 - math.Exp(-x/mean)
		// Compare against the empirical CDF on both sides of the step.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d, s
}

// KSCriticalValue returns the approximate critical D for rejecting the
// exponential hypothesis at significance alpha (0.05 or 0.01) with n
// samples, using the asymptotic Kolmogorov approximation
// c(α)/√n with c(0.05) = 1.358, c(0.01) = 1.628. For other alphas the
// 0.05 constant is used.
func KSCriticalValue(n int, alpha float64) float64 {
	if n <= 0 {
		return 1
	}
	c := 1.358
	if alpha <= 0.01 {
		c = 1.628
	}
	return c / math.Sqrt(float64(n))
}

// RejectsExponential reports whether the sample's KS distance exceeds the
// alpha=0.05 critical value — i.e. whether the process is statistically
// distinguishable from Poisson.
func RejectsExponential(xs []float64) bool {
	return KSExponential(xs) > KSCriticalValue(len(xs), 0.05)
}
