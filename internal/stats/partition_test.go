package stats

import (
	"math"
	"sort"
	"testing"
)

// partitionRNG is a SplitMix64 stream for shard assignment, independent of
// the value stream so re-seeding one never perturbs the other.
func partitionRNG(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// TestMergeRandomPartitions is the adversarial sharding property: split
// the same stream into k shards by RANDOM assignment — not the contiguous
// cuts a well-behaved fleet would produce, so shard sizes are wildly
// uneven and some shards are empty — and the merged Moments and Histogram
// must still reproduce the single-pass result. An always-empty trailing
// shard checks that merging a zero-observation part is the identity.
func TestMergeRandomPartitions(t *testing.T) {
	xs := testStream(9, 20_000)
	var wholeM Moments
	for _, x := range xs {
		wholeM.Observe(x)
	}
	wholeH := NewHistogram(0.02, 100)
	wholeH.AddAll(xs)

	for _, k := range []int{2, 7, 33} {
		for trial := uint64(0); trial < 3; trial++ {
			next := partitionRNG(uint64(k)*1000 + trial)
			partsM := make([]Moments, k)
			partsH := make([]*Histogram, k)
			for i := range partsH {
				partsH[i] = NewHistogram(0.02, 100)
			}
			for _, x := range xs {
				s := int(next() % uint64(k))
				partsM[s].Observe(x)
				partsH[s].Add(x)
			}

			var mergedM Moments
			mergedH := NewHistogram(0.02, 100)
			for i := 0; i < k; i++ {
				mergedM.Merge(partsM[i])
				mergedH.Merge(partsH[i])
			}
			// Identity: an empty shard contributes nothing.
			mergedM.Merge(Moments{})
			mergedH.Merge(NewHistogram(0.02, 100))

			if mergedM.N != wholeM.N {
				t.Fatalf("k=%d trial=%d: N=%d, want %d", k, trial, mergedM.N, wholeM.N)
			}
			if relErr(mergedM.Mean, wholeM.Mean) > 1e-12 || relErr(mergedM.M2, wholeM.M2) > 1e-9 {
				t.Fatalf("k=%d trial=%d: merged (%v, %v) vs single-pass (%v, %v)",
					k, trial, mergedM.Mean, mergedM.M2, wholeM.Mean, wholeM.M2)
			}
			if mergedH.Total() != wholeH.Total() || mergedH.Overflow != wholeH.Overflow {
				t.Fatalf("k=%d trial=%d: total/overflow %d/%d, want %d/%d",
					k, trial, mergedH.Total(), mergedH.Overflow, wholeH.Total(), wholeH.Overflow)
			}
			for i := 0; i < wholeH.NumBins(); i++ {
				if mergedH.Count(i) != wholeH.Count(i) {
					t.Fatalf("k=%d trial=%d: bin %d count %d, want %d",
						k, trial, i, mergedH.Count(i), wholeH.Count(i))
				}
			}
		}
	}
}

// TestReservoirRandomPartitionExact pins the reservoir's exact regime
// under adversarial sharding: as long as the union fits the bound, a
// random partition merged in any shard order retains exactly the original
// multiset of observations, with the seen-count exact.
func TestReservoirRandomPartitionExact(t *testing.T) {
	xs := testStream(11, 80)
	const (
		k     = 7
		bound = 128
	)
	next := partitionRNG(42)
	parts := make([]*Reservoir, k)
	for i := range parts {
		parts[i] = newRes(bound)
	}
	for _, x := range xs {
		parts[next()%k].Observe(x)
	}
	merged := newRes(bound)
	for _, p := range parts {
		merged.Merge(p)
	}
	if !merged.Exact() || merged.Seen() != int64(len(xs)) {
		t.Fatalf("exact merge lost observations: seen=%d exact=%v, want %d exact",
			merged.Seen(), merged.Exact(), len(xs))
	}
	got := append([]float64(nil), merged.Items()...)
	want := append([]float64(nil), xs...)
	sort.Float64s(got)
	sort.Float64s(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained multiset differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestMomentsMergeCommutesApproximately: shard merge order must not move
// the merged statistics beyond float tolerance — the fleet absorbs worlds
// in a fixed turnstile order, but the statistics themselves cannot hide a
// catastrophic cancellation that only one order exposes.
func TestMomentsMergeCommutesApproximately(t *testing.T) {
	xs := testStream(13, 10_000)
	const k = 8
	parts := make([]Moments, k)
	next := partitionRNG(99)
	for _, x := range xs {
		parts[next()%k].Observe(x)
	}
	var fwd, rev Moments
	for i := 0; i < k; i++ {
		fwd.Merge(parts[i])
		rev.Merge(parts[k-1-i])
	}
	if fwd.N != rev.N {
		t.Fatalf("N differs by merge order: %d vs %d", fwd.N, rev.N)
	}
	if relErr(fwd.Mean, rev.Mean) > 1e-12 || relErr(fwd.M2, rev.M2) > 1e-9 {
		t.Fatalf("merge order moved the moments: (%v, %v) vs (%v, %v)",
			fwd.Mean, fwd.M2, rev.Mean, rev.M2)
	}
	if math.Abs(fwd.CoV()-rev.CoV()) > 1e-9 {
		t.Fatalf("merge order moved CoV: %v vs %v", fwd.CoV(), rev.CoV())
	}
}
