package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin-width histogram over [0, BinWidth·NumBins).
// Values below zero panic (loss intervals are nonnegative by construction);
// values at or beyond the top edge are counted in Overflow so the PDF over
// the plotted range stays honest.
type Histogram struct {
	BinWidth float64
	counts   []int64
	total    int64
	Overflow int64
}

// NewHistogram builds a histogram with n bins of width w. The paper's PDFs
// use w = 0.02 RTT over [0, 2 RTT], i.e. n = 100.
func NewHistogram(w float64, n int) *Histogram {
	if w <= 0 || n <= 0 {
		panic("stats: histogram needs positive bin width and count")
	}
	return &Histogram{BinWidth: w, counts: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: histogram add %v", x))
	}
	idx := int(x / h.BinWidth)
	if idx >= len(h.counts) {
		h.Overflow++
	} else {
		h.counts[idx]++
	}
	h.total++
}

// AddAll counts a batch of observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Reset forgets every observation while keeping the bin layout and the
// counts array, so one histogram can be reused across replications without
// reallocating.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.Overflow = 0
}

// Clone returns an independent deep copy, for callers that retain a
// histogram beyond the lifetime of the scratch arena that filled it.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]int64(nil), h.counts...)
	return &c
}

// NumBins reports the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.counts) }

// Total reports all observations including overflow.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// BinCenter returns the midpoint of bin i, for plotting.
func (h *Histogram) BinCenter(i int) float64 {
	return (float64(i) + 0.5) * h.BinWidth
}

// AppendPMF appends the per-bin probability mass (count/total) to dst and
// returns the extended slice — the allocation-free form the streaming
// analysis path reuses across replications (dst[:0] with retained
// capacity). Empty histogram appends all zeros.
func (h *Histogram) AppendPMF(dst []float64) []float64 {
	for _, c := range h.counts {
		if h.total == 0 {
			dst = append(dst, 0)
		} else {
			dst = append(dst, float64(c)/float64(h.total))
		}
	}
	return dst
}

// PMF returns the per-bin probability mass (count/total), the quantity the
// paper plots on its log-scale Y axes. Empty histogram yields all zeros.
func (h *Histogram) PMF() []float64 {
	return h.AppendPMF(make([]float64, 0, len(h.counts)))
}

// AppendDensity appends the PDF estimate (PMF divided by bin width) to dst.
func (h *Histogram) AppendDensity(dst []float64) []float64 {
	n := len(dst)
	dst = h.AppendPMF(dst)
	for i := n; i < len(dst); i++ {
		dst[i] /= h.BinWidth
	}
	return dst
}

// Density returns the PDF estimate: PMF divided by bin width, so the curve
// integrates to the in-range mass.
func (h *Histogram) Density() []float64 {
	return h.AppendDensity(make([]float64, 0, len(h.counts)))
}

// AppendCDF appends the cumulative in-range distribution at each bin's
// right edge to dst.
func (h *Histogram) AppendCDF(dst []float64) []float64 {
	var cum int64
	for _, c := range h.counts {
		if h.total == 0 {
			dst = append(dst, 0)
			continue
		}
		cum += c
		dst = append(dst, float64(cum)/float64(h.total))
	}
	return dst
}

// CDF returns the cumulative in-range distribution at each bin's right
// edge.
func (h *Histogram) CDF() []float64 {
	return h.AppendCDF(make([]float64, 0, len(h.counts)))
}

// FractionBelow reports the fraction of all observations (including
// overflow in the denominator) strictly less than x. The paper's headline
// numbers — "95% of losses cluster within 0.01 RTT" — are this quantity.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	limit := x / h.BinWidth
	whole := int(math.Floor(limit))
	for i := 0; i < whole && i < len(h.counts); i++ {
		cum += h.counts[i]
	}
	// Partial bin: assume uniform spread inside the bin.
	if whole >= 0 && whole < len(h.counts) {
		frac := limit - float64(whole)
		cum += int64(frac * float64(h.counts[whole]))
	}
	return float64(cum) / float64(h.total)
}

// AppendExponentialPMF appends the matched-rate exponential reference mass
// of each bin to dst (zeros when lambda is non-positive).
func (h *Histogram) AppendExponentialPMF(dst []float64, lambda float64) []float64 {
	for i := range h.counts {
		if lambda <= 0 {
			dst = append(dst, 0)
			continue
		}
		l := float64(i) * h.BinWidth
		r := l + h.BinWidth
		dst = append(dst, math.Exp(-lambda*l)-math.Exp(-lambda*r))
	}
	return dst
}

// ExponentialPMF returns the per-bin probability mass of an exponential
// (Poisson inter-arrival) distribution with the given rate λ (events per
// unit), over the same bins as h: P(bin i) = e^{-λ·l} − e^{-λ·r}. This is
// the paper's "Poisson process with the same average arrival rate" overlay.
func (h *Histogram) ExponentialPMF(lambda float64) []float64 {
	return h.AppendExponentialPMF(make([]float64, 0, len(h.counts)), lambda)
}
