package sim

import "math/rand"

// NewRand returns a seeded random source. Every stochastic component in the
// repository takes one of these explicitly, so that an experiment's single
// top-level seed fully determines the run. Like the Scheduler it feeds, a
// *rand.Rand belongs to exactly one simulated world and one goroutine;
// parallel replications must each derive their own via SubSeed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SubSeed derives a stable child seed from a parent seed and an index, so
// experiment configs can hand independent streams to each component without
// correlation. It uses the SplitMix64 finalizer, which decorrelates
// sequential indices well.
func SubSeed(parent int64, index int64) int64 {
	z := uint64(parent) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Exponential draws an exponentially distributed duration with the given
// mean. It is the inter-arrival law of a Poisson process and is used by the
// on-off cross-traffic sources and the Poisson reference processes.
func Exponential(rng *rand.Rand, mean Duration) Duration {
	return Duration(rng.ExpFloat64() * float64(mean))
}
