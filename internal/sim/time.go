// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate for every experiment in this repository: the
// packet-level network simulator, the Dummynet-style emulation layer and the
// PlanetLab-style Internet path model all schedule their work through a
// single Scheduler. Determinism is guaranteed by (a) an integer nanosecond
// clock, (b) FIFO tie-breaking between events scheduled for the same
// instant, and (c) explicit, seeded random sources owned by the components
// (the engine itself contains no randomness).
//
// Concurrency contract: one simulated world — a Scheduler, the *rand.Rand
// streams feeding it, and every component attached to it — is confined to
// the goroutine that created it. Nothing in this package is safe for
// concurrent use, on purpose: single-threaded worlds are what make runs
// bit-reproducible. Parallelism lives one level up, in internal/exp, which
// runs many independent worlds at once by giving each replication its own
// Scheduler and its own SubSeed-derived seed on its own goroutine.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulated point in time, in nanoseconds since the start of the
// simulation. Using an integer clock avoids the floating-point drift that
// would break determinism in long runs.
type Time int64

// Duration is a span of simulated time in nanoseconds. It is layout
// compatible with time.Duration so the stdlib constants (time.Millisecond,
// ...) convert directly.
type Duration int64

// Common durations, re-exported for convenience so callers do not need to
// import both packages.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Dur converts a time.Duration into a sim.Duration.
func Dur(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Std converts d back to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds builds a Duration from a floating-point number of seconds.
func Seconds(s float64) Duration { return Duration(s * 1e9) }

// String formats the time as seconds with nanosecond precision.
func (t Time) String() string { return fmt.Sprintf("%.9fs", t.Seconds()) }

// String formats the duration as seconds with nanosecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.9fs", d.Seconds()) }
