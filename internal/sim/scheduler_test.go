package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := Seconds(1.5); got != Duration(1500*Millisecond) {
		t.Fatalf("Seconds(1.5) = %v", got)
	}
	if got := Dur(250 * time.Millisecond); got != 250*Millisecond {
		t.Fatalf("Dur = %v", got)
	}
	tt := Time(0).Add(2 * Second)
	if tt.Seconds() != 2.0 {
		t.Fatalf("Seconds = %v", tt.Seconds())
	}
	if tt.Sub(Time(Second)) != Second {
		t.Fatalf("Sub wrong")
	}
	if (500 * Millisecond).Std() != 500*time.Millisecond {
		t.Fatalf("Std wrong")
	}
	if Time(1500000000).String() != "1.500000000s" {
		t.Fatalf("String = %q", Time(1500000000).String())
	}
	if Duration(Second).Seconds() != 1.0 {
		t.Fatalf("Duration.Seconds wrong")
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(3*Second, func() { order = append(order, 3) })
	s.After(1*Second, func() { order = append(order, 1) })
	s.After(2*Second, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != Time(3*Second) {
		t.Fatalf("now = %v", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d", s.Fired())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(Second), func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(Second, func() { fired = true })
	if !e.Pending() || e.Time() != Time(Second) {
		t.Fatalf("timer not pending after schedule: %v %v", e.Pending(), e.Time())
	}
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() || e.Time() != 0 {
		t.Fatal("cancelled timer still pending")
	}
	// Cancelling a zero timer and double-cancel must not panic.
	s.Cancel(Timer{})
	s.Cancel(e)
}

func TestSchedulerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	var fired []int
	var e2 Timer
	s.After(1*Second, func() {
		fired = append(fired, 1)
		s.Cancel(e2)
	})
	e2 = s.After(2*Second, func() { fired = append(fired, 2) })
	s.After(3*Second, func() { fired = append(fired, 3) })
	s.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

// A fired timer's handle must become inert: the underlying event is
// recycled, and cancelling through the stale handle must not touch
// whatever the recycled event is scheduled for now.
func TestSchedulerStaleHandleIsInert(t *testing.T) {
	s := NewScheduler()
	first := s.After(Second, func() {})
	s.Run()
	if first.Pending() {
		t.Fatal("fired timer still pending")
	}
	secondRan := false
	second := s.After(Second, func() { secondRan = true })
	s.Cancel(first) // stale: must not cancel the recycled event
	s.Run()
	if !secondRan {
		t.Fatal("stale Cancel hit a recycled event")
	}
	if second.Pending() {
		t.Fatal("fired second timer still pending")
	}
}

func TestSchedulerAfterArg(t *testing.T) {
	s := NewScheduler()
	type payload struct{ n int }
	var got []int
	deliver := func(a any) { got = append(got, a.(*payload).n) }
	s.AfterArg(2*Second, deliver, &payload{2})
	s.AfterArg(1*Second, deliver, &payload{1})
	s.AtArg(Time(3*Second), deliver, &payload{3})
	tm := s.AfterArg(4*Second, deliver, &payload{4})
	s.Cancel(tm)
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("arg events = %v", got)
	}
}

// The steady-state scheduling path must not allocate: events come from the
// per-world freelist and heap capacity is reused.
func TestSchedulerSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 1000 {
			s.After(Millisecond, tick)
		}
	}
	// Warm up the freelist and the heap capacity.
	s.After(Millisecond, tick)
	s.Run()

	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		s.After(Millisecond, tick)
		s.Run()
	})
	if allocs > 1 { // tolerance for the testing harness itself
		t.Fatalf("steady-state run allocated %.1f times per op", allocs)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []int
	s.After(1*Second, func() { fired = append(fired, 1) })
	s.After(2*Second, func() { fired = append(fired, 2) })
	s.After(3*Second, func() { fired = append(fired, 3) })
	s.RunUntil(Time(2 * Second))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at t<=2s", fired)
	}
	if s.Now() != Time(2*Second) {
		t.Fatalf("now = %v", s.Now())
	}
	// Clock advances to the target even with an empty window.
	s.RunUntil(Time(2500 * Millisecond))
	if s.Now() != Time(2500*Millisecond) {
		t.Fatalf("now = %v", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

// RunUntil must not stall on cancelled events parked at the heap top.
func TestSchedulerRunUntilSkipsTombstones(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		e := s.After(Duration(i+1)*Millisecond, func() { t.Fatal("cancelled event fired") })
		s.Cancel(e)
	}
	ran := false
	s.After(20*Millisecond, func() { ran = true })
	s.RunUntil(Time(30 * Millisecond))
	if !ran {
		t.Fatal("live event behind tombstones not reached")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after drain", s.Pending())
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		s.After(100*Millisecond, tick)
	}
	s.After(100*Millisecond, tick)
	s.RunFor(1 * Second)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	n := 0
	for i := 1; i <= 5; i++ {
		i := i
		s.After(Duration(i)*Second, func() {
			n++
			if i == 2 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 2 {
		t.Fatalf("halted after %d events, want 2", n)
	}
	s.Run() // resume
	if n != 5 {
		t.Fatalf("resume ran %d events, want 5", n)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Time(0), func() {})
}

func TestSchedulerNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var times []Time
	s.After(Second, func() {
		s.After(Second, func() {
			times = append(times, s.Now())
		})
		times = append(times, s.Now())
	})
	s.Run()
	if len(times) != 2 || times[0] != Time(Second) || times[1] != Time(2*Second) {
		t.Fatalf("times = %v", times)
	}
}

// Pending is a maintained counter: it must track schedule, cancel and fire
// exactly, including cancels whose tombstones still sit in the heap.
func TestSchedulerPending(t *testing.T) {
	s := NewScheduler()
	e := s.After(Second, func() {})
	s.After(2*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Cancel(e)
	if s.Pending() != 1 {
		t.Fatalf("pending after cancel = %d", s.Pending())
	}
	s.Cancel(e) // double cancel must not decrement again
	if s.Pending() != 1 {
		t.Fatalf("pending after double cancel = %d", s.Pending())
	}
	s.Step()
	if s.Pending() != 0 {
		t.Fatalf("pending after fire = %d", s.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the scheduler visits every one exactly once.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			s.After(Duration(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical event interleavings even under
// random cancellation (which exercises the lazy-deletion path heavily).
func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		s := NewScheduler()
		rng := rand.New(rand.NewSource(seed))
		var fired []Time
		var events []Timer
		for i := 0; i < 100; i++ {
			e := s.After(Duration(rng.Intn(1000))*Millisecond, func() {
				fired = append(fired, s.Now())
			})
			events = append(events, e)
		}
		for i := 0; i < 30; i++ {
			s.Cancel(events[rng.Intn(len(events))])
		}
		s.Run()
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Heavy churn across many sizes exercises the 4-ary sift paths: every
// event must fire exactly once, in order, interleaved with cancellations.
func TestSchedulerChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := NewScheduler()
	expected := 0
	var timers []Timer
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			timers = append(timers, s.After(Duration(rng.Intn(5000))*Microsecond, func() {}))
		}
		for i := 0; i < 10; i++ {
			tm := timers[rng.Intn(len(timers))]
			if tm.Pending() {
				s.Cancel(tm)
			}
		}
		live := 0
		for _, tm := range timers {
			if tm.Pending() {
				live++
			}
		}
		if live != s.Pending() {
			t.Fatalf("round %d: Pending()=%d, live handles=%d", round, s.Pending(), live)
		}
		expected += live
		before := s.Fired()
		s.Run()
		if got := int(s.Fired() - before); got != live {
			t.Fatalf("round %d: fired %d, want %d", round, got, live)
		}
		timers = timers[:0]
	}
	if int(s.Fired()) != expected {
		t.Fatalf("cumulative fired = %d, want %d", s.Fired(), expected)
	}
}

func TestSubSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		s := SubSeed(7, i)
		if seen[s] {
			t.Fatalf("duplicate subseed at %d", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("different parents collide")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mean := 10 * Millisecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		d := Exponential(rng, mean)
		if d < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += d.Seconds()
	}
	got := sum / n
	want := mean.Seconds()
	if got < 0.97*want || got > 1.03*want {
		t.Fatalf("exponential mean = %v, want ≈ %v", got, want)
	}
}
