package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Scheduler.At and
// Scheduler.After and may be cancelled before they fire. A fired or
// cancelled Event is inert; cancelling it again is a no-op.
type Event struct {
	t        Time
	seq      uint64 // FIFO tie-break for events at the same instant
	index    int    // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() Time { return e.t }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Scheduler is a deterministic discrete-event executor. The zero value is
// ready to use. Scheduler is not safe for concurrent use: the simulated
// world is single-threaded by design, which is what makes runs reproducible.
// A Scheduler must stay confined to the goroutine that created it; to use
// many CPUs, run independent Schedulers in parallel (see internal/exp), one
// per replication, never one Scheduler across goroutines.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far. Useful for tests and
// for cost accounting in benchmarks.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued and not cancelled.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	e := &Event{t: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes e from the queue if it has not fired. It is safe to call
// with a nil event.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
}

// Halt stops the currently executing Run/RunUntil after the current event
// returns. Queued events are retained, so the run can be resumed.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single earliest pending event. It reports false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.t
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t Time) {
	s.halted = false
	for !s.halted {
		e := s.peek()
		if e == nil || e.t > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d of simulated time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Scheduler) peek() *Event {
	for s.queue.Len() > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// eventHeap orders events by (time, seq); seq provides stable FIFO order for
// simultaneous events so runs are reproducible.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
