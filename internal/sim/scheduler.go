package sim

import "fmt"

// event is the scheduler-owned state behind a Timer handle. Events are
// recycled through a per-scheduler freelist: the generation counter is
// bumped every time an event leaves the scheduled state (fire or cancel),
// which is what makes a stale Timer handle — or a stale heap entry — a
// detectable no-op instead of a use-after-free. The freelist is per world
// and needs no synchronization because a Scheduler is confined to one
// goroutine by contract.
type event struct {
	t    Time
	gen  uint64
	fn   func()
	afn  func(any)
	arg  any
	next *event // freelist link
}

// Timer is a cancelable handle to a scheduled callback. The zero value is
// inert: Pending reports false and Cancel is a no-op. A Timer stays valid
// after its event fires or is cancelled — it simply stops matching the
// recycled event's generation — so callers may keep handles around without
// lifecycle bookkeeping.
type Timer struct {
	e   *event
	gen uint64
}

// Pending reports whether the timer's callback is still queued.
func (tm Timer) Pending() bool { return tm.e != nil && tm.e.gen == tm.gen }

// Time reports when the callback will fire, or 0 when the timer is not
// pending.
func (tm Timer) Time() Time {
	if !tm.Pending() {
		return 0
	}
	return tm.e.t
}

// entry is one element of the scheduler's event queue: the ordering key
// (time, then FIFO sequence for simultaneous events) plus the generation
// snapshot that identifies whether the referenced event is still the one
// this entry was pushed for. Cancelled events are deleted lazily — the
// entry stays in the heap as a tombstone until its time comes up and the
// generation mismatch discards it in O(1).
type entry struct {
	t   Time
	seq uint64
	gen uint64
	e   *event
}

func entryLess(a, b entry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Scheduler is a deterministic discrete-event executor. The zero value is
// ready to use. Scheduler is not safe for concurrent use: the simulated
// world is single-threaded by design, which is what makes runs reproducible.
// A Scheduler must stay confined to the goroutine that created it; to use
// many CPUs, run independent Schedulers in parallel (see internal/exp), one
// per replication, never one Scheduler across goroutines.
//
// The queue is a value-based 4-ary min-heap ordered by (time, insertion
// sequence): flatter than a binary heap (fewer cache-missing levels per
// sift) and free of the container/heap interface dispatch. Event structs
// come from a per-world freelist and fire-or-cancel recycles them, so the
// steady-state scheduling path performs no allocation.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  []entry
	live   int // scheduled and not cancelled — Pending() in O(1)
	fired  uint64
	halted bool
	free   *event
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Reset returns the scheduler to the empty time-zero state of a fresh
// NewScheduler while keeping the event freelist and the queue's capacity.
// A worker that runs replications back to back resets one scheduler
// instead of allocating a new world's worth of events each time; because
// every counter (now, seq, fired) restarts from zero, a run on a reset
// scheduler is bit-identical to a run on a fresh one.
func (s *Scheduler) Reset() {
	for i := range s.queue {
		en := &s.queue[i]
		// Live events go back to the freelist (release bumps the
		// generation, so a duplicate tombstone entry cannot match again);
		// tombstones are already freelisted.
		if en.e.gen == en.gen {
			s.release(en.e)
		}
		*en = entry{}
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.live = 0
	s.fired = 0
	s.halted = false
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far. Useful for tests,
// for cost accounting in benchmarks, and for the simulated-events/sec
// throughput lines cmd/paperexp prints.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued and not cancelled. It is a
// maintained counter, not a scan: safe to call per event.
func (s *Scheduler) Pending() int { return s.live }

// alloc takes an event from the freelist, or grows it.
func (s *Scheduler) alloc() *event {
	e := s.free
	if e == nil {
		return &event{}
	}
	s.free = e.next
	e.next = nil
	return e
}

// release recycles an event: the generation bump invalidates every Timer
// handle and heap tombstone pointing at it, and clearing the callback and
// argument drops their references so freelisted events pin no world state.
func (s *Scheduler) release(e *event) {
	e.gen++
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.next = s.free
	s.free = e
}

// schedule queues an event at absolute time t.
func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	e := s.alloc()
	e.t = t
	e.fn = fn
	e.afn = afn
	e.arg = arg
	s.push(entry{t: t, seq: s.seq, gen: e.gen, e: e})
	s.seq++
	s.live++
	return Timer{e: e, gen: e.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn func()) Timer { return s.schedule(t, fn, nil, nil) }

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.schedule(s.now.Add(d), fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. Passing the argument through
// the scheduler lets hot paths reuse one long-lived callback instead of
// allocating a capturing closure per event (a pointer in an interface does
// not allocate); netsim's per-packet delivery path relies on this.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) Timer {
	return s.schedule(t, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now. Negative d panics.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.schedule(s.now.Add(d), nil, fn, arg)
}

// Cancel removes the timer's callback from the queue if it has not fired.
// Cancelling an inert (zero, fired, or already cancelled) timer is a no-op.
// The removal is lazy — O(1) here, with the orphaned heap entry discarded
// when it reaches the top — so cancel-heavy workloads (TCP retransmission
// timers rearm on every ACK) cost no sift-and-fix work.
func (s *Scheduler) Cancel(tm Timer) {
	if tm.e == nil || tm.e.gen != tm.gen {
		return
	}
	s.release(tm.e)
	s.live--
}

// Halt stops the currently executing Run/RunUntil after the current event
// returns. Queued events are retained, so the run can be resumed.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single earliest pending event. It reports false when
// the queue holds no live events.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		en := s.pop()
		e := en.e
		if e.gen != en.gen {
			continue // tombstone of a cancelled event
		}
		fn, afn, arg := e.fn, e.afn, e.arg
		s.release(e)
		s.live--
		s.now = en.t
		s.fired++
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t Time) {
	s.halted = false
	for !s.halted {
		next, ok := s.peekTime()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d of simulated time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// peekTime reports the time of the earliest live event, discarding any
// tombstones that have reached the top.
func (s *Scheduler) peekTime() (Time, bool) {
	for len(s.queue) > 0 {
		en := s.queue[0]
		if en.e.gen == en.gen {
			return en.t, true
		}
		s.pop()
	}
	return 0, false
}

// push inserts an entry into the 4-ary heap (sift up).
func (s *Scheduler) push(en entry) {
	s.queue = append(s.queue, en)
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the minimum entry (sift down).
func (s *Scheduler) pop() entry {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = entry{} // drop the event reference from the dead slot
	s.queue = q[:n]
	if n > 0 {
		q = s.queue
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entryLess(q[j], q[best]) {
					best = j
				}
			}
			if !entryLess(q[best], last) {
				break
			}
			q[i] = q[best]
			i = best
		}
		q[i] = last
	}
	return top
}
