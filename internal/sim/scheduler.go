package sim

import "fmt"

// event is the scheduler-owned state behind a Timer handle. Events are
// recycled through a per-scheduler freelist: the generation counter is
// bumped every time an event leaves the scheduled state (fire or cancel),
// which is what makes a stale Timer handle — or a stale heap entry — a
// detectable no-op instead of a use-after-free. The freelist is per world
// and needs no synchronization because a Scheduler is confined to one
// goroutine by contract.
type event struct {
	t    Time
	gen  uint64
	fn   func()
	afn  func(any)
	arg  any
	next *event // freelist link

	// Wheel residency backref. wlevel is 0 when the event lives in the
	// heap (or nowhere), 1/2 for wheel level 0/1; wslot and wpos locate
	// its entry so Cancel can swap-remove it in O(1). Eager removal keeps
	// wheel slots tombstone-free — cancel-heavy timer patterns (TCP RTOs
	// rearmed every ACK) would otherwise pile dead entries into far-future
	// slots until the clock reached them.
	wlevel uint8
	wslot  uint8
	wpos   int32
}

// Timer is a cancelable handle to a scheduled callback. The zero value is
// inert: Pending reports false and Cancel is a no-op. A Timer stays valid
// after its event fires or is cancelled — it simply stops matching the
// recycled event's generation — so callers may keep handles around without
// lifecycle bookkeeping.
type Timer struct {
	e   *event
	gen uint64
}

// Pending reports whether the timer's callback is still queued.
func (tm Timer) Pending() bool { return tm.e != nil && tm.e.gen == tm.gen }

// Time reports when the callback will fire, or 0 when the timer is not
// pending.
func (tm Timer) Time() Time {
	if !tm.Pending() {
		return 0
	}
	return tm.e.t
}

// entry is one element of the scheduler's event queue: the ordering key
// (time, arming genealogy, FIFO sequence) plus the generation snapshot that
// identifies whether the referenced event is still the one this entry was
// pushed for. Cancelled events are deleted lazily — the entry stays in the
// heap as a tombstone until its time comes up and the generation mismatch
// discards it in O(1).
//
// armT is the virtual instant the event was armed at — s.now for the
// ordinary At/After family, or a caller-asserted instant for the AsOf
// variants. armT2 and armT3 extend the key two generations up the arming
// ancestry: the instant the event's parent (the event whose callback armed
// this one) was armed, and the parent's parent in turn. For truthfully
// armed events the chain is threaded automatically from the firing event's
// own keys, and because seq is strictly monotone over arming order, sorting
// simultaneous events by (armT, armT2, armT3, seq) is identical to sorting
// by seq alone — at every depth the ancestor keys can only agree with the
// seq order they summarize. The genealogy matters when a coalesced timer
// stands in for an event a reference execution would have armed elsewhere
// (see AtAsOf): two stand-ins can tie not just at the due time but at the
// replaced events' arming instants too — two same-geometry ports finishing
// serialization in the same nanosecond — and then the reference breaks the
// tie by the arming order of the parents, which the deeper keys carry and
// a plain (armT, seq) cannot. Ties through all three generations fall to
// seq, the one residual the stand-in cannot reproduce.
type entry struct {
	t     Time
	armT  Time
	armT2 Time
	armT3 Time
	seq   uint64
	gen   uint64
	e     *event
}

func entryLess(a, b entry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.armT != b.armT {
		return a.armT < b.armT
	}
	if a.armT2 != b.armT2 {
		return a.armT2 < b.armT2
	}
	if a.armT3 != b.armT3 {
		return a.armT3 < b.armT3
	}
	return a.seq < b.seq
}

// Timing-wheel geometry. Two fixed levels of 256 slots front the heap:
// level 0 buckets events by 2^16 ns (~65.5 µs) ticks — a horizon of
// ~16.8 ms, which covers per-packet serialize/deliver timers and most
// RTT-scale timeouts — and level 1 buckets by 2^24 ns (~16.8 ms) ticks for
// a horizon of ~4.29 s, which covers retransmission timers. Events beyond
// the level-1 horizon, or due in an already-flushed tick, go straight to
// the heap.
const (
	wheelBits  = 8
	wheelSlots = 1 << wheelBits // 256 slots per level
	wheelMask  = wheelSlots - 1
	tick0Bits  = 16 // level-0 granularity: 2^16 ns
	tick1Bits  = tick0Bits + wheelBits
)

// Scheduler is a deterministic discrete-event executor. The zero value is
// ready to use. Scheduler is not safe for concurrent use: the simulated
// world is single-threaded by design, which is what makes runs reproducible.
// A Scheduler must stay confined to the goroutine that created it; to use
// many CPUs, run independent Schedulers in parallel (see internal/exp), one
// per replication, never one Scheduler across goroutines.
//
// The core queue is a value-based 4-ary min-heap ordered by (time, arming
// genealogy, insertion sequence): flatter than a binary heap (fewer cache-missing
// levels per sift) and free of the container/heap interface dispatch. A
// two-level hierarchical timing wheel fronts the heap: near-future events
// land in fixed slots with O(1) insert, and a slot's entries are flushed
// into the heap only when the clock reaches its tick. Because every event
// ultimately fires through the heap's (time, sequence) merge, the global
// firing order is exactly what a heap-only scheduler produces — the wheel
// changes cost, never order. Event structs come from a per-world freelist
// and fire-or-cancel recycles them, so the steady-state scheduling path
// performs no allocation.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  []entry
	live   int // scheduled and not cancelled — Pending() in O(1)
	fired  uint64
	halted bool
	free   *event

	// Timing wheel state. cur0 is the next unflushed level-0 tick
	// (absolute, = time >> tick0Bits); cur1 the next uncascaded level-1
	// tick. count0/count1 track stored entries per level, tombstones
	// included, so emptiness checks are O(1). Slot slices keep their
	// capacity across flushes and Resets.
	cur0, cur1     int64
	count0, count1 int
	wheelInit      bool
	slots0         [wheelSlots][]entry
	slots1         [wheelSlots][]entry

	// drain, when set, receives the argument of every live argument-carrying
	// event that Reset abandons. See SetResetDrain.
	drain func(any)

	// firing is the event whose callback is currently executing. Step
	// defers recycling the fired event until the callback returns so the
	// callback can re-arm it in place via Rearm — the serialization-chain
	// path in netsim re-uses one event per busy period this way instead of
	// paying a freelist round trip per packet. firingArmT, firingArmT2 and
	// inFire expose the firing event's arming instant and its parent's to
	// callbacks (FiringAsOf, FiringLineage) and seed the genealogy keys of
	// events armed inside the callback; unlike firing, they stay valid
	// through a Rearm until the callback returns.
	firing      *event
	firingArmT  Time
	firingArmT2 Time
	inFire      bool
}

// SetResetDrain installs a hook that Reset hands the argument of every
// still-scheduled AtArg/AfterArg event to, before recycling the event.
// Without it, resetting a world mid-flight strands whatever the pending
// events were carrying — in netsim terms, every packet that was riding a
// propagation or serialization event leaks to the garbage collector and
// the world's packet pool refills from the allocator on the next run. The
// arena wires this to the packet pool (recovered values are recycled, not
// replayed), which is what keeps back-to-back replications allocation-free
// in steady state. Cancelled events never reach the hook; their arguments
// were dropped at Cancel time.
func (s *Scheduler) SetResetDrain(fn func(any)) { s.drain = fn }

// initSlots carves every slot's initial capacity out of one backing array,
// so a cold scheduler pays one allocation for the whole wheel instead of
// one per touched slot. Slots that outgrow their chunk reallocate
// individually and keep the larger capacity from then on.
func (s *Scheduler) initSlots() {
	const per = 32
	backing := make([]entry, wheelSlots*2*per)
	for i := range s.slots0 {
		off := i * per
		s.slots0[i] = backing[off : off : off+per]
	}
	for i := range s.slots1 {
		off := (wheelSlots + i) * per
		s.slots1[i] = backing[off : off : off+per]
	}
	s.wheelInit = true
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Reset returns the scheduler to the empty time-zero state of a fresh
// NewScheduler while keeping the event freelist and the queue's capacity.
// A worker that runs replications back to back resets one scheduler
// instead of allocating a new world's worth of events each time; because
// every counter (now, seq, fired) restarts from zero, a run on a reset
// scheduler is bit-identical to a run on a fresh one.
func (s *Scheduler) Reset() {
	for i := range s.queue {
		en := &s.queue[i]
		// Live events go back to the freelist (release bumps the
		// generation, so a duplicate tombstone entry cannot match again);
		// tombstones are already freelisted.
		if en.e.gen == en.gen {
			if s.drain != nil && en.e.arg != nil {
				s.drain(en.e.arg)
			}
			s.release(en.e)
		}
		*en = entry{}
	}
	s.queue = s.queue[:0]
	for i := range s.slots0 {
		s.resetSlot(&s.slots0[i])
	}
	for i := range s.slots1 {
		s.resetSlot(&s.slots1[i])
	}
	s.cur0 = 0
	s.cur1 = 0
	s.count0 = 0
	s.count1 = 0
	s.now = 0
	s.seq = 0
	s.live = 0
	s.fired = 0
	s.halted = false
	s.firing = nil
	s.firingArmT = 0
	s.firingArmT2 = 0
	s.inFire = false
}

// resetSlot releases a wheel slot's live events and truncates it in place,
// keeping the slice's capacity for the next run.
func (s *Scheduler) resetSlot(sl *[]entry) {
	for i := range *sl {
		en := &(*sl)[i]
		if en.e.gen == en.gen {
			if s.drain != nil && en.e.arg != nil {
				s.drain(en.e.arg)
			}
			s.release(en.e)
		}
		*en = entry{}
	}
	*sl = (*sl)[:0]
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far. Useful for tests,
// for cost accounting in benchmarks, and for the simulated-events/sec
// throughput lines cmd/paperexp prints.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending reports how many events are queued and not cancelled. It is a
// maintained counter, not a scan: safe to call per event.
func (s *Scheduler) Pending() int { return s.live }

// eventSlab is how many events an empty freelist allocates at once: a
// world's working set of concurrent timers is built one slab allocation
// per 64 events instead of one each. Slabs pin nothing — released events
// clear their callback and argument references.
const eventSlab = 64

// alloc takes an event from the freelist, or grows it by a slab.
func (s *Scheduler) alloc() *event {
	e := s.free
	if e == nil {
		slab := make([]event, eventSlab)
		for i := range slab[1:] {
			slab[1+i].next = s.free
			s.free = &slab[1+i]
		}
		return &slab[0]
	}
	s.free = e.next
	e.next = nil
	return e
}

// release recycles an event: the generation bump invalidates every Timer
// handle and heap tombstone pointing at it, and clearing the callback and
// argument drops their references so freelisted events pin no world state.
func (s *Scheduler) release(e *event) {
	e.gen++
	s.releaseFired(e)
}

// releaseFired recycles an event whose generation was already bumped (at
// fire time, in Step). Kept separate from release so Rearm can intercept
// the event between the bump and the recycle.
func (s *Scheduler) releaseFired(e *event) {
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.wlevel = 0
	e.next = s.free
	s.free = e
}

// armedNow reports the truthful genealogy keys for an event armed at this
// moment: the arming instant is now, and the ancestor keys are those of the
// currently firing event. Outside a callback (world setup, manual stepping)
// every key is now, which orders after all already-fired work, as it must.
func (s *Scheduler) armedNow() (armT, armT2, armT3 Time) {
	if s.inFire {
		return s.now, s.firingArmT, s.firingArmT2
	}
	return s.now, s.now, s.now
}

// schedule queues an event at absolute time t, armed as of virtual instant
// armT with ancestor instants armT2, armT3 (armedNow() for the truthful
// entry points).
func (s *Scheduler) schedule(t, armT, armT2, armT3 Time, fn func(), afn func(any), arg any) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if armT > t {
		panic(fmt.Sprintf("sim: armed-as-of %v after due time %v", armT, t))
	}
	// When both wheels are empty the clock can outrun the cursors (heap
	// events fire without flushing anything). Re-base then, so near-future
	// events keep landing in wheel slots instead of degrading to the heap.
	if s.count0+s.count1 == 0 {
		if tk := int64(s.now) >> tick0Bits; tk > s.cur0 {
			s.cur0 = tk
			s.cur1 = tk >> wheelBits
		}
	}
	e := s.alloc()
	e.t = t
	e.fn = fn
	e.afn = afn
	e.arg = arg
	s.place(entry{t: t, armT: armT, armT2: armT2, armT3: armT3, seq: s.seq, gen: e.gen, e: e})
	s.seq++
	s.live++
	return Timer{e: e, gen: e.gen}
}

// place routes an entry to a wheel slot or the heap by its due time.
// Entries in an already-flushed level-0 tick must go to the heap (their
// slot will not be visited again before they are due); entries within the
// level-0 horizon get an O(1) slot append; entries within the level-1
// horizon get a coarse slot that cascades into level 0 later; everything
// farther out falls back to the heap.
func (s *Scheduler) place(en entry) {
	tk0 := int64(en.t) >> tick0Bits
	if tk0 < s.cur0 {
		en.e.wlevel = 0
		s.push(en)
		return
	}
	if !s.wheelInit {
		s.initSlots()
	}
	if tk0-s.cur0 < wheelSlots {
		i := tk0 & wheelMask
		en.e.wlevel = 1
		en.e.wslot = uint8(i)
		en.e.wpos = int32(len(s.slots0[i]))
		s.slots0[i] = append(s.slots0[i], en)
		s.count0++
		return
	}
	tk1 := int64(en.t) >> tick1Bits
	if tk1 >= s.cur1 && tk1-s.cur1 < wheelSlots {
		i := tk1 & wheelMask
		en.e.wlevel = 2
		en.e.wslot = uint8(i)
		en.e.wpos = int32(len(s.slots1[i]))
		s.slots1[i] = append(s.slots1[i], en)
		s.count1++
		return
	}
	en.e.wlevel = 0
	s.push(en)
}

// wheelRemove eagerly swap-removes a still-scheduled event's entry from
// its wheel slot, fixing up the backref of whichever live entry the swap
// moved. Wheel slots therefore never hold tombstones; only heap entries
// are deleted lazily.
func (s *Scheduler) wheelRemove(e *event) {
	var sl *[]entry
	if e.wlevel == 1 {
		sl = &s.slots0[e.wslot]
		s.count0--
	} else {
		sl = &s.slots1[e.wslot]
		s.count1--
	}
	q := *sl
	last := len(q) - 1
	pos := int(e.wpos)
	if pos != last {
		q[pos] = q[last]
		q[pos].e.wpos = int32(pos)
	}
	q[last] = entry{}
	*sl = q[:last]
	e.wlevel = 0
}

// advance flushes expired wheel slots into the heap until the heap's head
// (if any) provably precedes every wheel entry — i.e. it is earlier than
// the first unflushed tick — or the wheels drain. All firing happens from
// the heap, so this is the only place wheel entries change residence.
func (s *Scheduler) advance() {
	for s.count0+s.count1 > 0 {
		if len(s.queue) > 0 && s.queue[0].t < Time(s.cur0<<tick0Bits) {
			return
		}
		if s.cur0>>wheelBits == s.cur1 {
			s.cascade()
			continue
		}
		if s.count0 == 0 {
			// Nothing left at level 0: jump straight to the next
			// level-1 boundary instead of walking empty slots.
			s.cur0 = s.cur1 << wheelBits
			continue
		}
		sl := s.slots0[s.cur0&wheelMask]
		if n := len(sl); n > 0 {
			// Every entry is live (Cancel removes eagerly); hand each to
			// the heap, which owns ordering from here on.
			for i := range sl {
				en := sl[i]
				sl[i] = entry{}
				en.e.wlevel = 0
				s.push(en)
			}
			s.slots0[s.cur0&wheelMask] = sl[:0]
			s.count0 -= n
		}
		s.cur0++
	}
}

// cascade drains the next level-1 slot into the level-0 slots that now
// cover its tick. Entries in the slot are always exactly due — the insert
// window (tick ≥ cur1) and in-order cascading make a mixed-wrap slot
// impossible — but re-placement goes through place anyway, which also
// handles the defensive cases (heap fallback) for free.
func (s *Scheduler) cascade() {
	i := s.cur1 & wheelMask
	sl := s.slots1[i]
	// Truncate before re-placing so a (defensive) re-place into this same
	// slot would append after the drained prefix instead of being lost to
	// a trailing truncation; reads stay ahead of any such writes.
	s.slots1[i] = sl[:0]
	s.count1 -= len(sl)
	s.cur1++
	for j := range sl {
		en := sl[j]
		sl[j] = entry{}
		s.place(en)
	}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (s *Scheduler) At(t Time, fn func()) Timer {
	a1, a2, a3 := s.armedNow()
	return s.schedule(t, a1, a2, a3, fn, nil, nil)
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	a1, a2, a3 := s.armedNow()
	return s.schedule(s.now.Add(d), a1, a2, a3, fn, nil, nil)
}

// AtArg schedules fn(arg) at absolute time t. Passing the argument through
// the scheduler lets hot paths reuse one long-lived callback instead of
// allocating a capturing closure per event (a pointer in an interface does
// not allocate); netsim's per-packet delivery path relies on this.
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) Timer {
	a1, a2, a3 := s.armedNow()
	return s.schedule(t, a1, a2, a3, nil, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now. Negative d panics.
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	a1, a2, a3 := s.armedNow()
	return s.schedule(s.now.Add(d), a1, a2, a3, nil, fn, arg)
}

// AtAsOf schedules fn at absolute time t as if it had been armed at virtual
// instant armedAt by a callback itself armed at parentAt, whose arming
// callback was in turn armed at grandAt. It exists for coalesced timers
// that stand in for events a reference execution would have armed one per
// packet: with a truthful genealogy (the instants the replaced event and
// its two nearest ancestors would have been created), every same-nanosecond
// tie against ordinary events resolves exactly as it would have in the
// reference schedule, because simultaneous events fire in (arming
// genealogy, sequence) order and sequence is itself monotone over arming
// time — including ties where two stand-ins replace events armed at the
// same instant, which the reference orders by the parents' own arming
// instants. The keys must be non-increasing up the chain (grandAt ≤
// parentAt ≤ armedAt ≤ t) and may lie in the future relative to now — they
// are ordering keys, not constraints on when the call is made.
func (s *Scheduler) AtAsOf(t, armedAt, parentAt, grandAt Time, fn func()) Timer {
	checkLineage(t, armedAt, parentAt, grandAt)
	return s.schedule(t, armedAt, parentAt, grandAt, fn, nil, nil)
}

// AtArgAsOf is AtAsOf for an argument-carrying callback.
func (s *Scheduler) AtArgAsOf(t, armedAt, parentAt, grandAt Time, fn func(any), arg any) Timer {
	checkLineage(t, armedAt, parentAt, grandAt)
	return s.schedule(t, armedAt, parentAt, grandAt, nil, fn, arg)
}

// checkLineage validates an explicit arming genealogy: each ancestor was
// armed no later than the event it armed.
func checkLineage(t, armedAt, parentAt, grandAt Time) {
	if armedAt > t || parentAt > armedAt || grandAt > parentAt {
		panic(fmt.Sprintf("sim: arming genealogy %v ≥ %v ≥ %v ≥ %v violated",
			t, armedAt, parentAt, grandAt))
	}
}

// FiringAsOf reports the arming instant of the event whose callback is
// currently executing — the armedAt it was scheduled with, which for
// ordinary events is the time of the callback that armed them. Outside a
// callback it reports Now(), which compares after every arming instant of
// already-fired work, as an outside observer should. Hot-path consumers
// (netsim's batched port) use it to decide whether a reference execution
// would already have fired a coalesced-away event at this same nanosecond:
// the reference fires simultaneous events in arming order, so "armed before
// the currently-firing event was" means "already happened".
func (s *Scheduler) FiringAsOf() Time {
	if s.inFire {
		return s.firingArmT
	}
	return s.now
}

// FiringLineage reports the first two genealogy keys of the event whose
// callback is currently executing: its own arming instant (FiringAsOf) and
// its parent's. Consumers refining a FiringAsOf comparison use the second
// key to break the tie one generation deeper when the arming instants
// themselves collide. Outside a callback both report Now().
func (s *Scheduler) FiringLineage() (armedAt, parentAt Time) {
	if s.inFire {
		return s.firingArmT, s.firingArmT2
	}
	return s.now, s.now
}

// Cancel removes the timer's callback from the queue if it has not fired.
// Cancelling an inert (zero, fired, or already cancelled) timer is a no-op.
// Removal is O(1) either way: a heap-resident event is deleted lazily (the
// orphaned entry is discarded when it reaches the top), while a
// wheel-resident one is swap-removed from its slot immediately — so
// cancel-heavy workloads (TCP retransmission timers rearm on every ACK)
// cost no sift-and-fix work and leave no debris in far-future slots.
func (s *Scheduler) Cancel(tm Timer) {
	if tm.e == nil || tm.e.gen != tm.gen {
		return
	}
	if tm.e.wlevel != 0 {
		s.wheelRemove(tm.e)
	}
	s.release(tm.e)
	s.live--
}

// Reschedule moves a still-pending timer to absolute time t without the
// free-and-realloc round trip of Cancel + At: the event struct is re-timed
// in place. A wheel-resident event is swap-removed from its slot and
// re-placed; a heap-resident one leaves its old entry behind as a lazy
// tombstone (exactly like Cancel) and pushes a fresh entry, so the cost is
// one O(log n) sift with no freelist traffic either way. The returned
// Timer supersedes tm, which goes inert; callers re-arming a recurring
// timer must keep the new handle. Rescheduling an inert timer reports
// false and changes nothing; t in the past panics. The callback and
// argument ride along unchanged — Reschedule re-times, never re-targets.
func (s *Scheduler) Reschedule(tm Timer, t Time) (Timer, bool) {
	a1, a2, a3 := s.armedNow()
	return s.rescheduleAsOf(tm, t, a1, a2, a3)
}

// RescheduleAsOf is Reschedule with an explicit arming genealogy for the
// re-timed event's tie-break keys (see AtAsOf).
func (s *Scheduler) RescheduleAsOf(tm Timer, t, armedAt, parentAt, grandAt Time) (Timer, bool) {
	checkLineage(t, armedAt, parentAt, grandAt)
	return s.rescheduleAsOf(tm, t, armedAt, parentAt, grandAt)
}

func (s *Scheduler) rescheduleAsOf(tm Timer, t, armT, armT2, armT3 Time) (Timer, bool) {
	e := tm.e
	if e == nil || e.gen != tm.gen {
		return Timer{}, false
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", t, s.now))
	}
	if e.wlevel != 0 {
		s.wheelRemove(e)
	}
	e.gen++ // orphans the old heap entry (if any) and every old handle
	e.t = t
	s.place(entry{t: t, armT: armT, armT2: armT2, armT3: armT3, seq: s.seq, gen: e.gen, e: e})
	s.seq++
	return Timer{e: e, gen: e.gen}, true
}

// Rearm re-schedules the event whose callback is currently executing to
// fire again at absolute time t, with the same callback and argument. It
// is the chain primitive for self-perpetuating timers (a port's
// serialization-complete handler starting the next transmission, a
// modulator tick arming the next tick): the firing event never touches the
// freelist, so a chain of N firings costs N heap pushes and zero
// alloc/release pairs. Rearm may be called at most once per firing, only
// from inside the callback (panics otherwise), and t must not be in the
// past. Handles taken before the firing are already inert — keep the
// returned Timer to cancel or re-time the chain.
func (s *Scheduler) Rearm(t Time) Timer {
	a1, a2, a3 := s.armedNow()
	return s.rearmAsOf(t, a1, a2, a3)
}

// RearmAsOf is Rearm with an explicit arming genealogy for the re-armed
// event's tie-break keys (see AtAsOf).
func (s *Scheduler) RearmAsOf(t, armedAt, parentAt, grandAt Time) Timer {
	checkLineage(t, armedAt, parentAt, grandAt)
	return s.rearmAsOf(t, armedAt, parentAt, grandAt)
}

func (s *Scheduler) rearmAsOf(t, armT, armT2, armT3 Time) Timer {
	e := s.firing
	if e == nil {
		panic("sim: Rearm outside a firing callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: rearm at %v before now %v", t, s.now))
	}
	s.firing = nil
	e.t = t
	s.place(entry{t: t, armT: armT, armT2: armT2, armT3: armT3, seq: s.seq, gen: e.gen, e: e})
	s.seq++
	s.live++
	return Timer{e: e, gen: e.gen}
}

// Halt stops the currently executing Run/RunUntil after the current event
// returns. Queued events are retained, so the run can be resumed.
func (s *Scheduler) Halt() { s.halted = true }

// Step executes the single earliest pending event. It reports false when
// the queue holds no live events.
func (s *Scheduler) Step() bool {
	for {
		s.advance()
		if len(s.queue) == 0 {
			return false
		}
		en := s.pop()
		e := en.e
		if e.gen != en.gen {
			continue // tombstone of a cancelled event
		}
		// The generation bump happens at fire time — handles go inert
		// before the callback runs, exactly as with an immediate release —
		// but the struct is recycled only after the callback returns, so
		// the callback may Rearm it in place for the next link of a chain.
		e.gen++
		s.live--
		s.now = en.t
		s.fired++
		s.firing = e
		s.firingArmT = en.armT
		s.firingArmT2 = en.armT2
		s.inFire = true
		if e.afn != nil {
			e.afn(e.arg)
		} else {
			e.fn()
		}
		s.inFire = false
		if s.firing == e {
			s.firing = nil
			s.releaseFired(e)
		}
		return true
	}
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled exactly at t do fire.
func (s *Scheduler) RunUntil(t Time) {
	s.halted = false
	for !s.halted {
		next, ok := s.peekTime()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor runs the simulation for d of simulated time from now.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// peekTime reports the time of the earliest live event, discarding any
// tombstones that have reached the top.
func (s *Scheduler) peekTime() (Time, bool) {
	for {
		s.advance()
		if len(s.queue) == 0 {
			return 0, false
		}
		en := s.queue[0]
		if en.e.gen == en.gen {
			return en.t, true
		}
		s.pop()
	}
}

// push inserts an entry into the 4-ary heap (sift up).
func (s *Scheduler) push(en entry) {
	s.queue = append(s.queue, en)
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the minimum entry (sift down).
func (s *Scheduler) pop() entry {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = entry{} // drop the event reference from the dead slot
	s.queue = q[:n]
	if n > 0 {
		q = s.queue
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entryLess(q[j], q[best]) {
					best = j
				}
			}
			if !entryLess(q[best], last) {
				break
			}
			q[i] = q[best]
			i = best
		}
		q[i] = last
	}
	return top
}
