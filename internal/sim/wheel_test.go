package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// tickDur converts level-0 ticks to a Duration, for tests that want to
// land events in specific wheel slots.
const tickDur = Duration(1) << tick0Bits

// Events spread across more ticks than level 0 has slots force the wheel
// cursor to wrap (slot indexes are reused for later ticks) — every event
// must still fire exactly once, in time order.
func TestWheelSlotRollover(t *testing.T) {
	s := NewScheduler()
	const n = 3 * wheelSlots // three full level-0 wraps
	fired := make([]Time, 0, n)
	for i := n - 1; i >= 0; i-- {
		s.At(Time(Duration(i)*tickDur+tickDur/2), func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// Cancelling an event that is resident in a wheel slot must remove it
// eagerly: the slot shrinks, Pending drops, and the event never fires.
func TestWheelCancelInWheel(t *testing.T) {
	s := NewScheduler()
	// One event per level: level 0 (within ~16.8 ms) and level 1 (within
	// ~4.29 s), plus neighbors in the same slots that must survive.
	e0 := s.After(10*tickDur, func() { t.Fatal("cancelled level-0 event fired") })
	ok0 := false
	s.After(10*tickDur, func() { ok0 = true })
	e1 := s.After(200*Millisecond, func() { t.Fatal("cancelled level-1 event fired") })
	ok1 := false
	s.After(200*Millisecond, func() { ok1 = true })
	if s.Pending() != 4 {
		t.Fatalf("pending = %d, want 4", s.Pending())
	}
	s.Cancel(e0)
	s.Cancel(e1)
	if s.Pending() != 2 {
		t.Fatalf("pending after cancel = %d, want 2", s.Pending())
	}
	if s.count0+s.count1 != 2 {
		t.Fatalf("wheel holds %d entries after eager cancel, want 2", s.count0+s.count1)
	}
	s.Run()
	if !ok0 || !ok1 {
		t.Fatalf("surviving slot neighbors did not fire: ok0=%v ok1=%v", ok0, ok1)
	}
}

// An event beyond the level-1 horizon overflows to the heap; it must still
// interleave in exact time order with wheel-resident events, including
// ties broken by insertion sequence.
func TestWheelOverflowToHeapOrdering(t *testing.T) {
	s := NewScheduler()
	var fired []int
	far := 6 * Second // beyond the ~4.29 s level-1 horizon: heap-resident
	s.After(far, func() { fired = append(fired, 2) })
	s.After(far+Millisecond, func() { fired = append(fired, 3) })
	s.After(50*Millisecond, func() { fired = append(fired, 0) }) // level 1
	s.After(3*tickDur, func() { fired = append(fired, 1) })      // level 0
	// Same-time tie across placements: heap-overflow first by sequence.
	s.At(Time(far), func() { fired = append(fired, 4) })
	s.Run()
	want := []int{1, 0, 2, 4, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("order = %v, want %v", fired, want)
		}
	}
}

// Reset with entries still parked in wheel slots must empty both levels
// and recycle their events, leaving the scheduler bit-identical to fresh.
func TestWheelResetWithPendingEntries(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 10; i++ {
		s.After(Duration(i+1)*tickDur, func() { t.Fatal("stale level-0 event fired") })
		s.After(Duration(i+1)*100*Millisecond, func() { t.Fatal("stale level-1 event fired") })
	}
	s.After(10*Second, func() { t.Fatal("stale heap event fired") })
	// Advance the cursors mid-wheel without firing anything: peeking
	// flushes the first slots but the earliest event is past the target.
	s.RunUntil(Time(tickDur / 2))
	s.Reset()
	if s.Pending() != 0 || s.count0 != 0 || s.count1 != 0 || len(s.queue) != 0 {
		t.Fatalf("reset left state: pending=%d count0=%d count1=%d heap=%d",
			s.Pending(), s.count0, s.count1, len(s.queue))
	}
	if s.Now() != 0 || s.cur0 != 0 || s.cur1 != 0 {
		t.Fatalf("reset left clock/cursors: now=%v cur0=%d cur1=%d", s.Now(), s.cur0, s.cur1)
	}
	// A post-reset run behaves exactly like a fresh scheduler's.
	n := 0
	s.After(tickDur, func() { n++ })
	s.After(300*Millisecond, func() { n++ })
	s.Run()
	if n != 2 || s.Fired() != 2 {
		t.Fatalf("post-reset run: n=%d fired=%d", n, s.Fired())
	}
}

// A level-1 slot index is reused for ticks a full wrap apart. An event
// inserted mid-run whose tick lands on an already-cascaded slot index must
// wait for its own tick's cascade, not fire early or get lost.
func TestWheelLevel1SlotReuseAcrossWrap(t *testing.T) {
	s := NewScheduler()
	var fired []int
	soon := Duration(2) << tick1Bits // level-1 tick 2
	late := soon + (Duration(wheelSlots) << tick1Bits)
	s.After(soon, func() { fired = append(fired, 0) })
	// Keep the wheel advancing so the clock reaches 'soon' while the
	// far event is still outside every horizon.
	s.After(soon+Millisecond, func() {
		s.After(late-Duration(s.Now())-Millisecond, func() { fired = append(fired, 2) })
		fired = append(fired, 1)
	})
	s.Run()
	want := []int{0, 1, 2}
	if len(fired) != 3 || fired[0] != 0 || fired[1] != 1 || fired[2] != 2 {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// After the wheels drain, heap-only activity can carry the clock far past
// the wheel cursors. The next schedule must re-base the cursors so
// near-future events keep getting O(1) wheel placement — and, above all,
// keep firing correctly.
func TestWheelRebaseAfterIdle(t *testing.T) {
	s := NewScheduler()
	s.After(6*Second, func() {}) // heap-resident (beyond level-1 horizon)
	s.RunUntil(Time(6 * Second))
	n := 0
	s.After(3*tickDur, func() { n++ }) // should re-base and land in level 0
	if s.count0 != 1 {
		t.Fatalf("near-future event not wheel-placed after re-base: count0=%d", s.count0)
	}
	s.Run()
	if n != 1 {
		t.Fatal("re-based event did not fire")
	}
}

// Property: a wheel-fronted scheduler fires any random workload — delays
// spanning both wheel horizons and the heap overflow, with random
// cancellations — in exactly the order the (time, sequence) contract
// demands.
func TestWheelOrderEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		s := NewScheduler()
		type ev struct {
			t   Time
			seq int
		}
		var want []ev
		var got []ev
		n := 50 + rng.Intn(150)
		timers := make([]Timer, 0, n)
		for i := 0; i < n; i++ {
			// Mix magnitudes: sub-tick, level 0, level 1, and far heap.
			var d Duration
			switch rng.Intn(4) {
			case 0:
				d = Duration(rng.Int63n(int64(tickDur)))
			case 1:
				d = Duration(rng.Int63n(int64(tickDur) * wheelSlots))
			case 2:
				d = Duration(rng.Int63n(int64(Second) * 4))
			default:
				d = Duration(rng.Int63n(int64(Second) * 20))
			}
			i := i
			timers = append(timers, s.After(d, func() { got = append(got, ev{s.Now(), i}) }))
			want = append(want, ev{Time(d), i})
		}
		cancelled := make(map[int]bool)
		for k := 0; k < n/4; k++ {
			j := rng.Intn(n)
			if !cancelled[j] {
				s.Cancel(timers[j])
				cancelled[j] = true
			}
		}
		live := want[:0]
		for _, w := range want {
			if !cancelled[w.seq] {
				live = append(live, w)
			}
		}
		sort.SliceStable(live, func(a, b int) bool { return live[a].t < live[b].t })
		s.Run()
		if len(got) != len(live) {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(got), len(live))
		}
		for i := range live {
			if got[i] != live[i] {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, got[i], live[i])
			}
		}
	}
}
