package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler()
	var order []int
	tm := s.After(1*Second, func() { order = append(order, 1) })
	s.After(2*Second, func() { order = append(order, 2) })

	// Move the 1s event past the 2s one; the old handle goes inert.
	tm2, ok := s.Reschedule(tm, Time(3*Second))
	if !ok {
		t.Fatal("reschedule of a pending timer failed")
	}
	if tm.Pending() {
		t.Fatal("superseded handle still pending")
	}
	if !tm2.Pending() || tm2.Time() != Time(3*Second) {
		t.Fatalf("rescheduled timer: pending=%v time=%v", tm2.Pending(), tm2.Time())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	// And back before the 2s event.
	tm3, ok := s.Reschedule(tm2, Time(1500*Millisecond))
	if !ok {
		t.Fatal("second reschedule failed")
	}
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	if s.Fired() != 2 {
		t.Fatalf("fired = %d, want 2 (no tombstone fired)", s.Fired())
	}
	if tm3.Pending() {
		t.Fatal("fired timer still pending")
	}
	// Inert handles (fired, superseded, zero) reschedule to nothing.
	if _, ok := s.Reschedule(tm3, Time(5*Second)); ok {
		t.Fatal("rescheduled a fired timer")
	}
	if _, ok := s.Reschedule(Timer{}, Time(5*Second)); ok {
		t.Fatal("rescheduled the zero timer")
	}
}

func TestSchedulerRescheduleCancel(t *testing.T) {
	s := NewScheduler()
	tm := s.After(Second, func() { t.Fatal("cancelled event fired") })
	tm2, _ := s.Reschedule(tm, Time(2*Second))
	s.Cancel(tm) // stale handle: must not touch the rescheduled event
	if !tm2.Pending() {
		t.Fatal("stale Cancel hit the rescheduled event")
	}
	s.Cancel(tm2)
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after cancel", s.Pending())
	}
	s.Run()
}

// Reschedule must work across every residency combination: heap→wheel,
// wheel→heap, wheel→wheel (same and different slots), and the result must
// fire exactly like a freshly scheduled event. The far times sit beyond
// the level-1 horizon (heap residents); the near times inside level 0.
func TestSchedulerRescheduleResidency(t *testing.T) {
	const far = Duration(10 * Second)
	moves := [][2]Duration{
		{far, Millisecond},              // heap → wheel
		{Millisecond, far},              // wheel → heap
		{Millisecond, 2 * Millisecond},  // wheel → wheel
		{far, far + Second},             // heap → heap
		{20 * Millisecond, 40 * Second}, // level 1 → heap
	}
	for _, mv := range moves {
		s := NewScheduler()
		fired := Time(0)
		tm := s.After(mv[0], func() { fired = s.Now() })
		if _, ok := s.Reschedule(tm, Time(mv[1])); !ok {
			t.Fatalf("reschedule %v→%v failed", mv[0], mv[1])
		}
		s.Run()
		if fired != Time(mv[1]) {
			t.Fatalf("moved %v→%v: fired at %v", mv[0], mv[1], fired)
		}
		if s.Fired() != 1 {
			t.Fatalf("moved %v→%v: fired %d events", mv[0], mv[1], s.Fired())
		}
	}
}

// Property: a run that re-times timers with Reschedule is indistinguishable
// from one that cancels and re-schedules — same fire times, same order,
// same Pending accounting.
func TestSchedulerRescheduleEquivalence(t *testing.T) {
	run := func(seed int64, useReschedule bool) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var fired []Time
		note := func() { fired = append(fired, s.Now()) }
		timers := make([]Timer, 40)
		for i := range timers {
			timers[i] = s.After(Duration(rng.Int63n(int64(50*Millisecond)))+1, note)
		}
		for i := 0; i < 200; i++ {
			k := rng.Intn(len(timers))
			at := s.Now().Add(Duration(rng.Int63n(int64(50 * Millisecond))))
			if useReschedule {
				if tm, ok := s.Reschedule(timers[k], at); ok {
					timers[k] = tm
				} else {
					timers[k] = s.At(at, note)
				}
			} else {
				if timers[k].Pending() {
					s.Cancel(timers[k])
				}
				timers[k] = s.At(at, note)
			}
			// Let some events fire between moves.
			if i%5 == 0 {
				s.Step()
			}
		}
		s.Run()
		return fired
	}
	f := func(seed int64) bool {
		a := run(seed, true)
		b := run(seed, false)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerRearmChain(t *testing.T) {
	s := NewScheduler()
	var times []Time
	n := 0
	var tm Timer
	tick := func() {
		times = append(times, s.Now())
		if n++; n < 5 {
			tm = s.Rearm(s.Now().Add(Millisecond))
		}
	}
	tm = s.After(Millisecond, tick)
	s.Run()
	if len(times) != 5 {
		t.Fatalf("chain fired %d times, want 5", len(times))
	}
	for i, at := range times {
		if at != Time(Duration(i+1)*Millisecond) {
			t.Fatalf("fire %d at %v", i, at)
		}
	}
	if s.Fired() != 5 || s.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", s.Fired(), s.Pending())
	}
	if tm.Pending() {
		t.Fatal("finished chain still pending")
	}
}

// A rearmed chain keeps its argument, interleaves correctly with other
// events, and the returned handle cancels the chain.
func TestSchedulerRearmArgAndCancel(t *testing.T) {
	s := NewScheduler()
	var got []int
	var tm Timer
	fn := func(a any) {
		got = append(got, a.(int))
		tm = s.Rearm(s.Now().Add(Second))
	}
	tm = s.AfterArg(Second, fn, 7)
	other := 0
	s.After(2500*Millisecond, func() { other = len(got) })
	s.RunUntil(Time(3 * Second))
	if len(got) != 3 || got[0] != 7 || got[2] != 7 {
		t.Fatalf("got = %v", got)
	}
	if other != 2 {
		t.Fatalf("interleaved event saw %d chain fires, want 2", other)
	}
	s.Cancel(tm)
	s.Run()
	if len(got) != 3 {
		t.Fatalf("cancelled chain kept firing: %v", got)
	}
}

// During a callback the firing timer's own handle is already inert —
// Pending reports false, Cancel is a no-op — whether or not the callback
// goes on to Rearm.
func TestSchedulerRearmHandleInertDuringFire(t *testing.T) {
	s := NewScheduler()
	var tm Timer
	rearmed := false
	tm = s.After(Second, func() {
		if tm.Pending() {
			t.Error("handle pending during its own callback")
		}
		s.Cancel(tm) // must not disturb the upcoming Rearm
		if !rearmed {
			rearmed = true
			tm = s.Rearm(s.Now().Add(Second))
		}
	})
	s.Run()
	if !rearmed || s.Fired() != 2 {
		t.Fatalf("rearmed=%v fired=%d", rearmed, s.Fired())
	}
}

func TestSchedulerRearmOutsideCallbackPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("Rearm outside a callback did not panic")
		}
	}()
	s.Rearm(Time(Second))
}

// A rearm chain is the zero-allocation path: after warmup, N chained
// firings touch neither the allocator nor the freelist.
func TestSchedulerRearmAllocFree(t *testing.T) {
	s := NewScheduler()
	n := 0
	tick := func() {
		if n++; n < 1000 {
			s.Rearm(s.Now().Add(Millisecond))
		}
	}
	s.After(Millisecond, tick)
	s.Run()
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		s.After(Millisecond, tick)
		s.Run()
	})
	if allocs > 1 { // tolerance for the testing harness itself
		t.Fatalf("rearm chain allocated %.1f times per op", allocs)
	}
}

// Reset with a live rearm chain pending must recycle it like any other
// event and leave the scheduler bit-identical to a fresh one.
func TestSchedulerRearmThenReset(t *testing.T) {
	s := NewScheduler()
	s.After(Millisecond, func() { s.Rearm(s.Now().Add(Millisecond)) })
	for i := 0; i < 10; i++ {
		s.Step()
	}
	s.Reset()
	if s.Pending() != 0 || s.Now() != 0 || s.Fired() != 0 {
		t.Fatalf("reset left pending=%d now=%v fired=%d", s.Pending(), s.Now(), s.Fired())
	}
	ran := false
	s.After(Millisecond, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("scheduler dead after reset")
	}
}
