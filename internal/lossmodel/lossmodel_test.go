package lossmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBernoulli(0.1, rng)
	seq := Generate(b, 100000)
	rate := LossRate(seq)
	if rate < 0.09 || rate > 0.11 {
		t.Fatalf("bernoulli rate = %v, want ≈0.1", rate)
	}
}

func TestBernoulliEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	never := NewBernoulli(0, rng)
	for i := 0; i < 1000; i++ {
		if never.Lost() {
			t.Fatal("p=0 lost a packet")
		}
	}
	always := NewBernoulli(1, rng)
	for i := 0; i < 1000; i++ {
		if !always.Lost() {
			t.Fatal("p=1 passed a packet")
		}
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBernoulli(-0.1, rand.New(rand.NewSource(1))) },
		func() { NewBernoulli(1.1, rand.New(rand.NewSource(1))) },
		func() { NewBernoulli(0.5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestGEParamsDerived(t *testing.T) {
	p := GEParams{PGB: 0.01, PBG: 0.99, KGood: 0, KBad: 1}
	sb := p.StationaryBad()
	if !approx(sb, 0.01, 1e-9) {
		t.Fatalf("stationary bad = %v", sb)
	}
	if !approx(p.MeanLossRate(), sb, 1e-12) {
		t.Fatalf("mean loss rate = %v", p.MeanLossRate())
	}
	if !approx(p.MeanBurstLen(), 1/0.99, 1e-12) {
		t.Fatalf("mean burst = %v", p.MeanBurstLen())
	}
	frozen := GEParams{}
	if frozen.StationaryBad() != 0 || frozen.MeanBurstLen() != 0 {
		t.Fatal("frozen chain should report zeros")
	}
}

func TestGEParamsValidate(t *testing.T) {
	if err := (GEParams{PGB: 0.5, PBG: 0.5, KBad: 1}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []GEParams{
		{PGB: -0.1}, {PBG: 2}, {KGood: -1}, {KBad: 1.5},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("invalid params accepted: %+v", p)
		}
	}
}

func TestGilbertElliottLongRunLossRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	params := GEParams{PGB: 0.005, PBG: 0.2, KGood: 0.0, KBad: 0.8}
	ge := NewGilbertElliott(params, rng)
	seq := Generate(ge, 500000)
	got := LossRate(seq)
	want := params.MeanLossRate()
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("GE loss rate = %v, want ≈ %v", got, want)
	}
}

func TestGilbertElliottBurstier(t *testing.T) {
	// Same mean loss rate, GE vs Bernoulli: GE must have longer bursts.
	params := GEParams{PGB: 0.002, PBG: 0.1, KGood: 0, KBad: 1}
	rate := params.MeanLossRate()

	geSeq := Generate(NewGilbertElliott(params, rand.New(rand.NewSource(4))), 300000)
	berSeq := Generate(NewBernoulli(rate, rand.New(rand.NewSource(5))), 300000)

	geBursts := BurstLengths(geSeq)
	berBursts := BurstLengths(berSeq)
	if len(geBursts) == 0 || len(berBursts) == 0 {
		t.Fatal("no bursts generated")
	}
	geMean := meanInts(geBursts)
	berMean := meanInts(berBursts)
	if geMean < 3*berMean {
		t.Fatalf("GE bursts (%v) not much longer than Bernoulli (%v)", geMean, berMean)
	}
}

func TestGilbertElliottStateMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Deterministic chain: always flips state, loses iff Bad.
	ge := NewGilbertElliott(GEParams{PGB: 1, PBG: 1, KGood: 0, KBad: 1}, rng)
	if ge.State() != Good {
		t.Fatal("chain must start Good")
	}
	// Transition-then-emit: first packet transitions Good->Bad, so lost.
	seq := Generate(ge, 6)
	want := []bool{true, false, true, false, true, false}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("alternating chain seq = %v", seq)
		}
	}
}

func TestGEStateString(t *testing.T) {
	if Good.String() != "good" || Bad.String() != "bad" {
		t.Fatal("state strings wrong")
	}
}

func TestGilbertElliottPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGilbertElliott(GEParams{PGB: 2}, rand.New(rand.NewSource(1))) },
		func() { NewGilbertElliott(GEParams{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestBurstLengths(t *testing.T) {
	seq := []bool{true, true, false, true, false, false, true, true, true}
	got := BurstLengths(seq)
	want := []int{2, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("bursts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bursts = %v, want %v", got, want)
		}
	}
	if BurstLengths(nil) != nil {
		t.Fatal("empty sequence should have nil bursts")
	}
	if BurstLengths([]bool{false, false}) != nil {
		t.Fatal("lossless sequence should have nil bursts")
	}
}

func TestLossRateEmpty(t *testing.T) {
	if LossRate(nil) != 0 {
		t.Fatal("empty loss rate != 0")
	}
}

func TestFitGilbertRecoversParameters(t *testing.T) {
	params := GEParams{PGB: 0.01, PBG: 0.25, KGood: 0, KBad: 1}
	rng := rand.New(rand.NewSource(7))
	seq := Generate(NewGilbertElliott(params, rng), 400000)
	got, err := FitGilbert(seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.PBG-params.PBG)/params.PBG > 0.15 {
		t.Fatalf("fitted PBG = %v, want ≈ %v", got.PBG, params.PBG)
	}
	if math.Abs(got.PGB-params.PGB)/params.PGB > 0.15 {
		t.Fatalf("fitted PGB = %v, want ≈ %v", got.PGB, params.PGB)
	}
}

func TestFitGilbertErrors(t *testing.T) {
	if _, err := FitGilbert([]bool{false, false}); err == nil {
		t.Fatal("fit with no losses should fail")
	}
	if _, err := FitGilbert([]bool{true, true}); err == nil {
		t.Fatal("fit with no gaps should fail")
	}
}

// Property: burst lengths always sum to the number of losses, and every
// burst is positive.
func TestBurstLengthsProperty(t *testing.T) {
	f := func(seq []bool) bool {
		bursts := BurstLengths(seq)
		sum, losses := 0, 0
		for _, b := range bursts {
			if b <= 0 {
				return false
			}
			sum += b
		}
		for _, l := range seq {
			if l {
				losses++
			}
		}
		return sum == losses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated sequences are reproducible for a fixed seed.
func TestGEDeterminism(t *testing.T) {
	gen := func(seed int64) []bool {
		return Generate(NewGilbertElliott(GEParams{PGB: 0.01, PBG: 0.3, KBad: 0.9},
			rand.New(rand.NewSource(seed))), 10000)
	}
	a, b := gen(11), gen(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

// TestGilbertBurstLengthDistribution pins the simple-Gilbert (KBad=1,
// KGood=0) burst-length law to its analytic form: with every Bad packet
// lost, an observed loss burst is exactly one Bad-state dwell, which is
// geometric with parameter PBG — mean 1/PBG and tail
// P(len > k) = (1-PBG)^k. This is the property the netsim wire-dropper
// inherits, and what makes the link-layer losses sub-RTT-clustered.
func TestGilbertBurstLengthDistribution(t *testing.T) {
	params := GEParams{PGB: 0.002, PBG: 0.2, KGood: 0, KBad: 1}
	seq := Generate(NewGilbertElliott(params, rand.New(rand.NewSource(9))), 2_000_000)
	bursts := BurstLengths(seq)
	if len(bursts) < 1000 {
		t.Fatalf("only %d bursts; not enough samples", len(bursts))
	}

	got := meanInts(bursts)
	want := params.MeanBurstLen() // 1/PBG = 5
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean burst length = %v, want ≈ %v (1/PBG)", got, want)
	}

	// Geometric tail: the survival fraction at k must match (1-PBG)^k.
	for _, k := range []int{1, 2, 5, 10} {
		over := 0
		for _, b := range bursts {
			if b > k {
				over++
			}
		}
		gotTail := float64(over) / float64(len(bursts))
		wantTail := math.Pow(1-params.PBG, float64(k))
		if math.Abs(gotTail-wantTail) > 0.02 {
			t.Fatalf("P(burst > %d) = %v, want ≈ %v", k, gotTail, wantTail)
		}
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
