// Package lossmodel implements the stochastic loss processes used by the
// PlanetLab-style Internet path model and by the analysis layer: Bernoulli
// (independent) loss, the two-state Gilbert–Elliott Markov chain, and
// maximum-likelihood fitting of GE parameters from an observed binary loss
// sequence. The paper's Internet measurements show loss clustering well
// beyond what independent loss can produce; GE is the standard minimal
// model of such clustering.
package lossmodel

import (
	"fmt"
	"math/rand"
)

// Process decides, packet by packet, whether a transmission is lost. All
// implementations are deterministic given their seeded *rand.Rand.
type Process interface {
	// Lost reports whether the next packet is lost, advancing the process.
	Lost() bool
}

// Bernoulli loses each packet independently with probability P.
type Bernoulli struct {
	P   float64
	rng *rand.Rand
}

// NewBernoulli builds an independent-loss process.
func NewBernoulli(p float64, rng *rand.Rand) *Bernoulli {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("lossmodel: bernoulli p=%v outside [0,1]", p))
	}
	if rng == nil {
		panic("lossmodel: nil rng")
	}
	return &Bernoulli{P: p, rng: rng}
}

// Lost implements Process.
func (b *Bernoulli) Lost() bool { return b.rng.Float64() < b.P }

// GEState is a Gilbert–Elliott chain state.
type GEState uint8

// The two chain states.
const (
	Good GEState = iota
	Bad
)

func (s GEState) String() string {
	if s == Good {
		return "good"
	}
	return "bad"
}

// GilbertElliott is the classic two-state Markov loss model: a Good state
// with loss probability KGood (usually ≈0) and a Bad state with loss
// probability KBad (high). PGB is the per-packet probability of moving
// Good→Bad; PBG of moving Bad→Good. Mean bad-burst length is 1/PBG packets,
// which — relative to how many packets cross the path per RTT — controls
// exactly the sub-RTT clustering the paper measures.
type GilbertElliott struct {
	PGB, PBG    float64
	KGood, KBad float64

	state GEState
	rng   *rand.Rand
}

// GEParams bundles the four chain parameters.
type GEParams struct {
	PGB, PBG, KGood, KBad float64
}

// Validate checks all probabilities are in [0,1] and the chain can move.
func (p GEParams) Validate() error {
	for name, v := range map[string]float64{
		"PGB": p.PGB, "PBG": p.PBG, "KGood": p.KGood, "KBad": p.KBad,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("lossmodel: %s=%v outside [0,1]", name, v)
		}
	}
	return nil
}

// StationaryBad returns the stationary probability of the Bad state,
// PGB/(PGB+PBG). A frozen chain (both transition probabilities zero)
// reports 0.
func (p GEParams) StationaryBad() float64 {
	den := p.PGB + p.PBG
	if den == 0 {
		return 0
	}
	return p.PGB / den
}

// MeanLossRate returns the long-run per-packet loss probability of the
// chain.
func (p GEParams) MeanLossRate() float64 {
	pb := p.StationaryBad()
	return pb*p.KBad + (1-pb)*p.KGood
}

// MeanBurstLen returns the mean Bad-state dwell time in packets (1/PBG).
func (p GEParams) MeanBurstLen() float64 {
	if p.PBG == 0 {
		return 0
	}
	return 1 / p.PBG
}

// NewGilbertElliott builds the chain starting in the Good state.
func NewGilbertElliott(params GEParams, rng *rand.Rand) *GilbertElliott {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("lossmodel: nil rng")
	}
	return &GilbertElliott{
		PGB: params.PGB, PBG: params.PBG,
		KGood: params.KGood, KBad: params.KBad,
		state: Good, rng: rng,
	}
}

// State exposes the current chain state (for tests and instrumentation).
func (g *GilbertElliott) State() GEState { return g.state }

// Reset rewinds the chain to the Good state, retakes the parameters and
// reseeds its random stream in place, making the process bit-identical to
// NewGilbertElliott(params, rand.New(rand.NewSource(seed))) without
// reallocating — the hook world-reset paths use to rewind link loss.
func (g *GilbertElliott) Reset(params GEParams, seed int64) {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	g.PGB, g.PBG = params.PGB, params.PBG
	g.KGood, g.KBad = params.KGood, params.KBad
	g.state = Good
	g.rng.Seed(seed)
}

// Lost implements Process: advance the chain one packet and report loss.
func (g *GilbertElliott) Lost() bool {
	// Transition first, then emit according to the new state. (Emitting
	// before transitioning is the other common convention; either works as
	// long as fitting uses the same one. We transition first.)
	switch g.state {
	case Good:
		if g.rng.Float64() < g.PGB {
			g.state = Bad
		}
	case Bad:
		if g.rng.Float64() < g.PBG {
			g.state = Good
		}
	}
	k := g.KGood
	if g.state == Bad {
		k = g.KBad
	}
	return g.rng.Float64() < k
}

// Params returns the chain's parameters.
func (g *GilbertElliott) Params() GEParams {
	return GEParams{PGB: g.PGB, PBG: g.PBG, KGood: g.KGood, KBad: g.KBad}
}

// Generate runs the process for n packets and returns the loss indicator
// sequence (true = lost).
func Generate(p Process, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = p.Lost()
	}
	return out
}

// BurstLengths extracts the lengths of consecutive-loss runs from a loss
// indicator sequence. Independent loss yields geometric lengths with mean
// 1/(1-p); GE with a sticky Bad state yields much longer runs.
func BurstLengths(losses []bool) []int {
	var out []int
	run := 0
	for _, l := range losses {
		if l {
			run++
		} else if run > 0 {
			out = append(out, run)
			run = 0
		}
	}
	if run > 0 {
		out = append(out, run)
	}
	return out
}

// LossRate reports the fraction of lost packets in a sequence.
func LossRate(losses []bool) float64 {
	if len(losses) == 0 {
		return 0
	}
	n := 0
	for _, l := range losses {
		if l {
			n++
		}
	}
	return float64(n) / float64(len(losses))
}

// FitGilbert estimates simple-Gilbert parameters (KGood=0, KBad=1: every
// Bad packet lost, no Good losses) from a binary loss sequence, using the
// run-length method: PBG = 1/mean(burst length), PGB = 1/mean(gap length).
// This is the standard estimator used when analyzing probe traces; it is
// exact for the simple Gilbert model and a good approximation otherwise.
// It returns an error when the sequence contains no losses or no gaps.
func FitGilbert(losses []bool) (GEParams, error) {
	bursts := BurstLengths(losses)
	if len(bursts) == 0 {
		return GEParams{}, fmt.Errorf("lossmodel: no losses to fit")
	}
	// Gap lengths: runs of successes between losses.
	inverted := make([]bool, len(losses))
	for i, l := range losses {
		inverted[i] = !l
	}
	gaps := BurstLengths(inverted)
	if len(gaps) == 0 {
		return GEParams{}, fmt.Errorf("lossmodel: no gaps to fit")
	}
	meanBurst := meanInts(bursts)
	meanGap := meanInts(gaps)
	p := GEParams{PGB: 1 / meanGap, PBG: 1 / meanBurst, KGood: 0, KBad: 1}
	return p, nil
}

func meanInts(xs []int) float64 {
	var s int
	for _, x := range xs {
		s += x
	}
	return float64(s) / float64(len(xs))
}
