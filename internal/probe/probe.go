// Package probe implements the paper's Internet measurement instrument: a
// constant-bit-rate prober that sends fixed-size packets over a path,
// infers losses from gaps in the received sequence numbers (exact for a
// deterministic CBR schedule), and validates each measurement by running
// twice — once with 48-byte and once with 400-byte packets — accepting the
// measurement only when the two traces exhibit similar loss patterns
// (the paper's §3.1 protocol).
package probe

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/planetlab"
	"repro/internal/ratectl"
	"repro/internal/sim"
)

// RunConfig parameterizes one probing run.
type RunConfig struct {
	Flow     int
	PktSize  int          // bytes (the paper used 48 and 400)
	Interval sim.Duration // inter-probe gap (default 1 ms)
	Duration sim.Duration // measurement length (default 5 min, like the paper)

	// Pool, when set, recycles probe packets through the world's freelist:
	// the CBR source draws from it, the path channel returns dropped
	// probes, and the receive collector returns delivered ones. A 5-minute
	// run sends ~300k probes, so this is what makes a probing world
	// allocation-free in steady state. Nil keeps the allocating behavior.
	Pool *netsim.PacketPool
}

func (c *RunConfig) fillDefaults() {
	if c.PktSize == 0 {
		c.PktSize = 48
	}
	if c.Interval == 0 {
		c.Interval = sim.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 5 * 60 * sim.Second
	}
}

// Result is the outcome of one probing run.
type Result struct {
	PktSize  int
	Interval sim.Duration
	Sent     int64
	Received int64

	// LossSendTimes are the (exactly reconstructed) send times of the lost
	// probes, in order. With a CBR schedule the send time of missing seq k
	// is start + k·interval.
	LossSendTimes []sim.Time

	// PathRTT is carried through for RTT normalization in analysis.
	PathRTT sim.Duration
}

// LossRate reports the fraction of probes lost.
func (r Result) LossRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Sent-r.Received) / float64(r.Sent)
}

// Intervals returns inter-loss gaps.
func (r Result) Intervals() []sim.Duration {
	if len(r.LossSendTimes) < 2 {
		return nil
	}
	out := make([]sim.Duration, 0, len(r.LossSendTimes)-1)
	for i := 1; i < len(r.LossSendTimes); i++ {
		out = append(out, r.LossSendTimes[i].Sub(r.LossSendTimes[i-1]))
	}
	return out
}

// BackToBackFraction reports the fraction of inter-loss gaps equal to the
// probe interval — the prober's view of loss clustering.
func (r Result) BackToBackFraction() float64 {
	iv := r.Intervals()
	if len(iv) == 0 {
		return 0
	}
	n := 0
	for _, d := range iv {
		if d <= r.Interval {
			n++
		}
	}
	return float64(n) / float64(len(iv))
}

// Run probes the given path once. The path process continues from wherever
// it is (the paper's two validation runs sample the same path at different
// times). The scheduler is advanced past the run.
func Run(sched *sim.Scheduler, path *planetlab.Path, cfg RunConfig) Result {
	if sched == nil || path == nil {
		panic("probe: Run requires scheduler and path")
	}
	cfg.fillDefaults()

	// CBR sequence numbers are dense from zero, so a grow-on-demand slice
	// replaces the per-probe map the seed used (a 5-minute run inserted
	// ~300k map entries); the collector also terminates each delivered
	// probe's life by recycling it.
	var received []bool
	collector := netsim.HandlerFunc(func(p *netsim.Packet) {
		for int(p.Seq) >= len(received) {
			received = append(received, false)
		}
		received[p.Seq] = true
		cfg.Pool.Put(p)
	})
	ch := planetlab.NewChannel(sched, path, collector)
	ch.Pool = cfg.Pool

	start := sched.Now()
	cbr := ratectl.NewCBR(sched, ch, ratectl.CBRConfig{
		Flow:    cfg.Flow,
		PktSize: cfg.PktSize,
		// Rate such that the packet interval equals cfg.Interval.
		Rate:     int64(cfg.PktSize) * 8 * int64(sim.Second) / int64(cfg.Interval),
		Duration: cfg.Duration,
		Pool:     cfg.Pool,
	})
	cbr.Start()
	// Drain in-flight deliveries after the last probe.
	sched.RunUntil(start.Add(cfg.Duration + path.Params.RTT + sim.Second))
	cbr.Stop()

	res := Result{
		PktSize:  cfg.PktSize,
		Interval: cbr.Interval(),
		Sent:     cbr.Seq(),
		PathRTT:  path.Params.RTT,
	}
	for seq := int64(0); seq < res.Sent; seq++ {
		if int(seq) < len(received) && received[seq] {
			res.Received++
		} else {
			res.LossSendTimes = append(res.LossSendTimes,
				start.Add(sim.Duration(seq)*cbr.Interval()))
		}
	}
	return res
}

// ValidationError describes why a dual-run measurement was rejected.
type ValidationError struct {
	Reason string
	A, B   Result
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("probe: validation failed: %s (A: p=%.4f b2b=%.2f, B: p=%.4f b2b=%.2f)",
		e.Reason, e.A.LossRate(), e.A.BackToBackFraction(),
		e.B.LossRate(), e.B.BackToBackFraction())
}

// Validate applies the paper's acceptance test: the two runs must exhibit
// similar loss patterns. We require loss rates within a factor of 3 of
// each other (or both tiny) and back-to-back fractions within 0.35
// absolute. (The paper does not publish its thresholds; these are chosen
// to reject pathological asymmetry while tolerating sampling noise over
// 5-minute runs.)
func Validate(a, b Result) error {
	pa, pb := a.LossRate(), b.LossRate()
	const tiny = 1e-4
	if pa < tiny && pb < tiny {
		return nil // both effectively lossless: nothing to compare
	}
	lo, hi := pa, pb
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi/lo > 3 {
		return &ValidationError{Reason: "loss rates dissimilar", A: a, B: b}
	}
	da := a.BackToBackFraction() - b.BackToBackFraction()
	if da < 0 {
		da = -da
	}
	if da > 0.35 {
		return &ValidationError{Reason: "burstiness dissimilar", A: a, B: b}
	}
	return nil
}

// Measurement is a validated dual-run measurement of one path.
type Measurement struct {
	Small, Large Result
	Valid        bool
}

// MeasurePath runs the full paper protocol on a path: a 48-byte run
// followed by a 400-byte run, then validation. Both runs use the same
// probe interval and duration from cfg (PktSize is overridden).
func MeasurePath(sched *sim.Scheduler, path *planetlab.Path, cfg RunConfig) Measurement {
	small := cfg
	small.PktSize = 48
	a := Run(sched, path, small)
	large := cfg
	large.PktSize = 400
	large.Flow = cfg.Flow + 1
	b := Run(sched, path, large)
	return Measurement{Small: a, Large: b, Valid: Validate(a, b) == nil}
}
