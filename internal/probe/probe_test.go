package probe

import (
	"strings"
	"testing"

	"repro/internal/planetlab"
	"repro/internal/sim"
)

func losslessPath() *planetlab.Path {
	return planetlab.NewPath(planetlab.PathParams{
		RTT: 50 * sim.Millisecond,
	}, sim.NewRand(1))
}

func burstyPath(seed int64) *planetlab.Path {
	return planetlab.NewPath(planetlab.PathParams{
		RTT:           100 * sim.Millisecond,
		EpisodeRate:   1.0,
		MeanEpisode:   15 * sim.Millisecond,
		LossInEpisode: 0.9,
		Background:    1e-4,
	}, sim.NewRand(seed))
}

func TestRunLosslessPath(t *testing.T) {
	s := sim.NewScheduler()
	res := Run(s, losslessPath(), RunConfig{Flow: 1, Duration: 10 * sim.Second})
	if res.Sent == 0 || res.Received != res.Sent {
		t.Fatalf("sent=%d received=%d", res.Sent, res.Received)
	}
	if res.LossRate() != 0 || len(res.LossSendTimes) != 0 {
		t.Fatal("losses on a lossless path")
	}
	if res.Intervals() != nil || res.BackToBackFraction() != 0 {
		t.Fatal("interval stats on lossless path")
	}
	// 10 s at 1 ms default interval ⇒ ~10,000 probes.
	if res.Sent < 9990 || res.Sent > 10010 {
		t.Fatalf("sent = %d, want ≈10000", res.Sent)
	}
}

func TestRunDetectsBurstyLosses(t *testing.T) {
	s := sim.NewScheduler()
	res := Run(s, burstyPath(2), RunConfig{Flow: 1, Duration: 60 * sim.Second})
	if len(res.LossSendTimes) < 50 {
		t.Fatalf("only %d losses detected", len(res.LossSendTimes))
	}
	if res.LossRate() <= 0 || res.LossRate() > 0.2 {
		t.Fatalf("loss rate = %v", res.LossRate())
	}
	// Clustering: a large share of gaps at the probe interval.
	if res.BackToBackFraction() < 0.4 {
		t.Fatalf("back-to-back fraction = %v; episodes should cluster losses",
			res.BackToBackFraction())
	}
	// Loss send times are on the CBR grid and increasing.
	for i, ts := range res.LossSendTimes {
		if int64(ts)%int64(res.Interval) != 0 {
			t.Fatalf("loss %d at off-grid time %v", i, ts)
		}
		if i > 0 && ts <= res.LossSendTimes[i-1] {
			t.Fatal("loss times not increasing")
		}
	}
}

func TestRunSequentialRunsAdvanceTime(t *testing.T) {
	s := sim.NewScheduler()
	p := losslessPath()
	Run(s, p, RunConfig{Flow: 1, Duration: 5 * sim.Second})
	t0 := s.Now()
	Run(s, p, RunConfig{Flow: 2, Duration: 5 * sim.Second})
	if s.Now() <= t0 {
		t.Fatal("second run did not advance time")
	}
}

func TestValidateAcceptsSimilarRuns(t *testing.T) {
	s := sim.NewScheduler()
	p := burstyPath(3)
	m := MeasurePath(s, p, RunConfig{Flow: 1, Duration: 120 * sim.Second})
	if !m.Valid {
		t.Fatalf("similar dual runs rejected: A p=%v b2b=%v, B p=%v b2b=%v",
			m.Small.LossRate(), m.Small.BackToBackFraction(),
			m.Large.LossRate(), m.Large.BackToBackFraction())
	}
	if m.Small.PktSize != 48 || m.Large.PktSize != 400 {
		t.Fatalf("packet sizes: %d/%d", m.Small.PktSize, m.Large.PktSize)
	}
}

func TestValidateRejectsDissimilarLossRates(t *testing.T) {
	a := Result{Sent: 10000, Received: 9000, Interval: sim.Millisecond} // 10%
	b := Result{Sent: 10000, Received: 9990, Interval: sim.Millisecond} // 0.1%
	err := Validate(a, b)
	if err == nil {
		t.Fatal("dissimilar rates accepted")
	}
	if !strings.Contains(err.Error(), "loss rates dissimilar") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestValidateRejectsDissimilarBurstiness(t *testing.T) {
	// Same loss rate; A's losses back to back, B's spread out.
	mk := func(spread sim.Duration) Result {
		r := Result{Sent: 100000, Received: 99900, Interval: sim.Millisecond}
		for i := 0; i < 100; i++ {
			r.LossSendTimes = append(r.LossSendTimes,
				sim.Time(int64(i)*int64(spread)))
		}
		return r
	}
	a := mk(sim.Millisecond)       // all gaps = interval
	b := mk(500 * sim.Millisecond) // all gaps huge
	err := Validate(a, b)
	if err == nil {
		t.Fatal("dissimilar burstiness accepted")
	}
	if !strings.Contains(err.Error(), "burstiness") {
		t.Fatalf("wrong reason: %v", err)
	}
}

func TestValidateAcceptsBothLossless(t *testing.T) {
	a := Result{Sent: 10000, Received: 10000}
	b := Result{Sent: 10000, Received: 10000}
	if err := Validate(a, b); err != nil {
		t.Fatalf("lossless pair rejected: %v", err)
	}
}

func TestValidateZeroVsNonzero(t *testing.T) {
	a := Result{Sent: 10000, Received: 10000} // 0
	b := Result{Sent: 10000, Received: 9000}  // 10%
	if err := Validate(a, b); err == nil {
		t.Fatal("zero-vs-10% accepted")
	}
}

func TestResultLossRateEmpty(t *testing.T) {
	if (Result{}).LossRate() != 0 {
		t.Fatal("empty result loss rate")
	}
}

func TestRunValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(nil, nil, RunConfig{})
}
