package crosstraffic

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestOnOffAverageRate(t *testing.T) {
	s := sim.NewScheduler()
	var bits int64
	out := netsim.HandlerFunc(func(p *netsim.Packet) { bits += int64(p.Size) * 8 })
	cfg := OnOffConfig{
		Flow: 1, Src: 1, Dst: 2, PktSize: 500,
		PeakRate: 1_000_000,
		MeanOn:   100 * sim.Millisecond,
		MeanOff:  100 * sim.Millisecond,
	}
	if cfg.AvgRate() != 500_000 {
		t.Fatalf("AvgRate = %v", cfg.AvgRate())
	}
	o := NewOnOff(s, out, cfg, sim.NewRand(1))
	o.Start()
	const seconds = 200
	s.RunUntil(sim.Time(seconds * sim.Second))
	o.Stop()
	got := float64(bits) / seconds
	if got < 0.85*cfg.AvgRate() || got > 1.15*cfg.AvgRate() {
		t.Fatalf("measured rate %v, want ≈ %v", got, cfg.AvgRate())
	}
}

func TestOnOffBurstsAtPeakRate(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	out := netsim.HandlerFunc(func(p *netsim.Packet) { times = append(times, s.Now()) })
	o := NewOnOff(s, out, OnOffConfig{
		Flow: 1, Src: 1, Dst: 2, PktSize: 500,
		PeakRate: 4_000_000, // 1 ms per packet
		MeanOn:   50 * sim.Millisecond,
		MeanOff:  50 * sim.Millisecond,
	}, sim.NewRand(2))
	o.Start()
	s.RunUntil(sim.Time(10 * sim.Second))
	o.Stop()
	if len(times) < 100 {
		t.Fatalf("only %d packets", len(times))
	}
	// Within a burst the spacing must equal the peak-rate interval (1 ms);
	// across bursts it is larger. Count both kinds.
	inBurst, gaps := 0, 0
	for i := 1; i < len(times); i++ {
		d := times[i].Sub(times[i-1])
		if d == sim.Millisecond {
			inBurst++
		} else if d > 2*sim.Millisecond {
			gaps++
		}
	}
	if inBurst == 0 {
		t.Fatal("no back-to-back peak-rate packets")
	}
	if gaps == 0 {
		t.Fatal("no off periods observed")
	}
}

func TestOnOffStopCancels(t *testing.T) {
	s := sim.NewScheduler()
	n := 0
	out := netsim.HandlerFunc(func(p *netsim.Packet) { n++ })
	o := NewOnOff(s, out, OnOffConfig{
		Flow: 1, Src: 1, Dst: 2, PeakRate: 1_000_000,
		MeanOn: 10 * sim.Millisecond, MeanOff: 10 * sim.Millisecond,
	}, sim.NewRand(3))
	o.Start()
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	o.Stop()
	at := n
	s.RunUntil(sim.Time(1 * sim.Second))
	if n != at {
		t.Fatal("packets sent after Stop")
	}
	if s.Pending() != 0 {
		t.Fatalf("timers leaked: %d", s.Pending())
	}
}

func TestNoiseSetAggregateRate(t *testing.T) {
	s := sim.NewScheduler()
	var bits int64
	out := netsim.HandlerFunc(func(p *netsim.Packet) { bits += int64(p.Size) * 8 })
	const capacity = 100_000_000
	set := NoiseSet(s, out, 50, capacity, 0.10, 5000, 1, 2, 42, nil)
	if len(set) != 50 {
		t.Fatalf("set size %d", len(set))
	}
	for _, o := range set {
		o.Start()
	}
	const seconds = 50
	s.RunUntil(sim.Time(seconds * sim.Second))
	for _, o := range set {
		o.Stop()
	}
	got := float64(bits) / seconds
	want := 0.10 * capacity
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("aggregate noise %v bps, want ≈ %v", got, want)
	}
}

func TestNoiseSetDistinctFlows(t *testing.T) {
	s := sim.NewScheduler()
	out := netsim.HandlerFunc(func(p *netsim.Packet) {})
	set := NoiseSet(s, out, 10, 1_000_000, 0.1, 700, 1, 2, 7, nil)
	seen := map[int]bool{}
	for _, o := range set {
		if seen[o.cfg.Flow] {
			t.Fatal("duplicate flow id")
		}
		seen[o.cfg.Flow] = true
	}
	if !seen[700] || !seen[709] {
		t.Fatal("flow numbering wrong")
	}
}

func TestOnOffValidation(t *testing.T) {
	s := sim.NewScheduler()
	out := netsim.HandlerFunc(func(p *netsim.Packet) {})
	rng := sim.NewRand(1)
	for _, f := range []func(){
		func() { NewOnOff(nil, out, OnOffConfig{PeakRate: 1, MeanOn: 1}, rng) },
		func() { NewOnOff(s, out, OnOffConfig{PeakRate: 0, MeanOn: 1}, rng) },
		func() { NewOnOff(s, out, OnOffConfig{PeakRate: 1, MeanOn: 0}, rng) },
		func() { NewOnOff(s, out, OnOffConfig{PeakRate: 1, MeanOn: 1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
