// Package crosstraffic provides the background noise sources the paper's
// simulations use: two-way exponential on–off UDP flows (50 of them,
// averaging 10% of the bottleneck capacity in the paper's setup). During
// an "on" period a source emits packets at its peak rate; on/off durations
// are exponentially distributed.
package crosstraffic

import (
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// OnOffConfig parameterizes one exponential on–off source.
type OnOffConfig struct {
	Flow     int
	Src      int
	Dst      int
	PktSize  int          // bytes (default 500)
	PeakRate int64        // bits/second while on
	MeanOn   sim.Duration // mean of the exponential on duration
	MeanOff  sim.Duration // mean of the exponential off duration

	// Pool, when set, supplies the emitted packets; the absorbing sink is
	// expected to recycle them (netsim.PacketPool.Sink). Nil allocates.
	Pool *netsim.PacketPool
}

// AvgRate reports the long-run average rate of the source in bits/second.
func (c OnOffConfig) AvgRate() float64 {
	on := c.MeanOn.Seconds()
	off := c.MeanOff.Seconds()
	if on+off == 0 {
		return 0
	}
	return float64(c.PeakRate) * on / (on + off)
}

// OnOff is one exponential on–off source.
type OnOff struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   OnOffConfig
	rng   *rand.Rand

	on       bool
	interval sim.Duration
	sendTmr  sim.Timer
	phaseTmr sim.Timer
	seq      int64
	pktID    uint64
	running  bool

	// Timer callbacks, created once: the send path of 50 noise sources
	// runs at aggregate packet rate and must not allocate per event.
	onSendFn, toOnFn, toOffFn func()

	// Sent counts emitted packets.
	Sent uint64
}

// NewOnOff builds a source. rng must be seeded by the caller.
func NewOnOff(sched *sim.Scheduler, out netsim.Handler, cfg OnOffConfig, rng *rand.Rand) *OnOff {
	if sched == nil || out == nil || rng == nil {
		panic("crosstraffic: NewOnOff requires scheduler, output and rng")
	}
	if cfg.PktSize == 0 {
		cfg.PktSize = 500
	}
	if cfg.PeakRate <= 0 || cfg.MeanOn <= 0 || cfg.MeanOff < 0 {
		panic("crosstraffic: need positive peak rate and mean on-duration")
	}
	interval := sim.Duration(int64(cfg.PktSize) * 8 * int64(sim.Second) / cfg.PeakRate)
	if interval <= 0 {
		interval = sim.Nanosecond
	}
	o := &OnOff{sched: sched, out: out, cfg: cfg, rng: rng, interval: interval}
	o.onSendFn = func() {
		o.sendTmr = sim.Timer{}
		o.emit()
	}
	o.toOnFn = func() {
		o.phaseTmr = sim.Timer{}
		o.enterOn()
	}
	o.toOffFn = func() {
		o.phaseTmr = sim.Timer{}
		o.enterOff()
	}
	return o
}

// Start begins the on/off cycle (starting in the off phase so sources with
// a shared seed don't all fire at t=0).
func (o *OnOff) Start() {
	if o.running {
		return
	}
	o.running = true
	o.enterOff()
}

// Stop halts the source.
func (o *OnOff) Stop() {
	o.running = false
	if o.sendTmr.Pending() {
		o.sched.Cancel(o.sendTmr)
		o.sendTmr = sim.Timer{}
	}
	if o.phaseTmr.Pending() {
		o.sched.Cancel(o.phaseTmr)
		o.phaseTmr = sim.Timer{}
	}
}

func (o *OnOff) enterOn() {
	if !o.running {
		return
	}
	o.on = true
	d := sim.Exponential(o.rng, o.cfg.MeanOn)
	o.phaseTmr = o.sched.After(d, o.toOffFn)
	o.emit()
}

func (o *OnOff) enterOff() {
	if !o.running {
		return
	}
	o.on = false
	if o.sendTmr.Pending() {
		o.sched.Cancel(o.sendTmr)
		o.sendTmr = sim.Timer{}
	}
	d := sim.Exponential(o.rng, o.cfg.MeanOff)
	o.phaseTmr = o.sched.After(d, o.toOnFn)
}

func (o *OnOff) emit() {
	if !o.running || !o.on {
		return
	}
	o.pktID++
	p := o.cfg.Pool.Get()
	p.ID = o.pktID
	p.Flow = o.cfg.Flow
	p.Kind = netsim.Data
	p.Size = o.cfg.PktSize
	p.Seq = o.seq
	p.Src = o.cfg.Src
	p.Dst = o.cfg.Dst
	p.SendTime = o.sched.Now()
	o.out.Handle(p)
	o.seq++
	o.Sent++
	o.sendTmr = o.sched.After(o.interval, o.onSendFn)
}

// NoiseSet builds the paper's standard noise ensemble: n on–off sources
// whose aggregate average rate is the given fraction of capacity, split
// evenly, with 50% duty cycle. Flows are numbered flowBase, flowBase+1, …
// and all send from src to dst addresses (packets are absorbed by the
// destination node's default handler). pool, when non-nil, supplies the
// packets; pair it with a recycling sink at the destination.
func NoiseSet(sched *sim.Scheduler, out netsim.Handler, n int, capacity int64,
	fraction float64, flowBase, src, dst int, seed int64, pool *netsim.PacketPool) []*OnOff {

	perFlowAvg := fraction * float64(capacity) / float64(n)
	peak := int64(2 * perFlowAvg) // 50% duty cycle
	if peak <= 0 {
		peak = 1
	}
	srcs := make([]*OnOff, n)
	for i := range srcs {
		rng := sim.NewRand(sim.SubSeed(seed, int64(i)))
		srcs[i] = NewOnOff(sched, out, OnOffConfig{
			Flow:     flowBase + i,
			Src:      src,
			Dst:      dst,
			PktSize:  500,
			PeakRate: peak,
			MeanOn:   500 * sim.Millisecond,
			MeanOff:  500 * sim.Millisecond,
			Pool:     pool,
		}, rng)
	}
	return srcs
}
