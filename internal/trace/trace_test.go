package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Len() != 0 || r.Intervals() != nil {
		t.Fatal("zero recorder not empty")
	}
	r.Add(LossEvent{At: sim.Time(1 * sim.Second), Flow: 1, Seq: 10, Size: 1000})
	r.Add(LossEvent{At: sim.Time(3 * sim.Second), Flow: 2, Seq: 20, Size: 1000})
	r.Add(LossEvent{At: sim.Time(4 * sim.Second), Flow: 1, Seq: 30, Size: 1000})
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	iv := r.Intervals()
	if len(iv) != 2 || iv[0] != 2*sim.Second || iv[1] != sim.Second {
		t.Fatalf("intervals = %v", iv)
	}
	ts := r.Times()
	if len(ts) != 3 || ts[0] != sim.Time(sim.Second) {
		t.Fatalf("times = %v", ts)
	}
	if !r.Sorted() {
		t.Fatal("sorted trace reported unsorted")
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestRecorderSinkModes covers the observer API: sink-without-retention
// forwards and counts but stores nothing; sink-with-retention tees; and
// clearing the sink restores the zero-value behavior.
func TestRecorderSinkModes(t *testing.T) {
	var r Recorder
	var seen []LossEvent
	r.SetSink(func(e LossEvent) { seen = append(seen, e) }, false)
	r.Add(LossEvent{At: 1, Flow: 1})
	r.Add(LossEvent{At: 2, Flow: 2})
	if r.Len() != 2 {
		t.Fatalf("sink mode Len = %d, want 2", r.Len())
	}
	if len(r.Events()) != 0 {
		t.Fatalf("sink mode retained %d events", len(r.Events()))
	}
	if len(seen) != 2 || seen[1].Flow != 2 {
		t.Fatalf("sink saw %v", seen)
	}

	r.Reset()
	seen = nil
	r.SetSink(func(e LossEvent) { seen = append(seen, e) }, true)
	r.Add(LossEvent{At: 3, Flow: 3})
	if r.Len() != 1 || len(r.Events()) != 1 || len(seen) != 1 {
		t.Fatalf("tee mode: len=%d retained=%d seen=%d", r.Len(), len(r.Events()), len(seen))
	}

	r.Reset()
	r.SetSink(nil, true)
	r.Add(LossEvent{At: 4})
	if r.Len() != 1 || len(r.Events()) != 1 {
		t.Fatal("cleared sink did not restore retain behavior")
	}
}

func TestRecorderSingleEventIntervals(t *testing.T) {
	var r Recorder
	r.Add(LossEvent{At: 5})
	if r.Intervals() != nil {
		t.Fatal("single event should have no intervals")
	}
}

func TestSortAndMerge(t *testing.T) {
	a := &Recorder{}
	a.Add(LossEvent{At: 30, Flow: 1})
	a.Add(LossEvent{At: 10, Flow: 1})
	if a.Sorted() {
		t.Fatal("unsorted trace reported sorted")
	}
	a.SortByTime()
	if !a.Sorted() {
		t.Fatal("sort failed")
	}

	b := &Recorder{}
	b.Add(LossEvent{At: 20, Flow: 2})
	m := Merge(a, b)
	if m.Len() != 3 || !m.Sorted() {
		t.Fatalf("merge: len=%d sorted=%v", m.Len(), m.Sorted())
	}
	if m.Events()[1].Flow != 2 {
		t.Fatal("merge order wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := &Recorder{}
	r.Add(LossEvent{At: sim.Time(123456789), Flow: 3, Seq: 42, Size: 1500})
	r.Add(LossEvent{At: sim.Time(223456789), Flow: 4, Seq: -1, Size: 48})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	for i, e := range got.Events() {
		if e != r.Events()[i] {
			t.Fatalf("event %d: %+v != %+v", i, e, r.Events()[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"no header":  "1,2,3,4\n",
		"bad at":     "at_ns,flow,seq,size\nxx,1,2,3\n",
		"bad flow":   "at_ns,flow,seq,size\n1,xx,2,3\n",
		"bad seq":    "at_ns,flow,seq,size\n1,2,xx,3\n",
		"bad size":   "at_ns,flow,seq,size\n1,2,3,xx\n",
		"wrong cols": "at_ns,flow,seq\n1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func TestCSVPropertyRoundTrip(t *testing.T) {
	f := func(ats []int64, flows []int16) bool {
		r := &Recorder{}
		for i, at := range ats {
			if at < 0 {
				at = -at
			}
			fl := 0
			if i < len(flows) {
				fl = int(flows[i])
			}
			r.Add(LossEvent{At: sim.Time(at), Flow: fl, Seq: int64(i), Size: i % 2000})
		}
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.Len() != r.Len() {
			return false
		}
		for i := range got.Events() {
			if got.Events()[i] != r.Events()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputSeries(t *testing.T) {
	ts := NewThroughputSeries(sim.Second)
	ts.Add(sim.Time(100*sim.Millisecond), 1_000_000)
	ts.Add(sim.Time(900*sim.Millisecond), 1_000_000)
	ts.Add(sim.Time(1500*sim.Millisecond), 4_000_000)
	mbps := ts.Mbps()
	if len(mbps) != 2 {
		t.Fatalf("bins = %d", len(mbps))
	}
	if mbps[0] != 2.0 || mbps[1] != 4.0 {
		t.Fatalf("mbps = %v", mbps)
	}
	samples := ts.Samples()
	if samples[1].Start != sim.Time(sim.Second) || samples[1].Bits != 4_000_000 {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestThroughputSeriesZeroBinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewThroughputSeries(0)
}
