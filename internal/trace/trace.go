// Package trace records and serializes the event traces the experiments
// analyze: packet drops at routers (the paper's loss traces), per-packet
// arrivals at probers, and flow throughput samples. Traces can round-trip
// through CSV for the command-line tools.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/sim"
)

// LossEvent is one dropped (or, in the PlanetLab model, lost-in-path)
// packet: the unit of every burstiness analysis in the paper.
type LossEvent struct {
	At   sim.Time // when the drop happened
	Flow int      // owning flow
	Seq  int64    // sequence number of the dropped packet
	Size int      // bytes
}

// Recorder collects loss events in arrival order. The zero value is ready
// and retains every event. It is intended to be installed as a
// netsim.Port.OnDrop callback; the simulated world is single-threaded so no
// locking is needed.
//
// A Recorder can also run in sink/observer mode (SetSink): each Add is
// forwarded to the sink — typically an analysis.Streaming fed straight from
// the bottleneck port — and, when retention is disabled, not stored at all.
// That is how sweeps analyze loss processes online with O(1) memory;
// retain mode stays the default because the golden-trace and CSV paths
// need the raw events.
type Recorder struct {
	events  []LossEvent
	n       int               // events added, retained or not
	sink    func(e LossEvent) // observer, may be nil
	discard bool              // inverted so the zero value retains
}

// SetSink installs an observer called for every subsequent Add. When
// retain is false the recorder stops storing events (Events returns only
// what was retained before the switch); the event count is maintained
// either way. A nil sink with retain true restores the zero-value
// behavior.
func (r *Recorder) SetSink(sink func(e LossEvent), retain bool) {
	r.sink = sink
	r.discard = !retain
}

// Add records a loss event: it is counted, offered to the sink if one is
// installed, and retained unless sink mode disabled retention.
func (r *Recorder) Add(e LossEvent) {
	r.n++
	if r.sink != nil {
		r.sink(e)
	}
	if !r.discard {
		r.events = append(r.events, e)
	}
}

// Len reports the number of recorded events, including events a sink-mode
// recorder observed without retaining.
func (r *Recorder) Len() int { return r.n }

// Events returns the recorded events in arrival order. The returned slice
// is owned by the recorder; callers must not mutate it.
func (r *Recorder) Events() []LossEvent { return r.events }

// Times extracts just the timestamps, in order.
func (r *Recorder) Times() []sim.Time {
	out := make([]sim.Time, len(r.events))
	for i, e := range r.events {
		out[i] = e.At
	}
	return out
}

// Reset discards all recorded events, keeping capacity and any installed
// sink.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.n = 0
}

// Sorted reports whether events are in nondecreasing time order (they
// always are when recorded from a single router, but merged traces may
// need sorting). The index-based loop keeps the check allocation-free —
// sort.SliceIsSorted would allocate for its capturing closure and
// interface header on every call.
func (r *Recorder) Sorted() bool {
	for i := 1; i < len(r.events); i++ {
		if r.events[i].At < r.events[i-1].At {
			return false
		}
	}
	return true
}

// SortByTime sorts events into nondecreasing time order (stable, so ties
// keep their original relative order).
func (r *Recorder) SortByTime() {
	sort.SliceStable(r.events, func(i, j int) bool {
		return r.events[i].At < r.events[j].At
	})
}

// Merge combines several recorders into one time-sorted recorder, used when
// an experiment records losses at multiple routers. It merges the RETAINED
// events: a recorder that ran in sink mode contributes nothing here (its
// observations were forwarded, not stored), so merge retain-mode recorders
// only. The output is sized once from the known total.
func Merge(rs ...*Recorder) *Recorder {
	total := 0
	for _, r := range rs {
		total += len(r.events)
	}
	out := &Recorder{events: make([]LossEvent, 0, total)}
	for _, r := range rs {
		out.events = append(out.events, r.events...)
	}
	out.n = len(out.events)
	out.SortByTime()
	return out
}

// Intervals returns the time differences between consecutive events —
// the paper's "loss intervals". An empty or single-event trace yields nil.
func (r *Recorder) Intervals() []sim.Duration {
	if len(r.events) < 2 {
		return nil
	}
	out := make([]sim.Duration, 0, len(r.events)-1)
	for i := 1; i < len(r.events); i++ {
		out = append(out, r.events[i].At.Sub(r.events[i-1].At))
	}
	return out
}

// csv columns: at_ns, flow, seq, size
var csvHeader = []string{"at_ns", "flow", "seq", "size"}

// WriteCSV streams the trace to w with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, 4)
	for _, e := range r.events {
		row[0] = strconv.FormatInt(int64(e.At), 10)
		row[1] = strconv.Itoa(e.Flow)
		row[2] = strconv.FormatInt(e.Seq, 10)
		row[3] = strconv.Itoa(e.Size)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(rd io.Reader) (*Recorder, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	if rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: missing header, got %q", rows[0][0])
	}
	// The row count is known, so the event buffer is sized exactly once.
	r := &Recorder{events: make([]LossEvent, 0, len(rows)-1)}
	for i, row := range rows[1:] {
		at, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad at_ns %q", i+1, row[0])
		}
		flow, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad flow %q", i+1, row[1])
		}
		seq, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad seq %q", i+1, row[2])
		}
		size, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad size %q", i+1, row[3])
		}
		r.Add(LossEvent{At: sim.Time(at), Flow: flow, Seq: seq, Size: size})
	}
	return r, nil
}

// ThroughputSample is one bin of a flow-throughput time series (Figure 7's
// aggregate-throughput-vs-time curves are built from these).
type ThroughputSample struct {
	Start sim.Time
	Bits  int64
}

// ThroughputSeries accumulates delivered bits into fixed bins.
type ThroughputSeries struct {
	Bin     sim.Duration
	samples []int64
}

// NewThroughputSeries creates a series with the given bin width.
func NewThroughputSeries(bin sim.Duration) *ThroughputSeries {
	if bin <= 0 {
		panic("trace: throughput bin must be positive")
	}
	return &ThroughputSeries{Bin: bin}
}

// Add credits bits delivered at time at.
func (ts *ThroughputSeries) Add(at sim.Time, bits int64) {
	idx := int(int64(at) / int64(ts.Bin))
	for len(ts.samples) <= idx {
		ts.samples = append(ts.samples, 0)
	}
	ts.samples[idx] += bits
}

// Mbps returns the series as megabits/second per bin.
func (ts *ThroughputSeries) Mbps() []float64 {
	out := make([]float64, len(ts.samples))
	binSec := ts.Bin.Seconds()
	for i, b := range ts.samples {
		out[i] = float64(b) / 1e6 / binSec
	}
	return out
}

// Samples returns the raw per-bin bit counts.
func (ts *ThroughputSeries) Samples() []ThroughputSample {
	out := make([]ThroughputSample, len(ts.samples))
	for i, b := range ts.samples {
		out[i] = ThroughputSample{Start: sim.Time(int64(i) * int64(ts.Bin)), Bits: b}
	}
	return out
}
