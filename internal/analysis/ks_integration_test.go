package analysis

import (
	"testing"

	"repro/internal/sim"
)

func TestReportKSRejectsBurstyAcceptsPoisson(t *testing.T) {
	// Bursty trace: clusters of 10 losses, 1 s apart; RTT 100 ms.
	var bursty []sim.Time
	for b := 0; b < 50; b++ {
		base := sim.Time(int64(b) * int64(sim.Second))
		for i := 0; i < 10; i++ {
			bursty = append(bursty, base.Add(sim.Duration(i)*100*sim.Microsecond))
		}
	}
	rb, err := Analyze(bursty, 100*sim.Millisecond, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rb.RejectsPoisson {
		t.Fatalf("bursty trace accepted as Poisson (D=%v)", rb.KSDistance)
	}

	// Poisson trace with the same count.
	rng := sim.NewRand(8)
	var poisson []sim.Time
	cur := sim.Time(0)
	for i := 0; i < 500; i++ {
		cur = cur.Add(sim.Exponential(rng, 100*sim.Millisecond))
		poisson = append(poisson, cur)
	}
	rp, err := Analyze(poisson, 100*sim.Millisecond, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.RejectsPoisson {
		t.Fatalf("Poisson trace rejected (D=%v)", rp.KSDistance)
	}
	if rb.KSDistance <= rp.KSDistance {
		t.Fatalf("bursty D (%v) not above Poisson D (%v)", rb.KSDistance, rp.KSDistance)
	}
}
