package analysis

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// randomLossTimes draws a bursty synthetic loss process: Poisson
// background arrivals plus tight sub-RTT clusters, the shape every real
// trace in the repository has. Times are sorted (both analyzers require
// nondecreasing input).
func randomLossTimes(rng *rand.Rand, n int, rtt sim.Duration) []sim.Time {
	out := make([]sim.Time, 0, n)
	t := float64(0)
	for len(out) < n {
		// A cluster of 1..8 losses within a quarter RTT, then a long gap.
		t += rng.ExpFloat64() * 20 * float64(rtt)
		k := 1 + rng.Intn(8)
		ct := t
		for i := 0; i < k && len(out) < n; i++ {
			ct += rng.Float64() * float64(rtt) / 4
			out = append(out, sim.Time(ct))
		}
		t = ct
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func relClose(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// TestStreamingMatchesBatchRandom is the property-test half of the
// streaming/batch contract: for randomized bursty loss processes, feeding
// the events one at a time through a sink-mode recorder must reproduce
// the batch Report — exactly for the integer-derived statistics, within
// tolerance for the online moments — and the recorder must retain
// nothing. One analyzer is reused (Reset) across all cases to exercise
// the scratch recycling.
func TestStreamingMatchesBatchRandom(t *testing.T) {
	t.Parallel()
	const rtt = 50 * sim.Millisecond
	var s *Streaming
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(2000)
		times := randomLossTimes(rng, n, rtt)

		batch, err := Analyze(times, rtt, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		if s == nil {
			if s, err = NewStreaming(rtt, Config{}); err != nil {
				t.Fatal(err)
			}
		} else if err = s.Reset(rtt, Config{}); err != nil {
			t.Fatal(err)
		}
		rec := &trace.Recorder{}
		rec.SetSink(func(e trace.LossEvent) { s.Observe(e) }, false)
		for i, at := range times {
			rec.Add(trace.LossEvent{At: at, Flow: i % 7, Seq: int64(i)})
		}
		if len(rec.Events()) != 0 {
			t.Fatalf("seed %d: sink-mode recorder retained %d events", seed, len(rec.Events()))
		}
		if rec.Len() != len(times) || s.N() != len(times) {
			t.Fatalf("seed %d: counts diverged: rec %d analyzer %d want %d",
				seed, rec.Len(), s.N(), len(times))
		}

		stream, err := s.Finalize()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stream.N != batch.N || stream.Lambda != batch.Lambda {
			t.Fatalf("seed %d: N/Lambda diverged: %d/%v vs %d/%v",
				seed, stream.N, stream.Lambda, batch.N, batch.Lambda)
		}
		if stream.FracBelow001 != batch.FracBelow001 ||
			stream.FracBelow025 != batch.FracBelow025 ||
			stream.FracBelow1 != batch.FracBelow1 {
			t.Fatalf("seed %d: fractions diverged", seed)
		}
		if stream.KSDistance != batch.KSDistance ||
			stream.RejectsPoisson != batch.RejectsPoisson {
			t.Fatalf("seed %d: KS diverged: %v vs %v", seed, stream.KSDistance, batch.KSDistance)
		}
		if !relClose(stream.CoV, batch.CoV, 1e-9) {
			t.Fatalf("seed %d: CoV %v vs %v", seed, stream.CoV, batch.CoV)
		}
		if !relClose(stream.IndexOfDispersion, batch.IndexOfDispersion, 1e-9) {
			t.Fatalf("seed %d: IoD %v vs %v", seed, stream.IndexOfDispersion, batch.IndexOfDispersion)
		}
		if stream.Hist.Total() != batch.Hist.Total() || stream.Hist.Overflow != batch.Hist.Overflow {
			t.Fatalf("seed %d: histogram totals diverged", seed)
		}
		for i := 0; i < batch.Hist.NumBins(); i++ {
			if stream.Hist.Count(i) != batch.Hist.Count(i) {
				t.Fatalf("seed %d: bin %d diverged", seed, i)
			}
			if stream.PoissonPMF[i] != batch.PoissonPMF[i] {
				t.Fatalf("seed %d: poisson bin %d diverged", seed, i)
			}
		}
		for i := range batch.Intervals {
			if stream.Intervals[i] != batch.Intervals[i] {
				t.Fatalf("seed %d: interval %d diverged", seed, i)
			}
		}
	}
}

// TestStreamingReservoirOverflow drives the analyzer past its KS
// reservoir bound: the exact statistics must stay exact, the reservoir
// must hold exactly the bound, the KS distance must stay a valid
// statistic, and two identical streams must produce identical reports
// (the reservoir sampling is deterministic).
func TestStreamingReservoirOverflow(t *testing.T) {
	t.Parallel()
	const rtt = 50 * sim.Millisecond
	cfg := Config{KSReservoir: 64}
	times := randomLossTimes(rand.New(rand.NewSource(7)), 500, rtt)

	run := func() *Report {
		s, err := NewStreaming(rtt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range times {
			s.ObserveTime(at)
		}
		if s.KSExact() {
			t.Fatal("reservoir did not overflow")
		}
		rep, err := s.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return rep.Clone()
	}
	a, b := run(), run()

	batch, err := Analyze(times, rtt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.N != batch.N || a.Lambda != batch.Lambda || a.FracBelow001 != batch.FracBelow001 {
		t.Fatal("exact statistics drifted under reservoir overflow")
	}
	if len(a.Intervals) != 64 {
		t.Fatalf("reservoir holds %d intervals, want 64", len(a.Intervals))
	}
	if a.KSDistance <= 0 || a.KSDistance > 1 {
		t.Fatalf("KS distance %v outside (0,1]", a.KSDistance)
	}
	if a.KSDistance != b.KSDistance || !equalFloats(a.Intervals, b.Intervals) {
		t.Fatal("reservoir sampling is nondeterministic")
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBurstTrackerMatchesSummarize pins the online burst tracker to the
// batch SummarizeBursts over randomized traces and several gaps.
func TestBurstTrackerMatchesSummarize(t *testing.T) {
	t.Parallel()
	const rtt = 50 * sim.Millisecond
	var bt BurstTracker
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		times := randomLossTimes(rng, 1+rng.Intn(800), rtt)
		events := make([]trace.LossEvent, len(times))
		for i, at := range times {
			events[i] = trace.LossEvent{At: at, Flow: i % 5}
		}
		for _, gap := range []sim.Duration{rtt / 4, rtt, 10 * rtt} {
			bt.Reset(gap)
			for _, e := range events {
				bt.Observe(e)
			}
			got, want := bt.Stats(), SummarizeBursts(events, gap)
			if got != want {
				t.Fatalf("seed %d gap %v: %+v != %+v", seed, gap, got, want)
			}
		}
	}
}
