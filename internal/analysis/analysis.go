// Package analysis implements the paper's measurement methodology: from a
// loss trace and a path RTT it computes the inter-loss-interval PDF
// (bin size 0.02 RTT, plotted over 0–2 RTT with a log Y axis in the
// paper), the Poisson reference with the same average arrival rate, the
// headline burstiness fractions ("95% of losses cluster within 0.01 RTT"),
// and the loss-event grouping used to count how many flows observe a
// congestion event.
package analysis

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config controls the PDF construction. The defaults are the paper's.
type Config struct {
	// BinWidth is the PDF resolution in RTT units (default 0.02).
	BinWidth float64
	// MaxInterval is the plotted range in RTT units (default 2.0).
	MaxInterval float64
	// DispersionWindow is the window (in RTT units) for the index of
	// dispersion (default 1.0).
	DispersionWindow float64
	// KSReservoir bounds how many intervals a Streaming analyzer retains
	// for the KS test (default DefaultKSReservoir). Batch Analyze ignores
	// it — the batch path holds every interval anyway.
	KSReservoir int
}

func (c *Config) fillDefaults() {
	if c.BinWidth == 0 {
		c.BinWidth = 0.02
	}
	if c.MaxInterval == 0 {
		c.MaxInterval = 2.0
	}
	if c.DispersionWindow == 0 {
		c.DispersionWindow = 1.0
	}
}

// Report is the full burstiness analysis of one loss trace.
type Report struct {
	N   int          // number of loss events analyzed
	RTT sim.Duration // normalization RTT

	// Intervals are the inter-loss times in RTT units.
	Intervals []float64

	// Hist is the measured PDF over [0, MaxInterval) RTTs.
	Hist *stats.Histogram

	// Lambda is the loss arrival rate in events per RTT, the rate of the
	// matched Poisson reference.
	Lambda float64

	// PoissonPMF is the per-bin mass of the matched Poisson process.
	PoissonPMF []float64

	// Headline fractions (of all intervals, not just in-range ones).
	FracBelow001 float64 // < 0.01 RTT
	FracBelow025 float64 // < 0.25 RTT
	FracBelow1   float64 // < 1 RTT

	// IndexOfDispersion of event counts in DispersionWindow-RTT windows;
	// ≈1 for Poisson, ≫1 for bursty processes.
	IndexOfDispersion float64

	// CoV is the coefficient of variation (std/mean) of the intervals.
	// An exponential (Poisson) interval distribution has CoV = 1 at any
	// rate, so this is the scale-robust burstiness-vs-Poisson statistic:
	// clustered losses give CoV ≫ 1.
	CoV float64

	// KSDistance is the Kolmogorov–Smirnov distance between the interval
	// distribution and the exponential law with the same mean, and
	// RejectsPoisson is the α=0.05 hypothesis-test verdict — the paper's
	// future-work "more rigorous analysis" of non-Poissonness.
	KSDistance     float64
	RejectsPoisson bool
}

// Clone returns an independent deep copy of the report. A Streaming
// analyzer's Finalize hands out a report whose slices live in the
// analyzer's scratch arena; callers that retain the report past the next
// Reset — sweep drivers keeping per-replication results — clone it first.
func (r *Report) Clone() *Report {
	c := *r
	c.Intervals = append([]float64(nil), r.Intervals...)
	c.PoissonPMF = append([]float64(nil), r.PoissonPMF...)
	if r.Hist != nil {
		c.Hist = r.Hist.Clone()
	}
	return &c
}

// Analyze computes the burstiness report for loss timestamps normalized by
// rtt. times must be nondecreasing. It returns an error when fewer than
// two losses exist (no intervals to analyze).
func Analyze(times []sim.Time, rtt sim.Duration, cfg Config) (*Report, error) {
	if rtt <= 0 {
		return nil, fmt.Errorf("analysis: RTT must be positive, got %v", rtt)
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("analysis: need ≥2 losses, got %d", len(times))
	}
	cfg.fillDefaults()

	r := &Report{N: len(times), RTT: rtt}
	rttF := float64(rtt)
	r.Intervals = make([]float64, 0, len(times)-1)
	norm := make([]float64, len(times)) // times in RTT units for IoD
	prev := times[0]
	norm[0] = float64(times[0]) / rttF
	for i := 1; i < len(times); i++ {
		if times[i] < prev {
			return nil, fmt.Errorf("analysis: times not sorted at %d", i)
		}
		r.Intervals = append(r.Intervals, float64(times[i].Sub(prev))/rttF)
		norm[i] = float64(times[i]) / rttF
		prev = times[i]
	}

	nbins := int(cfg.MaxInterval/cfg.BinWidth + 0.5)
	r.Hist = stats.NewHistogram(cfg.BinWidth, nbins)
	r.Hist.AddAll(r.Intervals)

	mean := stats.Mean(r.Intervals)
	if mean > 0 {
		r.Lambda = 1 / mean
	}
	r.PoissonPMF = r.Hist.ExponentialPMF(r.Lambda)

	r.FracBelow001 = fracBelow(r.Intervals, 0.01)
	r.FracBelow025 = fracBelow(r.Intervals, 0.25)
	r.FracBelow1 = fracBelow(r.Intervals, 1.0)
	r.IndexOfDispersion = stats.IndexOfDispersion(norm, cfg.DispersionWindow)
	r.CoV = cov(r.Intervals)
	r.KSDistance = stats.KSExponential(r.Intervals)
	r.RejectsPoisson = stats.RejectsExponential(r.Intervals)
	return r, nil
}

func cov(xs []float64) float64 {
	s := stats.Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// fracBelow counts exactly (the histogram's bin interpolation is too
// coarse for the paper's 0.01-RTT headline numbers).
func fracBelow(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// AnalyzeTrace is Analyze applied to a trace recorder.
func AnalyzeTrace(rec *trace.Recorder, rtt sim.Duration, cfg Config) (*Report, error) {
	return Analyze(rec.Times(), rtt, cfg)
}

// BurstinessVsPoisson summarizes how much burstier than Poisson the
// measured process is at the smallest bin: the ratio of measured to
// Poisson mass in bin 0. The paper's log-scale figures show 1–4 orders of
// magnitude.
func (r *Report) BurstinessVsPoisson() float64 {
	pmf := r.Hist.PMF()
	if len(pmf) == 0 || len(r.PoissonPMF) == 0 || r.PoissonPMF[0] == 0 {
		return 0
	}
	return pmf[0] / r.PoissonPMF[0]
}

// Merge combines normalized-interval reports from several paths (the
// paper's Figure 4 aggregates 650 paths after per-path RTT
// normalization). Each input contributes its normalized intervals; the
// merged Poisson reference uses the merged mean rate.
func Merge(reports []*Report, cfg Config) (*Report, error) {
	cfg.fillDefaults()
	var all []float64
	n := 0
	for _, rep := range reports {
		all = append(all, rep.Intervals...)
		n += rep.N
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("analysis: nothing to merge")
	}
	out := &Report{N: n, Intervals: all}
	nbins := int(cfg.MaxInterval/cfg.BinWidth + 0.5)
	out.Hist = stats.NewHistogram(cfg.BinWidth, nbins)
	out.Hist.AddAll(all)
	mean := stats.Mean(all)
	if mean > 0 {
		out.Lambda = 1 / mean
	}
	out.PoissonPMF = out.Hist.ExponentialPMF(out.Lambda)
	out.FracBelow001 = fracBelow(all, 0.01)
	out.FracBelow025 = fracBelow(all, 0.25)
	out.FracBelow1 = fracBelow(all, 1.0)
	out.CoV = cov(all)
	out.KSDistance = stats.KSExponential(all)
	out.RejectsPoisson = stats.RejectsExponential(all)
	return out, nil
}

// GroupBursts clusters a time-sorted loss trace into drop bursts: runs of
// consecutive losses separated by gaps ≤ maxGap. This identifies the
// "loss signal burst periods" of the paper's Figures 5/6 analysis.
func GroupBursts(events []trace.LossEvent, maxGap sim.Duration) [][]trace.LossEvent {
	if len(events) == 0 {
		return nil
	}
	var out [][]trace.LossEvent
	cur := []trace.LossEvent{events[0]}
	for _, e := range events[1:] {
		if e.At.Sub(cur[len(cur)-1].At) <= maxGap {
			cur = append(cur, e)
		} else {
			out = append(out, cur)
			cur = []trace.LossEvent{e}
		}
	}
	return append(out, cur)
}

// DistinctFlows counts how many different flows appear in a burst — the
// number of flows that will observe the loss event (paper Eq. 1/2's
// L quantity, measured).
func DistinctFlows(burst []trace.LossEvent) int {
	seen := make(map[int]struct{}, len(burst))
	for _, e := range burst {
		seen[e.Flow] = struct{}{}
	}
	return len(seen)
}

// BurstStats summarizes the burst structure of a loss trace.
type BurstStats struct {
	Bursts        int
	MeanSize      float64 // packets per burst
	MeanFlows     float64 // distinct flows per burst
	MaxSize       int
	SingletonFrac float64 // fraction of bursts with a single drop
}

// SummarizeBursts computes burst statistics with the given clustering gap.
func SummarizeBursts(events []trace.LossEvent, maxGap sim.Duration) BurstStats {
	bursts := GroupBursts(events, maxGap)
	if len(bursts) == 0 {
		return BurstStats{}
	}
	var s BurstStats
	s.Bursts = len(bursts)
	singles := 0
	for _, b := range bursts {
		s.MeanSize += float64(len(b))
		s.MeanFlows += float64(DistinctFlows(b))
		if len(b) > s.MaxSize {
			s.MaxSize = len(b)
		}
		if len(b) == 1 {
			singles++
		}
	}
	s.MeanSize /= float64(len(bursts))
	s.MeanFlows /= float64(len(bursts))
	s.SingletonFrac = float64(singles) / float64(len(bursts))
	return s
}
