package analysis

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestAnalyzeBurstyTrace(t *testing.T) {
	// 10 bursts of 10 losses 0.1 ms apart, bursts 1 s apart; RTT = 100 ms.
	rtt := 100 * sim.Millisecond
	var times []sim.Time
	for b := 0; b < 10; b++ {
		base := sim.Time(int64(b) * int64(sim.Second))
		for i := 0; i < 10; i++ {
			times = append(times, base.Add(sim.Duration(i)*100*sim.Microsecond))
		}
	}
	r, err := Analyze(times, rtt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 100 || len(r.Intervals) != 99 {
		t.Fatalf("n=%d intervals=%d", r.N, len(r.Intervals))
	}
	// 90 of 99 intervals are 0.001 RTT — far below 0.01 RTT.
	if r.FracBelow001 < 0.85 || r.FracBelow001 > 0.95 {
		t.Fatalf("frac<0.01RTT = %v, want ≈0.91", r.FracBelow001)
	}
	if r.FracBelow1 < r.FracBelow001 {
		t.Fatal("fraction below 1 RTT smaller than below 0.01 RTT")
	}
	// Much burstier than Poisson at the smallest bin.
	if r.BurstinessVsPoisson() < 5 {
		t.Fatalf("burstiness ratio = %v, want ≫1", r.BurstinessVsPoisson())
	}
	if r.IndexOfDispersion < 2 {
		t.Fatalf("IoD = %v, want ≫1", r.IndexOfDispersion)
	}
}

func TestAnalyzePoissonTraceMatchesReference(t *testing.T) {
	// Exponential inter-loss times: PDF must track the Poisson reference
	// and the burstiness ratio must be ≈1.
	rng := sim.NewRand(1)
	rtt := 100 * sim.Millisecond
	var times []sim.Time
	cur := sim.Time(0)
	for i := 0; i < 50000; i++ {
		cur = cur.Add(sim.Exponential(rng, 50*sim.Millisecond)) // λ = 2/RTT
		times = append(times, cur)
	}
	r, err := Analyze(times, rtt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Lambda < 1.9 || r.Lambda > 2.1 {
		t.Fatalf("lambda = %v, want ≈2 per RTT", r.Lambda)
	}
	ratio := r.BurstinessVsPoisson()
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("Poisson trace burstiness ratio = %v, want ≈1", ratio)
	}
	if r.IndexOfDispersion > 1.3 {
		t.Fatalf("Poisson IoD = %v", r.IndexOfDispersion)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze([]sim.Time{1}, sim.Duration(1), Config{}); err == nil {
		t.Fatal("single loss accepted")
	}
	if _, err := Analyze([]sim.Time{1, 2}, 0, Config{}); err == nil {
		t.Fatal("zero RTT accepted")
	}
	if _, err := Analyze([]sim.Time{5, 3}, sim.Duration(1), Config{}); err == nil {
		t.Fatal("unsorted times accepted")
	}
}

func TestAnalyzeTrace(t *testing.T) {
	rec := &trace.Recorder{}
	rec.Add(trace.LossEvent{At: 0})
	rec.Add(trace.LossEvent{At: sim.Time(sim.Millisecond)})
	rec.Add(trace.LossEvent{At: sim.Time(sim.Second)})
	r, err := AnalyzeTrace(rec, 100*sim.Millisecond, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 3 {
		t.Fatalf("n = %d", r.N)
	}
}

func TestMergeAggregatesPaths(t *testing.T) {
	mk := func(rtt sim.Duration, gap sim.Duration, n int) *Report {
		var times []sim.Time
		for i := 0; i < n; i++ {
			times = append(times, sim.Time(int64(i)*int64(gap)))
		}
		r, err := Analyze(times, rtt, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Path A: gaps of 0.001 RTT; path B: gaps of 1.5 RTT.
	a := mk(100*sim.Millisecond, 100*sim.Microsecond, 100)
	b := mk(10*sim.Millisecond, 15*sim.Millisecond, 100)
	m, err := Merge([]*Report{a, b}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 200 || len(m.Intervals) != 198 {
		t.Fatalf("merged n=%d intervals=%d", m.N, len(m.Intervals))
	}
	// Half the intervals tiny, half at 1.5 RTT ⇒ frac<0.01 ≈ 0.5.
	if m.FracBelow001 < 0.45 || m.FracBelow001 > 0.55 {
		t.Fatalf("merged frac<0.01 = %v", m.FracBelow001)
	}
	if _, err := Merge(nil, Config{}); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestGroupBursts(t *testing.T) {
	ms := sim.Millisecond
	ev := []trace.LossEvent{
		{At: sim.Time(0), Flow: 1},
		{At: sim.Time(1 * ms), Flow: 2},
		{At: sim.Time(2 * ms), Flow: 1},
		{At: sim.Time(100 * ms), Flow: 3},
		{At: sim.Time(101 * ms), Flow: 3},
	}
	bursts := GroupBursts(ev, 10*ms)
	if len(bursts) != 2 {
		t.Fatalf("bursts = %d", len(bursts))
	}
	if len(bursts[0]) != 3 || len(bursts[1]) != 2 {
		t.Fatalf("burst sizes %d,%d", len(bursts[0]), len(bursts[1]))
	}
	if DistinctFlows(bursts[0]) != 2 || DistinctFlows(bursts[1]) != 1 {
		t.Fatal("distinct flow counts wrong")
	}
	if GroupBursts(nil, ms) != nil {
		t.Fatal("empty group should be nil")
	}
}

func TestSummarizeBursts(t *testing.T) {
	ms := sim.Millisecond
	ev := []trace.LossEvent{
		{At: sim.Time(0), Flow: 1},
		{At: sim.Time(1 * ms), Flow: 2},
		{At: sim.Time(500 * ms), Flow: 3},
	}
	s := SummarizeBursts(ev, 10*ms)
	if s.Bursts != 2 || s.MaxSize != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.MeanSize-1.5) > 1e-9 || math.Abs(s.MeanFlows-1.5) > 1e-9 {
		t.Fatalf("means = %+v", s)
	}
	if s.SingletonFrac != 0.5 {
		t.Fatalf("singleton frac = %v", s.SingletonFrac)
	}
	if z := SummarizeBursts(nil, ms); z.Bursts != 0 {
		t.Fatal("empty summary nonzero")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.BinWidth != 0.02 || c.MaxInterval != 2.0 || c.DispersionWindow != 1.0 {
		t.Fatalf("defaults = %+v", c)
	}
	// 100 bins as in the paper.
	times := []sim.Time{0, 1000, 2000}
	r, _ := Analyze(times, sim.Duration(1000), Config{})
	if r.Hist.NumBins() != 100 {
		t.Fatalf("bins = %d", r.Hist.NumBins())
	}
}
