package analysis

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Aggregate pools the burstiness statistics of many worlds into one
// bounded accumulator — the fleet layer's cross-world reducer. Each
// world runs its own Streaming analyzer to completion and is then
// Absorbed: the histograms, Welford moments, dispersion windows and KS
// reservoirs merge through the stats.Merge family, so the aggregate is a
// pure function of the sequence of absorbed worlds — independent of how
// many shards ran them — and its memory stays one analyzer's worth of
// scratch no matter how many worlds stream through.
//
// What is exact and what is approximate, per statistic:
//
//   - loss/interval counts, histogram bins, clustering fractions and the
//     pooled Lambda: exact sums and quotients;
//   - CoV (merged Welford moments) and the pooled index of dispersion:
//     equal to a single pass over the concatenated per-world intervals
//     up to floating-point associativity (worlds' windows pool, they do
//     not straddle — each world's clock starts at zero);
//   - the KS statistic: computed from the merged reservoir — exact while
//     the union of per-world intervals fits the bound, a deterministic
//     weighted subsample beyond it (stats.Reservoir.Merge).
//
// Like Streaming, an Aggregate belongs to one goroutine. In a fleet that
// goroutine is the merge turnstile, which absorbs worlds in index order —
// that ordering is what makes the aggregate byte-identical across shard
// counts.
type Aggregate struct {
	cfg    Config
	worlds int
	n      int     // Σ per-world loss events
	count  int64   // Σ per-world intervals
	sum    float64 // Σ per-world interval sums (arrival order)
	b001   int
	b025   int
	b1     int
	rttSum sim.Duration

	hist *stats.Histogram
	mom  stats.Moments
	disp stats.DispersionStats
	res  stats.Reservoir

	pmf    []float64 // Poisson reference scratch
	ksSort []float64 // KS sort scratch
	out    Report    // finalized in place, reused across Reset
}

// NewAggregate builds an empty cross-world accumulator. The config plays
// the same role as in Analyze/Streaming and must match the config of
// every absorbed analyzer (Absorb enforces the bin layout).
func NewAggregate(cfg Config) *Aggregate {
	g := &Aggregate{}
	g.Reset(cfg)
	return g
}

// Reset clears the aggregate for a new fleet while keeping the scratch
// buffers, mirroring Streaming.Reset.
func (g *Aggregate) Reset(cfg Config) {
	cfg.fillDefaults()
	if cfg.KSReservoir == 0 {
		cfg.KSReservoir = DefaultKSReservoir
	}
	g.cfg = cfg
	g.worlds, g.n = 0, 0
	g.count, g.sum = 0, 0
	g.b001, g.b025, g.b1 = 0, 0, 0
	g.rttSum = 0

	nbins := int(cfg.MaxInterval/cfg.BinWidth + 0.5)
	if g.hist != nil && g.hist.NumBins() == nbins && g.hist.BinWidth == cfg.BinWidth {
		g.hist.Reset()
	} else {
		g.hist = stats.NewHistogram(cfg.BinWidth, nbins)
	}
	g.mom.Reset()
	g.disp = stats.DispersionStats{}
	g.res.Reset(cfg.KSReservoir)
}

// Worlds reports how many analyzers were absorbed.
func (g *Aggregate) Worlds() int { return g.worlds }

// N reports the pooled loss-event count.
func (g *Aggregate) N() int { return g.n }

// Absorb merges one finished world's analyzer into the aggregate. The
// analyzer is read, not mutated, and need only stay alive for the call —
// fleets absorb an arena-owned analyzer right before the arena is
// reused. Analyzers with a different bin layout are a configuration bug
// and are rejected.
func (g *Aggregate) Absorb(s *Streaming) error {
	if s.hist.BinWidth != g.hist.BinWidth || s.hist.NumBins() != g.hist.NumBins() {
		return fmt.Errorf("analysis: aggregate bin layout %v×%d cannot absorb analyzer with %v×%d",
			g.hist.BinWidth, g.hist.NumBins(), s.hist.BinWidth, s.hist.NumBins())
	}
	g.worlds++
	g.n += s.n
	g.count += s.mom.N
	g.sum += s.sum
	g.b001 += s.b001
	g.b025 += s.b025
	g.b1 += s.b1
	g.rttSum += s.rtt

	g.hist.Merge(s.hist)
	g.mom.Merge(s.mom)
	g.disp.Merge(s.disp.Stats())
	g.res.Merge(&s.res)
	return nil
}

// KSExact reports whether the pooled KS statistic still covers every
// absorbed interval (true until the merged reservoir overflows).
func (g *Aggregate) KSExact() bool { return g.res.Exact() }

// Finalize computes the pooled report. Intervals are RTT-normalized per
// world before pooling (the paper's Figure-4 methodology), so Lambda,
// the histogram and the fractions all read in RTT units; the report's
// RTT field carries the mean of the absorbed worlds' RTTs for reference.
// Like Streaming.Finalize, the returned Report and its slices are owned
// by the aggregate and recycled by the next Reset; retain with Clone. It
// errors when fewer than two worlds' losses produced no interval at all.
func (g *Aggregate) Finalize() (*Report, error) {
	if g.count < 1 {
		return nil, fmt.Errorf("analysis: aggregate has no intervals (absorbed %d worlds, %d losses)", g.worlds, g.n)
	}
	mean := g.sum / float64(g.count)

	g.out = Report{N: g.n, Hist: g.hist}
	if g.worlds > 0 {
		g.out.RTT = g.rttSum / sim.Duration(g.worlds)
	}
	g.out.Intervals = g.res.Items()
	if mean > 0 {
		g.out.Lambda = 1 / mean
	}
	g.pmf = g.hist.AppendExponentialPMF(g.pmf[:0], g.out.Lambda)
	g.out.PoissonPMF = g.pmf
	g.out.FracBelow001 = float64(g.b001) / float64(g.count)
	g.out.FracBelow025 = float64(g.b025) / float64(g.count)
	g.out.FracBelow1 = float64(g.b1) / float64(g.count)
	g.out.IndexOfDispersion = g.disp.Value()
	if g.count > 1 && mean != 0 {
		std := sampleStd(g.mom.M2, int(g.count))
		g.out.CoV = std / mean
	}
	g.out.KSDistance, g.ksSort = stats.KSExponentialInto(g.res.Items(), g.ksSort)
	g.out.RejectsPoisson = g.out.KSDistance > stats.KSCriticalValue(len(g.res.Items()), 0.05)
	return &g.out, nil
}

// BurstAgg pools per-world BurstStats exactly: the per-world means are
// quotients of small integer sums, so the sums are recovered by rounding
// and re-divided once at the end — the pooled stats equal a single
// tracker fed every world's bursts (flows distinct within worlds).
type BurstAgg struct {
	bursts   int
	singles  int
	maxSize  int
	sumSize  int
	sumFlows int
}

// Reset forgets every absorbed world.
func (b *BurstAgg) Reset() { *b = BurstAgg{} }

// Add absorbs one world's burst summary.
func (b *BurstAgg) Add(s BurstStats) {
	if s.Bursts == 0 {
		return
	}
	b.bursts += s.Bursts
	b.singles += int(math.Round(s.SingletonFrac * float64(s.Bursts)))
	b.sumSize += int(math.Round(s.MeanSize * float64(s.Bursts)))
	b.sumFlows += int(math.Round(s.MeanFlows * float64(s.Bursts)))
	if s.MaxSize > b.maxSize {
		b.maxSize = s.MaxSize
	}
}

// Stats returns the pooled burst summary.
func (b *BurstAgg) Stats() BurstStats {
	if b.bursts == 0 {
		return BurstStats{}
	}
	return BurstStats{
		Bursts:        b.bursts,
		MeanSize:      float64(b.sumSize) / float64(b.bursts),
		MeanFlows:     float64(b.sumFlows) / float64(b.bursts),
		MaxSize:       b.maxSize,
		SingletonFrac: float64(b.singles) / float64(b.bursts),
	}
}
