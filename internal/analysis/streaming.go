package analysis

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultKSReservoir bounds how many intervals a Streaming analyzer
// retains for the Kolmogorov–Smirnov test when the config does not say
// otherwise. Every registered scenario and figure stays far below it, so
// the streamed KS statistic is normally exact; past the bound the
// analyzer switches to a deterministic reservoir sample (see Streaming).
const DefaultKSReservoir = 1 << 17

// Streaming is the online form of Analyze: it is fed one loss event at a
// time — typically straight from a netsim.Port.OnDrop callback through a
// sink-mode trace.Recorder — and maintains every statistic of a Report
// incrementally, so a sweep analyzes its loss process while the world
// runs instead of retaining the trace and batch-processing it afterwards.
//
// What it maintains, and how it relates to the batch path:
//
//   - the inter-loss histogram and the clustering fractions: exact, the
//     same counts Analyze produces;
//   - the interval mean (and so Lambda and the Poisson reference):
//     bit-identical, accumulated in arrival order like stats.Mean;
//   - the coefficient of variation via Welford's online moments and the
//     windowed index of dispersion via stats.DispersionCounter: equal to
//     the batch values up to floating-point associativity;
//   - the KS distance from a bounded reservoir of intervals: exact while
//     the trace fits the reservoir (the normal case), a deterministic
//     uniform sample beyond it.
//
// TestStreamingMatchesBatch pins the equivalence over every registered
// scenario. A Streaming analyzer belongs to one goroutine, like every
// other per-world component; Reset recycles all scratch (histogram,
// reservoir, sort and PMF buffers) so replications on the same worker
// run allocation-free.
type Streaming struct {
	cfg  Config
	rtt  sim.Duration
	rttF float64

	n    int      // loss events observed
	last sim.Time // time of the previous event
	sum  float64  // Σ intervals, in arrival order (batch-identical mean)
	mom  stats.Moments
	b001 int // intervals < 0.01 RTT
	b025 int // intervals < 0.25 RTT
	b1   int // intervals < 1 RTT

	hist *stats.Histogram
	disp stats.DispersionCounter
	res  stats.Reservoir // retained intervals for the KS test

	pmf    []float64 // Poisson reference scratch
	ksSort []float64 // KS sort scratch
	out    Report    // finalized in place, reused across Reset
}

// NewStreaming builds an online analyzer for losses on a path with the
// given RTT. The config defaults match Analyze's.
func NewStreaming(rtt sim.Duration, cfg Config) (*Streaming, error) {
	s := &Streaming{}
	if err := s.Reset(rtt, cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset clears all state for a new run while keeping every scratch buffer,
// so one analyzer serves many replications without reallocating. The bin
// layout is rebuilt only when the config changes it.
func (s *Streaming) Reset(rtt sim.Duration, cfg Config) error {
	if rtt <= 0 {
		return fmt.Errorf("analysis: RTT must be positive, got %v", rtt)
	}
	cfg.fillDefaults()
	if cfg.KSReservoir == 0 {
		cfg.KSReservoir = DefaultKSReservoir
	}
	s.cfg = cfg
	s.rtt = rtt
	s.rttF = float64(rtt)

	s.n = 0
	s.last = 0
	s.sum = 0
	s.mom.Reset()
	s.b001, s.b025, s.b1 = 0, 0, 0

	nbins := int(cfg.MaxInterval/cfg.BinWidth + 0.5)
	if s.hist != nil && s.hist.NumBins() == nbins && s.hist.BinWidth == cfg.BinWidth {
		s.hist.Reset()
	} else {
		s.hist = stats.NewHistogram(cfg.BinWidth, nbins)
	}
	s.disp.Reset(cfg.DispersionWindow)

	// The reservoir's fixed seed keeps sampling a pure function of the
	// event stream, so sweeps stay worker-count invariant.
	s.res.Reset(cfg.KSReservoir)
	return nil
}

// N reports how many loss events have been observed.
func (s *Streaming) N() int { return s.n }

// Observe feeds one loss event. Events must arrive in nondecreasing time
// order — the order a single simulated world produces them in — and
// nothing of the event is retained, which is what lets a sink-mode
// recorder drop the trace entirely.
func (s *Streaming) Observe(e trace.LossEvent) { s.ObserveTime(e.At) }

// ObserveTime feeds one loss timestamp (the analysis uses only times).
func (s *Streaming) ObserveTime(t sim.Time) {
	if s.n > 0 && t < s.last {
		panic(fmt.Sprintf("analysis: streaming observation at %v before %v", t, s.last))
	}
	s.disp.Observe(float64(t) / s.rttF)
	if s.n == 0 {
		s.n = 1
		s.last = t
		return
	}
	iv := float64(t.Sub(s.last)) / s.rttF
	s.n++
	s.last = t

	s.sum += iv
	s.mom.Observe(iv) // Welford: numerically stable online mean/variance

	s.hist.Add(iv)
	if iv < 0.01 {
		s.b001++
	}
	if iv < 0.25 {
		s.b025++
	}
	if iv < 1.0 {
		s.b1++
	}
	s.res.Observe(iv)
}

// KSExact reports whether the KS statistic will be computed from the full
// interval stream (true until the reservoir overflows).
func (s *Streaming) KSExact() bool { return s.res.Exact() }

// Finalize computes the report for everything observed so far. The
// returned Report and its slices (Intervals, Hist, PoissonPMF) are owned
// by the analyzer and recycled by the next Reset; callers that retain a
// report across runs must Clone it. Like Analyze, it errors when fewer
// than two losses were observed.
func (s *Streaming) Finalize() (*Report, error) {
	if s.n < 2 {
		return nil, fmt.Errorf("analysis: need ≥2 losses, got %d", s.n)
	}
	count := s.n - 1 // intervals
	mean := s.sum / float64(count)

	s.out = Report{N: s.n, RTT: s.rtt, Hist: s.hist}
	s.out.Intervals = s.res.Items()
	if mean > 0 {
		s.out.Lambda = 1 / mean
	}
	s.pmf = s.hist.AppendExponentialPMF(s.pmf[:0], s.out.Lambda)
	s.out.PoissonPMF = s.pmf
	s.out.FracBelow001 = float64(s.b001) / float64(count)
	s.out.FracBelow025 = float64(s.b025) / float64(count)
	s.out.FracBelow1 = float64(s.b1) / float64(count)
	s.out.IndexOfDispersion = s.disp.Value()
	if count > 1 && mean != 0 {
		std := sampleStd(s.mom.M2, count)
		s.out.CoV = std / mean
	}
	s.out.KSDistance, s.ksSort = stats.KSExponentialInto(s.res.Items(), s.ksSort)
	s.out.RejectsPoisson = s.out.KSDistance > stats.KSCriticalValue(len(s.res.Items()), 0.05)
	return &s.out, nil
}

// sampleStd is the unbiased sample standard deviation from a Welford M2
// accumulator over n samples.
func sampleStd(m2 float64, n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Sqrt(m2 / float64(n-1))
}

// BurstTracker is the online form of SummarizeBursts: it groups a
// time-ordered loss stream into drop bursts (gaps ≤ maxGap, the same rule
// as GroupBursts) as events arrive, maintaining the burst statistics
// without retaining the events. The distinct-flow set of the current
// burst is the only working storage, and it is recycled burst to burst
// and Reset to Reset.
type BurstTracker struct {
	maxGap sim.Duration
	last   sim.Time

	curSize  int
	curFlows map[int]struct{}

	bursts   int
	singles  int
	maxSize  int
	sumSize  int
	sumFlows int
}

// Reset prepares the tracker for a new run with the given clustering gap.
func (b *BurstTracker) Reset(maxGap sim.Duration) {
	b.maxGap = maxGap
	b.last = 0
	b.curSize = 0
	if b.curFlows == nil {
		b.curFlows = make(map[int]struct{}, 16)
	} else {
		clear(b.curFlows)
	}
	b.bursts, b.singles, b.maxSize, b.sumSize, b.sumFlows = 0, 0, 0, 0, 0
}

// Observe feeds one loss event (nondecreasing times).
func (b *BurstTracker) Observe(e trace.LossEvent) {
	if b.curSize > 0 && e.At.Sub(b.last) > b.maxGap {
		b.closeBurst()
	}
	b.curSize++
	b.curFlows[e.Flow] = struct{}{}
	b.last = e.At
}

func (b *BurstTracker) closeBurst() {
	b.bursts++
	b.sumSize += b.curSize
	b.sumFlows += len(b.curFlows)
	if b.curSize > b.maxSize {
		b.maxSize = b.curSize
	}
	if b.curSize == 1 {
		b.singles++
	}
	b.curSize = 0
	clear(b.curFlows)
}

// Stats closes the open burst and returns the summary — the same numbers
// SummarizeBursts computes from a retained trace. The tracker remains
// usable only after another Reset.
func (b *BurstTracker) Stats() BurstStats {
	if b.curSize > 0 {
		b.closeBurst()
	}
	if b.bursts == 0 {
		return BurstStats{}
	}
	return BurstStats{
		Bursts:        b.bursts,
		MeanSize:      float64(b.sumSize) / float64(b.bursts),
		MeanFlows:     float64(b.sumFlows) / float64(b.bursts),
		MaxSize:       b.maxSize,
		SingletonFrac: float64(b.singles) / float64(b.bursts),
	}
}
