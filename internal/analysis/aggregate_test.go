package analysis

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// synthWorld builds a deterministic per-world loss-time stream: each
// world has its own clock starting at zero and its own RTT, like fleet
// worlds do.
func synthWorld(seed uint64, n int, rtt sim.Duration) []sim.Time {
	times := make([]sim.Time, n)
	s := seed
	var t sim.Time
	for i := range times {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		// Bursty gaps: mostly sub-RTT, occasionally multi-RTT.
		gap := sim.Duration(z%uint64(rtt/20)) + 1
		if z%11 == 0 {
			gap += sim.Duration(z % uint64(3*rtt))
		}
		t += sim.Time(gap)
		times[i] = t
	}
	return times
}

// TestAggregateMatchesPooledSinglePass pins Aggregate against the pooled
// single-pass computation over the concatenated per-world intervals: the
// counting statistics exactly, the moment statistics to float tolerance.
func TestAggregateMatchesPooledSinglePass(t *testing.T) {
	type worldCase struct {
		times []sim.Time
		rtt   sim.Duration
	}
	worlds := []worldCase{
		{synthWorld(1, 400, 80*sim.Millisecond), 80 * sim.Millisecond},
		{synthWorld(2, 150, 200*sim.Millisecond), 200 * sim.Millisecond},
		{synthWorld(3, 800, 30*sim.Millisecond), 30 * sim.Millisecond},
	}

	agg := NewAggregate(Config{})
	var allIntervals []float64
	var pooledDisp stats.DispersionStats
	losses := 0
	for _, w := range worlds {
		an, err := NewStreaming(w.rtt, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range w.times {
			an.ObserveTime(at)
		}
		if err := agg.Absorb(an); err != nil {
			t.Fatal(err)
		}
		losses += len(w.times)
		rttF := float64(w.rtt)
		for i := 1; i < len(w.times); i++ {
			allIntervals = append(allIntervals, float64(w.times[i].Sub(w.times[i-1]))/rttF)
		}
		var c stats.DispersionCounter
		c.Reset(1.0)
		for _, at := range w.times {
			c.Observe(float64(at) / rttF)
		}
		pooledDisp.Merge(c.Stats())
	}

	rep, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	if rep.N != losses {
		t.Fatalf("N=%d, want %d", rep.N, losses)
	}
	count := len(allIntervals)

	// Histogram: exact equality with one histogram over the pooled stream.
	whole := stats.NewHistogram(0.02, 100)
	whole.AddAll(allIntervals)
	if rep.Hist.Total() != whole.Total() || rep.Hist.Overflow != whole.Overflow {
		t.Fatalf("hist total/overflow %d/%d, want %d/%d",
			rep.Hist.Total(), rep.Hist.Overflow, whole.Total(), whole.Overflow)
	}
	for i := 0; i < whole.NumBins(); i++ {
		if rep.Hist.Count(i) != whole.Count(i) {
			t.Fatalf("hist bin %d: %d, want %d", i, rep.Hist.Count(i), whole.Count(i))
		}
	}

	// Clustering fractions: exact.
	frac := func(limit float64) float64 {
		n := 0
		for _, x := range allIntervals {
			if x < limit {
				n++
			}
		}
		return float64(n) / float64(count)
	}
	if rep.FracBelow001 != frac(0.01) || rep.FracBelow025 != frac(0.25) || rep.FracBelow1 != frac(1.0) {
		t.Fatalf("fractions (%v,%v,%v) differ from exact pooled", rep.FracBelow001, rep.FracBelow025, rep.FracBelow1)
	}

	// Lambda: pooled arrival-order mean.
	var sum float64
	for _, x := range allIntervals {
		sum += x
	}
	if got, want := rep.Lambda, float64(count)/sum; math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Lambda %v, want %v", got, want)
	}

	// CoV: single Welford pass over the concatenated intervals.
	var mom stats.Moments
	for _, x := range allIntervals {
		mom.Observe(x)
	}
	mean := sum / float64(count)
	wantCoV := math.Sqrt(mom.M2/float64(count-1)) / mean
	if math.Abs(rep.CoV-wantCoV)/wantCoV > 1e-9 {
		t.Fatalf("CoV %v, want %v", rep.CoV, wantCoV)
	}

	// IoD: pooled per-world windows.
	if got, want := rep.IndexOfDispersion, pooledDisp.Value(); got != want {
		t.Fatalf("IoD %v, want pooled %v", got, want)
	}

	// KS: under the bound the merged reservoir holds every interval, so
	// the statistic equals the batch KS of the pooled sample.
	if !agg.KSExact() {
		t.Fatal("expected the pooled reservoir to stay exact")
	}
	if got, want := rep.KSDistance, stats.KSExponential(allIntervals); math.Abs(got-want) > 1e-12 {
		t.Fatalf("KS %v, want %v", got, want)
	}
}

// TestAggregateDeterministic pins byte-identical finalized reports for
// identical absorption sequences, including reuse through Reset.
func TestAggregateDeterministic(t *testing.T) {
	run := func(agg *Aggregate) string {
		agg.Reset(Config{KSReservoir: 64}) // force the approximate reservoir regime
		for w := uint64(0); w < 5; w++ {
			an, err := NewStreaming(50*sim.Millisecond, Config{KSReservoir: 64})
			if err != nil {
				t.Fatal(err)
			}
			for _, at := range synthWorld(10+w, 300, 50*sim.Millisecond) {
				an.ObserveTime(at)
			}
			if err := agg.Absorb(an); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := agg.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d %v %v %v %v %v %v %v %v",
			rep.N, rep.Lambda, rep.FracBelow001, rep.FracBelow025, rep.FracBelow1,
			rep.CoV, rep.IndexOfDispersion, rep.KSDistance, rep.Intervals)
	}
	agg := NewAggregate(Config{})
	if agg.KSExact() != true {
		t.Fatal("empty aggregate should be exact")
	}
	a, b := run(agg), run(agg)
	if a != b {
		t.Fatalf("identical absorption sequences produced different reports:\n%s\nvs\n%s", a, b)
	}
}

// TestAggregateRejectsLayoutMismatch pins the bin-layout guard.
func TestAggregateRejectsLayoutMismatch(t *testing.T) {
	agg := NewAggregate(Config{})
	an, err := NewStreaming(50*sim.Millisecond, Config{BinWidth: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Absorb(an); err == nil {
		t.Fatal("absorbing a mismatched bin layout should error")
	}
}

// TestBurstAggMatchesSingleTracker pins the pooled burst stats against
// one tracker fed every world's events on a common clock — the per-world
// reconstruction must recover the integer sums exactly.
func TestBurstAggMatchesSingleTracker(t *testing.T) {
	const gap = 10 * sim.Millisecond
	var agg BurstAgg
	var whole BurstTracker
	whole.Reset(gap)
	var offset sim.Time
	for w := uint64(20); w < 24; w++ {
		times := synthWorld(w, 120, 40*sim.Millisecond)
		var bt BurstTracker
		bt.Reset(gap)
		for i, at := range times {
			e := trace.LossEvent{At: at, Flow: int(w*100) + i%7}
			bt.Observe(e)
			// Offset worlds far apart on the common clock so world
			// boundaries never join bursts.
			e.At += offset
			whole.Observe(e)
		}
		offset += times[len(times)-1].Add(1000 * gap)
		agg.Add(bt.Stats())
	}
	got, want := agg.Stats(), whole.Stats()
	if got != want {
		t.Fatalf("pooled %+v, want single-tracker %+v", got, want)
	}
}
