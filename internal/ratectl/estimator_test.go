package ratectl

import (
	"testing"

	"repro/internal/sim"
)

// rampGroups feeds n groups whose one-way delay grows by slope ms per
// group (0 = flat), spaced 5 ms apart in send time, and returns the next
// arrival time.
func rampGroups(est GradientEstimator, start sim.Time, n int, slope float64) sim.Time {
	at := start
	for i := 0; i < n; i++ {
		extra := sim.Duration(slope * float64(ms))
		at = at.Add(5*ms + extra)
		est.Update(GroupDelta{
			SendDelta:    5 * ms,
			ArrivalDelta: 5*ms + extra,
			Arrival:      at,
		})
	}
	return at
}

// TestKalmanRampRecovery: a sustained 1 ms/group queuing ramp must drive
// the per-group state to ≈1 ms, and a return to flat deltas must bring it
// back near zero — the filter recovers rather than latching.
func TestKalmanRampRecovery(t *testing.T) {
	k := NewKalmanEstimator()
	at := rampGroups(k, sim.Time(ms), 80, 1.0)
	if got := k.RawOffset(); got < 0.5 || got > 1.5 {
		t.Fatalf("per-group offset after ramp = %.3f ms, want ≈1", got)
	}
	// The detector signal is the per-group offset scaled by the capped
	// observation count.
	if want := k.RawOffset() * kalmanMaxDeltas; k.Offset() != want {
		t.Fatalf("Offset() = %.3f, want scaled %.3f", k.Offset(), want)
	}
	rampGroups(k, at, 400, 0)
	if got := k.RawOffset(); got < -0.2 || got > 0.2 {
		t.Fatalf("per-group offset after recovery = %.3f ms, want ≈0", got)
	}
}

// TestTrendlineRampRecovery: same property for the regression filter.
func TestTrendlineRampRecovery(t *testing.T) {
	tr := NewTrendlineEstimator()
	at := rampGroups(tr, sim.Time(ms), 80, 1.0)
	if got := tr.Offset(); got < 5 {
		t.Fatalf("trendline offset after ramp = %.3f, want strongly positive", got)
	}
	rampGroups(tr, at, 400, 0)
	if got := tr.Offset(); got < -1 || got > 1 {
		t.Fatalf("trendline offset after recovery = %.3f, want ≈0", got)
	}
}

// TestEstimatorSignAgreement is the differential property the two filters
// must share: under seeded random jitter with a small consistent drift,
// both report an offset whose sign matches the drift.
func TestEstimatorSignAgreement(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, drift := range []float64{0.4, -0.4} {
			k := NewKalmanEstimator()
			tr := NewTrendlineEstimator()
			rng := sim.NewRand(seed)
			at := sim.Time(ms)
			for i := 0; i < 300; i++ {
				jitter := (rng.Float64()*2 - 1) * 1.5 // U(−1.5, 1.5) ms
				extra := sim.Duration((drift + jitter) * float64(ms))
				at = at.Add(5*ms + extra)
				d := GroupDelta{SendDelta: 5 * ms, ArrivalDelta: 5*ms + extra, Arrival: at}
				k.Update(d)
				tr.Update(d)
			}
			if drift > 0 {
				if k.Offset() <= 0 || tr.Offset() <= 0 {
					t.Fatalf("seed %d drift %+.1f: kalman %.3f, trendline %.3f — want both positive",
						seed, drift, k.Offset(), tr.Offset())
				}
			} else {
				if k.Offset() >= 0 || tr.Offset() >= 0 {
					t.Fatalf("seed %d drift %+.1f: kalman %.3f, trendline %.3f — want both negative",
						seed, drift, k.Offset(), tr.Offset())
				}
			}
		}
	}
}

// TestEstimatorReset: both filters rewind to a zero offset.
func TestEstimatorReset(t *testing.T) {
	for _, est := range []GradientEstimator{NewKalmanEstimator(), NewTrendlineEstimator()} {
		rampGroups(est, sim.Time(ms), 50, 1.0)
		if est.Offset() == 0 {
			t.Fatalf("%T: setup produced no offset", est)
		}
		est.Reset()
		if est.Offset() != 0 {
			t.Fatalf("%T: Offset after Reset = %.3f, want 0", est, est.Offset())
		}
	}
}

// TestGroupingFragmentationInvariant: the burst grouper's boundaries and
// deltas depend only on timestamps, so splitting packets into
// same-timestamp fragments — or feeding a tight burst slightly out of
// order — produces the identical GroupDelta sequence.
func TestGroupingFragmentationInvariant(t *testing.T) {
	type pkt struct {
		send, arrive sim.Time
		size         int
	}
	// Bursts of three packets 1 ms apart (well inside BurstWindow),
	// bursts separated by 10 ms. Arrival = send + 20 ms + a per-burst
	// queue term so the deltas are non-trivial.
	var whole []pkt
	for b := 0; b < 8; b++ {
		base := sim.Time(ms).Add(sim.Duration(b) * 10 * ms)
		queue := sim.Duration(b%3) * ms
		for i := 0; i < 3; i++ {
			s := base.Add(sim.Duration(i) * ms)
			whole = append(whole, pkt{send: s, arrive: s.Add(20*ms + queue), size: 900})
		}
	}
	// Fragmented: every packet split into three same-timestamp thirds.
	var frag []pkt
	for _, p := range whole {
		for i := 0; i < 3; i++ {
			frag = append(frag, pkt{send: p.send, arrive: p.arrive, size: p.size / 3})
		}
	}
	// Shuffled: within each burst, feed the packets last-first. Every
	// inter-burst gap exceeds BurstWindow from every member, so boundaries
	// cannot move.
	var shuffled []pkt
	for b := 0; b < len(whole); b += 3 {
		shuffled = append(shuffled, whole[b+2], whole[b], whole[b+1])
	}

	collect := func(pkts []pkt) []GroupDelta {
		var ia InterArrival
		var out []GroupDelta
		for _, p := range pkts {
			if d, ok := ia.Add(p.send, p.arrive, p.size); ok {
				out = append(out, d)
			}
		}
		return out
	}
	ref := collect(whole)
	if len(ref) == 0 {
		t.Fatalf("reference produced no groups")
	}
	for name, variant := range map[string][]pkt{"fragmented": frag, "shuffled": shuffled} {
		got := collect(variant)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d groups, want %d", name, len(got), len(ref))
		}
		for i := range ref {
			if got[i].SendDelta != ref[i].SendDelta || got[i].ArrivalDelta != ref[i].ArrivalDelta ||
				got[i].Arrival != ref[i].Arrival || got[i].SizeDelta != ref[i].SizeDelta {
				t.Fatalf("%s: group %d = %+v, want %+v", name, i, got[i], ref[i])
			}
		}
	}
}

// TestGroupingBurstWindow: packets inside the send-time window join the
// group; the first packet beyond it opens a new one and completes the
// comparison.
func TestGroupingBurstWindow(t *testing.T) {
	var ia InterArrival
	base := sim.Time(ms)
	if _, ok := ia.Add(base, base.Add(20*ms), 100); ok {
		t.Fatalf("first packet completed a group")
	}
	if _, ok := ia.Add(base.Add(BurstWindow), base.Add(21*ms), 100); ok {
		t.Fatalf("packet at the window edge should extend, not complete")
	}
	if _, ok := ia.Add(base.Add(BurstWindow+ms), base.Add(22*ms), 100); ok {
		t.Fatalf("second group open: no comparison exists yet")
	}
	d, ok := ia.Add(base.Add(3*BurstWindow), base.Add(30*ms), 100)
	if !ok {
		t.Fatalf("third group should complete the first comparison")
	}
	if d.SendDelta != ms || d.ArrivalDelta != ms {
		t.Fatalf("deltas = %+v, want send/arrival 1ms", d)
	}
}
