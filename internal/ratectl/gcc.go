package ratectl

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// EstimatorKind selects the receiver's delay-gradient filter.
type EstimatorKind uint8

// Estimator choices.
const (
	// EstimatorKalman uses the scalar Kalman arrival-time filter.
	EstimatorKalman EstimatorKind = iota
	// EstimatorTrendline uses the linear-regression trendline filter.
	EstimatorTrendline
)

// GCCConfig parameterizes a delay-based (GCC-style) sender/receiver pair.
// Src/Dst are the sender's addresses, like TFRCConfig; the receiver swaps
// them for feedback.
type GCCConfig struct {
	Flow int
	Src  int
	Dst  int

	PktSize int // bytes (default 1000)

	// InitialRTT seeds the sender's pacing before the first feedback
	// (default 100 ms).
	InitialRTT sim.Duration
	// InitialRate is the starting target in bytes/second (default 125000,
	// i.e. 1 Mbps).
	InitialRate float64
	// MinRate floors the target in bytes/second (default 12500).
	MinRate float64
	// MaxRate caps the target in bytes/second (default none).
	MaxRate float64
	// FeedbackInterval is the receiver's report cadence (default 100 ms).
	FeedbackInterval sim.Duration
	// Estimator selects the delay-gradient filter (default Kalman).
	Estimator EstimatorKind
	// Seed desynchronizes the flow's feedback phase: the first report is
	// jittered by a SubSeed-derived fraction of the interval, so flows
	// sharing a bottleneck do not report in lockstep. Part of the world's
	// SubSeed chain — equal (config, seed) means an identical flow.
	Seed int64
	// Pool, when set, supplies data and feedback packets — the world's
	// shared freelist. Nil means plain allocation.
	Pool *netsim.PacketPool
}

func (c *GCCConfig) fillDefaults() {
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 100 * sim.Millisecond
	}
	if c.InitialRate == 0 {
		c.InitialRate = 125_000
	}
	if c.MinRate == 0 {
		c.MinRate = 12_500
	}
	if c.FeedbackInterval == 0 {
		c.FeedbackInterval = 50 * sim.Millisecond
	}
}

// GCCSender paces data packets at the receiver-reported target rate. Loss
// never touches the rate — the delay gradient is the only congestion
// signal, which is exactly the property the loss-vs-delay showdown
// measures. It implements netsim.Handler for feedback packets.
type GCCSender struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   GCCConfig

	rate    float64 // bytes/second
	rtt     sim.Duration
	hasRTT  bool
	seq     int64
	pktID   uint64
	running bool
	timer   sim.Timer
	nfTimer sim.Timer

	// Precreated timer callbacks keep the steady-state emit/rearm loop
	// allocation-free (the scheduler's event freelist does the rest).
	emitFn  func()
	nfFn    func()
	startFn func()

	// Statistics.
	Sent       uint64
	FeedbackIn uint64

	// OnRate observes every applied feedback target (rate-trace tests and
	// the showdown's rate sampling). Nil-safe.
	OnRate func(rate float64, at sim.Time)
}

// NewGCCSender builds a delay-based source injecting into out (normally
// the sender-side node).
func NewGCCSender(sched *sim.Scheduler, out netsim.Handler, cfg GCCConfig) *GCCSender {
	if sched == nil || out == nil {
		panic("ratectl: NewGCCSender requires scheduler and output")
	}
	s := &GCCSender{sched: sched, out: out}
	s.emitFn = s.onEmit
	s.nfFn = s.onNoFeedback
	s.startFn = s.Start
	s.Reset(cfg)
	return s
}

// Reset rewinds the sender to the state NewGCCSender(sched, out, cfg)
// would produce, keeping the scheduler, output and precreated callbacks.
// The owning scheduler must have been reset first.
func (s *GCCSender) Reset(cfg GCCConfig) {
	cfg.fillDefaults()
	s.cfg = cfg
	s.rate = cfg.InitialRate
	s.rtt = cfg.InitialRTT
	s.hasRTT = false
	s.seq = 0
	s.pktID = 0
	s.running = false
	s.timer = sim.Timer{}
	s.nfTimer = sim.Timer{}
	s.Sent = 0
	s.FeedbackIn = 0
	s.OnRate = nil
}

// Rate reports the current sending rate in bytes/second.
func (s *GCCSender) Rate() float64 { return s.rate }

// RTT reports the current RTT estimate.
func (s *GCCSender) RTT() sim.Duration { return s.rtt }

// Start begins transmission.
func (s *GCCSender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.armNoFeedback()
	s.onEmit()
}

// Stop halts transmission.
func (s *GCCSender) Stop() {
	s.running = false
	s.sched.Cancel(s.timer)
	s.timer = sim.Timer{}
	s.sched.Cancel(s.nfTimer)
	s.nfTimer = sim.Timer{}
}

func (s *GCCSender) onEmit() {
	s.timer = sim.Timer{}
	if !s.running {
		return
	}
	s.pktID++
	p := s.cfg.Pool.Get()
	p.ID = s.pktID
	p.Flow = s.cfg.Flow
	p.Kind = netsim.Data
	p.Size = s.cfg.PktSize
	p.Seq = s.seq
	p.Src = s.cfg.Src
	p.Dst = s.cfg.Dst
	p.SendTime = s.sched.Now()
	s.seq++
	s.Sent++
	s.out.Handle(p)
	gap := sim.Duration(float64(s.cfg.PktSize) / s.rate * float64(sim.Second))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	s.timer = s.sched.After(gap, s.emitFn)
}

// Handle implements netsim.Handler: apply a receiver report. The sender is
// the feedback packet's final consumer and recycles it.
func (s *GCCSender) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Feedback || !p.HasRateFB || p.Flow != s.cfg.Flow {
		s.cfg.Pool.Put(p)
		return
	}
	s.FeedbackIn++
	fb := p.RateFB
	s.cfg.Pool.Put(p)

	if sample := s.sched.Now().Sub(fb.Timestamp) - fb.Delay; sample > 0 {
		if !s.hasRTT {
			s.rtt = sample
			s.hasRTT = true
		} else {
			s.rtt = sim.Duration(0.9*float64(s.rtt) + 0.1*float64(sample))
		}
	}

	rate := fb.TargetRate
	if rate < s.cfg.MinRate {
		rate = s.cfg.MinRate
	}
	if s.cfg.MaxRate > 0 && rate > s.cfg.MaxRate {
		rate = s.cfg.MaxRate
	}
	s.rate = rate
	if s.OnRate != nil {
		s.OnRate(s.rate, s.sched.Now())
	}
	s.armNoFeedback()
}

// armNoFeedback (re)arms the report-loss safety valve: with no receiver
// report for 8 feedback intervals (a reverse-path outage) the rate halves,
// so a sender cannot keep blasting a dead path at its last known target.
func (s *GCCSender) armNoFeedback() {
	s.sched.Cancel(s.nfTimer)
	s.nfTimer = s.sched.After(8*s.cfg.FeedbackInterval, s.nfFn)
}

func (s *GCCSender) onNoFeedback() {
	s.nfTimer = sim.Timer{}
	if !s.running {
		return
	}
	s.rate /= 2
	if s.rate < s.cfg.MinRate {
		s.rate = s.cfg.MinRate
	}
	if s.OnRate != nil {
		s.OnRate(s.rate, s.sched.Now())
	}
	s.armNoFeedback()
}

// rateWindow is the receive-rate measurement window.
const rateWindow = 100 * sim.Millisecond

// GCCReceiver runs the receiver-side pipeline: inter-arrival packet-group
// grouping, a delay-gradient estimator (Kalman or trendline), the adaptive
// threshold overuse detector and the AIMD controller, with the resulting
// target rate reported back on the feedback cadence. Why receiver-side:
// the one-way delay gradient needs the arrival timestamps, and computing
// it where they are taken avoids shipping a timestamp per packet back to
// the sender — the REMB-style architecture the GCC draft specifies. It
// implements netsim.Handler for arriving data packets.
type GCCReceiver struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   GCCConfig

	ia      InterArrival
	kalman  KalmanEstimator
	trend   TrendlineEstimator
	est     GradientEstimator // points at kalman or trend; no allocation
	det     OveruseDetector
	aimd    AIMDController
	lossCtl LossController
	pktID   uint64
	fbTimer sim.Timer
	fbFn    func()
	running bool

	lastDataSend    sim.Time // SendTime of the newest data packet
	lastDataArrival sim.Time

	// Receive-rate measurement: bytes accumulated over rateWindow spans.
	winStart sim.Time
	winBytes int64
	recvRate float64 // last completed window's rate, bytes/second

	// Per-report loss accounting for the loss-based backstop: data
	// sequence numbers are gapless at the sender, so max-seq deltas give
	// the offered count and arrivals the delivered count.
	maxSeq     int64 // highest sequence seen, -1 before any data
	fbMaxSeq   int64 // maxSeq at the previous report
	fbReceived int64 // arrivals since the previous report

	// Statistics.
	Received   uint64
	BytesIn    uint64
	Groups     uint64
	Overuses   uint64 // detector verdicts of overuse at group completion
	AppliedFB  uint64 // feedback packets emitted
	LastTarget float64

	// OnData observes every arriving data packet (delay/goodput
	// accounting in the showdown). Observers must copy, not retain.
	OnData func(p *netsim.Packet, at sim.Time)
}

// NewGCCReceiver builds the receiver; out is where feedback packets are
// injected (normally the receiver-side node).
func NewGCCReceiver(sched *sim.Scheduler, out netsim.Handler, cfg GCCConfig) *GCCReceiver {
	if sched == nil || out == nil {
		panic("ratectl: NewGCCReceiver requires scheduler and output")
	}
	r := &GCCReceiver{sched: sched, out: out}
	r.fbFn = r.onFeedbackTick
	r.Reset(cfg)
	return r
}

// Reset rewinds the receiver — grouper, both estimators, detector, AIMD
// state, rate window and statistics — to the state NewGCCReceiver(sched,
// out, cfg) would produce. The owning scheduler must have been reset
// first. Every piece of filter state is rewound here; sweep replications
// through a cached world must not leak gradients across runs (pinned by
// TestRatectlResetRateTrace).
func (r *GCCReceiver) Reset(cfg GCCConfig) {
	cfg.fillDefaults()
	r.cfg = cfg
	r.ia.Reset()
	r.kalman.Reset()
	r.trend.Reset()
	if cfg.Estimator == EstimatorTrendline {
		r.est = &r.trend
	} else {
		r.est = &r.kalman
	}
	r.det.Reset()
	r.aimd.Reset(cfg.InitialRate, cfg.MinRate, cfg.MaxRate)
	r.lossCtl.Reset(cfg.InitialRate, cfg.MinRate, cfg.MaxRate)
	r.maxSeq = -1
	r.fbMaxSeq = -1
	r.fbReceived = 0
	r.pktID = 0
	r.fbTimer = sim.Timer{}
	r.running = false
	r.lastDataSend = 0
	r.lastDataArrival = 0
	r.winStart = 0
	r.winBytes = 0
	r.recvRate = 0
	r.Received = 0
	r.BytesIn = 0
	r.Groups = 0
	r.Overuses = 0
	r.AppliedFB = 0
	r.LastTarget = 0
	r.OnData = nil
}

// TargetRate reports the controller's current target in bytes/second:
// the minimum of the delay-based AIMD target and the loss-based backstop.
func (r *GCCReceiver) TargetRate() float64 {
	t := r.aimd.Rate()
	if l := r.lossCtl.Rate(); l < t {
		t = l
	}
	return t
}

// DetectorState reports the overuse detector's current verdict.
func (r *GCCReceiver) DetectorState() State { return r.det.State() }

// Handle implements netsim.Handler for arriving data packets; the receiver
// is their final consumer.
func (r *GCCReceiver) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Data || p.Flow != r.cfg.Flow {
		r.cfg.Pool.Put(p)
		return
	}
	now := r.sched.Now()
	r.Received++
	r.BytesIn += uint64(p.Size)
	if r.OnData != nil {
		r.OnData(p, now)
	}
	r.lastDataSend = p.SendTime
	r.lastDataArrival = now
	if p.Seq > r.maxSeq {
		r.maxSeq = p.Seq
	}
	r.fbReceived++

	// Receive-rate window.
	if r.winStart == 0 {
		r.winStart = now
	}
	r.winBytes += int64(p.Size)
	if elapsed := now.Sub(r.winStart); elapsed >= rateWindow {
		r.recvRate = float64(r.winBytes) / elapsed.Seconds()
		r.winStart = now
		r.winBytes = 0
	}

	// The pipeline: group → gradient → detector → AIMD.
	if d, ok := r.ia.Add(p.SendTime, now, p.Size); ok {
		r.Groups++
		offset := r.est.Update(d)
		state := r.det.Update(offset, now)
		if state == StateOveruse {
			r.Overuses++
		}
		r.LastTarget = r.aimd.Update(state, r.recvRate, now)
	}
	r.cfg.Pool.Put(p)

	if !r.running {
		r.running = true
		r.scheduleFirstFeedback()
	}
}

// scheduleFirstFeedback arms the report timer with the seeded phase
// jitter, so co-located flows spread their reports over the interval.
func (r *GCCReceiver) scheduleFirstFeedback() {
	jitter := sim.Duration(uint64(sim.SubSeed(r.cfg.Seed, 1)) % uint64(r.cfg.FeedbackInterval))
	r.fbTimer = r.sched.After(r.cfg.FeedbackInterval/2+jitter/2, r.fbFn)
}

func (r *GCCReceiver) onFeedbackTick() {
	r.fbTimer = sim.Timer{}
	if !r.running {
		return
	}
	r.sendFeedback()
	r.fbTimer = r.sched.After(r.cfg.FeedbackInterval, r.fbFn)
}

func (r *GCCReceiver) sendFeedback() {
	now := r.sched.Now()

	// Fold this report interval's loss fraction into the backstop.
	if r.fbMaxSeq >= 0 && r.maxSeq > r.fbMaxSeq {
		offered := r.maxSeq - r.fbMaxSeq
		lost := offered - r.fbReceived
		if lost < 0 {
			lost = 0
		}
		r.lossCtl.Update(float64(lost)/float64(offered), r.recvRate)
	}
	r.fbMaxSeq = r.maxSeq
	r.fbReceived = 0

	r.pktID++
	p := r.cfg.Pool.Get()
	p.ID = r.pktID
	p.Flow = r.cfg.Flow
	p.Kind = netsim.Feedback
	p.Size = 40
	p.Src = r.cfg.Dst // receiver address
	p.Dst = r.cfg.Src // back to the sender
	p.SendTime = now
	p.HasRateFB = true
	p.RateFB = netsim.RateFeedback{
		TargetRate: r.TargetRate(),
		RecvRate:   r.recvRate,
		Timestamp:  r.lastDataSend,
		Delay:      now.Sub(r.lastDataArrival),
	}
	r.AppliedFB++
	r.out.Handle(p)
}

// Stop halts feedback.
func (r *GCCReceiver) Stop() {
	r.running = false
	r.sched.Cancel(r.fbTimer)
	r.fbTimer = sim.Timer{}
}

// GCCFlow bundles a delay-based sender/receiver pair wired onto a
// topology's endpoint nodes, mirroring tcp.Flow.
type GCCFlow struct {
	Sender   *GCCSender
	Receiver *GCCReceiver
}

// NewGCCFlow wires a delay-based flow between two endpoint nodes. The
// supplied cfg's Flow/Src/Dst fields are filled in from the flow id and
// the nodes' addresses; other fields are respected.
func NewGCCFlow(sched *sim.Scheduler, snd, rcv *netsim.Node, flowID int, cfg GCCConfig) *GCCFlow {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr
	s := NewGCCSender(sched, snd, cfg)
	r := NewGCCReceiver(sched, rcv, cfg)
	snd.Bind(flowID, s)
	rcv.Bind(flowID, r)
	return &GCCFlow{Sender: s, Receiver: r}
}

// ResetPair rewinds a flow built by NewGCCFlow for another run on a reset
// world, re-binding onto the given nodes (a world reset strips transport
// bindings). The scheduler must have been reset alongside the world.
func (f *GCCFlow) ResetPair(snd, rcv *netsim.Node, flowID int, cfg GCCConfig) {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr
	f.Sender.Reset(cfg)
	f.Receiver.Reset(cfg)
	snd.Bind(flowID, f.Sender)
	rcv.Bind(flowID, f.Receiver)
}

// StartAt schedules the flow to begin at the given simulated time.
func (f *GCCFlow) StartAt(sched *sim.Scheduler, at sim.Time) {
	if at <= sched.Now() {
		f.Sender.Start()
		return
	}
	sched.At(at, f.Sender.startFn)
}
