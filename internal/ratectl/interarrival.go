package ratectl

import "repro/internal/sim"

// BurstWindow is the send-time span that folds packets into one packet
// group: packets transmitted within 5 ms of the group's first packet are
// one burst, the granularity at which the delay-gradient estimators see
// the path (per-packet inter-arrival times are dominated by serialization
// jitter; per-group deltas isolate the queue's contribution).
const BurstWindow = 5 * sim.Millisecond

// GroupDelta is one completed packet-group comparison: the change in send
// time, arrival time and carried bytes between two consecutive groups.
// ArrivalDelta − SendDelta is the inter-group one-way delay variation the
// estimators filter.
type GroupDelta struct {
	SendDelta    sim.Duration
	ArrivalDelta sim.Duration
	SizeDelta    int
	// Arrival is the last-arrival time of the newer group, the time axis
	// of the trendline window and the threshold adaptation.
	Arrival sim.Time
}

// group accumulates one in-progress packet group. Boundary decisions and
// deltas depend only on first/last timestamps, never on packet count or
// size, so splitting a packet into same-timestamp fragments leaves the
// grouping invariant (pinned by TestGroupingFragmentationInvariant).
type group struct {
	firstSend   sim.Time
	lastSend    sim.Time
	lastArrival sim.Time
	size        int
}

// InterArrival groups arriving packets into send-time bursts and emits a
// GroupDelta every time a group completes. The zero value is ready to use;
// it allocates nothing, ever.
type InterArrival struct {
	cur, prev group
	haveCur   bool
	havePrev  bool
}

// Reset rewinds the grouper to its zero state.
func (ia *InterArrival) Reset() { *ia = InterArrival{} }

// Add feeds one arriving packet. When the packet opens a new group the
// previous two groups' comparison is returned with ok=true.
func (ia *InterArrival) Add(sendTime, arrival sim.Time, size int) (d GroupDelta, ok bool) {
	if !ia.haveCur {
		ia.haveCur = true
		ia.cur = group{firstSend: sendTime, lastSend: sendTime, lastArrival: arrival, size: size}
		return GroupDelta{}, false
	}
	if sendTime.Sub(ia.cur.firstSend) <= BurstWindow {
		// Same burst: extend. Out-of-order timestamps within the window
		// only ever grow the group's span, keeping Add order-insensitive.
		if sendTime > ia.cur.lastSend {
			ia.cur.lastSend = sendTime
		}
		if arrival > ia.cur.lastArrival {
			ia.cur.lastArrival = arrival
		}
		ia.cur.size += size
		return GroupDelta{}, false
	}
	// New group: compare the two completed ones if both exist.
	if ia.havePrev {
		d = GroupDelta{
			SendDelta:    ia.cur.lastSend.Sub(ia.prev.lastSend),
			ArrivalDelta: ia.cur.lastArrival.Sub(ia.prev.lastArrival),
			SizeDelta:    ia.cur.size - ia.prev.size,
			Arrival:      ia.cur.lastArrival,
		}
		ok = true
	}
	ia.prev = ia.cur
	ia.havePrev = true
	ia.cur = group{firstSend: sendTime, lastSend: sendTime, lastArrival: arrival, size: size}
	return d, ok
}
