package ratectl

import (
	"testing"

	"repro/internal/sim"
)

const ms = sim.Millisecond

// feedOveruse drives the detector into StateOveruse: a sustained,
// non-decreasing offset above the threshold for longer than the hold time.
// Returns the next free timestamp.
func feedOveruse(t *testing.T, d *OveruseDetector, at sim.Time) sim.Time {
	t.Helper()
	off := d.Threshold() + 5
	for i := 0; i < 4; i++ {
		d.Update(off, at)
		at = at.Add(5 * ms)
	}
	if d.State() != StateOveruse {
		t.Fatalf("setup: wanted overuse, got %v", d.State())
	}
	return at
}

// feedUnderuse drives the detector into StateUnderuse (immediate).
func feedUnderuse(t *testing.T, d *OveruseDetector, at sim.Time) sim.Time {
	t.Helper()
	d.Update(-d.Threshold()-5, at)
	if d.State() != StateUnderuse {
		t.Fatalf("setup: wanted underuse, got %v", d.State())
	}
	return at.Add(5 * ms)
}

// TestDetectorStateMachine drives every starting state through every signal
// class and checks the resulting verdict.
func TestDetectorStateMachine(t *testing.T) {
	type signal int
	const (
		sigSustainedAbove signal = iota // above γ, non-decreasing, > hold time
		sigBriefAbove                   // a single group above γ
		sigBelow                        // below −γ
		sigInside                       // inside the dead band
	)
	cases := []struct {
		name  string
		start State
		sig   signal
		want  State
	}{
		{"normal+sustained→overuse", StateNormal, sigSustainedAbove, StateOveruse},
		{"normal+brief→normal", StateNormal, sigBriefAbove, StateNormal},
		{"normal+below→underuse", StateNormal, sigBelow, StateUnderuse},
		{"normal+inside→normal", StateNormal, sigInside, StateNormal},
		{"overuse+sustained→overuse", StateOveruse, sigSustainedAbove, StateOveruse},
		{"overuse+brief→overuse", StateOveruse, sigBriefAbove, StateOveruse},
		{"overuse+below→underuse", StateOveruse, sigBelow, StateUnderuse},
		{"overuse+inside→normal", StateOveruse, sigInside, StateNormal},
		{"underuse+sustained→overuse", StateUnderuse, sigSustainedAbove, StateOveruse},
		{"underuse+brief→underuse", StateUnderuse, sigBriefAbove, StateUnderuse},
		{"underuse+below→underuse", StateUnderuse, sigBelow, StateUnderuse},
		{"underuse+inside→normal", StateUnderuse, sigInside, StateNormal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewOveruseDetector()
			at := sim.Time(ms)
			switch tc.start {
			case StateOveruse:
				at = feedOveruse(t, d, at)
			case StateUnderuse:
				at = feedUnderuse(t, d, at)
			}
			switch tc.sig {
			case sigSustainedAbove:
				off := d.Threshold() + 5
				// A fresh above-threshold episode: the hold-time clock
				// starts at the first above-γ group.
				for i := 0; i < 4; i++ {
					d.Update(off, at)
					at = at.Add(5 * ms)
				}
			case sigBriefAbove:
				// From overuse the detector is already above γ; one more
				// group continues the episode. From other states a single
				// above-γ group is a flap the hold time must suppress.
				d.Update(d.Threshold()+5, at)
			case sigBelow:
				d.Update(-d.Threshold()-5, at)
			case sigInside:
				d.Update(0, at)
			}
			if got := d.State(); got != tc.want {
				t.Fatalf("state = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDetectorHoldTime pins the flap suppression: alternating above/inside
// groups never declare overuse, because each dip resets the hold clock.
func TestDetectorHoldTime(t *testing.T) {
	d := NewOveruseDetector()
	at := sim.Time(ms)
	for i := 0; i < 50; i++ {
		d.Update(d.Threshold()+5, at)
		at = at.Add(5 * ms)
		d.Update(0, at)
		at = at.Add(5 * ms)
	}
	if d.State() == StateOveruse || d.OveruseHits != 0 {
		t.Fatalf("flapping signal declared overuse (state %v, hits %d)", d.State(), d.OveruseHits)
	}

	// A decreasing offset above γ must not declare either, however long it
	// persists: overuse requires the queue to still be growing.
	d.Reset()
	at = sim.Time(ms)
	off := d.Threshold() + 10
	for i := 0; i < 20; i++ {
		d.Update(off, at)
		at = at.Add(5 * ms)
		off -= 0.2
	}
	if d.State() == StateOveruse {
		t.Fatalf("decreasing offset declared overuse")
	}
}

// TestDetectorThresholdDrift checks the adaptation: γ chases |offset| up
// slowly while violated, decays down faster inside the band, clamps at the
// floor, and skips wild outliers entirely.
func TestDetectorThresholdDrift(t *testing.T) {
	t.Run("up", func(t *testing.T) {
		d := NewOveruseDetector()
		g0 := d.Threshold()
		at := sim.Time(ms)
		for i := 0; i < 100; i++ {
			d.Update(g0+10, at) // above γ, below the outlier cap
			at = at.Add(5 * ms)
		}
		if g := d.Threshold(); g <= g0 || g > g0+10 {
			t.Fatalf("threshold after sustained violation = %.2f, want in (%.2f, %.2f]", g, g0, g0+10)
		}
	})
	t.Run("down-to-floor", func(t *testing.T) {
		d := NewOveruseDetector()
		at := sim.Time(ms)
		for i := 0; i < 2000; i++ {
			d.Update(0, at)
			at = at.Add(5 * ms)
		}
		if g := d.Threshold(); g != detectorMinThreshold {
			t.Fatalf("threshold after long quiet = %.2f, want floor %.2f", g, detectorMinThreshold)
		}
	})
	t.Run("down-faster-than-up", func(t *testing.T) {
		up := NewOveruseDetector()
		down := NewOveruseDetector()
		at := sim.Time(ms)
		for i := 0; i < 20; i++ {
			up.Update(up.Threshold()+5, at) // +5 off the band edge
			down.Update(down.Threshold()-5, at)
			at = at.Add(5 * ms)
		}
		rise := up.Threshold() - detectorInitialThreshold
		fall := detectorInitialThreshold - down.Threshold()
		if rise <= 0 || fall <= 0 || fall <= rise {
			t.Fatalf("adaptation asymmetry: rise %.3f, fall %.3f — want 0 < rise < fall", rise, fall)
		}
	})
	t.Run("outlier-skipped", func(t *testing.T) {
		d := NewOveruseDetector()
		g0 := d.Threshold()
		at := sim.Time(ms)
		d.Update(0, at) // prime lastUpdate
		for i := 0; i < 50; i++ {
			at = at.Add(5 * ms)
			d.Update(g0+detectorAdaptCap+50, at)
		}
		if g := d.Threshold(); g != g0 {
			t.Fatalf("outlier offsets moved the threshold: %.2f → %.2f", g0, g)
		}
	})
	t.Run("adapt-step-bounded", func(t *testing.T) {
		d := NewOveruseDetector()
		g0 := d.Threshold()
		d.Update(g0+10, sim.Time(ms))
		// A huge arrival gap must contribute at most detectorMaxAdaptStep
		// milliseconds of drift.
		d.Update(g0+10, sim.Time(ms).Add(30*sim.Second))
		maxRise := detectorKUp * 10 * detectorMaxAdaptStep
		if rise := d.Threshold() - g0; rise <= 0 || rise > maxRise+1e-9 {
			t.Fatalf("threshold rise over idle gap = %.3f, want in (0, %.3f]", rise, maxRise)
		}
	})
}

// TestDetectorReset pins that Reset rewinds state, threshold and counters.
func TestDetectorReset(t *testing.T) {
	d := NewOveruseDetector()
	at := feedOveruse(t, d, sim.Time(ms))
	feedUnderuse(t, d, at)
	if d.Transitions == 0 {
		t.Fatalf("setup produced no transitions")
	}
	d.Reset()
	if d.State() != StateNormal || d.Threshold() != detectorInitialThreshold ||
		d.Transitions != 0 || d.OveruseHits != 0 {
		t.Fatalf("Reset left state behind: %+v", d)
	}
}
