package ratectl

import (
	"math"
	"testing"

	"repro/internal/sim"
)

const ampleRecv = 1e12 // recvRate high enough that the 1.5× cap never binds

// TestAIMDTransitionTable drives each detector verdict from each operating
// region and checks the observable region/rate behavior.
func TestAIMDTransitionTable(t *testing.T) {
	t.Run("hold+normal→increase", func(t *testing.T) {
		c := NewAIMDController(1e5, 1e4, 0)
		c.Update(StateNormal, ampleRecv, sim.Time(sim.Second))
		if c.RateRegion() != RateIncrease {
			t.Fatalf("region = %v, want increase", c.RateRegion())
		}
	})
	t.Run("hold+underuse→hold", func(t *testing.T) {
		c := NewAIMDController(1e5, 1e4, 0)
		c.Update(StateUnderuse, ampleRecv, sim.Time(sim.Second))
		if c.RateRegion() != RateHold || c.Rate() != 1e5 {
			t.Fatalf("region %v rate %.0f, want hold at 1e5", c.RateRegion(), c.Rate())
		}
	})
	t.Run("increase+underuse→hold", func(t *testing.T) {
		c := NewAIMDController(1e5, 1e4, 0)
		c.Update(StateNormal, ampleRecv, sim.Time(sim.Second))
		r := c.Rate()
		c.Update(StateUnderuse, ampleRecv, sim.Time(2*sim.Second))
		if c.RateRegion() != RateHold || c.Rate() != r {
			t.Fatalf("region %v rate %.0f, want hold at %.0f", c.RateRegion(), c.Rate(), r)
		}
	})
	t.Run("overuse→decrease-then-hold", func(t *testing.T) {
		c := NewAIMDController(1e6, 1e4, 0)
		c.Update(StateOveruse, 1e6, sim.Time(sim.Second))
		if got, want := c.Rate(), aimdBeta*1e6; got != want {
			t.Fatalf("rate after overuse = %.0f, want β·recvRate = %.0f", got, want)
		}
		if c.RateRegion() != RateHold || c.Decreases != 1 {
			t.Fatalf("region %v decreases %d, want hold after one cut", c.RateRegion(), c.Decreases)
		}
		// The cut is acted on once: staying in overuse cuts again from the
		// new recvRate, never compounding from the old target.
		c.Update(StateOveruse, 5e5, sim.Time(2*sim.Second))
		if got, want := c.Rate(), aimdBeta*5e5; got != want {
			t.Fatalf("second cut = %.0f, want %.0f", got, want)
		}
	})
	t.Run("decrease-hold+normal→increase", func(t *testing.T) {
		c := NewAIMDController(1e6, 1e4, 0)
		c.Update(StateOveruse, 1e6, sim.Time(sim.Second))
		r := c.Rate()
		c.Update(StateNormal, ampleRecv, sim.Time(sim.Second).Add(100*ms))
		if c.RateRegion() != RateIncrease || c.Rate() <= r {
			t.Fatalf("region %v rate %.0f, want growing increase above %.0f", c.RateRegion(), c.Rate(), r)
		}
	})
}

// TestAIMDStartupMultiplicative: before any capacity estimate exists, one
// second of normal verdicts multiplies the rate by the startup eta.
func TestAIMDStartupMultiplicative(t *testing.T) {
	c := NewAIMDController(1e5, 1e4, 0)
	c.Update(StateNormal, ampleRecv, sim.Time(sim.Second)) // primes dt
	r := c.Rate()
	c.Update(StateNormal, ampleRecv, sim.Time(2*sim.Second))
	if got, want := c.Rate()/r, aimdStartupEta; math.Abs(got-want) > 0.01*want {
		t.Fatalf("growth over 1s = %.3f×, want startup eta %.1f×", got, want)
	}
}

// TestAIMDRecvRateCap: the target never runs more than 50% ahead of what
// the path delivers.
func TestAIMDRecvRateCap(t *testing.T) {
	c := NewAIMDController(1e6, 1e4, 0)
	c.Update(StateNormal, 1e5, sim.Time(sim.Second))
	c.Update(StateNormal, 1e5, sim.Time(2*sim.Second))
	if got := c.Rate(); got > 1.5*1e5 {
		t.Fatalf("rate = %.0f, want ≤ 1.5×recvRate = %.0f", got, 1.5*1e5)
	}
}

// TestAIMDAdditiveNearCapacity: after an overuse has measured capacity,
// growth inside the near-max band is additive with the configured slope.
func TestAIMDAdditiveNearCapacity(t *testing.T) {
	const capacity = 1e6
	c := NewAIMDController(1e5, 1e4, 0)
	now := sim.Time(sim.Second)
	c.Update(StateOveruse, capacity, now) // rate = β·C, capacity learned
	// Climb back into the band.
	for i := 0; i < 200 && c.Rate() < capacity-3*0.03*capacity; i++ {
		now = now.Add(50 * ms)
		c.Update(StateNormal, ampleRecv, now)
	}
	// Inside the band increments must be exactly linear in dt.
	var diffs []float64
	for i := 0; i < 3; i++ {
		r := c.Rate()
		now = now.Add(50 * ms)
		c.Update(StateNormal, ampleRecv, now)
		diffs = append(diffs, c.Rate()-r)
	}
	want := capacity / 8 * 0.05
	for _, d := range diffs {
		if math.Abs(d-want) > 0.1*want {
			t.Fatalf("near-max increments = %v, want additive ≈%.0f per 50ms", diffs, want)
		}
	}
}

// TestAIMDStalenessForget: a capacity estimate no overuse has confirmed
// for aimdCapacityStaleAfter is dropped, switching growth back to
// multiplicative — the fade-lift escape.
func TestAIMDStalenessForget(t *testing.T) {
	const capacity = 1e6
	c := NewAIMDController(1e5, 1e4, 0)
	now := sim.Time(sim.Second)
	c.Update(StateOveruse, capacity, now)
	// Climb into the band, well within the staleness window.
	for i := 0; i < 8; i++ {
		now = now.Add(50 * ms)
		c.Update(StateNormal, ampleRecv, now)
	}
	// Hold (underuse) until the estimate goes stale.
	now = now.Add(aimdCapacityStaleAfter + sim.Second)
	c.Update(StateUnderuse, ampleRecv, now)
	r := c.Rate()
	// The next second of normal verdicts must grow multiplicatively, far
	// beyond the additive slope.
	now = now.Add(sim.Second)
	c.Update(StateNormal, ampleRecv, now)
	now = now.Add(sim.Second)
	c.Update(StateNormal, ampleRecv, now)
	additive := capacity / 8
	if got := c.Rate() - r; got < 2*additive {
		t.Fatalf("growth after staleness = %.0f/s, want multiplicative ≫ additive %.0f/s", got, additive)
	}
}

// TestAIMDClamp: min and max bounds hold through increases and decreases.
func TestAIMDClamp(t *testing.T) {
	c := NewAIMDController(5e4, 4e4, 2e5)
	now := sim.Time(sim.Second)
	for i := 0; i < 20; i++ {
		now = now.Add(sim.Second)
		c.Update(StateNormal, ampleRecv, now)
	}
	if c.Rate() != 2e5 {
		t.Fatalf("rate = %.0f, want max clamp 2e5", c.Rate())
	}
	for i := 0; i < 20; i++ {
		now = now.Add(sim.Second)
		c.Update(StateOveruse, 1e4, now)
		c.Update(StateNormal, 1e4, now.Add(ms))
	}
	if c.Rate() != 4e4 {
		t.Fatalf("rate = %.0f, want min clamp 4e4", c.Rate())
	}
}

// TestLossController covers the backstop's three regimes and its
// post-episode release.
func TestLossController(t *testing.T) {
	t.Run("high-loss-cuts", func(t *testing.T) {
		c := NewLossController(1e6, 1e4, 0)
		c.Update(0.2, 1e6)
		if got, want := c.Rate(), 1e6*(1-0.5*0.2); got != want || c.Cuts != 1 {
			t.Fatalf("rate = %.0f cuts %d, want %.0f after one cut", got, c.Cuts, want)
		}
	})
	t.Run("mid-loss-holds", func(t *testing.T) {
		c := NewLossController(1e6, 1e4, 0)
		c.Update(0.05, 1e4)
		if c.Rate() != 1e6 || c.Cuts != 0 {
			t.Fatalf("rate = %.0f cuts %d, want hold at 1e6", c.Rate(), c.Cuts)
		}
	})
	t.Run("low-loss-grows", func(t *testing.T) {
		c := NewLossController(1e6, 1e4, 0)
		c.Update(0.001, 1e4) // recvRate too low for the release to bind
		if got, want := c.Rate(), 1e6*lossIncreaseFactor; got != want {
			t.Fatalf("rate = %.0f, want %.0f", got, want)
		}
	})
	t.Run("release-after-episode", func(t *testing.T) {
		c := NewLossController(1e6, 1e4, 0)
		for i := 0; i < 10; i++ {
			c.Update(0.5, 1e5)
		}
		floor := c.Rate()
		c.Update(0, 8e5) // episode over, path delivering again
		if got, want := c.Rate(), 1.5*8e5; got != want {
			t.Fatalf("rate after release = %.0f (floor was %.0f), want 1.5×recvRate = %.0f",
				got, floor, want)
		}
	})
	t.Run("clamp", func(t *testing.T) {
		c := NewLossController(1e6, 9e5, 1.1e6)
		for i := 0; i < 20; i++ {
			c.Update(0.9, 1e4)
		}
		if c.Rate() != 9e5 {
			t.Fatalf("rate = %.0f, want min clamp", c.Rate())
		}
		for i := 0; i < 50; i++ {
			c.Update(0, 1e12)
		}
		if c.Rate() != 1.1e6 {
			t.Fatalf("rate = %.0f, want max clamp", c.Rate())
		}
	})
}
