package ratectl

import "repro/internal/sim"

// GradientEstimator filters per-group delay variations into a queuing
// delay offset in milliseconds — the signal the overuse detector compares
// against its adaptive threshold. Two implementations exist: the scalar
// Kalman filter of the original Google Congestion Control draft
// (KalmanEstimator) and the linear-regression trendline filter that
// replaced it in WebRTC (TrendlineEstimator). Both are allocation-free in
// steady state and must agree in sign on any consistent drift
// (TestEstimatorSignAgreement).
type GradientEstimator interface {
	// Update consumes one completed packet-group delta and returns the
	// new offset estimate in milliseconds.
	Update(d GroupDelta) float64
	// Offset reports the current estimate in milliseconds.
	Offset() float64
	// Reset rewinds the estimator to its just-built state.
	Reset()
}

// millis converts a simulated duration to float milliseconds.
func millis(d sim.Duration) float64 { return float64(d) / float64(sim.Millisecond) }

// KalmanEstimator is the draft-ietf-rmcat-gcc arrival-time filter reduced
// to its scalar form: the state m(i) tracks the one-way queuing delay
// offset per group, the process noise keeps the filter adaptive, and the
// measurement noise variance is estimated online from the residuals so
// bursty jitter widens the gain's denominator instead of swinging the
// estimate.
type KalmanEstimator struct {
	offset   float64 // m(i), ms
	errCov   float64 // e(i), ms²
	varNoise float64 // measurement noise variance estimate, ms²
	numDelta int
	scaled   float64 // detector signal: m(i) · min(numDelta, 60)
}

// Kalman filter tuning, from the GCC draft's reference values.
const (
	kalmanQ            = 1e-3 // process noise added per update, ms²
	kalmanInitialError = 0.1  // initial error covariance, ms²
	kalmanInitialNoise = 2.0  // initial measurement noise variance, ms²
	kalmanChi          = 0.02 // noise-variance EWMA weight
	kalmanMaxDeltas    = 60   // cap on the delta count scaling the offset
)

// NewKalmanEstimator returns a filter in its initial state.
func NewKalmanEstimator() *KalmanEstimator {
	k := &KalmanEstimator{}
	k.Reset()
	return k
}

// Reset rewinds to the just-built state.
func (k *KalmanEstimator) Reset() {
	k.offset = 0
	k.errCov = kalmanInitialError
	k.varNoise = kalmanInitialNoise
	k.numDelta = 0
	k.scaled = 0
}

// Offset reports the current detector signal in milliseconds.
func (k *KalmanEstimator) Offset() float64 { return k.scaled }

// RawOffset reports the unscaled per-group offset m(i) in milliseconds.
func (k *KalmanEstimator) RawOffset() float64 { return k.offset }

// Update runs one predict/correct step on the measured delay variation.
func (k *KalmanEstimator) Update(d GroupDelta) float64 {
	measured := millis(d.ArrivalDelta - d.SendDelta)
	k.numDelta++

	residual := measured - k.offset
	// Online residual variance: cap the residual's contribution so a
	// single outlier group cannot blow the gain open.
	capped := residual
	const residualCap = 15.0
	if capped > residualCap {
		capped = residualCap
	} else if capped < -residualCap {
		capped = -residualCap
	}
	k.varNoise = (1-kalmanChi)*k.varNoise + kalmanChi*capped*capped
	if k.varNoise < 1e-3 {
		k.varNoise = 1e-3
	}

	pred := k.errCov + kalmanQ
	gain := pred / (pred + k.varNoise)
	k.offset += gain * residual
	k.errCov = (1 - gain) * pred

	// Like WebRTC's overuse detector, the threshold comparison sees the
	// per-group offset scaled by the observation count: a small but
	// persistent gradient (a slow overrun adds ~1 ms per group) must still
	// cross a threshold that single-group serialization jitter cannot.
	deltas := k.numDelta
	if deltas > kalmanMaxDeltas {
		deltas = kalmanMaxDeltas
	}
	k.scaled = k.offset * float64(deltas)
	return k.scaled
}

// Trendline tuning, from the WebRTC trendline estimator.
const (
	trendlineWindow    = 20  // regression window in packet groups
	trendlineSmoothing = 0.9 // EWMA coefficient on the accumulated delay
	trendlineGain      = 4.0 // threshold gain applied to the raw slope
	trendlineMaxDeltas = 60  // cap on the delta count scaling the slope
)

// TrendlineEstimator fits a line through the recent accumulated-delay
// samples: the slope (ms of extra delay per ms of elapsed time) scaled by
// the observed group count and the threshold gain is the offset estimate.
// The window is a fixed-size ring, so steady-state updates allocate
// nothing.
type TrendlineEstimator struct {
	x, y  [trendlineWindow]float64 // arrival time (ms) / smoothed delay (ms)
	n     int                      // samples in the ring
	head  int                      // next write position
	accum float64                  // accumulated delay variation, ms
	sm    float64                  // smoothed accumulated delay, ms
	first sim.Time                 // arrival time origin
	prime bool
	count int // total deltas observed
	off   float64
}

// NewTrendlineEstimator returns a filter in its initial state.
func NewTrendlineEstimator() *TrendlineEstimator {
	t := &TrendlineEstimator{}
	t.Reset()
	return t
}

// Reset rewinds to the just-built state.
func (t *TrendlineEstimator) Reset() { *t = TrendlineEstimator{} }

// Offset reports the current estimate in milliseconds.
func (t *TrendlineEstimator) Offset() float64 { return t.off }

// Update appends one group sample and refits the trendline.
func (t *TrendlineEstimator) Update(d GroupDelta) float64 {
	measured := millis(d.ArrivalDelta - d.SendDelta)
	t.count++
	if !t.prime {
		t.prime = true
		t.first = d.Arrival
		t.sm = measured
	}
	t.accum += measured
	t.sm = trendlineSmoothing*t.sm + (1-trendlineSmoothing)*t.accum

	t.x[t.head] = millis(d.Arrival.Sub(t.first))
	t.y[t.head] = t.sm
	t.head = (t.head + 1) % trendlineWindow
	if t.n < trendlineWindow {
		t.n++
	}
	if t.n < 2 {
		t.off = 0
		return t.off
	}

	// Least-squares slope over the ring (order within the ring does not
	// matter for the fit).
	var sumX, sumY float64
	for i := 0; i < t.n; i++ {
		sumX += t.x[i]
		sumY += t.y[i]
	}
	meanX, meanY := sumX/float64(t.n), sumY/float64(t.n)
	var num, den float64
	for i := 0; i < t.n; i++ {
		num += (t.x[i] - meanX) * (t.y[i] - meanY)
		den += (t.x[i] - meanX) * (t.x[i] - meanX)
	}
	if den <= 0 {
		return t.off
	}
	slope := num / den
	deltas := t.count
	if deltas > trendlineMaxDeltas {
		deltas = trendlineMaxDeltas
	}
	// Like WebRTC's modified trend: the raw slope is dimensionless
	// (ms/ms), scaled by the observation count and gain to be comparable
	// against the detector's millisecond threshold.
	t.off = slope * float64(deltas) * trendlineGain
	return t.off
}
