package ratectl

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// FuzzInterArrival drives the packet grouper with an arbitrary arrival
// stream — jittered send spacing (including out-of-order timestamps
// inside and around the burst window) — and checks its structural
// invariants: no panic, completed-group deltas always move forward in
// send time, and splitting any packet into same-timestamp fragments
// leaves the emitted delta stream identical (the property
// TestGroupingFragmentationInvariant pins for one handcrafted trace,
// here under adversarial spacing).
func FuzzInterArrival(f *testing.F) {
	f.Add([]byte{0, 0, 1, 9, 3, 2, 1, 1, 200, 11, 0, 40})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var whole, frag InterArrival
		var wholeDeltas, fragDeltas []GroupDelta
		send := sim.Time(sim.Second)
		for i := 0; i+2 < len(data); i += 3 {
			// Send spacing -2..+9 ms: negative steps exercise the
			// out-of-order path, steps past 5 ms open new groups.
			send += sim.Time(sim.Duration(int(data[i]%12)-2) * sim.Millisecond)
			// One-way delay 10..17 ms, uncorrelated with send order, so
			// arrivals reorder freely.
			arrival := send + sim.Time(10*sim.Millisecond+sim.Duration(data[i+1]%8)*sim.Millisecond)
			size := int(data[i+2]) + 1
			if d, ok := whole.Add(send, arrival, size); ok {
				if d.SendDelta <= 0 {
					t.Fatalf("completed group moved backward in send time: %+v", d)
				}
				wholeDeltas = append(wholeDeltas, d)
			}
			// The same packet as two same-timestamp fragments.
			half := size / 2
			for _, sz := range []int{half, size - half} {
				if sz == 0 {
					continue
				}
				if d, ok := frag.Add(send, arrival, sz); ok {
					fragDeltas = append(fragDeltas, d)
				}
			}
		}
		if len(wholeDeltas) != len(fragDeltas) {
			t.Fatalf("fragmentation changed the group count: %d whole vs %d fragmented",
				len(wholeDeltas), len(fragDeltas))
		}
		for i := range wholeDeltas {
			if wholeDeltas[i] != fragDeltas[i] {
				t.Fatalf("delta %d differs under fragmentation:\nwhole: %+v\nfrag:  %+v",
					i, wholeDeltas[i], fragDeltas[i])
			}
		}
	})
}

// FuzzAIMDController drives the remote-rate controller with arbitrary
// verdict/receive-rate/clock sequences — including unknown receive rates,
// clock stalls, backward time steps and mid-stream resets — and checks
// that the target rate always stays finite and inside [min, max].
func FuzzAIMDController(f *testing.F) {
	f.Add([]byte{0, 10, 0, 50, 1, 255, 255, 10, 2, 0, 0, 250})
	f.Add([]byte{1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0})
	f.Add([]byte{155, 31, 0, 0, 9, 8, 7, 6, 5, 4, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			minRate = 10_000.0
			maxRate = 5_000_000.0
		)
		c := NewAIMDController(100_000, minRate, maxRate)
		now := sim.Time(sim.Second)
		for i := 0; i+3 < len(data); i += 4 {
			var verdict State
			switch data[i] % 3 {
			case 0:
				verdict = StateNormal
			case 1:
				verdict = StateOveruse
			case 2:
				verdict = StateUnderuse
			}
			// Receive rate 0..6.5 MB/s; a slice of the space reports the
			// rate as unknown (<= 0).
			recv := float64(uint(data[i+1])|uint(data[i+2])<<8) * 100
			if data[i+1]%7 == 0 {
				recv = -recv
			}
			switch {
			case data[i+3] == 255:
				// Clock glitch: time runs backward.
				now -= sim.Time(50 * sim.Millisecond)
			case data[i+3] == 254:
				c.Reset(100_000, minRate, maxRate)
			default:
				now += sim.Time(sim.Duration(data[i+3]%200) * sim.Millisecond)
			}
			rate := c.Update(verdict, recv, now)
			if math.IsNaN(rate) || math.IsInf(rate, 0) {
				t.Fatalf("step %d: rate not finite: %v", i/4, rate)
			}
			if rate < minRate || rate > maxRate {
				t.Fatalf("step %d: rate %v escaped [%v, %v]", i/4, rate, minRate, maxRate)
			}
			if rate != c.Rate() {
				t.Fatalf("step %d: Update returned %v but Rate() reports %v", i/4, rate, c.Rate())
			}
		}
	})
}
