package ratectl

// Loss-based backstop controller tuning, from the GCC draft's sender-side
// loss controller.
const (
	// lossLowThreshold: below 2% loss the path has headroom.
	lossLowThreshold = 0.02
	// lossHighThreshold: above 10% loss the path is being overrun.
	lossHighThreshold = 0.10
	// lossIncreaseFactor grows the loss-based estimate per report while
	// loss stays low.
	lossIncreaseFactor = 1.05
)

// LossController is the GCC draft's loss-based controller, the backstop
// the delay pipeline needs: a standing full queue (or a capacity collapse
// faster than the feedback loop) has a near-zero delay gradient, so the
// overuse detector reads it as normal while the queue drops a large share
// of the offered load. The loss fraction catches exactly that regime —
// above 10% the estimate is cut multiplicatively, between 2% and 10% it
// holds, below 2% it grows slowly. The reported target is the minimum of
// this estimate and the delay-based AIMD target, so random wire loss
// under 2% (the showdown's Gilbert–Elliott chain) never throttles the
// flow: that immunity is the delay-based transport's whole advantage.
type LossController struct {
	rate     float64
	min, max float64

	// Statistics.
	Cuts uint64
}

// NewLossController returns a controller starting at initial bytes/second.
func NewLossController(initial, min, max float64) *LossController {
	c := &LossController{}
	c.Reset(initial, min, max)
	return c
}

// Reset rewinds the controller to its just-built state.
func (c *LossController) Reset(initial, min, max float64) {
	*c = LossController{rate: initial, min: min, max: max}
	c.clamp()
}

// Rate reports the current loss-based estimate in bytes/second.
func (c *LossController) Rate() float64 { return c.rate }

// Update applies one report interval's loss fraction with the measured
// receive rate (bytes/second; <= 0 when unknown) and returns the new
// estimate.
func (c *LossController) Update(lossFraction, recvRate float64) float64 {
	switch {
	case lossFraction > lossHighThreshold:
		c.Cuts++
		c.rate *= 1 - 0.5*lossFraction
	case lossFraction < lossLowThreshold:
		c.rate *= lossIncreaseFactor
		// A backstop must release as soon as the loss episode ends, or it
		// would pin the flow at the episode's floor long after a fade
		// lifts: once loss is low again, jump straight to the 1.5×recvRate
		// ceiling the delay-based controller also honors, leaving the AIMD
		// target as the binding constraint.
		if headroom := 1.5 * recvRate; headroom > c.rate {
			c.rate = headroom
		}
	}
	c.clamp()
	return c.rate
}

func (c *LossController) clamp() {
	if c.rate < c.min {
		c.rate = c.min
	}
	if c.max > 0 && c.rate > c.max {
		c.rate = c.max
	}
}
