package ratectl

import (
	"math"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TFRCConfig parameterizes a TFRC sender/receiver pair.
type TFRCConfig struct {
	Flow    int
	Src     int
	Dst     int
	PktSize int // bytes (default 1000)

	// InitialRTT seeds the rate before the first feedback (default 100 ms).
	InitialRTT sim.Duration
	// MaxRate caps the sending rate in bytes/second (default none).
	MaxRate float64
}

func (c *TFRCConfig) fillDefaults() {
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 100 * sim.Millisecond
	}
}

// ThroughputEquation returns the TCP-friendly rate in bytes/second for
// packet size s (bytes), round-trip time r (seconds), and loss event rate
// p, per RFC 3448 §3.1 with b=1 and t_RTO = 4·R:
//
//	X = s / (R·sqrt(2bp/3) + t_RTO·(3·sqrt(3bp/8))·p·(1+32p²))
func ThroughputEquation(s float64, r float64, p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p > 1 {
		p = 1
	}
	tRTO := 4 * r
	den := r*math.Sqrt(2*p/3) + tRTO*(3*math.Sqrt(3*p/8))*p*(1+32*p*p)
	return s / den
}

// TFRCSender paces data packets at the equation-driven rate. It implements
// netsim.Handler to receive feedback packets.
type TFRCSender struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   TFRCConfig

	rate    float64 // bytes per second
	rtt     sim.Duration
	hasRTT  bool
	seq     int64
	pktID   uint64
	running bool
	timer   sim.Timer
	nfTimer sim.Timer // no-feedback timer

	// Statistics.
	Sent           uint64
	FeedbackIn     uint64
	LastLossRate   float64
	RateReductions uint64
}

// NewTFRCSender builds a TFRC source injecting into out.
func NewTFRCSender(sched *sim.Scheduler, out netsim.Handler, cfg TFRCConfig) *TFRCSender {
	if sched == nil || out == nil {
		panic("ratectl: NewTFRCSender requires scheduler and output")
	}
	cfg.fillDefaults()
	s := &TFRCSender{sched: sched, out: out, cfg: cfg}
	s.rtt = cfg.InitialRTT
	// Initial rate: one packet per RTT (RFC 3448 §4.2 allows up to 2-4;
	// we start conservatively, slow start doubles quickly).
	s.rate = float64(cfg.PktSize) / s.rtt.Seconds()
	return s
}

// Rate reports the current sending rate in bytes/second.
func (s *TFRCSender) Rate() float64 { return s.rate }

// RTT reports the current RTT estimate.
func (s *TFRCSender) RTT() sim.Duration { return s.rtt }

// Start begins transmission.
func (s *TFRCSender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.armNoFeedback()
	s.emit()
}

// Stop halts transmission.
func (s *TFRCSender) Stop() {
	s.running = false
	s.sched.Cancel(s.timer)
	s.timer = sim.Timer{}
	s.sched.Cancel(s.nfTimer)
	s.nfTimer = sim.Timer{}
}

func (s *TFRCSender) emit() {
	if !s.running {
		return
	}
	s.pktID++
	s.out.Handle(&netsim.Packet{
		ID:        s.pktID,
		Flow:      s.cfg.Flow,
		Kind:      netsim.Data,
		Size:      s.cfg.PktSize,
		Seq:       s.seq,
		Src:       s.cfg.Src,
		Dst:       s.cfg.Dst,
		SendTime:  s.sched.Now(),
		SenderRTT: s.rtt,
	})
	s.seq++
	s.Sent++
	gap := sim.Duration(float64(s.cfg.PktSize) / s.rate * float64(sim.Second))
	if gap < sim.Microsecond {
		gap = sim.Microsecond
	}
	s.timer = s.sched.After(gap, func() {
		s.timer = sim.Timer{}
		s.emit()
	})
}

// Handle implements netsim.Handler for feedback packets.
func (s *TFRCSender) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Feedback || p.Flow != s.cfg.Flow || p.FeedbackPayload == nil {
		return
	}
	s.FeedbackIn++
	fb := p.FeedbackPayload

	// RTT sample: now − packet timestamp − receiver hold time.
	sample := s.sched.Now().Sub(fb.Timestamp) - fb.Delay
	if sample > 0 {
		if !s.hasRTT {
			s.rtt = sample
			s.hasRTT = true
		} else {
			s.rtt = sim.Duration(0.9*float64(s.rtt) + 0.1*float64(sample))
		}
	}

	s.LastLossRate = fb.LossRate
	r := s.rtt.Seconds()
	if fb.LossRate <= 0 {
		// No loss yet: slow-start-like doubling, capped at twice the rate
		// the receiver reports actually arriving.
		target := 2 * s.rate
		if cap2 := 2 * fb.RecvRate; fb.RecvRate > 0 && target > cap2 {
			target = cap2
		}
		s.rate = target
	} else {
		x := ThroughputEquation(float64(s.cfg.PktSize), r, fb.LossRate)
		if x < s.rate {
			s.RateReductions++
		}
		s.rate = x
	}
	// Never fall below one packet per 8 RTTs or exceed the configured cap.
	floor := float64(s.cfg.PktSize) / (8 * r)
	if s.rate < floor {
		s.rate = floor
	}
	if s.cfg.MaxRate > 0 && s.rate > s.cfg.MaxRate {
		s.rate = s.cfg.MaxRate
	}
	s.armNoFeedback()
}

// armNoFeedback (re)arms the no-feedback timer: absent feedback for 4 RTTs
// the rate halves (RFC 3448 §4.4, simplified).
func (s *TFRCSender) armNoFeedback() {
	s.sched.Cancel(s.nfTimer)
	s.nfTimer = s.sched.After(4*s.rtt, func() {
		s.nfTimer = sim.Timer{}
		if !s.running {
			return
		}
		s.rate /= 2
		s.RateReductions++
		floor := float64(s.cfg.PktSize) / (8 * s.rtt.Seconds())
		if s.rate < floor {
			s.rate = floor
		}
		s.armNoFeedback()
	})
}

// wali are the RFC 3448 §5.4 loss-interval weights, most recent first.
var wali = []float64{1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2}

// TFRCReceiver detects loss events, maintains the weighted average loss
// interval, and returns feedback once per RTT. It implements
// netsim.Handler for arriving data packets.
type TFRCReceiver struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   TFRCConfig

	expected int64 // next expected sequence
	rtt      sim.Duration
	pktID    uint64
	fbTimer  sim.Timer
	running  bool

	// Loss-event state: sequence numbers where each loss event started,
	// and the arrival time of the event start (for RTT grouping).
	lastEventSeq  int64
	lastEventTime sim.Time
	haveEvent     bool
	intervals     []int64 // closed loss intervals, most recent first

	lastDataTime sim.Time
	lastDataPkt  sim.Time // SendTime of the most recent data packet

	bytesSince   int64 // bytes received since last feedback
	lastFeedback sim.Time

	// Statistics.
	Received   uint64
	LossEvents uint64
	LostPkts   uint64
}

// NewTFRCReceiver builds the receiver; out is where feedback packets go
// (the receiver-side node). The Src/Dst in cfg are the *sender's*
// addresses, i.e. the same config object as the sender's; the receiver
// swaps them for feedback.
func NewTFRCReceiver(sched *sim.Scheduler, out netsim.Handler, cfg TFRCConfig) *TFRCReceiver {
	if sched == nil || out == nil {
		panic("ratectl: NewTFRCReceiver requires scheduler and output")
	}
	cfg.fillDefaults()
	return &TFRCReceiver{sched: sched, out: out, cfg: cfg, rtt: cfg.InitialRTT}
}

// LossEventRate computes p = 1 / I_mean with the WALI average over the
// closed intervals plus the open interval when that raises the average
// (RFC 3448 §5.4). Returns 0 when no loss event has occurred.
func (r *TFRCReceiver) LossEventRate() float64 {
	if !r.haveEvent {
		return 0
	}
	closed := r.avgInterval(r.intervals)
	open := r.expected - r.lastEventSeq // packets since current event started
	withOpen := r.avgInterval(append([]int64{open}, r.intervals...))
	i := closed
	if withOpen > i {
		i = withOpen
	}
	if i <= 0 {
		return 1
	}
	return 1 / i
}

func (r *TFRCReceiver) avgInterval(iv []int64) float64 {
	if len(iv) == 0 {
		return 0
	}
	n := len(iv)
	if n > len(wali) {
		n = len(wali)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		num += wali[i] * float64(iv[i])
		den += wali[i]
	}
	return num / den
}

// Handle implements netsim.Handler for arriving data packets.
func (r *TFRCReceiver) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Data || p.Flow != r.cfg.Flow {
		return
	}
	r.Received++
	r.bytesSince += int64(p.Size)
	r.lastDataTime = r.sched.Now()
	r.lastDataPkt = p.SendTime
	if p.SenderRTT > 0 {
		r.rtt = p.SenderRTT
	}

	if p.Seq > r.expected {
		// Gap: every skipped sequence is lost (FIFO network: no reorder).
		for lost := r.expected; lost < p.Seq; lost++ {
			r.noteLoss(lost)
		}
	}
	if p.Seq >= r.expected {
		r.expected = p.Seq + 1
	}

	if !r.running {
		r.running = true
		r.scheduleFeedback()
	}
}

func (r *TFRCReceiver) noteLoss(seq int64) {
	r.LostPkts++
	now := r.sched.Now()
	if !r.haveEvent {
		r.haveEvent = true
		r.lastEventSeq = seq
		r.lastEventTime = now
		r.LossEvents++
		return
	}
	if now.Sub(r.lastEventTime) <= r.rtt {
		return // same loss event
	}
	// Close the previous interval and start a new event.
	interval := seq - r.lastEventSeq
	if interval < 1 {
		interval = 1
	}
	r.intervals = append([]int64{interval}, r.intervals...)
	if len(r.intervals) > len(wali) {
		r.intervals = r.intervals[:len(wali)]
	}
	r.lastEventSeq = seq
	r.lastEventTime = now
	r.LossEvents++
}

func (r *TFRCReceiver) scheduleFeedback() {
	r.fbTimer = r.sched.After(r.rtt, func() {
		r.fbTimer = sim.Timer{}
		r.sendFeedback()
		r.scheduleFeedback()
	})
}

func (r *TFRCReceiver) sendFeedback() {
	now := r.sched.Now()
	elapsed := now.Sub(r.lastFeedback)
	if elapsed <= 0 {
		return
	}
	recvRate := float64(r.bytesSince) / elapsed.Seconds()
	r.bytesSince = 0
	r.lastFeedback = now
	r.pktID++
	r.out.Handle(&netsim.Packet{
		ID:   r.pktID,
		Flow: r.cfg.Flow,
		Kind: netsim.Feedback,
		Size: 40,
		Src:  r.cfg.Dst, // receiver address
		Dst:  r.cfg.Src, // back to the sender
		FeedbackPayload: &netsim.TFRCFeedback{
			Timestamp: r.lastDataPkt,
			Delay:     now.Sub(r.lastDataTime),
			RecvRate:  recvRate,
			LossRate:  r.LossEventRate(),
		},
	})
}

// Stop halts feedback.
func (r *TFRCReceiver) Stop() {
	r.running = false
	r.sched.Cancel(r.fbTimer)
	r.fbTimer = sim.Timer{}
}
