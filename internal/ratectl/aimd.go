package ratectl

import (
	"math"

	"repro/internal/sim"
)

// RateState is the AIMD controller's operating region, driven by the
// detector state through the GCC draft's transition table:
//
//	            StateOveruse   StateNormal    StateUnderuse
//	RateHold     → Decrease     → Increase     stay Hold
//	RateIncrease → Decrease     stay Increase  → Hold
//	RateDecrease stay Decrease  → Hold         → Hold
type RateState int8

// Controller operating regions.
const (
	// RateHold keeps the rate flat (after underuse: let the queue drain).
	RateHold RateState = iota
	// RateIncrease grows the rate — multiplicatively far from the last
	// known capacity, additively near it.
	RateIncrease
	// RateDecrease backs off multiplicatively from the measured arrival
	// rate.
	RateDecrease
)

func (s RateState) String() string {
	switch s {
	case RateHold:
		return "hold"
	case RateIncrease:
		return "increase"
	case RateDecrease:
		return "decrease"
	default:
		return "unknown"
	}
}

// AIMD controller tuning, from the GCC draft's reference values.
const (
	// aimdEta is the multiplicative increase factor per second.
	aimdEta = 1.08
	// aimdStartupEta is the multiplicative factor used before the first
	// overuse has produced a capacity estimate — the slow-start analog.
	// The 1.5×recvRate cap keeps it honest: the target can at most run
	// 50% ahead of what the path actually delivers.
	aimdStartupEta = 4.0
	// aimdBeta is the decrease factor applied to the measured receive
	// rate on overuse.
	aimdBeta = 0.8
	// aimdMaxIncreaseInterval caps the dt a single increase step may
	// compound over (an idle controller must not explode on wake-up).
	aimdMaxIncreaseInterval = sim.Second
	// aimdNearMaxStddevs: within this many standard deviations of the
	// average decreased rate the controller switches from multiplicative
	// to additive increase.
	aimdNearMaxStddevs = 3.0
	// aimdAvgAlpha is the EWMA weight for the decrease-rate statistics.
	aimdAvgAlpha = 0.05
	// aimdCapacityStaleAfter: a capacity estimate unconfirmed by any
	// overuse for this long is forgotten. Near a stable capacity the
	// detector refreshes the estimate every second or two; a long quiet
	// stretch means the constraint moved (a fade lifted) and the additive
	// creep would otherwise hug the stale estimate for seconds.
	aimdCapacityStaleAfter = 2 * sim.Second
)

// AIMDController is the GCC remote-rate controller: a three-state machine
// (hold / increase / decrease) mapping detector verdicts to target-rate
// updates. It runs receiver-side; the resulting target travels back to the
// sender in RateFeedback. All state is plain scalars, so steady-state
// updates allocate nothing and Reset rewinds it completely.
type AIMDController struct {
	rate     float64 // target rate, bytes/second
	min, max float64
	state    RateState

	lastUpdate sim.Time
	hasUpdate  bool

	// EWMA statistics of the receive rate at decrease time: the
	// controller's memory of where the link capacity last was, used to
	// choose additive vs multiplicative increase.
	avgMaxRate   float64
	varMaxRate   float64
	hasAvgMax    bool
	lastDecrease sim.Time

	// Statistics.
	Decreases uint64
	Increases uint64
}

// NewAIMDController returns a controller starting at initial bytes/second,
// clamped to [min, max] (max <= 0 means unbounded).
func NewAIMDController(initial, min, max float64) *AIMDController {
	c := &AIMDController{}
	c.Reset(initial, min, max)
	return c
}

// Reset rewinds the controller to its just-built state.
func (c *AIMDController) Reset(initial, min, max float64) {
	*c = AIMDController{rate: initial, min: min, max: max, state: RateHold}
	c.clamp()
}

// Rate reports the current target rate in bytes/second.
func (c *AIMDController) Rate() float64 { return c.rate }

// RateRegion reports the controller's operating region.
func (c *AIMDController) RateRegion() RateState { return c.state }

// Update applies one detector verdict with the measured receive rate
// (bytes/second; <= 0 when unknown) and returns the new target rate.
func (c *AIMDController) Update(s State, recvRate float64, now sim.Time) float64 {
	c.transition(s)
	dt := sim.Duration(0)
	if c.hasUpdate {
		dt = now.Sub(c.lastUpdate)
		if dt > aimdMaxIncreaseInterval {
			dt = aimdMaxIncreaseInterval
		}
		if dt < 0 {
			dt = 0
		}
	}
	c.lastUpdate = now
	c.hasUpdate = true

	switch c.state {
	case RateIncrease:
		c.Increases++
		// A capacity estimate is only as good as its last confirmation: a
		// rate that has climbed past the near-max band, or an estimate no
		// overuse has refreshed for a while, is stale (a fade lifted).
		// Forget it and probe multiplicatively until the next overuse
		// measures afresh.
		if c.hasAvgMax && (c.rate > c.avgMaxRate+c.bandWidth() ||
			now.Sub(c.lastDecrease) > aimdCapacityStaleAfter) {
			c.hasAvgMax = false
		}
		switch {
		case c.nearMax():
			// Additive probe near known capacity: a gentle fraction of the
			// average max rate per second, scaled by dt. Fades are tracked by
			// the forget rule and the below-band multiplicative ramp, so this
			// slope only needs to creep up on slowly-freed headroom without
			// refilling the queue it just drained.
			c.rate += c.avgMaxRate / 8 * dt.Seconds()
		case !c.hasAvgMax || c.rate < c.belowBand():
			// No capacity estimate yet, or far below the last known one
			// (the tail of a deep fade): multiplicative ramp at the
			// slow-start eta, bounded by the 1.5×recvRate cap.
			c.rate *= math.Pow(aimdStartupEta, dt.Seconds())
		default:
			c.rate *= math.Pow(aimdEta, dt.Seconds())
		}
		// Never run more than 1.5× ahead of what is actually arriving;
		// without this the target diverges during deep fades and takes
		// seconds to come back down.
		if recvRate > 0 && c.rate > 1.5*recvRate {
			c.rate = 1.5 * recvRate
		}
	case RateDecrease:
		c.Decreases++
		base := recvRate
		if base <= 0 {
			base = c.rate
		}
		c.noteMaxRate(base)
		c.lastDecrease = now
		c.rate = aimdBeta * base
		// A decrease is acted on once; the controller then holds until
		// the detector reports again.
		c.state = RateHold
	case RateHold:
		// Flat.
	}
	c.clamp()
	return c.rate
}

// transition applies the draft's state-transition table.
func (c *AIMDController) transition(s State) {
	switch s {
	case StateOveruse:
		c.state = RateDecrease
	case StateUnderuse:
		c.state = RateHold
	case StateNormal:
		if c.state == RateHold {
			c.state = RateIncrease
		}
		// Decrease → Hold happens in Update after the cut is applied.
	}
}

// bandWidth is the half-width of the near-max band: the configured number
// of standard deviations of the decrease-rate statistics, clamped relative
// to the average so the wild capacity swings of the time-varying worlds
// can neither collapse the band to nothing nor widen it to everything.
func (c *AIMDController) bandWidth() float64 {
	sd := math.Sqrt(c.varMaxRate)
	if lo := 0.03 * c.avgMaxRate; sd < lo {
		sd = lo
	}
	if hi := 0.1 * c.avgMaxRate; sd > hi {
		sd = hi
	}
	return aimdNearMaxStddevs * sd
}

// nearMax reports whether the current rate is within the near-max band of
// the average rate at which overuse last struck.
func (c *AIMDController) nearMax() bool {
	if !c.hasAvgMax {
		return false
	}
	w := c.bandWidth()
	return c.rate > c.avgMaxRate-w && c.rate < c.avgMaxRate+w
}

// belowBand is the lower edge of the near-max band, below which the
// controller ramps at the startup eta.
func (c *AIMDController) belowBand() float64 {
	return c.avgMaxRate - c.bandWidth()
}

// noteMaxRate folds a decrease-time receive rate into the capacity EWMA.
func (c *AIMDController) noteMaxRate(r float64) {
	if !c.hasAvgMax {
		c.hasAvgMax = true
		c.avgMaxRate = r
		c.varMaxRate = 0
		return
	}
	d := r - c.avgMaxRate
	c.avgMaxRate += aimdAvgAlpha * d
	c.varMaxRate = (1 - aimdAvgAlpha) * (c.varMaxRate + aimdAvgAlpha*d*d)
}

func (c *AIMDController) clamp() {
	if c.rate < c.min {
		c.rate = c.min
	}
	if c.max > 0 && c.rate > c.max {
		c.rate = c.max
	}
}
