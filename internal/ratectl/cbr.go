// Package ratectl implements the rate-based transports of the paper: a
// constant-bit-rate (CBR) source — the measurement instrument used for the
// PlanetLab probes — and TFRC (RFC 3448), the equation-based congestion
// control whose unfair competition against window-based TCP the paper
// explains.
package ratectl

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// CBRConfig parameterizes a constant-bit-rate source.
type CBRConfig struct {
	Flow    int
	Src     int
	Dst     int
	PktSize int   // bytes per packet
	Rate    int64 // bits per second

	// Duration stops the source after this much simulated time; zero means
	// run until stopped.
	Duration sim.Duration

	// Pool, when set, supplies the emitted packets from the world's
	// freelist instead of allocating one per probe. The consumer that
	// terminates each packet's life (channel drop, receiving sink) must
	// recycle into the same pool; a nil pool reproduces the allocating
	// behavior.
	Pool *netsim.PacketPool
}

// CBR emits fixed-size packets at a fixed rate with perfectly even spacing
// — the paper's probe traffic, chosen precisely because it has no sub-RTT
// burstiness of its own.
type CBR struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   CBRConfig

	interval sim.Duration
	timer    sim.Timer
	emitFn   func() // created once; the probe send path must not allocate
	stopAt   sim.Time
	seq      int64
	pktID    uint64
	running  bool

	// Sent counts emitted packets.
	Sent uint64
}

// NewCBR builds a CBR source.
func NewCBR(sched *sim.Scheduler, out netsim.Handler, cfg CBRConfig) *CBR {
	if sched == nil || out == nil {
		panic("ratectl: NewCBR requires scheduler and output")
	}
	if cfg.PktSize <= 0 || cfg.Rate <= 0 {
		panic("ratectl: CBR needs positive packet size and rate")
	}
	interval := sim.Duration(int64(cfg.PktSize) * 8 * int64(sim.Second) / cfg.Rate)
	if interval <= 0 {
		interval = sim.Nanosecond
	}
	c := &CBR{sched: sched, out: out, cfg: cfg, interval: interval}
	c.emitFn = func() {
		c.timer = sim.Timer{}
		c.emit()
	}
	return c
}

// Interval reports the inter-packet gap.
func (c *CBR) Interval() sim.Duration { return c.interval }

// Start begins emission; the first packet leaves immediately.
func (c *CBR) Start() {
	if c.running {
		return
	}
	c.running = true
	if c.cfg.Duration > 0 {
		c.stopAt = c.sched.Now().Add(c.cfg.Duration)
	}
	c.emit()
}

// Stop halts emission.
func (c *CBR) Stop() {
	c.running = false
	c.sched.Cancel(c.timer)
	c.timer = sim.Timer{}
}

// Seq reports the next sequence number to be sent (== packets sent).
func (c *CBR) Seq() int64 { return c.seq }

func (c *CBR) emit() {
	if !c.running {
		return
	}
	if c.stopAt != 0 && c.sched.Now() >= c.stopAt {
		c.running = false
		return
	}
	c.pktID++
	// Get returns a zeroed packet (or allocates when the pool is nil), so
	// the emitted state is identical either way.
	p := c.cfg.Pool.Get()
	p.ID = c.pktID
	p.Flow = c.cfg.Flow
	p.Kind = netsim.Data
	p.Size = c.cfg.PktSize
	p.Seq = c.seq
	p.Src = c.cfg.Src
	p.Dst = c.cfg.Dst
	p.SendTime = c.sched.Now()
	c.out.Handle(p)
	c.seq++
	c.Sent++
	c.timer = c.sched.After(c.interval, c.emitFn)
}
