package ratectl

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func TestCBREvenSpacing(t *testing.T) {
	s := sim.NewScheduler()
	var times []sim.Time
	out := netsim.HandlerFunc(func(p *netsim.Packet) { times = append(times, s.Now()) })
	// 400-byte packets at 320 kbps → 3200 bits / 320000 bps = 10 ms.
	c := NewCBR(s, out, CBRConfig{Flow: 1, PktSize: 400, Rate: 320_000})
	if c.Interval() != 10*sim.Millisecond {
		t.Fatalf("interval = %v", c.Interval())
	}
	c.Start()
	s.RunUntil(sim.Time(100 * sim.Millisecond))
	c.Stop()
	if len(times) != 11 { // t=0,10,...,100
		t.Fatalf("sent %d packets", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i].Sub(times[i-1]) != 10*sim.Millisecond {
			t.Fatalf("gap %d = %v", i, times[i].Sub(times[i-1]))
		}
	}
	if c.Sent != 11 || c.Seq() != 11 {
		t.Fatalf("sent=%d seq=%d", c.Sent, c.Seq())
	}
}

func TestCBRDurationStops(t *testing.T) {
	s := sim.NewScheduler()
	n := 0
	out := netsim.HandlerFunc(func(p *netsim.Packet) { n++ })
	c := NewCBR(s, out, CBRConfig{Flow: 1, PktSize: 100, Rate: 80_000,
		Duration: 55 * sim.Millisecond}) // 10 ms interval
	c.Start()
	s.Run()
	// t=0..50 ms inclusive: 6 packets; emission at 60 ms sees stopAt passed.
	if n != 6 {
		t.Fatalf("sent %d packets, want 6", n)
	}
}

func TestCBRSequenceNumbersIncrease(t *testing.T) {
	s := sim.NewScheduler()
	var seqs []int64
	out := netsim.HandlerFunc(func(p *netsim.Packet) { seqs = append(seqs, p.Seq) })
	c := NewCBR(s, out, CBRConfig{Flow: 1, PktSize: 100, Rate: 8_000_000})
	c.Start()
	s.RunUntil(sim.Time(sim.Millisecond))
	c.Stop()
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("seq[%d] = %d", i, q)
		}
	}
}

func TestCBRDoubleStartIsIdempotent(t *testing.T) {
	s := sim.NewScheduler()
	n := 0
	out := netsim.HandlerFunc(func(p *netsim.Packet) { n++ })
	c := NewCBR(s, out, CBRConfig{Flow: 1, PktSize: 100, Rate: 80_000})
	c.Start()
	c.Start()
	s.RunUntil(sim.Time(5 * sim.Millisecond))
	c.Stop()
	if n != 1 {
		t.Fatalf("double start duplicated emission: %d", n)
	}
}

func TestCBRValidation(t *testing.T) {
	s := sim.NewScheduler()
	out := netsim.HandlerFunc(func(p *netsim.Packet) {})
	for _, f := range []func(){
		func() { NewCBR(nil, out, CBRConfig{PktSize: 1, Rate: 1}) },
		func() { NewCBR(s, out, CBRConfig{PktSize: 0, Rate: 1}) },
		func() { NewCBR(s, out, CBRConfig{PktSize: 1, Rate: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestThroughputEquation(t *testing.T) {
	// Known shape: higher loss ⇒ lower rate; scales ~1/sqrt(p) for small p.
	s, r := 1000.0, 0.1
	x1 := ThroughputEquation(s, r, 0.01)
	x2 := ThroughputEquation(s, r, 0.04)
	if x2 >= x1 {
		t.Fatalf("rate not decreasing in p: %v vs %v", x1, x2)
	}
	// For small p the sqrt term dominates: quadrupling p halves the rate.
	ratio := ThroughputEquation(s, r, 1e-4) / ThroughputEquation(s, r, 4e-4)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("sqrt scaling off: ratio = %v", ratio)
	}
	if !math.IsInf(ThroughputEquation(s, r, 0), 1) {
		t.Fatal("zero loss should give infinite rate")
	}
	// p > 1 is clamped.
	if ThroughputEquation(s, r, 2) != ThroughputEquation(s, r, 1) {
		t.Fatal("p clamp missing")
	}
	// Longer RTT ⇒ lower rate.
	if ThroughputEquation(s, 0.2, 0.01) >= ThroughputEquation(s, 0.1, 0.01) {
		t.Fatal("rate not decreasing in RTT")
	}
}

// tfrcPair wires a sender and receiver through a lossy fixed-delay pipe.
type tfrcPair struct {
	sched *sim.Scheduler
	snd   *TFRCSender
	rcv   *TFRCReceiver
	// dropEvery drops data packets whose seq ≡ 0 (mod dropEvery), if > 0.
	dropEvery int64
}

func newTFRCPair(dropEvery int64) *tfrcPair {
	p := &tfrcPair{sched: sim.NewScheduler(), dropEvery: dropEvery}
	cfg := TFRCConfig{Flow: 1, Src: 100, Dst: 200, PktSize: 1000,
		InitialRTT: 50 * sim.Millisecond}
	delay := 25 * sim.Millisecond
	fwd := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		if p.dropEvery > 0 && pkt.Seq > 0 && pkt.Seq%p.dropEvery == 0 {
			return
		}
		p.sched.After(delay, func() { p.rcv.Handle(pkt) })
	})
	rev := netsim.HandlerFunc(func(pkt *netsim.Packet) {
		p.sched.After(delay, func() { p.snd.Handle(pkt) })
	})
	p.snd = NewTFRCSender(p.sched, fwd, cfg)
	p.rcv = NewTFRCReceiver(p.sched, rev, cfg)
	return p
}

func TestTFRCSlowStartWithoutLoss(t *testing.T) {
	p := newTFRCPair(0)
	initial := p.snd.Rate()
	p.snd.Start()
	p.sched.RunUntil(sim.Time(2 * sim.Second))
	p.snd.Stop()
	p.rcv.Stop()
	if p.snd.Rate() < 8*initial {
		t.Fatalf("rate did not grow in lossless slow start: %v -> %v",
			initial, p.snd.Rate())
	}
	if p.snd.FeedbackIn == 0 {
		t.Fatal("no feedback received")
	}
	if p.rcv.LossEvents != 0 {
		t.Fatal("phantom loss events")
	}
}

func TestTFRCRespondsToLoss(t *testing.T) {
	p := newTFRCPair(20) // 5% packet loss
	p.snd.Start()
	p.sched.RunUntil(sim.Time(20 * sim.Second))
	p.snd.Stop()
	p.rcv.Stop()
	if p.rcv.LossEvents == 0 {
		t.Fatal("no loss events detected")
	}
	if p.snd.LastLossRate <= 0 {
		t.Fatal("sender never told about loss")
	}
	// The equation must hold approximately: measured rate ≈ X(p).
	want := ThroughputEquation(1000, p.snd.RTT().Seconds(), p.snd.LastLossRate)
	got := p.snd.Rate()
	if got > 2*want || got < want/4 {
		t.Fatalf("rate %v far from equation %v (p=%v)", got, want, p.snd.LastLossRate)
	}
}

func TestTFRCLossEventGroupingSubRTT(t *testing.T) {
	// Losses within one RTT of an event start must join that event.
	p := newTFRCPair(0)
	cfgRTT := 50 * sim.Millisecond
	_ = cfgRTT
	p.snd.Start()
	// Let a few packets flow, then handcraft arrivals with gaps.
	p.sched.RunUntil(sim.Time(500 * sim.Millisecond))
	ev := p.rcv.LossEvents
	// Synthesize: three consecutive missing sequences arriving as one gap
	// produce one loss event.
	base := p.rcv.expected
	p.rcv.Handle(&netsim.Packet{Flow: 1, Kind: netsim.Data, Seq: base + 3,
		Size: 1000, SendTime: p.sched.Now(), SenderRTT: 50 * sim.Millisecond})
	if p.rcv.LossEvents != ev+1 {
		t.Fatalf("3-packet gap produced %d events, want 1", p.rcv.LossEvents-ev)
	}
	if p.rcv.LostPkts < 3 {
		t.Fatalf("lost packets = %d", p.rcv.LostPkts)
	}
	p.snd.Stop()
	p.rcv.Stop()
}

func TestTFRCNoFeedbackHalvesRate(t *testing.T) {
	s := sim.NewScheduler()
	blackhole := netsim.HandlerFunc(func(p *netsim.Packet) {})
	snd := NewTFRCSender(s, blackhole, TFRCConfig{Flow: 1, Src: 1, Dst: 2,
		PktSize: 1000, InitialRTT: 50 * sim.Millisecond})
	snd.Start()
	r0 := snd.Rate()
	s.RunUntil(sim.Time(2 * sim.Second)) // 10 no-feedback periods
	snd.Stop()
	if snd.Rate() >= r0 {
		t.Fatalf("rate did not decay without feedback: %v -> %v", r0, snd.Rate())
	}
	if snd.RateReductions == 0 {
		t.Fatal("no reductions counted")
	}
}

func TestTFRCLossEventRateZeroBeforeLoss(t *testing.T) {
	p := newTFRCPair(0)
	if p.rcv.LossEventRate() != 0 {
		t.Fatal("loss rate nonzero before any loss")
	}
}

func TestTFRCValidation(t *testing.T) {
	s := sim.NewScheduler()
	out := netsim.HandlerFunc(func(p *netsim.Packet) {})
	for _, f := range []func(){
		func() { NewTFRCSender(nil, out, TFRCConfig{}) },
		func() { NewTFRCReceiver(nil, out, TFRCConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
	_ = s
}
