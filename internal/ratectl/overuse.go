package ratectl

import "repro/internal/sim"

// State is the overuse detector's bandwidth-usage verdict, the signal the
// AIMD rate controller consumes.
type State int8

// Detector states.
const (
	// StateNormal: the delay gradient is inside the threshold band.
	StateNormal State = iota
	// StateOveruse: the gradient has stayed above the adaptive threshold
	// for the hold time while not decreasing — the bottleneck queue is
	// growing.
	StateOveruse
	// StateUnderuse: the gradient is below the negative threshold — the
	// queue is draining and the controller should hold rather than grow.
	StateUnderuse
)

func (s State) String() string {
	switch s {
	case StateNormal:
		return "normal"
	case StateOveruse:
		return "overuse"
	case StateUnderuse:
		return "underuse"
	default:
		return "unknown"
	}
}

// Overuse detector tuning, from the GCC draft's reference values.
const (
	// detectorInitialThreshold is γ(0) in milliseconds.
	detectorInitialThreshold = 12.5
	// detectorKUp / detectorKDown drive the threshold adaptation: the
	// threshold chases |offset| slowly upward when the offset escapes the
	// band (so self-inflicted delay does not trigger endless overuse) and
	// decays faster when the offset is back inside.
	detectorKUp   = 0.0087
	detectorKDown = 0.039
	// detectorMinThreshold / detectorMaxThreshold clamp the adaptation.
	detectorMinThreshold = 6.0
	detectorMaxThreshold = 600.0
	// detectorAdaptCap skips adaptation on wild outliers (> γ + 15 ms),
	// which would otherwise drag the threshold far from the operating
	// point in one step.
	detectorAdaptCap = 15.0
	// DetectorHoldTime is how long the offset must stay above threshold
	// before overuse is declared — the hysteresis that suppresses
	// single-group flaps (pinned by TestDetectorHoldTime).
	DetectorHoldTime = 10 * sim.Millisecond
	// detectorMaxAdaptStep bounds one adaptation step's time delta (ms):
	// after an arrival gap the threshold must not jump.
	detectorMaxAdaptStep = 100.0
)

// OveruseDetector turns the estimator's offset signal into the
// normal/overuse/underuse state machine of the GCC draft: an adaptive
// threshold γ(i) defines the dead band, overuse requires the offset to
// exceed γ for DetectorHoldTime without decreasing, and underuse fires
// immediately (a draining queue is good news that should be acted on at
// once). The zero value is NOT ready; use NewOveruseDetector or Reset.
type OveruseDetector struct {
	threshold  float64 // γ(i), ms
	state      State
	prevOffset float64
	aboveSince sim.Time // when the offset first exceeded γ, 0 = not above
	lastUpdate sim.Time
	hasUpdate  bool

	// Statistics.
	Transitions uint64 // state changes observed
	OveruseHits uint64 // updates that declared overuse
}

// NewOveruseDetector returns a detector in its initial state.
func NewOveruseDetector() *OveruseDetector {
	d := &OveruseDetector{}
	d.Reset()
	return d
}

// Reset rewinds the detector to its just-built state.
func (d *OveruseDetector) Reset() {
	*d = OveruseDetector{threshold: detectorInitialThreshold}
}

// State reports the current verdict.
func (d *OveruseDetector) State() State { return d.state }

// Threshold reports the current adaptive threshold γ in milliseconds.
func (d *OveruseDetector) Threshold() float64 { return d.threshold }

// Update feeds one offset estimate (ms) observed at the given time and
// returns the new state.
func (d *OveruseDetector) Update(offset float64, now sim.Time) State {
	next := d.state
	switch {
	case offset > d.threshold:
		// Candidate overuse: require persistence and a non-decreasing
		// offset before declaring.
		if d.aboveSince == 0 {
			d.aboveSince = now
		}
		if now.Sub(d.aboveSince) >= DetectorHoldTime && offset >= d.prevOffset {
			next = StateOveruse
		}
		// Otherwise keep the previous state: a short excursion above γ
		// (or a falling offset) never flips to overuse.
	case offset < -d.threshold:
		d.aboveSince = 0
		next = StateUnderuse
	default:
		d.aboveSince = 0
		next = StateNormal
	}
	d.adaptThreshold(offset, now)
	d.prevOffset = offset
	if next != d.state {
		d.Transitions++
		d.state = next
	}
	if d.state == StateOveruse {
		d.OveruseHits++
	}
	return d.state
}

// adaptThreshold drifts γ toward |offset|: up (slowly, kUp) while the
// offset sits outside the band so a delay-based flow sharing the
// bottleneck with loss-based traffic is not starved by its own signal,
// and down (faster, kDown) when the offset returns inside.
func (d *OveruseDetector) adaptThreshold(offset float64, now sim.Time) {
	if !d.hasUpdate {
		d.hasUpdate = true
		d.lastUpdate = now
		return
	}
	abs := offset
	if abs < 0 {
		abs = -abs
	}
	if abs > d.threshold+detectorAdaptCap {
		d.lastUpdate = now
		return
	}
	k := detectorKDown
	if abs > d.threshold {
		k = detectorKUp
	}
	dt := millis(now.Sub(d.lastUpdate))
	if dt > detectorMaxAdaptStep {
		dt = detectorMaxAdaptStep
	}
	d.threshold += k * (abs - d.threshold) * dt
	if d.threshold < detectorMinThreshold {
		d.threshold = detectorMinThreshold
	} else if d.threshold > detectorMaxThreshold {
		d.threshold = detectorMaxThreshold
	}
	d.lastUpdate = now
}
