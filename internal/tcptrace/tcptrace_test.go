package tcptrace

import (
	"testing"

	"repro/internal/sim"
)

func TestRunComparesMethodologies(t *testing.T) {
	res, err := Run(Config{Seed: 1, Flows: 16, Duration: 40 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops < 10 || res.Retransmissions < 10 {
		t.Fatalf("too few events: drops=%d retr=%d", res.Drops, res.Retransmissions)
	}
	// Both views must exist and both must show super-Poisson burstiness.
	if res.Truth.CoV < 1.2 {
		t.Fatalf("truth CoV = %v", res.Truth.CoV)
	}
	if res.FromTCP.N < 2 {
		t.Fatal("tcp-trace analysis empty")
	}
	// The methodology gap the paper predicts: the TCP-trace event count is
	// a biased estimate of the true drop count. It under-counts when a
	// whole loss burst collapses into a recovery's worth of
	// retransmissions, and over-counts when go-back-N after a timeout
	// resends packets that were never dropped. Either way the counts must
	// differ materially.
	ratio := float64(res.Retransmissions) / float64(res.Drops)
	if ratio > 0.9 && ratio < 1.1 {
		t.Fatalf("tcp-trace count within 10%% of truth (%d vs %d); expected a methodology gap",
			res.Retransmissions, res.Drops)
	}
	// And the timing structure differs: retransmissions are paced by
	// recovery RTTs, so the inferred clustering departs from the truth.
	diff := res.Truth.FracBelow001 - res.FromTCP.FracBelow001
	if diff < 0 {
		diff = -diff
	}
	if diff < 0.01 {
		t.Logf("warning: clustering gap only %.3f", diff)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{Seed: 3, Flows: 12, Duration: 20 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Seed: 3, Flows: 12, Duration: 20 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if a.Drops != b.Drops || a.Retransmissions != b.Retransmissions {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d",
			a.Drops, a.Retransmissions, b.Drops, b.Retransmissions)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Flows != 8 || c.BottleneckRate != 50_000_000 || c.PktSize != 1000 {
		t.Fatalf("defaults: %+v", c)
	}
}
