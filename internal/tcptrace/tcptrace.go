// Package tcptrace implements the paper's future-work methodology study
// (§6): comparing loss burstiness measured from TCP traces — the approach
// of Paxson's study, which reconstructs loss events from retransmissions —
// against the ground-truth loss process, measured here from the router's
// drop trace of the same run. Because TCP's own transmission process is
// bursty at sub-RTT timescales, the TCP-trace methodology cannot separate
// transport burstiness from loss burstiness; this package quantifies the
// gap the paper predicts.
package tcptrace

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Config sets up the side-by-side measurement.
type Config struct {
	Seed           int64
	Flows          int          // default 8
	BottleneckRate int64        // default 50 Mbps
	RTT            sim.Duration // default 60 ms
	PktSize        int          // default 1000
	Duration       sim.Duration // default 60 s
	Warmup         sim.Duration // default 5 s
}

func (c *Config) fillDefaults() {
	if c.Flows == 0 {
		c.Flows = 8
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 50_000_000
	}
	if c.RTT == 0 {
		c.RTT = 60 * sim.Millisecond
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 5 * sim.Second
	}
}

// Result compares the two methodologies over the same run. The TCP-trace
// count is a biased estimator in both directions: a drop burst inside one
// window collapses into one-retransmission-per-RTT recovery
// (under-count), while go-back-N after a timeout retransmits packets that
// were never dropped (over-count). The paper's CBR methodology avoids
// both biases.
type Result struct {
	// Truth is the analysis of the router's drop trace (our CBR-style
	// ground truth).
	Truth *analysis.Report
	// FromTCP is the analysis of loss times inferred from sender
	// retransmissions (the TCP-trace methodology).
	FromTCP *analysis.Report

	// Drops and Retransmissions count the raw events behind each.
	Drops           int
	Retransmissions int

	// Events is the number of simulated events the world executed.
	Events uint64
}

// Run executes one comparison: N TCP flows share a DropTail bottleneck;
// the router logs every drop (truth) while each sender logs the time of
// every retransmission (the TCP-trace proxy for a loss event).
func Run(cfg Config) (*Result, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()

	delays := make([]sim.Duration, cfg.Flows)
	for i := range delays {
		// ±20% RTT spread, as in the core experiments.
		frac := 0.8 + 0.4*float64(i)/float64(maxI(cfg.Flows-1, 1))
		delays[i] = sim.Duration(frac * float64(cfg.RTT) / 2)
	}
	buffer := netsim.BDP(cfg.BottleneckRate, cfg.RTT, cfg.PktSize) / 2
	if buffer < 8 {
		buffer = 8
	}
	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate: cfg.BottleneckRate,
		AccessRate:     10 * cfg.BottleneckRate,
		AccessDelays:   delays,
		Buffer:         buffer,
	})

	warm := sim.Time(cfg.Warmup)
	truth := &trace.Recorder{}
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		if at >= warm {
			truth.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
		}
	}

	// Wrap each sender's output to log retransmission times: exactly the
	// information a packet trace of the sender reveals.
	inferred := &trace.Recorder{}
	flows := make([]*tcp.Flow, cfg.Flows)
	for i := range flows {
		flows[i] = tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, tcp.Config{
			PktSize:         cfg.PktSize,
			InitialRTT:      2 * delays[i],
			InitialSSThresh: float64(buffer),
		})
		snd := flows[i].Sender
		flowID := i + 1
		orig := snd.Out()
		snd.SetOut(netsim.HandlerFunc(func(p *netsim.Packet) {
			if p.Retrans && sched.Now() >= warm {
				inferred.Add(trace.LossEvent{At: sched.Now(), Flow: flowID,
					Seq: p.Seq, Size: p.Size})
			}
			orig.Handle(p)
		}))
		flows[i].StartAt(sched, sim.Time(sim.Duration(i)*250*sim.Millisecond))
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	if truth.Len() < 2 || inferred.Len() < 2 {
		return nil, fmt.Errorf("tcptrace: too few events (drops=%d retr=%d)",
			truth.Len(), inferred.Len())
	}
	// Retransmissions from different flows interleave; sort before
	// analysis (the router trace is already ordered).
	inferred.SortByTime()

	truthRep, err := analysis.AnalyzeTrace(truth, cfg.RTT, analysis.Config{})
	if err != nil {
		return nil, err
	}
	tcpRep, err := analysis.AnalyzeTrace(inferred, cfg.RTT, analysis.Config{})
	if err != nil {
		return nil, err
	}
	return &Result{
		Truth:           truthRep,
		FromTCP:         tcpRep,
		Drops:           truth.Len(),
		Retransmissions: inferred.Len(),
		Events:          sched.Fired(),
	}, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
