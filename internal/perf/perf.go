// Package perf is the benchmark-trajectory subsystem: it parses `go test
// -bench` output into a schema'd snapshot (ns/op, B/op, allocs/op and the
// custom metrics the root bench suite reports, like frac001 and cov),
// serializes snapshots as the BENCH_<n>.json files at the repository root,
// and diffs two snapshots with per-benchmark tolerances so CI can fail on
// performance regressions. The tools/benchjson command is the CLI face of
// this package; tools/docscheck validates the checked-in snapshots against
// the schema.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the snapshot layout. Bump it when a field
// changes meaning; readers reject snapshots from another schema rather
// than misinterpreting them.
const SchemaVersion = "repro/bench-trajectory/v1"

// Snapshot is one recorded run of the benchmark suite.
type Snapshot struct {
	// Schema is always SchemaVersion on snapshots this package writes.
	Schema string `json:"schema"`
	// Label names the snapshot's role in the trajectory ("0", "1",
	// "baseline", "ci", ...). Informational.
	Label string `json:"label,omitempty"`
	// GoOS/GoArch/CPU/Pkg echo the `go test -bench` header lines; ns/op
	// comparisons across different CPUs are noise, and recording the
	// hardware makes that visible in the file itself.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks holds one entry per benchmark line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (the suffix goes to Procs), so the same benchmark matches across
	// machines with different core counts.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 when the line had none.
	Procs int `json:"procs,omitempty"`
	// Iterations is the b.N the line reports.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline wall-clock cost.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present only when the run used
	// -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds the custom b.ReportMetric values (frac001, cov, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// NsTolerancePct and AllocsTolerancePct, when set on a *baseline*
	// snapshot, override the diff defaults for this benchmark. ns/op
	// needs generous per-benchmark headroom when baseline and candidate
	// run on different hardware; allocs/op is machine-independent and
	// stays strict.
	NsTolerancePct     *float64 `json:"ns_tolerance_pct,omitempty"`
	AllocsTolerancePct *float64 `json:"allocs_tolerance_pct,omitempty"`
}

// Lookup finds a benchmark by (suffix-stripped) name.
func (s *Snapshot) Lookup(name string) *Benchmark {
	for i := range s.Benchmarks {
		if s.Benchmarks[i].Name == name {
			return &s.Benchmarks[i]
		}
	}
	return nil
}

var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)
	procSuffix = regexp.MustCompile(`-(\d+)$`)
	headerLine = regexp.MustCompile(`^(goos|goarch|pkg|cpu):\s*(.*)$`)
)

// Parse reads `go test -bench` text output into a Snapshot. Lines that are
// not benchmark results or header lines (PASS, ok, warnings) are ignored.
// It is an error for the input to contain no benchmark lines at all: an
// empty snapshot almost always means the bench run itself failed.
func Parse(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Schema: SchemaVersion}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := headerLine.FindStringSubmatch(line); m != nil {
			switch m[1] {
			case "goos":
				s.GoOS = m[2]
			case "goarch":
				s.GoArch = m[2]
			case "pkg":
				s.Pkg = m[2]
			case "cpu":
				s.CPU = m[2]
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b, err := parseBenchmark(m[1], m[2], m[3])
		if err != nil {
			return nil, fmt.Errorf("perf: %w (line %q)", err, line)
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: reading bench output: %w", err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("perf: no benchmark result lines found")
	}
	return s, nil
}

// parseBenchmark decodes one result line's name, iteration count and
// "value unit" pairs.
func parseBenchmark(name, iters, rest string) (Benchmark, error) {
	b := Benchmark{Name: name, Procs: 1}
	if m := procSuffix.FindStringSubmatch(name); m != nil {
		b.Name = strings.TrimSuffix(name, m[0])
		b.Procs, _ = strconv.Atoi(m[1])
	}
	n, err := strconv.ParseInt(iters, 10, 64)
	if err != nil {
		return b, fmt.Errorf("bad iteration count %q", iters)
	}
	b.Iterations = n

	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return b, fmt.Errorf("odd value/unit pairing in %q", rest)
	}
	sawNs := false
	for i := 0; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return b, fmt.Errorf("bad value %q", fields[i])
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = v
			sawNs = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		case "MB/s":
			// Derived from ns/op; not recorded separately.
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if !sawNs {
		return b, fmt.Errorf("no ns/op value")
	}
	return b, nil
}

// Marshal serializes a snapshot in the canonical form the BENCH files are
// checked in as: indented JSON with a trailing newline, so snapshots diff
// cleanly in review.
func Marshal(s *Snapshot) ([]byte, error) {
	if s.Schema == "" {
		s.Schema = SchemaVersion
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("perf: encode snapshot: %w", err)
	}
	return append(data, '\n'), nil
}

// WriteFile serializes a snapshot to path via Marshal.
func WriteFile(path string, s *Snapshot) error {
	data, err := Marshal(s)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the invariants every stored snapshot must satisfy.
func (s *Snapshot) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", s.Schema, SchemaVersion)
	}
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("snapshot holds no benchmarks")
	}
	seen := map[string]bool{}
	for _, b := range s.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark with empty name")
		}
		if seen[b.Name] {
			return fmt.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q: non-positive ns/op %v", b.Name, b.NsPerOp)
		}
	}
	return nil
}

// DiffOptions sets the default gate tolerances; per-benchmark fields on
// the baseline snapshot override them. Zero values mean exactly that —
// any increase fails — so callers wanting the CI gate's 20% ns/op
// contract say so explicitly (tools/benchjson's -ns-tol flag defaults
// to 20).
type DiffOptions struct {
	// NsTolerancePct is the allowed ns/op growth in percent.
	NsTolerancePct float64
	// AllocsTolerancePct is the allowed allocs/op growth in percent.
	// Allocation counts are deterministic enough to hold near-exactly,
	// and they are the machine-independent half of the gate.
	AllocsTolerancePct float64
}

// Delta compares one benchmark between two snapshots.
type Delta struct {
	Name string
	// NsPct / AllocsPct are the relative changes in percent; negative is
	// an improvement. AllocsPct is NaN-free: it is 0 when either side
	// lacks -benchmem data.
	NsPct     float64
	AllocsPct float64
	// Regressed marks a tolerance violation; Reason says which.
	Regressed bool
	Reason    string

	BaseNs, CurNs         float64
	BaseAllocs, CurAllocs *float64
}

// DiffReport is the outcome of comparing a candidate snapshot against a
// baseline.
type DiffReport struct {
	Deltas []Delta
	// Missing lists baseline benchmarks absent from the candidate — a
	// gate failure, otherwise deleting a slow benchmark would pass.
	Missing []string
	// Added lists candidate benchmarks the baseline does not know.
	// Informational: a new benchmark enters the gate when the baseline
	// is refreshed.
	Added []string
}

// Regressed reports whether the diff violates the gate.
func (r *DiffReport) Regressed() bool {
	if len(r.Missing) > 0 {
		return true
	}
	for _, d := range r.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Diff compares cur against base benchmark by benchmark.
func Diff(base, cur *Snapshot, opts DiffOptions) *DiffReport {
	rep := &DiffReport{}
	for _, bb := range base.Benchmarks {
		cb := cur.Lookup(bb.Name)
		if cb == nil {
			rep.Missing = append(rep.Missing, bb.Name)
			continue
		}
		d := Delta{
			Name:   bb.Name,
			BaseNs: bb.NsPerOp, CurNs: cb.NsPerOp,
			BaseAllocs: bb.AllocsPerOp, CurAllocs: cb.AllocsPerOp,
			NsPct: pctChange(bb.NsPerOp, cb.NsPerOp),
		}
		nsTol := opts.NsTolerancePct
		if bb.NsTolerancePct != nil {
			nsTol = *bb.NsTolerancePct
		}
		if d.NsPct > nsTol {
			d.Regressed = true
			d.Reason = fmt.Sprintf("ns/op +%.1f%% exceeds %.0f%% tolerance", d.NsPct, nsTol)
		}
		if bb.AllocsPerOp != nil && cb.AllocsPerOp != nil {
			baseA, curA := *bb.AllocsPerOp, *cb.AllocsPerOp
			allocTol := opts.AllocsTolerancePct
			if bb.AllocsTolerancePct != nil {
				allocTol = *bb.AllocsTolerancePct
			}
			var reason string
			if baseA == 0 && curA > 0 {
				// A percentage tolerance is meaningless against a
				// zero-alloc baseline: any growth from zero is a
				// regression, which is the steady state the engine's
				// benchmarks defend.
				d.AllocsPct = math.Inf(1)
				reason = fmt.Sprintf("allocs/op grew from 0 to %.0f", curA)
			} else {
				d.AllocsPct = pctChange(baseA, curA)
				if d.AllocsPct > allocTol {
					reason = fmt.Sprintf("allocs/op +%.2f%% exceeds %.2f%% tolerance", d.AllocsPct, allocTol)
				}
			}
			if reason != "" {
				d.Regressed = true
				if d.Reason != "" {
					d.Reason += "; " + reason
				} else {
					d.Reason = reason
				}
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	baseNames := map[string]bool{}
	for _, bb := range base.Benchmarks {
		baseNames[bb.Name] = true
	}
	for _, cb := range cur.Benchmarks {
		if !baseNames[cb.Name] {
			rep.Added = append(rep.Added, cb.Name)
		}
	}
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	return rep
}

func pctChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// Format writes the diff as an aligned human-readable table.
func (r *DiffReport) Format(w io.Writer) error {
	for _, d := range r.Deltas {
		status := "ok"
		if d.Regressed {
			status = "REGRESSED: " + d.Reason
		}
		allocs := ""
		if d.BaseAllocs != nil && d.CurAllocs != nil {
			allocs = fmt.Sprintf("  allocs/op %.0f -> %.0f (%+.2f%%)",
				*d.BaseAllocs, *d.CurAllocs, d.AllocsPct)
		}
		if _, err := fmt.Fprintf(w, "%-36s ns/op %.0f -> %.0f (%+.1f%%)%s  [%s]\n",
			d.Name, d.BaseNs, d.CurNs, d.NsPct, allocs, status); err != nil {
			return err
		}
	}
	for _, name := range r.Missing {
		if _, err := fmt.Fprintf(w, "%-36s MISSING from candidate snapshot\n", name); err != nil {
			return err
		}
	}
	for _, name := range r.Added {
		if _, err := fmt.Fprintf(w, "%-36s new (not in baseline; refresh baseline to gate it)\n", name); err != nil {
			return err
		}
	}
	return nil
}
