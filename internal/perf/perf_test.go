package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure2-8      	       1	1762027960 ns/op	        52.42 cov	         0.9953 frac001	391240592 B/op	 9156587 allocs/op
BenchmarkSchedulerThroughput  	       2	   5554156 ns/op	 4800128 B/op	  100005 allocs/op
BenchmarkEq12Table              	       1	   7153140 ns/op	         4.681 visibility_ratio_m8
PASS
ok  	repro	29.489s
`

func parseSample(t *testing.T) *Snapshot {
	t.Helper()
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseBenchOutput(t *testing.T) {
	t.Parallel()
	s := parseSample(t)
	if s.GoOS != "linux" || s.GoArch != "amd64" || s.Pkg != "repro" || !strings.Contains(s.CPU, "Xeon") {
		t.Fatalf("header not captured: %+v", s)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(s.Benchmarks))
	}

	fig2 := s.Lookup("BenchmarkFigure2")
	if fig2 == nil {
		t.Fatal("suffix-stripped name not found")
	}
	if fig2.Procs != 8 || fig2.Iterations != 1 || fig2.NsPerOp != 1762027960 {
		t.Fatalf("fig2 = %+v", fig2)
	}
	if fig2.Metrics["cov"] != 52.42 || fig2.Metrics["frac001"] != 0.9953 {
		t.Fatalf("custom metrics = %v", fig2.Metrics)
	}
	if fig2.BytesPerOp == nil || *fig2.BytesPerOp != 391240592 ||
		fig2.AllocsPerOp == nil || *fig2.AllocsPerOp != 9156587 {
		t.Fatalf("benchmem fields = %v %v", fig2.BytesPerOp, fig2.AllocsPerOp)
	}

	sched := s.Lookup("BenchmarkSchedulerThroughput")
	if sched == nil || sched.Procs != 1 {
		t.Fatalf("no-suffix benchmark = %+v", sched)
	}

	eq := s.Lookup("BenchmarkEq12Table")
	if eq == nil || eq.AllocsPerOp != nil || eq.BytesPerOp != nil {
		t.Fatalf("benchmem fields invented: %+v", eq)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("parsed snapshot invalid: %v", err)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	t.Parallel()
	s := parseSample(t)
	s.Label = "test"
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || len(got.Benchmarks) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Lookup("BenchmarkFigure2").Metrics["cov"] != 52.42 {
		t.Fatal("metrics lost in round trip")
	}
}

func TestValidateRejectsBadSnapshots(t *testing.T) {
	t.Parallel()
	cases := map[string]*Snapshot{
		"wrong schema": {Schema: "other/v9", Benchmarks: []Benchmark{{Name: "B", NsPerOp: 1}}},
		"no benches":   {Schema: SchemaVersion},
		"dup name": {Schema: SchemaVersion, Benchmarks: []Benchmark{
			{Name: "B", NsPerOp: 1}, {Name: "B", NsPerOp: 2}}},
		"zero ns": {Schema: SchemaVersion, Benchmarks: []Benchmark{{Name: "B"}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func fp(v float64) *float64 { return &v }

func TestDiffTolerances(t *testing.T) {
	t.Parallel()
	base := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Steady", NsPerOp: 1000, AllocsPerOp: fp(100)},
		{Name: "Slower", NsPerOp: 1000, AllocsPerOp: fp(100)},
		{Name: "Leaky", NsPerOp: 1000, AllocsPerOp: fp(100)},
		{Name: "Loose", NsPerOp: 1000, NsTolerancePct: fp(300)},
		{Name: "Gone", NsPerOp: 1000},
	}}
	cur := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Steady", NsPerOp: 1100, AllocsPerOp: fp(100)}, // +10% ns: within 20%
		{Name: "Slower", NsPerOp: 1300, AllocsPerOp: fp(100)}, // +30% ns: fails
		{Name: "Leaky", NsPerOp: 900, AllocsPerOp: fp(101)},   // any alloc increase fails
		{Name: "Loose", NsPerOp: 3500},                        // +250% but 300% override
		{Name: "Fresh", NsPerOp: 5},                           // new: informational
	}}
	rep := Diff(base, cur, DiffOptions{NsTolerancePct: 20})
	if !rep.Regressed() {
		t.Fatal("regressions not detected")
	}
	byName := map[string]Delta{}
	for _, d := range rep.Deltas {
		byName[d.Name] = d
	}
	if byName["Steady"].Regressed {
		t.Fatalf("within-tolerance run flagged: %+v", byName["Steady"])
	}
	if d := byName["Slower"]; !d.Regressed || !strings.Contains(d.Reason, "ns/op") {
		t.Fatalf("ns regression missed: %+v", d)
	}
	if d := byName["Leaky"]; !d.Regressed || !strings.Contains(d.Reason, "allocs/op") {
		t.Fatalf("alloc regression missed: %+v", d)
	}
	if byName["Loose"].Regressed {
		t.Fatalf("per-benchmark ns override ignored: %+v", byName["Loose"])
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "Gone" {
		t.Fatalf("missing = %v", rep.Missing)
	}
	if len(rep.Added) != 1 || rep.Added[0] != "Fresh" {
		t.Fatalf("added = %v", rep.Added)
	}

	var sb strings.Builder
	if err := rep.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSED", "MISSING", "Fresh"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted diff lacks %q:\n%s", want, out)
		}
	}
}

func TestDiffMissingOnlyStillRegresses(t *testing.T) {
	t.Parallel()
	base := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{{Name: "A", NsPerOp: 1}}}
	cur := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{{Name: "B", NsPerOp: 1}}}
	if rep := Diff(base, cur, DiffOptions{}); !rep.Regressed() {
		t.Fatal("dropping a gated benchmark must fail the gate")
	}
}

// A zero-alloc baseline is the steady state the engine defends; any
// growth from it must fail the gate even though a percentage change from
// zero is undefined.
func TestDiffZeroAllocBaselineRegresses(t *testing.T) {
	t.Parallel()
	base := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Clean", NsPerOp: 1000, AllocsPerOp: fp(0), AllocsTolerancePct: fp(5)},
	}}
	cur := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Clean", NsPerOp: 1000, AllocsPerOp: fp(500)},
	}}
	rep := Diff(base, cur, DiffOptions{NsTolerancePct: 20})
	if !rep.Regressed() || !strings.Contains(rep.Deltas[0].Reason, "grew from 0") {
		t.Fatalf("zero-baseline alloc growth not flagged: %+v", rep.Deltas[0])
	}
	// Staying at zero is fine.
	cur.Benchmarks[0].AllocsPerOp = fp(0)
	if rep := Diff(base, cur, DiffOptions{NsTolerancePct: 20}); rep.Regressed() {
		t.Fatalf("zero-to-zero flagged: %+v", rep.Deltas[0])
	}
}

// An explicit zero ns/op tolerance must be honored, not silently
// replaced with a default (the default lives in the benchjson flag).
func TestDiffExplicitZeroNsTolerance(t *testing.T) {
	t.Parallel()
	base := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{{Name: "B", NsPerOp: 1000}}}
	cur := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{{Name: "B", NsPerOp: 1050}}}
	if rep := Diff(base, cur, DiffOptions{}); !rep.Regressed() {
		t.Fatal("+5%% ns/op passed a 0%% tolerance")
	}
}

func TestDiffAllocTolerance(t *testing.T) {
	t.Parallel()
	base := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Wobbly", NsPerOp: 1000, AllocsPerOp: fp(1000), AllocsTolerancePct: fp(1)},
	}}
	cur := &Snapshot{Schema: SchemaVersion, Benchmarks: []Benchmark{
		{Name: "Wobbly", NsPerOp: 1000, AllocsPerOp: fp(1005)},
	}}
	if rep := Diff(base, cur, DiffOptions{}); rep.Regressed() {
		t.Fatal("alloc increase within per-benchmark tolerance flagged")
	}
	cur.Benchmarks[0].AllocsPerOp = fp(1020)
	if rep := Diff(base, cur, DiffOptions{}); !rep.Regressed() {
		t.Fatal("alloc increase beyond per-benchmark tolerance passed")
	}
}
