// Package cli holds the shared command-line conventions of the repo's
// binaries (cmd/lossim, cmd/lossstat, cmd/lossprobe, cmd/paperexp,
// cmd/fleet), so all of them fail the same way: unknown flags and bad
// values print to stderr and exit 2, -h prints usage and exits 0, and
// runtime failures exit 1. Each binary keeps the testable
// run(args, stdout, stderr) shape and uses this package for the parse
// and validation boilerplate.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
)

// NewFlagSet builds a flag set with the shared conventions: errors are
// returned (never os.Exit mid-parse) and all diagnostics go to stderr.
func NewFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// Parse runs fs.Parse with the shared exit-code mapping: ok means the
// caller proceeds; otherwise it returns the exit code — 0 for -h/-help
// (usage already printed), 2 for a bad flag (error already printed).
func Parse(fs *flag.FlagSet, args []string) (code int, ok bool) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0, false
		}
		return 2, false
	}
	return 0, true
}

// Usagef reports an invalid flag value or argument list the same way a
// parse error reads — "name: message" on stderr — and returns the usage
// exit code 2.
func Usagef(stderr io.Writer, name, format string, a ...any) int {
	fmt.Fprintf(stderr, "%s: %s\n", name, fmt.Sprintf(format, a...))
	return 2
}

// Failf reports a runtime failure ("name: message" on stderr) and
// returns exit code 1.
func Failf(stderr io.Writer, name, format string, a ...any) int {
	fmt.Fprintf(stderr, "%s: %s\n", name, fmt.Sprintf(format, a...))
	return 1
}
