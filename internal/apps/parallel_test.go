package apps

import (
	"testing"

	"repro/internal/sim"
)

func smallCfg() ParallelConfig {
	return ParallelConfig{
		TotalBytes:     4 << 20, // 4 MB keeps tests fast
		Flows:          4,
		PktSize:        1000,
		RTT:            20 * sim.Millisecond,
		BottleneckRate: 50_000_000,
	}
}

func TestParallelTransferCompletes(t *testing.T) {
	r := RunParallel(smallCfg())
	if !r.Finished {
		t.Fatal("transfer did not finish")
	}
	if r.Completion < r.LowerBound {
		t.Fatalf("completed faster than the lower bound: %v < %v",
			r.Completion, r.LowerBound)
	}
	if r.Normalized() < 1 || r.Normalized() > 20 {
		t.Fatalf("normalized latency = %v", r.Normalized())
	}
	if len(r.PerFlow) != 4 {
		t.Fatalf("per-flow entries = %d", len(r.PerFlow))
	}
	for i, d := range r.PerFlow {
		if d <= 0 || d > r.Completion {
			t.Fatalf("flow %d completion %v out of range", i, d)
		}
	}
}

func TestParallelLowerBound(t *testing.T) {
	cfg := ParallelConfig{
		TotalBytes:     64 << 20,
		Flows:          4,
		RTT:            50 * sim.Millisecond,
		BottleneckRate: 100_000_000,
	}
	cfg.fillDefaults()
	r := ParallelResult{LowerBound: sim.Duration(float64(cfg.TotalBytes*8) /
		float64(cfg.BottleneckRate) * float64(sim.Second))}
	// 64 MB at 100 Mbps = 5.368 s — the paper quotes 5.39 s.
	sec := r.LowerBound.Seconds()
	if sec < 5.3 || sec > 5.5 {
		t.Fatalf("lower bound = %v s", sec)
	}
}

func TestParallelQuotaSplitExact(t *testing.T) {
	// 1000 packets over 3 flows: quotas 334/333/333 must sum exactly.
	cfg := smallCfg()
	cfg.TotalBytes = 1000 * 1000
	cfg.Flows = 3
	r := RunParallel(cfg)
	if !r.Finished {
		t.Fatal("unfinished")
	}
}

func TestParallelSingleFlow(t *testing.T) {
	cfg := smallCfg()
	cfg.Flows = 1
	r := RunParallel(cfg)
	if !r.Finished {
		t.Fatal("single-flow transfer unfinished")
	}
}

func TestParallelLatencyGrowsWithRTT(t *testing.T) {
	small := smallCfg()
	small.RTT = 10 * sim.Millisecond
	big := smallCfg()
	big.RTT = 200 * sim.Millisecond
	rs := RunParallel(small)
	rb := RunParallel(big)
	if !rs.Finished || !rb.Finished {
		t.Fatal("unfinished")
	}
	if rb.Normalized() <= rs.Normalized() {
		t.Fatalf("normalized latency should grow with RTT: %v (10ms) vs %v (200ms)",
			rs.Normalized(), rb.Normalized())
	}
}

func TestParallelTimeoutReported(t *testing.T) {
	cfg := smallCfg()
	cfg.Timeout = 10 * sim.Millisecond // impossible
	r := RunParallel(cfg)
	if r.Finished {
		t.Fatal("impossible deadline reported finished")
	}
	if r.Completion != cfg.Timeout {
		t.Fatalf("completion = %v, want clamped to timeout", r.Completion)
	}
}

func TestSweepVariance(t *testing.T) {
	vals := Sweep(smallCfg(), 5)
	if len(vals) != 5 {
		t.Fatalf("sweep size = %d", len(vals))
	}
	for _, v := range vals {
		if v < 1 || v > 50 {
			t.Fatalf("sweep value %v out of range", v)
		}
	}
}

func TestParallelDefaults(t *testing.T) {
	var c ParallelConfig
	c.RTT = 50 * sim.Millisecond
	c.fillDefaults()
	if c.TotalBytes != 64<<20 || c.Flows != 4 || c.PktSize != 1000 ||
		c.BottleneckRate != 100_000_000 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Buffer <= 0 {
		t.Fatal("buffer not derived")
	}
}

func TestParallelPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunParallel(ParallelConfig{Flows: -1, TotalBytes: 1, RTT: sim.Millisecond})
}
