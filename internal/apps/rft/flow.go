package rft

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Flow bundles a reliable-file-transfer sender/receiver pair wired onto a
// topology's endpoint nodes, mirroring tcp.Flow and ratectl.GCCFlow.
type Flow struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewFlow wires a transfer flow between two endpoint nodes. The supplied
// cfg's Flow/Src/Dst fields are filled in from the flow id and the nodes'
// addresses; other fields are respected.
func NewFlow(sched *sim.Scheduler, snd, rcv *netsim.Node, flowID int, cfg Config) *Flow {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr
	s := NewSender(sched, snd, cfg)
	r := NewReceiver(sched, rcv, cfg)
	snd.Bind(flowID, s)
	rcv.Bind(flowID, r)
	return &Flow{Sender: s, Receiver: r}
}

// ResetPair rewinds a flow built by NewFlow for another run on a reset
// world, re-binding onto the given nodes (a world reset strips transport
// bindings). The scheduler must have been reset alongside the world.
func (f *Flow) ResetPair(snd, rcv *netsim.Node, flowID int, cfg Config) {
	cfg.Flow = flowID
	cfg.Src = snd.Addr
	cfg.Dst = rcv.Addr
	f.Sender.Reset(cfg)
	f.Receiver.Reset(cfg)
	snd.Bind(flowID, f.Sender)
	rcv.Bind(flowID, f.Receiver)
}

// StartAt schedules the flow to begin at the given simulated time.
func (f *Flow) StartAt(sched *sim.Scheduler, at sim.Time) {
	if at <= sched.Now() {
		f.Sender.Start()
		return
	}
	sched.At(at, f.Sender.startFn)
}

// Restart begins the next transfer on the same wiring: both endpoints
// advance to the next epoch (so stale in-flight packets of the finished
// transfer are ignored), the ledger and AIMD state rewind, observers are
// preserved, and transmission starts immediately. Callers typically
// invoke it from Sender.OnComplete to run back-to-back transfers.
func (f *Flow) Restart() {
	f.Receiver.restart()
	f.Sender.restart()
}

// FCT reports the current transfer's flow completion time — first
// transmission to last chunk arrival at the receiver — or 0 if the
// transfer has not completed.
func (f *Flow) FCT() sim.Duration {
	if f.Receiver.CompletedAt == 0 {
		return 0
	}
	return f.Receiver.CompletedAt.Sub(f.Sender.StartedAt)
}
