// Package rft_test exercises the reliable-file-transfer protocol through
// real simulated worlds (the topo builder, lossy and time-varying links),
// which is why it lives outside the package: rft must stay importable
// from topo, so its tests import topo from the external test package.
package rft_test

import (
	"fmt"
	"testing"

	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topo"
)

// transferSpec builds a multi-pair path through one middle hop carrying
// the given loss process and dynamics: the adversarial conditions (burst
// erasure, rate retunes, queue overflow) all happen between "left" and
// "right". ackLoss, when non-nil, puts a loss process on the reverse
// (feedback) direction of the same hop.
func transferSpec(loss, ackLoss *topo.LossSpec, dyn *topo.DynamicsSpec, pairs int, queue int) topo.Spec {
	spec := topo.Spec{Name: "rft-test"}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "left"}, topo.NodeSpec{Name: "right"})
	spec.Links = append(spec.Links, topo.LinkSpec{
		A: "left", B: "right",
		AB: topo.Dir{
			Rate: 10_000_000, Delay: 10 * sim.Millisecond,
			Queue:    topo.QueueSpec{Limit: queue},
			Dynamics: dyn,
			Loss:     loss,
		},
		BA: topo.Dir{
			Rate: 10_000_000, Delay: 10 * sim.Millisecond,
			Queue: topo.QueueSpec{Limit: topo.DefaultQueueLimit},
			Loss:  ackLoss,
		},
	})
	for i := 0; i < pairs; i++ {
		snd, rcv := fmt.Sprintf("s%d", i), fmt.Sprintf("r%d", i)
		spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: snd}, topo.NodeSpec{Name: rcv})
		access := topo.Dir{Rate: 1_000_000_000, Delay: sim.Duration(2+3*i) * sim.Millisecond}
		spec.Links = append(spec.Links,
			topo.LinkSpec{A: snd, B: "left", AB: access},
			topo.LinkSpec{A: "right", B: rcv, AB: access},
		)
		spec.Flows = append(spec.Flows, topo.FlowSpec{From: snd, To: rcv, Kind: topo.FlowRFT})
	}
	return spec
}

// runTransferWorld builds the spec on a fresh arena and runs every flow in
// back-to-back mode for dur: each completion is folded into the returned
// aggregate and the flow restarted. maxRate, when nonzero, caps the AIMD
// (bytes/second). wire, when non-nil, runs after each flow is created
// (before the world starts) so tests can attach observers.
func runTransferWorld(t *testing.T, seed int64, spec topo.Spec, chunks int64, maxRate float64,
	dur sim.Duration, wire func(i int, f *rft.Flow)) ([]*rft.Flow, *rft.TransferAgg) {
	t.Helper()
	a := exp.NewArena()
	sched := a.Scheduler()
	net, err := topo.NetworkIn(a, sched, spec, sim.SubSeed(seed, 2))
	if err != nil {
		t.Fatal(err)
	}
	net.AttachPool(a.Pool())
	agg := rft.NewTransferAgg()
	flows := make([]*rft.Flow, net.NumFlows())
	for i := range flows {
		f := rft.NewFlow(sched, net.FlowSender(i), net.FlowReceiver(i), i+1, rft.Config{
			ChunkSize:  1000,
			Chunks:     chunks,
			InitialRTT: net.FlowRTT(i),
			MaxRate:    maxRate,
			Seed:       sim.SubSeed(seed, int64(1000+i)),
			Pool:       a.Pool(),
		})
		flows[i] = f
		bytes := f.Sender.TransferBytes()
		f.Sender.OnComplete = func(at sim.Time) {
			agg.ObserveFCT(f.FCT(), bytes)
			f.Restart()
		}
		if wire != nil {
			wire(i, f)
		}
		f.StartAt(sched, sim.Time(sim.Duration(i)*200*sim.Millisecond))
	}
	sched.RunUntil(sim.Time(dur))
	for _, f := range flows {
		agg.AddFlowTotals(f)
	}
	return flows, agg
}

// TestTransferLedgerExactlyOnce is the protocol's correctness property:
// across loss (bursty wire erasure AND queue overflow), link retunes and
// back-to-back restarts, every chunk of every completed transfer is
// delivered to the application exactly once — no chunk twice within a
// generation, no generation completing with a chunk missing.
func TestTransferLedgerExactlyOnce(t *testing.T) {
	t.Parallel()
	const (
		chunks = 96
		pairs  = 3
	)
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			spec := transferSpec(
				// Sticky erasure bursts: mean 4-packet bad dwell, 90% loss
				// when bad.
				&topo.LossSpec{PGB: 0.01, PBG: 0.25, KGood: 0, KBad: 0.9},
				// A thinner loss process on the feedback path too.
				&topo.LossSpec{PGB: 0.005, PBG: 0.25, KGood: 0, KBad: 0.9},
				// Rate retunes every 150 ms, a 3x swing.
				&topo.DynamicsSpec{Walk: &topo.WalkSpec{
					Min: 4_000_000, Max: 12_000_000, Factor: 1.4, Interval: 150 * sim.Millisecond,
				}},
				pairs,
				20, // small queue: overflow losses on top of wire erasure
			)

			// counts[flow][seq] counts deliveries within the current
			// transfer generation; the completion hook audits and clears it.
			counts := make([][]int64, pairs)
			for i := range counts {
				counts[i] = make([]int64, chunks)
			}
			wire := func(i int, f *rft.Flow) {
				f.Receiver.OnChunk = func(seq int64, at sim.Time) {
					if seq < 0 || seq >= chunks {
						t.Fatalf("flow %d delivered out-of-range chunk %d", i, seq)
					}
					counts[i][seq]++
					if counts[i][seq] > 1 {
						t.Fatalf("flow %d delivered chunk %d twice in one transfer", i, seq)
					}
				}
				f.Receiver.OnComplete = func(at sim.Time) {
					for s, c := range counts[i] {
						if c != 1 {
							t.Fatalf("flow %d completed with chunk %d delivered %d times", i, s, c)
						}
						counts[i][s] = 0
					}
				}
			}
			flows, agg := runTransferWorld(t, seed, spec, chunks, 0, 60*sim.Second, wire)

			// The books must balance: first-time deliveries equal completed
			// generations times the file length plus the in-flight
			// transfer's progress.
			for i, f := range flows {
				delivered := int64(f.Receiver.DataIn) - int64(f.Receiver.Duplicates)
				// A generation that completed but whose restart had not yet
				// reached the receiver at run end is already in Transfers;
				// only an incomplete generation contributes partial progress.
				inflight := f.Receiver.Received()
				if f.Receiver.Complete() {
					inflight = 0
				}
				want := int64(f.Receiver.Transfers)*chunks + inflight
				if delivered != want {
					t.Fatalf("flow %d ledger imbalance: %d first-time deliveries, want %d (%d transfers + %d in-flight)",
						i, delivered, want, f.Receiver.Transfers, f.Receiver.Received())
				}
			}
			if agg.Transfers < int64(pairs) {
				t.Fatalf("only %d transfers completed across %d flows; world too hostile or too short", agg.Transfers, pairs)
			}
			if agg.Retransmitted == 0 {
				t.Fatal("no retransmissions: the loss process exercised nothing")
			}
		})
	}
}

// TestTransferCompletesOnCleanPath pins the base case: a loss-free path
// completes files with zero retransmissions and a plausible FCT.
func TestTransferCompletesOnCleanPath(t *testing.T) {
	t.Parallel()
	spec := transferSpec(nil, nil, nil, 1, 200)
	flows, agg := runTransferWorld(t, 9, spec, 64, 0, 30*sim.Second, nil)
	if agg.Transfers == 0 {
		t.Fatal("no transfer completed on a clean path")
	}
	if flows[0].Sender.Retransmitted != 0 {
		t.Fatalf("clean path retransmitted %d chunks", flows[0].Sender.Retransmitted)
	}
	if got := agg.FCTQuantile(0.5); got <= 0 {
		t.Fatalf("median FCT %v not positive", got)
	}
}

// TestNegativeGeometryPanics pins config validation: a negative chunk
// count is a programming error, not a runnable transfer.
func TestNegativeGeometryPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("negative chunk count did not panic")
		}
	}()
	sched := sim.NewScheduler()
	rft.NewSender(sched, sinkHandler{}, rft.Config{Chunks: -1})
}

type sinkHandler struct{}

func (sinkHandler) Handle(p *netsim.Packet) {}

// TestBurstinessDegradesFCT is the paper's claim pushed through the
// application layer: at a FIXED mean loss rate, making the Gilbert–Elliott
// loss process burstier degrades the flow-completion-time tail
// monotonically. The ladder runs on the FEEDBACK path, where the effect is
// structural rather than a tuning accident: client ACKs are cumulative, so
// a dispersed lost ACK costs almost nothing (the next report a quarter-RTT
// later carries strictly more information), but a long bad-state dwell is
// a feedback blackout — rate growth freezes, repairs stall, and when the
// blackout overlaps a completion the sender is stuck probing one chain
// step per probe round until the dwell expires, a delay proportional to
// the dwell. (On the DATA path the differential inverts by design: the
// cool-off AIMD treats a clustered sub-RTT erasure as one congestion
// event and repairs the contiguous hole in a single round, so the same
// mean loss spread thinly costs MORE decrease rounds — that inversion is
// the paper's argument for modelling loss structure instead of a Poisson
// mean.) The differential probes p99: the stationary bad fraction (the
// chance a completion handshake lands inside a blackout) is constant
// across the ladder, but most overlaps end within a probe round or two —
// the dwell-proportional cost lives in the deepest percentile.
func TestBurstinessDegradesFCT(t *testing.T) {
	t.Parallel()
	// Dwell ladder at fixed mean ACK loss: PBG shrinks (mean bad dwell 8 →
	// 96 feedback packets) while PGB scales to hold the stationary bad
	// fraction — and with KBad fixed, the mean loss rate (8%) — constant.
	const (
		kBad   = 1.0
		target = 0.08 // stationary bad-state fraction = mean ACK loss rate
		chunks = 1024
	)
	dwells := []float64{1.0 / 8, 1.0 / 32, 1.0 / 96}
	tails := make([]float64, len(dwells))
	for li, pbg := range dwells {
		pgb := target * pbg / (1 - target)
		var merged *rft.TransferAgg
		// One pair per world (no cross-flow congestion noise), the AIMD
		// capped a little above the bottleneck so the baseline FCT is
		// tight, and several seeds merged so the tail estimate is stable
		// enough to order.
		for seed := int64(1); seed <= 8; seed++ {
			spec := transferSpec(nil,
				&topo.LossSpec{PGB: pgb, PBG: pbg, KGood: 0, KBad: kBad},
				nil, 1, 200)
			_, agg := runTransferWorld(t, seed, spec, chunks, 1_562_500, 90*sim.Second, nil)
			if merged == nil {
				merged = agg
			} else {
				merged.Merge(agg)
			}
		}
		if merged.Transfers < 20 {
			t.Fatalf("dwell %v completed only %d transfers; ladder needs more", 1/pbg, merged.Transfers)
		}
		tails[li] = merged.FCTQuantile(0.99)
		t.Logf("dwell=%5.1f pkts: transfers=%d p50=%.0fms p95=%.0fms p99=%.0fms mean=%.0fms retrans=%.4f",
			1/pbg, merged.Transfers, merged.FCTQuantile(0.5)*1e3, merged.FCTQuantile(0.95)*1e3,
			tails[li]*1e3, merged.FCT.Mean*1e3, merged.RetransRatio())
	}
	for i := 1; i < len(tails); i++ {
		if tails[i] <= tails[i-1] {
			t.Fatalf("p99 FCT not monotone in burstiness: dwell ladder %v gave tails %v", dwells, tails)
		}
	}
}
