package rft

import (
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Receiver tracks the chunk ledger of one transfer and reports progress
// on the periodic client ACK: a cumulative ACK, the distinct-chunk count,
// and up to netsim.RFTResendEntries missing-chunk ranges re-derived from
// the ledger every tick (the report is stateless, so a lost report costs
// nothing). It implements netsim.Handler for arriving chunk packets.
//
// The ledger invariant — every chunk is delivered to the application
// exactly once, regardless of loss, reordering, duplication or link
// retunes — is enforced here: OnChunk fires on a chunk's first arrival
// only, and the transfer completes exactly when all Chunks distinct
// chunks have arrived.
type Receiver struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   Config

	// got is the chunk ledger bitmap; the backing array is reused across
	// transfers and resets.
	got        []uint64
	received   int64
	nextNeeded int64
	maxSeen    int64
	epoch      int64
	ackSeq     int64

	running   bool
	complete  bool
	lastAckAt sim.Time
	pktID     uint64
	ackTimer  sim.Timer
	ackFn     func()

	lastDataSend    sim.Time
	lastDataArrival sim.Time

	// CompletedAt is when the final chunk arrived — the receiver-side
	// completion instant the flow completion time is measured to.
	CompletedAt sim.Time

	// Statistics (cumulative across Restart generations).
	DataIn     uint64 // chunk packets accepted (current epoch)
	Duplicates uint64 // chunks that had already arrived
	StaleData  uint64 // previous-epoch chunks dropped
	AcksOut    uint64
	Transfers  uint64 // transfers completed

	// OnChunk observes every first-time chunk delivery — the ledger
	// hook property tests assert exactly-once delivery with. Nil-safe.
	OnChunk func(seq int64, at sim.Time)
	// OnComplete fires when the final chunk arrives. Nil-safe.
	OnComplete func(at sim.Time)
}

// NewReceiver builds the transfer sink; out is where client ACKs are
// injected (normally the receiver-side node).
func NewReceiver(sched *sim.Scheduler, out netsim.Handler, cfg Config) *Receiver {
	if sched == nil || out == nil {
		panic("rft: NewReceiver requires scheduler and output")
	}
	r := &Receiver{sched: sched, out: out}
	r.ackFn = r.onAckTick
	r.Reset(cfg)
	return r
}

// Reset rewinds the receiver — ledger, cursors, report counter and
// statistics — to the state NewReceiver(sched, out, cfg) would produce,
// keeping the warm bitmap capacity. The owning scheduler must have been
// reset first.
func (r *Receiver) Reset(cfg Config) {
	cfg.fillDefaults()
	cfg.validate()
	r.cfg = cfg
	r.epoch = 0
	r.DataIn = 0
	r.Duplicates = 0
	r.StaleData = 0
	r.AcksOut = 0
	r.Transfers = 0
	r.pktID = 0
	r.OnChunk = nil
	r.OnComplete = nil
	r.rewindTransfer()
}

// rewindTransfer clears the ledger for a new transfer.
func (r *Receiver) rewindTransfer() {
	words := int(r.cfg.Chunks+63) / 64
	if cap(r.got) < words {
		r.got = make([]uint64, words)
	} else {
		r.got = r.got[:words]
		for i := range r.got {
			r.got[i] = 0
		}
	}
	r.received = 0
	r.nextNeeded = 0
	r.maxSeen = -1
	r.ackSeq = 0
	r.running = false
	r.complete = false
	r.lastAckAt = 0
	r.ackTimer = sim.Timer{}
	r.lastDataSend = 0
	r.lastDataArrival = 0
	r.CompletedAt = 0
}

// Received reports the distinct-chunk count of the current transfer.
func (r *Receiver) Received() int64 { return r.received }

// Complete reports whether the current transfer has fully arrived.
func (r *Receiver) Complete() bool { return r.complete }

// Has reports whether the given chunk has arrived.
func (r *Receiver) Has(seq int64) bool {
	if seq < 0 || seq >= r.cfg.Chunks {
		return false
	}
	return r.got[seq>>6]&(1<<uint(seq&63)) != 0
}

// Handle implements netsim.Handler for arriving chunk packets; the
// receiver is their final consumer.
func (r *Receiver) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Data || p.Flow != r.cfg.Flow {
		r.cfg.Pool.Put(p)
		return
	}
	if p.Ack != r.epoch {
		r.StaleData++
		r.cfg.Pool.Put(p)
		return
	}
	now := r.sched.Now()
	seq := p.Seq
	send := p.SendTime
	r.cfg.Pool.Put(p)
	if seq < 0 || seq >= r.cfg.Chunks {
		return
	}
	r.DataIn++
	r.lastDataSend = send
	r.lastDataArrival = now
	if r.Has(seq) {
		r.Duplicates++
		// A duplicate after completion means the completion ACK was
		// lost and the sender is probing; re-ACK (rate-limited) so the
		// pair converges.
		if r.complete && now.Sub(r.lastAckAt) >= r.cfg.AckInterval/2 {
			r.sendAck(now)
		}
		return
	}
	r.got[seq>>6] |= 1 << uint(seq&63)
	r.received++
	if seq > r.maxSeen {
		r.maxSeen = seq
	}
	for r.nextNeeded < r.cfg.Chunks && r.Has(r.nextNeeded) {
		r.nextNeeded++
	}
	if r.OnChunk != nil {
		r.OnChunk(seq, now)
	}
	if r.received == r.cfg.Chunks {
		r.complete = true
		r.Transfers++
		r.CompletedAt = now
		r.stopAcks()
		r.sendAck(now) // the completion report
		if r.OnComplete != nil {
			r.OnComplete(now)
		}
		return
	}
	if !r.running {
		r.running = true
		// Seeded phase jitter, like the GCC feedback cadence, so
		// co-located transfers spread their reports over the interval.
		jitter := sim.Duration(uint64(sim.SubSeed(r.cfg.Seed, 1)) % uint64(r.cfg.AckInterval))
		r.ackTimer = r.sched.After(r.cfg.AckInterval/2+jitter/2, r.ackFn)
	}
}

func (r *Receiver) onAckTick() {
	r.ackTimer = sim.Timer{}
	if !r.running || r.complete {
		return
	}
	r.sendAck(r.sched.Now())
	r.ackTimer = r.sched.After(r.cfg.AckInterval, r.ackFn)
}

// sendAck emits one client report: cumulative ACK, distinct count, and
// the lowest missing-chunk ranges between the cumulative ACK and the
// highest chunk seen.
func (r *Receiver) sendAck(now sim.Time) {
	r.ackSeq++
	r.pktID++
	p := r.cfg.Pool.Get()
	p.ID = r.pktID
	p.Flow = r.cfg.Flow
	p.Kind = netsim.Feedback
	p.Size = 64
	p.Src = r.cfg.Dst // receiver address
	p.Dst = r.cfg.Src // back to the sender
	p.SendTime = now
	p.HasRFTAck = true
	fb := &p.RFTAck
	fb.Epoch = r.epoch
	fb.AckSeq = r.ackSeq
	fb.NextNeeded = r.nextNeeded
	fb.Received = r.received
	fb.Complete = r.complete
	fb.Timestamp = r.lastDataSend
	fb.Delay = now.Sub(r.lastDataArrival)
	fb.NumResend = 0
	if !r.complete {
		r.fillResend(fb)
	}
	r.lastAckAt = now
	r.AcksOut++
	r.out.Handle(p)
}

// fillResend scans the ledger from the cumulative ACK to the highest
// chunk seen and records up to RFTResendEntries missing ranges, lowest
// first. Remaining gaps are picked up by later reports.
func (r *Receiver) fillResend(fb *netsim.RFTFeedback) {
	c := r.nextNeeded
	for fb.NumResend < netsim.RFTResendEntries && c < r.maxSeen {
		for c < r.maxSeen && r.Has(c) {
			c++
		}
		if c >= r.maxSeen {
			return
		}
		start := c
		for c < r.maxSeen && !r.Has(c) {
			c++
		}
		fb.Resend[fb.NumResend] = netsim.RFTRange{Start: start, End: c}
		fb.NumResend++
	}
}

// stopAcks cancels the periodic report timer.
func (r *Receiver) stopAcks() {
	r.running = false
	r.sched.Cancel(r.ackTimer)
	r.ackTimer = sim.Timer{}
}

// restart advances the receiver into the next transfer generation,
// clearing the ledger while preserving observers.
func (r *Receiver) restart() {
	r.stopAcks()
	epoch := r.epoch
	r.rewindTransfer()
	r.epoch = epoch + 1
}
