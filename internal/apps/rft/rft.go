// Package rft implements a deterministic, simulated-time reliable file
// transfer protocol in the style of rftp: the file is split into
// fixed-size chunks, the receiver tracks a chunk ledger and reports
// progress on a periodic client ACK carrying a cumulative ACK plus a
// bounded list of missing-chunk ranges (resend entries), and the sender
// paces chunks at an AIMD-controlled rate whose multiplicative decrease is
// gated by a cool-off period of ≈1.5 RTTs of ACKs — halving at most once
// per window of six reports, exactly the rftp AIMD rule. It runs on the
// netsim/sim substrate with pooled packets and precreated timer
// callbacks, and rewinds via Reset/ResetPair like the TCP and GCC
// families, so steady-state transfer seconds are allocation-free on a
// cached world.
//
// The protocol is the application-layer counterpart of the paper's
// burstiness finding: clustered sub-RTT losses erase whole chunk runs,
// which turn into resend entries, retransmission rounds and long
// flow-completion tails that independent losses of the same mean rate do
// not produce. TransferAgg (stats.go) makes flow completion time a
// mergeable first-class metric for the sweep and fleet layers.
package rft

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// DecreaseCoolOff is the AIMD decrease cool-off in client ACKs: after a
// multiplicative decrease the sender ignores resend entries for this many
// reports. At the default four reports per RTT that is 1.5 RTTs — long
// enough for the halved rate to take effect end to end before the next
// halving, per the rftp AIMD.
const DecreaseCoolOff = 6

// acksPerRTT is the nominal client ACK cadence relative to the RTT: the
// default AckInterval is InitialRTT/acksPerRTT, making DecreaseCoolOff
// ACKs span 1.5 RTTs.
const acksPerRTT = 4

// aiChunksPerAck is the additive-increase step in chunks per clean ACK,
// sized so the rate grows by roughly one chunk per ACK-interval slot of
// the RTT — the packets-per-tick increment of the rftp controller mapped
// onto byte-rate pacing.
const aiChunksPerAck = 4

// slowStartGrowth is the per-clean-ACK rate multiplier before the first
// multiplicative decrease, the startup ramp that replaces TCP slow start.
// At four ACKs per RTT this compounds to ≈2x per RTT — TCP's doubling.
// Anything steeper overshoots the bottleneck by the growth accrued during
// one RTT of feedback lag, and with the decrease gated to once per
// cool-off the sender can shed at most 2x per 1.5 RTT: a ramp faster than
// the shed rate buries the queue for many RTTs and erases whole files.
const slowStartGrowth = 1.19

// resendQueueCap bounds how many chunks one client ACK may enqueue for
// retransmission. Gaps beyond the cap are re-reported by later ACKs (the
// receiver re-derives its missing set every tick), so the bound costs
// only latency, never correctness.
const resendQueueCap = 1024

// Config parameterizes a transfer pair. Src/Dst are the sender's
// addresses; the receiver swaps them for the client ACK stream.
type Config struct {
	Flow int
	Src  int
	Dst  int

	// ChunkSize is the chunk payload size in bytes (default 1000).
	ChunkSize int
	// Chunks is the file length in chunks (default 1024).
	Chunks int64

	// InitialRTT seeds the sender's pacing, retransmission suppression
	// and the default ACK cadence before the first report (default
	// 100 ms).
	InitialRTT sim.Duration
	// AckInterval is the receiver's client ACK cadence (default
	// InitialRTT/4, floored at 1 ms).
	AckInterval sim.Duration
	// InitialRate is the starting target in bytes/second (default
	// 125000, i.e. 1 Mbps).
	InitialRate float64
	// MinRate floors the target in bytes/second (default 12500).
	MinRate float64
	// MaxRate caps the target in bytes/second (default none).
	MaxRate float64
	// Seed desynchronizes the receiver's ACK phase, like the GCC
	// feedback jitter: part of the world's SubSeed chain.
	Seed int64
	// Pool, when set, supplies chunk and ACK packets — the world's
	// shared freelist. Nil means plain allocation.
	Pool *netsim.PacketPool
}

func (c *Config) fillDefaults() {
	if c.ChunkSize == 0 {
		c.ChunkSize = 1000
	}
	if c.Chunks == 0 {
		c.Chunks = 1024
	}
	if c.InitialRTT == 0 {
		c.InitialRTT = 100 * sim.Millisecond
	}
	if c.AckInterval == 0 {
		c.AckInterval = c.InitialRTT / acksPerRTT
		if c.AckInterval < sim.Millisecond {
			c.AckInterval = sim.Millisecond
		}
	}
	if c.InitialRate == 0 {
		c.InitialRate = 125_000
	}
	if c.MinRate == 0 {
		c.MinRate = 12_500
	}
}

// validate rejects configurations the transfer cannot run.
func (c *Config) validate() {
	if c.Chunks < 0 || c.ChunkSize < 0 {
		panic(fmt.Sprintf("rft: negative chunk geometry %d×%d", c.Chunks, c.ChunkSize))
	}
}

// Sender paces chunk packets at the AIMD-controlled rate, retransmitting
// the chunks the client ACK's resend entries report missing. It
// implements netsim.Handler for the client ACK stream.
type Sender struct {
	sched *sim.Scheduler
	out   netsim.Handler
	cfg   Config

	rate   float64 // bytes/second
	rtt    sim.Duration
	hasRTT bool
	// epoch is the transfer generation: Restart bumps it on both
	// endpoints, and packets carry it so a stale in-flight chunk or ACK
	// from the previous transfer can never corrupt the next one.
	epoch int64

	coolOff int64 // remaining ACKs before a decrease is allowed again
	// lastDecrease time-gates the next decrease at 1.5 current RTTs: the
	// report cadence is fixed at InitialRTT/4, so when queueing inflates
	// the real RTT well past InitialRTT, DecreaseCoolOff reports alone
	// would span far less than the 1.5 RTTs the cool-off is meant to be —
	// and the sender would shed rate several times before one decrease
	// has reflected in the feedback.
	lastDecrease sim.Time
	slowStart    bool // multiplicative growth until the first decrease
	lastAckSeq   int64
	next         int64 // next new chunk to transmit

	// resendQ is the retransmission schedule, rebuilt from each ACK's
	// resend entries: chunks reported missing whose last transmission is
	// at least one suppression window old. The backing array is reused
	// across ACKs, runs and resets.
	resendQ   []int64
	resendPos int
	// sentAt records each chunk's last transmission time, the
	// suppression clock that keeps one loss from being repaired four
	// times (the receiver re-reports a gap on every ACK until the
	// retransmission lands, ~one RTT at four reports per RTT).
	sentAt []sim.Time

	pktID   uint64
	running bool
	done    bool
	idle    bool // pacing loop parked at probe cadence (nothing eligible)
	// lastReceived/lastAdvance implement the tail keep-alive: the highest
	// distinct-chunk count any report carried, and when the transfer last
	// made progress (a transmission or a report that raised the count).
	lastReceived int64
	lastAdvance  sim.Time
	timer        sim.Timer

	emitFn  func()
	startFn func()

	// StartedAt is when the current transfer's transmission began — the
	// FCT clock's zero.
	StartedAt sim.Time
	// CompletedAt is when the completion ACK arrived (zero until then).
	CompletedAt sim.Time

	// Statistics (cumulative across Restart generations).
	Sent          uint64 // chunk transmissions, first-time and repair
	Retransmitted uint64 // repair transmissions only
	TailProbes    uint64 // tail keep-alive probes (lost-final-ACK guard)
	AcksIn        uint64
	StaleAcks     uint64 // reordered or previous-epoch reports dropped
	Decreases     uint64 // multiplicative decreases applied
	Completed     uint64 // transfers completed

	// OnRate observes every applied rate change (rate-trace tests).
	// Nil-safe.
	OnRate func(rate float64, at sim.Time)
	// OnComplete fires when the completion ACK arrives. Nil-safe. The
	// callback may Restart the flow to begin the next transfer.
	OnComplete func(at sim.Time)
}

// NewSender builds a transfer source injecting into out (normally the
// sender-side node).
func NewSender(sched *sim.Scheduler, out netsim.Handler, cfg Config) *Sender {
	if sched == nil || out == nil {
		panic("rft: NewSender requires scheduler and output")
	}
	s := &Sender{sched: sched, out: out}
	s.emitFn = s.onEmit
	s.startFn = s.Start
	s.Reset(cfg)
	return s
}

// Reset rewinds the sender to the state NewSender(sched, out, cfg) would
// produce, keeping the scheduler, output, precreated callbacks and the
// warm resend/suppression capacity. The owning scheduler must have been
// reset first.
func (s *Sender) Reset(cfg Config) {
	cfg.fillDefaults()
	cfg.validate()
	s.cfg = cfg
	s.epoch = 0
	s.Sent = 0
	s.Retransmitted = 0
	s.TailProbes = 0
	s.AcksIn = 0
	s.StaleAcks = 0
	s.Decreases = 0
	s.Completed = 0
	s.OnRate = nil
	s.OnComplete = nil
	s.rewindTransfer()
}

// rewindTransfer resets the per-transfer state: rate, RTT estimate, AIMD
// phase, chunk cursor, resend schedule and suppression clocks.
func (s *Sender) rewindTransfer() {
	s.rate = s.cfg.InitialRate
	s.rtt = s.cfg.InitialRTT
	s.hasRTT = false
	s.coolOff = 0
	s.lastDecrease = 0
	s.slowStart = true
	s.lastAckSeq = 0
	s.next = 0
	s.resendQ = s.resendQ[:0]
	s.resendPos = 0
	if n := int(s.cfg.Chunks); cap(s.sentAt) < n {
		s.sentAt = make([]sim.Time, n)
	} else {
		s.sentAt = s.sentAt[:n]
		for i := range s.sentAt {
			s.sentAt[i] = 0
		}
	}
	s.running = false
	s.done = false
	s.idle = false
	s.lastReceived = 0
	s.lastAdvance = 0
	s.timer = sim.Timer{}
	s.StartedAt = 0
	s.CompletedAt = 0
}

// Rate reports the current sending rate in bytes/second.
func (s *Sender) Rate() float64 { return s.rate }

// RTT reports the current RTT estimate.
func (s *Sender) RTT() sim.Duration { return s.rtt }

// Done reports whether the current transfer has completed.
func (s *Sender) Done() bool { return s.done }

// Epoch reports the current transfer generation.
func (s *Sender) Epoch() int64 { return s.epoch }

// TransferBytes is the payload volume of one transfer.
func (s *Sender) TransferBytes() int64 {
	return s.cfg.Chunks * int64(s.cfg.ChunkSize)
}

// Start begins (or resumes) the current transfer's transmission.
func (s *Sender) Start() {
	if s.running || s.done {
		return
	}
	s.running = true
	s.StartedAt = s.sched.Now()
	s.lastAdvance = s.StartedAt
	if s.cfg.Chunks == 0 {
		// An empty file is complete by definition; there is nothing for
		// the receiver to ACK.
		s.complete(s.sched.Now())
		return
	}
	s.onEmit()
}

// Stop halts transmission without completing the transfer.
func (s *Sender) Stop() {
	s.running = false
	s.sched.Cancel(s.timer)
	s.timer = sim.Timer{}
}

// pick selects the next chunk to transmit: repair first, then new data.
func (s *Sender) pick() (seq int64, repair, ok bool) {
	if s.resendPos < len(s.resendQ) {
		seq = s.resendQ[s.resendPos]
		s.resendPos++
		return seq, true, true
	}
	if s.next < s.cfg.Chunks {
		seq = s.next
		s.next++
		return seq, false, true
	}
	return 0, false, false
}

func (s *Sender) onEmit() {
	s.timer = sim.Timer{}
	if !s.running || s.done {
		return
	}
	if seq, repair, ok := s.pick(); ok {
		s.idle = false
		s.send(seq, repair)
		gap := sim.Duration(float64(s.cfg.ChunkSize) / s.rate * float64(sim.Second))
		if gap < sim.Microsecond {
			gap = sim.Microsecond
		}
		s.timer = s.sched.After(gap, s.emitFn)
		return
	}
	// Tail: everything is in flight. Park at the ACK cadence; the next
	// report either completes the transfer or refills the repair queue.
	// If the transfer makes no progress for 1.5 RTTs — a lost completion
	// ACK, or a tail burst that erased everything past the receiver's
	// horizon, which its gap-range reports cannot see — re-probe the last
	// chunk so the pair can never deadlock. On a clean tail the in-flight
	// chunks keep raising the reported count until the completion ACK
	// lands, so no probe fires.
	s.idle = true
	now := s.sched.Now()
	if now.Sub(s.lastAdvance) > s.rtt*3/2 {
		s.TailProbes++
		s.send(s.cfg.Chunks-1, true)
		s.lastAdvance = now
	}
	s.timer = s.sched.After(s.cfg.AckInterval, s.emitFn)
}

// send transmits one chunk and stamps its suppression clock.
func (s *Sender) send(seq int64, repair bool) {
	now := s.sched.Now()
	s.pktID++
	p := s.cfg.Pool.Get()
	p.ID = s.pktID
	p.Flow = s.cfg.Flow
	p.Kind = netsim.Data
	p.Size = s.cfg.ChunkSize
	p.Seq = seq
	p.Ack = s.epoch // transfer generation; receivers drop other epochs
	p.Src = s.cfg.Src
	p.Dst = s.cfg.Dst
	p.SendTime = now
	p.Retrans = repair
	s.Sent++
	if repair {
		s.Retransmitted++
	}
	s.sentAt[seq] = now
	s.out.Handle(p)
}

// Handle implements netsim.Handler: apply a client ACK. The sender is the
// report's final consumer and recycles it.
func (s *Sender) Handle(p *netsim.Packet) {
	if p.Kind != netsim.Feedback || !p.HasRFTAck || p.Flow != s.cfg.Flow {
		s.cfg.Pool.Put(p)
		return
	}
	fb := p.RFTAck
	s.cfg.Pool.Put(p)
	if fb.Epoch != s.epoch || fb.AckSeq <= s.lastAckSeq {
		s.StaleAcks++
		return
	}
	if s.done {
		return
	}
	now := s.sched.Now()
	delta := fb.AckSeq - s.lastAckSeq
	s.lastAckSeq = fb.AckSeq
	s.AcksIn++
	if fb.Received > s.lastReceived {
		s.lastReceived = fb.Received
		s.lastAdvance = now
	}

	if sample := now.Sub(fb.Timestamp) - fb.Delay; sample > 0 && fb.Timestamp > 0 {
		if !s.hasRTT {
			s.rtt = sample
			s.hasRTT = true
		} else {
			s.rtt = sim.Duration(0.9*float64(s.rtt) + 0.1*float64(sample))
		}
	}

	if fb.Complete {
		s.complete(now)
		return
	}

	// The rftp AIMD: the cool-off counts down by the report-number delta
	// (lost reports still age it), a clean report grows the rate, and
	// resend entries halve it only once the cool-off has expired.
	if s.coolOff > 0 {
		s.coolOff -= delta
		if s.coolOff < 0 {
			s.coolOff = 0
		}
	}
	if fb.NumResend == 0 {
		if s.slowStart {
			s.rate *= slowStartGrowth
		} else {
			// Additive increase, normalized to the current RTT: the step is
			// aiChunksPerAck chunks per report at the nominal acksPerRTT
			// cadence, but the report cadence is fixed while the real RTT
			// inflates with queueing — scale the step down so the growth
			// stays aiChunksPerAck*acksPerRTT chunks per actual RTT.
			step := aiChunksPerAck * acksPerRTT * float64(s.cfg.ChunkSize) *
				float64(s.cfg.AckInterval) / float64(s.rtt)
			s.rate += step
		}
		if s.cfg.MaxRate > 0 && s.rate > s.cfg.MaxRate {
			s.rate = s.cfg.MaxRate
		}
	} else {
		if s.coolOff == 0 && now.Sub(s.lastDecrease) >= s.rtt*3/2 {
			s.rate /= 2
			if s.rate < s.cfg.MinRate {
				s.rate = s.cfg.MinRate
			}
			s.coolOff = DecreaseCoolOff
			s.lastDecrease = now
			s.slowStart = false
			s.Decreases++
		}
		s.refillResend(fb, now)
	}
	if s.OnRate != nil {
		s.OnRate(s.rate, now)
	}
	// If the pacing loop parked at the tail cadence and this report
	// brought repair work, resume immediately instead of waiting out the
	// probe timer.
	if s.idle && s.resendPos < len(s.resendQ) {
		s.sched.Cancel(s.timer)
		s.onEmit()
	}
}

// refillResend rebuilds the repair schedule from one report's resend
// entries, suppressing chunks whose last transmission is younger than
// 3/4 of an RTT — those are likely in flight (a repair takes a full RTT
// to reflect in the ACK stream, which re-reports the gap ~4 times
// meanwhile).
func (s *Sender) refillResend(fb netsim.RFTFeedback, now sim.Time) {
	s.resendQ = s.resendQ[:0]
	s.resendPos = 0
	suppress := s.rtt * 3 / 4
	for i := 0; i < fb.NumResend; i++ {
		r := fb.Resend[i]
		if r.Start < 0 || r.End > s.cfg.Chunks {
			continue
		}
		for c := r.Start; c < r.End; c++ {
			if now.Sub(s.sentAt[c]) < suppress {
				continue
			}
			if len(s.resendQ) >= resendQueueCap {
				return
			}
			s.resendQ = append(s.resendQ, c)
		}
	}
}

// complete finishes the current transfer.
func (s *Sender) complete(at sim.Time) {
	s.done = true
	s.Completed++
	s.CompletedAt = at
	s.Stop()
	if s.OnComplete != nil {
		s.OnComplete(at)
	}
}

// restart advances the sender into the next transfer generation and
// begins transmitting immediately. Observers (OnRate, OnComplete) are
// preserved; AIMD state, cursors and the suppression clocks rewind.
func (s *Sender) restart() {
	s.Stop()
	epoch := s.epoch
	s.rewindTransfer()
	s.epoch = epoch + 1
	s.Start()
}
