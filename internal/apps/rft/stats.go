package rft

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// TransferSampleBound is the FCT reservoir's retention bound. Percentiles
// are exact up to this many transfers per aggregate; beyond it they come
// from the deterministic weighted subsample of stats.Reservoir.Merge.
const TransferSampleBound = 4096

// TransferAgg is the mergeable flow-completion-time aggregate: per-world
// (or per-replication) transfer outcomes that fold across shards with
// stats machinery, so a fleet can report FCT percentiles over millions of
// transfers while each world retains only a bounded sample. Merging is
// deterministic in merge order — the fleet's world-order turnstile makes
// the pooled aggregate shard-invariant.
type TransferAgg struct {
	// Transfers counts completed transfers and Bytes their payload
	// volume.
	Transfers int64
	Bytes     int64
	// FCT accumulates per-transfer completion times in seconds; Sample
	// is the bounded reservoir the percentiles are computed from.
	FCT    stats.Moments
	Sample stats.Reservoir
	// Goodput accumulates per-transfer goodput in bits/second.
	Goodput stats.Moments
	// Run totals folded in at world end (AddFlowTotals): chunk
	// transmissions, repair transmissions, duplicate deliveries and
	// client reports.
	Sent          int64
	Retransmitted int64
	Duplicates    int64
	Acks          int64
}

// NewTransferAgg returns an empty aggregate ready to observe.
func NewTransferAgg() *TransferAgg {
	a := &TransferAgg{}
	a.Sample.Reset(TransferSampleBound)
	return a
}

// ObserveFCT folds in one completed transfer.
func (a *TransferAgg) ObserveFCT(fct sim.Duration, bytes int64) {
	if fct <= 0 {
		return
	}
	secs := fct.Seconds()
	a.Transfers++
	a.Bytes += bytes
	a.FCT.Observe(secs)
	a.Sample.Observe(secs)
	a.Goodput.Observe(float64(bytes) * 8 / secs)
}

// AddFlowTotals folds one flow's run totals into the aggregate —
// called once per flow when its world finishes.
func (a *TransferAgg) AddFlowTotals(f *Flow) {
	a.Sent += int64(f.Sender.Sent)
	a.Retransmitted += int64(f.Sender.Retransmitted)
	a.Duplicates += int64(f.Receiver.Duplicates)
	a.Acks += int64(f.Receiver.AcksOut)
}

// Merge folds another aggregate into a. Exact for the counters and the
// Welford moments; the reservoir merge is exact while the union fits the
// bound and a deterministic weighted subsample beyond it.
func (a *TransferAgg) Merge(o *TransferAgg) {
	if o == nil {
		return
	}
	a.Transfers += o.Transfers
	a.Bytes += o.Bytes
	a.FCT.Merge(o.FCT)
	a.Sample.Merge(&o.Sample)
	a.Goodput.Merge(o.Goodput)
	a.Sent += o.Sent
	a.Retransmitted += o.Retransmitted
	a.Duplicates += o.Duplicates
	a.Acks += o.Acks
}

// FCTQuantile returns the q-quantile of the retained FCT sample in
// seconds (0 when no transfer completed).
func (a *TransferAgg) FCTQuantile(q float64) float64 {
	items := a.Sample.Items()
	if len(items) == 0 {
		return 0
	}
	return stats.Quantile(items, q)
}

// RetransRatio is repair transmissions over all chunk transmissions
// (0 when nothing was sent).
func (a *TransferAgg) RetransRatio() float64 {
	if a.Sent == 0 {
		return 0
	}
	return float64(a.Retransmitted) / float64(a.Sent)
}
