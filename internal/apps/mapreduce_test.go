package apps

import (
	"testing"

	"repro/internal/sim"
)

func shuffleCfg() ShuffleConfig {
	return ShuffleConfig{
		Mappers:           4,
		Reducers:          4,
		BytesPerPartition: 512 << 10, // 512 KB keeps tests quick
		RTT:               10 * sim.Millisecond,
	}
}

func TestShuffleCompletes(t *testing.T) {
	r := RunShuffle(shuffleCfg())
	if !r.Finished {
		t.Fatal("shuffle did not finish")
	}
	if r.Completion < r.LowerBound {
		t.Fatalf("completed below the incast floor: %v < %v", r.Completion, r.LowerBound)
	}
	if r.Normalized() < 1 || r.Normalized() > 30 {
		t.Fatalf("normalized makespan = %v", r.Normalized())
	}
	if len(r.PerReducer) != 4 {
		t.Fatalf("per-reducer entries = %d", len(r.PerReducer))
	}
	for i, d := range r.PerReducer {
		if d <= 0 || d > r.Completion {
			t.Fatalf("reducer %d completion %v out of range", i, d)
		}
	}
	if r.Straggler < 1 {
		t.Fatalf("straggler ratio = %v", r.Straggler)
	}
}

func TestShuffleLowerBound(t *testing.T) {
	cfg := shuffleCfg()
	cfg.fillDefaults()
	// Each reducer pulls Mappers × partition bytes through its access
	// link: 4 × 512 KB × 8 bits / 100 Mbps ≈ 0.168 s.
	r := RunShuffle(cfg)
	want := 0.168
	got := r.LowerBound.Seconds()
	if got < 0.9*want || got > 1.1*want {
		t.Fatalf("lower bound = %v s, want ≈ %v", got, want)
	}
}

func TestShuffleIncastCausesLoss(t *testing.T) {
	// With many mappers fanning into one reducer link, slow-start bursts
	// must overflow the reducer's downlink buffer.
	cfg := shuffleCfg()
	cfg.Mappers = 8
	cfg.Reducers = 2
	r := RunShuffle(cfg)
	if !r.Finished {
		t.Fatal("unfinished")
	}
	if r.CongestionEvents == 0 {
		t.Fatal("incast produced no congestion events")
	}
}

func TestShuffleMoreReducersMoveMoreDataEfficiently(t *testing.T) {
	// With R reducers every mapper emits R partitions, so the wide job
	// moves 4× the bytes of the narrow one; parallel reducer links must
	// keep the makespan well below 4× the narrow job's.
	narrow := shuffleCfg()
	narrow.Reducers = 1
	wide := shuffleCfg()
	wide.Reducers = 4
	rn := RunShuffle(narrow)
	rw := RunShuffle(wide)
	if !rn.Finished || !rw.Finished {
		t.Fatal("unfinished")
	}
	if rw.Completion >= 4*rn.Completion {
		t.Fatalf("no parallel speedup per byte: wide=%v narrow=%v",
			rw.Completion, rn.Completion)
	}
}

func TestShufflePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunShuffle(ShuffleConfig{Mappers: -1})
}

func TestShuffleTimeoutReported(t *testing.T) {
	cfg := shuffleCfg()
	cfg.Timeout = sim.Millisecond
	r := RunShuffle(cfg)
	if r.Finished {
		t.Fatal("impossible deadline finished")
	}
}
