// Package apps models the distributed-application workloads of the
// paper's Section 4.2: a GridFTP/GFS-style parallel transfer that splits a
// fixed volume evenly over N TCP flows and completes when the slowest flow
// finishes. The paper's Figure 8 plots the completion latency, normalized
// by the theoretic lower bound, against flow count and RTT.
package apps

import (
	"fmt"
	"strconv"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// pairFlowCache is the arena-scratch value RunParallelIn keeps per flow
// count: the flows plus the world they were built on, so a rebuilt world
// invalidates them.
type pairFlowCache struct {
	net   *topo.Network
	flows []*tcp.Flow
}

// ParallelConfig describes one parallel-transfer experiment.
type ParallelConfig struct {
	// TotalBytes is the data volume split across flows (64 MB in the
	// paper).
	TotalBytes int64
	// Flows is the number of parallel TCP connections.
	Flows int
	// PktSize is the TCP segment size in bytes.
	PktSize int
	// Paced selects the rate-based implementation for all flows.
	Paced bool
	// RTT is each flow's two-way propagation delay (all flows share it,
	// as in the paper's Figure 8 setup).
	RTT sim.Duration
	// BottleneckRate is the shared capacity in bits/second.
	BottleneckRate int64
	// Buffer is the bottleneck buffer in packets; 0 derives 1/2 BDP
	// (min 10).
	Buffer int
	// Timeout aborts the run; 0 means 10 minutes of simulated time.
	Timeout sim.Duration
}

func (c *ParallelConfig) fillDefaults() {
	if c.TotalBytes == 0 {
		c.TotalBytes = 64 << 20
	}
	if c.Flows == 0 {
		c.Flows = 4
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.Buffer == 0 {
		c.Buffer = netsim.BDP(c.BottleneckRate, c.RTT, c.PktSize) / 2
		if c.Buffer < 10 {
			c.Buffer = 10
		}
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * 60 * sim.Second
	}
}

// ParallelResult reports one run.
type ParallelResult struct {
	// Completion is the time the slowest flow finished (the transfer
	// latency).
	Completion sim.Duration
	// PerFlow lists each flow's completion time.
	PerFlow []sim.Duration
	// LowerBound is the theoretic minimum: total bits / capacity plus one
	// RTT of startup (5.39 s for 64 MB at 100 Mbps in the paper).
	LowerBound sim.Duration
	// Finished reports whether every flow completed before Timeout.
	Finished bool
	// CongestionEvents totals window reductions across flows.
	CongestionEvents uint64
	// Timeouts totals RTO events across flows.
	Timeouts uint64
	// Events is the number of simulated events the run executed
	// (Scheduler.Fired), the cost-accounting side of the latency result.
	Events uint64
}

// Normalized returns Completion/LowerBound, the Y axis of the paper's
// Figure 8.
func (r ParallelResult) Normalized() float64 {
	if r.LowerBound <= 0 {
		return 0
	}
	return float64(r.Completion) / float64(r.LowerBound)
}

// RunParallel executes one parallel transfer on a fresh dumbbell.
func RunParallel(cfg ParallelConfig) ParallelResult {
	return RunParallelIn(cfg, exp.NewArena())
}

// RunParallelIn is RunParallel on a caller-provided arena — the
// scratch-reuse form replication sweeps drive with a per-worker arena, so
// back-to-back transfers share one event freelist, one packet population
// and one compiled-and-instantiated dumbbell (reset per run via
// topo.NetworkIn, not rebuilt). The arena's scheduler is Reset on access,
// which makes a reused world bit-identical to a fresh one.
func RunParallelIn(cfg ParallelConfig, a *exp.Arena) ParallelResult {
	cfg.fillDefaults()
	if cfg.Flows <= 0 || cfg.TotalBytes <= 0 {
		panic(fmt.Sprintf("apps: bad parallel config %+v", cfg))
	}

	sched := a.Scheduler()
	pool := a.Pool()
	delays := make([]sim.Duration, cfg.Flows)
	for i := range delays {
		// The dumbbell builder gives RTT = 2·access + 2·bottleneck delay;
		// fold everything into access delay with a negligible bottleneck
		// delay.
		delays[i] = cfg.RTT / 2
	}
	d := topo.NewDumbbellIn(a, sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      10 * cfg.BottleneckRate,
		AccessDelays:    delays,
		Buffer:          cfg.Buffer,
	})
	d.AttachPool(pool)

	totalPkts := (cfg.TotalBytes + int64(cfg.PktSize) - 1) / int64(cfg.PktSize)
	perFlow := totalPkts / int64(cfg.Flows)
	rem := totalPkts % int64(cfg.Flows)
	flowCfg := func(i int) tcp.Config {
		quota := perFlow
		if int64(i) < rem {
			quota++
		}
		return tcp.Config{
			PktSize:      cfg.PktSize,
			TotalPackets: quota,
			Paced:        cfg.Paced,
			InitialRTT:   cfg.RTT,
			Pool:         pool,
		}
	}

	// Flows ride the arena too: a cached world keeps its endpoint nodes, so
	// the pair flows built on them rewind (ResetPair) instead of being
	// reconstructed — the receivers' warm out-of-order maps are most of a
	// repeat run's remaining allocations. The cache is validated against the
	// world instance: if NetworkIn rebuilt the dumbbell, the flows rebuild.
	key := "apps/pairflows/" + strconv.Itoa(cfg.Flows)
	var flows []*tcp.Flow
	if v, ok := a.Scratch(key).(*pairFlowCache); ok && v.net == d.Net {
		flows = v.flows
		for i, f := range flows {
			f.ResetPair(d.SenderNode(i), d.ReceiverNode(i), i+1, flowCfg(i))
		}
	} else {
		flows = make([]*tcp.Flow, cfg.Flows)
		for i := range flows {
			flows[i] = tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, flowCfg(i))
		}
		a.SetScratch(key, &pairFlowCache{net: d.Net, flows: flows})
	}
	// One shared completion closure for all flows (not one per flow —
	// closures are a per-run allocation a sweep pays thousands of times).
	remaining := cfg.Flows
	done := func(at sim.Time) {
		remaining--
		if remaining == 0 {
			sched.Halt()
		}
	}
	for _, f := range flows {
		f.Sender.OnComplete = done
	}
	for _, f := range flows {
		f.Sender.Start()
	}
	sched.RunUntil(sim.Time(cfg.Timeout))

	res := ParallelResult{
		PerFlow:    make([]sim.Duration, cfg.Flows),
		LowerBound: sim.Duration(float64(cfg.TotalBytes*8)/float64(cfg.BottleneckRate)*float64(sim.Second)) + cfg.RTT,
		Finished:   true,
		Events:     sched.Fired(),
	}
	for i, f := range flows {
		if !f.Sender.Done() {
			res.Finished = false
			res.PerFlow[i] = cfg.Timeout
		} else {
			res.PerFlow[i] = sim.Duration(f.Sender.CompletedAt)
		}
		if res.PerFlow[i] > res.Completion {
			res.Completion = res.PerFlow[i]
		}
		res.CongestionEvents += f.Sender.CongestionEvents
		res.Timeouts += f.Sender.Timeouts
	}
	return res
}

// Sweep runs the transfer over several seeds is not needed — the
// simulation is deterministic per configuration; variance across "runs"
// in the paper comes from which flows lose during slow start. To expose
// that variance we perturb start times slightly: run k executions with
// staggered starts and report each normalized latency.
func Sweep(cfg ParallelConfig, k int) []float64 {
	vals, _ := SweepEvents(cfg, k)
	return vals
}

// SweepEvents is Sweep plus the total simulated-event count across the k
// runs, for throughput accounting.
func SweepEvents(cfg ParallelConfig, k int) ([]float64, uint64) {
	return SweepEventsIn(cfg, k, exp.NewArena())
}

// SweepEventsIn is SweepEvents running every perturbed repetition on the
// same arena (see RunParallelIn), so a Figure-8 grid cell reuses its
// worker's scratch — scheduler freelist, packet pool and cached dumbbell
// world — across all its runs.
func SweepEventsIn(cfg ParallelConfig, k int, a *exp.Arena) ([]float64, uint64) {
	out := make([]float64, 0, k)
	var events uint64
	for i := 0; i < k; i++ {
		c := cfg
		// Perturb: shift RTT by i·25 µs so queue phase differs run to run,
		// the same role the paper's random run-to-run state plays.
		c.RTT += sim.Duration(i) * 25 * sim.Microsecond
		r := RunParallelIn(c, a)
		out = append(out, r.Normalized())
		events += r.Events
	}
	return out, events
}
