package apps

import (
	"reflect"
	"testing"

	"repro/internal/exp"
	"repro/internal/sim"
)

// TestParallelZeroFlowsDefaults pins the zero-value semantics: Flows: 0
// means "the default fan-out", not an empty transfer — the run completes
// with the default four per-flow completion times.
func TestParallelZeroFlowsDefaults(t *testing.T) {
	r := RunParallel(ParallelConfig{
		TotalBytes:     1 << 20,
		RTT:            10 * sim.Millisecond,
		BottleneckRate: 100_000_000,
	})
	if !r.Finished {
		t.Fatal("defaulted run did not finish")
	}
	if len(r.PerFlow) != 4 {
		t.Fatalf("per-flow entries = %d, want the default 4", len(r.PerFlow))
	}
	for i, d := range r.PerFlow {
		if d <= 0 {
			t.Fatalf("flow %d completion %v not positive", i, d)
		}
	}
}

// TestShuffleZeroHostsDefaults: the same zero-value contract for the
// shuffle — Mappers/Reducers: 0 mean the default 8×8 grid.
func TestShuffleZeroHostsDefaults(t *testing.T) {
	r := RunShuffle(ShuffleConfig{
		BytesPerPartition: 64 << 10,
		RTT:               5 * sim.Millisecond,
	})
	if !r.Finished {
		t.Fatal("defaulted shuffle did not finish")
	}
	if len(r.PerReducer) != 8 {
		t.Fatalf("per-reducer entries = %d, want the default 8", len(r.PerReducer))
	}
}

// TestParallelMixedTimeoutArenaReuse interleaves finished and
// timeout-clamped transfers on one arena: a run that halts early via the
// completion closure, a run the timeout aborts with every flow still
// incomplete, and a normal run after it must each reproduce their
// fresh-arena results exactly. This pins the lifecycle edge the plain
// reuse test misses — a timed-out world is rewound mid-transfer, with
// flows holding unfinished state, and the next reset must erase all of it.
func TestParallelMixedTimeoutArenaReuse(t *testing.T) {
	base := ParallelConfig{
		TotalBytes:     1 << 20,
		Flows:          4,
		RTT:            10 * sim.Millisecond,
		BottleneckRate: 100_000_000,
	}
	clamped := base
	clamped.Timeout = 5 * sim.Millisecond // under one RTT: nothing can finish
	cfgs := []ParallelConfig{base, clamped, base, clamped, base}

	want := make([]ParallelResult, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = RunParallelIn(cfg, exp.NewArena())
	}
	if want[1].Finished || want[1].Completion != clamped.Timeout {
		t.Fatalf("clamped reference not clamped: %+v", want[1])
	}
	if !want[0].Finished || !want[2].Finished {
		t.Fatal("reference runs did not finish; the mix exercises nothing")
	}

	a := exp.NewArena()
	for i, cfg := range cfgs {
		got := RunParallelIn(cfg, a)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("run %d (timeout %v) diverged on the reused arena:\nfresh:  %+v\nreused: %+v",
				i, cfg.Timeout, want[i], got)
		}
	}
}
