package apps

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// ShuffleConfig models the paper's future-work workload (§6): the
// all-to-all shuffle of a MapReduce job. M mapper hosts each transfer a
// partition to every one of R reducer hosts — M·R simultaneous TCP flows
// crossing a shared core and contending again on each reducer's access
// link (the classic incast pattern).
type ShuffleConfig struct {
	Mappers  int // default 8
	Reducers int // default 8
	// BytesPerPartition is the volume of each mapper→reducer transfer
	// (default 2 MB).
	BytesPerPartition int64
	PktSize           int // default 1000

	CoreRate   int64 // shared core capacity (default 1 Gbps)
	AccessRate int64 // per-host access capacity (default 100 Mbps)

	// RTT is the base host-to-host round trip (default 10 ms, a
	// datacenter-ish value scaled up so sub-RTT effects are visible).
	RTT sim.Duration

	// Paced selects the rate-based implementation for all flows.
	Paced bool

	// Timeout bounds the run (default 10 simulated minutes).
	Timeout sim.Duration
}

func (c *ShuffleConfig) fillDefaults() {
	if c.Mappers == 0 {
		c.Mappers = 8
	}
	if c.Reducers == 0 {
		c.Reducers = 8
	}
	if c.BytesPerPartition == 0 {
		c.BytesPerPartition = 2 << 20
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.CoreRate == 0 {
		c.CoreRate = 1_000_000_000
	}
	if c.AccessRate == 0 {
		c.AccessRate = 100_000_000
	}
	if c.RTT == 0 {
		c.RTT = 10 * sim.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * 60 * sim.Second
	}
}

// ShuffleResult reports one shuffle execution.
type ShuffleResult struct {
	// Completion is when the last flow finished (the shuffle makespan).
	Completion sim.Duration
	// PerReducer is each reducer's last-flow completion time.
	PerReducer []sim.Duration
	// LowerBound is the per-reducer volume divided by the reducer access
	// rate — the floor set by the incast bottleneck.
	LowerBound sim.Duration
	// Finished reports whether every flow completed before Timeout.
	Finished bool
	// Straggler is max(PerReducer)/min(PerReducer): the imbalance bursty
	// loss induces between identical reducers.
	Straggler float64
	// CongestionEvents and Timeouts total across flows.
	CongestionEvents uint64
	Timeouts         uint64
}

// Normalized returns Completion/LowerBound.
func (r ShuffleResult) Normalized() float64 {
	if r.LowerBound <= 0 {
		return 0
	}
	return float64(r.Completion) / float64(r.LowerBound)
}

// Addressing for the shuffle topology.
const (
	shuffleLeftAddr  = 1
	shuffleRightAddr = 2
	mapperAddrBase   = 1000
	reducerAddrBase  = 2000
)

// RunShuffle executes one all-to-all shuffle.
func RunShuffle(cfg ShuffleConfig) ShuffleResult {
	cfg.fillDefaults()
	if cfg.Mappers <= 0 || cfg.Reducers <= 0 {
		panic(fmt.Sprintf("apps: bad shuffle config %+v", cfg))
	}
	sched := sim.NewScheduler()

	left := netsim.NewNode(sched, shuffleLeftAddr)
	right := netsim.NewNode(sched, shuffleRightAddr)

	half := cfg.RTT / 4 // four access-link crossings per RTT
	coreBuf := netsim.BDP(cfg.CoreRate, cfg.RTT, cfg.PktSize) / 2
	if coreBuf < 16 {
		coreBuf = 16
	}
	coreFwd := netsim.NewPort(sched, netsim.NewDropTail(coreBuf),
		netsim.NewLink(cfg.CoreRate, 0, right))
	coreRev := netsim.NewPort(sched, netsim.NewDropTail(coreBuf),
		netsim.NewLink(cfg.CoreRate, 0, left))

	accessBuf := netsim.BDP(cfg.AccessRate, cfg.RTT, cfg.PktSize) / 2
	if accessBuf < 16 {
		accessBuf = 16
	}

	mapperNodes := make([]*netsim.Node, cfg.Mappers)
	for m := 0; m < cfg.Mappers; m++ {
		addr := mapperAddrBase + m
		node := netsim.NewNode(sched, addr)
		up := netsim.NewPort(sched, netsim.NewDropTail(accessBuf),
			netsim.NewLink(cfg.AccessRate, half, left))
		down := netsim.NewPort(sched, netsim.NewDropTail(accessBuf),
			netsim.NewLink(cfg.AccessRate, half, node))
		for r := 0; r < cfg.Reducers; r++ {
			node.AddRoute(reducerAddrBase+r, up)
		}
		left.AddRoute(addr, down)
		right.AddRoute(addr, coreRev)
		mapperNodes[m] = node
	}

	reducerNodes := make([]*netsim.Node, cfg.Reducers)
	reducerDown := make([]*netsim.Port, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		addr := reducerAddrBase + r
		node := netsim.NewNode(sched, addr)
		// The reducer's downlink: where the incast contention happens.
		down := netsim.NewPort(sched, netsim.NewDropTail(accessBuf),
			netsim.NewLink(cfg.AccessRate, half, node))
		up := netsim.NewPort(sched, netsim.NewDropTail(accessBuf),
			netsim.NewLink(cfg.AccessRate, half, right))
		for m := 0; m < cfg.Mappers; m++ {
			node.AddRoute(mapperAddrBase+m, up)
		}
		right.AddRoute(addr, down)
		left.AddRoute(addr, coreFwd)
		reducerDown[r] = down
		reducerNodes[r] = node
	}

	// One TCP flow per (mapper, reducer) pair.
	pkts := (cfg.BytesPerPartition + int64(cfg.PktSize) - 1) / int64(cfg.PktSize)
	type flowRef struct {
		snd     *tcp.Sender
		reducer int
	}
	var flows []flowRef
	remaining := cfg.Mappers * cfg.Reducers
	for m := 0; m < cfg.Mappers; m++ {
		for r := 0; r < cfg.Reducers; r++ {
			flowID := m*cfg.Reducers + r + 1
			c := tcp.Config{
				Flow:         flowID,
				Src:          mapperAddrBase + m,
				Dst:          reducerAddrBase + r,
				PktSize:      cfg.PktSize,
				TotalPackets: pkts,
				Paced:        cfg.Paced,
				InitialRTT:   cfg.RTT,
			}
			snd := tcp.NewSender(sched, mapperNodes[m], c)
			rcv := tcp.NewReceiver(sched, reducerNodes[r], flowID,
				c.Dst, c.Src, 40)
			reducerNodes[r].Bind(flowID, rcv)
			mapperNodes[m].Bind(flowID, snd)
			snd.OnComplete = func(at sim.Time) {
				remaining--
				if remaining == 0 {
					sched.Halt()
				}
			}
			flows = append(flows, flowRef{snd, r})
		}
	}
	// Stagger starts over a few ms, as real shuffle fetches do.
	for i, f := range flows {
		snd := f.snd
		sched.At(sim.Time(sim.Duration(i)*sim.Millisecond/4), snd.Start)
	}

	sched.RunUntil(sim.Time(cfg.Timeout))

	res := ShuffleResult{
		PerReducer: make([]sim.Duration, cfg.Reducers),
		LowerBound: sim.Duration(float64(cfg.BytesPerPartition*int64(cfg.Mappers)*8) /
			float64(cfg.AccessRate) * float64(sim.Second)),
		Finished: true,
	}
	for _, f := range flows {
		done := sim.Duration(cfg.Timeout)
		if f.snd.Done() {
			done = sim.Duration(f.snd.CompletedAt)
		} else {
			res.Finished = false
		}
		if done > res.PerReducer[f.reducer] {
			res.PerReducer[f.reducer] = done
		}
		if done > res.Completion {
			res.Completion = done
		}
		res.CongestionEvents += f.snd.CongestionEvents
		res.Timeouts += f.snd.Timeouts
	}
	minR := res.PerReducer[0]
	for _, d := range res.PerReducer {
		if d < minR {
			minR = d
		}
	}
	if minR > 0 {
		res.Straggler = float64(res.Completion) / float64(minR)
	}
	return res
}
