package core

import (
	"fmt"
	"io"

	"repro/internal/apps/rft"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/topo/scenarios"
)

// TransferRow is one RFT scenario's flow-completion-time aggregate,
// merged across replications.
type TransferRow struct {
	Scenario string
	// Agg is the merged transfer aggregate: FCT moments and percentile
	// sample, goodput moments and transmission totals over every
	// replication's worlds.
	Agg *rft.TransferAgg
	// Drops totals the replications' recorded losses, Events their
	// simulated event counts.
	Drops  int64
	Events uint64
}

// TransfersResult is the transfer experiment: for each registered RFT
// scenario, the merged FCT distribution of Replications independent
// worlds.
type TransfersResult struct {
	Rows         []TransferRow
	Replications int
	// Events sums the simulated event counts of every world in the sweep.
	Events uint64
}

// SweepTransfers runs every RFT scenario (scenarios.TransferScenarios)
// across derived replication seeds and merges each scenario's
// rft.TransferAgg in replication order. Replication 0 replays cfg.Seed;
// like every sweep, the result is a pure function of
// (cfg, Replications) regardless of Workers — the merge walks the item
// list in order, so worker scheduling never reorders it.
func SweepTransfers(cfg topo.ScenarioConfig, opts SweepOptions) (*TransfersResult, error) {
	cfg.FillDefaults()
	opts.fillDefaults()
	names := scenarios.TransferScenarios()

	type cell struct {
		sc  int
		rep int
	}
	var items []cell
	for si := range names {
		for r := 0; r < opts.Replications; r++ {
			items = append(items, cell{sc: si, rep: r})
		}
	}

	results := exp.SweepArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers}, items,
		func(run exp.Run[cell], a *exp.Arena) (*topo.ScenarioResult, error) {
			sc, ok := topo.Lookup(names[run.Config.sc])
			if !ok {
				return nil, fmt.Errorf("core: transfer scenario %q not registered", names[run.Config.sc])
			}
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, run.Config.rep, sim.SubSeed(cfg.Seed, int64(run.Config.rep)))
			return sc.RunIn(c, a)
		})
	vals, err := exp.Values(results)
	if err != nil {
		return nil, fmt.Errorf("core: transfers: %w", err)
	}

	res := &TransfersResult{Replications: opts.Replications}
	i := 0
	for _, name := range names {
		row := TransferRow{Scenario: name, Agg: rft.NewTransferAgg()}
		for r := 0; r < opts.Replications; r++ {
			v := vals[i]
			i++
			res.Events += v.Events
			row.Drops += int64(v.Drops)
			row.Events += v.Events
			if v.Transfers == nil {
				return nil, fmt.Errorf("core: scenario %q ran no transfer flows", name)
			}
			row.Agg.Merge(v.Transfers)
		}
		if row.Agg.Transfers == 0 {
			return nil, fmt.Errorf("core: scenario %q completed no transfers; increase duration", name)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTransfers renders the transfer experiment: per RFT scenario, the
// completed-transfer count, the FCT distribution (p50/p95/p99 from the
// merged reservoir sample), the mean per-transfer goodput, and the
// retransmission ratio the burst losses extracted.
func WriteTransfers(w io.Writer, r *TransfersResult) error {
	if _, err := fmt.Fprintf(w, "reliable file transfer: flow completion times (%d replications)\n",
		r.Replications); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-20s %9s %10s %10s %10s %12s %9s %8s\n",
		"scenario", "transfers", "fct-p50", "fct-p95", "fct-p99", "goodput", "retrans", "drops"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-20s %9d %8.0f ms %8.0f ms %8.0f ms %7.2f Mbps %8.4f %8d\n",
			row.Scenario, row.Agg.Transfers,
			row.Agg.FCTQuantile(0.50)*1e3,
			row.Agg.FCTQuantile(0.95)*1e3,
			row.Agg.FCTQuantile(0.99)*1e3,
			row.Agg.Goodput.Mean/1e6,
			row.Agg.RetransRatio(), row.Drops); err != nil {
			return err
		}
	}
	return nil
}
