package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/planetlab"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Fig4Config reproduces the PlanetLab measurement campaign: CBR probes
// over randomly picked directed paths of the 26-site mesh, two runs per
// path (48 B and 400 B) with cross-validation, loss intervals normalized
// by each path's RTT, aggregated into one PDF.
type Fig4Config struct {
	Seed int64
	// Paths is how many randomly picked directed paths to measure
	// (the paper measured across all 650 over three months; default 60).
	Paths int
	// ProbeInterval is the CBR probe gap (default 1 ms).
	ProbeInterval sim.Duration
	// Duration is the per-run measurement length (default 5 minutes, as
	// in the paper; benches scale this down).
	Duration sim.Duration
	// MinLosses is the minimum number of losses for a path to contribute
	// to the aggregate (default 5).
	MinLosses int
	// Workers bounds how many paths are measured concurrently (each path
	// is an independent simulated world with its own scheduler and rng
	// stream, so the result is identical for any worker count); 0 means
	// GOMAXPROCS.
	Workers int
}

func (c *Fig4Config) fillDefaults() {
	if c.Paths == 0 {
		c.Paths = 60
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = sim.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 5 * 60 * sim.Second
	}
	if c.MinLosses == 0 {
		c.MinLosses = 5
	}
}

// Fig4Result aggregates the campaign.
type Fig4Result struct {
	Report *analysis.Report // merged, RTT-normalized PDF across paths

	PathsMeasured  int
	PathsValidated int // passed the dual-size validation
	PathsAnalyzed  int // validated and enough losses
	TotalLosses    int
	// Events totals the simulated events across every path world,
	// including paths the validation later rejected.
	Events uint64
}

// pathOutcome is one path's contribution to the campaign, produced inside
// a sweep worker.
type pathOutcome struct {
	valid  bool
	report *analysis.Report // nil when invalid or too few losses
	events uint64           // simulated events the path world executed
}

// RunFigure4 executes the campaign. Path selection is sequential (it
// consumes one picking rng), but the per-path measurements — each its own
// simulated world with its own scheduler and rng stream — fan out across
// the exp worker pool, each reusing its worker's arena: the probe packets
// come from the arena's pool (a 5-minute run sends ~300k probes per
// size), the scheduler's event freelist survives from path to path, and
// the loss times stream through the arena's analyzer. The aggregate is
// identical for any worker count.
func RunFigure4(cfg Fig4Config) (*Fig4Result, error) {
	cfg.fillDefaults()
	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: cfg.Seed})
	pick := sim.NewRand(sim.SubSeed(cfg.Seed, 21))

	pairs := mesh.RandomPairs(pick, cfg.Paths)

	// The mesh is immutable after construction, so sharing it across the
	// workers is safe; every mutable piece of a measurement is created in
	// the worker or reset out of its arena.
	results := exp.SweepArena(exp.Options{Seed: cfg.Seed, Workers: cfg.Workers}, pairs,
		func(r exp.Run[[2]int], a *exp.Arena) (pathOutcome, error) {
			sched := a.Scheduler()
			path := mesh.NewPathProcess(r.Config[0], r.Config[1])
			m := probe.MeasurePath(sched, path, probe.RunConfig{
				Flow:     1,
				Interval: cfg.ProbeInterval,
				Duration: cfg.Duration,
				Pool:     a.Pool(),
			})
			out := pathOutcome{valid: m.Valid, events: sched.Fired()}
			if !m.Valid || len(m.Small.LossSendTimes) < cfg.MinLosses {
				return out, nil
			}
			an, err := a.Analyzer(m.Small.PathRTT, analysis.Config{})
			if err != nil {
				return out, err
			}
			for _, t := range m.Small.LossSendTimes {
				an.ObserveTime(t)
			}
			rep, err := an.Finalize()
			if err != nil {
				// A path without enough analyzable intervals simply does not
				// contribute, exactly as in the sequential campaign.
				return out, nil
			}
			// Clone: the merge below needs the per-path intervals after the
			// arena has moved on to the worker's next path.
			out.report = rep.Clone()
			return out, nil
		})
	outcomes, err := exp.Values(results)
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{PathsMeasured: len(outcomes)}
	var reports []*analysis.Report
	for _, o := range outcomes {
		res.Events += o.events
		if !o.valid {
			continue
		}
		res.PathsValidated++
		if o.report == nil {
			continue
		}
		res.PathsAnalyzed++
		res.TotalLosses += o.report.N
		reports = append(reports, o.report)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("core: figure 4 campaign yielded no analyzable paths")
	}
	merged, err := analysis.Merge(reports, analysis.Config{})
	if err != nil {
		return nil, err
	}
	res.Report = merged
	return res, nil
}
