package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/planetlab"
	"repro/internal/probe"
	"repro/internal/sim"
)

// Fig4Config reproduces the PlanetLab measurement campaign: CBR probes
// over randomly picked directed paths of the 26-site mesh, two runs per
// path (48 B and 400 B) with cross-validation, loss intervals normalized
// by each path's RTT, aggregated into one PDF.
type Fig4Config struct {
	Seed int64
	// Paths is how many randomly picked directed paths to measure
	// (the paper measured across all 650 over three months; default 60).
	Paths int
	// ProbeInterval is the CBR probe gap (default 1 ms).
	ProbeInterval sim.Duration
	// Duration is the per-run measurement length (default 5 minutes, as
	// in the paper; benches scale this down).
	Duration sim.Duration
	// MinLosses is the minimum number of losses for a path to contribute
	// to the aggregate (default 5).
	MinLosses int
}

func (c *Fig4Config) fillDefaults() {
	if c.Paths == 0 {
		c.Paths = 60
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = sim.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 5 * 60 * sim.Second
	}
	if c.MinLosses == 0 {
		c.MinLosses = 5
	}
}

// Fig4Result aggregates the campaign.
type Fig4Result struct {
	Report *analysis.Report // merged, RTT-normalized PDF across paths

	PathsMeasured  int
	PathsValidated int // passed the dual-size validation
	PathsAnalyzed  int // validated and enough losses
	TotalLosses    int
}

// RunFigure4 executes the campaign.
func RunFigure4(cfg Fig4Config) (*Fig4Result, error) {
	cfg.fillDefaults()
	mesh := planetlab.NewMesh(planetlab.MeshConfig{Seed: cfg.Seed})
	pick := sim.NewRand(sim.SubSeed(cfg.Seed, 21))

	res := &Fig4Result{}
	var reports []*analysis.Report
	seen := map[[2]int]bool{}
	for len(seen) < cfg.Paths {
		i, j := mesh.RandomPair(pick)
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true

		// Each path gets its own scheduler: measurements are independent,
		// as the paper's sequential experiments were.
		sched := sim.NewScheduler()
		path := mesh.NewPathProcess(i, j)
		m := probe.MeasurePath(sched, path, probe.RunConfig{
			Flow:     1,
			Interval: cfg.ProbeInterval,
			Duration: cfg.Duration,
		})
		res.PathsMeasured++
		if !m.Valid {
			continue
		}
		res.PathsValidated++
		if len(m.Small.LossSendTimes) < cfg.MinLosses {
			continue
		}
		rep, err := analysis.Analyze(m.Small.LossSendTimes, m.Small.PathRTT, analysis.Config{})
		if err != nil {
			continue
		}
		res.PathsAnalyzed++
		res.TotalLosses += rep.N
		reports = append(reports, rep)
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("core: figure 4 campaign yielded no analyzable paths")
	}
	merged, err := analysis.Merge(reports, analysis.Config{})
	if err != nil {
		return nil, err
	}
	res.Report = merged
	return res, nil
}
