package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/trace"
)

// measurement bundles the loss-measurement pipeline of one figure run. It
// has two modes, selected by whether the run owns an exp.Arena:
//
//   - retain/batch (arena == nil): a fresh recorder stores the full drop
//     trace and finish analyzes it with the batch pipeline — the mode the
//     golden-trace and CSV paths rely on, and the default for single runs;
//   - streaming/sink (arena != nil): the arena's recorder forwards every
//     drop to the arena's streaming analyzer and burst tracker without
//     retaining it, and finish just finalizes — the mode replication
//     sweeps use, allocation-free across runs and with Trace nil in the
//     result.
//
// TestStreamingMatchesBatch pins the two modes to the same Report.
type measurement struct {
	rec *trace.Recorder
	an  *analysis.Streaming
	bt  *analysis.BurstTracker
}

// newMeasurement wires the pipeline for one run. meanRTT is the analysis
// normalization (and meanRTT/4 the burst-clustering gap, as everywhere).
func newMeasurement(a *exp.Arena, meanRTT sim.Duration) (*measurement, error) {
	m := &measurement{}
	if a == nil {
		m.rec = &trace.Recorder{}
		return m, nil
	}
	an, err := a.Analyzer(meanRTT, analysis.Config{})
	if err != nil {
		return nil, err
	}
	m.an = an
	m.bt = a.Bursts(meanRTT / 4)
	m.rec = a.Recorder()
	m.rec.SetSink(func(e trace.LossEvent) {
		an.Observe(e)
		m.bt.Observe(e)
	}, false)
	return m, nil
}

// finish checks the drop count and produces the scenario result for
// whichever mode the measurement runs in. figure names the run for the
// too-few-drops error. events and forwarded are the run's scheduler and
// port counters (Scheduler.Fired, Network.Forwarded).
func (m *measurement) finish(figure string, meanRTT sim.Duration, events, forwarded uint64) (*ScenarioResult, error) {
	if m.rec.Len() < 2 {
		return nil, fmt.Errorf("core: %s produced %d drops; increase duration or load",
			figure, m.rec.Len())
	}
	if m.an != nil {
		rep, err := m.an.Finalize()
		if err != nil {
			return nil, err
		}
		return &ScenarioResult{
			Report:    rep.Clone(), // detach: the arena recycles rep's slices
			MeanRTT:   meanRTT,
			Bursts:    m.bt.Stats(),
			Drops:     m.rec.Len(),
			Events:    events,
			Forwarded: forwarded,
		}, nil
	}
	report, err := analysis.AnalyzeTrace(m.rec, meanRTT, analysis.Config{})
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{
		Report:    report,
		Trace:     m.rec,
		MeanRTT:   meanRTT,
		Bursts:    analysis.SummarizeBursts(m.rec.Events(), meanRTT/4),
		Drops:     m.rec.Len(),
		Events:    events,
		Forwarded: forwarded,
	}, nil
}
