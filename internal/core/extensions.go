package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/ratectl"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
)

// TFRCCompConfig sets up the TFRC-vs-NewReno competition the paper cites
// (Rhee & Xu): equal numbers of TFRC and TCP NewReno flows share a
// DropTail bottleneck; because TFRC's packets are evenly spaced, it
// detects more of the bursty loss events and loses throughput.
type TFRCCompConfig struct {
	Seed           int64
	FlowsPerClass  int          // default 8
	BottleneckRate int64        // default 100 Mbps
	RTT            sim.Duration // default 50 ms
	PktSize        int          // default 1000
	Duration       sim.Duration // default 60 s
	BufferBDPFrac  float64      // default 0.5
}

func (c *TFRCCompConfig) fillDefaults() {
	if c.FlowsPerClass == 0 {
		c.FlowsPerClass = 8
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.RTT == 0 {
		c.RTT = 50 * sim.Millisecond
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.BufferBDPFrac == 0 {
		c.BufferBDPFrac = 0.5
	}
}

// TFRCCompResult compares the two aggregates.
type TFRCCompResult struct {
	TFRCBytes    uint64
	NewRenoBytes uint64
	// Deficit is 1 − tfrc/newreno.
	Deficit float64
	// TFRC loss-event awareness: mean loss event rate reported.
	TFRCLossRate float64
	// Events is the number of simulated events the world executed.
	Events uint64
}

// RunTFRCCompetition executes the mixed TFRC/TCP experiment.
func RunTFRCCompetition(cfg TFRCCompConfig) (*TFRCCompResult, error) {
	return runTFRCCompetition(cfg, nil)
}

// runTFRCCompetition is RunTFRCCompetition drawing scheduler and pool
// from a worker's arena when one is supplied (SweepTFRCCompetition).
func runTFRCCompetition(cfg TFRCCompConfig, a *exp.Arena) (*TFRCCompResult, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()
	if a != nil {
		sched = a.Scheduler()
	}

	n := cfg.FlowsPerClass
	delays := make([]sim.Duration, 2*n)
	for i := range delays {
		delays[i] = cfg.RTT / 2
	}
	buffer := int(cfg.BufferBDPFrac * float64(netsim.BDP(cfg.BottleneckRate, cfg.RTT, cfg.PktSize)))
	if buffer < 8 {
		buffer = 8
	}
	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          buffer,
	})
	pool := netsim.NewPacketPool()
	if a != nil {
		pool = a.Pool()
	}
	d.AttachPool(pool)

	// TCP NewReno flows on pairs [0,n). The TFRC pairs allocate plainly
	// (their equation-paced rate is low); the ports still recycle whatever
	// they drop, regardless of where a packet was allocated.
	var tcps []*tcp.Flow
	for i := 0; i < n; i++ {
		tcps = append(tcps, tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, tcp.Config{
			PktSize:    cfg.PktSize,
			InitialRTT: cfg.RTT,
			Pool:       pool,
		}))
	}
	// TFRC flows on pairs [n,2n).
	type tfrcPair struct {
		snd *ratectl.TFRCSender
		rcv *ratectl.TFRCReceiver
	}
	var tfrcs []tfrcPair
	for i := n; i < 2*n; i++ {
		flowID := i + 1
		tcfg := ratectl.TFRCConfig{
			Flow:       flowID,
			Src:        netsim.SenderAddr(i),
			Dst:        netsim.ReceiverAddr(i),
			PktSize:    cfg.PktSize,
			InitialRTT: cfg.RTT,
		}
		snd := ratectl.NewTFRCSender(sched, d.SenderNode(i), tcfg)
		rcv := ratectl.NewTFRCReceiver(sched, d.ReceiverNode(i), tcfg)
		d.ReceiverNode(i).Bind(flowID, rcv)
		d.SenderNode(i).Bind(flowID, snd)
		tfrcs = append(tfrcs, tfrcPair{snd, rcv})
	}

	for i := 0; i < n; i++ {
		off := sim.Duration(i) * 100 * sim.Millisecond / sim.Duration(n)
		i := i
		sched.At(sim.Time(off), tcps[i].Sender.Start)
		sched.At(sim.Time(off+50*sim.Millisecond/sim.Duration(n)), tfrcs[i].snd.Start)
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	res := &TFRCCompResult{Events: sched.Fired()}
	for _, f := range tcps {
		res.NewRenoBytes += uint64(f.Receiver.CumAck()) * uint64(cfg.PktSize)
	}
	var lossSum float64
	for _, p := range tfrcs {
		res.TFRCBytes += p.rcv.Received * uint64(cfg.PktSize)
		lossSum += p.snd.LastLossRate
	}
	res.TFRCLossRate = lossSum / float64(n)
	if res.NewRenoBytes == 0 {
		return nil, fmt.Errorf("core: TFRC competition NewReno delivered nothing")
	}
	res.Deficit = 1 - float64(res.TFRCBytes)/float64(res.NewRenoBytes)
	return res, nil
}

// ECNCoverageConfig compares how widely the congestion signal is
// distributed across flows under three bottleneck configurations:
// DropTail drops (the bursty baseline), standard RED+ECN marks, and the
// paper's proposed persistent RED+ECN that marks every flow for one RTT
// after a congestion decision (reference [22]).
type ECNCoverageConfig struct {
	Seed           int64
	Flows          int          // default 16
	BottleneckRate int64        // default 100 Mbps
	RTT            sim.Duration // default 50 ms
	PktSize        int          // default 1000
	Duration       sim.Duration // default 30 s
}

func (c *ECNCoverageConfig) fillDefaults() {
	if c.Flows == 0 {
		c.Flows = 16
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.RTT == 0 {
		c.RTT = 50 * sim.Millisecond
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 30 * sim.Second
	}
}

// ECNMode selects the bottleneck discipline for one coverage run.
type ECNMode int

// The three compared configurations.
const (
	ModeDropTail ECNMode = iota
	ModeRedECN
	ModePersistentECN
)

func (m ECNMode) String() string {
	switch m {
	case ModeDropTail:
		return "droptail"
	case ModeRedECN:
		return "red+ecn"
	case ModePersistentECN:
		return "persistent-ecn"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ECNCoverageResult reports signal coverage for one mode.
type ECNCoverageResult struct {
	Mode ECNMode
	// FlowsSignaledPerEpoch is the mean number of distinct flows that
	// received a congestion signal (drop or mark) per congestion epoch
	// (epochs are RTT-grouped signal bursts).
	FlowsSignaledPerEpoch float64
	// CoverageFraction is that mean divided by the flow count: the
	// paper's goal is coverage ≈ 1 under persistent ECN.
	CoverageFraction float64
	// Epochs counts congestion epochs observed.
	Epochs int
	// AggregatePkts is total delivered packets (sanity: the fix must not
	// collapse throughput).
	AggregatePkts int64
	// FairnessIndex is Jain's index over per-flow goodput.
	FairnessIndex float64
	// Events is the number of simulated events the world executed.
	Events uint64
}

// RunECNCoverage executes one coverage run for the given mode.
func RunECNCoverage(cfg ECNCoverageConfig, mode ECNMode) (*ECNCoverageResult, error) {
	return runECNCoverage(cfg, mode, nil)
}

// runECNCoverage is RunECNCoverage drawing scheduler and pool from a
// worker's arena when one is supplied (RunECNComparison).
func runECNCoverage(cfg ECNCoverageConfig, mode ECNMode, a *exp.Arena) (*ECNCoverageResult, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()
	if a != nil {
		sched = a.Scheduler()
	}
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, int64(100+mode)))

	// Spread RTTs ±20% around the nominal so flows are not artificially
	// phase-locked (the paper's scenarios always have RTT diversity).
	delays := make([]sim.Duration, cfg.Flows)
	for i := range delays {
		frac := 0.8 + 0.4*float64(i)/float64(maxI(cfg.Flows-1, 1))
		delays[i] = sim.Duration(frac * float64(cfg.RTT) / 2)
	}
	buffer := int(0.5 * float64(netsim.BDP(cfg.BottleneckRate, cfg.RTT, cfg.PktSize)))
	if buffer < 8 {
		buffer = 8
	}

	var queue netsim.Queue
	switch mode {
	case ModeDropTail:
		queue = nil // default DropTail
	case ModeRedECN, ModePersistentECN:
		rc := netsim.REDConfig{
			Limit:            buffer,
			MinTh:            float64(buffer) / 6,
			MaxTh:            float64(buffer) / 2,
			MaxP:             0.1,
			ECN:              true,
			PacketsPerSecond: float64(cfg.BottleneckRate) / float64(cfg.PktSize*8),
		}
		if mode == ModePersistentECN {
			rc.PersistMark = cfg.RTT.Seconds()
		}
		queue = netsim.NewRED(rc, rng)
	}

	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          buffer,
		Queue:           queue,
	})
	pool := netsim.NewPacketPool()
	if a != nil {
		pool = a.Pool()
	}
	d.AttachPool(pool)

	// Signal log: (time, flow) of every drop and every mark.
	type signal struct {
		at   sim.Time
		flow int
	}
	var signals []signal
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		signals = append(signals, signal{at, p.Flow})
	}

	useECN := mode != ModeDropTail
	flows := make([]*tcp.Flow, cfg.Flows)
	for i := range flows {
		flows[i] = tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, tcp.Config{
			PktSize:    cfg.PktSize,
			InitialRTT: cfg.RTT,
			ECN:        useECN,
			Pool:       pool,
		})
		// Record marks as signals at the receiver (a CE mark reaching the
		// receiver is the signal delivered to that flow).
		flowID := i + 1
		flows[i].Receiver.OnData = func(p *netsim.Packet, at sim.Time) {
			if p.CE {
				signals = append(signals, signal{at, flowID})
			}
		}
	}
	for i, f := range flows {
		f.StartAt(sched, sim.Time(sim.Duration(i)*100*sim.Millisecond/sim.Duration(cfg.Flows)))
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	if len(signals) == 0 {
		return nil, fmt.Errorf("core: ECN coverage run (%v) saw no congestion signals", mode)
	}

	// Group signals into bursts separated by ≥ RTT/2 of silence and count
	// the distinct flows signaled within one RTT of each burst's start —
	// the paper's question: does one congestion event inform every flow
	// within an RTT?
	res := &ECNCoverageResult{Mode: mode, Events: sched.Fired()}
	gap := cfg.RTT / 2
	var epochFlows map[int]struct{}
	var last, epochStart sim.Time
	var totalFlows int
	flush := func() {
		if epochFlows != nil {
			res.Epochs++
			totalFlows += len(epochFlows)
		}
		epochFlows = nil
	}
	for _, s := range signals {
		if epochFlows == nil || s.at.Sub(last) > gap {
			flush()
			epochFlows = map[int]struct{}{}
			epochStart = s.at
		}
		if s.at.Sub(epochStart) <= cfg.RTT {
			epochFlows[s.flow] = struct{}{}
		}
		last = s.at
	}
	flush()

	if res.Epochs > 0 {
		res.FlowsSignaledPerEpoch = float64(totalFlows) / float64(res.Epochs)
		res.CoverageFraction = res.FlowsSignaledPerEpoch / float64(cfg.Flows)
	}
	var sum, sumSq float64
	for _, f := range flows {
		g := float64(f.Receiver.CumAck())
		res.AggregatePkts += f.Receiver.CumAck()
		sum += g
		sumSq += g * g
	}
	if sumSq > 0 {
		res.FairnessIndex = sum * sum / (float64(cfg.Flows) * sumSq)
	}
	return res, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
