package core

import (
	"repro/internal/crosstraffic"
	"repro/internal/dummynet"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Fig3Config reproduces the Dummynet emulation: the same dumbbell as
// Figure 2, but (a) flow RTTs come from the paper's four fixed classes
// {2, 10, 50, 200} ms, (b) the bottleneck adds per-packet processing
// noise, and (c) the recorded drop timestamps are quantized to the
// FreeBSD 1 ms clock.
type Fig3Config struct {
	Seed           int64
	FlowsPerClass  int   // flows per RTT class (default 4 → 16 total)
	BottleneckRate int64 // default 100 Mbps
	BufferBDPFrac  float64
	NoiseFlows     int
	NoiseFraction  float64
	PktSize        int
	Duration       sim.Duration
	Warmup         sim.Duration
	StartSpread    sim.Duration
	// ProcNoiseMax bounds the router processing jitter (default 100 µs).
	ProcNoiseMax sim.Duration
	// ClockResolution quantizes the loss trace (default 1 ms).
	ClockResolution sim.Duration
}

// RTTClasses are the four Dummynet latency classes of the paper.
var RTTClasses = []sim.Duration{
	2 * sim.Millisecond,
	10 * sim.Millisecond,
	50 * sim.Millisecond,
	200 * sim.Millisecond,
}

func (c *Fig3Config) fillDefaults() {
	if c.FlowsPerClass == 0 {
		c.FlowsPerClass = 4
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.BufferBDPFrac == 0 {
		c.BufferBDPFrac = 0.5
	}
	if c.NoiseFlows == 0 {
		c.NoiseFlows = 50
	}
	if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.10
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.StartSpread == 0 {
		c.StartSpread = 2 * sim.Second
	}
	if c.ProcNoiseMax == 0 {
		c.ProcNoiseMax = 100 * sim.Microsecond
	}
	if c.ClockResolution == 0 {
		c.ClockResolution = sim.Millisecond
	}
}

// RunFigure3 executes the Dummynet-style scenario. The returned
// ScenarioResult's trace holds the quantized timestamps (what the paper's
// instrumented router logged).
func RunFigure3(cfg Fig3Config) (*ScenarioResult, error) {
	return runFigure3(cfg, nil)
}

// runFigure3 is RunFigure3 with optional per-worker scratch: with an
// arena the quantized drop stream feeds the streaming analyzer directly
// (Quantize is monotone, so the stream stays nondecreasing).
func runFigure3(cfg Fig3Config, a *exp.Arena) (*ScenarioResult, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()
	if a != nil {
		sched = a.Scheduler()
	}
	noiseRng := sim.NewRand(sim.SubSeed(cfg.Seed, 11))

	nFlows := cfg.FlowsPerClass * len(RTTClasses)
	delays := make([]sim.Duration, nFlows)
	var meanRTT sim.Duration
	for i := range delays {
		rtt := RTTClasses[i%len(RTTClasses)]
		delays[i] = rtt / 2
		meanRTT += rtt
	}
	meanRTT /= sim.Duration(nFlows)

	buffer := int(cfg.BufferBDPFrac * float64(netsim.BDP(cfg.BottleneckRate, meanRTT, cfg.PktSize)))
	if buffer < 8 {
		buffer = 8
	}

	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          buffer,
	})
	pool := netsim.NewPacketPool()
	if a != nil {
		pool = a.Pool()
	}
	d.AttachPool(pool)

	// The Dummynet non-idealities: processing noise on the bottleneck and
	// a quantizing drop recorder.
	d.Forward.ProcNoise = netsim.UniformNoise(noiseRng, cfg.ProcNoiseMax)
	m, err := newMeasurement(a, meanRTT)
	if err != nil {
		return nil, err
	}
	rec := m.rec
	warm := sim.Time(cfg.Warmup)
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		if at >= warm {
			rec.Add(trace.LossEvent{
				At:   dummynet.Quantize(at, cfg.ClockResolution),
				Flow: p.Flow, Seq: p.Seq, Size: p.Size,
			})
		}
	}

	flows := make([]*tcp.Flow, nFlows)
	for i := range flows {
		flows[i] = tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, tcp.Config{
			PktSize:         cfg.PktSize,
			InitialRTT:      2 * delays[i],
			InitialSSThresh: float64(buffer),
			Pool:            pool,
		})
	}
	for i, f := range flows {
		f.StartAt(sched, sim.Time(sim.Duration(i)*cfg.StartSpread/sim.Duration(nFlows)))
	}

	d.RightRouter.BindDefault(pool.Sink())
	d.LeftRouter.BindDefault(pool.Sink())
	for _, nz := range crosstraffic.NoiseSet(sched, d.Forward, cfg.NoiseFlows/2,
		cfg.BottleneckRate, cfg.NoiseFraction/2, 100000,
		netsim.SenderAddr(0), 2, sim.SubSeed(cfg.Seed, 12), pool) {
		nz.Start()
	}
	for _, nz := range crosstraffic.NoiseSet(sched, d.Reverse, cfg.NoiseFlows-cfg.NoiseFlows/2,
		cfg.BottleneckRate, cfg.NoiseFraction/2, 200000,
		netsim.ReceiverAddr(0), 1, sim.SubSeed(cfg.Seed, 13), pool) {
		nz.Start()
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	// Quantization can reorder equal-tick events only in appearance; the
	// recorder is still nondecreasing because Quantize is monotone.
	return m.finish("figure 3 scenario", meanRTT, sched.Fired(), d.Net.Forwarded())
}
