package core

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/exp"
)

// SweepOptions controls a replicated figure run. Replication 0 replays
// the figure config's own Seed — a one-replication sweep is exactly the
// single run, and adding replications extends a figure rather than
// replacing it — while later replications receive independent
// sim.SubSeed-derived seeds. A sweep is a pure function of
// (config, Replications) — Workers only changes how fast it finishes,
// never what it returns.
type SweepOptions struct {
	// Replications is the number of independent runs (default 4).
	Replications int
	// Workers bounds concurrency; 0 means GOMAXPROCS, 1 is sequential.
	Workers int
}

func (o *SweepOptions) fillDefaults() {
	// Nonpositive counts take the default too: a negative value would
	// reach make() inside exp.Replicate and panic.
	if o.Replications < 1 {
		o.Replications = 4
	}
}

// replicationSeed maps a replication index to its seed: replication 0
// replays the configured base seed, later replications use the
// SubSeed-derived stream handed in by the runner.
func replicationSeed(base int64, index int, derived int64) int64 {
	if index == 0 {
		return base
	}
	return derived
}

// ScenarioSweep is the outcome of replicated loss-trace scenario runs
// (Figures 2 and 3): the per-replication results in replication order plus
// the mean ± CI aggregate of the headline burstiness metrics. A
// replication whose scenario produces too few drops for analysis is
// recorded in Skipped rather than failing the sweep — exactly as a
// too-quiet path does not contribute to the Figure 4 campaign — and the
// sweep errors only when every replication failed.
type ScenarioSweep struct {
	Results []*ScenarioResult // successful replications, in replication order
	Seeds   []int64           // effective seed of each successful replication
	Skipped []error           // per-replication failures, if any
	Summary exp.ReportSummary
	// Events totals the simulated events across the successful
	// replications.
	Events uint64
	// Forwarded totals the packet transmissions across the successful
	// replications; Events/Forwarded is the events-per-forwarded-packet
	// batching metric cmd/paperexp prints per scenario artifact.
	Forwarded uint64
}

// SweepFigure2 replicates the NS-2 scenario across derived seeds. The
// replications run in streaming mode on per-worker arenas: losses are
// analyzed online as the worlds run, scratch (scheduler freelist, packet
// pool, analyzer buffers) is reused run to run, and the per-replication
// results carry no raw trace (ScenarioResult.Trace is nil; use RunFigure2
// when the trace itself is needed).
func SweepFigure2(cfg Fig2Config, opts SweepOptions) (*ScenarioSweep, error) {
	opts.fillDefaults()
	results := exp.ReplicateArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers},
		opts.Replications, func(i int, seed int64, a *exp.Arena) (*ScenarioResult, error) {
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, i, seed)
			return runFigure2(c, a)
		})
	return collectScenarioSweep(cfg.Seed, results)
}

// SweepFigure3 replicates the Dummynet scenario across derived seeds, in
// the same streaming arena mode as SweepFigure2.
func SweepFigure3(cfg Fig3Config, opts SweepOptions) (*ScenarioSweep, error) {
	opts.fillDefaults()
	results := exp.ReplicateArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers},
		opts.Replications, func(i int, seed int64, a *exp.Arena) (*ScenarioResult, error) {
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, i, seed)
			return runFigure3(c, a)
		})
	return collectScenarioSweep(cfg.Seed, results)
}

func collectScenarioSweep(base int64, results []exp.Result[*ScenarioResult]) (*ScenarioSweep, error) {
	s := &ScenarioSweep{}
	var reports []*analysis.Report
	for _, r := range results {
		seed := replicationSeed(base, r.Index, r.Seed)
		if r.Err != nil {
			s.Skipped = append(s.Skipped, fmt.Errorf("replication %d (seed %d): %w", r.Index, seed, r.Err))
			continue
		}
		s.Results = append(s.Results, r.Value)
		s.Seeds = append(s.Seeds, seed)
		s.Events += r.Value.Events
		s.Forwarded += r.Value.Forwarded
		reports = append(reports, r.Value.Report)
	}
	if len(s.Results) == 0 {
		return nil, fmt.Errorf("core: every replication failed: %w", errors.Join(s.Skipped...))
	}
	s.Summary = exp.SummarizeReports(reports)
	return s, nil
}

// Fig7Sweep is the outcome of replicated pacing-competition runs: the
// per-replication results and the mean ± CI of the headline deficit.
type Fig7Sweep struct {
	Results []*Fig7Result
	Deficit exp.Estimate
	// Events totals the simulated events across replications.
	Events uint64
}

// SweepFigure7 replicates the pacing-vs-NewReno competition across derived
// seeds, reusing each worker's arena across replications.
func SweepFigure7(cfg Fig7Config, opts SweepOptions) (*Fig7Sweep, error) {
	opts.fillDefaults()
	results := exp.ReplicateArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers},
		opts.Replications, func(i int, seed int64, a *exp.Arena) (*Fig7Result, error) {
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, i, seed)
			return runFigure7(c, a)
		})
	vals, err := exp.Values(results)
	if err != nil {
		return nil, err
	}
	deficits := make([]float64, len(vals))
	var events uint64
	for i, v := range vals {
		deficits[i] = v.Deficit
		events += v.Events
	}
	return &Fig7Sweep{Results: vals, Deficit: exp.EstimateOf(deficits), Events: events}, nil
}

// TFRCSweep is the outcome of replicated TFRC-competition runs.
type TFRCSweep struct {
	Results []*TFRCCompResult
	Deficit exp.Estimate
	// Events totals the simulated events across replications.
	Events uint64
}

// SweepTFRCCompetition replicates the TFRC-vs-NewReno competition across
// derived seeds with per-worker arena reuse, mirroring SweepFigure7.
func SweepTFRCCompetition(cfg TFRCCompConfig, opts SweepOptions) (*TFRCSweep, error) {
	opts.fillDefaults()
	results := exp.ReplicateArena(exp.Options{Seed: cfg.Seed, Workers: opts.Workers},
		opts.Replications, func(i int, seed int64, a *exp.Arena) (*TFRCCompResult, error) {
			c := cfg
			c.Seed = replicationSeed(cfg.Seed, i, seed)
			return runTFRCCompetition(c, a)
		})
	vals, err := exp.Values(results)
	if err != nil {
		return nil, err
	}
	deficits := make([]float64, len(vals))
	var events uint64
	for i, v := range vals {
		deficits[i] = v.Deficit
		events += v.Events
	}
	return &TFRCSweep{Results: vals, Deficit: exp.EstimateOf(deficits), Events: events}, nil
}

// RunECNComparison runs the ECN-coverage experiment for each mode
// concurrently (the modes are independent worlds, each drawing its
// worker's arena scratch) and returns the results in mode order.
func RunECNComparison(cfg ECNCoverageConfig, modes []ECNMode, workers int) ([]*ECNCoverageResult, error) {
	results := exp.SweepArena(exp.Options{Seed: cfg.Seed, Workers: workers}, modes,
		func(r exp.Run[ECNMode], a *exp.Arena) (*ECNCoverageResult, error) {
			// RunECNCoverage derives its own per-mode stream from cfg.Seed,
			// so the sweep seed is deliberately unused: results stay
			// identical to sequential RunECNCoverage calls.
			return runECNCoverage(cfg, r.Config, a)
		})
	return exp.Values(results)
}
