package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// quickScenarioCfg keeps per-scenario test runs in the hundreds of
// milliseconds while still producing enough drops to analyze.
var quickScenarioCfg = topo.ScenarioConfig{
	Seed:     21,
	Duration: 8 * sim.Second,
	Warmup:   2 * sim.Second,
}

func TestScenarioCatalogRegistered(t *testing.T) {
	t.Parallel()
	names := topo.Names()
	for _, want := range []string{
		"dumbbell", "parking-lot", "access-tree", "hetero-mesh",
		"wifi-gilbert", "cellular-trace", "flaky-backbone",
		"gcc-vs-tcp-wifi", "gcc-cellular",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
	for _, sc := range topo.Scenarios() {
		if sc.Description == "" || sc.Topology == "" {
			t.Errorf("scenario %q missing catalog metadata", sc.Name)
		}
	}
}

// TestScenariosBurstyAndDeterministic runs every registered scenario and
// asserts (a) the paper's qualitative result — sub-RTT clustering, CoV ≫ 1,
// Poisson rejected — holds on every topology, and (b) a replicated sweep
// is bit-identical no matter how many workers ran it, scenario by scenario.
func TestScenariosBurstyAndDeterministic(t *testing.T) {
	t.Parallel()
	for _, sc := range topo.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			seq, err := SweepScenario(sc.Name, quickScenarioCfg,
				SweepOptions{Replications: 2, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := SweepScenario(sc.Name, quickScenarioCfg,
				SweepOptions{Replications: 2, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}

			for k := range seq.Results {
				a, b := seq.Results[k], par.Results[k]
				// Streaming sweeps analyze online and retain no trace; the
				// full report and burst structure must match instead.
				if a.Trace != nil || b.Trace != nil {
					t.Fatalf("replication %d retained a trace in streaming mode", k)
				}
				if !reflect.DeepEqual(a.Report, b.Report) || a.Bursts != b.Bursts {
					t.Fatalf("replication %d report depends on worker count", k)
				}
				var ra, rb bytes.Buffer
				if err := WritePDF(&ra, a.Report); err != nil {
					t.Fatal(err)
				}
				if err := WritePDF(&rb, b.Report); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
					t.Fatalf("replication %d rendered report depends on worker count", k)
				}
			}
			if !reflect.DeepEqual(seq.Summary, par.Summary) {
				t.Fatalf("aggregate depends on worker count: %+v vs %+v",
					seq.Summary, par.Summary)
			}

			// The paper's burstiness shape on this topology.
			r := seq.Results[0].Report
			if seq.Results[0].Drops < 20 {
				t.Fatalf("only %d drops", seq.Results[0].Drops)
			}
			if r.FracBelow1 < 0.5 {
				t.Fatalf("frac<1RTT = %v; losses not clustered", r.FracBelow1)
			}
			if r.CoV < 2 {
				t.Fatalf("CoV = %v; not burstier than Poisson", r.CoV)
			}
			if !r.RejectsPoisson {
				t.Fatal("KS test failed to reject Poisson")
			}
		})
	}
}

func TestRunScenarioUnknownName(t *testing.T) {
	t.Parallel()
	_, err := RunScenario("no-such-topology", quickScenarioCfg)
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("err = %v; want the catalog listing", err)
	}
	if !strings.Contains(err.Error(), "parking-lot") {
		t.Fatalf("err %v does not name the available scenarios", err)
	}
	_, err = SweepScenario("no-such-topology", quickScenarioCfg, SweepOptions{Replications: 1})
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("sweep err = %v", err)
	}
}
