package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// transfersCfg is long enough past warmup for every RFT scenario to
// complete several files per replication.
var transfersCfg = topo.ScenarioConfig{
	Seed:     5,
	Duration: 25 * sim.Second,
	Warmup:   3 * sim.Second,
}

// TestTransfersSweep pins the experiment's shape: one row per registered
// RFT scenario, each with completed transfers, an ordered FCT
// distribution and a positive goodput.
func TestTransfersSweep(t *testing.T) {
	t.Parallel()
	res, err := SweepTransfers(transfersCfg, SweepOptions{Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("rows = %d, want at least rft-fleet-dumbbell and rft-wifi", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Agg.Transfers == 0 {
			t.Errorf("%s: no transfers completed", row.Scenario)
		}
		p50, p95, p99 := row.Agg.FCTQuantile(0.50), row.Agg.FCTQuantile(0.95), row.Agg.FCTQuantile(0.99)
		if p50 <= 0 || p50 > p95 || p95 > p99 {
			t.Errorf("%s: FCT quantiles not ordered: p50=%v p95=%v p99=%v", row.Scenario, p50, p95, p99)
		}
		if row.Agg.Goodput.Mean <= 0 {
			t.Errorf("%s: non-positive mean goodput %v", row.Scenario, row.Agg.Goodput.Mean)
		}
	}
}

// TestTransfersWorkerInvariance: the transfer sweep is a pure function of
// (cfg, Replications) regardless of how many workers ran it — the merged
// FCT aggregates, reservoir samples included, must match exactly.
func TestTransfersWorkerInvariance(t *testing.T) {
	t.Parallel()
	seq, err := SweepTransfers(transfersCfg, SweepOptions{Replications: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepTransfers(transfersCfg, SweepOptions{Replications: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("transfer sweep depends on worker count:\n%+v\nvs\n%+v", seq, par)
	}
}

// TestWriteTransfers pins the artifact's shape: a header plus one row per
// RFT scenario carrying the FCT percentiles.
func TestWriteTransfers(t *testing.T) {
	t.Parallel()
	res, err := SweepTransfers(transfersCfg, SweepOptions{Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTransfers(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fct-p50", "fct-p99", "rft-wifi", "rft-fleet-dumbbell", "Mbps"} {
		if !strings.Contains(out, want) {
			t.Fatalf("artifact missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "rft-"); got < 2 {
		t.Fatalf("scenario rows = %d, want at least 2", got)
	}
}
