package core

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/planetlab"
	"repro/internal/sim"
)

// WritePDF renders an inter-loss PDF report as the text equivalent of the
// paper's Figures 2–4: one row per bin with the measured and Poisson
// per-bin probabilities, preceded by the headline burstiness numbers.
func WritePDF(w io.Writer, r *analysis.Report) error {
	if _, err := fmt.Fprintf(w,
		"# losses=%d lambda=%.3f/RTT frac<0.01RTT=%.3f frac<0.25RTT=%.3f frac<1RTT=%.3f burst_vs_poisson=%.1fx cov=%.1f ks=%.3f rejects_poisson=%v\n",
		r.N, r.Lambda, r.FracBelow001, r.FracBelow025, r.FracBelow1,
		r.BurstinessVsPoisson(), r.CoV, r.KSDistance, r.RejectsPoisson); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# interval_rtt\tmeasured_pdf\tpoisson_pdf"); err != nil {
		return err
	}
	pmf := r.Hist.PMF()
	for i := range pmf {
		if _, err := fmt.Fprintf(w, "%.3f\t%.6g\t%.6g\n",
			r.Hist.BinCenter(i), pmf[i], r.PoissonPMF[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCIIPDF renders a compact log-scale ASCII picture of the measured
// vs Poisson PDF — a terminal rendition of the paper's figures. Each row
// is one bin; '*' marks the measured mass, 'o' the Poisson reference.
func WriteASCIIPDF(w io.Writer, r *analysis.Report, rows int) error {
	if rows <= 0 {
		rows = 20
	}
	pmf := r.Hist.PMF()
	step := len(pmf) / rows
	if step < 1 {
		step = 1
	}
	const width = 50
	// Log scale from 1e-6 to 1.
	pos := func(p float64) int {
		if p < 1e-6 {
			return 0
		}
		// log10(p) in [-6, 0] → [0, width]
		v := (6 + math.Log10(p)) / 6 * width
		if v < 0 {
			v = 0
		}
		if v > width {
			v = width
		}
		return int(v)
	}
	for i := 0; i < len(pmf); i += step {
		line := make([]byte, width+1)
		for j := range line {
			line[j] = ' '
		}
		po := pos(r.PoissonPMF[i])
		pm := pos(pmf[i])
		line[po] = 'o'
		line[pm] = '*'
		if _, err := fmt.Fprintf(w, "%5.2f |%s|\n", r.Hist.BinCenter(i), string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "      %s\n       PDF 1e-6 .. 1 (log), * measured, o poisson\n",
		strings.Repeat("-", width+2))
	return err
}

// WriteVisibilityTable renders the Eq. 1/2 validation rows.
func WriteVisibilityTable(w io.Writer, rows []VisibilityResult) error {
	if _, err := fmt.Fprintln(w, "# M\tN\tK\teq1_rate\temp_rate\teq2_win\temp_win"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			r.M, r.N, r.K, r.AnalyticRate, r.EmpiricalRate,
			r.AnalyticWin, r.EmpiricalWin); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig7 renders the two aggregate-throughput curves.
func WriteFig7(w io.Writer, r *Fig7Result, bin sim.Duration) error {
	if _, err := fmt.Fprintf(w,
		"# paced_total=%d newreno_total=%d deficit=%.1f%% paced_events=%d newreno_events=%d\n",
		r.PacedTotalPkts, r.NewRenoTotalPkts, 100*r.Deficit,
		r.PacedCongestionEvents, r.NewRenoCongestionEvents); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# time_s\tpaced_mbps\tnewreno_mbps"); err != nil {
		return err
	}
	n := len(r.PacedMbps)
	if len(r.NewRenoMbps) > n {
		n = len(r.NewRenoMbps)
	}
	get := func(s []float64, i int) float64 {
		if i < len(s) {
			return s[i]
		}
		return 0
	}
	for i := 0; i < n; i++ {
		t := sim.Duration(i) * bin
		if _, err := fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\n",
			t.Seconds(), get(r.PacedMbps, i), get(r.NewRenoMbps, i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig8 renders the latency surface, one row per (RTT, flows) cell.
func WriteFig8(w io.Writer, r *Fig8Result) error {
	if _, err := fmt.Fprintln(w, "# rtt_ms\tflows\tmean_norm_latency\tstd\tmin\tmax"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%.0f\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			c.RTT.Seconds()*1e3, c.Flows, c.Mean, c.Std, c.Min, c.Max); err != nil {
			return err
		}
	}
	return nil
}

// WriteSites renders the paper's Table 1.
func WriteSites(w io.Writer, sites []planetlab.Site) error {
	if _, err := fmt.Fprintln(w, "# host\tlocation\tregion"); err != nil {
		return err
	}
	for _, s := range sites {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n", s.Host, s.Location, s.Region); err != nil {
			return err
		}
	}
	return nil
}
