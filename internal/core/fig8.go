package core

import (
	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Fig8Config reproduces the parallel-transfer latency experiment: a fixed
// total volume (64 MB) split over N parallel flows at several RTTs, with
// the completion latency normalized by the theoretic lower bound.
type Fig8Config struct {
	Seed           int64
	TotalBytes     int64          // default 64 MB
	FlowCounts     []int          // default {2,4,8,16,32}
	RTTs           []sim.Duration // default {2,10,50,200} ms
	BottleneckRate int64          // default 100 Mbps
	PktSize        int            // default 1000
	Runs           int            // perturbed repetitions per cell (default 5)
	Paced          bool           // run the rate-based variant instead
	// Workers bounds how many grid cells run concurrently (each cell is a
	// set of independent simulated worlds, so the surface is identical for
	// any worker count); 0 means GOMAXPROCS.
	Workers int
}

func (c *Fig8Config) fillDefaults() {
	if c.TotalBytes == 0 {
		c.TotalBytes = 64 << 20
	}
	if len(c.FlowCounts) == 0 {
		c.FlowCounts = []int{2, 4, 8, 16, 32}
	}
	if len(c.RTTs) == 0 {
		c.RTTs = []sim.Duration{
			2 * sim.Millisecond, 10 * sim.Millisecond,
			50 * sim.Millisecond, 200 * sim.Millisecond,
		}
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
}

// Fig8Cell is one (RTT, flow count) point: normalized latency mean and
// spread over the runs.
type Fig8Cell struct {
	RTT   sim.Duration
	Flows int
	Mean  float64 // mean normalized latency (≥ 1)
	Std   float64
	Min   float64
	Max   float64
	// Events totals the simulated events across the cell's runs.
	Events uint64
}

// Fig8Result is the full latency surface, row-major by RTT then flows.
type Fig8Result struct {
	Cells      []Fig8Cell
	FlowCounts []int
	RTTs       []sim.Duration
	// Events totals the simulated events across the whole surface.
	Events uint64
}

// Cell returns the cell for (rtt, flows), or nil.
func (r *Fig8Result) Cell(rtt sim.Duration, flows int) *Fig8Cell {
	for i := range r.Cells {
		if r.Cells[i].RTT == rtt && r.Cells[i].Flows == flows {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunFigure8 sweeps the latency surface. The grid cells are independent
// experiments, so they fan out across the exp worker pool; the result
// keeps the row-major (RTT, then flows) cell order of the sequential
// sweep.
func RunFigure8(cfg Fig8Config) *Fig8Result {
	cfg.fillDefaults()
	res := &Fig8Result{FlowCounts: cfg.FlowCounts, RTTs: cfg.RTTs}

	type cellCfg struct {
		rtt   sim.Duration
		flows int
	}
	grid := make([]cellCfg, 0, len(cfg.RTTs)*len(cfg.FlowCounts))
	for _, rtt := range cfg.RTTs {
		for _, n := range cfg.FlowCounts {
			grid = append(grid, cellCfg{rtt, n})
		}
	}

	results := exp.SweepArena(exp.Options{Seed: cfg.Seed, Workers: cfg.Workers}, grid,
		func(r exp.Run[cellCfg], a *exp.Arena) (Fig8Cell, error) {
			// Every run of every cell this worker executes reuses one
			// scheduler freelist, one packet population and (per flow
			// count) one cached dumbbell world from the arena.
			vals, events := apps.SweepEventsIn(apps.ParallelConfig{
				TotalBytes:     cfg.TotalBytes,
				Flows:          r.Config.flows,
				PktSize:        cfg.PktSize,
				RTT:            r.Config.rtt,
				BottleneckRate: cfg.BottleneckRate,
				Paced:          cfg.Paced,
			}, cfg.Runs, a)
			s := stats.Summarize(vals)
			return Fig8Cell{
				RTT: r.Config.rtt, Flows: r.Config.flows,
				Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max,
				Events: events,
			}, nil
		})
	// The transfers report trouble through the result, not an error, so a
	// captured error can only be a worker panic (e.g. a malformed config);
	// re-raise it rather than silently emitting a zero cell.
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
		res.Cells = append(res.Cells, r.Value)
		res.Events += r.Value.Events
	}
	return res
}
