// Package core orchestrates the paper's experiments. Each figure and table
// of the evaluation has a runner here that builds the scenario from the
// substrate packages, executes it deterministically from a single seed,
// and returns the series the paper plots. The analytic loss-visibility
// model of Equations 1 and 2 lives here too, together with its empirical
// validation.
package core

import (
	"math/rand"

	"repro/internal/sim"
)

// LRateBased is the paper's Equation 1: the expected number of rate-based
// flows that observe a loss event of M dropped packets when N flows share
// the bottleneck — with perfectly interleaved (evenly spaced) packets,
// every distinct flow in the burst window sees a drop.
func LRateBased(m, n int) int {
	if m < n {
		return m
	}
	return n
}

// LWinBased is the paper's Equation 2: the expected number of window-based
// flows that observe the same event when each flow's K packets per RTT
// arrive as one contiguous clump — the burst of M drops covers only
// ⌈M/K⌉ clumps.
func LWinBased(m, k int) float64 {
	if k <= 0 {
		return 1
	}
	l := float64(m) / float64(k)
	if l < 1 {
		return 1
	}
	return l
}

// VisibilityResult is one row of the Eq. 1/2 validation: analytic
// prediction vs Monte Carlo measurement of how many flows detect a drop
// burst.
type VisibilityResult struct {
	M, N, K int // burst size, flows, packets per flow per RTT

	AnalyticRate float64 // eq. 1
	AnalyticWin  float64 // eq. 2

	EmpiricalRate float64 // measured, interleaved arrivals
	EmpiricalWin  float64 // measured, clumped arrivals
}

// SimulateVisibility measures flow visibility empirically: N flows each
// contribute K packets to one RTT's worth of arrivals at the bottleneck.
// Rate-based arrivals interleave the flows (round-robin, the limit of
// evenly spaced sending); window-based arrivals concatenate each flow's K
// packets contiguously (the limit of back-to-back window bursts). A drop
// burst of M consecutive packets lands at a uniformly random offset, and
// we count how many distinct flows lose at least one packet, averaged
// over trials.
func SimulateVisibility(m, n, k, trials int, rng *rand.Rand) VisibilityResult {
	return simulateVisibility(new(visScratch), m, n, k, trials, rng)
}

// visScratch holds the Monte Carlo's reusable buffers: the two
// arrival-order owner arrays (pure functions of N and K, so every burst
// size in a table sweep shares them) and an epoch-stamped distinct-flow
// counter that replaces the per-trial set allocation — the counting is
// identical, just O(burst) with no map.
type visScratch struct {
	n, k        int
	interleaved []int // owner[i] = flow owning arrival i, round-robin order
	clumped     []int // owner[i] under contiguous per-flow windows
	stamp       []int // stamp[flow] == epoch ⇔ flow counted this trial
	epoch       int
}

// prepare sizes the buffers for an (n, k) grid, rebuilding the owner
// arrays only when the shape actually changed.
func (s *visScratch) prepare(n, k int) {
	if s.n == n && s.k == k {
		return
	}
	s.n, s.k = n, k
	total := n * k
	if cap(s.interleaved) < total {
		s.interleaved = make([]int, total)
		s.clumped = make([]int, total)
	} else {
		s.interleaved = s.interleaved[:total]
		s.clumped = s.clumped[:total]
	}
	for i := 0; i < total; i++ {
		s.interleaved[i] = i % n
		s.clumped[i] = i / k
	}
	if cap(s.stamp) < n {
		s.stamp = make([]int, n)
		s.epoch = 0
	} else {
		s.stamp = s.stamp[:n]
	}
}

// countDistinct counts the flows owning at least one of the m arrivals
// starting at offset (wrapping), using the epoch stamp instead of a set.
func (s *visScratch) countDistinct(owner []int, offset, m int) int {
	s.epoch++
	total := len(owner)
	distinct := 0
	for i := offset; i < offset+m; i++ {
		f := owner[i%total]
		if s.stamp[f] != s.epoch {
			s.stamp[f] = s.epoch
			distinct++
		}
	}
	return distinct
}

func simulateVisibility(s *visScratch, m, n, k, trials int, rng *rand.Rand) VisibilityResult {
	if m <= 0 || n <= 0 || k <= 0 || trials <= 0 || rng == nil {
		panic("core: SimulateVisibility requires positive parameters and rng")
	}
	res := VisibilityResult{
		M: m, N: n, K: k,
		AnalyticRate: float64(LRateBased(m, n)),
		AnalyticWin:  LWinBased(m, k),
	}
	total := n * k
	if m > total {
		m = total
	}
	s.prepare(n, k)

	var sumRate, sumWin float64
	for t := 0; t < trials; t++ {
		off := rng.Intn(total)
		sumRate += float64(s.countDistinct(s.interleaved, off, m))
		sumWin += float64(s.countDistinct(s.clumped, off, m))
	}
	res.EmpiricalRate = sumRate / float64(trials)
	res.EmpiricalWin = sumWin / float64(trials)
	return res
}

// VisibilityTable builds the Eq. 1/2 validation table over a sweep of
// burst sizes, for fixed N and K.
func VisibilityTable(n, k int, bursts []int, trials int, seed int64) []VisibilityResult {
	rng := sim.NewRand(seed)
	out := make([]VisibilityResult, 0, len(bursts))
	s := new(visScratch)
	for _, m := range bursts {
		out = append(out, simulateVisibility(s, m, n, k, trials, rng))
	}
	return out
}
