package core

import (
	"repro/internal/analysis"
	"repro/internal/crosstraffic"
	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Fig2Config reproduces the paper's NS-2 setup (Figure 1): a 100 Mbps
// DropTail bottleneck shared by N TCP flows with access latencies drawn
// uniformly from [2 ms, 200 ms], plus 50 two-way exponential on–off noise
// flows averaging 10% of capacity.
type Fig2Config struct {
	Seed           int64
	Flows          int          // 2, 4, 8, 16 or 32 in the paper
	BottleneckRate int64        // default 100 Mbps
	AccessLow      sim.Duration // default 2 ms
	AccessHigh     sim.Duration // default 200 ms
	// BufferBDPFrac sizes the bottleneck buffer as a fraction of the
	// BDP at the mean RTT (paper sweeps 1/8 … 2; default 0.5).
	BufferBDPFrac float64
	NoiseFlows    int          // default 50
	NoiseFraction float64      // default 0.10 of capacity
	PktSize       int          // default 1000
	Duration      sim.Duration // default 60 s
	// Warmup discards drops before this time (slow-start transient).
	Warmup sim.Duration // default 10 s
	// StartSpread staggers flow starts uniformly over this window to
	// avoid seeding artificial global synchronization (default 2 s).
	StartSpread sim.Duration
	// RED replaces the DropTail bottleneck with a RED queue (minTh =
	// buffer/6, maxTh = buffer/2, maxP = 0.1) — the paper's suggested
	// de-bursting remedy, used by the ablation bench.
	RED bool
}

func (c *Fig2Config) fillDefaults() {
	if c.Flows == 0 {
		c.Flows = 16
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.AccessLow == 0 {
		c.AccessLow = 2 * sim.Millisecond
	}
	if c.AccessHigh == 0 {
		c.AccessHigh = 200 * sim.Millisecond
	}
	if c.BufferBDPFrac == 0 {
		c.BufferBDPFrac = 0.5
	}
	if c.NoiseFlows == 0 {
		c.NoiseFlows = 50
	}
	if c.NoiseFraction == 0 {
		c.NoiseFraction = 0.10
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 60 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.StartSpread == 0 {
		c.StartSpread = 2 * sim.Second
	}
}

// ScenarioResult is the outcome of one loss-trace scenario (Figures 2 and
// 3 share it).
type ScenarioResult struct {
	Report  *analysis.Report // the inter-loss PDF analysis
	Trace   *trace.Recorder  // raw drop trace (post-warmup); nil in streaming sweeps
	MeanRTT sim.Duration     // normalization RTT
	Bursts  analysis.BurstStats
	Drops   int
	// Events is the number of simulated events the world executed
	// (Scheduler.Fired) — the denominator-free half of the events/sec
	// throughput cmd/paperexp prints per artifact.
	Events uint64
	// Forwarded is the number of packet transmissions the world's ports
	// performed. Events/Forwarded — the scheduler events each forwarded
	// packet cost — is the batching efficiency metric cmd/paperexp prints
	// next to the throughput line (see ARCHITECTURE.md, "Link service
	// batching").
	Forwarded uint64
}

// RunFigure2 executes the NS-2-style scenario and analyzes the bottleneck
// drop trace. The trace is retained in the result (batch mode); sweeps go
// through runFigure2 with a per-worker arena and analyze online instead.
func RunFigure2(cfg Fig2Config) (*ScenarioResult, error) {
	return runFigure2(cfg, nil)
}

// runFigure2 builds and runs one Figure-2 world. With an arena, the
// scheduler, packet pool and the whole measurement pipeline come from the
// worker's scratch and losses are analyzed while the world runs.
func runFigure2(cfg Fig2Config, a *exp.Arena) (*ScenarioResult, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()
	if a != nil {
		sched = a.Scheduler()
	}
	rng := sim.NewRand(sim.SubSeed(cfg.Seed, 1))

	delays := netsim.RandomAccessDelays(rng, cfg.Flows, cfg.AccessLow, cfg.AccessHigh)
	var meanRTT sim.Duration
	for _, d := range delays {
		meanRTT += 2 * d
	}
	meanRTT /= sim.Duration(cfg.Flows)

	buffer := int(cfg.BufferBDPFrac * float64(netsim.BDP(cfg.BottleneckRate, meanRTT, cfg.PktSize)))
	if buffer < 8 {
		buffer = 8
	}

	var queue netsim.Queue
	if cfg.RED {
		queue = netsim.NewRED(netsim.REDConfig{
			Limit: buffer,
			MinTh: float64(buffer) / 6,
			MaxTh: float64(buffer) / 2,
			MaxP:  0.1,
			PacketsPerSecond: float64(cfg.BottleneckRate) /
				float64(cfg.PktSize*8),
		}, sim.NewRand(sim.SubSeed(cfg.Seed, 4)))
	}
	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          buffer,
		Queue:           queue,
	})
	pool := netsim.NewPacketPool()
	if a != nil {
		pool = a.Pool()
	}
	d.AttachPool(pool)

	m, err := newMeasurement(a, meanRTT)
	if err != nil {
		return nil, err
	}
	rec := m.rec
	warm := sim.Time(cfg.Warmup)
	d.Forward.OnDrop = func(p *netsim.Packet, at sim.Time) {
		if at >= warm {
			rec.Add(trace.LossEvent{At: at, Flow: p.Flow, Seq: p.Seq, Size: p.Size})
		}
	}

	flows := make([]*tcp.Flow, cfg.Flows)
	for i := range flows {
		flows[i] = tcp.NewPairFlow(sched, d.SenderNode(i), d.ReceiverNode(i), i+1, tcp.Config{
			PktSize:         cfg.PktSize,
			InitialRTT:      2 * delays[i],
			InitialSSThresh: float64(buffer),
			Pool:            pool,
		})
	}
	// Stagger starts to avoid a synthetic global synchronization at t=0.
	for i, f := range flows {
		f.StartAt(sched, sim.Time(sim.Duration(i)*cfg.StartSpread/sim.Duration(cfg.Flows)))
	}

	// Noise: two-way on–off UDP, absorbed (and recycled) by the routers'
	// default sinks.
	d.RightRouter.BindDefault(pool.Sink())
	d.LeftRouter.BindDefault(pool.Sink())
	fwdNoise := crosstraffic.NoiseSet(sched, d.Forward, cfg.NoiseFlows/2,
		cfg.BottleneckRate, cfg.NoiseFraction/2, 100000,
		netsim.SenderAddr(0), 2, sim.SubSeed(cfg.Seed, 2), pool)
	revNoise := crosstraffic.NoiseSet(sched, d.Reverse, cfg.NoiseFlows-cfg.NoiseFlows/2,
		cfg.BottleneckRate, cfg.NoiseFraction/2, 200000,
		netsim.ReceiverAddr(0), 1, sim.SubSeed(cfg.Seed, 3), pool)
	for _, nz := range fwdNoise {
		nz.Start()
	}
	for _, nz := range revNoise {
		nz.Start()
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	return m.finish("figure 2 scenario", meanRTT, sched.Fired(), d.Net.Forwarded())
}
