package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestEquations(t *testing.T) {
	// Eq. 1: L_rate = min{M, N}.
	if LRateBased(5, 16) != 5 || LRateBased(40, 16) != 16 || LRateBased(16, 16) != 16 {
		t.Fatal("eq1 wrong")
	}
	// Eq. 2: L_win = max{M/K, 1}.
	if LWinBased(5, 10) != 1 {
		t.Fatalf("eq2(5,10) = %v", LWinBased(5, 10))
	}
	if LWinBased(40, 10) != 4 {
		t.Fatalf("eq2(40,10) = %v", LWinBased(40, 10))
	}
	if LWinBased(10, 0) != 1 {
		t.Fatal("eq2 with k=0 should clamp to 1")
	}
}

func TestVisibilityMatchesEquationsInIdealCase(t *testing.T) {
	rng := sim.NewRand(1)
	// M=8 drops, N=16 flows, K=10 packets per flow per RTT.
	r := SimulateVisibility(8, 16, 10, 4000, rng)
	// Rate-based: 8 consecutive interleaved arrivals touch 8 distinct
	// flows (M < N): exact.
	if r.EmpiricalRate != 8 {
		t.Fatalf("empirical rate-based = %v, want exactly 8", r.EmpiricalRate)
	}
	// Window-based: 8 consecutive clumped arrivals touch 1 or 2 clumps;
	// expectation 1 + 7/10 = 1.7.
	if r.EmpiricalWin < 1.5 || r.EmpiricalWin > 1.9 {
		t.Fatalf("empirical window-based = %v, want ≈1.7", r.EmpiricalWin)
	}
	if r.AnalyticRate != 8 || r.AnalyticWin != 1 {
		t.Fatalf("analytic: %v, %v", r.AnalyticRate, r.AnalyticWin)
	}
	// The paper's point: L_rate ≫ L_win.
	if r.EmpiricalRate < 3*r.EmpiricalWin {
		t.Fatal("rate-based visibility not much larger")
	}
}

func TestVisibilityBigBurstSaturates(t *testing.T) {
	rng := sim.NewRand(2)
	// Burst longer than everything: all flows see it both ways.
	r := SimulateVisibility(1000, 8, 10, 200, rng)
	if r.EmpiricalRate != 8 || r.EmpiricalWin != 8 {
		t.Fatalf("saturated visibility: %v, %v", r.EmpiricalRate, r.EmpiricalWin)
	}
}

func TestVisibilityTableRows(t *testing.T) {
	rows := VisibilityTable(16, 10, []int{1, 4, 16, 64}, 500, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone in M for both families.
	for i := 1; i < len(rows); i++ {
		if rows[i].EmpiricalRate < rows[i-1].EmpiricalRate ||
			rows[i].EmpiricalWin < rows[i-1].EmpiricalWin {
			t.Fatal("visibility not monotone in burst size")
		}
	}
	var buf bytes.Buffer
	if err := WriteVisibilityTable(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eq1_rate") || len(strings.Split(buf.String(), "\n")) < 5 {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestVisibilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SimulateVisibility(0, 1, 1, 1, sim.NewRand(1))
}

func TestECNModeString(t *testing.T) {
	if ModeDropTail.String() != "droptail" || ModeRedECN.String() != "red+ecn" ||
		ModePersistentECN.String() != "persistent-ecn" {
		t.Fatal("mode strings")
	}
	if ECNMode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string")
	}
}
