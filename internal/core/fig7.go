package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Fig7Config reproduces the pacing-vs-NewReno competition: equal numbers
// of TCP Pacing and TCP NewReno flows share one bottleneck; the paper used
// 16+16 flows on a 100 Mbps, 50 ms-RTT path for 40 s and observed the
// paced aggregate about 17% below the unpaced one.
type Fig7Config struct {
	Seed           int64
	FlowsPerClass  int          // default 16 (per the paper)
	BottleneckRate int64        // default 100 Mbps
	RTT            sim.Duration // default 50 ms
	PktSize        int          // default 1000
	Duration       sim.Duration // default 40 s
	Bin            sim.Duration // throughput bin (default 1 s)
	BufferBDPFrac  float64      // default 0.5
	// PaceQuantum is the paced flows' burst size per pacing tick
	// (default 1 = per-packet pacing; the ablation bench sweeps it).
	PaceQuantum int
}

func (c *Fig7Config) fillDefaults() {
	if c.FlowsPerClass == 0 {
		c.FlowsPerClass = 16
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 100_000_000
	}
	if c.RTT == 0 {
		c.RTT = 50 * sim.Millisecond
	}
	if c.PktSize == 0 {
		c.PktSize = 1000
	}
	if c.Duration == 0 {
		c.Duration = 40 * sim.Second
	}
	if c.Bin == 0 {
		c.Bin = sim.Second
	}
	if c.BufferBDPFrac == 0 {
		c.BufferBDPFrac = 0.5
	}
}

// Fig7Result carries the two aggregate-throughput time series and their
// totals.
type Fig7Result struct {
	// PacedMbps and NewRenoMbps are the per-bin aggregate throughputs, the
	// two curves of the paper's Figure 7.
	PacedMbps   []float64
	NewRenoMbps []float64

	PacedTotalPkts   int64
	NewRenoTotalPkts int64

	// Deficit is 1 − paced/newreno, the paper's "17% lower" headline.
	Deficit float64

	// Loss-detection asymmetry: congestion events seen per class, the
	// paper's mechanism (rate-based flows detect more loss events).
	PacedCongestionEvents   uint64
	NewRenoCongestionEvents uint64

	// Events is the number of simulated events the world executed.
	Events uint64
}

// RunFigure7 executes the competition experiment.
func RunFigure7(cfg Fig7Config) (*Fig7Result, error) {
	return runFigure7(cfg, nil)
}

// runFigure7 is RunFigure7 drawing the scheduler and packet pool from a
// worker's arena when one is supplied (the throughput series stay
// per-run: they are retained in the result).
func runFigure7(cfg Fig7Config, a *exp.Arena) (*Fig7Result, error) {
	cfg.fillDefaults()
	sched := sim.NewScheduler()
	if a != nil {
		sched = a.Scheduler()
	}

	n := cfg.FlowsPerClass
	delays := make([]sim.Duration, 2*n)
	for i := range delays {
		delays[i] = cfg.RTT / 2
	}
	buffer := int(cfg.BufferBDPFrac * float64(netsim.BDP(cfg.BottleneckRate, cfg.RTT, cfg.PktSize)))
	if buffer < 8 {
		buffer = 8
	}
	d := topo.NewDumbbell(sched, netsim.DumbbellConfig{
		BottleneckRate:  cfg.BottleneckRate,
		BottleneckDelay: 0,
		AccessRate:      1_000_000_000,
		AccessDelays:    delays,
		Buffer:          buffer,
	})
	pool := netsim.NewPacketPool()
	if a != nil {
		pool = a.Pool()
	}
	d.AttachPool(pool)

	pacedSeries := trace.NewThroughputSeries(cfg.Bin)
	renoSeries := trace.NewThroughputSeries(cfg.Bin)

	mk := func(pair, flowID int, paced bool, series *trace.ThroughputSeries) *tcp.Flow {
		f := tcp.NewPairFlow(sched, d.SenderNode(pair), d.ReceiverNode(pair), flowID, tcp.Config{
			PktSize:     cfg.PktSize,
			Paced:       paced,
			PaceQuantum: cfg.PaceQuantum,
			InitialRTT:  cfg.RTT,
			Pool:        pool,
		})
		f.Receiver.OnData = func(p *netsim.Packet, at sim.Time) {
			series.Add(at, int64(p.Size)*8)
		}
		return f
	}

	var paced, reno []*tcp.Flow
	for i := 0; i < n; i++ {
		reno = append(reno, mk(i, i+1, false, renoSeries))
	}
	for i := n; i < 2*n; i++ {
		paced = append(paced, mk(i, i+1, true, pacedSeries))
	}
	// Interleave starts across the two classes within the first 100 ms.
	for i := 0; i < n; i++ {
		off := sim.Duration(i) * 100 * sim.Millisecond / sim.Duration(n)
		reno[i].StartAt(sched, sim.Time(off))
		paced[i].StartAt(sched, sim.Time(off+50*sim.Millisecond/sim.Duration(n)))
	}

	sched.RunUntil(sim.Time(cfg.Duration))

	res := &Fig7Result{
		PacedMbps:   pacedSeries.Mbps(),
		NewRenoMbps: renoSeries.Mbps(),
		Events:      sched.Fired(),
	}
	for _, f := range paced {
		res.PacedTotalPkts += f.Receiver.CumAck()
		res.PacedCongestionEvents += f.Sender.CongestionEvents
	}
	for _, f := range reno {
		res.NewRenoTotalPkts += f.Receiver.CumAck()
		res.NewRenoCongestionEvents += f.Sender.CongestionEvents
	}
	if res.NewRenoTotalPkts == 0 {
		return nil, fmt.Errorf("core: figure 7 NewReno flows delivered nothing")
	}
	res.Deficit = 1 - float64(res.PacedTotalPkts)/float64(res.NewRenoTotalPkts)
	return res, nil
}
