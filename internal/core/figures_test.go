package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/planetlab"
	"repro/internal/sim"
)

// All scenario tests run scaled-down versions of the paper's setups: the
// shapes must hold at small scale even though the absolute statistics are
// noisier.

func TestRunFigure2ShowsSubRTTBurstiness(t *testing.T) {
	res, err := RunFigure2(Fig2Config{
		Seed:     1,
		Flows:    16,
		Duration: 30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops < 20 {
		t.Fatalf("only %d drops", res.Drops)
	}
	r := res.Report
	// The paper's headline: >95% of losses within 0.01 RTT, and a process
	// far burstier than Poisson. At small scale we demand 80%/0.01 RTT, a
	// clearly super-exponential interval distribution (CoV ≫ 1; an
	// exponential has CoV = 1 at any rate), over-dispersed counts, and at
	// least as much smallest-bin mass as the matched Poisson.
	if r.FracBelow001 < 0.8 {
		t.Fatalf("frac<0.01RTT = %v; losses not clustered", r.FracBelow001)
	}
	if r.CoV < 2 {
		t.Fatalf("interval CoV = %v; not burstier than Poisson", r.CoV)
	}
	if r.IndexOfDispersion < 5 {
		t.Fatalf("IoD = %v", r.IndexOfDispersion)
	}
	// At very high loss rates both distributions concentrate in bin 0, so
	// only demand near-parity there; CoV and IoD carry the burstiness
	// distinction at any rate.
	if r.BurstinessVsPoisson() < 0.9 {
		t.Fatalf("smallest-bin mass far below Poisson: %v", r.BurstinessVsPoisson())
	}
	if res.Bursts.Bursts == 0 || res.Bursts.MeanSize < 1 {
		t.Fatalf("burst stats: %+v", res.Bursts)
	}
}

func TestRunFigure2Deterministic(t *testing.T) {
	cfg := Fig2Config{Seed: 5, Flows: 16, Duration: 15 * sim.Second, Warmup: 3 * sim.Second}
	a, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Drops != b.Drops || a.MeanRTT != b.MeanRTT {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v", a.Drops, a.MeanRTT, b.Drops, b.MeanRTT)
	}
	for i, e := range a.Trace.Events() {
		if e != b.Trace.Events()[i] {
			t.Fatalf("trace diverges at %d", i)
		}
	}
}

func TestRunFigure3QuantizedTrace(t *testing.T) {
	res, err := RunFigure3(Fig3Config{
		Seed:          2,
		FlowsPerClass: 2,
		Duration:      30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops < 10 {
		t.Fatalf("only %d drops", res.Drops)
	}
	// Every recorded timestamp sits on the 1 ms grid.
	for _, e := range res.Trace.Events() {
		if int64(e.At)%int64(sim.Millisecond) != 0 {
			t.Fatalf("unquantized drop at %v", e.At)
		}
	}
	// Burstiness survives quantization (the paper: ≈80% under 0.01 RTT in
	// the emulation; we demand clustering under 0.25 RTT at small scale).
	if res.Report.FracBelow025 < 0.4 {
		t.Fatalf("frac<0.25RTT = %v", res.Report.FracBelow025)
	}
	if res.Report.CoV < 1.5 {
		t.Fatalf("CoV = %v", res.Report.CoV)
	}
}

func TestRunFigure4CampaignShape(t *testing.T) {
	res, err := RunFigure4(Fig4Config{
		Seed:     3,
		Paths:    12,
		Duration: 30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PathsMeasured != 12 {
		t.Fatalf("measured %d paths", res.PathsMeasured)
	}
	if res.PathsValidated == 0 || res.PathsAnalyzed == 0 {
		t.Fatalf("validated=%d analyzed=%d", res.PathsValidated, res.PathsAnalyzed)
	}
	r := res.Report
	// Internet shape: substantial sub-RTT clustering, weaker than NS-2
	// (the paper: 40% < 0.01 RTT, 60% < 1 RTT), still ≫ Poisson in the
	// sub-RTT bins.
	if r.FracBelow1 < 0.3 {
		t.Fatalf("frac<1RTT = %v", r.FracBelow1)
	}
	if r.FracBelow001 >= r.FracBelow1 {
		t.Fatal("fraction ordering broken")
	}
	if r.BurstinessVsPoisson() < 2 {
		t.Fatalf("internet burstiness ratio = %v", r.BurstinessVsPoisson())
	}
}

func TestRunFigure7PacingLoses(t *testing.T) {
	res, err := RunFigure7(Fig7Config{
		Seed:          4,
		FlowsPerClass: 8,
		Duration:      30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deficit <= 0.02 {
		t.Fatalf("pacing deficit = %.1f%%; paper observed ≈17%%", 100*res.Deficit)
	}
	if res.Deficit > 0.8 {
		t.Fatalf("pacing deficit implausibly large: %.1f%%", 100*res.Deficit)
	}
	// Mechanism check: per packet delivered, paced flows detect loss
	// events at least as often — the paper's explanation for the deficit.
	pacedRate := float64(res.PacedCongestionEvents) / float64(res.PacedTotalPkts)
	renoRate := float64(res.NewRenoCongestionEvents) / float64(res.NewRenoTotalPkts)
	if pacedRate < renoRate {
		t.Fatalf("paced per-packet event rate %.2e below newreno %.2e; mechanism broken",
			pacedRate, renoRate)
	}
	if len(res.PacedMbps) == 0 || len(res.NewRenoMbps) == 0 {
		t.Fatal("missing throughput series")
	}
	var buf bytes.Buffer
	if err := WriteFig7(&buf, res, sim.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deficit") {
		t.Fatal("fig7 render missing header")
	}
}

func TestRunFigure8LatencySurface(t *testing.T) {
	res := RunFigure8(Fig8Config{
		Seed:       5,
		TotalBytes: 8 << 20, // 8 MB keeps the test quick
		FlowCounts: []int{2, 8},
		RTTs:       []sim.Duration{10 * sim.Millisecond, 200 * sim.Millisecond},
		Runs:       3,
	})
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Mean < 1 {
			t.Fatalf("normalized latency < 1 at %+v", c)
		}
	}
	// Long-RTT transfers are relatively worse (paper: 11–50 s vs 5.39 s
	// bound at 200 ms).
	lo := res.Cell(10*sim.Millisecond, 2)
	hi := res.Cell(200*sim.Millisecond, 2)
	if lo == nil || hi == nil {
		t.Fatal("missing cells")
	}
	if hi.Mean <= lo.Mean {
		t.Fatalf("long-RTT not worse: %v vs %v", hi.Mean, lo.Mean)
	}
	var buf bytes.Buffer
	if err := WriteFig8(&buf, res); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 5 {
		t.Fatalf("fig8 render:\n%s", buf.String())
	}
	if res.Cell(sim.Duration(1), 99) != nil {
		t.Fatal("bogus cell lookup should be nil")
	}
}

func TestRunTFRCCompetition(t *testing.T) {
	res, err := RunTFRCCompetition(TFRCCompConfig{
		Seed:          6,
		FlowsPerClass: 4,
		Duration:      30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper (citing Rhee & Xu): TFRC gets less than TCP.
	if res.Deficit <= 0 {
		t.Fatalf("TFRC beat NewReno: deficit = %.1f%%", 100*res.Deficit)
	}
	if res.TFRCLossRate <= 0 {
		t.Fatal("TFRC never measured loss")
	}
}

func TestRunECNCoverageOrdering(t *testing.T) {
	cfg := ECNCoverageConfig{Seed: 7, Flows: 8, Duration: 20 * sim.Second}
	dt, err := RunECNCoverage(cfg, ModeDropTail)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := RunECNCoverage(cfg, ModePersistentECN)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's proposal: persistent ECN covers most flows each epoch;
	// DropTail covers few.
	if pe.CoverageFraction <= dt.CoverageFraction {
		t.Fatalf("persistent ECN coverage %.2f not above droptail %.2f",
			pe.CoverageFraction, dt.CoverageFraction)
	}
	if pe.CoverageFraction < 0.5 {
		t.Fatalf("persistent ECN coverage only %.2f", pe.CoverageFraction)
	}
	if pe.AggregatePkts < dt.AggregatePkts/2 {
		t.Fatal("persistent ECN collapsed throughput")
	}
	if pe.FairnessIndex < dt.FairnessIndex-0.1 {
		t.Fatalf("persistent ECN hurt fairness: %.3f vs %.3f",
			pe.FairnessIndex, dt.FairnessIndex)
	}
}

func TestWritePDFAndASCII(t *testing.T) {
	res, err := RunFigure2(Fig2Config{Seed: 8, Flows: 4, Duration: 10 * sim.Second,
		Warmup: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePDF(&buf, res.Report); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "frac<0.01RTT") || !strings.Contains(out, "poisson_pdf") {
		t.Fatalf("pdf render:\n%s", out)
	}
	// 100 bins + 2 header lines.
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 102 {
		t.Fatalf("pdf rows = %d", got)
	}
	buf.Reset()
	if err := WriteASCIIPDF(&buf, res.Report, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") || !strings.Contains(buf.String(), "o") {
		t.Fatalf("ascii render:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteASCIIPDF(&buf, res.Report, 0); err != nil { // default rows
		t.Fatal(err)
	}
}

func TestWriteSitesTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSites(&buf, planetlab.Sites()); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != 27 {
		t.Fatalf("site rows = %d", got)
	}
}
